package congestion

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestEstimateIRContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mp, err := EstimateIRContext(ctx, 300, 300, demoNets(), Options{Pitch: 30})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if mp != nil {
		t.Error("canceled estimate returned a (possibly partial) map")
	}
}

func TestEstimateIRContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := EstimateIRContext(ctx, 300, 300, demoNets(), Options{Pitch: 30}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestEstimateIRContextLiveMatchesPlain(t *testing.T) {
	want, err := EstimateIR(300, 300, demoNets(), Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := EstimateIRContext(ctx, 300, 300, demoNets(), Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score || got.Cells != want.Cells {
		t.Errorf("cancelable estimate differs: score %g/%g cells %d/%d",
			got.Score, want.Score, got.Cells, want.Cells)
	}
}

func TestEstimateInvalidInput(t *testing.T) {
	cases := []struct {
		name string
		w, h float64
		nets []Net
		opts Options
	}{
		{"zero-chip", 0, 300, demoNets(), Options{Pitch: 30}},
		{"nan-chip", math.NaN(), 300, demoNets(), Options{Pitch: 30}},
		{"inf-chip", 300, math.Inf(1), demoNets(), Options{Pitch: 30}},
		{"negative-pitch", 300, 300, demoNets(), Options{Pitch: -1}},
		{"nan-pitch", 300, 300, demoNets(), Options{Pitch: math.NaN()}},
		{"top-fraction", 300, 300, demoNets(), Options{Pitch: 30, TopFraction: 1.5}},
		{"nan-net", 300, 300, []Net{{X1: math.NaN(), Y1: 0, X2: 10, Y2: 10}}, Options{Pitch: 30}},
		{"net-outside-chip", 300, 300, []Net{{X1: -5, Y1: 0, X2: 10, Y2: 10}}, Options{Pitch: 30}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := EstimateIR(tc.w, tc.h, tc.nets, tc.opts); !errors.Is(err, ErrInvalidInput) {
				t.Errorf("err = %v, want ErrInvalidInput", err)
			}
		})
	}
}
