// Package congestion exposes the library's probabilistic congestion
// estimators standalone, decoupled from the floorplanner: given a chip
// outline and a set of two-pin nets (pins already placed), it computes
// congestion maps and chip-level scores under either the classic
// fixed-size-grid model or the paper's Irregular-Grid model.
//
// Use package floorplan when starting from a circuit netlist; use this
// package when the pin positions come from elsewhere (an external
// placer, a trace, a hand-built example).
package congestion

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"irgrid/internal/core"
	"irgrid/internal/geom"
	"irgrid/internal/grid"
	"irgrid/internal/netlist"
	"irgrid/telemetry"
)

// ErrInvalidInput reports chip dimensions, pitches or net coordinates
// that cannot parameterize any estimate (non-positive chip, non-finite
// values, pins outside the chip). Test with errors.Is.
var ErrInvalidInput = errors.New("congestion: invalid input")

// Net is a two-pin net given by its pin coordinates in µm. Multi-bend
// shortest Manhattan routing is assumed: the routing range is the
// bounding box of the two pins.
type Net struct {
	X1, Y1, X2, Y2 float64
}

// Options parameterizes an estimate.
type Options struct {
	// Pitch is the grid pitch in µm: the cell size of the fixed model,
	// or the Irregular-Grid base pitch (unit lattice + line-merge
	// threshold). Zero defaults to 30.
	Pitch float64
	// Exact uses exact Formula 3 sums in the IR model instead of the
	// Theorem 1 approximation. Ignored by the fixed model.
	Exact bool
	// BendLimited switches EstimateFixed to the L/Z-route variant:
	// only 1- and 2-bend shortest routes are considered instead of all
	// monotone routes. Ignored by the IR model.
	BendLimited bool
	// TopFraction is the most-congested fraction averaged into Score
	// (default 0.10).
	TopFraction float64
	// Workers is the parallelism of the IR model's evaluation engine:
	// 0 uses GOMAXPROCS, 1 forces sequential evaluation. Results are
	// bit-identical for every setting. Ignored by the fixed model.
	Workers int
	// Obs, when non-nil, receives the IR evaluation engine's metrics
	// (stage timings, Simpson-memo hit/miss counters, grid dimensions).
	// Telemetry never changes results. Ignored by the fixed model.
	Obs *telemetry.Registry
	// Spans, when non-nil, collects the IR engine's hierarchical stage
	// timings (evaluate/{merge,sweep,fold} and evaluate/topscore).
	// Spans never change results. Ignored by the fixed model.
	Spans *telemetry.Spans
}

func (o Options) pitch() float64 {
	if o.Pitch <= 0 {
		return 30
	}
	return o.Pitch
}

// Map is an evaluated congestion map.
type Map struct {
	// Model names the estimator that produced the map.
	Model string
	// XLines and YLines are the cell boundaries.
	XLines, YLines []float64
	// Density[row][col] is probability mass per µm² in the cell.
	Density [][]float64
	// Score is the chip-level congestion cost.
	Score float64
	// Cells is the number of evaluation cells.
	Cells int
}

// topMean averages the largest ceil(frac·N) values.
func topMean(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	k := int(math.Ceil(frac * float64(len(xs))))
	if k < 1 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	var sum float64
	for _, v := range xs[len(xs)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// MaxDensity returns the largest cell density.
func (m *Map) MaxDensity() float64 {
	var mx float64
	for _, row := range m.Density {
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
	}
	return mx
}

// CellAt returns the indices of the cell containing (x, y), or ok =
// false outside the map.
func (m *Map) CellAt(x, y float64) (col, row int, ok bool) {
	col = sort.SearchFloat64s(m.XLines, x) - 1
	row = sort.SearchFloat64s(m.YLines, y) - 1
	if col < 0 || row < 0 || col >= len(m.XLines)-1 || row >= len(m.YLines)-1 {
		return 0, 0, false
	}
	return col, row, true
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func toInternal(chipW, chipH float64, nets []Net, opts Options) (geom.Rect, []netlist.TwoPin, error) {
	if !finite(chipW, chipH) || chipW <= 0 || chipH <= 0 {
		return geom.Rect{}, nil, fmt.Errorf("%w: chip %gx%g must be positive and finite", ErrInvalidInput, chipW, chipH)
	}
	if !finite(opts.Pitch) || opts.Pitch < 0 {
		return geom.Rect{}, nil, fmt.Errorf("%w: pitch %g must be non-negative and finite (zero selects the default)", ErrInvalidInput, opts.Pitch)
	}
	if !finite(opts.TopFraction) || opts.TopFraction < 0 || opts.TopFraction > 1 {
		return geom.Rect{}, nil, fmt.Errorf("%w: top fraction %g must be in [0, 1]", ErrInvalidInput, opts.TopFraction)
	}
	chip := geom.Rect{X1: 0, Y1: 0, X2: chipW, Y2: chipH}
	out := make([]netlist.TwoPin, 0, len(nets))
	for i, n := range nets {
		if !finite(n.X1, n.Y1, n.X2, n.Y2) {
			return geom.Rect{}, nil, fmt.Errorf("%w: net %d has non-finite pin coordinates", ErrInvalidInput, i)
		}
		a := geom.Pt{X: n.X1, Y: n.Y1}
		b := geom.Pt{X: n.X2, Y: n.Y2}
		if !chip.Contains(a) || !chip.Contains(b) {
			return geom.Rect{}, nil, fmt.Errorf("%w: net %d pins outside the %gx%g chip", ErrInvalidInput, i, chipW, chipH)
		}
		out = append(out, netlist.TwoPin{A: a, B: b})
	}
	return chip, out, nil
}

// EstimateIR evaluates the Irregular-Grid model on the nets over a
// chipW×chipH chip anchored at the origin.
func EstimateIR(chipW, chipH float64, nets []Net, opts Options) (*Map, error) {
	return EstimateIRContext(context.Background(), chipW, chipH, nets, opts)
}

// EstimateIRContext is EstimateIR under a context: the evaluation
// engine checks the context at every shard boundary, and a canceled
// estimate returns the context's error (context.Canceled or
// context.DeadlineExceeded) instead of a partial map.
func EstimateIRContext(ctx context.Context, chipW, chipH float64, nets []Net, opts Options) (*Map, error) {
	chip, two, err := toInternal(chipW, chipH, nets, opts)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := core.Model{Pitch: opts.pitch(), Exact: opts.Exact, TopFraction: opts.TopFraction, Workers: opts.Workers, Obs: opts.Obs, Spans: opts.Spans}
	if ctx.Done() != nil {
		m.Ctx = ctx
	}
	mp := m.Evaluate(chip, two)
	// A cancellation mid-evaluation leaves mp partial; report the
	// cancellation rather than a wrong map.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &Map{
		Model:  m.Name(),
		XLines: append([]float64(nil), mp.XAxis...),
		YLines: append([]float64(nil), mp.YAxis...),
		Cells:  mp.GridCount(),
	}
	frac := opts.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	out.Score = mp.TopScore(frac)
	out.Density = make([][]float64, mp.Rows())
	for iy := 0; iy < mp.Rows(); iy++ {
		out.Density[iy] = make([]float64, mp.Cols())
		for ix := 0; ix < mp.Cols(); ix++ {
			out.Density[iy][ix] = mp.Density(ix, iy)
		}
	}
	return out, nil
}

// EstimateFixed evaluates the fixed-size-grid model (the baseline the
// paper compares against, and — at Pitch 10 — its judging model).
func EstimateFixed(chipW, chipH float64, nets []Net, opts Options) (*Map, error) {
	chip, two, err := toInternal(chipW, chipH, nets, opts)
	if err != nil {
		return nil, err
	}
	pitch := opts.pitch()
	var mp *grid.Map
	var name string
	if opts.BendLimited {
		m := grid.LZModel{Pitch: pitch, TopFraction: opts.TopFraction}
		mp = m.Evaluate(chip, two)
		name = m.Name()
	} else {
		m := grid.Model{Pitch: pitch, TopFraction: opts.TopFraction}
		mp = m.Evaluate(chip, two)
		name = m.Name()
	}
	out := &Map{
		Model: name,
		Cells: mp.Cols * mp.Rows,
	}
	frac := opts.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	out.Score = mp.TopScore(frac)
	for i := 0; i <= mp.Cols; i++ {
		out.XLines = append(out.XLines, float64(i)*pitch)
	}
	for i := 0; i <= mp.Rows; i++ {
		out.YLines = append(out.YLines, float64(i)*pitch)
	}
	cellArea := pitch * pitch
	out.Density = make([][]float64, mp.Rows)
	for iy := 0; iy < mp.Rows; iy++ {
		out.Density[iy] = make([]float64, mp.Cols)
		for ix := 0; ix < mp.Cols; ix++ {
			out.Density[iy][ix] = mp.At(ix, iy) / cellArea
		}
	}
	return out, nil
}

// CrossProbabilityExact returns the exact probability (Formula 3) that
// a type I two-pin net on a g1×g2 unit lattice crosses the cell
// rectangle [x1..x2]×[y1..y2]; cells covering a pin return 1. It is
// exposed for studying the model itself (Figure 6/8 style analyses).
func CrossProbabilityExact(g1, g2, x1, x2, y1, y2 int) float64 {
	return core.ExactCrossProb(g1, g2, x1, x2, y1, y2)
}

// CrossProbabilityApprox is the Theorem 1 approximation of
// CrossProbabilityExact (simpsonN <= 0 selects the default).
func CrossProbabilityApprox(g1, g2, x1, x2, y1, y2, simpsonN int) float64 {
	return core.ApproxCrossProb(g1, g2, x1, x2, y1, y2, simpsonN)
}
