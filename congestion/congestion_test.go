package congestion

import (
	"math"
	"testing"
)

func demoNets() []Net {
	return []Net{
		{X1: 30, Y1: 30, X2: 270, Y2: 270},
		{X1: 30, Y1: 270, X2: 270, Y2: 30},
		{X1: 150, Y1: 30, X2: 150, Y2: 270},
		{X1: 60, Y1: 150, X2: 240, Y2: 150},
	}
}

func TestEstimateIRBasics(t *testing.T) {
	mp, err := EstimateIR(300, 300, demoNets(), Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Model != "ir-grid" {
		t.Errorf("model = %q", mp.Model)
	}
	if mp.Cells != (len(mp.XLines)-1)*(len(mp.YLines)-1) {
		t.Errorf("cells %d vs lines %dx%d", mp.Cells, len(mp.XLines), len(mp.YLines))
	}
	if mp.Score <= 0 || mp.MaxDensity() <= 0 {
		t.Errorf("score %g max %g", mp.Score, mp.MaxDensity())
	}
	if mp.Score > mp.MaxDensity()+1e-12 {
		t.Errorf("score %g exceeds max density %g", mp.Score, mp.MaxDensity())
	}
}

func TestEstimateIRExactVsApprox(t *testing.T) {
	ex, err := EstimateIR(300, 300, demoNets(), Options{Pitch: 30, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := EstimateIR(300, 300, demoNets(), Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Model != "ir-grid(exact)" {
		t.Errorf("model = %q", ex.Model)
	}
	if ex.Cells != ap.Cells {
		t.Fatalf("cell counts differ: %d vs %d", ex.Cells, ap.Cells)
	}
	if rel := math.Abs(ex.Score-ap.Score) / ex.Score; rel > 0.2 {
		t.Errorf("scores diverge: %g vs %g", ex.Score, ap.Score)
	}
}

func TestEstimateFixedBasics(t *testing.T) {
	mp, err := EstimateFixed(300, 300, demoNets(), Options{Pitch: 50})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Model != "fixed-grid" {
		t.Errorf("model = %q", mp.Model)
	}
	if mp.Cells != 36 {
		t.Errorf("cells = %d, want 36", mp.Cells)
	}
	if len(mp.XLines) != 7 || len(mp.YLines) != 7 {
		t.Errorf("lines %d/%d", len(mp.XLines), len(mp.YLines))
	}
	if mp.Score <= 0 {
		t.Errorf("score = %g", mp.Score)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := EstimateIR(0, 300, demoNets(), Options{}); err == nil {
		t.Error("zero chip accepted")
	}
	if _, err := EstimateFixed(300, -1, demoNets(), Options{}); err == nil {
		t.Error("negative chip accepted")
	}
	out := []Net{{X1: -10, Y1: 0, X2: 100, Y2: 100}}
	if _, err := EstimateIR(300, 300, out, Options{}); err == nil {
		t.Error("pin outside chip accepted")
	}
}

func TestDefaultPitch(t *testing.T) {
	mp, err := EstimateFixed(300, 300, demoNets(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Default pitch 30 -> 10x10 cells.
	if mp.Cells != 100 {
		t.Errorf("cells = %d, want 100", mp.Cells)
	}
}

func TestTopFractionOption(t *testing.T) {
	n := demoNets()
	full, err := EstimateFixed(300, 300, n, Options{Pitch: 30, TopFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	top, err := EstimateFixed(300, 300, n, Options{Pitch: 30, TopFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if top.Score < full.Score {
		t.Errorf("top-10%% score %g below whole-chip mean %g", top.Score, full.Score)
	}
}

func TestCellAt(t *testing.T) {
	mp, err := EstimateFixed(300, 300, demoNets(), Options{Pitch: 100})
	if err != nil {
		t.Fatal(err)
	}
	cx, cy, ok := mp.CellAt(150, 250)
	if !ok || cx != 1 || cy != 2 {
		t.Errorf("CellAt = %d,%d,%v", cx, cy, ok)
	}
	if _, _, ok := mp.CellAt(-5, 50); ok {
		t.Error("outside point located")
	}
	if _, _, ok := mp.CellAt(50, 400); ok {
		t.Error("outside point located")
	}
}

func TestCrossProbabilityFacade(t *testing.T) {
	// The facade matches the example worked in the accuracy study.
	exact := CrossProbabilityExact(31, 21, 10, 20, 2, 15)
	approx := CrossProbabilityApprox(31, 21, 10, 20, 2, 15, 0)
	if exact <= 0 || exact > 1 {
		t.Errorf("exact = %g", exact)
	}
	if math.Abs(exact-approx) > 0.05 {
		t.Errorf("facade deviation %g", math.Abs(exact-approx))
	}
	if CrossProbabilityExact(10, 10, 0, 0, 0, 0) != 1 {
		t.Error("pin cell should be 1")
	}
}

func TestEmptyNets(t *testing.T) {
	mp, err := EstimateIR(300, 300, nil, Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Score != 0 || mp.MaxDensity() != 0 {
		t.Errorf("empty nets: score %g max %g", mp.Score, mp.MaxDensity())
	}
	// The whole chip is one IR cell (only boundary lines).
	if mp.Cells != 1 {
		t.Errorf("cells = %d, want 1", mp.Cells)
	}
}

func TestDegenerateLineNet(t *testing.T) {
	nets := []Net{{X1: 30, Y1: 150, X2: 270, Y2: 150}}
	mp, err := EstimateIR(300, 300, nets, Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	if mp.MaxDensity() <= 0 {
		t.Error("line net contributed nothing")
	}
}

func TestBendLimitedOption(t *testing.T) {
	mp, err := EstimateFixed(300, 300, demoNets(), Options{Pitch: 30, BendLimited: true})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Model != "fixed-grid-lz" {
		t.Errorf("model = %q", mp.Model)
	}
	if mp.Score <= 0 {
		t.Errorf("score = %g", mp.Score)
	}
	mono, err := EstimateFixed(300, 300, demoNets(), Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	// The two route-distribution assumptions disagree somewhere.
	differs := false
	for iy := range mp.Density {
		for ix := range mp.Density[iy] {
			if mp.Density[iy][ix] != mono.Density[iy][ix] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("LZ and monotone maps should differ")
	}
}
