package congestion_test

import (
	"fmt"

	"irgrid/congestion"
)

// ExampleEstimateIR scores a hand-placed net set with the paper's
// Irregular-Grid model.
func ExampleEstimateIR() {
	nets := []congestion.Net{
		{X1: 90, Y1: 90, X2: 510, Y2: 510},
		{X1: 90, Y1: 510, X2: 510, Y2: 90},
	}
	mp, err := congestion.EstimateIR(600, 600, nets, congestion.Options{Pitch: 30})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("model:", mp.Model)
	fmt.Println("irregular cells:", mp.Cells)
	fmt.Println("score positive:", mp.Score > 0)
	// Output:
	// model: ir-grid
	// irregular cells: 9
	// score positive: true
}

// ExampleCrossProbabilityExact evaluates Formula 3 directly: the
// probability that a monotone route crosses a given cell rectangle.
func ExampleCrossProbabilityExact() {
	// The paper's Figure 6 setting: a 6x6 unit lattice, IR-grid
	// {2..4}x{2..5}.
	p := congestion.CrossProbabilityExact(6, 6, 2, 4, 2, 5)
	fmt.Printf("%.6f\n", p) // 246/252
	// Output:
	// 0.976190
}

// ExampleRoute ground-truth-routes a congested net set and reports the
// overflow the estimators try to predict.
func ExampleRoute() {
	var nets []congestion.Net
	for i := 0; i < 8; i++ {
		nets = append(nets, congestion.Net{X1: 15, Y1: 135, X2: 285, Y2: 135})
	}
	rep, err := congestion.Route(300, 300, nets, congestion.RouteOptions{
		Pitch: 30, Capacity: 2, Iterations: 1, Monotone: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("overflowed:", rep.Overflow > 0)
	// Output:
	// overflowed: true
}
