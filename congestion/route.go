package congestion

import (
	"irgrid/internal/route"
)

// RouteOptions parameterizes ground-truth global routing.
type RouteOptions struct {
	// Pitch is the routing tile size in µm (default 30).
	Pitch float64
	// Capacity is the number of tracks per tile edge (default 8).
	Capacity int
	// Iterations bounds the rip-up-and-reroute negotiation loop
	// (default 8).
	Iterations int
	// Monotone restricts routes to shortest Manhattan paths inside
	// each net's bounding box — the congestion models' routing
	// assumption. Off, routes may detour around congestion.
	Monotone bool
}

// RouteReport summarizes a global-routing run: the congestion ground
// truth the probabilistic estimators try to predict.
type RouteReport struct {
	// Overflow is the total track demand beyond capacity over all tile
	// edges after the final negotiation iteration (0 = fully routable).
	Overflow int
	// MaxOverflow is the worst single-edge overflow.
	MaxOverflow int
	// Iterations is the number of negotiation rounds executed.
	Iterations int
	// Wirelength is the total routed wirelength in µm, including
	// detours.
	Wirelength float64
	// Utilization holds every tile edge's usage/capacity ratio.
	Utilization []float64
}

// Route global-routes the 2-pin nets over a chipW×chipH chip and
// reports the realized congestion. Use it to validate an estimator:
// an estimate is good when it ranks floorplans the way Overflow does.
func Route(chipW, chipH float64, nets []Net, opts RouteOptions) (*RouteReport, error) {
	chip, two, err := toInternal(chipW, chipH, nets, Options{Pitch: opts.Pitch})
	if err != nil {
		return nil, err
	}
	pitch := opts.Pitch
	if pitch <= 0 {
		pitch = 30
	}
	r := route.New(route.Config{
		Pitch:         pitch,
		Capacity:      opts.Capacity,
		MaxIterations: opts.Iterations,
		Monotone:      opts.Monotone,
	})
	res, err := r.RouteNets(chip, two)
	if err != nil {
		return nil, err
	}
	rep := &RouteReport{
		Overflow:    res.Overflow,
		MaxOverflow: res.MaxOver,
		Iterations:  res.Iterations,
		Utilization: res.Grid.EdgeUtilizations(),
	}
	for _, rt := range res.Routes {
		rep.Wirelength += rt.Wirelength(pitch)
	}
	return rep, nil
}

// EstimateRouted produces a congestion Map from an actual routing run:
// each tile's value is the worst usage/capacity ratio of its incident
// edges. Unlike the probabilistic estimators, the "density" here is a
// dimensionless utilization (1.0 = an incident edge exactly at
// capacity), which is what routers report; it renders on the same heat
// maps.
func EstimateRouted(chipW, chipH float64, nets []Net, opts RouteOptions) (*Map, error) {
	chip, two, err := toInternal(chipW, chipH, nets, Options{Pitch: opts.Pitch})
	if err != nil {
		return nil, err
	}
	pitch := opts.Pitch
	if pitch <= 0 {
		pitch = 30
	}
	r := route.New(route.Config{
		Pitch:         pitch,
		Capacity:      opts.Capacity,
		MaxIterations: opts.Iterations,
		Monotone:      opts.Monotone,
	})
	res, err := r.RouteNets(chip, two)
	if err != nil {
		return nil, err
	}
	g := res.Grid
	out := &Map{
		Model: "routed",
		Cells: g.Cols * g.Rows,
	}
	for i := 0; i <= g.Cols; i++ {
		out.XLines = append(out.XLines, float64(i)*pitch)
	}
	for i := 0; i <= g.Rows; i++ {
		out.YLines = append(out.YLines, float64(i)*pitch)
	}
	cap := float64(g.Capacity)
	out.Density = make([][]float64, g.Rows)
	for y := 0; y < g.Rows; y++ {
		out.Density[y] = make([]float64, g.Cols)
		for x := 0; x < g.Cols; x++ {
			var worst int
			if x > 0 {
				worst = maxInt(worst, g.UsageH(x-1, y))
			}
			if x < g.Cols-1 {
				worst = maxInt(worst, g.UsageH(x, y))
			}
			if y > 0 {
				worst = maxInt(worst, g.UsageV(x, y-1))
			}
			if y < g.Rows-1 {
				worst = maxInt(worst, g.UsageV(x, y))
			}
			out.Density[y][x] = float64(worst) / cap
		}
	}
	// Score: the same top-10% aggregate the other models use, over
	// tile utilizations.
	flat := make([]float64, 0, out.Cells)
	for _, row := range out.Density {
		flat = append(flat, row...)
	}
	out.Score = topMean(flat, 0.10)
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
