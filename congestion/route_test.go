package congestion

import (
	"testing"
)

func TestRouteBasics(t *testing.T) {
	rep, err := Route(300, 300, demoNets(), RouteOptions{Pitch: 30, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overflow != 0 {
		t.Errorf("four nets at capacity 8 should not overflow: %d", rep.Overflow)
	}
	if rep.Wirelength <= 0 {
		t.Errorf("wirelength = %g", rep.Wirelength)
	}
	if len(rep.Utilization) == 0 {
		t.Error("no utilizations")
	}
	for _, u := range rep.Utilization {
		if u < 0 {
			t.Fatalf("negative utilization %g", u)
		}
	}
}

func TestRouteOverflowUnderPressure(t *testing.T) {
	var nets []Net
	for i := 0; i < 10; i++ {
		nets = append(nets, Net{X1: 15, Y1: 135, X2: 285, Y2: 135})
	}
	rep, err := Route(300, 300, nets, RouteOptions{Pitch: 30, Capacity: 1, Iterations: 1, Monotone: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overflow == 0 {
		t.Error("ten stacked monotone nets at capacity 1 must overflow")
	}
	if rep.MaxOverflow <= 0 || rep.MaxOverflow > rep.Overflow {
		t.Errorf("max overflow %d vs total %d", rep.MaxOverflow, rep.Overflow)
	}
}

func TestRouteNegotiationResolves(t *testing.T) {
	var nets []Net
	for i := 0; i < 3; i++ {
		nets = append(nets, Net{X1: 15, Y1: 135, X2: 285, Y2: 135})
	}
	rep, err := Route(300, 300, nets, RouteOptions{Pitch: 30, Capacity: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overflow != 0 {
		t.Errorf("free-detour negotiation should resolve 3 nets: overflow %d", rep.Overflow)
	}
}

func TestRouteValidation(t *testing.T) {
	if _, err := Route(0, 300, nil, RouteOptions{}); err == nil {
		t.Error("zero chip accepted")
	}
	if _, err := Route(300, 300, []Net{{X1: -1, Y1: 0, X2: 10, Y2: 10}}, RouteOptions{}); err == nil {
		t.Error("out-of-chip pin accepted")
	}
}

func TestRouteEstimatorAgreement(t *testing.T) {
	// The prediction story end to end: the IR estimate of a congested
	// net set should exceed that of a sparse one, and the router's
	// overflow should agree on the ordering.
	sparse := []Net{{X1: 30, Y1: 30, X2: 270, Y2: 270}}
	var dense []Net
	for i := 0; i < 16; i++ {
		dense = append(dense, Net{X1: 90, Y1: 135, X2: 210, Y2: 165})
	}
	ds, err := EstimateIR(300, 300, dense, Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := EstimateIR(300, 300, sparse, Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Score <= ss.Score {
		t.Errorf("IR: dense %g should exceed sparse %g", ds.Score, ss.Score)
	}
	dr, err := Route(300, 300, dense, RouteOptions{Pitch: 30, Capacity: 2, Iterations: 1, Monotone: true})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Route(300, 300, sparse, RouteOptions{Pitch: 30, Capacity: 2, Iterations: 1, Monotone: true})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Overflow <= sr.Overflow {
		t.Errorf("router: dense %d should exceed sparse %d", dr.Overflow, sr.Overflow)
	}
}

func TestEstimateRouted(t *testing.T) {
	var nets []Net
	for i := 0; i < 6; i++ {
		nets = append(nets, Net{X1: 15, Y1: 135, X2: 285, Y2: 135})
	}
	mp, err := EstimateRouted(300, 300, nets, RouteOptions{Pitch: 30, Capacity: 2, Iterations: 1, Monotone: true})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Model != "routed" {
		t.Errorf("model = %q", mp.Model)
	}
	if mp.Cells != 100 {
		t.Errorf("cells = %d", mp.Cells)
	}
	// Six monotone nets on a capacity-2 corridor: utilization 3.0 on
	// the shared row.
	if mp.MaxDensity() < 2.9 {
		t.Errorf("max utilization %g, want ~3", mp.MaxDensity())
	}
	if mp.Score <= 0 {
		t.Errorf("score = %g", mp.Score)
	}
	if _, err := EstimateRouted(0, 0, nets, RouteOptions{}); err == nil {
		t.Error("bad chip accepted")
	}
}
