module irgrid

go 1.22
