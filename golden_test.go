package irgrid

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"irgrid/floorplan"
	"irgrid/internal/core"
	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/oracle/diff"
)

// The golden regression suite snapshots a fixed-seed floorplanning run
// per MCNC benchmark — chip metrics AND the full per-IR-grid
// congestion map — into testdata/golden/*.json. Any change to the
// search, the packer, pin placement, MST decomposition, the cutting
// lines or the probability engine shows up as a golden diff.
//
// Regenerate after an intentional behaviour change with:
//
//	go test -run TestGoldenMCNC -update .
//
// and review the JSON diff like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files with current results")

// goldenTol is the relative tolerance for float comparisons: golden
// runs are bit-deterministic on one machine, but compilers may fuse
// multiply-adds differently across architectures.
const goldenTol = 1e-9

type goldenMap struct {
	XLines  []float64   `json:"x_lines"`
	YLines  []float64   `json:"y_lines"`
	Density [][]float64 `json:"density"`
	Score   float64     `json:"score"`
}

type goldenResult struct {
	Circuit        string    `json:"circuit"`
	Seed           int64     `json:"seed"`
	Pitch          float64   `json:"pitch"`
	ChipW          float64   `json:"chip_w"`
	ChipH          float64   `json:"chip_h"`
	Area           float64   `json:"area"`
	Wirelength     float64   `json:"wirelength"`
	CongestionCost float64   `json:"congestion_cost"`
	Cost           float64   `json:"cost"`
	Map            goldenMap `json:"map"`
}

// goldenOptions is the fixed small-but-real schedule every golden run
// uses; changing it invalidates every golden file.
func goldenOptions(pitch float64) floorplan.Options {
	return floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: pitch},
		Seed:         1,
		MovesPerTemp: 30,
		MaxTemps:     40,
	}
}

func runGolden(t *testing.T, name string) (*goldenResult, []netlist.TwoPin) {
	t.Helper()
	c, err := floorplan.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	pitch := diff.BenchPitch(name)
	res, err := floorplan.Run(c, goldenOptions(pitch))
	if err != nil {
		t.Fatal(err)
	}
	cm, err := res.CongestionMap(floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: pitch})
	if err != nil {
		t.Fatal(err)
	}
	raw := res.TwoPinNets()
	nets := make([]netlist.TwoPin, len(raw))
	for i, q := range raw {
		nets[i] = netlist.TwoPin{
			A: geom.Pt{X: q[0], Y: q[1]},
			B: geom.Pt{X: q[2], Y: q[3]},
		}
	}
	return &goldenResult{
		Circuit:        name,
		Seed:           1,
		Pitch:          pitch,
		ChipW:          res.ChipW,
		ChipH:          res.ChipH,
		Area:           res.Area,
		Wirelength:     res.Wirelength,
		CongestionCost: res.CongestionCost,
		Cost:           res.Cost,
		Map: goldenMap{
			XLines:  cm.XLines,
			YLines:  cm.YLines,
			Density: cm.Density,
			Score:   cm.Score,
		},
	}, nets
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= goldenTol*math.Max(math.Abs(a), math.Abs(b))
}

func compareGolden(t *testing.T, want, got *goldenResult) {
	t.Helper()
	scalar := func(field string, w, g float64) {
		if !approxEq(w, g) {
			t.Errorf("%s: golden %.12g, got %.12g", field, w, g)
		}
	}
	scalar("chip_w", want.ChipW, got.ChipW)
	scalar("chip_h", want.ChipH, got.ChipH)
	scalar("area", want.Area, got.Area)
	scalar("wirelength", want.Wirelength, got.Wirelength)
	scalar("congestion_cost", want.CongestionCost, got.CongestionCost)
	scalar("cost", want.Cost, got.Cost)
	scalar("map.score", want.Map.Score, got.Map.Score)

	lines := func(field string, w, g []float64) {
		if len(w) != len(g) {
			t.Errorf("%s: golden has %d lines, got %d", field, len(w), len(g))
			return
		}
		for i := range w {
			if !approxEq(w[i], g[i]) {
				t.Errorf("%s[%d]: golden %.12g, got %.12g", field, i, w[i], g[i])
				return
			}
		}
	}
	lines("map.x_lines", want.Map.XLines, got.Map.XLines)
	lines("map.y_lines", want.Map.YLines, got.Map.YLines)

	if len(want.Map.Density) != len(got.Map.Density) {
		t.Errorf("map.density: golden has %d rows, got %d", len(want.Map.Density), len(got.Map.Density))
		return
	}
	for iy := range want.Map.Density {
		if len(want.Map.Density[iy]) != len(got.Map.Density[iy]) {
			t.Errorf("map.density[%d]: golden has %d cols, got %d",
				iy, len(want.Map.Density[iy]), len(got.Map.Density[iy]))
			return
		}
		for ix := range want.Map.Density[iy] {
			if !approxEq(want.Map.Density[iy][ix], got.Map.Density[iy][ix]) {
				t.Errorf("map.density[%d][%d]: golden %.12g, got %.12g",
					iy, ix, want.Map.Density[iy][ix], got.Map.Density[iy][ix])
				return
			}
		}
	}
}

// TestGoldenMCNC floorplans every MCNC benchmark with a fixed seed and
// schedule and compares metrics and the full congestion map against
// the checked-in goldens. On top of the snapshot comparison, the
// annealed placement's two-pin nets are pushed through the
// oracle-vs-engine differential harness, so the goldens are verified
// against ground truth, not just against yesterday's output.
func TestGoldenMCNC(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite runs full annealing schedules; skipped with -short")
	}
	for _, name := range floorplan.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			got, nets := runGolden(t, name)
			path := filepath.Join("testdata", "golden", name+".json")

			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			var want goldenResult
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}
			compareGolden(t, &want, got)

			// Differential verification of the golden placement.
			chip := geom.Rect{X1: 0, Y1: 0, X2: got.ChipW, Y2: got.ChipH}
			r, err := diff.Compare(chip, nets, diff.Opts{
				Model:   core.Model{Pitch: got.Pitch},
				Workers: []int{1, 4},
			})
			if err != nil {
				t.Errorf("oracle differential on golden placement: %v", err)
			} else if r.MaxExactErr > 1e-9 {
				t.Errorf("golden placement max exact-cell error %.3g > 1e-9", r.MaxExactErr)
			}
		})
	}
}

// TestGoldenFilesPresent keeps the suite honest: the five golden files
// must exist in the repo even when the comparison itself is skipped by
// -short.
func TestGoldenFilesPresent(t *testing.T) {
	for _, name := range floorplan.BenchmarkNames() {
		path := filepath.Join("testdata", "golden", name+".json")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("golden file missing: %v (regenerate with %s)", err,
				fmt.Sprintf("go test -run TestGoldenMCNC -update ."))
		}
	}
}
