package irgrid

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"irgrid/internal/core"
	"irgrid/internal/obs"
)

// overheadRecord compares one telemetry configuration against the
// untraced baseline in BENCH_trace_overhead.json.
type overheadRecord struct {
	Name        string  `json:"name"`
	Telemetry   string  `json:"telemetry"` // "disabled" | "enabled" | "spans" | "spans+recorder"
	Nets        int     `json:"nets"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type overheadDoc struct {
	GOMAXPROCS          int              `json:"gomaxprocs"`
	NumCPU              int              `json:"num_cpu"`
	GoVersion           string           `json:"go_version"`
	Results             []overheadRecord `json:"results"`
	OverheadPct         float64          `json:"overhead_pct"`          // metrics registry vs disabled ns/op
	SpanOverheadPct     float64          `json:"span_overhead_pct"`     // spans vs disabled ns/op
	RecorderOverheadPct float64          `json:"recorder_overhead_pct"` // spans+recorder vs disabled ns/op
}

// TestWriteTraceOverheadBenchJSON regenerates BENCH_trace_overhead.json:
// the BenchmarkIRGridScore workload (ami33 fixture, steady-state
// engine) measured with telemetry disabled, with a live metrics
// registry attached, with span tracing on top, and with the flight
// recorder armed as well, recording the ns/op and allocs/op cost of
// each observability tier. The disabled tier must stay at 0 allocs/op
// and every enabled tier within the 2% marginal-cost gate. It runs
// only when IRGRID_BENCH_JSON is set:
//
//	IRGRID_BENCH_JSON=1 go test -run TestWriteTraceOverheadBenchJSON .
func TestWriteTraceOverheadBenchJSON(t *testing.T) {
	if os.Getenv("IRGRID_BENCH_JSON") == "" {
		t.Skip("set IRGRID_BENCH_JSON=1 to regenerate BENCH_trace_overhead.json")
	}

	doc := overheadDoc{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}

	sol := ami33Solution(t)
	configs := []struct {
		name      string
		telemetry string
		model     core.Model
	}{
		{"BenchmarkIRGridScore/untraced", "disabled", core.Model{}},
		{"BenchmarkIRGridScore/traced", "enabled", core.Model{Obs: obs.NewRegistry()}},
		{"BenchmarkIRGridScore/spans", "spans", core.Model{Spans: obs.NewSpans()}},
		{"BenchmarkIRGridScore/spans+recorder", "spans+recorder",
			core.Model{Spans: obs.NewSpans(), Recorder: obs.NewRecorder(0)}},
	}

	// One warm steady-state evaluator per config; the repetitions are
	// interleaved and the minimum ns/op kept, so shared-machine noise
	// (which only ever slows a run down) cancels out of the comparison.
	evals := make([]*core.Evaluator, len(configs))
	recs := make([]*overheadRecord, len(configs))
	for i, c := range configs {
		m := c.model
		m.Pitch = 30
		evals[i] = m.NewEvaluator()
		evals[i].Score(sol.Placement.Chip, sol.Nets) // warm arenas, memos, span pool
		doc.Results = append(doc.Results, overheadRecord{
			Name: c.name, Telemetry: c.telemetry, Nets: len(sol.Nets),
		})
	}
	for i := range configs {
		recs[i] = &doc.Results[i]
	}
	const reps = 5
	for rep := 0; rep < reps; rep++ {
		for i := range configs {
			e := evals[i]
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					if s := e.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
						b.Fatal("zero score")
					}
				}
			})
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if rep == 0 || ns < recs[i].NsPerOp {
				recs[i].NsPerOp = ns
				recs[i].N = r.N
			}
			if a := r.AllocsPerOp(); a > recs[i].AllocsPerOp {
				recs[i].AllocsPerOp = a
				recs[i].BytesPerOp = r.AllocedBytesPerOp()
			}
		}
	}
	pct := func(rec *overheadRecord, base float64) float64 {
		return 100 * (rec.NsPerOp - base) / base
	}
	base, traced, spanned, recorded := recs[0], recs[1], recs[2], recs[3]

	doc.OverheadPct = pct(traced, base.NsPerOp)
	doc.SpanOverheadPct = pct(spanned, base.NsPerOp)
	doc.RecorderOverheadPct = pct(recorded, base.NsPerOp)

	// The zero-overhead contract, gated: the disabled path allocates
	// nothing, and each observability tier costs under 2% marginal
	// ns/op on the steady-state scoring workload.
	if base.AllocsPerOp != 0 {
		t.Errorf("disabled path allocates %d allocs/op, want 0", base.AllocsPerOp)
	}
	for name, overhead := range map[string]float64{
		"metrics":        doc.OverheadPct,
		"spans":          doc.SpanOverheadPct,
		"spans+recorder": doc.RecorderOverheadPct,
	} {
		if overhead >= 2 {
			t.Errorf("%s overhead %.2f%%, want < 2%%", name, overhead)
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_trace_overhead.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_trace_overhead.json:\n%s", buf)
}
