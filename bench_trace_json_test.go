package irgrid

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"irgrid/internal/core"
	"irgrid/internal/obs"
)

// overheadRecord compares one telemetry configuration against the
// untraced baseline in BENCH_trace_overhead.json.
type overheadRecord struct {
	Name        string  `json:"name"`
	Telemetry   string  `json:"telemetry"` // "disabled" | "enabled"
	Nets        int     `json:"nets"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type overheadDoc struct {
	GOMAXPROCS  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	GoVersion   string           `json:"go_version"`
	Results     []overheadRecord `json:"results"`
	OverheadPct float64          `json:"overhead_pct"` // enabled vs disabled ns/op
}

// TestWriteTraceOverheadBenchJSON regenerates BENCH_trace_overhead.json:
// the BenchmarkIRGridScore workload (ami33 fixture, steady-state
// engine) measured with telemetry disabled and with a live metrics
// registry attached, recording the ns/op and allocs/op cost of
// enabling observability. It runs only when IRGRID_BENCH_JSON is set:
//
//	IRGRID_BENCH_JSON=1 go test -run TestWriteTraceOverheadBenchJSON .
func TestWriteTraceOverheadBenchJSON(t *testing.T) {
	if os.Getenv("IRGRID_BENCH_JSON") == "" {
		t.Skip("set IRGRID_BENCH_JSON=1 to regenerate BENCH_trace_overhead.json")
	}

	doc := overheadDoc{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}

	sol := ami33Solution(t)
	measure := func(name, telemetry string, reg *obs.Registry) float64 {
		e := core.Model{Pitch: 30, Obs: reg}.NewEvaluator()
		e.Score(sol.Placement.Chip, sol.Nets) // warm arenas and memos
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if s := e.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
					b.Fatal("zero score")
				}
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		doc.Results = append(doc.Results, overheadRecord{
			Name: name, Telemetry: telemetry, Nets: len(sol.Nets),
			N: r.N, NsPerOp: ns,
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
		return ns
	}

	base := measure("BenchmarkIRGridScore/untraced", "disabled", nil)
	traced := measure("BenchmarkIRGridScore/traced", "enabled", obs.NewRegistry())
	doc.OverheadPct = 100 * (traced - base) / base

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_trace_overhead.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_trace_overhead.json:\n%s", buf)
}
