package irgrid

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"irgrid/internal/core"
)

// moveBenchRecord is one (circuit, regime) row of BENCH_moves.json:
// the cost of a single SA move under full re-evaluation and under the
// incremental delta engine, replaying the same pre-generated trace.
type moveBenchRecord struct {
	Circuit           string  `json:"circuit"`
	Regime            string  `json:"regime"`
	Nets              int     `json:"nets"`
	TraceLen          int     `json:"trace_len"`
	FullNsPerMove     float64 `json:"full_ns_per_move"`
	IncNsPerMove      float64 `json:"incremental_ns_per_move"`
	Speedup           float64 `json:"speedup"`
	FullAllocsPerMove int64   `json:"full_allocs_per_move"`
	IncAllocsPerMove  int64   `json:"incremental_allocs_per_move"`
}

type moveBenchDoc struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	GoVersion  string            `json:"go_version"`
	Results    []moveBenchRecord `json:"results"`
}

// moveBenchCases enumerates the traces recorded in BENCH_moves.json;
// the regimes match BenchmarkAnnealMoves. "repack" replays M1/M2/M3
// slicing moves (every cutting line shifts, the axis-rebuild path);
// "stable-axes" replays endpoint re-pairings on a stationary
// placement (small dirty sets, the identical-axes fast path).
func moveBenchCases(tb testing.TB) []struct {
	circuit, regime string
	steps           []moveStep
} {
	var cases []struct {
		circuit, regime string
		steps           []moveStep
	}
	for _, name := range []string{"apte", "ami33"} {
		cases = append(cases,
			struct {
				circuit, regime string
				steps           []moveStep
			}{name, "repack", annealMoveTrace(tb, name, 256, 42)},
			struct {
				circuit, regime string
				steps           []moveStep
			}{name, "stable-axes", repairMoveTrace(tb, name, 256, 4, 43)},
		)
	}
	return cases
}

// TestWriteMovesBenchJSON regenerates BENCH_moves.json, the
// machine-readable record of the per-move congestion cost under the
// full evaluator and the incremental delta engine
// (BenchmarkAnnealMoves in JSON form). It runs only when
// IRGRID_BENCH_JSON is set:
//
//	IRGRID_BENCH_JSON=1 go test -run TestWriteMovesBenchJSON .
func TestWriteMovesBenchJSON(t *testing.T) {
	if os.Getenv("IRGRID_BENCH_JSON") == "" {
		t.Skip("set IRGRID_BENCH_JSON=1 to regenerate BENCH_moves.json")
	}

	doc := moveBenchDoc{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}

	for _, c := range moveBenchCases(t) {
		steps := c.steps
		m := core.Model{Pitch: mcncPitch(c.circuit)}

		e := m.NewEvaluator()
		e.Score(steps[0].chip, steps[0].nets) // warm arenas and memos
		full := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := &steps[i%len(steps)]
				if sc := e.Score(s.chip, s.nets); sc <= 0 {
					b.Fatal("zero score")
				}
			}
		})

		d := m.NewDeltaEvaluator()
		for i := range steps { // amortize first-seen sweeps, as a real anneal does
			d.Score(steps[i].chip, steps[i].nets)
			if !steps[i].accept {
				d.Rollback()
			}
		}
		inc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := &steps[i%len(steps)]
				if sc := d.Score(s.chip, s.nets); sc <= 0 {
					b.Fatal("zero score")
				}
				if !s.accept {
					d.Rollback()
				}
			}
		})

		fullNs := float64(full.T.Nanoseconds()) / float64(full.N)
		incNs := float64(inc.T.Nanoseconds()) / float64(inc.N)
		doc.Results = append(doc.Results, moveBenchRecord{
			Circuit: c.circuit, Regime: c.regime,
			Nets: len(steps[0].nets), TraceLen: len(steps),
			FullNsPerMove: fullNs, IncNsPerMove: incNs,
			Speedup:           fullNs / incNs,
			FullAllocsPerMove: full.AllocsPerOp(),
			IncAllocsPerMove:  inc.AllocsPerOp(),
		})
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_moves.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_moves.json:\n%s", buf)
}

// TestMovesBenchJSONSchema validates the committed BENCH_moves.json:
// every (circuit, regime) pair from moveBenchCases is present, the
// incremental hot path is allocation-free, and the recorded speedups
// hold the floors the incremental engine is built to deliver — ≥10×
// moves/sec over full re-evaluation in the structure-preserving
// stable-axes regime, and ≥2× even when every slicing move re-packs
// the floorplan and forces an axis rebuild.
func TestMovesBenchJSONSchema(t *testing.T) {
	buf, err := os.ReadFile("BENCH_moves.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc moveBenchDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.GoVersion == "" || doc.GOMAXPROCS <= 0 || doc.NumCPU <= 0 {
		t.Errorf("missing environment fields: %+v", doc)
	}

	floor := map[string]float64{"stable-axes": 10, "repack": 2}
	seen := map[string]bool{}
	for _, r := range doc.Results {
		key := r.Circuit + "/" + r.Regime
		if seen[key] {
			t.Errorf("duplicate record %s", key)
		}
		seen[key] = true
		if r.Nets <= 0 || r.TraceLen <= 0 || r.FullNsPerMove <= 0 || r.IncNsPerMove <= 0 {
			t.Errorf("%s: non-positive fields: %+v", key, r)
		}
		if got := r.FullNsPerMove / r.IncNsPerMove; r.Speedup <= 0 ||
			got/r.Speedup > 1.001 || r.Speedup/got > 1.001 {
			t.Errorf("%s: speedup %.3f inconsistent with ns/move ratio %.3f", key, r.Speedup, got)
		}
		if r.IncAllocsPerMove != 0 {
			t.Errorf("%s: incremental path allocates (%d allocs/move)", key, r.IncAllocsPerMove)
		}
		if min, ok := floor[r.Regime]; !ok {
			t.Errorf("%s: unknown regime", key)
		} else if r.Speedup < min {
			t.Errorf("%s: speedup %.2f below the %.0fx floor", key, r.Speedup, min)
		}
	}
	for _, circuit := range []string{"apte", "ami33"} {
		for _, regime := range []string{"repack", "stable-axes"} {
			if key := fmt.Sprintf("%s/%s", circuit, regime); !seen[key] {
				t.Errorf("missing record %s", key)
			}
		}
	}
}
