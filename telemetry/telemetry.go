// Package telemetry is the public face of the library's observability
// subsystem: a lightweight metrics registry (counters, gauges,
// histograms with Prometheus text exposition), a JSONL run tracer, and
// an HTTP handler serving /metrics plus net/http/pprof.
//
// Telemetry is strictly opt-in and zero-overhead when disabled: every
// consumer accepts a nil *Registry / nil *Tracer, and instrumented runs
// are bit-identical to uninstrumented ones — instruments only observe
// values the pipeline already computed.
//
//	reg := telemetry.NewRegistry()
//	tr, _ := telemetry.CreateTrace("run.trace.jsonl")
//	defer tr.Close()
//	srv, addr, _ := telemetry.Serve("localhost:0", reg)
//	defer srv.Close()
//	res, _ := floorplan.Run(c, floorplan.Options{..., Obs: reg, Trace: tr})
package telemetry

import (
	"io"
	"net"
	"net/http"

	"irgrid/internal/obs"
)

// Registry is a set of named instruments. The zero of *Registry (nil)
// is a valid no-op sink. See NewRegistry.
type Registry = obs.Registry

// Counter is a monotonically increasing metric; nil is a no-op.
type Counter = obs.Counter

// Gauge is a last-value metric; nil is a no-op.
type Gauge = obs.Gauge

// Histogram is a fixed-bucket distribution metric; nil is a no-op.
type Histogram = obs.Histogram

// Tracer writes a JSONL event stream; nil is a no-op.
type Tracer = obs.Tracer

// TraceRecord is the decoding union of all trace event types: unmarshal
// one trace line into it and dispatch on the Ev field.
type TraceRecord = obs.TraceRecord

// Trace event discriminators (TraceRecord.Ev values).
const (
	EvRunStart    = obs.EvRunStart
	EvCalibration = obs.EvCalibration
	EvTemp        = obs.EvTemp
	EvSolution    = obs.EvSolution
	EvRunEnd      = obs.EvRunEnd
)

// NewRegistry returns an enabled metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer returns a tracer emitting JSONL events to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// CreateTrace creates (truncating) the file at path and returns a
// tracer writing to it; Close flushes and closes the file.
func CreateTrace(path string) (*Tracer, error) { return obs.CreateTrace(path) }

// Handler returns an http.Handler serving the registry's metrics in
// Prometheus text format at /metrics and the net/http/pprof profiling
// endpoints under /debug/pprof/.
func Handler(reg *Registry) http.Handler { return obs.Handler(reg) }

// Serve listens on addr and serves Handler(reg) in the background,
// returning the server and its bound address (useful with ":0").
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	return obs.Serve(addr, reg)
}
