// Package telemetry is the public face of the library's observability
// subsystem: a lightweight metrics registry (counters, gauges,
// histograms with Prometheus text exposition), a JSONL run tracer,
// hierarchical span timing, a black-box flight recorder with
// postmortem dumps, a live run-status surface, and an HTTP handler
// serving /metrics, /debug/run and net/http/pprof.
//
// Telemetry is strictly opt-in and zero-overhead when disabled: every
// consumer accepts a nil *Registry / *Tracer / *Spans / *Recorder /
// *Status, and instrumented runs are bit-identical to uninstrumented
// ones — instruments only observe values the pipeline already
// computed.
//
//	reg := telemetry.NewRegistry()
//	sp := telemetry.NewSpans()
//	st := telemetry.NewStatus()
//	tr, _ := telemetry.CreateTrace("run.trace.jsonl")
//	defer tr.Close()
//	srv, addr, _ := telemetry.ServeHub("localhost:0", telemetry.Hub{Reg: reg, Spans: sp, Status: st})
//	defer srv.Shutdown(ctx)
//	res, _ := floorplan.Run(c, floorplan.Options{..., Obs: reg, Trace: tr, Spans: sp, Status: st})
package telemetry

import (
	"io"
	"net"
	"net/http"

	"irgrid/internal/obs"
)

// Registry is a set of named instruments. The zero of *Registry (nil)
// is a valid no-op sink. See NewRegistry.
type Registry = obs.Registry

// Counter is a monotonically increasing metric; nil is a no-op.
type Counter = obs.Counter

// Gauge is a last-value metric; nil is a no-op.
type Gauge = obs.Gauge

// Histogram is a fixed-bucket distribution metric; nil is a no-op.
type Histogram = obs.Histogram

// Tracer writes a JSONL event stream; nil is a no-op.
type Tracer = obs.Tracer

// TraceRecord is the decoding union of all trace event types: unmarshal
// one trace line into it and dispatch on the Ev field.
type TraceRecord = obs.TraceRecord

// Spans aggregates hierarchical timing spans; nil is a no-op.
type Spans = obs.Spans

// Span is one live timing measurement; nil is a no-op.
type Span = obs.Span

// SpanAggregate is the per-path aggregate (count/total/max) emitted in
// traces, postmortems and /debug/run.
type SpanAggregate = obs.SpanAggregate

// Recorder is the black-box flight recorder; nil is a no-op.
type Recorder = obs.Recorder

// RecorderEvent is one flight-recorder ring entry.
type RecorderEvent = obs.RecorderEvent

// Status is the live run-status surface behind /debug/run; nil is a
// no-op.
type Status = obs.Status

// StatusSnapshot is the derived run-status document.
type StatusSnapshot = obs.StatusSnapshot

// Postmortem is a flight-recorder dump read back by LoadPostmortem.
type Postmortem = obs.Postmortem

// PostmortemInfo is a postmortem's run-identity block.
type PostmortemInfo = obs.PostmortemInfo

// Hub bundles the observability surfaces one process exposes over
// HTTP; absent fields serve empty data.
type Hub = obs.Hub

// Server is a background observability HTTP server with graceful
// Shutdown.
type Server = obs.Server

// Trace event discriminators (TraceRecord.Ev values).
const (
	EvRunStart    = obs.EvRunStart
	EvCalibration = obs.EvCalibration
	EvTemp        = obs.EvTemp
	EvSolution    = obs.EvSolution
	EvSpans       = obs.EvSpans
	EvRunEnd      = obs.EvRunEnd
)

// Run outcomes (RunEndEvent.Outcome / TraceRecord.Outcome values).
const (
	OutcomeCompleted = obs.OutcomeCompleted
	OutcomeCanceled  = obs.OutcomeCanceled
	OutcomeDeadline  = obs.OutcomeDeadline
	OutcomeError     = obs.OutcomeError
)

// NewRegistry returns an enabled metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer returns a tracer emitting JSONL events to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// CreateTrace creates (truncating) the file at path and returns a
// tracer writing to it; Close flushes and closes the file.
func CreateTrace(path string) (*Tracer, error) { return obs.CreateTrace(path) }

// NewSpans returns an enabled span tracker.
func NewSpans() *Spans { return obs.NewSpans() }

// NewRecorder returns a flight recorder keeping the last n events
// (a default capacity if n <= 0).
func NewRecorder(n int) *Recorder { return obs.NewRecorder(n) }

// NewStatus returns an enabled run-status surface.
func NewStatus() *Status { return obs.NewStatus() }

// LoadPostmortem reads and verifies a postmortem dump file.
func LoadPostmortem(path string) (*Postmortem, error) { return obs.LoadPostmortem(path) }

// Handler returns an http.Handler serving the registry's metrics in
// Prometheus text format at /metrics and the net/http/pprof profiling
// endpoints under /debug/pprof/.
func Handler(reg *Registry) http.Handler { return obs.Handler(reg) }

// Serve listens on addr and serves Handler(reg) in the background,
// returning the server and its bound address (useful with ":0").
func Serve(addr string, reg *Registry) (*Server, net.Addr, error) {
	return obs.Serve(addr, reg)
}

// ServeHub listens on addr and serves hub.Handler() in the background:
// /metrics, /debug/run and /debug/pprof/.
func ServeHub(addr string, hub Hub) (*Server, net.Addr, error) {
	return obs.ServeHub(addr, hub)
}
