package irgrid

import (
	"math/rand"
	"os"
	"testing"

	"irgrid/internal/core"
	"irgrid/internal/oracle/diff"
)

// TestWriteDiffReportJSON regenerates DIFF_report.json, the measured
// oracle-vs-engine error envelope CI uploads as an artifact: randomized
// circuits under the default and forced-Simpson policies plus the five
// MCNC benchmark placements. It runs only when IRGRID_DIFF_JSON is set:
//
//	IRGRID_DIFF_JSON=1 go test -run TestWriteDiffReportJSON .
func TestWriteDiffReportJSON(t *testing.T) {
	if os.Getenv("IRGRID_DIFF_JSON") == "" {
		t.Skip("set IRGRID_DIFF_JSON=1 to regenerate DIFF_report.json")
	}
	var rp diff.Report
	rng := rand.New(rand.NewSource(20240206))
	const pitch = 30.0
	for i := 0; i < 300; i++ {
		chip := diff.RandomChip(rng, pitch)
		nets := diff.RandomNets(rng, chip, 1+rng.Intn(40), pitch)
		r, err := diff.Compare(chip, nets, diff.Opts{Model: core.Model{Pitch: pitch}})
		rp.Add(r, err)
		r, err = diff.Compare(chip, nets, diff.Opts{Model: core.Model{Pitch: pitch, ExactSpanLimit: -1}})
		rp.Add(r, err)
	}
	for _, name := range []string{"apte", "xerox", "hp", "ami33", "ami49"} {
		chip, nets, err := diff.BenchCase(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := diff.Compare(chip, nets, diff.Opts{
			Model:   core.Model{Pitch: diff.BenchPitch(name)},
			Workers: []int{1, 4},
		})
		rp.AddBench(name, r, err)
	}
	if len(rp.Failures) > 0 {
		t.Errorf("differential failures recorded in report: %v", rp.Failures)
	}
	if err := rp.WriteFile("DIFF_report.json"); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote DIFF_report.json: %d circuits, %d cells, maxExactErr=%.3g maxApproxErrPerNet=%.3g",
		rp.Circuits, rp.Cells, rp.MaxExactErr, rp.MaxApproxErrPerNet)
}
