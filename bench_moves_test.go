package irgrid

import (
	"math/rand"
	"testing"

	"irgrid/internal/bench"
	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/slicing"
)

// moveStep is one pre-generated annealer proposal: the packed chip and
// net set of the proposed floorplan, and whether the (synthetic)
// Metropolis decision accepted it.
type moveStep struct {
	chip   geom.Rect
	nets   []netlist.TwoPin
	accept bool
}

// mcncPitch is the paper's grid pitch per MCNC benchmark.
func mcncPitch(name string) float64 {
	if name == "apte" {
		return 60
	}
	return 30
}

// annealMoveTrace pre-generates a deterministic sequence of slicing
// moves on an MCNC benchmark: each step perturbs the current expression
// with a random M1/M2/M3 move, packs it, and accepts it with
// probability 0.65. Replaying the trace isolates the congestion-eval
// component of an SA move from packing and net decomposition, which the
// full and incremental paths share unchanged.
func annealMoveTrace(tb testing.TB, name string, moves int, seed int64) []moveStep {
	tb.Helper()
	c := bench.MustLoad(name)
	r, err := fplan.New(c, fplan.Config{
		Weights: fplan.Weights{Alpha: 1},
		Pitch:   mcncPitch(name),
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	cur := slicing.Initial(len(c.Modules))
	steps := make([]moveStep, 0, moves)
	for i := 0; i < moves; i++ {
		next := cur.Clone()
		next.Perturb(rng)
		sol := r.Evaluate(next)
		accept := rng.Float64() < 0.65
		steps = append(steps, moveStep{chip: sol.Placement.Chip, nets: sol.Nets, accept: accept})
		if accept {
			cur = next
		}
	}
	return steps
}

// repairMoveTrace pre-generates a deterministic sequence of
// endpoint-re-pairing moves on a fixed packed placement: each step
// exchanges the B pins of `swaps` random net pairs, the MST
// re-decomposition event (same pin set, different pairing). Every
// per-net range emits both of its pins — one as the low edge, one as
// the high — so the coordinate multiset feeding the axis build is
// invariant and the merged cutting lines never move: this is the
// structure-preserving regime the delta engine's identical-axes fast
// path is built for.
func repairMoveTrace(tb testing.TB, name string, moves, swaps int, seed int64) []moveStep {
	tb.Helper()
	c := bench.MustLoad(name)
	r, err := fplan.New(c, fplan.Config{
		Weights: fplan.Weights{Alpha: 1},
		Pitch:   mcncPitch(name),
	})
	if err != nil {
		tb.Fatal(err)
	}
	sol := r.Evaluate(slicing.Initial(len(c.Modules)))
	chip := sol.Placement.Chip
	cur := sol.Nets
	rng := rand.New(rand.NewSource(seed))
	steps := make([]moveStep, 0, moves)
	for i := 0; i < moves; i++ {
		next := append([]netlist.TwoPin(nil), cur...)
		for s := 0; s < swaps; s++ {
			a, b := rng.Intn(len(next)), rng.Intn(len(next))
			next[a].B, next[b].B = next[b].B, next[a].B
		}
		accept := rng.Float64() < 0.65
		steps = append(steps, moveStep{chip: chip, nets: next, accept: accept})
		if accept {
			cur = next
		}
	}
	return steps
}

// BenchmarkAnnealMoves measures the congestion-model cost of one SA
// move under the full evaluator against the incremental delta engine,
// replaying the same pre-generated move trace (accepts and rejects
// alike) through both. The full path re-evaluates every proposal from
// scratch; the incremental path diffs against its cached accepted
// state and rolls rejected moves back. Both produce bit-identical
// scores (TestMoveSequenceBitIdentity).
//
// Two regimes per circuit: "repack" replays M1/M2/M3 slicing moves,
// each of which re-packs the floorplan and shifts every cutting line,
// forcing the engine's axis-rebuild path on nearly every move;
// "stable-axes" replays endpoint re-pairings on a stationary
// placement, the structure-preserving regime where the dirty set is a
// handful of nets and the identical-axes fast path applies.
func BenchmarkAnnealMoves(b *testing.B) {
	for _, name := range []string{"apte", "ami33"} {
		regimes := []struct {
			regime string
			steps  []moveStep
		}{
			{"repack", annealMoveTrace(b, name, 256, 42)},
			{"stable-axes", repairMoveTrace(b, name, 256, 4, 43)},
		}
		m := core.Model{Pitch: mcncPitch(name)}
		for _, rg := range regimes {
			steps := rg.steps
			b.Run(name+"/"+rg.regime+"/full", func(b *testing.B) {
				e := m.NewEvaluator()
				e.Score(steps[0].chip, steps[0].nets) // warm arenas and memos
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := &steps[i%len(steps)]
					if sc := e.Score(s.chip, s.nets); sc <= 0 {
						b.Fatal("zero score")
					}
				}
			})
			b.Run(name+"/"+rg.regime+"/incremental", func(b *testing.B) {
				d := m.NewDeltaEvaluator()
				// Warm by replaying the whole trace once: a real anneal runs
				// tens of thousands of moves, so the one-time sweep cost of a
				// first-seen tuple amortizes to nothing; the steady state is
				// what the move loop actually pays.
				for i := range steps {
					d.Score(steps[i].chip, steps[i].nets)
					if !steps[i].accept {
						d.Rollback()
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := &steps[i%len(steps)]
					if sc := d.Score(s.chip, s.nets); sc <= 0 {
						b.Fatal("zero score")
					}
					if !s.accept {
						d.Rollback()
					}
				}
			})
		}
	}
}
