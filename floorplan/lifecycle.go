package floorplan

import (
	"context"
	"errors"
	"fmt"

	"irgrid/internal/anneal"
	"irgrid/internal/ckpt"
	"irgrid/internal/fplan"
)

// Typed errors of the public API. Test them with errors.Is.
var (
	// ErrCanceled reports a run stopped by context cancellation. The
	// accompanying Result is the best solution found so far — a valid,
	// fully evaluated partial result, not garbage.
	ErrCanceled = anneal.ErrCanceled
	// ErrDeadline reports a run stopped by an expired context deadline;
	// like ErrCanceled it accompanies a best-so-far Result.
	ErrDeadline = anneal.ErrDeadline
	// ErrInvalidInput reports options or circuits that cannot
	// parameterize any run: non-finite weights, negative pitches,
	// structurally broken netlists, unknown model names.
	ErrInvalidInput = errors.New("floorplan: invalid input")
	// ErrSnapshotMismatch reports a Resume against a snapshot written
	// by a different circuit or configuration.
	ErrSnapshotMismatch = fplan.ErrSnapshotMismatch
)

// Snapshot is a resumable checkpoint of a run in flight: the anneal
// schedule position, the exact PRNG position, the current and
// best-so-far floorplan encodings, and a digest binding it to the
// circuit and options that produced it. Snapshots are taken only at
// temperature-step boundaries, so a run resumed from one finishes
// bit-identical to a run that was never interrupted.
type Snapshot = fplan.Snapshot

// SaveCheckpoint writes a snapshot to path atomically (temp file in
// the same directory + rename) inside a versioned, checksummed
// envelope.
func SaveCheckpoint(path string, s *Snapshot) error {
	return ckpt.Save(path, s)
}

// LoadCheckpoint reads a snapshot written by SaveCheckpoint or a run
// with Options.CheckpointPath, verifying the envelope's magic, version
// and checksum.
func LoadCheckpoint(path string) (*Snapshot, error) {
	var s Snapshot
	if err := ckpt.Load(path, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Resume continues an interrupted run from a snapshot. The circuit and
// options must match the run that wrote the snapshot (verified via an
// embedded config digest; ErrSnapshotMismatch otherwise) — except
// MaxTemps, which may differ so a finished or interrupted run can be
// extended. Checkpointing options apply as in RunContext, so a resumed
// run can itself be checkpointed and resumed.
func Resume(ctx context.Context, c *Circuit, opts Options, snap *Snapshot) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrInvalidInput)
	}
	return runContext(ctx, c, opts, snap)
}
