package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func demoCircuit() *Circuit {
	return &Circuit{
		Name: "demo",
		Modules: []Module{
			{Name: "cpu", W: 300, H: 300},
			{Name: "mem", W: 300, H: 150},
			{Name: "io", W: 150, H: 300},
			{Name: "dma", W: 150, H: 150},
		},
		Nets: []Net{
			{Name: "bus", Pins: []Pin{
				{Module: "cpu", FX: 1, FY: 0.5},
				{Module: "mem", FX: 0, FY: 0.5},
				{Module: "dma", FX: 0.5, FY: 1},
			}},
			{Name: "irq", Pins: []Pin{
				{Module: "io", FX: 0.5, FY: 0},
				{Module: "cpu", FX: 0.5, FY: 1},
			}},
		},
	}
}

func demoOpts() Options {
	return Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   Congestion{Model: ModelIRGrid, Pitch: 30},
		Seed:         1,
		MovesPerTemp: 20, MaxTemps: 15,
	}
}

func TestBenchmarks(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		c, err := Benchmark(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(demoCircuit(), demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit != "demo" {
		t.Errorf("circuit = %q", res.Circuit)
	}
	if res.Area <= 0 || res.Wirelength <= 0 || res.CongestionCost <= 0 {
		t.Errorf("metrics: %+v", res)
	}
	if math.Abs(res.ChipW*res.ChipH-res.Area) > 1e-6 {
		t.Errorf("area %g != chip %g x %g", res.Area, res.ChipW, res.ChipH)
	}
	if len(res.Modules) != 4 {
		t.Fatalf("%d placed modules", len(res.Modules))
	}
	// Placements are inside the chip and non-overlapping.
	for i, m := range res.Modules {
		if m.X1 < -1e-6 || m.Y1 < -1e-6 || m.X2 > res.ChipW+1e-6 || m.Y2 > res.ChipH+1e-6 {
			t.Errorf("module %s outside chip: %+v", m.Name, m)
		}
		for _, n := range res.Modules[i+1:] {
			if m.X1 < n.X2-1e-6 && n.X1 < m.X2-1e-6 && m.Y1 < n.Y2-1e-6 && n.Y1 < m.Y2-1e-6 {
				t.Errorf("modules %s and %s overlap", m.Name, n.Name)
			}
		}
	}
	if res.Runtime <= 0 || res.Temperatures <= 0 {
		t.Errorf("runtime/temps: %v/%d", res.Runtime, res.Temperatures)
	}
}

func TestRunReproducible(t *testing.T) {
	a, err := Run(demoCircuit(), demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(demoCircuit(), demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Area != b.Area || a.Wirelength != b.Wirelength || a.Cost != b.Cost {
		t.Error("same seed produced different results")
	}
}

func TestRunValidation(t *testing.T) {
	c := demoCircuit()
	if _, err := Run(c, Options{Gamma: 1}); err == nil {
		t.Error("gamma without model accepted")
	}
	if _, err := Run(c, Options{Gamma: 1, Congestion: Congestion{Model: "bogus"}}); err == nil {
		t.Error("bogus model accepted")
	}
	bad := demoCircuit()
	bad.Nets[0].Pins[0].Module = "ghost"
	if _, err := Run(bad, demoOpts()); err == nil {
		t.Error("unknown module reference accepted")
	}
	bad2 := demoCircuit()
	bad2.Modules[0].W = 0
	if _, err := Run(bad2, demoOpts()); err == nil {
		t.Error("zero-width module accepted")
	}
}

func TestRunDefaultsToAreaWire(t *testing.T) {
	res, err := Run(demoCircuit(), Options{Seed: 3, MovesPerTemp: 10, MaxTemps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CongestionCost != 0 {
		t.Errorf("congestion = %g without a model", res.CongestionCost)
	}
}

func TestAllCongestionModels(t *testing.T) {
	for _, model := range []string{ModelIRGrid, ModelIRGridExact, ModelFixedGrid, ModelFixedGridLZ} {
		opts := demoOpts()
		opts.Congestion.Model = model
		res, err := Run(demoCircuit(), opts)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if res.CongestionCost <= 0 {
			t.Errorf("%s: congestion = %g", model, res.CongestionCost)
		}
	}
}

func TestYALRoundTripPublic(t *testing.T) {
	c := demoCircuit()
	var buf bytes.Buffer
	if err := c.WriteYAL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadYAL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || len(got.Modules) != len(c.Modules) || len(got.Nets) != len(c.Nets) {
		t.Errorf("round trip: %+v", got)
	}
	if got.Nets[0].Pins[0].Module != "cpu" {
		t.Errorf("pin module = %q", got.Nets[0].Pins[0].Module)
	}
}

func TestLoadYALBad(t *testing.T) {
	if _, err := LoadYAL(strings.NewReader("garbage")); err == nil {
		t.Error("expected parse error")
	}
}

func TestCongestionMapAndJudge(t *testing.T) {
	res, err := Run(demoCircuit(), demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{ModelIRGrid, ModelIRGridExact, ModelFixedGrid} {
		mp, err := res.CongestionMap(Congestion{Model: model, Pitch: 30})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if mp.Cells <= 0 || len(mp.Density) == 0 {
			t.Fatalf("%s: empty map", model)
		}
		if len(mp.Density) != len(mp.YLines)-1 || len(mp.Density[0]) != len(mp.XLines)-1 {
			t.Fatalf("%s: shape mismatch", model)
		}
		hs := mp.Hotspots(3)
		if len(hs) == 0 {
			t.Fatalf("%s: no hotspots", model)
		}
		for i := 1; i < len(hs); i++ {
			if hs[i].Density > hs[i-1].Density {
				t.Errorf("%s: hotspots not sorted", model)
			}
		}
	}
	if _, err := res.CongestionMap(Congestion{Model: "bogus"}); err == nil {
		t.Error("bogus model accepted")
	}
	j, err := res.JudgeCongestion()
	if err != nil {
		t.Fatal(err)
	}
	if j <= 0 {
		t.Errorf("judge = %g", j)
	}
}

func TestTwoPinNets(t *testing.T) {
	res, err := Run(demoCircuit(), demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	nets := res.TwoPinNets()
	// bus (3 pins -> 2 edges) + irq (1 edge) = 3.
	if len(nets) != 3 {
		t.Fatalf("%d two-pin nets", len(nets))
	}
	for _, n := range nets {
		for _, v := range n {
			if v < -1e-6 || v > math.Max(res.ChipW, res.ChipH)+1e-6 {
				t.Errorf("pin coordinate %g outside chip", v)
			}
		}
	}
}

func TestResultNotFromRun(t *testing.T) {
	var r Result
	if _, err := r.CongestionMap(Congestion{Model: ModelIRGrid}); err == nil {
		t.Error("expected error for synthetic Result")
	}
	if _, err := r.JudgeCongestion(); err == nil {
		t.Error("expected error for synthetic Result")
	}
	if r.TwoPinNets() != nil {
		t.Error("expected nil nets")
	}
}

func TestNoRotate(t *testing.T) {
	opts := demoOpts()
	opts.NoRotate = true
	res, err := Run(demoCircuit(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Modules {
		if m.Rotated {
			t.Errorf("module %s rotated despite NoRotate", m.Name)
		}
	}
}

func TestSeqPairRepresentationPublic(t *testing.T) {
	opts := demoOpts()
	opts.Representation = ReprSeqPair
	res, err := Run(demoCircuit(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Area <= 0 || res.CongestionCost <= 0 {
		t.Errorf("seqpair result: %+v", res)
	}
	// Congestion analysis still works on seqpair placements.
	if _, err := res.CongestionMap(Congestion{Model: ModelIRGrid, Pitch: 30}); err != nil {
		t.Fatal(err)
	}
	opts.Representation = "hexagon"
	if _, err := Run(demoCircuit(), opts); err == nil {
		t.Error("unknown representation accepted")
	}
}
