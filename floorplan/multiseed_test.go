package floorplan

import (
	"math"
	"testing"
)

func TestRunBest(t *testing.T) {
	opts := demoOpts()
	opts.Seed = 100
	mr, err := RunBest(demoCircuit(), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Best == nil || len(mr.Costs) != 4 {
		t.Fatalf("result %+v", mr)
	}
	// The best is the minimum of the per-seed costs.
	min := math.Inf(1)
	for _, c := range mr.Costs {
		if c <= 0 {
			t.Errorf("cost %g", c)
		}
		min = math.Min(min, c)
	}
	if mr.Best.Cost != min {
		t.Errorf("best cost %g != min %g", mr.Best.Cost, min)
	}
	if mr.BestSeed < 100 || mr.BestSeed > 103 {
		t.Errorf("best seed %d", mr.BestSeed)
	}
}

func TestRunBestMatchesSingleRun(t *testing.T) {
	// Parallel multi-seed must reproduce the individual runs exactly.
	opts := demoOpts()
	opts.Seed = 7
	mr, err := RunBest(demoCircuit(), opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(demoCircuit(), opts) // seed 7 == first seed
	if err != nil {
		t.Fatal(err)
	}
	if mr.Costs[0] != single.Cost {
		t.Errorf("seed 7 cost: parallel %g vs single %g", mr.Costs[0], single.Cost)
	}
}

func TestRunBestValidation(t *testing.T) {
	if _, err := RunBest(demoCircuit(), demoOpts(), 0); err == nil {
		t.Error("zero seeds accepted")
	}
	bad := demoCircuit()
	bad.Modules[0].W = -1
	if _, err := RunBest(bad, demoOpts(), 2); err == nil {
		t.Error("invalid circuit accepted")
	}
}
