package floorplan

import (
	"fmt"
	"sort"

	"irgrid/internal/core"
	"irgrid/internal/grid"
)

// CongestionMap is a congestion heat map of a finished floorplan: the
// cutting-line coordinates in each dimension and the per-cell
// congestion densities (probability mass per µm²). For the fixed-size
// grid model the lines are uniformly spaced; for the Irregular-Grid
// model they are the merged routing-range cutting lines.
type CongestionMap struct {
	Model  string
	XLines []float64
	YLines []float64
	// Density[row][col] is the congestion density of the cell between
	// YLines[row]..YLines[row+1] and XLines[col]..XLines[col+1].
	Density [][]float64
	// Score is the model's chip-level congestion cost (average of the
	// top-10% most congested grids / area units).
	Score float64
	// Cells is the number of evaluation cells (IR-grids or fixed
	// grids).
	Cells int
}

// Hotspot is one congested region of a floorplan.
type Hotspot struct {
	X1, Y1, X2, Y2 float64
	Density        float64
}

// Hotspots returns the k most congested cells, most congested first.
func (m *CongestionMap) Hotspots(k int) []Hotspot {
	var hs []Hotspot
	for iy := 0; iy+1 < len(m.YLines); iy++ {
		for ix := 0; ix+1 < len(m.XLines); ix++ {
			hs = append(hs, Hotspot{
				X1: m.XLines[ix], Y1: m.YLines[iy],
				X2: m.XLines[ix+1], Y2: m.YLines[iy+1],
				Density: m.Density[iy][ix],
			})
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].Density > hs[j].Density })
	if k < len(hs) {
		hs = hs[:k]
	}
	return hs
}

// CongestionMap re-evaluates the finished floorplan under the given
// congestion model and returns the resulting heat map. It is how a
// caller inspects where the congestion lives, or scores a floorplan
// under a different model than the one that drove the anneal (the
// paper's "judging model" methodology).
func (r *Result) CongestionMap(cg Congestion) (*CongestionMap, error) {
	if r.sol == nil {
		return nil, fmt.Errorf("floorplan: result was not produced by Run")
	}
	pitch := cg.Pitch
	if pitch <= 0 {
		pitch = 30
	}
	chip := r.sol.Placement.Chip
	switch cg.Model {
	case ModelIRGrid, ModelIRGridExact:
		m := core.Model{Pitch: pitch, Exact: cg.Model == ModelIRGridExact}
		mp := m.Evaluate(chip, r.sol.Nets)
		out := &CongestionMap{
			Model:  cg.Model,
			XLines: append([]float64(nil), mp.XAxis...),
			YLines: append([]float64(nil), mp.YAxis...),
			Score:  mp.TopScore(0.10),
			Cells:  mp.GridCount(),
		}
		out.Density = make([][]float64, mp.Rows())
		for iy := 0; iy < mp.Rows(); iy++ {
			out.Density[iy] = make([]float64, mp.Cols())
			for ix := 0; ix < mp.Cols(); ix++ {
				out.Density[iy][ix] = mp.Density(ix, iy)
			}
		}
		return out, nil
	case ModelFixedGrid:
		m := grid.Model{Pitch: pitch}
		mp := m.Evaluate(chip, r.sol.Nets)
		out := &CongestionMap{
			Model: cg.Model,
			Score: mp.TopScore(0.10),
			Cells: mp.Cols * mp.Rows,
		}
		for i := 0; i <= mp.Cols; i++ {
			out.XLines = append(out.XLines, chip.X1+float64(i)*pitch)
		}
		for i := 0; i <= mp.Rows; i++ {
			out.YLines = append(out.YLines, chip.Y1+float64(i)*pitch)
		}
		cellArea := pitch * pitch
		out.Density = make([][]float64, mp.Rows)
		for iy := 0; iy < mp.Rows; iy++ {
			out.Density[iy] = make([]float64, mp.Cols)
			for ix := 0; ix < mp.Cols; ix++ {
				out.Density[iy][ix] = mp.At(ix, iy) / cellArea
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("floorplan: unknown congestion model %q", cg.Model)
	}
}

// JudgeCongestion scores the floorplan with the paper's judging model:
// the fixed-size-grid estimator at a very fine 10×10 µm² pitch.
func (r *Result) JudgeCongestion() (float64, error) {
	if r.sol == nil {
		return 0, fmt.Errorf("floorplan: result was not produced by Run")
	}
	return grid.Model{Pitch: 10}.Score(r.sol.Placement.Chip, r.sol.Nets), nil
}

// TwoPinNets returns the MST-decomposed two-pin nets of the floorplan
// as [x1, y1, x2, y2] pin-coordinate quadruples, for callers that want
// to run their own analysis.
func (r *Result) TwoPinNets() [][4]float64 {
	if r.sol == nil {
		return nil
	}
	out := make([][4]float64, 0, len(r.sol.Nets))
	for _, n := range r.sol.Nets {
		out = append(out, [4]float64{n.A.X, n.A.Y, n.B.X, n.B.Y})
	}
	return out
}
