package floorplan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// MultiResult is the outcome of a RunBest multi-seed search.
type MultiResult struct {
	// Best is the lowest-cost result across all seeds.
	Best *Result
	// BestSeed is the seed that produced it.
	BestSeed int64
	// Costs holds every seed's final normalized cost, indexed by
	// seed - firstSeed.
	Costs []float64
}

// RunBest anneals the circuit with `seeds` consecutive seeds starting
// at opts.Seed — the paper's protocol runs every experiment "20 times
// using different random number generator seeds" — and returns the
// best result. Runs execute in parallel across CPUs; each individual
// run is unchanged from Run with that seed, so RunBest(c, o, n) picks
// exactly the best of {Run(c, o seed=s)}.
func RunBest(c *Circuit, opts Options, seeds int) (*MultiResult, error) {
	return RunBestContext(context.Background(), c, opts, seeds)
}

// RunBestContext is RunBest under a context. On cancellation every
// in-flight run stops cooperatively and the call returns the best
// result across everything completed so far — full runs and
// best-so-far partials alike — together with ErrCanceled or
// ErrDeadline. Checkpointing options are rejected here: a single
// checkpoint file cannot represent several concurrent seeds.
func RunBestContext(ctx context.Context, c *Circuit, opts Options, seeds int) (*MultiResult, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("%w: seeds must be >= 1, got %d", ErrInvalidInput, seeds)
	}
	if opts.CheckpointPath != "" || opts.Checkpoint != nil {
		return nil, fmt.Errorf("%w: checkpointing is single-run; use RunContext per seed", ErrInvalidInput)
	}
	// Validate once up front so workers can't race on a broken input.
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}

	type outcome struct {
		idx int
		res *Result
		err error
	}
	results := make([]outcome, seeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts
			o.Seed = opts.Seed + int64(i)
			res, err := RunContext(ctx, c, o)
			results[i] = outcome{idx: i, res: res, err: err}
		}(i)
	}
	wg.Wait()

	out := &MultiResult{Costs: make([]float64, seeds)}
	var ctxErr error
	for _, r := range results {
		if r.err != nil {
			if errors.Is(r.err, ErrCanceled) || errors.Is(r.err, ErrDeadline) {
				ctxErr = r.err
			} else {
				return nil, r.err
			}
		}
		if r.res == nil {
			continue
		}
		out.Costs[r.idx] = r.res.Cost
		if out.Best == nil || r.res.Cost < out.Best.Cost {
			out.Best = r.res
			out.BestSeed = opts.Seed + int64(r.idx)
		}
	}
	if out.Best == nil && ctxErr != nil {
		return nil, ctxErr
	}
	return out, ctxErr
}
