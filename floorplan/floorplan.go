// Package floorplan is the public API of the irgrid library: a
// routability-driven slicing floorplanner with pluggable probabilistic
// congestion models, reproducing "A New Effective Congestion Model in
// Floorplan Design" (Hsieh & Hsieh, DATE 2004).
//
// A quickstart:
//
//	c, _ := floorplan.Benchmark("ami33")
//	res, _ := floorplan.Run(c, floorplan.Options{
//		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
//		Congestion: floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30},
//		Seed:  1,
//	})
//	fmt.Println(res.Area, res.Wirelength, res.CongestionCost)
//
// The floorplanner packs hard rectangular modules with a simulated-
// annealing search over normalized Polish expressions (Wong–Liu),
// places pins by the intersection-to-intersection method, decomposes
// multi-pin nets with Manhattan minimum spanning trees, and scores
// congestion with either the classic fixed-size-grid model or the
// paper's Irregular-Grid model.
package floorplan

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"irgrid/internal/anneal"
	"irgrid/internal/bench"
	"irgrid/internal/ckpt"
	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/grid"
	"irgrid/internal/netlist"
	"irgrid/internal/wl"
	"irgrid/telemetry"
)

// Module is a rectangular block with unrotated dimensions in µm. Pad
// modules are never rotated by the packer. Setting
// MinAspect < MaxAspect makes the module soft: the packer may realize
// it as any same-area rectangle whose width/height ratio lies in that
// range.
type Module struct {
	Name                 string
	W, H                 float64
	Pad                  bool
	MinAspect, MaxAspect float64
}

// Pin is one terminal of a net: a module (by name) and the pin's
// offset inside it as fractions of the module's width and height.
type Pin struct {
	Module string
	FX, FY float64
}

// Net is a named multi-pin net.
type Net struct {
	Name string
	Pins []Pin
}

// Circuit is a floorplanning instance.
type Circuit struct {
	Name    string
	Modules []Module
	Nets    []Net
}

// Benchmark returns one of the built-in synthetic MCNC-statistics
// circuits: apte, xerox, hp, ami33 or ami49.
func Benchmark(name string) (*Circuit, error) {
	c, err := bench.Load(name)
	if err != nil {
		return nil, err
	}
	return fromInternal(c), nil
}

// BenchmarkNames lists the built-in benchmark circuits.
func BenchmarkNames() []string { return bench.Names() }

// LoadYAL parses a circuit in the YAL-subset interchange format.
// Malformed input fails with an error matching ErrInvalidInput.
func LoadYAL(r io.Reader) (*Circuit, error) {
	c, err := netlist.ReadYAL(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	return fromInternal(c), nil
}

// WriteYAL serialises the circuit in the YAL-subset format.
func (c *Circuit) WriteYAL(w io.Writer) error {
	ic, err := c.toInternal()
	if err != nil {
		return err
	}
	return netlist.WriteYAL(w, ic)
}

// Validate checks the circuit's structural consistency.
func (c *Circuit) Validate() error {
	_, err := c.toInternal()
	return err
}

func fromInternal(ic *netlist.Circuit) *Circuit {
	c := &Circuit{Name: ic.Name}
	for _, m := range ic.Modules {
		c.Modules = append(c.Modules, Module{
			Name: m.Name, W: m.W, H: m.H, Pad: m.Pad,
			MinAspect: m.MinAspect, MaxAspect: m.MaxAspect,
		})
	}
	for _, n := range ic.Nets {
		net := Net{Name: n.Name}
		for _, p := range n.Pins {
			net.Pins = append(net.Pins, Pin{
				Module: ic.Modules[p.Module].Name, FX: p.FX, FY: p.FY,
			})
		}
		c.Nets = append(c.Nets, net)
	}
	return c
}

func (c *Circuit) toInternal() (*netlist.Circuit, error) {
	ic := &netlist.Circuit{Name: c.Name}
	index := make(map[string]int, len(c.Modules))
	for i, m := range c.Modules {
		index[m.Name] = i
		ic.Modules = append(ic.Modules, netlist.Module{
			Name: m.Name, W: m.W, H: m.H, Pad: m.Pad,
			MinAspect: m.MinAspect, MaxAspect: m.MaxAspect,
		})
	}
	for _, n := range c.Nets {
		net := netlist.Net{Name: n.Name}
		for _, p := range n.Pins {
			mi, ok := index[p.Module]
			if !ok {
				return nil, fmt.Errorf("floorplan: net %q references unknown module %q", n.Name, p.Module)
			}
			net.Pins = append(net.Pins, netlist.PinRef{Module: mi, FX: p.FX, FY: p.FY})
		}
		ic.Nets = append(ic.Nets, net)
	}
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	return ic, nil
}

// Congestion model identifiers.
const (
	// ModelNone disables the congestion term.
	ModelNone = ""
	// ModelIRGrid is the paper's Irregular-Grid model with the O(1)
	// Theorem 1 approximation.
	ModelIRGrid = "ir-grid"
	// ModelIRGridExact is the Irregular-Grid model with exact Formula 3
	// boundary-escape sums.
	ModelIRGridExact = "ir-grid-exact"
	// ModelFixedGrid is the fixed-size-grid model of Sham & Young.
	ModelFixedGrid = "fixed-grid"
	// ModelFixedGridLZ is the bend-limited variant of the fixed model:
	// only 1- and 2-bend shortest routes are considered.
	ModelFixedGridLZ = "fixed-grid-lz"
)

// Congestion selects and parameterizes a congestion model.
type Congestion struct {
	// Model is one of the Model* constants.
	Model string
	// Pitch is the grid pitch in µm (IR-grid base pitch or fixed grid
	// size). Zero defaults to 30.
	Pitch float64
}

func (cg Congestion) estimator() (fplan.Estimator, error) {
	pitch := cg.Pitch
	if pitch <= 0 {
		pitch = 30
	}
	switch cg.Model {
	case ModelNone:
		return nil, nil
	case ModelIRGrid:
		return core.Model{Pitch: pitch}, nil
	case ModelIRGridExact:
		return core.Model{Pitch: pitch, Exact: true}, nil
	case ModelFixedGrid:
		return grid.Model{Pitch: pitch}, nil
	case ModelFixedGridLZ:
		return grid.LZModel{Pitch: pitch}, nil
	default:
		return nil, fmt.Errorf("floorplan: unknown congestion model %q", cg.Model)
	}
}

// Options configures a floorplanning run. The zero value optimizes
// area and wirelength equally with no congestion term.
type Options struct {
	// Alpha, Beta and Gamma weight area, wirelength and congestion in
	// the cost function α·A + β·W + γ·C (terms are normalized
	// internally). All zero defaults to Alpha = Beta = 0.5.
	Alpha, Beta, Gamma float64
	// Congestion selects the congestion model; required when Gamma > 0.
	Congestion Congestion
	// PinPitch is the routing-grid pitch pins are snapped to
	// (intersection-to-intersection method). Zero defaults to the
	// congestion pitch, or 30 µm.
	PinPitch float64
	// Seed makes runs reproducible.
	Seed int64
	// NoRotate disables 90° module rotation.
	NoRotate bool
	// MovesPerTemp and MaxTemps size the simulated-annealing schedule
	// (defaults 100 and 200).
	MovesPerTemp, MaxTemps int
	// WirelengthModel selects the wirelength estimator in the cost
	// function: "mst" (default, the paper's model), "hpwl", "star",
	// "clique" or "steiner". Congestion always uses MST-decomposed 2-pin nets.
	WirelengthModel string
	// Representation selects the floorplan encoding: "slicing"
	// (default, the paper's Wong–Liu Polish expressions) or "seqpair"
	// (sequence pair, covering non-slicing packings; soft modules pack
	// at nominal dimensions there).
	Representation string
	// Workers is the parallelism of the congestion evaluation engine:
	// 0 uses GOMAXPROCS, 1 forces sequential evaluation. Congestion
	// scores — and hence whole runs — are bit-identical for every
	// setting. Only the IR-grid models parallelize today.
	Workers int
	// FullEval disables incremental congestion evaluation and scores
	// every SA move from scratch. The incremental engine (the default
	// when the model supports it) is bit-identical to full
	// evaluation, so this trades only throughput — useful for
	// apples-to-apples timing baselines and for exercising the full
	// evaluator's parallel path under test.
	FullEval bool
	// Obs, when non-nil, receives live run metrics from every layer:
	// annealer move/temperature instruments, per-evaluation cost
	// components, and the IR evaluation engine's stage timings and memo
	// counters. Serve them with telemetry.Serve. Telemetry never
	// perturbs the search: instrumented runs are bit-identical.
	Obs *telemetry.Registry
	// Trace, when non-nil, receives the JSONL run trace (run_start,
	// calibration, per-temperature temp + solution events, a spans
	// event when Spans is set, run_end). Summarize traces with
	// cmd/tracestat.
	Trace *telemetry.Tracer
	// Spans, when non-nil, collects the run's hierarchical timing
	// tree: parse, setup, run/anneal/{calibrate,temp,checkpoint},
	// run/finalize and the evaluator's evaluate/move stages. Aggregates
	// ride the trace (spans event) and /debug/run; spans only time work
	// the run performed anyway, so span-enabled runs are bit-identical.
	Spans *telemetry.Spans
	// Recorder, when non-nil, is a black-box flight recorder holding
	// the last N move/temperature/eval events. Together with
	// PostmortemPath it dumps a postmortem JSON file on shard panics
	// and cancellation (CLIs additionally dump on SIGQUIT).
	Recorder *telemetry.Recorder
	// Status, when non-nil, receives the live run-status feed (step,
	// temps, acceptance, best cost, moves/sec, ETA) served by the
	// telemetry hub's /debug/run endpoint.
	Status *telemetry.Status
	// PostmortemPath, when non-empty, arms postmortem dumps at this
	// path. If Recorder is nil a default-capacity recorder is created
	// automatically.
	PostmortemPath string
	// CheckpointPath, when non-empty, writes a resumable snapshot of
	// the run to this file every CheckpointEvery temperature steps
	// (atomically: temp file + rename), and once more if the run is
	// canceled. Load it with LoadCheckpoint and continue with Resume.
	CheckpointPath string
	// CheckpointEvery is the snapshot period in temperature steps
	// (default 10 when a checkpoint destination is configured).
	CheckpointEvery int
	// Checkpoint, when non-nil, receives every boundary snapshot
	// programmatically (after the CheckpointPath write, when both are
	// set). Sink errors never abort the run.
	Checkpoint func(*Snapshot) error
}

// Floorplan representations accepted by Options.Representation.
const (
	ReprSlicing = "slicing"
	ReprSeqPair = "seqpair"
)

// PlacedModule is a module's final position.
type PlacedModule struct {
	Name           string
	X1, Y1, X2, Y2 float64
	Rotated        bool
}

// Result is a finished floorplan with its metrics.
type Result struct {
	Circuit          string
	ChipW, ChipH     float64
	Area             float64 // µm²
	Wirelength       float64 // µm
	CongestionCost   float64 // estimator score; 0 when no estimator
	Cost             float64 // normalized weighted cost
	Modules          []PlacedModule
	Runtime          time.Duration
	Temperatures     int // SA temperature steps executed
	Moves            int // SA search moves proposed (calibration excluded)
	CalibrationMoves int // cost probes spent calibrating the initial temperature
	Accepted         int // SA moves accepted

	circuit *netlist.Circuit
	sol     *fplan.Solution
}

// validateOptions rejects option values that cannot parameterize any
// run — non-finite or negative weights, pitches and schedule sizes —
// with errors matching ErrInvalidInput. Zero values still mean "use
// the default" everywhere they did before.
func validateOptions(opts *Options) error {
	finite := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s must be finite, got %g", ErrInvalidInput, name, v)
		}
		if v < 0 {
			return fmt.Errorf("%w: %s must be non-negative, got %g", ErrInvalidInput, name, v)
		}
		return nil
	}
	if err := finite("Alpha", opts.Alpha); err != nil {
		return err
	}
	if err := finite("Beta", opts.Beta); err != nil {
		return err
	}
	if err := finite("Gamma", opts.Gamma); err != nil {
		return err
	}
	if err := finite("PinPitch", opts.PinPitch); err != nil {
		return err
	}
	if err := finite("Congestion.Pitch", opts.Congestion.Pitch); err != nil {
		return err
	}
	if opts.MovesPerTemp < 0 || opts.MaxTemps < 0 {
		return fmt.Errorf("%w: MovesPerTemp=%d MaxTemps=%d must be non-negative",
			ErrInvalidInput, opts.MovesPerTemp, opts.MaxTemps)
	}
	if opts.CheckpointEvery < 0 {
		return fmt.Errorf("%w: CheckpointEvery must be non-negative, got %d", ErrInvalidInput, opts.CheckpointEvery)
	}
	return nil
}

// resolveOptions validates opts and resolves the derived run
// parameters every caller needs: the congestion estimator (nil when
// the congestion term is disabled) and the effective area/wirelength
// weights. All failures match ErrInvalidInput.
func resolveOptions(opts *Options) (est fplan.Estimator, alpha, beta float64, err error) {
	if err := validateOptions(opts); err != nil {
		return nil, 0, 0, err
	}
	est, err = opts.Congestion.estimator()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	if opts.Gamma != 0 && est == nil {
		return nil, 0, 0, fmt.Errorf("%w: Gamma=%g requires Options.Congestion.Model", ErrInvalidInput, opts.Gamma)
	}
	switch opts.WirelengthModel {
	case "", string(wl.ModelMST), string(wl.ModelHPWL), string(wl.ModelStar), string(wl.ModelClique), string(wl.ModelSteiner):
	default:
		return nil, 0, 0, fmt.Errorf("%w: unknown wirelength model %q", ErrInvalidInput, opts.WirelengthModel)
	}
	switch opts.Representation {
	case "", ReprSlicing, ReprSeqPair:
	default:
		return nil, 0, 0, fmt.Errorf("%w: unknown representation %q", ErrInvalidInput, opts.Representation)
	}
	alpha, beta = opts.Alpha, opts.Beta
	if alpha == 0 && beta == 0 && opts.Gamma == 0 {
		alpha, beta = 0.5, 0.5
	}
	return est, alpha, beta, nil
}

// ValidateOptions checks that opts could parameterize a run — finite
// non-negative weights and pitches, known model/wirelength/
// representation names, a congestion model whenever Gamma > 0 —
// without running anything. Failures match ErrInvalidInput. Services
// use it to reject bad submissions at the API boundary instead of
// discovering them when the job is eventually scheduled.
func ValidateOptions(opts Options) error {
	_, _, _, err := resolveOptions(&opts)
	return err
}

// Run floorplans the circuit. It is RunContext without cancellation.
func Run(c *Circuit, opts Options) (*Result, error) {
	return RunContext(context.Background(), c, opts)
}

// RunContext floorplans the circuit under a context. Cancellation is
// cooperative: the annealer checks the context at every proposed move
// and the IR-grid estimator at every evaluation shard boundary. On
// cancellation RunContext returns the best result found so far
// together with ErrCanceled (or ErrDeadline when the context's
// deadline expired) — the partial Result is valid and fully evaluated
// — and, when checkpointing is configured, writes one final resumable
// snapshot.
func RunContext(ctx context.Context, c *Circuit, opts Options) (*Result, error) {
	return runContext(ctx, c, opts, nil)
}

func runContext(ctx context.Context, c *Circuit, opts Options, snap *Snapshot) (*Result, error) {
	est, alpha, beta, err := resolveOptions(&opts)
	if err != nil {
		return nil, err
	}
	sp := opts.Spans.Start("parse")
	ic, err := c.toInternal()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	pinPitch := opts.PinPitch
	if pinPitch <= 0 {
		pinPitch = opts.Congestion.Pitch
	}
	if pinPitch <= 0 {
		pinPitch = 30
	}
	checkpoint := opts.Checkpoint
	if path := opts.CheckpointPath; path != "" {
		user := checkpoint
		checkpoint = func(s *Snapshot) error {
			if err := ckpt.Save(path, s); err != nil {
				return err
			}
			if user != nil {
				return user(s)
			}
			return nil
		}
	}
	every := opts.CheckpointEvery
	if checkpoint != nil && every <= 0 {
		every = 10
	}
	if opts.PostmortemPath != "" && opts.Recorder == nil {
		opts.Recorder = telemetry.NewRecorder(0)
	}
	runner, err := fplan.New(ic, fplan.Config{
		Weights:         fplan.Weights{Alpha: alpha, Beta: beta, Gamma: opts.Gamma},
		Estimator:       est,
		Pitch:           pinPitch,
		AllowRotate:     !opts.NoRotate,
		Wire:            wl.Model(opts.WirelengthModel),
		Representation:  opts.Representation,
		Workers:         opts.Workers,
		FullEval:        opts.FullEval,
		Obs:             opts.Obs,
		Trace:           opts.Trace,
		Spans:           opts.Spans,
		Recorder:        opts.Recorder,
		Status:          opts.Status,
		PostmortemPath:  opts.PostmortemPath,
		CheckpointEvery: every,
		Checkpoint:      checkpoint,
		Resume:          snap,
		Anneal: anneal.Config{
			Seed:         opts.Seed,
			MovesPerTemp: opts.MovesPerTemp,
			MaxTemps:     opts.MaxTemps,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	start := time.Now()
	sol, stats, runErr := runner.Run(ctx, nil)
	if runErr != nil && sol == nil {
		return nil, runErr
	}
	res := &Result{
		Circuit:          ic.Name,
		ChipW:            sol.Placement.Chip.W(),
		ChipH:            sol.Placement.Chip.H(),
		Area:             sol.Area,
		Wirelength:       sol.Wirelength,
		CongestionCost:   sol.Congestion,
		Cost:             sol.Cost,
		Runtime:          time.Since(start),
		Temperatures:     stats.Temps,
		Moves:            stats.Moves,
		CalibrationMoves: stats.CalibrationMoves,
		Accepted:         stats.Accepted,
		circuit:          ic,
		sol:              sol,
	}
	for i, r := range sol.Placement.Rects {
		res.Modules = append(res.Modules, PlacedModule{
			Name: ic.Modules[i].Name,
			X1:   r.X1, Y1: r.Y1, X2: r.X2, Y2: r.Y2,
			Rotated: sol.Placement.Rotated[i],
		})
	}
	return res, runErr
}
