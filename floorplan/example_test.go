package floorplan_test

import (
	"fmt"

	"irgrid/floorplan"
)

// ExampleRun floorplans a small hand-built circuit with the
// Irregular-Grid congestion term in the cost function.
func ExampleRun() {
	c := &floorplan.Circuit{
		Name: "pair",
		Modules: []floorplan.Module{
			{Name: "a", W: 300, H: 300},
			{Name: "b", W: 300, H: 300},
		},
		Nets: []floorplan.Net{{
			Name: "n",
			Pins: []floorplan.Pin{
				{Module: "a", FX: 1, FY: 0.5},
				{Module: "b", FX: 0, FY: 0.5},
			},
		}},
	}
	res, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.5, Beta: 0.3, Gamma: 0.2,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30},
		Seed:         1,
		MovesPerTemp: 10, MaxTemps: 10,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Two equal squares pack without any dead area.
	fmt.Printf("area %.0f um2 (dead space %.0f)\n", res.Area, res.Area-2*300*300)
	fmt.Printf("modules placed: %d\n", len(res.Modules))
	// Output:
	// area 180000 um2 (dead space 0)
	// modules placed: 2
}

// ExampleResult_CongestionMap inspects where the congestion of a
// finished floorplan lives.
func ExampleResult_CongestionMap() {
	c, err := floorplan.Benchmark("apte")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.5, Beta: 0.5,
		Seed:         3,
		MovesPerTemp: 10, MaxTemps: 10,
		PinPitch: 60,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mp, err := res.CongestionMap(floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 60})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("irregular cells: %v\n", mp.Cells > 0)
	fmt.Printf("hotspots sorted: %v\n", len(mp.Hotspots(3)) > 0)
	// Output:
	// irregular cells: true
	// hotspots sorted: true
}
