package floorplan

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"irgrid/internal/faultinject"
	"irgrid/telemetry"
)

// sameResult asserts two results are bit-identical: cost metrics and
// every placed module rectangle.
func sameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Cost != want.Cost || got.Area != want.Area ||
		got.Wirelength != want.Wirelength || got.CongestionCost != want.CongestionCost {
		t.Errorf("metrics differ: cost %v/%v area %v/%v wire %v/%v cgt %v/%v",
			got.Cost, want.Cost, got.Area, want.Area,
			got.Wirelength, want.Wirelength, got.CongestionCost, want.CongestionCost)
	}
	if len(got.Modules) != len(want.Modules) {
		t.Fatalf("module count %d, want %d", len(got.Modules), len(want.Modules))
	}
	for i := range want.Modules {
		if got.Modules[i] != want.Modules[i] {
			t.Errorf("module %d: %+v, want %+v", i, got.Modules[i], want.Modules[i])
		}
	}
}

// sameCongestionMap asserts the per-grid congestion maps match bit for
// bit — the strongest form of the round-trip identity the checkpoint
// subsystem promises.
func sameCongestionMap(t *testing.T, got, want *Result, cg Congestion) {
	t.Helper()
	gm, err := got.CongestionMap(cg)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := want.CongestionMap(cg)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Cells != wm.Cells || gm.Score != wm.Score {
		t.Fatalf("map shape/score: %d cells %g, want %d cells %g", gm.Cells, gm.Score, wm.Cells, wm.Score)
	}
	for iy := range wm.Density {
		for ix := range wm.Density[iy] {
			if gm.Density[iy][ix] != wm.Density[iy][ix] {
				t.Fatalf("density[%d][%d] = %g, want %g", iy, ix, gm.Density[iy][ix], wm.Density[iy][ix])
			}
		}
	}
}

// TestCheckpointResumeBitIdentity is the acceptance criterion for the
// checkpoint subsystem: run k temperature steps, snapshot, resume to
// the full schedule, and land bit-identical — cost, placement and
// per-grid congestion map — to a run that was never interrupted. It
// runs on two MCNC-statistics benchmarks.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	for _, name := range []string{"apte", "ami33"} {
		t.Run(name, func(t *testing.T) {
			c, err := Benchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{
				Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
				Congestion:   Congestion{Model: ModelIRGrid, Pitch: 30},
				Seed:         1,
				MovesPerTemp: 25, MaxTemps: 16,
			}
			want, err := Run(c, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Phase A: stop at step 8, snapshotting every 4 steps.
			path := filepath.Join(t.TempDir(), name+".ckpt")
			partial := opts
			partial.MaxTemps = 8
			partial.CheckpointPath = path
			partial.CheckpointEvery = 4
			if _, err := Run(c, partial); err != nil {
				t.Fatal(err)
			}
			snap, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Step == 0 {
				t.Fatal("snapshot taken before any step")
			}

			// Phase B: resume to the full schedule.
			got, err := Resume(context.Background(), c, opts, snap)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want)
			sameCongestionMap(t, got, want, opts.Congestion)
		})
	}
}

// TestCancelCheckpointResume interrupts a run mid-flight (the
// checkpoint sink cancels the context, so cancellation lands inside a
// later temperature step), then resumes from the snapshot the
// cancellation wrote and requires bit-identity with an uninterrupted
// run.
func TestCancelCheckpointResume(t *testing.T) {
	c, err := Benchmark("apte")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   Congestion{Model: ModelIRGrid, Pitch: 30},
		Seed:         7,
		MovesPerTemp: 25, MaxTemps: 14,
	}
	want, err := Run(c, opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	path := filepath.Join(t.TempDir(), "apte.ckpt")
	interrupted := opts
	interrupted.CheckpointPath = path
	interrupted.CheckpointEvery = 3
	var boundaries int
	interrupted.Checkpoint = func(s *Snapshot) error {
		if boundaries++; boundaries == 2 {
			cancel() // trips mid-way through the following step
		}
		return nil
	}
	res, runErr := RunContext(ctx, c, interrupted)
	if !errors.Is(runErr, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", runErr)
	}
	// The partial result is first-class: fully evaluated, congestion
	// score included.
	if res == nil || res.CongestionCost <= 0 || len(res.Modules) != len(c.Modules) {
		t.Fatalf("partial result not fully evaluated: %+v", res)
	}

	snap, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(context.Background(), c, opts, snap)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)
	sameCongestionMap(t, got, want, opts.Congestion)
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, demoCircuit(), demoOpts())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || len(res.Modules) != 4 || res.Area <= 0 {
		t.Fatalf("best-so-far result invalid: %+v", res)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	opts := demoOpts()
	opts.MaxTemps = 1 << 20 // would run far past the deadline
	opts.MovesPerTemp = 1000
	res, err := RunContext(ctx, demoCircuit(), opts)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || res.Area <= 0 || res.CongestionCost <= 0 {
		t.Fatalf("deadline result not fully evaluated: %+v", res)
	}
}

// TestCancelNoGoroutineLeak cancels runs that use parallel congestion
// evaluation and checks the process goroutine count settles back.
func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		opts := demoOpts()
		opts.MaxTemps = 1 << 20
		opts.MovesPerTemp = 1000
		opts.Workers = 4
		if _, err := RunContext(ctx, demoCircuit(), opts); !errors.Is(err, ErrDeadline) && !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after canceled runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInvalidOptions(t *testing.T) {
	c := demoCircuit()
	cases := []struct {
		name string
		mod  func(*Options)
	}{
		{"nan-alpha", func(o *Options) { o.Alpha = math.NaN() }},
		{"inf-beta", func(o *Options) { o.Beta = math.Inf(1) }},
		{"negative-gamma", func(o *Options) { o.Gamma = -0.1 }},
		{"nan-pin-pitch", func(o *Options) { o.PinPitch = math.NaN() }},
		{"negative-congestion-pitch", func(o *Options) { o.Congestion.Pitch = -30 }},
		{"negative-moves", func(o *Options) { o.MovesPerTemp = -1 }},
		{"negative-temps", func(o *Options) { o.MaxTemps = -1 }},
		{"negative-checkpoint-every", func(o *Options) { o.CheckpointEvery = -1 }},
		{"unknown-model", func(o *Options) { o.Congestion.Model = "psychic" }},
		{"gamma-without-model", func(o *Options) { o.Congestion = Congestion{} }},
		{"unknown-wire-model", func(o *Options) { o.WirelengthModel = "laser" }},
		{"unknown-representation", func(o *Options) { o.Representation = "btree" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := demoOpts()
			tc.mod(&opts)
			if _, err := Run(c, opts); !errors.Is(err, ErrInvalidInput) {
				t.Errorf("err = %v, want ErrInvalidInput", err)
			}
		})
	}

	t.Run("empty-circuit", func(t *testing.T) {
		if _, err := Run(&Circuit{Name: "void"}, demoOpts()); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
	t.Run("unknown-net-module", func(t *testing.T) {
		bad := demoCircuit()
		bad.Nets[0].Pins[0].Module = "ghost"
		if _, err := Run(bad, demoOpts()); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
}

func TestResumeValidation(t *testing.T) {
	c := demoCircuit()
	opts := demoOpts()
	path := filepath.Join(t.TempDir(), "demo.ckpt")
	withCkpt := opts
	withCkpt.CheckpointPath = path
	withCkpt.CheckpointEvery = 5
	if _, err := Run(c, withCkpt); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("nil-snapshot", func(t *testing.T) {
		if _, err := Resume(context.Background(), c, opts, nil); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
	t.Run("different-circuit", func(t *testing.T) {
		other, err := Benchmark("apte")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(context.Background(), other, opts, snap); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("different-weights", func(t *testing.T) {
		changed := opts
		changed.Alpha = 0.9
		if _, err := Resume(context.Background(), c, changed, snap); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("different-seed", func(t *testing.T) {
		changed := opts
		changed.Seed = 999
		if _, err := Resume(context.Background(), c, changed, snap); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("extend-max-temps-allowed", func(t *testing.T) {
		extended := opts
		extended.MaxTemps = opts.MaxTemps + 10
		if _, err := Resume(context.Background(), c, extended, snap); err != nil {
			t.Errorf("extending MaxTemps should be allowed: %v", err)
		}
	})
	t.Run("corrupt-file", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(bad); err == nil {
			t.Error("LoadCheckpoint accepted garbage")
		}
	})
}

func TestRunBestContextRejectsCheckpointing(t *testing.T) {
	opts := demoOpts()
	opts.CheckpointPath = filepath.Join(t.TempDir(), "x.ckpt")
	if _, err := RunBestContext(context.Background(), demoCircuit(), opts, 2); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("err = %v, want ErrInvalidInput", err)
	}
}

func TestRunBestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunBestContext(ctx, demoCircuit(), demoOpts(), 3)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || res.Best == nil || res.Best.Area <= 0 {
		t.Fatalf("best-so-far result invalid: %+v", res)
	}
}

// TestPipelineSurvivesShardPanics drives the whole floorplanning
// pipeline with injected evaluation-shard crashes and requires the
// final floorplan to be bit-identical to an unfaulted run —
// differential validation that panic recovery never corrupts a score.
func TestPipelineSurvivesShardPanics(t *testing.T) {
	c, err := Benchmark("apte")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   Congestion{Model: ModelIRGrid, Pitch: 30},
		Seed:         3,
		MovesPerTemp: 20, MaxTemps: 10,
		// The shard fault point lives in the full evaluator's parallel
		// path; the incremental move scorer (the default) is
		// single-threaded and would never reach it.
		FullEval: true,
	}
	want, err := Run(c, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Crash every 40th shard execution for the whole run.
	var fired, crashed atomic.Int64
	faultinject.Set(func(p faultinject.Point, _ int) error {
		if p != faultinject.EvalShard {
			return nil
		}
		if fired.Add(1)%40 == 0 {
			crashed.Add(1)
			panic("injected shard crash")
		}
		return nil
	})
	defer faultinject.Set(nil)
	got, err := Run(c, opts)
	faultinject.Set(nil)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Load() == 0 {
		t.Fatal("fault injection never fired; the test exercised nothing")
	}
	sameResult(t, got, want)
	sameCongestionMap(t, got, want, opts.Congestion)
}

// TestCheckpointWriteFaultRunContinues injects checkpoint I/O failures
// and requires the run to finish normally, counting the failures in
// telemetry instead of aborting.
func TestCheckpointWriteFaultRunContinues(t *testing.T) {
	faultinject.Set(func(p faultinject.Point, _ int) error {
		if p == faultinject.CheckpointWrite {
			return errors.New("injected disk failure")
		}
		return nil
	})
	defer faultinject.Set(nil)

	path := filepath.Join(t.TempDir(), "never-written.ckpt")
	opts := demoOpts()
	opts.CheckpointPath = path
	opts.CheckpointEvery = 2
	opts.Obs = telemetry.NewRegistry()
	res, err := Run(demoCircuit(), opts)
	faultinject.Set(nil)
	if err != nil {
		t.Fatalf("checkpoint I/O failure aborted the run: %v", err)
	}
	if res == nil || res.Area <= 0 {
		t.Fatalf("result invalid: %+v", res)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint file exists despite injected write failures")
	}
	snap := opts.Obs.Snapshot()
	if snap["checkpoint_errors"] == 0 {
		t.Error("checkpoint_errors counter not incremented")
	}
	if snap["checkpoints_written"] != 0 {
		t.Errorf("checkpoints_written = %g with an always-failing writer", snap["checkpoints_written"])
	}
}

// TestCheckpointCounters verifies the success-path counters.
func TestCheckpointCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.ckpt")
	opts := demoOpts()
	opts.CheckpointPath = path
	opts.CheckpointEvery = 5
	opts.Obs = telemetry.NewRegistry()
	if _, err := Run(demoCircuit(), opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Obs.Snapshot()
	if snap["checkpoints_written"] == 0 {
		t.Error("checkpoints_written not incremented")
	}
	if snap["checkpoint_errors"] != 0 {
		t.Errorf("checkpoint_errors = %g on the success path", snap["checkpoint_errors"])
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Errorf("written checkpoint does not load: %v", err)
	}
}

// TestCanceledRunCounter verifies runs_canceled is incremented on
// interruption.
func TestCanceledRunCounter(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := demoOpts()
	opts.Obs = telemetry.NewRegistry()
	if _, err := RunContext(ctx, demoCircuit(), opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if got := opts.Obs.Snapshot()["runs_canceled"]; got != 1 {
		t.Errorf("runs_canceled = %g, want 1", got)
	}
}
