// Accuracy reproduces the paper's Figure 8 study: how closely the
// Theorem 1 normal approximation tracks the exact Formula 3
// boundary-escape probabilities, including the §4.5 failure points
// where the approximation has no value.
//
// The paper's setting: a type I net whose routing range is divided
// into 31x21 unit grids. The example sweeps whole IR-rectangles as
// well, comparing the O(1) approximation against the exact O(perimeter)
// sums.
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
	"math"

	"irgrid/congestion"
)

func main() {
	const g1, g2 = 31, 21

	// Part 1: Figure 8(b) — an interior IR-grid top row (y2 = 15),
	// columns x = 10..20. "The approximation is extremely accurate."
	fmt.Println("Whole IR-rectangle crossing probabilities, 31x21 type I net")
	fmt.Printf("%-22s %10s %10s %10s\n", "IR-rect [x1..x2]x[y1..y2]", "exact", "approx", "|dev|")
	worst := 0.0
	rects := [][4]int{
		{10, 20, 2, 15},
		{5, 12, 3, 9},
		{1, 8, 10, 18},
		{14, 25, 5, 12},
		{22, 28, 14, 19},
		{3, 27, 8, 11},
	}
	for _, r := range rects {
		exact := congestion.CrossProbabilityExact(g1, g2, r[0], r[1], r[2], r[3])
		approx := congestion.CrossProbabilityApprox(g1, g2, r[0], r[1], r[2], r[3], 0)
		d := math.Abs(exact - approx)
		if d > worst {
			worst = d
		}
		fmt.Printf("[%2d..%2d]x[%2d..%2d]      %10.6f %10.6f %10.6f\n",
			r[0], r[1], r[2], r[3], exact, approx, d)
	}
	fmt.Printf("worst deviation %.4f (paper: generally below 0.05)\n\n", worst)

	// Part 2: pin-adjacent IR-grids are assigned probability 1 directly
	// (Algorithm step 3.1 and the §4.5 rule) — both model variants
	// agree there by construction.
	fmt.Println("Pin and error-cell IR-grids (probability 1 by rule):")
	for _, r := range [][4]int{
		{0, 0, 0, 0},                     // source pin
		{g1 - 1, g1 - 1, g2 - 1, g2 - 1}, // sink pin
		{g1 - 2, g1 - 1, g2 - 2, g2 - 1}, // sink + Sec. 4.5 error cells
	} {
		exact := congestion.CrossProbabilityExact(g1, g2, r[0], r[1], r[2], r[3])
		approx := congestion.CrossProbabilityApprox(g1, g2, r[0], r[1], r[2], r[3], 0)
		fmt.Printf("[%2d..%2d]x[%2d..%2d]      exact %g, approx %g\n",
			r[0], r[1], r[2], r[3], exact, approx)
	}

	// Part 3: the speed/size trade. The exact sums walk the
	// IR-rectangle perimeter; the approximation is constant-time. Count
	// arithmetic work by sweeping rectangle sizes.
	fmt.Println("\nCost model: exact work grows with the IR-rect perimeter, approx is O(1):")
	for _, span := range []int{2, 5, 10, 20} {
		x2 := 5 + span
		y2 := 2 + span
		if x2 > g1-2 {
			x2 = g1 - 2
		}
		if y2 > g2-2 {
			y2 = g2 - 2
		}
		exact := congestion.CrossProbabilityExact(g1, g2, 5, x2, 2, y2)
		approx := congestion.CrossProbabilityApprox(g1, g2, 5, x2, 2, y2, 0)
		fmt.Printf("span %2d: exact terms ~%2d, simpson evals ~10, values %.5f / %.5f\n",
			span, (x2-5+1)+(y2-2+1), exact, approx)
	}
}
