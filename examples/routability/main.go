// Routability reproduces the paper's Experiment 1 in miniature: the
// same circuit is floorplanned twice — once optimizing area and
// wirelength only, once with the Irregular-Grid congestion term added —
// and both results are scored by the neutral judging model (fixed grid,
// 10x10 um2). The paper's claim: "the congestion falls down
// substantially with a little penalty in the area and the wire length."
//
//	go run ./examples/routability
package main

import (
	"fmt"
	"log"

	"irgrid/floorplan"
)

func main() {
	const circuit = "xerox"
	c, err := floorplan.Benchmark(circuit)
	if err != nil {
		log.Fatal(err)
	}

	base, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.5, Beta: 0.5,
		Seed:         42,
		MovesPerTemp: 80, MaxTemps: 50,
		PinPitch: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseJudge, err := base.JudgeCongestion()
	if err != nil {
		log.Fatal(err)
	}

	routable, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30},
		Seed:         42,
		MovesPerTemp: 80, MaxTemps: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	routableJudge, err := routable.JudgeCongestion()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("circuit %s: %d modules, %d nets\n\n", circuit, len(c.Modules), len(c.Nets))
	fmt.Printf("%-26s %12s %12s %12s\n", "floorplanner", "area (mm2)", "wire (um)", "judging cgt")
	fmt.Printf("%-26s %12.3f %12.0f %12.6f\n", "area+wire only", base.Area/1e6, base.Wirelength, baseJudge)
	fmt.Printf("%-26s %12.3f %12.0f %12.6f\n", "+ IR-grid congestion", routable.Area/1e6, routable.Wirelength, routableJudge)

	pct := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return (a - b) / a * 100
	}
	fmt.Printf("\ncongestion improvement  %+.2f%%\n", pct(baseJudge, routableJudge))
	fmt.Printf("area penalty            %+.2f%%\n", -pct(base.Area, routable.Area))
	fmt.Printf("wirelength change       %+.2f%%\n", -pct(base.Wirelength, routable.Wirelength))
	fmt.Println("\n(Experiment 1, Table 3: the paper reports 2-20% judging-congestion")
	fmt.Println("improvements at small area/wirelength penalties.)")
}
