// Quickstart: floorplan a built-in benchmark with the Irregular-Grid
// congestion model and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"irgrid/floorplan"
)

func main() {
	// Load one of the built-in MCNC-statistics circuits.
	c, err := floorplan.Benchmark("ami33")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d modules, %d nets\n", c.Name, len(c.Modules), len(c.Nets))

	// Anneal with cost = 0.4*Area + 0.2*Wire + 0.4*Congestion, the
	// congestion term supplied by the paper's Irregular-Grid model at
	// a 30x30 um2 base pitch.
	res, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30},
		Seed:         1,
		MovesPerTemp: 60, MaxTemps: 40,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip        %.0f x %.0f um\n", res.ChipW, res.ChipH)
	fmt.Printf("area        %.3f mm2\n", res.Area/1e6)
	fmt.Printf("wirelength  %.0f um\n", res.Wirelength)
	fmt.Printf("IR cgt cost %.6g\n", res.CongestionCost)

	// Score the same floorplan with the paper's neutral referee: the
	// fixed-size-grid model at a very fine 10x10 um2 pitch.
	judge, err := res.JudgeCongestion()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("judging cgt %.6f (10x10 um2 fixed grid)\n", judge)

	// Where does the congestion live? Pull the IR-grid heat map and
	// list the three worst hotspots.
	mp, err := res.CongestionMap(floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IR-grids    %d (irregular partition from %d x-lines, %d y-lines)\n",
		mp.Cells, len(mp.XLines), len(mp.YLines))
	for i, h := range mp.Hotspots(3) {
		fmt.Printf("hotspot %d   [%5.0f,%5.0f .. %5.0f,%5.0f] density %.5g\n",
			i+1, h.X1, h.Y1, h.X2, h.Y2, h.Density)
	}
}
