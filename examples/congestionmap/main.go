// Congestionmap reproduces the motivation of the paper's Figures 3–4:
// the fixed-size-grid model's congestion picture depends on the chosen
// grid resolution, while the Irregular-Grid partition follows the
// routing ranges themselves.
//
// A hand-built floorplan concentrates five nets on the right half of a
// 600x400 um chip. The example renders the fixed model at two
// resolutions (coarse and fine) and the IR model, showing (a) the
// fixed model's estimate changing with the grid size, and (b) the IR
// model spending its cells where the nets are.
//
//	go run ./examples/congestionmap
package main

import (
	"fmt"
	"log"

	"irgrid/congestion"
)

func main() {
	const chipW, chipH = 600, 400

	// Five nets clustered on the right half (cf. Figure 4(a)), pins on
	// 30 um intersections.
	nets := []congestion.Net{
		{X1: 300, Y1: 60, X2: 570, Y2: 360},
		{X1: 330, Y1: 90, X2: 540, Y2: 270},
		{X1: 360, Y1: 120, X2: 570, Y2: 300},
		{X1: 390, Y1: 60, X2: 510, Y2: 330},
		{X1: 300, Y1: 180, X2: 480, Y2: 360},
		// One lonely net on the left.
		{X1: 30, Y1: 60, X2: 120, Y2: 150},
	}

	coarse, err := congestion.EstimateFixed(chipW, chipH, nets, congestion.Options{Pitch: 100})
	if err != nil {
		log.Fatal(err)
	}
	fine, err := congestion.EstimateFixed(chipW, chipH, nets, congestion.Options{Pitch: 50})
	if err != nil {
		log.Fatal(err)
	}
	ir, err := congestion.EstimateIR(chipW, chipH, nets, congestion.Options{Pitch: 30})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fixed grid, 100x100 um cells (cf. Figure 3(b)):")
	render(coarse)
	fmt.Printf("cells %d, score %.6g\n\n", coarse.Cells, coarse.Score)

	fmt.Println("Fixed grid, 50x50 um cells (cf. Figure 3(c)) - different picture, 4x the cells:")
	render(fine)
	fmt.Printf("cells %d, score %.6g\n\n", fine.Cells, fine.Score)

	fmt.Println("Irregular-Grid (cf. Figure 5) - cutting lines from the routing ranges:")
	render(ir)
	fmt.Printf("cells %d, score %.6g\n", ir.Cells, ir.Score)
	fmt.Printf("x-lines: %.0f\n", ir.XLines)
	fmt.Printf("y-lines: %.0f\n", ir.YLines)
	fmt.Println("\nNote how the IR partition is dense on the right, where the nets")
	fmt.Println("are, and a single cell covers the sparse left half.")
}

// render draws the map on a 60x20 character raster.
func render(m *congestion.Map) {
	const cols, rows = 60, 20
	shades := []byte(" .:-=+*#%@")
	maxD := m.MaxDensity()
	chipW := m.XLines[len(m.XLines)-1]
	chipH := m.YLines[len(m.YLines)-1]
	for ry := rows - 1; ry >= 0; ry-- {
		line := make([]byte, cols)
		for rx := 0; rx < cols; rx++ {
			x := (float64(rx) + 0.5) / cols * chipW
			y := (float64(ry) + 0.5) / rows * chipH
			cx, cy, ok := m.CellAt(x, y)
			shade := 0
			if ok && maxD > 0 {
				shade = int(m.Density[cy][cx] / maxD * float64(len(shades)-1))
			}
			line[rx] = shades[shade]
		}
		fmt.Printf("  |%s|\n", line)
	}
}
