// Predictvsroute closes the loop the paper argues indirectly: a good
// congestion model should rank floorplans the way an actual router
// does. The example floorplans the same circuit under several seeds,
// scores every result with the Irregular-Grid model, then global-routes
// the nets and compares the two rankings.
//
//	go run ./examples/predictvsroute
package main

import (
	"fmt"
	"log"
	"sort"

	"irgrid/congestion"
	"irgrid/floorplan"
)

func main() {
	c, err := floorplan.Benchmark("ami33")
	if err != nil {
		log.Fatal(err)
	}

	type sample struct {
		seed     int64
		irScore  float64
		overflow int
	}
	var samples []sample

	for seed := int64(1); seed <= 6; seed++ {
		res, err := floorplan.Run(c, floorplan.Options{
			Alpha: 0.5, Beta: 0.5, // area/wire only: congestion varies freely
			Seed:         seed,
			MovesPerTemp: 40, MaxTemps: 25,
			PinPitch: 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		var nets []congestion.Net
		for _, n := range res.TwoPinNets() {
			nets = append(nets, congestion.Net{X1: n[0], Y1: n[1], X2: n[2], Y2: n[3]})
		}
		est, err := congestion.EstimateIR(res.ChipW, res.ChipH, nets, congestion.Options{Pitch: 30})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := congestion.Route(res.ChipW, res.ChipH, nets, congestion.RouteOptions{
			Pitch: 30, Capacity: 3, Iterations: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, sample{seed: seed, irScore: est.Score, overflow: rep.Overflow})
	}

	fmt.Printf("%-6s %14s %16s\n", "seed", "IR-grid score", "router overflow")
	for _, s := range samples {
		fmt.Printf("%-6d %14.6g %16d\n", s.seed, s.irScore, s.overflow)
	}

	// Compare rankings.
	byScore := append([]sample(nil), samples...)
	sort.Slice(byScore, func(i, j int) bool { return byScore[i].irScore < byScore[j].irScore })
	byOverflow := append([]sample(nil), samples...)
	sort.Slice(byOverflow, func(i, j int) bool { return byOverflow[i].overflow < byOverflow[j].overflow })

	fmt.Print("\nleast→most congested by IR model:  ")
	for _, s := range byScore {
		fmt.Printf("%d ", s.seed)
	}
	fmt.Print("\nleast→most congested by router:    ")
	for _, s := range byOverflow {
		fmt.Printf("%d ", s.seed)
	}
	fmt.Println()
	fmt.Println("\nA faithful estimator orders the seeds similarly to the router —")
	fmt.Println("run `go run ./cmd/experiments -validate` for the quantified version")
	fmt.Println("(Spearman rank correlation over a larger sample).")
}
