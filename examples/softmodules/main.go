// Softmodules demonstrates floorplanning with soft (aspect-ratio-
// flexible) modules, an extension beyond the paper's hard-module
// experiments: the same netlist is packed twice, once with rigid
// blocks and once letting every block deform within a 1:4 aspect
// range, and the area utilization and judged congestion are compared.
//
//	go run ./examples/softmodules
package main

import (
	"fmt"
	"log"

	"irgrid/floorplan"
)

func buildCircuit(soft bool) *floorplan.Circuit {
	dims := [][2]float64{
		{400, 100}, {120, 360}, {250, 250}, {90, 420}, {330, 140},
		{200, 200}, {150, 320}, {280, 110}, {170, 170}, {100, 450},
	}
	c := &floorplan.Circuit{Name: "softdemo"}
	for i, d := range dims {
		m := floorplan.Module{Name: fmt.Sprintf("m%02d", i), W: d[0], H: d[1]}
		if soft {
			m.MinAspect, m.MaxAspect = 0.25, 4
		}
		c.Modules = append(c.Modules, m)
	}
	// A ring of 2-pin nets plus a few long cross connections.
	for i := range dims {
		c.Nets = append(c.Nets, floorplan.Net{
			Name: fmt.Sprintf("ring%02d", i),
			Pins: []floorplan.Pin{
				{Module: c.Modules[i].Name, FX: 0.5, FY: 0.5},
				{Module: c.Modules[(i+1)%len(dims)].Name, FX: 0.5, FY: 0.5},
			},
		})
	}
	for i := 0; i < 4; i++ {
		c.Nets = append(c.Nets, floorplan.Net{
			Name: fmt.Sprintf("cross%d", i),
			Pins: []floorplan.Pin{
				{Module: c.Modules[i].Name, FX: 0.2, FY: 0.8},
				{Module: c.Modules[i+5].Name, FX: 0.8, FY: 0.2},
			},
		})
	}
	return c
}

func run(c *floorplan.Circuit) (*floorplan.Result, float64) {
	res, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.6, Beta: 0.4,
		Seed:         7,
		MovesPerTemp: 80, MaxTemps: 60,
		PinPitch: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	judge, err := res.JudgeCongestion()
	if err != nil {
		log.Fatal(err)
	}
	return res, judge
}

func main() {
	hardRes, hardJudge := run(buildCircuit(false))
	softRes, softJudge := run(buildCircuit(true))

	var moduleArea float64
	for _, m := range buildCircuit(false).Modules {
		moduleArea += m.W * m.H
	}

	fmt.Printf("%-18s %12s %12s %12s %12s\n", "variant", "area (um2)", "util (%)", "wire (um)", "judging cgt")
	fmt.Printf("%-18s %12.0f %12.1f %12.0f %12.4f\n",
		"hard modules", hardRes.Area, moduleArea/hardRes.Area*100, hardRes.Wirelength, hardJudge)
	fmt.Printf("%-18s %12.0f %12.1f %12.0f %12.4f\n",
		"soft (1:4 range)", softRes.Area, moduleArea/softRes.Area*100, softRes.Wirelength, softJudge)
	fmt.Println("\nSoft modules deform to fill slack in their slicing slots, raising")
	fmt.Println("utilization; the congestion model is agnostic to how the shapes arose.")
}
