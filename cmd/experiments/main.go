// Command experiments regenerates the paper's evaluation: Tables 1–5
// and Figures 8–9. By default it runs the quick protocol (3 seeds,
// short anneals); -protocol full reproduces the paper's 20-seed runs.
//
// Examples:
//
//	experiments -all
//	experiments -table 3 -protocol full
//	experiments -figure 9 -circuit ami33
package main

import (
	"flag"
	"fmt"
	"os"

	"irgrid/internal/cli"
	"irgrid/internal/exp"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1-5)")
		figure   = flag.Int("figure", 0, "regenerate one figure (8 or 9)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		validate = flag.Bool("validate", false, "extension: correlate all congestion models against router overflow")
		ablation = flag.Bool("ablation", false, "extension: compare IR-grid model variants (exact/approx/bounds/merge)")
		sens     = flag.Bool("sensitivity", false, "extension: fixed-grid pitch sweep (the Figures 3-4 motivation, quantified)")
		soft     = flag.Bool("soft", false, "extension: hard vs soft-module floorplanning study")
		reps     = flag.Bool("representations", false, "extension: slicing vs sequence-pair study")
		samples  = flag.Int("samples", 24, "floorplan samples for -validate / -ablation")
		protocol = flag.String("protocol", "quick", "protocol: smoke, quick or full")
		circuit  = flag.String("circuit", "ami33", "circuit for -figure 9")
		seeds    = flag.Int("seeds", 0, "override the protocol's seed count")
		parallel = flag.Bool("parallel", false, "run seeds in parallel (identical results; per-run time columns reflect contended cores)")
		timeout  = flag.Duration("timeout", 0, "abort the experiments after this duration (exit 124; also stops on SIGINT/SIGTERM)")
	)
	flag.Parse()

	var p exp.Protocol
	switch *protocol {
	case "smoke":
		p = exp.Smoke()
	case "quick":
		p = exp.Quick()
	case "full":
		p = exp.Full()
	default:
		cli.Fatalf("experiments", cli.ExitUsage, "unknown protocol %q", *protocol)
	}
	if *seeds > 0 {
		p.Seeds = *seeds
	}
	p.Parallel = *parallel
	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	p.Ctx = ctx

	if !*all && *table == 0 && *figure == 0 && !*validate && !*ablation && !*sens && !*soft && !*reps {
		flag.Usage()
		os.Exit(2)
	}

	// Tables 1+2 are prerequisites of Table 3; compute lazily and share.
	var t1 []exp.Table1Row
	var t2 []exp.Table2Row
	need1 := *all || *table == 1 || *table == 3
	need2 := *all || *table == 2 || *table == 3

	if need1 {
		rows, err := exp.RunTable1(p)
		if err != nil {
			fatal(err)
		}
		t1 = rows
		if *all || *table == 1 {
			fmt.Println(exp.FormatTable1(t1))
		}
	}
	if need2 {
		rows, err := exp.RunTable2(p)
		if err != nil {
			fatal(err)
		}
		t2 = rows
		if *all || *table == 2 {
			fmt.Println(exp.FormatTable2(t2))
		}
	}
	if *all || *table == 3 {
		fmt.Println(exp.FormatTable3(exp.Table3(t1, t2)))
	}

	var t4 exp.Table4Result
	var t5 []exp.Table5Row
	need4 := *all || *table == 4
	need5 := *all || *table == 5
	if need4 {
		r, err := exp.RunTable4(p)
		if err != nil {
			fatal(err)
		}
		t4 = r
		fmt.Println(exp.FormatTable4(t4))
	}
	if need5 {
		rows, err := exp.RunTable5(p)
		if err != nil {
			fatal(err)
		}
		t5 = rows
		fmt.Println(exp.FormatTable5(t5))
	}
	if *all || (need4 && need5) {
		if need4 && need5 {
			fmt.Println(exp.FormatExperiment3(exp.SummarizeExperiment3(t4, t5)))
		}
	}

	if *all || *figure == 8 {
		// The paper's setting: a 31×21-grid type I net, IR-grid top row
		// y2 = 15, x = 10..20; plus the failure-point row y2 = 19.
		pts := exp.RunFigure8(31, 21, 15, 10, 20)
		fmt.Println(exp.FormatFigure8(pts, "31x21 net, y2=15, x=10..20"))
		pts = exp.RunFigure8(31, 21, 19, 25, 30)
		fmt.Println(exp.FormatFigure8(pts, "31x21 net, y2=19, x=25..30 (failure point at x=30)"))
	}
	if *all || *figure == 9 {
		fig, err := exp.RunFigure9(p, *circuit)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatFigure9(fig))
	}

	if *all || *validate {
		v, err := exp.RunValidation(*circuit, *samples, p.BaseSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatValidation(v))
	}

	if *all || *ablation {
		a, err := exp.RunAblation(*circuit, *samples, p.BaseSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatAblation(a))
	}

	if *all || *sens {
		s, err := exp.RunSensitivity(*circuit, *samples, p.BaseSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatSensitivity(s))
	}

	if *soft {
		rows, err := exp.RunSoftStudy(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatSoftStudy(rows))
	}

	if *reps {
		rows, err := exp.RunRepStudy(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatRepStudy(rows))
	}
}

func fatal(err error) {
	cli.Fatal("experiments", err)
}
