package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"irgrid/floorplan"
	"irgrid/internal/server"
	"irgrid/internal/server/harness"
)

// buildDaemon compiles floorpland once per test into the test's temp
// dir and returns the binary path.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "floorpland.bin")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an ephemeral port over stateDir
// and waits for the address file.
func startDaemon(t *testing.T, bin, stateDir, addrFile string, stderr *bytes.Buffer) (*exec.Cmd, *harness.Client) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-state-dir", stateDir,
		"-addr-file", addrFile,
		"-checkpoint-every", "1")
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			return cmd, harness.NewClient("http://" + string(bytes.TrimSpace(b)))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon never wrote its address\nstderr: %s", stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestDaemonKillRestartResumesBitIdentical is the crash-safety
// contract end to end, across real processes: SIGKILL a daemon
// mid-anneal — no drain, no goodbye — restart it over the same state
// directory, and the job resumes from its last periodic checkpoint to
// a result bit-identical to an uninterrupted direct floorplan.Run.
func TestDaemonKillRestartResumesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds, kills and restarts a child daemon")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	stateDir := filepath.Join(dir, "state")
	addrFile := filepath.Join(dir, "addr")

	var stderr1 bytes.Buffer
	cmd1, client := startDaemon(t, bin, stateDir, addrFile, &stderr1)
	defer cmd1.Process.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	st, err := client.Submit(ctx, &server.JobRequest{
		Benchmark: "ami33",
		Options: server.RunOptions{
			Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
			Model: floorplan.ModelIRGrid, Pitch: 30,
			Seed:         5,
			MovesPerTemp: 30,
			MaxTemps:     60,
		},
	})
	if err != nil {
		t.Fatalf("submit: %v\nstderr: %s", err, stderr1.String())
	}

	// Let the anneal reach its second periodic checkpoint, then pull
	// the plug with SIGKILL: no drain handler runs.
	if _, err := client.WaitStatus(ctx, st.ID, func(s *server.JobStatus) bool {
		return s.CheckpointStep >= 2
	}); err != nil {
		t.Fatalf("job never checkpointed: %v\nstderr: %s", err, stderr1.String())
	}
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	os.Remove(addrFile)
	var stderr2 bytes.Buffer
	cmd2, client2 := startDaemon(t, bin, stateDir, addrFile, &stderr2)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()

	final, err := client2.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatalf("restarted daemon never finished the job: %v\nstderr: %s", err, stderr2.String())
	}
	if final.State != server.StateDone {
		t.Fatalf("resumed job state %q error %q", final.State, final.Error)
	}
	if final.Resumes < 1 {
		t.Errorf("resumed job reports %d resumes, want >= 1", final.Resumes)
	}
	got, err := client2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	c, err := floorplan.Benchmark("ami33")
	if err != nil {
		t.Fatal(err)
	}
	want, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30},
		Seed:         5,
		MovesPerTemp: 30,
		MaxTemps:     60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.Area != want.Area || got.Wirelength != want.Wirelength ||
		got.CongestionCost != want.CongestionCost || got.ChipW != want.ChipW || got.ChipH != want.ChipH {
		t.Errorf("resumed result (cost %v area %v wl %v cong %v chip %vx%v) not bit-identical to direct run (cost %v area %v wl %v cong %v chip %vx%v)",
			got.Cost, got.Area, got.Wirelength, got.CongestionCost, got.ChipW, got.ChipH,
			want.Cost, want.Area, want.Wirelength, want.CongestionCost, want.ChipW, want.ChipH)
	}
	if len(got.Modules) != len(want.Modules) {
		t.Fatalf("placed %d modules, want %d", len(got.Modules), len(want.Modules))
	}
	for i := range got.Modules {
		if got.Modules[i] != want.Modules[i] {
			t.Errorf("module %d = %+v, want %+v", i, got.Modules[i], want.Modules[i])
		}
	}
}

// TestDaemonSIGTERMDrainsCleanly pins the graceful path: a SIGTERM
// while a job runs exits 0 after checkpointing and requeueing it, and
// the job record survives on disk as queued.
func TestDaemonSIGTERMDrainsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child daemon")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	stateDir := filepath.Join(dir, "state")
	addrFile := filepath.Join(dir, "addr")

	var stderr bytes.Buffer
	cmd, client := startDaemon(t, bin, stateDir, addrFile, &stderr)
	defer cmd.Process.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := client.Submit(ctx, &server.JobRequest{
		Benchmark: "ami49",
		Options: server.RunOptions{
			Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
			Model: floorplan.ModelIRGrid, Pitch: 100,
			Seed:         1,
			MovesPerTemp: 60,
			MaxTemps:     1000000,
		},
	})
	if err != nil {
		t.Fatalf("submit: %v\nstderr: %s", err, stderr.String())
	}
	// Wait past the first periodic checkpoint so the drain interrupts
	// a job that has durable progress to keep.
	if _, err := client.WaitStatus(ctx, st.ID, func(s *server.JobStatus) bool {
		return s.CheckpointStep >= 1
	}); err != nil {
		t.Fatalf("job never checkpointed: %v\nstderr: %s", err, stderr.String())
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero on SIGTERM: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("stderr missing drain notice:\n%s", stderr.String())
	}

	// The interrupted job is persisted back to the queue with its
	// checkpoint beside it, ready for the next daemon.
	ckpt := filepath.Join(stateDir, "jobs", st.ID, "run.ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Errorf("drained job has no checkpoint: %v", err)
	}
	if _, err := floorplan.LoadCheckpoint(ckpt); err != nil {
		t.Errorf("drained checkpoint does not verify: %v", err)
	}
}
