// Command floorpland is the floorplanning-as-a-service daemon: it
// serves the HTTP JSON job API of internal/server — submit circuits,
// poll status, fetch results, cancel, stream run traces — over a
// bounded work queue with per-client rate limits, backed by a durable
// state directory of per-job checkpoints.
//
//	floorpland -state-dir /var/lib/floorpland -addr 127.0.0.1:8455
//
// Jobs survive the daemon: a SIGTERM/SIGINT drains gracefully —
// running jobs are checkpointed at their next annealing move and
// persisted back to the queue — and even a SIGKILL (or power loss)
// costs at most the work since each job's last periodic checkpoint.
// On restart with the same -state-dir, interrupted jobs resume and
// finish bit-identical to a run that was never interrupted.
//
// Observability rides the same listener: Prometheus metrics at
// /metrics (queue depth, job counts, wait/run latencies plus every
// run-level metric), the live run status at /debug/run, and pprof at
// /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"irgrid/internal/buildinfo"
	"irgrid/internal/cli"
	"irgrid/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8455", "host:port to serve the job API on (use :0 for an ephemeral port)")
		stateDir  = flag.String("state-dir", "", "durable job-store directory (required); jobs in it are recovered on start")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (for supervisors and tests)")
		workers   = flag.Int("workers", 1, "concurrent job-running workers")
		queue     = flag.Int("queue", 16, "bounded queue depth; submissions beyond it get 429 + Retry-After")
		rate      = flag.Float64("rate", 0, "per-client submission rate limit in jobs/second (0 disables)")
		burst     = flag.Int("burst", 4, "rate-limit token-bucket burst")
		ckptEvery = flag.Int("checkpoint-every", 5, "temperature steps between per-job checkpoints")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for checkpointing running jobs")
		attempts  = flag.Int("max-attempts", 3, "run attempts per job (crash retries) before it is quarantined as poison")
		stall     = flag.Duration("stall-timeout", 0, "stuck-run watchdog: dump a postmortem and cancel a running job making no observable progress for this long (0 disables)")
		probe     = flag.Duration("probe-every", 2*time.Second, "degraded store re-probe period; a successful probe heals and flushes held records")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version())
		return 0
	}
	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "floorpland: -state-dir is required")
		return cli.ExitUsage
	}

	logger := log.New(os.Stderr, "floorpland: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		StateDir:        *stateDir,
		Workers:         *workers,
		QueueDepth:      *queue,
		RateLimit:       *rate,
		RateBurst:       *burst,
		CheckpointEvery: *ckptEvery,
		MaxAttempts:     *attempts,
		StallTimeout:    *stall,
		ProbeEvery:      *probe,
		Logf:            logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "floorpland:", err)
		return cli.ExitFailure
	}

	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floorpland:", err)
		// The listener never started; still drain the worker pool.
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		srv.Shutdown(ctx)
		return cli.ExitFailure
	}
	logger.Printf("%s", buildinfo.Version())
	logger.Printf("serving job API at http://%s/v1/jobs (state in %s)", bound, *stateDir)
	logger.Printf("metrics at http://%s/metrics, live run status at http://%s/debug/run", bound, bound)
	if *addrFile != "" {
		if werr := os.WriteFile(*addrFile, []byte(bound.String()+"\n"), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "floorpland:", werr)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			srv.Shutdown(ctx)
			return cli.ExitFailure
		}
	}

	// Serve until SIGINT/SIGTERM, then drain: running jobs stop at
	// their next annealing move, write a final resumable checkpoint,
	// and are persisted back to the queue for the next daemon.
	ctx, stop := cli.SignalContext(0)
	<-ctx.Done()
	stop()
	logger.Printf("signal received; draining (budget %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Printf("drain: %v", err)
		return cli.ExitFailure
	}
	logger.Printf("drained cleanly")
	return 0
}
