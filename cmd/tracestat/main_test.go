package main

import (
	"bytes"
	"strings"
	"testing"

	"irgrid/floorplan"
	"irgrid/telemetry"
)

// endToEndTrace runs a real (small) floorplan and returns its trace.
func endToEndTrace(t *testing.T) []byte {
	t.Helper()
	c, err := floorplan.Benchmark("apte")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	_, err = floorplan.Run(c, floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		// Pitch 10 keeps IR cells wide in unit-cell terms (past the
		// exact-span limit), so the Simpson-approx path — and hence its
		// memo — is exercised and shows up in the summary.
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 10},
		Seed:         1,
		MovesPerTemp: 6, MaxTemps: 8,
		Obs:   telemetry.NewRegistry(),
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSummarizeEndToEndTrace(t *testing.T) {
	raw := endToEndTrace(t)
	var out bytes.Buffer
	if err := summarize(bytes.NewReader(raw), &out, 6); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"run        apte",
		"0.4 area + 0.2 wire + 0.4 congestion (ir-grid)",
		"calibrated T0",
		"cooling curve",
		"acceptance decayed",
		"final      cost",
		"Simpson-memo hit rate",
		"full floorplan evaluations",
		"incremental moves",
		"dirty nets/move",
		"ns/move mean",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// The cooling-curve table is capped at -rows entries plus its two
	// header lines.
	lines := strings.Split(s, "\n")
	var tableRows int
	inTable := false
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "cooling curve"):
			inTable = true
		case inTable && strings.HasPrefix(l, "acceptance decayed"):
			inTable = false
		case inTable && strings.HasPrefix(l, "  ") == false && len(l) > 0 && l[0] == ' ':
			tableRows++
		}
	}
	if tableRows > 6+1 { // header + at most 6 sampled steps
		t.Errorf("cooling table has %d rows, want <= 7:\n%s", tableRows, s)
	}
}

func TestSummarizeRejectsGarbage(t *testing.T) {
	if err := summarize(strings.NewReader("not json\n"), &bytes.Buffer{}, 10); err == nil {
		t.Error("expected an error for a non-JSONL input")
	}
	if err := summarize(strings.NewReader(""), &bytes.Buffer{}, 10); err == nil {
		t.Error("expected an error for an empty trace")
	}
}

func TestSample(t *testing.T) {
	got := sample(100, 5)
	if len(got) != 5 || got[0] != 0 || got[len(got)-1] != 99 {
		t.Errorf("sample(100, 5) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("sample indices not increasing: %v", got)
		}
	}
	if got := sample(3, 10); len(got) != 3 {
		t.Errorf("sample(3, 10) = %v", got)
	}
}
