package main

import (
	"bytes"
	"strings"
	"testing"

	"irgrid/floorplan"
	"irgrid/telemetry"
)

// spanTrace runs a real (small) floorplan with span tracing enabled
// and returns its trace.
func spanTrace(t *testing.T, seed int64, temps int) []byte {
	t.Helper()
	c, err := floorplan.Benchmark("apte")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	_, err = floorplan.Run(c, floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 10},
		Seed:         seed,
		MovesPerTemp: 6, MaxTemps: temps,
		Obs:   telemetry.NewRegistry(),
		Trace: tr,
		Spans: telemetry.NewSpans(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSummarizeRendersSpansAndOutcome(t *testing.T) {
	raw := spanTrace(t, 1, 8)
	var out bytes.Buffer
	if err := summarize(bytes.NewReader(raw), &out, 6); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"outcome    completed",
		"span tree",
		"run",      // root
		"  anneal", // child indented under run
		"    temp", // grandchild
		"move",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestCompareTraces(t *testing.T) {
	a, err := parseBytes(spanTrace(t, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseBytes(spanTrace(t, 2, 6))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := diff(a, b, "a.jsonl", "b.jsonl", &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"circuit", "apte",
		"final cost",
		"temperature steps",
		"outcome", "completed",
		"span totals:",
		"run/anneal",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("compare output missing %q:\n%s", want, s)
		}
	}
	// Deltas are rendered as percentages against trace A.
	if !strings.Contains(s, "%") {
		t.Errorf("compare output has no percentage deltas:\n%s", s)
	}
}

func parseBytes(raw []byte) (*trace, error) {
	return parse(bytes.NewReader(raw))
}

func TestFmtNs(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2.5e6, "2.50ms"},
		{3.2e9, "3.20s"},
	} {
		if got := fmtNs(tc.ns); got != tc.want {
			t.Errorf("fmtNs(%g) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
