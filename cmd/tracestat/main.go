// Command tracestat summarizes a JSONL run trace produced by
// `floorplan -trace`: the cooling curve, the acceptance-rate decay, the
// convergence of the cost components, and — when the trace carries a
// metrics snapshot — the evaluation-engine internals: the Simpson-memo
// hit rate and the incremental delta engine's move counters (dirty
// nets per move, cutting-line cache hit rate, contribution-vector
// reuse, mean move cost).
//
// When the trace carries a spans event (runs with span tracing
// enabled), tracestat renders the hierarchical timing tree; -compare
// diffs two traces side by side (convergence, engine counters, span
// profiles) for before/after investigations; -postmortem renders a
// flight-recorder dump (panic, stall, quarantine, SIGQUIT) — identity,
// reason, the live status at capture, key metrics, the span tree and
// the event-ring tail.
//
// Example:
//
//	floorplan -circuit ami33 -trace ami33.trace.jsonl
//	tracestat ami33.trace.jsonl
//	tracestat -compare before.jsonl after.jsonl
//	tracestat -postmortem jobs/j00000001/postmortem.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"irgrid/internal/cli"
	"irgrid/telemetry"
)

func main() {
	rows := flag.Int("rows", 12, "maximum table rows (temperature steps are subsampled evenly)")
	compare := flag.Bool("compare", false, "diff two traces: tracestat -compare before.jsonl after.jsonl")
	postm := flag.Bool("postmortem", false, "render a flight-recorder postmortem dump: tracestat -postmortem dump.json")
	flag.Parse()

	if *postm {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("usage: tracestat -postmortem dump.json"))
		}
		pm, err := telemetry.LoadPostmortem(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if err := renderPostmortem(pm, os.Stdout, *rows); err != nil {
			fatal(err)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("usage: tracestat -compare before.jsonl after.jsonl"))
		}
		a, err := parseFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		b, err := parseFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		if err := diff(a, b, flag.Arg(0), flag.Arg(1), os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var r io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	default:
		fatal(fmt.Errorf("usage: tracestat [trace.jsonl]"))
	}
	if err := summarize(r, os.Stdout, *rows); err != nil {
		fatal(err)
	}
}

func parseFile(path string) (*trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// trace is a decoded run trace, events bucketed by type.
type trace struct {
	start     *telemetry.TraceRecord
	calib     *telemetry.TraceRecord
	temps     []telemetry.TraceRecord
	solutions []telemetry.TraceRecord
	spans     *telemetry.TraceRecord
	end       *telemetry.TraceRecord
}

func parse(r io.Reader) (*trace, error) {
	var t trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var rec telemetry.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		switch rec.Ev {
		case telemetry.EvRunStart:
			t.start = &rec
		case telemetry.EvCalibration:
			t.calib = &rec
		case telemetry.EvTemp:
			t.temps = append(t.temps, rec)
		case telemetry.EvSolution:
			t.solutions = append(t.solutions, rec)
		case telemetry.EvSpans:
			t.spans = &rec
		case telemetry.EvRunEnd:
			t.end = &rec
		default:
			return nil, fmt.Errorf("trace line %d: unknown event %q", line, rec.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.temps) == 0 && t.start == nil && t.end == nil {
		return nil, fmt.Errorf("no trace events found")
	}
	return &t, nil
}

func summarize(r io.Reader, w io.Writer, maxRows int) error {
	t, err := parse(r)
	if err != nil {
		return err
	}
	if maxRows < 2 {
		maxRows = 2
	}

	if s := t.start; s != nil {
		fmt.Fprintf(w, "run        %s", orUnknown(s.Circuit))
		if s.Modules > 0 || s.Nets > 0 {
			fmt.Fprintf(w, " (%d modules, %d nets)", s.Modules, s.Nets)
		}
		fmt.Fprintf(w, ", seed %d\n", s.Seed)
		fmt.Fprintf(w, "cost       %.3g area + %.3g wire + %.3g congestion (%s)\n",
			s.Alpha, s.Beta, s.Gamma, orUnknown(s.Model))
		if s.Version != "" {
			fmt.Fprintf(w, "build      %s\n", s.Version)
		}
		if s.Time != "" {
			fmt.Fprintf(w, "started    %s\n", s.Time)
		}
	}
	if c := t.calib; c != nil {
		fmt.Fprintf(w, "calibrated T0 %.6g from %d probes (initial cost %.6g)\n",
			c.InitTemp, c.Moves, c.InitCost)
	}

	if len(t.temps) > 0 {
		sol := make(map[int]*telemetry.TraceRecord, len(t.solutions))
		for i := range t.solutions {
			sol[t.solutions[i].Step] = &t.solutions[i]
		}
		hasSol := len(t.solutions) > 0
		fmt.Fprintf(w, "\ncooling curve (%d temperature steps", len(t.temps))
		if len(t.temps) > maxRows {
			fmt.Fprintf(w, ", showing %d", maxRows)
		}
		fmt.Fprint(w, "):\n")
		fmt.Fprintf(w, "%6s %12s %12s %12s %8s", "step", "temp", "cost", "best", "accept")
		if hasSol {
			fmt.Fprintf(w, " %12s %12s %12s", "area", "wire", "congestion")
		}
		fmt.Fprintln(w)
		for _, i := range sample(len(t.temps), maxRows) {
			r := t.temps[i]
			fmt.Fprintf(w, "%6d %12.5g %12.6g %12.6g %7.1f%%",
				r.Step, r.Temp, r.Cost, r.Best, 100*r.AcceptRate)
			if hasSol {
				if s := sol[r.Step]; s != nil {
					fmt.Fprintf(w, " %12.5g %12.6g %12.6g", s.Area, s.Wirelength, s.Congestion)
				} else {
					fmt.Fprintf(w, " %12s %12s %12s", "-", "-", "-")
				}
			}
			fmt.Fprintln(w)
		}

		first, last := t.temps[0], t.temps[len(t.temps)-1]
		fmt.Fprintf(w, "acceptance decayed %.1f%% -> %.1f%%; best cost %.6g -> %.6g\n",
			100*first.AcceptRate, 100*last.AcceptRate, first.Best, last.Best)
	}

	if e := t.end; e != nil {
		fmt.Fprintf(w, "\nfinal      cost %.6g after %d temps, %d moves (+%d calibration), %d accepted (%d uphill)\n",
			e.FinalCost, e.Temps, e.Moves, e.CalibrationMoves, e.Accepted, e.UphillAccepted)
		if e.Outcome != "" {
			fmt.Fprintf(w, "outcome    %s\n", e.Outcome)
		}
		if e.BestStep >= 0 {
			fmt.Fprintf(w, "best       last improved at step %d of %d\n", e.BestStep, e.Temps)
		}
		if e.Seconds > 0 {
			fmt.Fprintf(w, "throughput %.0f moves/s over %.2fs\n",
				float64(e.Moves+e.CalibrationMoves)/e.Seconds, e.Seconds)
		}
		if m := e.Metrics; m != nil {
			if hits, misses := m["eval_simpson_memo_hits_total"], m["eval_simpson_memo_misses_total"]; hits+misses > 0 {
				fmt.Fprintf(w, "memo       %.1f%% Simpson-memo hit rate (%.0f hits, %.0f misses)\n",
					100*hits/(hits+misses), hits, misses)
			}
			if evals := m["fplan_evals_total"]; evals > 0 {
				fmt.Fprintf(w, "evals      %.0f full floorplan evaluations\n", evals)
			}
			if inc := m["eval_incremental_moves"]; inc > 0 {
				fmt.Fprintf(w, "delta      %.0f incremental moves (%.0f full fallbacks, %.0f rollbacks), %.1f dirty nets/move\n",
					inc, m["eval_full_fallbacks"], m["eval_rollbacks_total"], m["eval_dirty_nets"]/inc)
				if hits, misses := m["eval_axis_cache_hits_total"], m["eval_axis_cache_misses_total"]; hits+misses > 0 {
					fmt.Fprintf(w, "axes       %.1f%% cutting-line cache hit rate (%.0f kept, %.0f rebuilt)\n",
						100*hits/(hits+misses), hits, misses)
				}
				if reuse, memo, sweeps := m["eval_vec_reuse_total"], m["eval_vec_memo_hits_total"], m["eval_vec_sweeps_total"]; reuse+memo+sweeps > 0 {
					fmt.Fprintf(w, "vectors    %.0f reused in place, %.0f memo hits, %.0f fresh sweeps\n",
						reuse, memo, sweeps)
				}
				if cnt := m["eval_move_ns_count"]; cnt > 0 {
					fmt.Fprintf(w, "move cost  %.0f ns/move mean over %.0f scored moves\n",
						m["eval_move_ns_sum"]/cnt, cnt)
				}
			}
		}
	}

	if t.spans != nil && len(t.spans.Spans) > 0 {
		fmt.Fprintf(w, "\nspan tree (%d paths):\n", len(t.spans.Spans))
		fmt.Fprintf(w, "%-34s %10s %12s %12s %12s\n", "span", "count", "total", "mean", "max")
		printSpanTree(w, t.spans.Spans)
	}
	return nil
}

// renderPostmortem prints a flight-recorder dump for a human: what
// died, where the run stood, and what the last events in the ring
// were. maxRows bounds the event tail, matching -rows.
func renderPostmortem(pm *telemetry.Postmortem, w io.Writer, maxRows int) error {
	fmt.Fprintf(w, "postmortem %s\n", orUnknown(pm.Reason))
	if pm.UnixNs > 0 {
		fmt.Fprintf(w, "captured   %s\n", time.Unix(0, pm.UnixNs).UTC().Format(time.RFC3339))
	}
	if pm.Info.Circuit != "" || pm.Info.Model != "" {
		fmt.Fprintf(w, "run        %s (%s), seed %d\n",
			orUnknown(pm.Info.Circuit), orUnknown(pm.Info.Model), pm.Info.Seed)
	}
	if pm.Info.Version != "" {
		fmt.Fprintf(w, "build      %s\n", pm.Info.Version)
	}
	if pm.Info.ConfigDigest != "" {
		fmt.Fprintf(w, "config     %s\n", pm.Info.ConfigDigest)
	}

	if s := pm.Status; s != nil {
		state := "ended"
		if s.Running {
			state = "running"
		}
		fmt.Fprintf(w, "\nstatus     %s at step %d/%d, temp %.5g, cost %.6g (best %.6g)\n",
			state, s.Step, s.MaxSteps, s.Temp, s.Cost, s.Best)
		fmt.Fprintf(w, "progress   %d moves over %.2fs (%.0f moves/s), %.1f%% accepted\n",
			s.Moves, s.ElapsedSeconds, s.MovesPerSec, 100*s.AcceptRate)
	}

	if m := pm.Metrics; m != nil {
		var keys []string
		for k := range m {
			// The robustness counters and the evaluator's failure
			// counters are what a postmortem reader triages by; the full
			// snapshot stays in the JSON.
			if strings.HasPrefix(k, "store_") || strings.HasPrefix(k, "jobs_") ||
				strings.HasPrefix(k, "watchdog_") || strings.Contains(k, "panic") ||
				strings.Contains(k, "fallback") || strings.Contains(k, "rollback") {
				if m[k] != 0 {
					keys = append(keys, k)
				}
			}
		}
		if len(keys) > 0 {
			sort.Strings(keys)
			fmt.Fprintf(w, "\nfault counters:\n")
			for _, k := range keys {
				fmt.Fprintf(w, "  %-32s %g\n", k, m[k])
			}
		}
	}

	if len(pm.Spans) > 0 {
		fmt.Fprintf(w, "\nspan tree (%d paths):\n", len(pm.Spans))
		fmt.Fprintf(w, "%-34s %10s %12s %12s %12s\n", "span", "count", "total", "mean", "max")
		printSpanTree(w, pm.Spans)
	}

	fmt.Fprintf(w, "\nevent ring: %d retained of %d total", len(pm.Events), pm.TotalEvents)
	events := pm.Events
	if maxRows > 0 && len(events) > maxRows {
		fmt.Fprintf(w, " (showing last %d)", maxRows)
		events = events[len(events)-maxRows:]
	}
	fmt.Fprintln(w)
	if len(events) > 0 {
		fmt.Fprintf(w, "%10s %-12s %6s %12s %12s %s\n", "seq", "kind", "step", "cost", "best", "note")
		for _, e := range events {
			note := e.Note
			if e.Kind == "move" && note == "" {
				if e.Accepted {
					note = "accepted"
				} else {
					note = "rejected"
				}
			}
			fmt.Fprintf(w, "%10d %-12s %6d %12.6g %12.6g %s\n",
				e.Seq, e.Kind, e.Step, e.Cost, e.Best, note)
		}
	}
	return nil
}

// printSpanTree renders span aggregates as an indented forest. The
// aggregates arrive sorted by path, so parents (shorter paths) always
// precede their children and plain indentation reconstructs the tree.
func printSpanTree(w io.Writer, aggs []telemetry.SpanAggregate) {
	for _, a := range aggs {
		depth := strings.Count(a.Path, "/")
		name := a.Path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		label := strings.Repeat("  ", depth) + name
		mean := float64(a.TotalNs) / float64(a.Count)
		fmt.Fprintf(w, "%-34s %10d %12s %12s %12s\n",
			label, a.Count, fmtNs(float64(a.TotalNs)), fmtNs(mean), fmtNs(float64(a.MaxNs)))
	}
}

// fmtNs renders a nanosecond quantity at a human scale.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// diff prints a side-by-side comparison of two traces: run identity,
// convergence, engine counters and span profiles. It is tolerant of
// partially-populated traces (missing end events, no spans).
func diff(a, b *trace, nameA, nameB string, w io.Writer) error {
	fmt.Fprintf(w, "%-26s %16s %16s %12s\n", "", "A", "B", "delta")
	fmt.Fprintf(w, "%-26s %16s %16s\n", "trace", trimName(nameA), trimName(nameB))
	if a.start != nil && b.start != nil {
		fmt.Fprintf(w, "%-26s %16s %16s\n", "circuit", orUnknown(a.start.Circuit), orUnknown(b.start.Circuit))
		fmt.Fprintf(w, "%-26s %16d %16d\n", "seed", a.start.Seed, b.start.Seed)
		fmt.Fprintf(w, "%-26s %16s %16s\n", "model", orUnknown(a.start.Model), orUnknown(b.start.Model))
	}
	if a.calib != nil && b.calib != nil {
		diffRow(w, "initial temperature", a.calib.InitTemp, b.calib.InitTemp)
		diffRow(w, "initial cost", a.calib.InitCost, b.calib.InitCost)
	}
	ea, eb := a.end, b.end
	if ea != nil && eb != nil {
		fmt.Fprintf(w, "%-26s %16s %16s\n", "outcome", orUnknown(ea.Outcome), orUnknown(eb.Outcome))
		diffRow(w, "final cost", ea.FinalCost, eb.FinalCost)
		diffRow(w, "temperature steps", float64(ea.Temps), float64(eb.Temps))
		diffRow(w, "moves", float64(ea.Moves), float64(eb.Moves))
		diffRow(w, "accepted", float64(ea.Accepted), float64(eb.Accepted))
		if ea.Seconds > 0 && eb.Seconds > 0 {
			diffRow(w, "seconds", ea.Seconds, eb.Seconds)
			diffRow(w, "moves/s",
				float64(ea.Moves+ea.CalibrationMoves)/ea.Seconds,
				float64(eb.Moves+eb.CalibrationMoves)/eb.Seconds)
		}
		if ea.Metrics != nil && eb.Metrics != nil {
			for _, k := range []string{
				"eval_simpson_memo_hits_total", "eval_incremental_moves",
				"eval_full_fallbacks", "eval_rollbacks_total",
			} {
				va, oka := ea.Metrics[k]
				vb, okb := eb.Metrics[k]
				if oka || okb {
					diffRow(w, k, va, vb)
				}
			}
		}
	}
	if a.spans != nil || b.spans != nil {
		fmt.Fprintf(w, "\nspan totals:\n")
		sa, sb := spanTotals(a), spanTotals(b)
		for _, p := range unionPaths(sa, sb) {
			diffRow(w, p, sa[p], sb[p])
		}
	}
	return nil
}

func trimName(p string) string {
	if len(p) > 16 {
		return "…" + p[len(p)-15:]
	}
	return p
}

func diffRow(w io.Writer, label string, a, b float64) {
	d := b - a
	if a != 0 {
		fmt.Fprintf(w, "%-26s %16.6g %16.6g %+11.1f%%\n", label, a, b, 100*d/a)
	} else {
		fmt.Fprintf(w, "%-26s %16.6g %16.6g %12s\n", label, a, b, "-")
	}
}

func spanTotals(t *trace) map[string]float64 {
	out := map[string]float64{}
	if t.spans == nil {
		return out
	}
	for _, s := range t.spans.Spans {
		out[s.Path] = float64(s.TotalNs)
	}
	return out
}

func unionPaths(a, b map[string]float64) []string {
	seen := map[string]bool{}
	var out []string
	for p := range a {
		seen[p] = true
	}
	for p := range b {
		seen[p] = true
	}
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// sample picks up to k indices out of [0, n), always keeping the first
// and the last, the rest spaced evenly.
func sample(n, k int) []int {
	if n <= k {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = i * (n - 1) / (k - 1)
	}
	return idx
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func fatal(err error) {
	cli.Fatal("tracestat", err)
}
