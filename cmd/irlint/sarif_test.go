package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"irgrid/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the SARIF golden file")

// TestSARIFGolden pins the SARIF encoding byte-for-byte: rule order
// (the analyzer registry), result fields, and root-relative
// forward-slash URIs. Regenerate with `go test -run TestSARIFGolden
// -update ./cmd/irlint`.
func TestSARIFGolden(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "repo")
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "server", "server.go"), Line: 42, Column: 7},
			Analyzer: "lockscope",
			Message:  "calls os.WriteFile (filesystem I/O) while holding irgrid/internal/server.Server.mu: release the mutex before blocking",
		},
		{
			// Outside root: the URI stays absolute.
			Pos:      token.Position{Filename: string(filepath.Separator) + filepath.Join("elsewhere", "x.go"), Line: 3, Column: 1},
			Analyzer: "statemachine",
			Message:  `undeclared state transition running -> queued on irgrid/internal/server.job.state`,
		},
	}

	got, err := json.MarshalIndent(buildSARIF(root, diags), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "sarif_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SARIF output differs from %s (regenerate with -update)\ngot:\n%s", golden, got)
	}
}

// TestSARIFShape checks the structural invariants the golden bytes
// rely on: one rule per registered analyzer in registry order, and
// ruleIndex pointing back into that array.
func TestSARIFShape(t *testing.T) {
	log := buildSARIF("/r", []analysis.Diagnostic{
		{Pos: token.Position{Filename: "/r/a.go", Line: 1, Column: 1}, Analyzer: "atomicmix", Message: "m"},
	})
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	all := analysis.All()
	if len(run.Tool.Driver.Rules) != len(all) {
		t.Fatalf("rules = %d, want %d (one per analyzer)", len(run.Tool.Driver.Rules), len(all))
	}
	for i, a := range all {
		if run.Tool.Driver.Rules[i].ID != a.Name {
			t.Errorf("rules[%d] = %q, want %q", i, run.Tool.Driver.Rules[i].ID, a.Name)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "atomicmix" || run.Tool.Driver.Rules[res.RuleIndex].ID != "atomicmix" {
		t.Errorf("result rule binding broken: %+v", res)
	}
	if uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "a.go" {
		t.Errorf("URI = %q, want root-relative %q", uri, "a.go")
	}
}
