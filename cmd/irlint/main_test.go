package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles irlint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "irlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building irlint: %v\n%s", err, out)
	}
	return bin
}

// TestVetHandshake pins the unitchecker protocol surface the go
// command probes before trusting a vet tool: the -V=full line must
// carry a buildID= field, and -flags must emit a JSON array.
func TestVetHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	line := strings.TrimSpace(string(out))
	f := strings.Fields(line)
	if len(f) < 3 || f[1] != "version" || !strings.Contains(line, "buildID=") {
		t.Errorf("-V=full output %q: want \"irlint version ... buildID=<hash>\"", line)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Errorf("-flags output %q, want []", got)
	}
}

// TestGoVetIntegration drives the real go command with irlint as its
// vet tool over the engine package — the same invocation CI enforces
// repo-wide.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go vet run")
	}
	bin := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// TestStandaloneCleanTree runs the multichecker over the lint-gated
// deterministic packages; the committed tree must be clean.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping package load")
	}
	bin := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./internal/core/", "./internal/fplan/", "./internal/anneal/")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("irlint reported findings on the committed tree: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(root, "LINT_report.json")); err != nil {
		t.Errorf("committed LINT_report.json missing: %v", err)
	}
}
