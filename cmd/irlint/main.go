// Command irlint runs the project's static analyzers (see
// internal/analysis) in two modes:
//
// Standalone multichecker:
//
//	irlint [-list] [-report out.json] ./...
//
// loads and type-checks the named packages via the go tool and prints
// diagnostics, exiting 2 when any are found.
//
// Vet tool:
//
//	go vet -vettool=$(go env GOPATH)/bin/irlint ./...
//
// speaks the go command's unitchecker protocol (-V=full handshake,
// -flags listing, per-package *.cfg configs), so irlint composes with
// vet's build cache and package graph.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"irgrid/internal/analysis"
	"irgrid/internal/analysis/load"
	"irgrid/internal/analysis/unit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes vet tools before use: `-V=full` asks for a
	// version line carrying a buildID= self-hash (the vet cache key),
	// `-flags` for the supported flag set.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		name := filepath.Base(os.Args[0])
		if args[0] == "-V=full" {
			fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, selfHash())
		} else {
			fmt.Printf("%s version devel\n", name)
		}
		return 0
	}

	fs := flag.NewFlagSet("irlint", flag.ContinueOnError)
	var (
		listFlag   = fs.Bool("list", false, "list the analyzers and exit")
		jsonFlag   = fs.Bool("json", false, "emit diagnostics as JSON (vet protocol)")
		reportFlag = fs.String("report", "", "write a LINT_report.json-style summary to this file (standalone mode)")
		sarifFlag  = fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file (standalone mode)")
		_          = fs.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility, unused)")
		flagsFlag  = fs.Bool("flags", false, "print the flag set as JSON (vet protocol)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: irlint [flags] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *flagsFlag {
		// No analyzer-specific flags are exposed to the vet driver.
		fmt.Println("[]")
		return 0
	}
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unit.Run(rest[0], analysis.All(), *jsonFlag)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 1
	}
	return standalone(rest, *reportFlag, *sarifFlag)
}

// selfHash hashes the tool's own binary; a rebuilt irlint then
// invalidates go vet's cached verdicts.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func standalone(patterns []string, reportPath, sarifPath string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
		return 1
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
		return 1
	}

	var diags []analysis.Diagnostic
	counts := map[string]int{}
	allowCounts := map[string]int{}
	hotFuncs := 0
	// Facts must exist before their consumers: analyze the roots in
	// dependency order, accumulating each package's facts so downstream
	// roots see them (the standalone analogue of vet's vetx exchange).
	factsByPath := map[string]*analysis.PackageFacts{}
	var factsTotal analysis.PackageFacts
	for _, pkg := range topoOrder(pkgs) {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "irlint: %s: %v\n", pkg.ImportPath, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			return 1
		}
		ix := analysis.BuildIndex(pkg.Fset, pkg.Files)
		hotFuncs += ix.HotCount()
		for name, n := range ix.AllowCounts() {
			allowCounts[name] += n
		}
		facts := analysis.ComputeFacts(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, factsByPath)
		store := analysis.NewFactStore(facts, factsByPath)
		for _, a := range analysis.All() {
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, ix, store,
				func(d analysis.Diagnostic) { diags = append(diags, d); counts[a.Name]++ })
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "irlint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 1
			}
		}
		factsByPath[pkg.ImportPath] = facts
		factsTotal.LockEdges = append(factsTotal.LockEdges, facts.LockEdges...)
		factsTotal.AtomicFields = append(factsTotal.AtomicFields, facts.AtomicFields...)
		if len(facts.Blocks) > 0 {
			if factsTotal.Blocks == nil {
				factsTotal.Blocks = map[string]string{}
			}
			for k, v := range facts.Blocks {
				factsTotal.Blocks[k] = v
			}
		}
	}
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		rel := d.Pos.String()
		if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel = fmt.Sprintf("%s:%d:%d", r, d.Pos.Line, d.Pos.Column)
		}
		fmt.Printf("%s: [%s] %s\n", rel, d.Analyzer, d.Message)
	}

	if reportPath != "" {
		if err := writeReport(reportPath, pkgs, counts, allowCounts, hotFuncs, &factsTotal); err != nil {
			fmt.Fprintf(os.Stderr, "irlint: writing report: %v\n", err)
			return 1
		}
	}
	if sarifPath != "" {
		if err := writeSARIF(sarifPath, cwd, diags); err != nil {
			fmt.Fprintf(os.Stderr, "irlint: writing sarif: %v\n", err)
			return 1
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// topoOrder orders the root packages dependencies-first (Kahn's
// algorithm over the import edges between roots; ties broken by the
// incoming lexicographic order so the result is deterministic).
func topoOrder(pkgs []*load.Package) []*load.Package {
	byPath := map[string]*load.Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	indegree := map[string]int{}
	dependents := map[string][]string{}
	for _, p := range pkgs {
		indegree[p.ImportPath] += 0
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			if _, isRoot := byPath[imp.Path()]; isRoot {
				indegree[p.ImportPath]++
				dependents[imp.Path()] = append(dependents[imp.Path()], p.ImportPath)
			}
		}
	}
	var ready []string
	for _, p := range pkgs {
		if indegree[p.ImportPath] == 0 {
			ready = append(ready, p.ImportPath)
		}
	}
	var out []*load.Package
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		for _, dep := range dependents[path] {
			indegree[dep]--
			if indegree[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	// Import cycles are impossible in Go, but be defensive: append
	// anything Kahn could not schedule.
	if len(out) < len(pkgs) {
		scheduled := map[string]bool{}
		for _, p := range out {
			scheduled[p.ImportPath] = true
		}
		for _, p := range pkgs {
			if !scheduled[p.ImportPath] {
				out = append(out, p)
			}
		}
	}
	return out
}

// Report is the LINT_report.json schema: per-analyzer finding and
// suppression counts plus the sizes of the two allowlists, emitted as
// a CI artifact so reviewers see lint posture at a glance.
type Report struct {
	Tool      string                    `json:"tool"`
	Packages  int                       `json:"packages"`
	Analyzers map[string]AnalyzerReport `json:"analyzers"`
	// HotFunctions is the number of //irlint:hot-marked functions in
	// the analyzed packages.
	HotFunctions int `json:"hot_functions"`
	// EscapeAllowlistSize is the number of entries in
	// testdata/escape_allow.json (cmd/escapegate's budget); -1 when the
	// file is not present relative to the working directory.
	EscapeAllowlistSize int `json:"escape_allowlist_size"`
	// Facts summarizes the cross-package facts computed during the run.
	Facts FactsReport `json:"facts"`
}

// AnalyzerReport is one analyzer's row.
type AnalyzerReport struct {
	Findings int `json:"findings"`
	Allows   int `json:"allows"`
}

// FactsReport counts the facts the run derived: functions carrying a
// may-block fact, acquired-while-holding lock edges, and atomically-
// accessed struct fields.
type FactsReport struct {
	BlockingFunctions int `json:"blocking_functions"`
	LockEdges         int `json:"lock_edges"`
	AtomicFields      int `json:"atomic_fields"`
}

func writeReport(path string, pkgs []*load.Package, counts, allowCounts map[string]int, hotFuncs int, facts *analysis.PackageFacts) error {
	rep := Report{
		Tool:                "irlint",
		Packages:            len(pkgs),
		Analyzers:           map[string]AnalyzerReport{},
		HotFunctions:        hotFuncs,
		EscapeAllowlistSize: escapeAllowlistSize("testdata/escape_allow.json"),
		Facts: FactsReport{
			BlockingFunctions: len(facts.Blocks),
			LockEdges:         len(facts.LockEdges),
			AtomicFields:      len(facts.AtomicFields),
		},
	}
	for _, a := range analysis.All() {
		rep.Analyzers[a.Name] = AnalyzerReport{Findings: counts[a.Name], Allows: allowCounts[a.Name]}
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// escapeAllowlistSize counts the allow entries of the escapegate
// allowlist, or -1 when it cannot be read.
func escapeAllowlistSize(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1
	}
	var doc struct {
		Allow []json.RawMessage `json:"allow"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return -1
	}
	return len(doc.Allow)
}
