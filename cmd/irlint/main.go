// Command irlint runs the project's static analyzers (see
// internal/analysis) in two modes:
//
// Standalone multichecker:
//
//	irlint [-list] [-report out.json] ./...
//
// loads and type-checks the named packages via the go tool and prints
// diagnostics, exiting 2 when any are found.
//
// Vet tool:
//
//	go vet -vettool=$(go env GOPATH)/bin/irlint ./...
//
// speaks the go command's unitchecker protocol (-V=full handshake,
// -flags listing, per-package *.cfg configs), so irlint composes with
// vet's build cache and package graph.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"irgrid/internal/analysis"
	"irgrid/internal/analysis/load"
	"irgrid/internal/analysis/unit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes vet tools before use: `-V=full` asks for a
	// version line carrying a buildID= self-hash (the vet cache key),
	// `-flags` for the supported flag set.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		name := filepath.Base(os.Args[0])
		if args[0] == "-V=full" {
			fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, selfHash())
		} else {
			fmt.Printf("%s version devel\n", name)
		}
		return 0
	}

	fs := flag.NewFlagSet("irlint", flag.ContinueOnError)
	var (
		listFlag   = fs.Bool("list", false, "list the analyzers and exit")
		jsonFlag   = fs.Bool("json", false, "emit diagnostics as JSON (vet protocol)")
		reportFlag = fs.String("report", "", "write a LINT_report.json-style summary to this file (standalone mode)")
		_          = fs.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility, unused)")
		flagsFlag  = fs.Bool("flags", false, "print the flag set as JSON (vet protocol)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: irlint [flags] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *flagsFlag {
		// No analyzer-specific flags are exposed to the vet driver.
		fmt.Println("[]")
		return 0
	}
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unit.Run(rest[0], analysis.All(), *jsonFlag)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 1
	}
	return standalone(rest, *reportFlag)
}

// selfHash hashes the tool's own binary; a rebuilt irlint then
// invalidates go vet's cached verdicts.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func standalone(patterns []string, reportPath string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
		return 1
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
		return 1
	}

	var diags []analysis.Diagnostic
	counts := map[string]int{}
	allowCounts := map[string]int{}
	hotFuncs := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "irlint: %s: %v\n", pkg.ImportPath, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			return 1
		}
		ix := analysis.BuildIndex(pkg.Fset, pkg.Files)
		hotFuncs += ix.HotCount()
		for name, n := range ix.AllowCounts() {
			allowCounts[name] += n
		}
		for _, a := range analysis.All() {
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, ix,
				func(d analysis.Diagnostic) { diags = append(diags, d); counts[a.Name]++ })
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "irlint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 1
			}
		}
	}
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		rel := d.Pos.String()
		if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel = fmt.Sprintf("%s:%d:%d", r, d.Pos.Line, d.Pos.Column)
		}
		fmt.Printf("%s: [%s] %s\n", rel, d.Analyzer, d.Message)
	}

	if reportPath != "" {
		if err := writeReport(reportPath, pkgs, counts, allowCounts, hotFuncs); err != nil {
			fmt.Fprintf(os.Stderr, "irlint: writing report: %v\n", err)
			return 1
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// Report is the LINT_report.json schema: per-analyzer finding and
// suppression counts plus the sizes of the two allowlists, emitted as
// a CI artifact so reviewers see lint posture at a glance.
type Report struct {
	Tool      string                    `json:"tool"`
	Packages  int                       `json:"packages"`
	Analyzers map[string]AnalyzerReport `json:"analyzers"`
	// HotFunctions is the number of //irlint:hot-marked functions in
	// the analyzed packages.
	HotFunctions int `json:"hot_functions"`
	// EscapeAllowlistSize is the number of entries in
	// testdata/escape_allow.json (cmd/escapegate's budget); -1 when the
	// file is not present relative to the working directory.
	EscapeAllowlistSize int `json:"escape_allowlist_size"`
}

// AnalyzerReport is one analyzer's row.
type AnalyzerReport struct {
	Findings int `json:"findings"`
	Allows   int `json:"allows"`
}

func writeReport(path string, pkgs []*load.Package, counts, allowCounts map[string]int, hotFuncs int) error {
	rep := Report{
		Tool:                "irlint",
		Packages:            len(pkgs),
		Analyzers:           map[string]AnalyzerReport{},
		HotFunctions:        hotFuncs,
		EscapeAllowlistSize: escapeAllowlistSize("testdata/escape_allow.json"),
	}
	for _, a := range analysis.All() {
		rep.Analyzers[a.Name] = AnalyzerReport{Findings: counts[a.Name], Allows: allowCounts[a.Name]}
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// escapeAllowlistSize counts the allow entries of the escapegate
// allowlist, or -1 when it cannot be read.
func escapeAllowlistSize(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1
	}
	var doc struct {
		Allow []json.RawMessage `json:"allow"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return -1
	}
	return len(doc.Allow)
}
