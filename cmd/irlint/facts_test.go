package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetFactsRoundTrip proves cross-package blocking facts survive
// the vetx exchange under the real go command. A scratch module (named
// irgrid, so the first-party fact gate and the lockscope package gate
// both open) holds a store package whose Save calls os.WriteFile, and
// a server package that locks a mutex across store.Save. Nothing in
// the curated table names store.Save: the only way lockscope can see
// it block is by reading the Blocks fact the store package's VetxOnly
// run serialized into its vetx file.
func TestVetFactsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go vet run")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module irgrid\n\ngo 1.22\n")
	write("internal/store/store.go", `package store

import "os"

// Save blocks on filesystem I/O; the fact must travel to importers.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`)
	write("internal/server/server.go", `package server

import (
	"sync"

	"irgrid/internal/store"
)

type Registry struct {
	mu sync.Mutex
}

func (r *Registry) Flush(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return store.Save(path, nil)
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed; want a lockscope finding proving the dep's Blocks fact crossed the vetx boundary\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "calls irgrid/internal/store.Save") ||
		!strings.Contains(text, "while holding irgrid/internal/server.Registry.mu") {
		t.Fatalf("go vet failed without the expected cross-package diagnostic:\n%s", text)
	}
}

// TestVetFactsStdlibGate pins the other half of the contract: vetx
// files for packages outside the module decode to empty facts, so the
// curated table stays the only stdlib model. A mutex held across
// fmt.Sprintf (in-memory formatting, never curated) must stay silent
// even though the go command hands irlint a VetxOnly run for fmt.
func TestVetFactsStdlibGate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go vet run")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "server"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module irgrid\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	src := `package server

import (
	"fmt"
	"sync"
)

type IDs struct {
	mu   sync.Mutex
	next int
}

func (g *IDs) Next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.next++
	return fmt.Sprintf("j%08d", g.next)
}
`
	if err := os.WriteFile(filepath.Join(dir, "internal", "server", "server.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet flagged in-memory formatting under a mutex (stdlib facts leaked):\n%s", out)
	}
}
