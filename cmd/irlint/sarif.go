package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"irgrid/internal/analysis"
)

// SARIF 2.1.0 output, the schema GitHub code scanning ingests: one run
// of the irlint driver, one reportingDescriptor (rule) per analyzer,
// one result per diagnostic. Only the fields code scanning consumes
// are emitted, and everything is ordered deterministically so the file
// is byte-stable for golden tests and CI diffs.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// buildSARIF assembles the log for a set of diagnostics; paths inside
// root are emitted root-relative with forward slashes (the URI form
// code scanning maps onto the repository tree).
func buildSARIF(root string, diags []analysis.Diagnostic) *sarifLog {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	for i, a := range analysis.All() {
		ruleIndex[a.Name] = i
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := filepath.ToSlash(d.Pos.Filename)
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			uri = filepath.ToSlash(rel)
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	return &sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "irlint", Rules: rules}},
			Results: results,
		}},
	}
}

func writeSARIF(path, root string, diags []analysis.Diagnostic) error {
	data, err := json.MarshalIndent(buildSARIF(root, diags), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
