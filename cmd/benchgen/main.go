// Command benchgen emits the synthetic MCNC-statistics benchmark
// circuits as YAL-subset files, either one named circuit to stdout or
// all five into a directory. The generation is deterministic: the same
// circuit name always produces the same file.
//
// Examples:
//
//	benchgen -circuit ami33 > ami33.yal
//	benchgen -dir testdata/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"irgrid/internal/bench"
	"irgrid/internal/cli"
	"irgrid/internal/netlist"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "benchmark to emit to stdout ("+strings.Join(bench.Names(), ", ")+")")
		dir     = flag.String("dir", "", "emit all benchmarks as <name>.yal into this directory")
		stats   = flag.Bool("stats", false, "print the statistics table instead of YAL")
	)
	flag.Parse()

	if *stats {
		fmt.Printf("%-8s %8s %6s %6s %10s\n", "circuit", "modules", "nets", "pins", "area(mm2)")
		for _, s := range bench.Specs {
			c := bench.Generate(s)
			fmt.Printf("%-8s %8d %6d %6d %10.3f\n",
				s.Name, len(c.Modules), len(c.Nets), c.PinCount(), c.TotalModuleArea()/1e6)
		}
		return
	}

	switch {
	case *circuit != "" && *dir != "":
		fatal(fmt.Errorf("use either -circuit or -dir, not both"))
	case *circuit != "":
		c, err := bench.Load(*circuit)
		if err != nil {
			fatal(err)
		}
		if err := netlist.WriteYAL(os.Stdout, c); err != nil {
			fatal(err)
		}
	case *dir != "":
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		for _, name := range bench.Names() {
			c, err := bench.Load(name)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*dir, name+".yal")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := netlist.WriteYAL(f, c); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	default:
		fatal(fmt.Errorf("one of -circuit, -dir or -stats is required"))
	}
}

func fatal(err error) {
	cli.Fatal("benchgen", err)
}
