package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"irgrid/telemetry"
)

// TestSigquitDumpsPostmortem is the end-to-end flight-recorder
// contract: SIGQUIT a long armed run, expect a loadable postmortem
// file without the run dying; a later SIGTERM still interrupts it and
// writes a second (canceled) postmortem over the first.
func TestSigquitDumpsPostmortem(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "floorplan.bin")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "run.ckpt")
	pm := filepath.Join(dir, "run.postmortem.json")
	var stderr, stdout bytes.Buffer
	cmd := exec.Command(bin,
		"-circuit", "ami49", "-gamma", "0.4", "-model", "ir-grid",
		"-moves", "60", "-temps", "1000000",
		"-checkpoint", ckpt, "-checkpoint-every", "1",
		"-postmortem", pm)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the first snapshot so the run is past setup (and the
	// recorder is armed), then ask for a black-box dump.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint after 60s\nstderr: %s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(pm); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no postmortem after SIGQUIT\nstderr: %s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	doc, err := telemetry.LoadPostmortem(pm)
	if err != nil {
		// The dump may be mid-rename on a slow machine; retry once.
		time.Sleep(500 * time.Millisecond)
		doc, err = telemetry.LoadPostmortem(pm)
	}
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("loading postmortem: %v", err)
	}
	if doc.Reason != "sigquit" {
		t.Errorf("postmortem reason %q, want sigquit", doc.Reason)
	}
	if doc.Info.Circuit == "" || doc.Info.Seed == 0 {
		t.Errorf("postmortem info incomplete: %+v", doc.Info)
	}
	if doc.TotalEvents == 0 || len(doc.Events) == 0 {
		t.Errorf("postmortem carries no recorder events: total %d", doc.TotalEvents)
	}

	// The run survived the dump: interrupt it for real now.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	werr := cmd.Wait()
	ee, ok := werr.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("exit = %v, want code 130\nstderr: %s", werr, stderr.String())
	}
	if !strings.Contains(stderr.String(), "postmortem written to") {
		t.Errorf("stderr missing the postmortem notice:\n%s", stderr.String())
	}
	// The canceled run overwrote the sigquit dump with a final one.
	doc, err = telemetry.LoadPostmortem(pm)
	if err != nil {
		t.Fatalf("final postmortem: %v", err)
	}
	if doc.Reason != telemetry.OutcomeCanceled {
		t.Errorf("final postmortem reason %q, want canceled", doc.Reason)
	}
}
