package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"irgrid/floorplan"
)

func TestLoadCircuitValidation(t *testing.T) {
	if _, err := loadCircuit("", ""); err == nil {
		t.Error("neither source should fail")
	}
	if _, err := loadCircuit("ami33", "x.yal"); err == nil {
		t.Error("both sources should fail")
	}
	if _, err := loadCircuit("nope", ""); err == nil {
		t.Error("unknown benchmark should fail")
	}
	c, err := loadCircuit("apte", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Modules) != 9 {
		t.Errorf("apte has %d modules", len(c.Modules))
	}
}

func TestLoadCircuitFromYAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.yal")
	src := `CIRCUIT tiny;
MODULE a;
DIMENSIONS 100 100;
IOLIST;
p 0.5 0.5;
ENDIOLIST;
ENDMODULE;
MODULE b;
DIMENSIONS 100 100;
IOLIST;
q 0.5 0.5;
ENDIOLIST;
ENDMODULE;
NETWORK;
n a.p b.q;
ENDNETWORK;
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit("", path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "tiny" || len(c.Modules) != 2 {
		t.Errorf("parsed %+v", c)
	}
	if _, err := loadCircuit("", filepath.Join(dir, "missing.yal")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.yal")
	if err := os.WriteFile(bad, []byte("MODULE a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCircuit("", bad); !errors.Is(err, floorplan.ErrInvalidInput) {
		t.Errorf("malformed YAL: err = %v, want ErrInvalidInput", err)
	}
}

func TestJSONResultSchema(t *testing.T) {
	out := jsonResult{
		Circuit: "c", ChipW: 10, ChipH: 20, Area: 200,
		Modules: []floorplan.PlacedModule{{Name: "m", X2: 10, Y2: 20}},
		Nets:    [][4]float64{{0, 0, 10, 20}},
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"circuit", "chip_w", "chip_h", "area", "wirelength", "congestion_cost", "modules", "nets"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("missing field %q", want)
		}
	}
	// The schema is what cmd/congest consumes: verify cross-parse.
	var doc struct {
		ChipW float64      `json:"chip_w"`
		Nets  [][4]float64 `json:"nets"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ChipW != 10 || len(doc.Nets) != 1 {
		t.Errorf("cross parse: %+v", doc)
	}
}
