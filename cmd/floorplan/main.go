// Command floorplan runs the routability-driven floorplanner on a
// built-in benchmark or a YAL-subset circuit file and reports the
// resulting area, wirelength and congestion. With -json it emits the
// full floorplan (placement + decomposed nets) for cmd/congest.
//
// Examples:
//
//	floorplan -circuit ami33 -gamma 0.4 -model ir-grid -pitch 30
//	floorplan -yal mydesign.yal -alpha 0.5 -beta 0.5 -seed 7
//	floorplan -circuit apte -json > apte.floorplan.json
//	floorplan -circuit ami49 -timeout 30s -checkpoint run.ckpt
//	floorplan -circuit ami49 -resume run.ckpt
//	floorplan -circuit ami49 -postmortem run.postmortem.json -metrics-addr 127.0.0.1:9090
//
// Long runs are interruptible: on SIGINT/SIGTERM (or when -timeout
// expires) the annealer stops at the next move, reports the best
// floorplan found so far, writes a final -checkpoint snapshot when one
// is configured, and exits 130 (interrupt) or 124 (timeout). A later
// invocation with -resume continues bit-identically from the snapshot.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"irgrid/floorplan"
	"irgrid/internal/ascii"
	"irgrid/internal/buildinfo"
	"irgrid/internal/cli"
	"irgrid/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		circuit   = flag.String("circuit", "", "built-in benchmark name ("+strings.Join(floorplan.BenchmarkNames(), ", ")+")")
		yal       = flag.String("yal", "", "path to a YAL-subset circuit file (alternative to -circuit)")
		alpha     = flag.Float64("alpha", 0.4, "area weight")
		beta      = flag.Float64("beta", 0.2, "wirelength weight")
		gamma     = flag.Float64("gamma", 0.4, "congestion weight (0 disables the congestion term)")
		model     = flag.String("model", floorplan.ModelIRGrid, "congestion model: ir-grid, ir-grid-exact, fixed-grid")
		pitch     = flag.Float64("pitch", 30, "grid pitch in um")
		seed      = flag.Int64("seed", 1, "random seed")
		moves     = flag.Int("moves", 100, "SA moves per temperature")
		temps     = flag.Int("temps", 100, "maximum SA temperature steps")
		workers   = flag.Int("workers", 0, "congestion evaluation workers (0 = all CPUs, 1 = sequential; results are identical)")
		judge     = flag.Bool("judge", false, "also score the result with the 10x10 um judging model")
		asJSON    = flag.Bool("json", false, "emit the floorplan as JSON on stdout")
		draw      = flag.Bool("draw", false, "render the placement as ASCII art")
		trace     = flag.String("trace", "", "write a JSONL run trace to this file (summarize with tracestat)")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof/ on this host:port during the run")
		timeout   = flag.Duration("timeout", 0, "stop the run after this duration, reporting the best floorplan so far (exit 124)")
		ckptPath  = flag.String("checkpoint", "", "write a resumable snapshot to this file periodically and on interrupt")
		ckptEvery = flag.Int("checkpoint-every", 0, "temperature steps between snapshots (default 10 when -checkpoint is set)")
		resume    = flag.String("resume", "", "continue from a snapshot written by -checkpoint")
		postm     = flag.String("postmortem", "", "arm a flight recorder that dumps a postmortem JSON file here on panic, interrupt, deadline or SIGQUIT")
		stall     = flag.Duration("stall-timeout", 0, "cancel the run when it makes no annealing progress for this long, reporting the best floorplan so far (0 disables)")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version())
		return 0
	}

	c, err := loadCircuit(*circuit, *yal)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floorplan:", err)
		// Flag mistakes (neither/both sources, unknown benchmark) are
		// usage errors; a circuit file that fails to parse is invalid
		// input, matching the library's typed sentinel.
		if errors.Is(err, floorplan.ErrInvalidInput) {
			return cli.ExitInvalidInput
		}
		return cli.ExitUsage
	}
	opts := floorplan.Options{
		Alpha: *alpha, Beta: *beta, Gamma: *gamma,
		Seed:         *seed,
		MovesPerTemp: *moves, MaxTemps: *temps,
		Workers:         *workers,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
	}
	if *gamma > 0 {
		opts.Congestion = floorplan.Congestion{Model: *model, Pitch: *pitch}
	}
	opts.PinPitch = *pitch

	// Telemetry is opt-in: a registry exists only when something
	// consumes it (an HTTP endpoint or a trace's run_end snapshot).
	if *trace != "" || *metrics != "" {
		opts.Obs = telemetry.NewRegistry()
		opts.Spans = telemetry.NewSpans()
	}
	if *metrics != "" || *stall > 0 {
		// The live status feeds /debug/run and is the stuck-run
		// watchdog's progress signal.
		opts.Status = telemetry.NewStatus()
	}
	if *postm != "" {
		opts.Recorder = telemetry.NewRecorder(0)
		opts.PostmortemPath = *postm
	}
	if *metrics != "" {
		srv, addr, err := telemetry.ServeHub(*metrics, telemetry.Hub{
			Reg:      opts.Obs,
			Spans:    opts.Spans,
			Status:   opts.Status,
			Recorder: opts.Recorder,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "floorplan:", err)
			return cli.ExitFailure
		}
		defer func() {
			// Graceful drain: let in-flight scrapes finish before exit.
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		fmt.Fprintf(os.Stderr, "floorplan: serving metrics at http://%s/metrics (live status at /debug/run)\n", addr)
	}
	if opts.Recorder != nil {
		// SIGQUIT dumps the flight recorder without killing the run —
		// the black-box equivalent of the Go runtime's stack dump.
		qc := make(chan os.Signal, 1)
		signal.Notify(qc, syscall.SIGQUIT)
		defer signal.Stop(qc)
		go func() {
			for range qc {
				if path, err := opts.Recorder.Dump("sigquit"); err != nil {
					fmt.Fprintln(os.Stderr, "floorplan: postmortem:", err)
				} else if path != "" {
					fmt.Fprintf(os.Stderr, "floorplan: postmortem written to %s\n", path)
				}
			}
		}()
	}
	if *trace != "" {
		tr, err := telemetry.CreateTrace(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floorplan:", err)
			return cli.ExitFailure
		}
		opts.Trace = tr
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "floorplan: closing trace:", err)
			}
		}()
	}

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	if *stall > 0 {
		// Single-run watchdog: the daemon-side stuck-run killer, scaled
		// down to one process. When the annealer makes no observable
		// progress (moves or temperature steps) for -stall-timeout, the
		// run is canceled — the best floorplan so far is still reported,
		// and an armed flight recorder dumps a postmortem first.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go watchStall(ctx, cancel, opts.Status, opts.Recorder, *stall)
	}

	var res *floorplan.Result
	var runErr error
	if *resume != "" {
		snap, err := floorplan.LoadCheckpoint(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floorplan:", err)
			return cli.ExitInvalidInput
		}
		if opts.CheckpointPath == "" {
			// Keep interrupted-and-resumed runs resumable by default.
			opts.CheckpointPath = *resume
		}
		res, runErr = floorplan.Resume(ctx, c, opts, snap)
	} else {
		res, runErr = floorplan.RunContext(ctx, c, opts)
	}
	interrupted := runErr != nil && (errors.Is(runErr, floorplan.ErrCanceled) || errors.Is(runErr, floorplan.ErrDeadline))
	if runErr != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "floorplan:", runErr)
		return cli.ExitCode(runErr, floorplan.ErrInvalidInput, floorplan.ErrSnapshotMismatch)
	}
	exit := 0
	if interrupted {
		// The best-so-far result below is valid; the exit code records
		// the interruption for scripts.
		exit = cli.ExitCode(runErr)
		fmt.Fprintf(os.Stderr, "floorplan: %v; reporting best floorplan so far\n", runErr)
		if opts.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "floorplan: resume with -resume %s\n", opts.CheckpointPath)
		}
	}

	if *asJSON {
		out := jsonResult{
			Circuit: res.Circuit,
			ChipW:   res.ChipW, ChipH: res.ChipH,
			Area: res.Area, Wirelength: res.Wirelength,
			CongestionCost: res.CongestionCost,
			Modules:        res.Modules,
			Nets:           res.TwoPinNets(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "floorplan:", err)
			return cli.ExitFailure
		}
		return exit
	}

	fmt.Printf("circuit      %s\n", res.Circuit)
	fmt.Printf("chip         %.0f x %.0f um\n", res.ChipW, res.ChipH)
	fmt.Printf("area         %.3f mm2\n", res.Area/1e6)
	fmt.Printf("wirelength   %.0f um\n", res.Wirelength)
	if *gamma > 0 {
		fmt.Printf("congestion   %.6g (%s, pitch %.0f um)\n", res.CongestionCost, *model, *pitch)
	}
	if *judge {
		j, err := res.JudgeCongestion()
		if err != nil {
			fmt.Fprintln(os.Stderr, "floorplan:", err)
			return cli.ExitFailure
		}
		fmt.Printf("judging cgt  %.6f (fixed grid, 10x10 um)\n", j)
	}
	fmt.Printf("runtime      %.2fs over %d temperature steps\n", res.Runtime.Seconds(), res.Temperatures)
	fmt.Printf("\n%-14s %10s %10s %10s %10s %s\n", "module", "x1", "y1", "x2", "y2", "rot")
	for _, m := range res.Modules {
		rot := ""
		if m.Rotated {
			rot = "R"
		}
		fmt.Printf("%-14s %10.0f %10.0f %10.0f %10.0f %s\n", m.Name, m.X1, m.Y1, m.X2, m.Y2, rot)
	}
	if *draw {
		boxes := make([]ascii.Box, len(res.Modules))
		for i, m := range res.Modules {
			label := m.Name
			if j := strings.LastIndexByte(label, '_'); j >= 0 {
				label = label[j+1:] // trim the circuit prefix
			}
			boxes[i] = ascii.Box{Label: label, X1: m.X1, Y1: m.Y1, X2: m.X2, Y2: m.Y2}
		}
		fmt.Println()
		fmt.Print(ascii.Floorplan(res.ChipW, res.ChipH, boxes, 78, 30))
	}
	return exit
}

// watchStall cancels the run when the live status stops advancing for
// stall. It polls at a quarter of the stall budget (at least 50ms), so
// a stall is detected within 1.25x the configured timeout.
func watchStall(ctx context.Context, cancel context.CancelFunc, status *telemetry.Status, rec *telemetry.Recorder, stall time.Duration) {
	every := stall / 4
	if every < 50*time.Millisecond {
		every = 50 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	var last int64
	lastAt := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		snap := status.Snapshot()
		progress := snap.Moves + int64(snap.Step)
		if progress != last {
			last, lastAt = progress, time.Now()
			continue
		}
		if time.Since(lastAt) < stall {
			continue
		}
		fmt.Fprintf(os.Stderr, "floorplan: watchdog: no observable progress for %s; canceling run\n", stall)
		if rec != nil {
			if path, err := rec.Dump("watchdog_stall"); err == nil && path != "" {
				fmt.Fprintf(os.Stderr, "floorplan: postmortem written to %s\n", path)
			}
		}
		cancel()
		return
	}
}

// jsonResult is the interchange document consumed by cmd/congest.
type jsonResult struct {
	Circuit        string                   `json:"circuit"`
	ChipW          float64                  `json:"chip_w"`
	ChipH          float64                  `json:"chip_h"`
	Area           float64                  `json:"area"`
	Wirelength     float64                  `json:"wirelength"`
	CongestionCost float64                  `json:"congestion_cost"`
	Modules        []floorplan.PlacedModule `json:"modules"`
	Nets           [][4]float64             `json:"nets"`
}

func loadCircuit(name, yalPath string) (*floorplan.Circuit, error) {
	switch {
	case name != "" && yalPath != "":
		return nil, fmt.Errorf("use either -circuit or -yal, not both")
	case name != "":
		return floorplan.Benchmark(name)
	case yalPath != "":
		f, err := os.Open(yalPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return floorplan.LoadYAL(f)
	default:
		return nil, fmt.Errorf("one of -circuit or -yal is required")
	}
}
