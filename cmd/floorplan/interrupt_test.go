package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"irgrid/floorplan"
)

// TestInterruptWritesResumableCheckpoint is the end-to-end interrupt
// contract: SIGTERM a long run, expect exit 130, a "best so far"
// report, and a valid checkpoint a second invocation can resume.
func TestInterruptWritesResumableCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "floorplan.bin")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "run.ckpt")
	var stderr, stdout bytes.Buffer
	cmd := exec.Command(bin,
		"-circuit", "ami49", "-gamma", "0.4", "-model", "ir-grid",
		"-moves", "60", "-temps", "1000000",
		"-checkpoint", ckpt, "-checkpoint-every", "1")
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the first snapshot, then interrupt.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint after 60s\nstderr: %s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("process did not exit with an error status: %v\nstderr: %s", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code = %d, want 130 (interrupted)\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "reporting best floorplan so far") {
		t.Errorf("stderr missing best-so-far notice:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "circuit") {
		t.Errorf("interrupted run printed no result:\n%s", stdout.String())
	}

	// The snapshot must verify and resume.
	snap, err := floorplan.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint does not load: %v", err)
	}
	if snap.Step < 1 {
		t.Errorf("snapshot step = %d, want >= 1", snap.Step)
	}

	resume := exec.Command(bin, "-resume", ckpt,
		"-circuit", "ami49", "-gamma", "0.4", "-model", "ir-grid",
		"-moves", "60", "-temps", "1") // past the snapshot step: finish immediately
	out, err := resume.CombinedOutput()
	if err != nil {
		t.Fatalf("resume run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "circuit") {
		t.Errorf("resume run printed no result:\n%s", out)
	}
}
