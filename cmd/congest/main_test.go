package main

import (
	"encoding/json"
	"strings"
	"testing"

	"irgrid/congestion"
)

func demoMap(t *testing.T) *congestion.Map {
	t.Helper()
	mp, err := congestion.EstimateIR(600, 600, []congestion.Net{
		{X1: 90, Y1: 90, X2: 510, Y2: 510},
		{X1: 90, Y1: 510, X2: 510, Y2: 90},
		{X1: 240, Y1: 90, X2: 240, Y2: 510},
	}, congestion.Options{Pitch: 30})
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestHotspotsSortedAndBounded(t *testing.T) {
	mp := demoMap(t)
	hs := hotspots(mp, 3)
	if len(hs) != 3 {
		t.Fatalf("%d hotspots", len(hs))
	}
	for i := 1; i < len(hs); i++ {
		if hs[i].d > hs[i-1].d {
			t.Error("hotspots not sorted by density")
		}
	}
	// Requesting more than exist returns all.
	all := hotspots(mp, 1<<20)
	if len(all) != mp.Cells {
		t.Errorf("%d hotspots, want %d", len(all), mp.Cells)
	}
}

func TestFloorplanDocRoundTrip(t *testing.T) {
	doc := floorplanDoc{
		Circuit: "x",
		ChipW:   100, ChipH: 200,
		Nets: [][4]float64{{1, 2, 3, 4}},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var got floorplanDoc
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Circuit != "x" || got.ChipW != 100 || len(got.Nets) != 1 || got.Nets[0] != [4]float64{1, 2, 3, 4} {
		t.Errorf("round trip: %+v", got)
	}
}

func TestFloorplanDocFieldNames(t *testing.T) {
	// The JSON field names are the contract with cmd/floorplan.
	raw, _ := json.Marshal(floorplanDoc{})
	for _, want := range []string{"circuit", "chip_w", "chip_h", "nets"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("missing field %q in %s", want, raw)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	mp := demoMap(t)
	var buf strings.Builder
	if err := writeCSV(&buf, mp); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x1,y1,x2,y2,density" {
		t.Errorf("header %q", lines[0])
	}
	if len(lines)-1 != mp.Cells {
		t.Errorf("%d data rows, want %d", len(lines)-1, mp.Cells)
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 5 {
			t.Fatalf("bad row %q", l)
		}
	}
}
