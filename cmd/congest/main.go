// Command congest evaluates the congestion of a floorplan produced by
// `floorplan -json`: it re-scores the decomposed two-pin nets under a
// chosen congestion model and renders an ASCII heat map with the most
// congested regions.
//
// Example:
//
//	floorplan -circuit ami33 -json > ami33.json
//	congest -in ami33.json -model ir-grid -pitch 30 -heatmap
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"irgrid/congestion"
	"irgrid/internal/ascii"
	"irgrid/internal/buildinfo"
	"irgrid/internal/cli"
	"irgrid/telemetry"
)

type floorplanDoc struct {
	Circuit string       `json:"circuit"`
	ChipW   float64      `json:"chip_w"`
	ChipH   float64      `json:"chip_h"`
	Nets    [][4]float64 `json:"nets"`
}

func main() {
	var (
		in      = flag.String("in", "", "floorplan JSON produced by `floorplan -json` (default stdin)")
		model   = flag.String("model", "ir-grid", "congestion model: ir-grid, ir-grid-exact, fixed-grid, fixed-grid-lz, routed")
		pitch   = flag.Float64("pitch", 30, "grid pitch in um")
		top     = flag.Int("top", 5, "number of hotspots to list")
		heatmap = flag.Bool("heatmap", false, "render an ASCII heat map")
		csvOut  = flag.String("csv", "", "write the congestion map as CSV to this file ('-' for stdout)")
		workers = flag.Int("workers", 0, "IR-grid evaluation workers (0 = all CPUs, 1 = sequential; results are identical)")
		metrics = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof/ on this host:port during evaluation")
		timeout = flag.Duration("timeout", 0, "abort the evaluation after this duration (exit 124; also stops on SIGINT/SIGTERM)")
		version = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	var doc floorplanDoc
	var dec *json.Decoder
	if *in == "" {
		dec = json.NewDecoder(os.Stdin)
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dec = json.NewDecoder(f)
	}
	if err := dec.Decode(&doc); err != nil {
		fatal(fmt.Errorf("parsing floorplan document: %w", err))
	}

	nets := make([]congestion.Net, len(doc.Nets))
	for i, n := range doc.Nets {
		nets[i] = congestion.Net{X1: n[0], Y1: n[1], X2: n[2], Y2: n[3]}
	}
	opts := congestion.Options{Pitch: *pitch, Workers: *workers}
	if *metrics != "" {
		opts.Obs = telemetry.NewRegistry()
		opts.Spans = telemetry.NewSpans()
		srv, addr, err := telemetry.ServeHub(*metrics, telemetry.Hub{Reg: opts.Obs, Spans: opts.Spans})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "congest: serving metrics at http://%s/metrics\n", addr)
	}

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	var mp *congestion.Map
	var err error
	switch *model {
	case "ir-grid":
		mp, err = congestion.EstimateIRContext(ctx, doc.ChipW, doc.ChipH, nets, opts)
	case "ir-grid-exact":
		opts.Exact = true
		mp, err = congestion.EstimateIRContext(ctx, doc.ChipW, doc.ChipH, nets, opts)
	case "fixed-grid":
		mp, err = congestion.EstimateFixed(doc.ChipW, doc.ChipH, nets, opts)
	case "fixed-grid-lz":
		opts.BendLimited = true
		mp, err = congestion.EstimateFixed(doc.ChipW, doc.ChipH, nets, opts)
	case "routed":
		mp, err = congestion.EstimateRouted(doc.ChipW, doc.ChipH, nets, congestion.RouteOptions{Pitch: *pitch})
	default:
		cli.Fatalf("congest", cli.ExitUsage, "unknown model %q", *model)
	}
	if err != nil {
		cli.Fatal("congest", err, congestion.ErrInvalidInput)
	}

	fmt.Printf("circuit   %s (%.0f x %.0f um, %d two-pin nets)\n", doc.Circuit, doc.ChipW, doc.ChipH, len(nets))
	fmt.Printf("model     %s, pitch %.0f um, %d cells\n", mp.Model, *pitch, mp.Cells)
	fmt.Printf("score     %.6g (top-10%% average density, 1/um2)\n", mp.Score)
	fmt.Printf("max cell  %.6g\n", mp.MaxDensity())

	fmt.Printf("\ntop %d hotspots:\n", *top)
	hs := hotspots(mp, *top)
	for _, h := range hs {
		fmt.Printf("  [%6.0f %6.0f .. %6.0f %6.0f]  density %.6g\n", h.x1, h.y1, h.x2, h.y2, h.d)
	}

	if *heatmap {
		fmt.Println()
		fmt.Print(ascii.HeatMap(mp.XLines, mp.YLines, mp.Density, 64, 24))
		fmt.Print(ascii.Legend())
	}

	if *csvOut != "" {
		w := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := writeCSV(w, mp); err != nil {
			fatal(err)
		}
	}
}

// writeCSV emits one row per cell: x1,y1,x2,y2,density.
func writeCSV(w io.Writer, mp *congestion.Map) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x1", "y1", "x2", "y2", "density"}); err != nil {
		return err
	}
	for iy := 0; iy+1 < len(mp.YLines); iy++ {
		for ix := 0; ix+1 < len(mp.XLines); ix++ {
			rec := []string{
				strconv.FormatFloat(mp.XLines[ix], 'g', -1, 64),
				strconv.FormatFloat(mp.YLines[iy], 'g', -1, 64),
				strconv.FormatFloat(mp.XLines[ix+1], 'g', -1, 64),
				strconv.FormatFloat(mp.YLines[iy+1], 'g', -1, 64),
				strconv.FormatFloat(mp.Density[iy][ix], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

type hotspot struct{ x1, y1, x2, y2, d float64 }

func hotspots(mp *congestion.Map, k int) []hotspot {
	var hs []hotspot
	for iy := 0; iy+1 < len(mp.YLines); iy++ {
		for ix := 0; ix+1 < len(mp.XLines); ix++ {
			hs = append(hs, hotspot{
				x1: mp.XLines[ix], y1: mp.YLines[iy],
				x2: mp.XLines[ix+1], y2: mp.YLines[iy+1],
				d: mp.Density[iy][ix],
			})
		}
	}
	for i := 0; i < len(hs); i++ { // selection sort of the top k
		best := i
		for j := i + 1; j < len(hs); j++ {
			if hs[j].d > hs[best].d {
				best = j
			}
		}
		hs[i], hs[best] = hs[best], hs[i]
		if i+1 >= k {
			break
		}
	}
	if k < len(hs) {
		hs = hs[:k]
	}
	return hs
}

func fatal(err error) {
	cli.Fatal("congest", err, congestion.ErrInvalidInput)
}
