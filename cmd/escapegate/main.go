// Command escapegate is the compiler-verdict half of the hot-path
// allocation gate: it runs `go build -gcflags=-m` over the hot
// packages, extracts the escape-analysis diagnostics ("escapes to
// heap" / "moved to heap"), and diffs them against the committed
// allowlist in testdata/escape_allow.json. Every entry in the
// allowlist is a reviewed, expected escape (constructors, arena
// growth, error paths); a diagnostic not in the list means a change
// put a new allocation somewhere the 0 allocs/op benchmarks care
// about, and the gate fails before the benchmark ever runs.
//
// Entries are keyed by (file, message) without line numbers, so
// unrelated edits that shift lines do not churn the list. The list
// also pins the toolchain version: escape analysis verdicts differ
// across compiler releases, so on a version mismatch the gate skips
// (exit 0 with a notice) unless -strict forces a failure. CI pins the
// matching toolchain and runs with -strict.
//
// Usage:
//
//	escapegate [-allow testdata/escape_allow.json] [-update] [-strict] [packages...]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
)

// defaultPackages are the allocation-critical packages: the evaluation
// engine and the pure-math kernels it leans on.
var defaultPackages = []string{"./internal/core", "./internal/geom", "./internal/nmath"}

// Escape is one heap-escape diagnostic.
type Escape struct {
	File string `json:"file"`
	What string `json:"what"`
}

// Allowlist is the committed escape budget.
type Allowlist struct {
	// Go pins the toolchain whose verdicts the list records.
	Go string `json:"go"`
	// Packages are the package patterns the gate compiles.
	Packages []string `json:"packages"`
	// Allow are the reviewed, expected escapes.
	Allow []Escape `json:"allow"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("escapegate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		allowPath = fs.String("allow", "testdata/escape_allow.json", "path of the committed escape allowlist")
		update    = fs.Bool("update", false, "rewrite the allowlist from the current compiler verdicts")
		strict    = fs.Bool("strict", false, "fail (instead of skip) on toolchain version mismatch, and fail on stale allowlist entries")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	packages := fs.Args()
	goVersion := runtime.Version()

	var prev *Allowlist
	if data, err := os.ReadFile(*allowPath); err == nil {
		prev = new(Allowlist)
		if err := json.Unmarshal(data, prev); err != nil {
			fmt.Fprintf(stderr, "escapegate: parsing %s: %v\n", *allowPath, err)
			return 1
		}
	} else if !*update {
		fmt.Fprintf(stderr, "escapegate: %v (run with -update to create the allowlist)\n", err)
		return 1
	}
	if len(packages) == 0 {
		if prev != nil && len(prev.Packages) > 0 {
			packages = prev.Packages
		} else {
			packages = defaultPackages
		}
	}

	if prev != nil && prev.Go != goVersion && !*update {
		if *strict {
			fmt.Fprintf(stderr, "escapegate: allowlist pins %s but toolchain is %s; regenerate with -update\n", prev.Go, goVersion)
			return 1
		}
		fmt.Fprintf(stdout, "escapegate: skipping — allowlist pins %s, toolchain is %s (CI runs the pinned version)\n", prev.Go, goVersion)
		return 0
	}

	escapes, err := compileEscapes(packages)
	if err != nil {
		fmt.Fprintf(stderr, "escapegate: %v\n", err)
		return 1
	}

	if *update {
		list := &Allowlist{Go: goVersion, Packages: packages, Allow: escapes}
		data, err := json.MarshalIndent(list, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "escapegate: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*allowPath, append(data, '\n'), 0o666); err != nil {
			fmt.Fprintf(stderr, "escapegate: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "escapegate: wrote %d allowed escapes for %s to %s\n", len(escapes), goVersion, *allowPath)
		return 0
	}

	unexpected, stale := Diff(escapes, prev.Allow)
	for _, e := range unexpected {
		fmt.Fprintf(stderr, "escapegate: NEW escape in %s: %s\n", e.File, e.What)
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "escapegate: stale allowlist entry (no longer emitted) in %s: %s\n", e.File, e.What)
	}
	switch {
	case len(unexpected) > 0:
		fmt.Fprintf(stderr, "escapegate: %d new escape(s) — remove the allocation or, if reviewed, add it with -update\n", len(unexpected))
		return 1
	case len(stale) > 0 && *strict:
		fmt.Fprintf(stderr, "escapegate: %d stale entr(ies) — refresh with -update\n", len(stale))
		return 1
	}
	fmt.Fprintf(stdout, "escapegate: ok — %d escapes, all within the committed budget (%d entries)\n", len(escapes), len(prev.Allow))
	return 0
}

// compileEscapes builds the packages with -gcflags=-m and returns the
// deduplicated heap-escape diagnostics. The build cache replays
// compiler diagnostics, so repeat runs are cheap.
func compileEscapes(packages []string) ([]Escape, error) {
	args := append([]string{"build", "-gcflags=-m"}, packages...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.Bytes())
	}
	return ParseEscapes(&out), nil
}

// ParseEscapes extracts heap-escape diagnostics from -gcflags=-m
// output: "file:line:col: X escapes to heap" and "file:line:col:
// moved to heap: v" lines, deduplicated by (file, message) and sorted.
// Compiler-synthesized locations (<autogenerated>) are ignored — they
// shift with unrelated method-set changes and carry no actionable
// position.
func ParseEscapes(r io.Reader) []Escape {
	seen := map[Escape]bool{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasSuffix(line, " escapes to heap") && !strings.Contains(line, ": moved to heap: ") {
			continue
		}
		// file:line:col: message
		rest := line
		var file string
		if i := strings.IndexByte(rest, ':'); i > 0 {
			file = rest[:i]
			rest = rest[i+1:]
		} else {
			continue
		}
		if file == "<autogenerated>" || strings.HasPrefix(file, "#") {
			continue
		}
		// Strip "line:col: " (either may be absent in edge cases).
		for range 2 {
			if i := strings.IndexByte(rest, ':'); i >= 0 && isDigits(rest[:i]) {
				rest = rest[i+1:]
			}
		}
		what := strings.TrimSpace(rest)
		if what == "" {
			continue
		}
		seen[Escape{File: file, What: what}] = true
	}
	out := make([]Escape, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sortEscapes(out)
	return out
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Diff splits the observed escapes against the allowlist: unexpected
// holds observations with no allow entry, stale holds allow entries no
// longer observed.
func Diff(observed, allowed []Escape) (unexpected, stale []Escape) {
	allow := map[Escape]bool{}
	for _, e := range allowed {
		allow[e] = true
	}
	obs := map[Escape]bool{}
	for _, e := range observed {
		obs[e] = true
		if !allow[e] {
			unexpected = append(unexpected, e)
		}
	}
	for _, e := range allowed {
		if !obs[e] {
			stale = append(stale, e)
		}
	}
	sortEscapes(unexpected)
	sortEscapes(stale)
	return unexpected, stale
}

func sortEscapes(es []Escape) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].File != es[j].File {
			return es[i].File < es[j].File
		}
		return es[i].What < es[j].What
	})
}
