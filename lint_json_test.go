package irgrid

import (
	"encoding/json"
	"os"
	"os/exec"
	"testing"
)

// TestWriteLintReportJSON regenerates LINT_report.json, the static
// analysis posture CI uploads as an artifact: per-analyzer finding and
// suppression counts plus the escape-allowlist size, produced by
// `irlint -report`. It runs only when IRGRID_LINT_JSON is set:
//
//	IRGRID_LINT_JSON=1 go test -run TestWriteLintReportJSON .
func TestWriteLintReportJSON(t *testing.T) {
	if os.Getenv("IRGRID_LINT_JSON") == "" {
		t.Skip("set IRGRID_LINT_JSON=1 to regenerate LINT_report.json")
	}
	tool := t.TempDir() + "/irlint"
	if out, err := exec.Command("go", "build", "-o", tool, "./cmd/irlint").CombinedOutput(); err != nil {
		t.Fatalf("building irlint: %v\n%s", err, out)
	}
	out, err := exec.Command(tool, "-report", "LINT_report.json", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("irlint found diagnostics or failed: %v\n%s", err, out)
	}
	t.Logf("wrote LINT_report.json")
}

// TestLintReportSchema validates the committed LINT_report.json: the
// report must cover every analyzer, record zero findings (the tree
// ships lint-clean — new findings are fixed or annotated, never
// committed), and carry a current escape-allowlist size.
func TestLintReportSchema(t *testing.T) {
	data, err := os.ReadFile("LINT_report.json")
	if err != nil {
		t.Fatalf("reading committed LINT_report.json: %v", err)
	}
	var rep struct {
		Tool      string `json:"tool"`
		Packages  int    `json:"packages"`
		Analyzers map[string]struct {
			Findings int `json:"findings"`
			Allows   int `json:"allows"`
		} `json:"analyzers"`
		HotFunctions        int `json:"hot_functions"`
		EscapeAllowlistSize int `json:"escape_allowlist_size"`
		Facts               struct {
			BlockingFunctions int `json:"blocking_functions"`
			LockEdges         int `json:"lock_edges"`
			AtomicFields      int `json:"atomic_fields"`
		} `json:"facts"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing LINT_report.json: %v", err)
	}
	if rep.Tool != "irlint" {
		t.Errorf("tool = %q, want irlint", rep.Tool)
	}
	if rep.Packages <= 0 {
		t.Errorf("packages = %d, want > 0", rep.Packages)
	}
	for _, name := range []string{
		"detmap", "detsource", "hotalloc", "ctxpropagate", "obssafe", "annotcheck",
		"lockscope", "lockorder", "atomicmix", "golifecycle", "statemachine",
	} {
		row, ok := rep.Analyzers[name]
		if !ok {
			t.Errorf("report missing analyzer %q", name)
			continue
		}
		if row.Findings != 0 {
			t.Errorf("analyzer %s reports %d findings; the committed tree must be lint-clean", name, row.Findings)
		}
	}
	if rep.Analyzers["detsource"].Allows == 0 {
		t.Error("detsource allows = 0; the annotated obs-timing sites should be counted")
	}
	if rep.HotFunctions == 0 {
		t.Error("hot_functions = 0; the engine hot path should be marked")
	}
	if rep.EscapeAllowlistSize <= 0 {
		t.Errorf("escape_allowlist_size = %d, want > 0 (testdata/escape_allow.json missing?)", rep.EscapeAllowlistSize)
	}
	// The facts pre-pass must have seen the service layer: blocking
	// functions (checkpoint saves, the annealer) and the server's nested
	// mutex acquisitions are structural, not incidental. atomic_fields
	// may legitimately be zero (the repo prefers the atomic.Int64-style
	// types, which the fact does not cover).
	if rep.Facts.BlockingFunctions == 0 {
		t.Error("facts.blocking_functions = 0; ckpt/anneal I/O should carry Blocks facts")
	}
	if rep.Facts.LockEdges == 0 {
		t.Error("facts.lock_edges = 0; the server's nested mutex acquisitions should be recorded")
	}
}
