package irgrid

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"irgrid/internal/core"
)

// benchRecord is one benchmark result in BENCH_evaluate.json.
type benchRecord struct {
	Name        string  `json:"name"`
	Nets        int     `json:"nets"`
	Workers     int     `json:"workers"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchDoc struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GoVersion  string        `json:"go_version"`
	Results    []benchRecord `json:"results"`
}

// TestWriteEvaluateBenchJSON regenerates BENCH_evaluate.json, the
// machine-readable record of the evaluation-engine benchmarks (ns/op
// and allocs/op for the sequential and parallel IR-grid score paths).
// It runs only when IRGRID_BENCH_JSON is set:
//
//	IRGRID_BENCH_JSON=1 go test -run TestWriteEvaluateBenchJSON .
func TestWriteEvaluateBenchJSON(t *testing.T) {
	if os.Getenv("IRGRID_BENCH_JSON") == "" {
		t.Skip("set IRGRID_BENCH_JSON=1 to regenerate BENCH_evaluate.json")
	}

	doc := benchDoc{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}

	// Steady-state engine on the ≥500-net synthetic instance,
	// sequential vs parallel accumulation.
	chip, nets := syntheticNets(500)
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"BenchmarkIRGridScore500/seq", 1}, {"BenchmarkIRGridScore500/par4", 4}} {
		e := core.Model{Pitch: 30, Workers: cfg.workers}.NewEvaluator()
		e.Score(chip, nets) // warm arenas and memos outside the measurement
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if s := e.Score(chip, nets); s <= 0 {
					b.Fatal("zero score")
				}
			}
		})
		doc.Results = append(doc.Results, benchRecord{
			Name: cfg.name, Nets: len(nets), Workers: cfg.workers,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
	}

	// The cancellation-guarded path: the same steady-state engine with
	// a live (never-canceled) context armed, as the annealer runs it
	// under RunContext. Documents the cost of the per-shard ctx checks.
	{
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		e := core.Model{Pitch: 30, Workers: 1, Ctx: ctx}.NewEvaluator()
		e.Score(chip, nets)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if s := e.Score(chip, nets); s <= 0 {
					b.Fatal("zero score")
				}
			}
		})
		doc.Results = append(doc.Results, benchRecord{
			Name: "BenchmarkIRGridScore500/seq+ctx", Nets: len(nets), Workers: 1,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
	}

	// The legacy pooled-wrapper benchmark on the ami33 fixture, for
	// continuity with the pre-engine numbers.
	sol := ami33Solution(t)
	m := core.Model{Pitch: 30}
	m.Score(sol.Placement.Chip, sol.Nets) // warm the wrapper pool
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := m.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
				b.Fatal("zero score")
			}
		}
	})
	doc.Results = append(doc.Results, benchRecord{
		Name: "BenchmarkIRGridScore", Nets: len(sol.Nets), Workers: 0,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	})

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_evaluate.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_evaluate.json:\n%s", buf)
}
