// Package irgrid's root benchmark harness regenerates every table and
// figure of the paper's evaluation (one Benchmark per artifact, sized
// by the Smoke protocol) and provides ablation benchmarks for the
// design decisions called out in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// For paper-scale numbers use cmd/experiments with -protocol full.
package irgrid

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"irgrid/internal/anneal"
	"irgrid/internal/baseline"
	"irgrid/internal/bench"
	"irgrid/internal/core"
	"irgrid/internal/exp"
	"irgrid/internal/fplan"
	"irgrid/internal/geom"
	"irgrid/internal/grid"
	"irgrid/internal/netlist"
	"irgrid/internal/nmath"
	"irgrid/internal/slicing"
	"irgrid/internal/wl"
)

// --- tables & figures -------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	p := exp.Smoke()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTable1(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	p := exp.Smoke()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTable2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	p := exp.Smoke()
	for i := 0; i < b.N; i++ {
		t1, err := exp.RunTable1(p)
		if err != nil {
			b.Fatal(err)
		}
		t2, err := exp.RunTable2(p)
		if err != nil {
			b.Fatal(err)
		}
		if rows := exp.Table3(t1, t2); len(rows) == 0 {
			b.Fatal("empty table 3")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	p := exp.Smoke()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTable4(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	p := exp.Smoke()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTable5(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.RunFigure8(31, 21, 15, 10, 20)
		if len(pts) != 11 {
			b.Fatal("bad figure 8")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	p := exp.Smoke()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFigure9(p, "ami33"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- shared fixture ---------------------------------------------------

// fixture is a finished ami33 floorplan reused by the model
// micro-benchmarks, so they all score the same realistic net set.
var fixture struct {
	once sync.Once
	sol  *fplan.Solution
}

func ami33Solution(tb testing.TB) *fplan.Solution {
	tb.Helper()
	fixture.once.Do(func() {
		c := bench.MustLoad("ami33")
		r, err := fplan.New(c, fplan.Config{
			Weights: fplan.Weights{Alpha: 0.5, Beta: 0.5},
			Pitch:   30, AllowRotate: true,
			Anneal: anneal.Config{Seed: 7, MovesPerTemp: 30, MaxTemps: 20, CalibrationMoves: 10},
		})
		if err != nil {
			panic(err)
		}
		fixture.sol, _, _ = r.Run(nil, nil)
	})
	return fixture.sol
}

// --- model micro-benchmarks (Experiment 3's speed axis) ---------------

func BenchmarkIRGridScore(b *testing.B) {
	sol := ami33Solution(b)
	m := core.Model{Pitch: 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
			b.Fatal("zero score")
		}
	}
}

func BenchmarkIRGridScoreExact(b *testing.B) {
	sol := ami33Solution(b)
	m := core.Model{Pitch: 30, Exact: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
			b.Fatal("zero score")
		}
	}
}

// syntheticNets builds a fixed n-net instance on a 3000x2400 chip —
// large enough to engage the evaluation engine's parallel path — with
// a mix of long diagonal, short local and degenerate nets.
func syntheticNets(n int) (geom.Rect, []netlist.TwoPin) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 3000, Y2: 2400}
	rng := rand.New(rand.NewSource(20040216))
	nets := make([]netlist.TwoPin, n)
	for i := range nets {
		a := geom.Pt{X: rng.Float64() * chip.W(), Y: rng.Float64() * chip.H()}
		var b geom.Pt
		switch i % 7 {
		case 0:
			b = geom.Pt{X: a.X, Y: rng.Float64() * chip.H()}
		case 1, 2:
			b = geom.Pt{
				X: math.Min(chip.X2, a.X+rng.Float64()*200),
				Y: math.Max(chip.Y1, a.Y-rng.Float64()*200),
			}
		default:
			b = geom.Pt{X: rng.Float64() * chip.W(), Y: rng.Float64() * chip.H()}
		}
		nets[i] = netlist.TwoPin{A: a, B: b}
	}
	return chip, nets
}

// BenchmarkIRGridScore500 measures the steady-state evaluation engine
// on a 500-net instance, sequential against parallel accumulation
// (results are bit-identical; only wall time may differ).
func BenchmarkIRGridScore500(b *testing.B) {
	chip, nets := syntheticNets(500)
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par4", 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			e := core.Model{Pitch: 30, Workers: cfg.workers}.NewEvaluator()
			e.Score(chip, nets) // warm the arenas and memos
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s := e.Score(chip, nets); s <= 0 {
					b.Fatal("zero score")
				}
			}
		})
	}
}

func BenchmarkFixedGridScore100(b *testing.B) {
	benchFixedScore(b, 100)
}

func BenchmarkFixedGridScore50(b *testing.B) {
	benchFixedScore(b, 50)
}

func BenchmarkFixedGridScoreJudging10(b *testing.B) {
	benchFixedScore(b, exp.JudgingPitch)
}

func benchFixedScore(b *testing.B, pitch float64) {
	sol := ami33Solution(b)
	m := grid.Model{Pitch: pitch}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
			b.Fatal("zero score")
		}
	}
}

// --- ablations (DESIGN.md §6) ------------------------------------------

// BenchmarkAblationApproxVsExact isolates the Theorem 1 O(1)
// approximation against the exact O(perimeter) Formula 3 sums on a
// large IR-rectangle.
func BenchmarkAblationApproxVsExact(b *testing.B) {
	const g1, g2 = 200, 150
	b.Run("approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ApproxCrossProb(g1, g2, 40, 160, 30, 120, 0)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ExactCrossProb(g1, g2, 40, 160, 30, 120)
		}
	})
}

// BenchmarkAblationLineMerge quantifies Algorithm step 2: merging
// cutting lines closer than twice the base pitch shrinks the IR-grid
// and with it the evaluation work.
func BenchmarkAblationLineMerge(b *testing.B) {
	sol := ami33Solution(b)
	b.Run("merged", func(b *testing.B) {
		m := core.Model{Pitch: 30}
		for i := 0; i < b.N; i++ {
			m.Evaluate(sol.Placement.Chip, sol.Nets)
		}
	})
	b.Run("unmerged", func(b *testing.B) {
		m := core.Model{Pitch: 30, NoMerge: true}
		for i := 0; i < b.N; i++ {
			m.Evaluate(sol.Placement.Chip, sol.Nets)
		}
	})
}

// BenchmarkAblationIntegralBounds compares the paper's literal
// Theorem 1 integral bounds with the half-cell continuity-corrected
// bounds this implementation defaults to (same cost; the accuracy
// difference is asserted in the core tests).
func BenchmarkAblationIntegralBounds(b *testing.B) {
	sol := ami33Solution(b)
	b.Run("corrected", func(b *testing.B) {
		m := core.Model{Pitch: 30}
		for i := 0; i < b.N; i++ {
			m.Evaluate(sol.Placement.Chip, sol.Nets)
		}
	})
	b.Run("paper", func(b *testing.B) {
		m := core.Model{Pitch: 30, PaperBounds: true}
		for i := 0; i < b.N; i++ {
			m.Evaluate(sol.Placement.Chip, sol.Nets)
		}
	})
}

// BenchmarkAblationLogSpace compares exact integer path counting
// (which overflows beyond ~60x60 unit grids) against the log-space
// binomials the models use everywhere.
func BenchmarkAblationLogSpace(b *testing.B) {
	b.Run("logspace", func(b *testing.B) {
		var lf nmath.LogFact
		lf.Ensure(120)
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			for k := 0; k <= 60; k++ {
				sink += math.Exp(lf.LogChoose(60, k) - lf.LogChoose(120, 60))
			}
		}
		_ = sink
	})
	b.Run("bigint", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			for k := 0; k <= 60; k++ {
				v, ok := nmath.ChooseBig(60, k)
				if ok {
					sink += v
				}
			}
		}
		_ = sink
	})
}

// BenchmarkAblationEscapeVsCellSum contrasts Formula 3's boundary-
// escape identity (O(perimeter) terms) with the naive blocked-DP
// computation of the same crossing probability (O(area) cells), the
// approach the escape identity replaces.
func BenchmarkAblationEscapeVsCellSum(b *testing.B) {
	const g1, g2 = 60, 60
	b.Run("escape", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ExactCrossProb(g1, g2, 20, 40, 15, 45)
		}
	})
	b.Run("blockedDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockedDPCrossProb(g1, g2, 20, 40, 15, 45)
		}
	})
}

// blockedDPCrossProb is the naive reference: count monotone paths
// avoiding the rectangle via dynamic programming.
func blockedDPCrossProb(g1, g2, x1, x2, y1, y2 int) float64 {
	count := func(blocked bool) float64 {
		dp := make([]float64, g1*g2)
		for j := 0; j < g2; j++ {
			for i := 0; i < g1; i++ {
				if blocked && i >= x1 && i <= x2 && j >= y1 && j <= y2 {
					continue
				}
				if i == 0 && j == 0 {
					dp[0] = 1
					continue
				}
				var v float64
				if i > 0 {
					v += dp[j*g1+i-1]
				}
				if j > 0 {
					v += dp[(j-1)*g1+i]
				}
				dp[j*g1+i] = v
			}
		}
		return dp[g1*g2-1]
	}
	total := count(false)
	if total == 0 {
		return 0
	}
	return 1 - count(true)/total
}

// BenchmarkAblationWirelength compares the cost-function wirelength
// models on the ami33 pin sets (the paper uses MST).
func BenchmarkAblationWirelength(b *testing.B) {
	c := bench.MustLoad("ami33")
	mkRunner := func(model wl.Model) *fplan.Runner {
		r, err := fplan.New(c, fplan.Config{
			Weights: fplan.Weights{Alpha: 0.5, Beta: 0.5},
			Pitch:   30, AllowRotate: true, Wire: model,
			Anneal: anneal.Config{Seed: 1, CalibrationMoves: 5},
		})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	e := slicing.Initial(len(c.Modules))
	for _, model := range []wl.Model{wl.ModelMST, wl.ModelHPWL, wl.ModelStar, wl.ModelClique} {
		b.Run(string(model), func(b *testing.B) {
			r := mkRunner(model)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s := r.Evaluate(e); s.Wirelength <= 0 {
					b.Fatal("bad wirelength")
				}
			}
		})
	}
}

// BenchmarkGlobalRouter measures the ground-truth router on a finished
// ami33 floorplan (the validation experiment's inner loop).
func BenchmarkGlobalRouter(b *testing.B) {
	sol := ami33Solution(b)
	m := baseline.RouterBased{Pitch: 30, Capacity: 4, Iterations: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Route(sol.Placement.Chip, sol.Nets)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Overflow
	}
}

// BenchmarkBaselineEstimators measures the non-probabilistic
// congestion-model families from the paper's taxonomy.
func BenchmarkBaselineEstimators(b *testing.B) {
	sol := ami33Solution(b)
	b.Run("empirical", func(b *testing.B) {
		m := baseline.Empirical{Pitch: 30}
		for i := 0; i < b.N; i++ {
			if s := m.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
				b.Fatal("zero score")
			}
		}
	})
	b.Run("router-based", func(b *testing.B) {
		m := baseline.RouterBased{Pitch: 60, Capacity: 6, Iterations: 2}
		for i := 0; i < b.N; i++ {
			if s := m.Score(sol.Placement.Chip, sol.Nets); s <= 0 {
				b.Fatal("zero score")
			}
		}
	})
}

// BenchmarkSoftPacking compares hard vs soft module packing cost.
func BenchmarkSoftPacking(b *testing.B) {
	c := bench.MustLoad("ami33")
	soft := make([]netlist.Module, len(c.Modules))
	copy(soft, c.Modules)
	for i := range soft {
		soft[i].MinAspect, soft[i].MaxAspect = 0.25, 4
	}
	e := slicing.Initial(len(c.Modules))
	b.Run("hard", func(b *testing.B) {
		p := slicing.NewPacker(c.Modules, true)
		for i := 0; i < b.N; i++ {
			if _, err := p.Pack(e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("soft", func(b *testing.B) {
		p := slicing.NewPacker(soft, true)
		for i := 0; i < b.N; i++ {
			if _, err := p.Pack(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkValidation runs a miniature model-vs-router validation pass.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunValidation("ami33", 4, 55); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ----------------------------------------

func BenchmarkPackerAmi49(b *testing.B) {
	c := bench.MustLoad("ami49")
	p := slicing.NewPacker(c.Modules, true)
	e := slicing.Initial(len(c.Modules))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pack(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloorplanEvaluate(b *testing.B) {
	c := bench.MustLoad("ami33")
	r, err := fplan.New(c, fplan.Config{
		Weights:   fplan.Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
		Estimator: core.Model{Pitch: 30},
		Pitch:     30, AllowRotate: true,
		Anneal: anneal.Config{Seed: 1, CalibrationMoves: 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	e := slicing.Initial(len(c.Modules))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Evaluate(e); s.Cost <= 0 {
			b.Fatal("bad cost")
		}
	}
}

func BenchmarkYALRoundTrip(b *testing.B) {
	c := bench.MustLoad("ami49")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := netlist.WriteYAL(&buf, c); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
