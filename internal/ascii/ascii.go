// Package ascii renders congestion maps and floorplans as character
// rasters for the CLI tools and examples. All rendering is pure string
// construction so it is testable without a terminal.
package ascii

import (
	"fmt"
	"sort"
	"strings"
)

// shades orders characters from empty to most congested.
var shades = []byte(" .:-=+*#%@")

// HeatMap renders a (possibly irregular) cell grid onto a cols×rows
// character raster. xLines and yLines are the cell boundaries
// (ascending); density[row][col] is the per-cell intensity. The
// brightest character maps to the maximum density.
func HeatMap(xLines, yLines []float64, density [][]float64, cols, rows int) string {
	if len(xLines) < 2 || len(yLines) < 2 || cols < 1 || rows < 1 {
		return "(empty map)\n"
	}
	maxD := 0.0
	for _, row := range density {
		for _, v := range row {
			if v > maxD {
				maxD = v
			}
		}
	}
	var b strings.Builder
	w := xLines[len(xLines)-1] - xLines[0]
	h := yLines[len(yLines)-1] - yLines[0]
	for ry := rows - 1; ry >= 0; ry-- {
		line := make([]byte, cols)
		for rx := 0; rx < cols; rx++ {
			x := xLines[0] + (float64(rx)+0.5)/float64(cols)*w
			y := yLines[0] + (float64(ry)+0.5)/float64(rows)*h
			shade := 0
			if maxD > 0 {
				cx := cellIndex(xLines, x)
				cy := cellIndex(yLines, y)
				if cy >= 0 && cy < len(density) && cx >= 0 && cx < len(density[cy]) {
					f := density[cy][cx] / maxD
					shade = int(f * float64(len(shades)-1))
					if shade >= len(shades) {
						shade = len(shades) - 1
					}
				}
			}
			line[rx] = shades[shade]
		}
		fmt.Fprintf(&b, "|%s|\n", line)
	}
	return b.String()
}

// cellIndex locates v among ascending boundaries, clamped.
func cellIndex(lines []float64, v float64) int {
	i := sort.SearchFloat64s(lines, v) - 1
	if i < 0 {
		i = 0
	}
	if i > len(lines)-2 {
		i = len(lines) - 2
	}
	return i
}

// Box is a labelled rectangle for Floorplan.
type Box struct {
	Label          string
	X1, Y1, X2, Y2 float64
}

// Floorplan draws labelled module outlines onto a cols×rows raster
// covering [0,chipW]×[0,chipH]. Overlapping edges share characters;
// each box interior carries the first letters of its label.
func Floorplan(chipW, chipH float64, boxes []Box, cols, rows int) string {
	if chipW <= 0 || chipH <= 0 || cols < 2 || rows < 2 {
		return "(empty floorplan)\n"
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = make([]byte, cols)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	toX := func(x float64) int {
		i := int(x / chipW * float64(cols-1))
		if i < 0 {
			i = 0
		}
		if i >= cols {
			i = cols - 1
		}
		return i
	}
	toY := func(y float64) int {
		i := int(y / chipH * float64(rows-1))
		if i < 0 {
			i = 0
		}
		if i >= rows {
			i = rows - 1
		}
		return i
	}
	for _, bx := range boxes {
		x1, x2 := toX(bx.X1), toX(bx.X2)
		y1, y2 := toY(bx.Y1), toY(bx.Y2)
		for x := x1; x <= x2; x++ {
			grid[y1][x] = '-'
			grid[y2][x] = '-'
		}
		for y := y1; y <= y2; y++ {
			grid[y][x1] = '|'
			grid[y][x2] = '|'
		}
		grid[y1][x1], grid[y1][x2] = '+', '+'
		grid[y2][x1], grid[y2][x2] = '+', '+'
		// Label inside, clipped to the box interior.
		if y2 > y1+1 && x2 > x1+1 {
			ly := (y1 + y2) / 2
			avail := x2 - x1 - 1
			label := bx.Label
			if len(label) > avail {
				label = label[:avail]
			}
			for i := 0; i < len(label); i++ {
				grid[ly][x1+1+i] = label[i]
			}
		}
	}
	var b strings.Builder
	for ry := rows - 1; ry >= 0; ry-- {
		b.Write(grid[ry])
		b.WriteByte('\n')
	}
	return b.String()
}

// Legend describes the shade ramp for humans.
func Legend() string {
	return fmt.Sprintf("shade ramp (low→high): %q\n", string(shades))
}
