package ascii

import (
	"strings"
	"testing"
)

func TestHeatMapShape(t *testing.T) {
	x := []float64{0, 50, 100}
	y := []float64{0, 100}
	density := [][]float64{{1, 0}}
	out := HeatMap(x, y, density, 10, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != 12 || l[0] != '|' || l[len(l)-1] != '|' {
			t.Fatalf("bad line %q", l)
		}
	}
	// Left half hot, right half empty.
	if lines[0][1] != '@' {
		t.Errorf("hot cell rendered as %q", lines[0][1])
	}
	if lines[0][10] != ' ' {
		t.Errorf("cold cell rendered as %q", lines[0][10])
	}
}

func TestHeatMapIrregularCells(t *testing.T) {
	// A narrow hot column at x in [90,100].
	x := []float64{0, 90, 100}
	y := []float64{0, 100}
	density := [][]float64{{0, 5}}
	out := HeatMap(x, y, density, 20, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0][19] != '@' {
		t.Errorf("right edge should be hot: %q", lines[0])
	}
	if lines[0][2] != ' ' {
		t.Errorf("left side should be empty: %q", lines[0])
	}
}

func TestHeatMapEmpty(t *testing.T) {
	if got := HeatMap(nil, nil, nil, 10, 10); !strings.Contains(got, "empty") {
		t.Errorf("got %q", got)
	}
	// All-zero density renders all blanks without dividing by zero.
	out := HeatMap([]float64{0, 1}, []float64{0, 1}, [][]float64{{0}}, 4, 2)
	if strings.ContainsAny(out, "@#%") {
		t.Errorf("zero map rendered hot: %q", out)
	}
}

func TestFloorplanOutlines(t *testing.T) {
	out := Floorplan(100, 100, []Box{
		{Label: "cpu", X1: 0, Y1: 0, X2: 50, Y2: 100},
		{Label: "mem", X1: 50, Y1: 0, X2: 100, Y2: 100},
	}, 40, 12)
	if !strings.Contains(out, "cpu") || !strings.Contains(out, "mem") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "-") || !strings.Contains(out, "|") {
		t.Errorf("outlines missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("%d lines", len(lines))
	}
}

func TestFloorplanLabelClipped(t *testing.T) {
	out := Floorplan(100, 100, []Box{
		{Label: "averylongmodulename", X1: 0, Y1: 0, X2: 20, Y2: 30},
	}, 20, 10)
	if strings.Contains(out, "averylongmodulename") {
		t.Error("label should have been clipped")
	}
}

func TestFloorplanDegenerate(t *testing.T) {
	if got := Floorplan(0, 10, nil, 10, 10); !strings.Contains(got, "empty") {
		t.Errorf("got %q", got)
	}
}

func TestLegend(t *testing.T) {
	if !strings.Contains(Legend(), "@") {
		t.Error("legend missing ramp")
	}
}
