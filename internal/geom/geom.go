// Package geom provides the planar geometry primitives shared by the
// floorplanner and the congestion models: points, rectangles, closed
// intervals and sorted coordinate axes.
//
// All coordinates are float64 micrometres (µm), matching the units the
// paper reports (grid pitches of 10–100 µm, chip sides of a few mm).
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Pt is a point in the plane, in µm.
type Pt struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Pt) Manhattan(q Pt) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Pt) String() string { return fmt.Sprintf("(%.3g,%.3g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle given by its lower-left and
// upper-right corners. A Rect is valid when X1 <= X2 and Y1 <= Y2;
// degenerate rectangles (zero width or height) are permitted — a net
// whose pins share a coordinate has a degenerate routing range.
type Rect struct {
	X1, Y1, X2, Y2 float64
}

// RectFromCorners returns the bounding rectangle of two arbitrary points.
func RectFromCorners(a, b Pt) Rect {
	return Rect{
		X1: math.Min(a.X, b.X),
		Y1: math.Min(a.Y, b.Y),
		X2: math.Max(a.X, b.X),
		Y2: math.Max(a.Y, b.Y),
	}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.X2 - r.X1 }

// H returns the height of r.
func (r Rect) H() float64 { return r.Y2 - r.Y1 }

// Area returns the area of r in µm².
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.W() <= 0 || r.H() <= 0 }

// Valid reports whether r's corners are ordered.
func (r Rect) Valid() bool { return r.X1 <= r.X2 && r.Y1 <= r.Y2 }

// Center returns the center point of r.
func (r Rect) Center() Pt { return Pt{(r.X1 + r.X2) / 2, (r.Y1 + r.Y2) / 2} }

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.X1 && p.X <= r.X2 && p.Y >= r.Y1 && p.Y <= r.Y2
}

// ContainsRect reports whether s lies entirely inside the closed
// rectangle r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.X1 >= r.X1 && s.X2 <= r.X2 && s.Y1 >= r.Y1 && s.Y2 <= r.Y2
}

// Intersect returns the intersection of r and s. The result may be
// invalid (X1 > X2 or Y1 > Y2) when the rectangles are disjoint; callers
// should test with Valid or Overlaps.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		X1: math.Max(r.X1, s.X1),
		Y1: math.Max(r.Y1, s.Y1),
		X2: math.Min(r.X2, s.X2),
		Y2: math.Min(r.Y2, s.Y2),
	}
}

// Overlaps reports whether r and s share interior area (touching edges
// do not count as overlap).
func (r Rect) Overlaps(s Rect) bool {
	return r.X1 < s.X2 && s.X1 < r.X2 && r.Y1 < s.Y2 && s.Y1 < r.Y2
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		X1: math.Min(r.X1, s.X1),
		Y1: math.Min(r.Y1, s.Y1),
		X2: math.Max(r.X2, s.X2),
		Y2: math.Max(r.Y2, s.Y2),
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Pt) Rect {
	return Rect{r.X1 + d.X, r.Y1 + d.Y, r.X2 + d.X, r.Y2 + d.Y}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3g,%.3g %.3g,%.3g]", r.X1, r.Y1, r.X2, r.Y2)
}

// Axis is a strictly increasing sequence of cutting coordinates along
// one dimension. The irregular grid of the paper is the Cartesian
// product of an x-Axis and a y-Axis; a uniform grid is the special case
// of evenly spaced coordinates.
type Axis []float64

// NewAxis sorts and deduplicates coords (within eps) into an Axis.
func NewAxis(coords []float64, eps float64) Axis {
	if len(coords) == 0 {
		return nil
	}
	c := append([]float64(nil), coords...)
	sort.Float64s(c)
	out := c[:1]
	for _, v := range c[1:] {
		if v-out[len(out)-1] > eps {
			out = append(out, v)
		}
	}
	return Axis(out)
}

// NewAxisInPlace is NewAxis without the defensive copy: it sorts and
// deduplicates coords in place and returns a prefix of the same
// backing array as the Axis. Callers that rebuild an axis every
// evaluation (the congestion engine's hot path) reuse one buffer
// across calls instead of allocating.
func NewAxisInPlace(coords []float64, eps float64) Axis {
	if len(coords) == 0 {
		return nil
	}
	sort.Float64s(coords)
	out := coords[:1]
	for _, v := range coords[1:] {
		if v-out[len(out)-1] > eps {
			out = append(out, v)
		}
	}
	return Axis(out)
}

// MergeInPlace is Merge writing its result into the receiver's backing
// array (the kept lines only ever move left, so the compaction is
// safe). The receiver must not be used afterwards.
func (a Axis) MergeInPlace(minGap float64) Axis {
	if len(a) <= 2 || minGap <= 0 {
		return a
	}
	last := len(a) - 1
	hi := a[last]
	out := a[:1]
	for i := 1; i < last; i++ {
		if a[i]-out[len(out)-1] >= minGap && hi-a[i] >= minGap {
			out = append(out, a[i])
		}
	}
	return append(out, hi)
}

// UniformAxis returns the axis {lo, lo+pitch, ...} covering [lo, hi].
// The final coordinate is exactly hi, so the last cell may be narrower
// than pitch. UniformAxis panics when pitch <= 0 or hi < lo.
func UniformAxis(lo, hi, pitch float64) Axis {
	if pitch <= 0 {
		panic("geom: UniformAxis pitch must be positive")
	}
	if hi < lo {
		panic("geom: UniformAxis requires hi >= lo")
	}
	n := int(math.Ceil((hi - lo) / pitch))
	if n < 1 {
		n = 1
	}
	ax := make(Axis, 0, n+1)
	for i := 0; i < n; i++ {
		ax = append(ax, lo+float64(i)*pitch)
	}
	return append(ax, hi)
}

// Cells returns the number of cells (intervals) along the axis.
func (a Axis) Cells() int {
	if len(a) < 2 {
		return 0
	}
	return len(a) - 1
}

// Cell returns the i-th interval [a[i], a[i+1]].
func (a Axis) Cell(i int) (lo, hi float64) { return a[i], a[i+1] }

// Width returns the width of the i-th cell.
func (a Axis) Width(i int) float64 { return a[i+1] - a[i] }

// Locate returns the index of the cell containing v, clamped to the
// valid range. Coordinates exactly on an interior cutting line belong
// to the cell to their right/above, except the final coordinate which
// belongs to the last cell.
func (a Axis) Locate(v float64) int {
	n := a.Cells()
	if n == 0 {
		return 0
	}
	i := sort.SearchFloat64s([]float64(a), v)
	// SearchFloat64s returns the first index with a[i] >= v.
	if i < len(a) && a[i] == v {
		// v is on cutting line i: cell i, unless it is the last line.
		if i == n {
			return n - 1
		}
		return i
	}
	i-- // v lies strictly inside cell i-1..i
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// IndexOf returns the index of the cutting line at coordinate v within
// eps, or -1 when no line matches.
func (a Axis) IndexOf(v, eps float64) int {
	i := sort.SearchFloat64s([]float64(a), v-eps)
	if i < len(a) && math.Abs(a[i]-v) <= eps {
		return i
	}
	return -1
}

// Merge removes interior cutting lines that are closer than minGap to
// their predecessor, as required by step 2 of the paper's algorithm
// ("remove any two lines whose interval is smaller than the double of
// the width/length of a grid"). The first and last lines (the chip
// boundary) are always kept; when an interior line falls too close to
// the previously kept line it is dropped, which widens the affected
// IR-grids and moves the corresponding routing-range boundary outward.
func (a Axis) Merge(minGap float64) Axis {
	if len(a) <= 2 || minGap <= 0 {
		return a
	}
	out := make(Axis, 0, len(a))
	out = append(out, a[0])
	last := len(a) - 1
	for i := 1; i < last; i++ {
		if a[i]-out[len(out)-1] >= minGap && a[last]-a[i] >= minGap {
			out = append(out, a[i])
		}
	}
	return append(out, a[last])
}
