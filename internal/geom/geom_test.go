package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPtManhattan(t *testing.T) {
	cases := []struct {
		a, b Pt
		want float64
	}{
		{Pt{0, 0}, Pt{0, 0}, 0},
		{Pt{0, 0}, Pt{3, 4}, 7},
		{Pt{-1, -2}, Pt{1, 2}, 6},
		{Pt{5, 0}, Pt{0, 5}, 10},
	}
	for _, c := range cases {
		if got := c.a.Manhattan(c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
		if got := c.b.Manhattan(c.a); got != c.want {
			t.Errorf("Manhattan not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Pt{5, 1}, Pt{2, 7})
	want := Rect{2, 1, 5, 7}
	if r != want {
		t.Fatalf("RectFromCorners = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Error("expected valid rect")
	}
	if r.W() != 3 || r.H() != 6 || r.Area() != 18 {
		t.Errorf("W/H/Area = %g/%g/%g", r.W(), r.H(), r.Area())
	}
}

func TestRectDegenerate(t *testing.T) {
	r := RectFromCorners(Pt{1, 1}, Pt{1, 5})
	if !r.Valid() {
		t.Error("line rect should be valid")
	}
	if !r.Empty() {
		t.Error("line rect should be empty (zero area)")
	}
	if r.Area() != 0 {
		t.Errorf("Area = %g, want 0", r.Area())
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	for _, p := range []Pt{{0, 0}, {10, 5}, {5, 2.5}, {0, 5}} {
		if !r.Contains(p) {
			t.Errorf("expected %v to contain %v (closed rect)", r, p)
		}
	}
	for _, p := range []Pt{{-0.1, 0}, {10.1, 5}, {5, 5.1}} {
		if r.Contains(p) {
			t.Errorf("expected %v not to contain %v", r, p)
		}
	}
}

func TestRectOverlapsAndIntersect(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("expected overlap")
	}
	got := a.Intersect(b)
	if got != (Rect{2, 2, 4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	// Touching rectangles do not overlap.
	c := Rect{4, 0, 8, 4}
	if a.Overlaps(c) {
		t.Error("touching rects must not overlap")
	}
	d := Rect{5, 5, 6, 6}
	if a.Overlaps(d) {
		t.Error("disjoint rects must not overlap")
	}
	if a.Intersect(d).Valid() {
		t.Error("intersection of disjoint rects should be invalid")
	}
}

func TestRectUnionTranslate(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{3, -2, 4, 0.5}
	u := a.Union(b)
	if u != (Rect{0, -2, 4, 1}) {
		t.Errorf("Union = %v", u)
	}
	tr := a.Translate(Pt{2, 3})
	if tr != (Rect{2, 3, 3, 4}) {
		t.Errorf("Translate = %v", tr)
	}
}

func TestNewAxisDedup(t *testing.T) {
	a := NewAxis([]float64{5, 1, 3, 1.0000001, 3, 5}, 1e-3)
	want := Axis{1, 3, 5}
	if len(a) != len(want) {
		t.Fatalf("axis = %v, want %v", a, want)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("axis = %v, want %v", a, want)
		}
	}
	if a.Cells() != 2 {
		t.Errorf("Cells = %d, want 2", a.Cells())
	}
}

func TestNewAxisEmpty(t *testing.T) {
	if a := NewAxis(nil, 1e-9); a != nil {
		t.Errorf("NewAxis(nil) = %v, want nil", a)
	}
	if (Axis{}).Cells() != 0 {
		t.Error("empty axis should have 0 cells")
	}
	if (Axis{1}).Cells() != 0 {
		t.Error("single-line axis should have 0 cells")
	}
}

func TestUniformAxis(t *testing.T) {
	a := UniformAxis(0, 100, 30)
	// 0, 30, 60, 90, 100
	want := Axis{0, 30, 60, 90, 100}
	if len(a) != len(want) {
		t.Fatalf("axis = %v, want %v", a, want)
	}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-12 {
			t.Fatalf("axis = %v, want %v", a, want)
		}
	}
	// Exact division keeps the last cell full-width.
	b := UniformAxis(0, 90, 30)
	if b.Cells() != 3 || b[3] != 90 {
		t.Errorf("axis = %v", b)
	}
}

func TestUniformAxisPanics(t *testing.T) {
	for _, f := range []func(){
		func() { UniformAxis(0, 10, 0) },
		func() { UniformAxis(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAxisLocate(t *testing.T) {
	a := Axis{0, 10, 30, 100}
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {5, 0}, {10, 1}, {29, 1}, {30, 2}, {99, 2},
		{100, 2}, // last line belongs to last cell
		{150, 2},
	}
	for _, c := range cases {
		if got := a.Locate(c.v); got != c.want {
			t.Errorf("Locate(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestAxisLocateConsistentWithCells(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Axis{0, 3, 7.5, 8, 20, 21.25, 40}
	for i := 0; i < 1000; i++ {
		v := rng.Float64() * 40
		c := a.Locate(v)
		lo, hi := a.Cell(c)
		if v < lo || v > hi {
			t.Fatalf("Locate(%g) = cell %d [%g,%g] not containing it", v, c, lo, hi)
		}
	}
}

func TestAxisIndexOf(t *testing.T) {
	a := Axis{0, 10, 30}
	if i := a.IndexOf(10, 1e-9); i != 1 {
		t.Errorf("IndexOf(10) = %d, want 1", i)
	}
	if i := a.IndexOf(10.5, 1e-9); i != -1 {
		t.Errorf("IndexOf(10.5) = %d, want -1", i)
	}
	if i := a.IndexOf(29.9999999999, 1e-6); i != 2 {
		t.Errorf("IndexOf(~30) = %d, want 2", i)
	}
}

func TestAxisMerge(t *testing.T) {
	a := Axis{0, 5, 12, 13, 40, 100}
	m := a.Merge(10)
	// 5 is <10 from 0: dropped. 12 is ≥10 from 0: kept. 13 is <10 from
	// 12: dropped. 40 kept. 100 kept (boundary).
	want := Axis{0, 12, 40, 100}
	if len(m) != len(want) {
		t.Fatalf("Merge = %v, want %v", m, want)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", m, want)
		}
	}
}

func TestAxisMergeKeepsBoundaries(t *testing.T) {
	a := Axis{0, 1, 2, 3}
	m := a.Merge(100)
	if len(m) != 2 || m[0] != 0 || m[1] != 3 {
		t.Fatalf("Merge with huge gap = %v, want [0 3]", m)
	}
	// A line too close to the upper boundary is dropped too.
	b := Axis{0, 50, 98, 100}
	mb := b.Merge(10)
	if len(mb) != 3 || mb[1] != 50 {
		t.Fatalf("Merge = %v, want [0 50 100]", mb)
	}
}

func TestAxisMergeNoOp(t *testing.T) {
	a := Axis{0, 50, 100}
	m := a.Merge(0)
	if len(m) != 3 {
		t.Fatalf("Merge(0) should be a no-op, got %v", m)
	}
}

// Property: merging never produces adjacent interior lines closer than
// minGap, never drops the boundary lines, and output stays sorted.
func TestAxisMergeProperties(t *testing.T) {
	f := func(raw []float64, gapSeed uint8) bool {
		coords := []float64{0, 1000}
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				coords = append(coords, math.Mod(math.Abs(v), 1000))
			}
		}
		a := NewAxis(coords, 1e-9)
		gap := float64(gapSeed%100) + 1
		m := a.Merge(gap)
		if m[0] != a[0] || m[len(m)-1] != a[len(a)-1] {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i] <= m[i-1] {
				return false
			}
			// Interior spacing respects the gap (the final cell may be
			// narrow only if the whole axis is narrower than the gap).
			if i < len(m)-1 && m[i]-m[i-1] < gap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAxisWidthAndCell(t *testing.T) {
	a := Axis{0, 10, 25}
	if a.Width(0) != 10 || a.Width(1) != 15 {
		t.Errorf("Width = %g,%g", a.Width(0), a.Width(1))
	}
	lo, hi := a.Cell(1)
	if lo != 10 || hi != 25 {
		t.Errorf("Cell(1) = %g,%g", lo, hi)
	}
}

func TestNewAxisInPlaceMatchesNewAxis(t *testing.T) {
	for _, coords := range [][]float64{
		{5, 1, 3, 1.0000001, 3, 5},
		{0, 600, 90, 300, 90, 300, 120, 330},
		{2},
		nil,
	} {
		want := NewAxis(coords, 1e-3)
		buf := append([]float64(nil), coords...)
		got := NewAxisInPlace(buf, 1e-3)
		if len(got) != len(want) {
			t.Fatalf("NewAxisInPlace(%v) = %v, want %v", coords, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("NewAxisInPlace(%v) = %v, want %v", coords, got, want)
			}
		}
	}
}

func TestMergeInPlaceMatchesMerge(t *testing.T) {
	for _, a := range []Axis{
		{0, 30, 50, 90, 120, 600},
		{0, 10, 20, 30, 40, 50, 60},
		{0, 600},
		{0, 1, 599, 600},
	} {
		want := a.Merge(60)
		buf := append(Axis(nil), a...)
		got := buf.MergeInPlace(60)
		if len(got) != len(want) {
			t.Fatalf("MergeInPlace(%v) = %v, want %v", a, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MergeInPlace(%v) = %v, want %v", a, got, want)
			}
		}
	}
}
