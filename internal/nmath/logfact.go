package nmath

// LogFact caches ln(n!) so that log-binomials inside the congestion
// models' per-cell loops cost three table lookups instead of three
// Lgamma evaluations. The zero value is ready to use.
//
// Growing the table with Ensure is not safe concurrently with any
// other method. Once grown, the table is read-only: any number of
// goroutines may call Ensure (with covered arguments) and LogChoose
// concurrently — the evaluation engine relies on this by pre-growing
// one shared table past every reachable argument before fanning out
// its workers.
type LogFact struct {
	tab []float64 // tab[n] = ln(n!)
}

// Ensure grows the table to cover ln(n!).
func (lf *LogFact) Ensure(n int) {
	if n < len(lf.tab) {
		return
	}
	if len(lf.tab) == 0 {
		lf.tab = append(lf.tab, 0) // ln(0!) = 0
	}
	for i := len(lf.tab); i <= n; i++ {
		lf.tab = append(lf.tab, lf.tab[i-1]+lnInt(i))
	}
}

// LogChoose returns ln C(n, k), or -Inf when the coefficient is zero.
// The caller must have called Ensure(n) first.
func (lf *LogFact) LogChoose(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return negInf
	}
	return lf.tab[n] - lf.tab[k] - lf.tab[n-k]
}
