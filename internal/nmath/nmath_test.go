package nmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {5, 2, 10},
		{10, 5, 252}, {12, 6, 924}, {30, 15, 155117520},
		{5, -1, 0}, {5, 6, 0}, {-1, 0, 0},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); got != c.want {
			t.Errorf("Choose(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestChoosePascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) in the exactly representable
	// regime (all coefficients ≤ 2⁵³, i.e. n ≤ 56).
	for n := 1; n <= 56; n++ {
		for k := 1; k < n; k++ {
			lhs := Choose(n, k)
			rhs := Choose(n-1, k-1) + Choose(n-1, k)
			if lhs != rhs {
				t.Fatalf("Pascal fails at C(%d,%d): %g vs %g", n, k, lhs, rhs)
			}
		}
	}
}

func TestChooseLargeMatchesLog(t *testing.T) {
	for _, c := range [][2]int{{100, 3}, {200, 100}, {500, 250}, {1000, 17}} {
		got := Choose(c[0], c[1])
		want := math.Exp(LogChoose(c[0], c[1]))
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("Choose(%d,%d) = %g, want %g", c[0], c[1], got, want)
		}
	}
}

func TestLogChooseEdge(t *testing.T) {
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose should be -Inf")
	}
	if LogChoose(7, 0) != 0 || LogChoose(7, 7) != 0 {
		t.Error("LogChoose(n,0) and (n,n) should be 0")
	}
	// Symmetry.
	if d := LogChoose(81, 30) - LogChoose(81, 51); math.Abs(d) > 1e-9 {
		t.Errorf("symmetry violated: %g", d)
	}
}

func TestLogChooseAgainstExact(t *testing.T) {
	for n := 0; n <= 60; n++ {
		for k := 0; k <= n; k++ {
			want := math.Log(Choose(n, k))
			got := LogChoose(n, k)
			if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("LogChoose(%d,%d) = %g, want %g", n, k, got, want)
			}
		}
	}
}

func TestChooseBig(t *testing.T) {
	v, ok := ChooseBig(62, 31)
	if !ok || v != 465428353255261088 {
		t.Errorf("ChooseBig(62,31) = %d,%v", v, ok)
	}
	if v, ok := ChooseBig(10, 3); !ok || v != 120 {
		t.Errorf("ChooseBig(10,3) = %d,%v", v, ok)
	}
	if _, ok := ChooseBig(200, 100); ok {
		t.Error("ChooseBig(200,100) should overflow")
	}
	if v, ok := ChooseBig(5, 9); !ok || v != 0 {
		t.Errorf("ChooseBig out of range = %d,%v", v, ok)
	}
}

func TestChooseBigMatchesChoose(t *testing.T) {
	for n := 0; n <= 62; n++ {
		for k := 0; k <= n; k++ {
			v, ok := ChooseBig(n, k)
			if !ok || v > 1<<53 {
				continue
			}
			if float64(v) != Choose(n, k) {
				t.Fatalf("ChooseBig(%d,%d) = %d, Choose = %g", n, k, v, Choose(n, k))
			}
		}
	}
}

func TestLogFactMatchesLogChoose(t *testing.T) {
	var lf LogFact
	lf.Ensure(500)
	for _, c := range [][2]int{{0, 0}, {1, 1}, {10, 4}, {62, 31}, {500, 137}, {500, 499}} {
		got := lf.LogChoose(c[0], c[1])
		want := LogChoose(c[0], c[1])
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("LogFact.LogChoose(%d,%d) = %g, want %g", c[0], c[1], got, want)
		}
	}
	if !math.IsInf(lf.LogChoose(10, 11), -1) {
		t.Error("invalid LogFact.LogChoose should be -Inf")
	}
}

func TestLogFactEnsureIdempotent(t *testing.T) {
	var lf LogFact
	lf.Ensure(10)
	v := lf.LogChoose(10, 5)
	lf.Ensure(5) // shrinking request is a no-op
	lf.Ensure(20)
	if lf.LogChoose(10, 5) != v {
		t.Error("Ensure changed existing values")
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	got := Simpson(func(x float64) float64 { return NormalPDF(x, 3, 2) }, 3-8*2, 3+8*2, 2000)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("∫pdf = %g, want 1", got)
	}
}

func TestNormalPDFDegenerate(t *testing.T) {
	if NormalPDF(1, 0, 0) != 0 || NormalPDF(1, 0, -2) != 0 {
		t.Error("non-positive sigma should yield 0 density")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %g", got)
	}
	if got := NormalCDF(1.96, 0, 1); math.Abs(got-0.9750021) > 1e-5 {
		t.Errorf("CDF(1.96) = %g", got)
	}
	if NormalCDF(-1, 0, 0) != 0 || NormalCDF(1, 0, 0) != 1 {
		t.Error("degenerate CDF should be a step")
	}
}

func TestSimpsonPolynomialExact(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return 2*x*x*x - x*x + 4*x - 7 }
	got := Simpson(f, -1, 3, 2)
	want := func(x float64) float64 { return x*x*x*x/2 - x*x*x/3 + 2*x*x - 7*x }
	w := want(3) - want(-1)
	if math.Abs(got-w) > 1e-9 {
		t.Errorf("Simpson cubic = %g, want %g", got, w)
	}
}

func TestSimpsonOddNRoundsUp(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	a := Simpson(f, 0, 1, 3)
	b := Simpson(f, 0, 1, 4)
	if a != b {
		t.Errorf("odd n should round up: %g vs %g", a, b)
	}
	if Simpson(f, 2, 2, 10) != 0 {
		t.Error("zero-width integral should be 0")
	}
}

func TestSimpsonConvergence(t *testing.T) {
	f := math.Exp
	want := math.E - 1
	prev := math.Abs(Simpson(f, 0, 1, 2) - want)
	for _, n := range []int{4, 8, 16} {
		cur := math.Abs(Simpson(f, 0, 1, n) - want)
		if cur >= prev {
			t.Errorf("no convergence at n=%d: %g >= %g", n, cur, prev)
		}
		prev = cur
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g", w.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %g", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Error("empty Welford should be all zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 {
		t.Errorf("single-sample: mean=%g var=%g", w.Mean(), w.Var())
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		scale := 1 + math.Abs(v)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-v)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %g", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anti-correlation = %g", got)
	}
	if Pearson(x, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("zero-variance series should give 0")
	}
	if Pearson(x, x[:3]) != 0 {
		t.Error("mismatched lengths should give 0")
	}
}

func TestSlopeSimilarity(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{5, 6, 7, 8} // same slopes, shifted
	if got := SlopeSimilarity(a, b); got != 0 {
		t.Errorf("shifted identical slopes = %g, want 0", got)
	}
	c := []float64{0, 2, 4, 6} // slope 2 vs 1
	if got := SlopeSimilarity(a, c); math.Abs(got-1) > 1e-12 {
		t.Errorf("got %g, want 1", got)
	}
	if !math.IsNaN(SlopeSimilarity(a, c[:2])) {
		t.Error("mismatched lengths should give NaN")
	}
}
