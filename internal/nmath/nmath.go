// Package nmath provides the numerical substrate for probabilistic
// congestion analysis: log-space binomial coefficients (monotone route
// counts overflow float64 well below realistic grid sizes), the normal
// density used by the paper's Theorem 1 approximation, Simpson's rule
// for its definite integrals, and streaming statistics for the
// experiment harness.
package nmath

import "math"

var negInf = math.Inf(-1)

// lnInt returns ln(i) for positive i.
func lnInt(i int) float64 { return math.Log(float64(i)) }

// LogChoose returns ln C(n, k). It returns negative infinity when the
// coefficient is zero (k < 0 or k > n) so that exp(LogChoose) is the
// coefficient itself for every integer pair.
func LogChoose(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// Choose returns C(n, k) as a float64. It is exact whenever the value
// is exactly representable (≤ 2⁵³) and best-effort (via Lgamma)
// beyond; +Inf when the true value exceeds float64.
func Choose(n, k int) float64 {
	if v, ok := ChooseBig(n, k); ok && v <= 1<<53 {
		return float64(v)
	}
	if k < 0 || n < 0 || k > n {
		return 0
	}
	return math.Exp(LogChoose(n, k))
}

// ChooseBig returns C(n,k) exactly as a big product when it fits in
// uint64, and ok=false otherwise. Used by ablation benchmarks comparing
// exact integer path counting with the log-space pipeline.
func ChooseBig(n, k int) (v uint64, ok bool) {
	if k < 0 || n < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	v = 1
	for i := 1; i <= k; i++ {
		// v = v * (n-k+i) / i, keeping the intermediate exact:
		// v is always divisible by i after multiplying because
		// C(n-k+i, i) is an integer.
		m := uint64(n - k + i)
		hi, lo := mul64(v, m)
		if hi != 0 {
			return 0, false
		}
		v = lo / uint64(i)
	}
	return v, true
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(N(mu, sigma²) <= x).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// Simpson integrates f over [a, b] with n subintervals (rounded up to
// even) using composite Simpson's rule. The paper's Theorem 1 integrals
// are evaluated this way "in constant time": n is fixed, independent of
// the IR-grid size.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if a == b {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 when n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Pearson returns the Pearson correlation coefficient of the paired
// samples x and y. It returns 0 when the inputs are degenerate
// (mismatched or short lengths, or zero variance).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	n := float64(len(x))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SlopeSimilarity compares the step-to-step slopes of two equally long
// series, returning the mean absolute slope difference. Experiment 2
// uses it to quantify "the slopes of curve A and B are more similar
// than the slopes of curve A and C".
func SlopeSimilarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	var sum float64
	for i := 1; i < len(a); i++ {
		sum += math.Abs((a[i] - a[i-1]) - (b[i] - b[i-1]))
	}
	return sum / float64(len(a)-1)
}
