// Package bench synthesizes floorplanning circuits that match the
// published statistics of the five MCNC benchmarks the paper evaluates
// (apte, xerox, hp, ami33, ami49). The original YAL files are licensed
// artifacts not shipped with this repository; the congestion models
// consume only module rectangles and pin incidence, both of which the
// synthetic circuits reproduce at the same scale (module count, total
// module area, net count, pin count and net-degree mix), so relative
// model comparisons are preserved. Generation is fully deterministic:
// the same name always yields the same circuit.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"irgrid/internal/netlist"
)

// Spec describes the statistics a synthetic circuit must match.
type Spec struct {
	Name      string
	Modules   int
	Nets      int
	Pins      int     // total net terminals; the generator matches this within rounding
	AreaMM2   float64 // total module area in mm²
	MaxDegree int     // largest net degree to generate
	Seed      int64
}

// Specs lists the five MCNC benchmarks with their published statistics
// (module/net/pin counts from the MCNC floorplanning suite; total
// module areas consistent with the packed areas in the paper's Table 1).
var Specs = []Spec{
	{Name: "apte", Modules: 9, Nets: 97, Pins: 287, AreaMM2: 46.56, MaxDegree: 10, Seed: 9001},
	{Name: "xerox", Modules: 10, Nets: 203, Pins: 698, AreaMM2: 19.35, MaxDegree: 10, Seed: 9002},
	{Name: "hp", Modules: 11, Nets: 83, Pins: 264, AreaMM2: 8.83, MaxDegree: 10, Seed: 9003},
	{Name: "ami33", Modules: 33, Nets: 123, Pins: 480, AreaMM2: 1.156, MaxDegree: 12, Seed: 9004},
	{Name: "ami49", Modules: 49, Nets: 408, Pins: 931, AreaMM2: 35.45, MaxDegree: 12, Seed: 9005},
}

// Names returns the benchmark names in canonical order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// Load returns the named synthetic benchmark circuit. It returns an
// error for unknown names.
func Load(name string) (*netlist.Circuit, error) {
	for _, s := range Specs {
		if s.Name == name {
			return Generate(s), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
}

// MustLoad is Load that panics on error; for tests and examples.
func MustLoad(name string) *netlist.Circuit {
	c, err := Load(name)
	if err != nil {
		panic(err)
	}
	return c
}

// SoftVariant returns a copy of the circuit whose non-pad modules are
// soft with the given aspect-ratio range. It supports soft-module
// experiments on the benchmark suite without regenerating netlists.
func SoftVariant(c *netlist.Circuit, minAspect, maxAspect float64) *netlist.Circuit {
	out := &netlist.Circuit{
		Name:    c.Name + "-soft",
		Modules: append([]netlist.Module(nil), c.Modules...),
		Nets:    c.Nets,
	}
	for i := range out.Modules {
		if !out.Modules[i].Pad {
			out.Modules[i].MinAspect = minAspect
			out.Modules[i].MaxAspect = maxAspect
		}
	}
	return out
}

// Generate builds a circuit matching spec. Module areas follow a
// log-normal spread (real MCNC blocks span more than an order of
// magnitude) rescaled to the exact total; aspect ratios lie in
// [0.4, 2.5]; net degrees follow the heavily 2/3-pin-dominated mix of
// the MCNC suite, adjusted so the total pin count matches the spec.
func Generate(spec Spec) *netlist.Circuit {
	rng := rand.New(rand.NewSource(spec.Seed))
	c := &netlist.Circuit{Name: spec.Name}

	// --- modules ---
	areas := make([]float64, spec.Modules)
	var total float64
	for i := range areas {
		// Log-normal-ish spread: exp(N(0, 0.9)) gives ~20x range.
		areas[i] = math.Exp(rng.NormFloat64() * 0.9)
		total += areas[i]
	}
	scale := spec.AreaMM2 * 1e6 / total // µm² per unit
	for i := range areas {
		a := areas[i] * scale
		aspect := 0.4 + rng.Float64()*2.1 // [0.4, 2.5]
		w := math.Sqrt(a * aspect)
		h := a / w
		c.Modules = append(c.Modules, netlist.Module{
			Name: fmt.Sprintf("%s_m%02d", spec.Name, i),
			W:    math.Round(w),
			H:    math.Round(h),
		})
	}

	// --- net degrees ---
	degrees := netDegrees(rng, spec)

	// --- nets ---
	for i, d := range degrees {
		net := netlist.Net{Name: fmt.Sprintf("n%03d", i)}
		perm := rng.Perm(spec.Modules)
		for j := 0; j < d; j++ {
			m := perm[j%spec.Modules]
			net.Pins = append(net.Pins, netlist.PinRef{
				Module: m,
				FX:     snap(rng.Float64()),
				FY:     snap(rng.Float64()),
			})
		}
		c.Nets = append(c.Nets, net)
	}
	return c
}

// snap quantises a pin offset fraction to 1/20ths so that emitted YAL
// files stay readable and re-parse to identical values.
func snap(f float64) float64 { return math.Round(f*20) / 20 }

// netDegrees produces spec.Nets degrees with the MCNC-like mix
// (2-pin ~55%, 3-pin ~25%, 4-pin ~10%, the rest a thin tail up to
// MaxDegree) and then adjusts individual degrees so the total equals
// spec.Pins exactly when feasible.
func netDegrees(rng *rand.Rand, spec Spec) []int {
	maxDeg := spec.MaxDegree
	if maxDeg < 2 {
		maxDeg = 2
	}
	if maxDeg > spec.Modules {
		maxDeg = spec.Modules
	}
	deg := make([]int, spec.Nets)
	sum := 0
	for i := range deg {
		r := rng.Float64()
		var d int
		switch {
		case r < 0.55:
			d = 2
		case r < 0.80:
			d = 3
		case r < 0.90:
			d = 4
		default:
			d = 5 + rng.Intn(maxDeg-4)
		}
		if d > maxDeg {
			d = maxDeg
		}
		deg[i] = d
		sum += d
	}
	// Nudge degrees toward the target pin count.
	target := spec.Pins
	lo, hi := 2*spec.Nets, maxDeg*spec.Nets
	if target < lo {
		target = lo
	}
	if target > hi {
		target = hi
	}
	order := rng.Perm(spec.Nets)
	for i := 0; sum != target; i = (i + 1) % spec.Nets {
		j := order[i]
		if sum < target && deg[j] < maxDeg {
			deg[j]++
			sum++
		} else if sum > target && deg[j] > 2 {
			deg[j]--
			sum--
		}
	}
	sort.Ints(deg)
	return deg
}
