package bench

import (
	"bytes"
	"math"
	"testing"

	"irgrid/internal/netlist"
)

func TestAllBenchmarksValid(t *testing.T) {
	for _, name := range Names() {
		c := MustLoad(name)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestStatisticsMatchSpecs(t *testing.T) {
	for _, s := range Specs {
		c := Generate(s)
		if len(c.Modules) != s.Modules {
			t.Errorf("%s: %d modules, want %d", s.Name, len(c.Modules), s.Modules)
		}
		if len(c.Nets) != s.Nets {
			t.Errorf("%s: %d nets, want %d", s.Name, len(c.Nets), s.Nets)
		}
		if got := c.PinCount(); got != s.Pins {
			t.Errorf("%s: %d pins, want %d", s.Name, got, s.Pins)
		}
		area := c.TotalModuleArea() / 1e6
		if math.Abs(area-s.AreaMM2)/s.AreaMM2 > 0.02 {
			t.Errorf("%s: area %.3f mm², want %.3f (±2%% for rounding)", s.Name, area, s.AreaMM2)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := MustLoad("ami33")
	b := MustLoad("ami33")
	if len(a.Modules) != len(b.Modules) || len(a.Nets) != len(b.Nets) {
		t.Fatal("structure differs across generations")
	}
	for i := range a.Modules {
		if a.Modules[i] != b.Modules[i] {
			t.Fatalf("module %d differs: %+v vs %+v", i, a.Modules[i], b.Modules[i])
		}
	}
	for i := range a.Nets {
		for j := range a.Nets[i].Pins {
			if a.Nets[i].Pins[j] != b.Nets[i].Pins[j] {
				t.Fatalf("net %d pin %d differs", i, j)
			}
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustLoad("nope")
}

func TestNetDegreeMix(t *testing.T) {
	// Net degrees must be dominated by 2- and 3-pin nets and bounded.
	for _, s := range Specs {
		c := Generate(s)
		small, total := 0, 0
		for _, n := range c.Nets {
			d := n.Degree()
			if d < 2 || d > s.MaxDegree {
				t.Fatalf("%s: net %q has degree %d", s.Name, n.Name, d)
			}
			if d <= 3 {
				small++
			}
			total++
		}
		if frac := float64(small) / float64(total); frac < 0.5 {
			t.Errorf("%s: only %.0f%% of nets are 2-3 pin", s.Name, frac*100)
		}
	}
}

func TestNetPinsOnDistinctModulesMostly(t *testing.T) {
	// Pins of one net should favour distinct modules (a net connecting
	// a module to itself contributes nothing to floorplanning).
	c := MustLoad("ami49")
	for _, n := range c.Nets {
		if n.Degree() > len(c.Modules) {
			continue
		}
		seen := map[int]bool{}
		for _, p := range n.Pins {
			if seen[p.Module] {
				t.Fatalf("net %q repeats module %d", n.Name, p.Module)
			}
			seen[p.Module] = true
		}
	}
}

func TestRoundTripThroughYAL(t *testing.T) {
	c := MustLoad("apte")
	var buf bytes.Buffer
	if err := netlist.WriteYAL(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := netlist.ReadYAL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Modules) != len(c.Modules) || len(got.Nets) != len(c.Nets) {
		t.Fatal("round trip changed structure")
	}
	if got.PinCount() != c.PinCount() {
		t.Errorf("pins %d vs %d", got.PinCount(), c.PinCount())
	}
}

func TestModuleAspectRatios(t *testing.T) {
	for _, name := range Names() {
		c := MustLoad(name)
		for _, m := range c.Modules {
			ar := m.W / m.H
			if ar < 0.2 || ar > 5.1 {
				t.Errorf("%s %s: aspect ratio %.2f out of range", name, m.Name, ar)
			}
		}
	}
}

func TestSoftVariant(t *testing.T) {
	c := MustLoad("ami33")
	s := SoftVariant(c, 0.25, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "ami33-soft" {
		t.Errorf("name = %q", s.Name)
	}
	for i, m := range s.Modules {
		if !m.Pad && !m.Soft() {
			t.Fatalf("module %d not soft", i)
		}
		if m.Area() != c.Modules[i].Area() {
			t.Fatalf("module %d area changed", i)
		}
	}
	// The original is untouched.
	for _, m := range c.Modules {
		if m.Soft() {
			t.Fatal("SoftVariant mutated the source circuit")
		}
	}
}
