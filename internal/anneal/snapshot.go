package anneal

import (
	"context"
	"errors"
	"math/rand"
)

// Typed results of an interrupted run. Partial results are first-class:
// when Run returns one of these errors it still returns the best state
// found so far and the stats of the work actually done.
var (
	// ErrCanceled reports that the run's context was canceled.
	ErrCanceled = errors.New("run canceled")
	// ErrDeadline reports that the run's context deadline expired.
	ErrDeadline = errors.New("run deadline exceeded")
)

// ctxErr maps a context error onto the package's typed sentinels (nil
// while the context is live).
func ctxErr(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadline
	default:
		return ErrCanceled
	}
}

// Snapshot is the full resumable state of an anneal at a temperature-
// step boundary: the schedule position, the exact PRNG position (as a
// draw count from the seed), both search states with their costs, and
// the accumulated stats. Run(cfg{Resume: snap}) continues the search
// bit-identically to a run that was never interrupted: snapshots are
// only ever taken at step boundaries, so a run canceled mid-step and
// resumed replays the interrupted step from its start with the exact
// RNG state it originally began with.
//
// Cur and Best are anneal.State interfaces; serializing a Snapshot is
// the caller's job (the fplan layer flattens them to layout encodings).
type Snapshot struct {
	// Step is the next temperature step to execute.
	Step int
	// Temp is the temperature of that step.
	Temp float64
	// Draws is the number of PRNG source values consumed so far; the
	// resume path re-derives the generator state by fast-forwarding a
	// fresh Seed-ed source this many steps.
	Draws uint64
	// Cur and Best are the current and best-so-far states.
	Cur, Best State
	// CurCost and BestCost are their cached costs.
	CurCost, BestCost float64
	// Stats is the work accounted so far.
	Stats Stats
}

// countingSource wraps the standard PRNG source and counts every value
// drawn, making the generator's position serializable: a fresh source
// fast-forwarded Draws steps is bit-identical to the original. Both
// Int63 and Uint64 advance the underlying generator exactly one step.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	// rand.NewSource's concrete type implements Source64.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// fastForward advances the source to draw position n.
func (s *countingSource) fastForward(n uint64) {
	for s.n < n {
		s.n++
		s.src.Uint64()
	}
}
