package anneal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"irgrid/internal/obs"
)

func TestStatsCountCalibrationMovesSeparately(t *testing.T) {
	cfg := Config{Seed: 1, MovesPerTemp: 20, MaxTemps: 8, CalibrationMoves: 13}
	_, st, _ := Run(nil, cfg, quadState{x: 50})
	if st.CalibrationMoves != 13 {
		t.Errorf("CalibrationMoves = %d, want 13", st.CalibrationMoves)
	}
	// Moves counts search moves only: exactly MovesPerTemp per
	// executed temperature, with no calibration probes mixed in.
	if st.Moves != 20*st.Temps {
		t.Errorf("Moves = %d, want %d (MovesPerTemp × Temps)", st.Moves, 20*st.Temps)
	}
}

func TestStatsUphillAndBestStep(t *testing.T) {
	_, st, _ := Run(nil, Config{Seed: 2, MovesPerTemp: 40, MaxTemps: 40}, quadState{x: 60})
	if st.UphillAccepted <= 0 {
		t.Error("a hot anneal should accept some uphill moves")
	}
	if st.UphillAccepted > st.Accepted {
		t.Errorf("UphillAccepted %d > Accepted %d", st.UphillAccepted, st.Accepted)
	}
	if st.BestStep < 0 || st.BestStep >= st.Temps {
		t.Errorf("BestStep = %d with %d temps", st.BestStep, st.Temps)
	}
	// A start at the optimum is never improved.
	_, st, _ = Run(nil, Config{Seed: 2, MovesPerTemp: 10, MaxTemps: 3}, quadState{x: 7})
	if st.BestStep != -1 {
		t.Errorf("BestStep = %d, want -1 for an unimproved initial state", st.BestStep)
	}
}

func TestRegistryMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Seed: 3, MovesPerTemp: 25, MaxTemps: 12, CalibrationMoves: 7, Obs: reg}
	_, st, _ := Run(nil, cfg, quadState{x: 80})
	snap := reg.Snapshot()
	for name, want := range map[string]int{
		"anneal_moves_total":             st.Moves,
		"anneal_calibration_moves_total": st.CalibrationMoves,
		"anneal_accepted_total":          st.Accepted,
		"anneal_temps_total":             st.Temps,
	} {
		if got := int(snap[name]); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap["anneal_cost_best"] != st.FinalCost {
		t.Errorf("anneal_cost_best = %g, want %g", snap["anneal_cost_best"], st.FinalCost)
	}
	if snap["anneal_temperature"] != st.FinalTemp {
		t.Errorf("anneal_temperature = %g, want %g", snap["anneal_temperature"], st.FinalTemp)
	}
}

func TestTraceEventsMatchRun(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	cfg := Config{Seed: 4, MovesPerTemp: 15, MaxTemps: 10, Trace: tr}
	_, st, _ := Run(nil, cfg, quadState{x: 40})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var calib int
	var temps []obs.TraceRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		switch r.Ev {
		case obs.EvCalibration:
			calib++
			if r.InitTemp != st.InitTemp || r.Moves != st.CalibrationMoves {
				t.Errorf("calibration event %+v vs stats %+v", r, st)
			}
		case obs.EvTemp:
			temps = append(temps, r)
		}
	}
	if calib != 1 {
		t.Errorf("%d calibration events, want 1", calib)
	}
	if len(temps) != st.Temps {
		t.Fatalf("%d temp events, want %d", len(temps), st.Temps)
	}
	for i, r := range temps {
		if r.Step != i {
			t.Errorf("temp event %d has step %d", i, r.Step)
		}
		if i > 0 && r.Temp >= temps[i-1].Temp {
			t.Error("temperature did not decay")
		}
	}
	if last := temps[len(temps)-1]; last.Best != st.FinalCost || last.Temp != st.FinalTemp {
		t.Errorf("last temp event %+v disagrees with stats %+v", last, st)
	}
}

// TestInstrumentedRunBitIdentical: attaching a registry and a tracer
// must not change a single decision of the anneal.
func TestInstrumentedRunBitIdentical(t *testing.T) {
	cfg := Config{Seed: 9, MovesPerTemp: 30, MaxTemps: 25}
	plainBest, plainStats, _ := Run(nil, cfg, quadState{x: 77})

	var buf bytes.Buffer
	cfg.Obs = obs.NewRegistry()
	cfg.Trace = obs.NewTracer(&buf)
	tracedBest, tracedStats, _ := Run(nil, cfg, quadState{x: 77})

	if plainBest.(quadState).x != tracedBest.(quadState).x {
		t.Errorf("best state differs: %v vs %v", plainBest, tracedBest)
	}
	if plainStats != tracedStats {
		t.Errorf("stats differ:\nplain  %+v\ntraced %+v", plainStats, tracedStats)
	}
	cfg.Trace.Close()
	if buf.Len() == 0 {
		t.Error("traced run produced an empty trace")
	}
}
