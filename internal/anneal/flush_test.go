package anneal

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"irgrid/internal/obs"
)

// lockedBuffer lets the OnTemperature callback inspect what the
// tracer has physically written so far.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceFlushedAtTemperatureBoundaries pins the bounded-staleness
// guarantee: the annealer flushes the trace after every temperature
// step, so at any point mid-run the physical trace lags by at most
// one step — a crash loses at most the step in flight.
func TestTraceFlushedAtTemperatureBoundaries(t *testing.T) {
	var out lockedBuffer
	tr := obs.NewTracer(&out)
	checked := 0
	cfg := Config{
		Seed: 5, MovesPerTemp: 10, MaxTemps: 6,
		Trace: tr,
		OnTemperature: func(step int, _ float64, _, _ State) {
			if step == 0 {
				return // nothing must have been flushed yet
			}
			// The flush for this step runs after the callback; the
			// previous step's temp event must already be on disk.
			written := out.String()
			wanted := `"step":` + itoa(step-1)
			if !strings.Contains(written, wanted) {
				t.Errorf("at step %d the flushed trace is missing step %d:\n%s",
					step, step-1, written)
			}
			checked++
		},
	}
	_, st, err := Run(nil, cfg, quadState{x: 50})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 || st.Temps < 2 {
		t.Fatalf("callback checked %d boundaries over %d temps", checked, st.Temps)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close every executed step is present.
	var temps int
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rec obs.TraceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if rec.Ev == obs.EvTemp {
			temps++
		}
	}
	if temps != st.Temps {
		t.Errorf("%d temp events, want %d", temps, st.Temps)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestAnnealSpanRecorderStatusWiring drives the annealer with the
// full PR 7 observability set attached and checks each sink saw the
// run, without asserting on timing values.
func TestAnnealSpanRecorderStatusWiring(t *testing.T) {
	spans := obs.NewSpans()
	root := spans.Start("run")
	rec := obs.NewRecorder(1 << 10)
	st := obs.NewStatus()
	st.Begin("quad", "none", 5)
	cfg := Config{
		Seed: 5, MovesPerTemp: 10, MaxTemps: 6, CalibrationMoves: 4,
		Span: root, Recorder: rec, Status: st,
	}
	_, stats, err := Run(nil, cfg, quadState{x: 50})
	root.End()
	if err != nil {
		t.Fatal(err)
	}

	byPath := map[string]obs.SpanAggregate{}
	for _, a := range spans.Aggregates() {
		byPath[a.Path] = a
	}
	if byPath["run/calibrate"].Count != 1 {
		t.Errorf("run/calibrate count %d, want 1 (aggregates %v)", byPath["run/calibrate"].Count, byPath)
	}
	if int(byPath["run/temp"].Count) != stats.Temps {
		t.Errorf("run/temp count %d, want %d", byPath["run/temp"].Count, stats.Temps)
	}

	var moves, tempsEv int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case obs.RecMove:
			moves++
		case obs.RecTemp:
			tempsEv++
		}
	}
	if moves != stats.Moves {
		t.Errorf("%d move events, want %d", moves, stats.Moves)
	}
	if tempsEv != stats.Temps {
		t.Errorf("%d temp events, want %d", tempsEv, stats.Temps)
	}

	snap := st.Snapshot()
	if snap.Step != stats.Temps || snap.MaxSteps != 6 {
		t.Errorf("status snapshot %+v, want step %d of 6", snap, stats.Temps)
	}
	if snap.Moves != int64(stats.Moves) {
		t.Errorf("status moves %d, want %d", snap.Moves, stats.Moves)
	}
}
