package anneal

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// quadState is a 1-D test problem: minimize (x-7)² over integers with
// ±1 neighbourhood.
type quadState struct{ x int }

func (s quadState) Cost() float64 {
	d := float64(s.x - 7)
	return d * d
}

func (s quadState) Neighbor(rng *rand.Rand) State {
	if rng.Intn(2) == 0 {
		return quadState{s.x + 1}
	}
	return quadState{s.x - 1}
}

func TestRunFindsOptimum(t *testing.T) {
	best, st, _ := Run(nil, Config{Seed: 1, MovesPerTemp: 50, MaxTemps: 60}, quadState{x: -40})
	if got := best.(quadState).x; got != 7 {
		t.Errorf("best x = %d, want 7", got)
	}
	if st.FinalCost != 0 {
		t.Errorf("final cost = %g", st.FinalCost)
	}
	if st.Moves == 0 || st.Accepted == 0 || st.Temps == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestRunReproducible(t *testing.T) {
	cfg := Config{Seed: 99, MovesPerTemp: 30, MaxTemps: 20}
	b1, s1, _ := Run(nil, cfg, quadState{x: 100})
	b2, s2, _ := Run(nil, cfg, quadState{x: 100})
	if b1.(quadState).x != b2.(quadState).x {
		t.Error("same seed gave different best states")
	}
	if s1 != s2 {
		t.Errorf("same seed gave different stats: %+v vs %+v", s1, s2)
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	// Different seeds should (almost surely) take different paths.
	_, s1, _ := Run(nil, Config{Seed: 1, MovesPerTemp: 30, MaxTemps: 10, MinAcceptRate: 1e-9}, quadState{x: 100})
	_, s2, _ := Run(nil, Config{Seed: 2, MovesPerTemp: 30, MaxTemps: 10, MinAcceptRate: 1e-9}, quadState{x: 100})
	if s1.Accepted == s2.Accepted && s1.FinalCost == s2.FinalCost && s1.InitTemp == s2.InitTemp {
		t.Error("different seeds produced identical trajectories (suspicious)")
	}
}

func TestOnTemperatureHook(t *testing.T) {
	var steps []int
	var costs []float64
	var curCosts []float64
	cfg := Config{
		Seed: 3, MovesPerTemp: 20, MaxTemps: 15,
		OnTemperature: func(step int, temp float64, cur, best State) {
			steps = append(steps, step)
			costs = append(costs, best.Cost())
			curCosts = append(curCosts, cur.Cost())
			if temp <= 0 {
				t.Errorf("non-positive temperature %g", temp)
			}
		},
	}
	_, st, _ := Run(nil, cfg, quadState{x: 50})
	if len(steps) != st.Temps {
		t.Fatalf("hook called %d times, %d temps", len(steps), st.Temps)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] != steps[i-1]+1 {
			t.Error("steps not sequential")
		}
		if costs[i] > costs[i-1] {
			t.Error("best cost increased between temperature steps")
		}
		// The current state may be worse than the best, never better.
		if curCosts[i] < costs[i]-1e-12 {
			t.Error("current cost fell below the running best")
		}
	}
}

func TestBestNeverWorseThanInitial(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		init := quadState{x: 3}
		best, st, _ := Run(nil, Config{Seed: seed, MovesPerTemp: 10, MaxTemps: 5}, init)
		if best.Cost() > init.Cost() {
			t.Errorf("seed %d: best %g worse than initial %g", seed, best.Cost(), init.Cost())
		}
		if st.InitCost != init.Cost() {
			t.Errorf("InitCost = %g", st.InitCost)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InitAccept != 0.95 || c.Cooling != 0.9 || c.MovesPerTemp != 100 ||
		c.MinAcceptRate != 0.02 || c.MaxTemps != 200 || c.CalibrationMoves != 50 {
		t.Errorf("defaults = %+v", c)
	}
	// Out-of-range values are replaced too.
	c2 := Config{InitAccept: 1.5, Cooling: -1}.withDefaults()
	if c2.InitAccept != 0.95 || c2.Cooling != 0.9 {
		t.Errorf("out-of-range defaults = %+v", c2)
	}
}

// flatState has constant cost: the annealer must terminate and not
// produce NaN temperatures.
type flatState struct{}

func (flatState) Cost() float64             { return 5 }
func (flatState) Neighbor(*rand.Rand) State { return flatState{} }

func TestFlatLandscape(t *testing.T) {
	best, st, _ := Run(nil, Config{Seed: 4, MovesPerTemp: 10, MaxTemps: 10}, flatState{})
	if best.Cost() != 5 {
		t.Error("flat cost changed")
	}
	if math.IsNaN(st.InitTemp) || st.InitTemp <= 0 {
		t.Errorf("bad initial temperature %g", st.InitTemp)
	}
}

func TestEarlyStopOnLowAcceptance(t *testing.T) {
	// A steep landscape at low temperature stops before MaxTemps.
	_, st, _ := Run(nil, Config{
		Seed: 5, MovesPerTemp: 40, MaxTemps: 10000,
		Cooling: 0.5, MinAcceptRate: 0.5,
	}, quadState{x: 1000})
	if st.Temps == 10000 {
		t.Error("anneal never stopped early")
	}
}

// moveAwareState wraps quadState and tallies accept/reject
// notifications in a shared ledger.
type moveAwareState struct {
	quadState
	ledger *moveLedger
}

type moveLedger struct {
	accepts, rejects int
}

func (s moveAwareState) Neighbor(rng *rand.Rand) State {
	n := s.quadState.Neighbor(rng).(quadState)
	return moveAwareState{quadState: n, ledger: s.ledger}
}

func (s moveAwareState) AcceptMove() { s.ledger.accepts++ }
func (s moveAwareState) RejectMove() { s.ledger.rejects++ }

// TestMoveAwareNotifications checks the protocol: every search move
// gets exactly one notification, accepts match Stats.Accepted, the
// calibration probes get none, and the trajectory is bit-identical to
// the same run without MoveAware.
func TestMoveAwareNotifications(t *testing.T) {
	cfg := Config{Seed: 7, MaxTemps: 12, MovesPerTemp: 40, CalibrationMoves: 20}

	ledger := &moveLedger{}
	aware, awareStats, err := Run(context.Background(), cfg,
		moveAwareState{quadState: quadState{x: 90}, ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	plain, plainStats, err := Run(context.Background(), cfg, quadState{x: 90})
	if err != nil {
		t.Fatal(err)
	}

	if ledger.accepts+ledger.rejects != awareStats.Moves {
		t.Fatalf("notifications %d+%d != moves %d",
			ledger.accepts, ledger.rejects, awareStats.Moves)
	}
	if ledger.accepts != awareStats.Accepted {
		t.Fatalf("accept notifications %d != Stats.Accepted %d",
			ledger.accepts, awareStats.Accepted)
	}
	if got, want := aware.(moveAwareState).x, plain.(quadState).x; got != want {
		t.Fatalf("MoveAware run diverged: best x %d vs %d", got, want)
	}
	if awareStats.Moves != plainStats.Moves || awareStats.Accepted != plainStats.Accepted {
		t.Fatalf("stats diverged: %+v vs %+v", awareStats, plainStats)
	}
}
