package anneal

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// trip cancels a context after a fixed number of Cost evaluations,
// letting a test interrupt a run at an exact point of its trajectory.
type trip struct {
	calls    int
	cancelAt int
	cancel   context.CancelFunc
}

// tripState is quadState wired through a trip counter.
type tripState struct {
	x int
	t *trip
}

func (s tripState) Cost() float64 {
	s.t.calls++
	if s.t.calls == s.t.cancelAt {
		s.t.cancel()
	}
	d := float64(s.x - 7)
	return d * d
}

func (s tripState) Neighbor(rng *rand.Rand) State {
	if rng.Intn(2) == 0 {
		return tripState{s.x + 1, s.t}
	}
	return tripState{s.x - 1, s.t}
}

func TestRunAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	init := quadState{x: 42}
	best, st, err := Run(ctx, Config{Seed: 1}, init)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Best-so-far on an immediately-canceled run is the initial state.
	if best.(quadState) != init {
		t.Errorf("best = %+v, want the initial state", best)
	}
	if st.Moves != 0 || st.Temps != 0 {
		t.Errorf("canceled-before-start run did work: %+v", st)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	best, _, err := Run(ctx, Config{Seed: 1}, quadState{x: 42})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if best == nil {
		t.Fatal("best is nil; partial results must be first-class")
	}
}

func TestRunCancelMidCalibration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Draw 1 initial Cost, then trip inside the 50 calibration probes.
	tr := &trip{cancelAt: 1 + 10, cancel: cancel}
	best, st, err := Run(ctx, Config{Seed: 1, CalibrationMoves: 50}, tripState{x: 42, t: tr})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st.CalibrationMoves == 0 || st.CalibrationMoves >= 50 {
		t.Errorf("CalibrationMoves = %d, want interrupted mid-calibration", st.CalibrationMoves)
	}
	if st.Moves != 0 {
		t.Errorf("Moves = %d before calibration finished", st.Moves)
	}
	if best == nil {
		t.Fatal("best is nil")
	}
}

func TestRunCancelMidTemperature(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Seed: 1, CalibrationMoves: 20, MovesPerTemp: 100, MaxTemps: 50}
	// 1 initial + 20 calibration evaluations, then trip at search move 30.
	tr := &trip{cancelAt: 1 + 20 + 30, cancel: cancel}
	var sink []*Snapshot
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(s *Snapshot) error { sink = append(sink, s); return nil }
	best, st, err := Run(ctx, cfg, tripState{x: 420, t: tr})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st.Moves == 0 || st.Moves >= 100 {
		t.Errorf("Moves = %d, want interrupted inside the first temperature", st.Moves)
	}
	if best.Cost() > float64((420-7)*(420-7)) {
		t.Errorf("best cost %g worse than initial", best.Cost())
	}
	// The cancellation path must write one final boundary snapshot.
	if len(sink) == 0 {
		t.Fatal("no checkpoint written on cancellation")
	}
	last := sink[len(sink)-1]
	if last.Step != 0 {
		t.Errorf("final snapshot step = %d; a run canceled mid-step must "+
			"snapshot the last completed boundary (0)", last.Step)
	}
}

func TestRunContextNilAndBackground(t *testing.T) {
	cfg := Config{Seed: 7, MovesPerTemp: 20, MaxTemps: 10}
	b1, s1, err1 := Run(nil, cfg, quadState{x: 50})
	b2, s2, err2 := Run(context.Background(), cfg, quadState{x: 50})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if b1.(quadState) != b2.(quadState) || s1 != s2 {
		t.Error("nil and Background contexts gave different runs")
	}
}

// TestResumeBitIdentical is the checkpoint subsystem's core guarantee:
// a run resumed from a boundary snapshot finishes bit-identical — same
// best state, same stats — to a run that was never interrupted.
func TestResumeBitIdentical(t *testing.T) {
	cfg := Config{Seed: 11, MovesPerTemp: 40, MaxTemps: 30, MinAcceptRate: 1e-9}
	wantBest, wantStats, err := Run(nil, cfg, quadState{x: 400})
	if err != nil {
		t.Fatal(err)
	}

	var snaps []*Snapshot
	ck := cfg
	ck.CheckpointEvery = 7
	ck.Checkpoint = func(s *Snapshot) error { snaps = append(snaps, s); return nil }
	if _, _, err := Run(nil, ck, quadState{x: 400}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots written", len(snaps))
	}

	for _, snap := range snaps {
		re := cfg
		re.Resume = snap
		gotBest, gotStats, err := Run(nil, re, nil) // initial state is ignored on resume
		if err != nil {
			t.Fatal(err)
		}
		if gotBest.(quadState) != wantBest.(quadState) {
			t.Errorf("resume from step %d: best %+v, want %+v", snap.Step, gotBest, wantBest)
		}
		// Checkpoint counters differ by construction; everything else
		// must match exactly.
		gotStats.Checkpoints, gotStats.CheckpointErrors = 0, 0
		wt := wantStats
		wt.Checkpoints, wt.CheckpointErrors = 0, 0
		if gotStats != wt {
			t.Errorf("resume from step %d: stats %+v, want %+v", snap.Step, gotStats, wt)
		}
	}
}

// TestResumeAfterCancelBitIdentical interrupts a run mid-temperature,
// resumes from the snapshot the cancellation wrote, and requires the
// two-part run to land exactly where the uninterrupted run does: the
// interrupted step is replayed from its boundary RNG state.
func TestResumeAfterCancelBitIdentical(t *testing.T) {
	cfg := Config{Seed: 3, CalibrationMoves: 20, MovesPerTemp: 50, MaxTemps: 25, MinAcceptRate: 1e-9}
	wantBest, wantStats, err := Run(nil, cfg, quadState{x: 300})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Trip deep inside temperature step 4: 1 initial + 20 calibration +
	// 4*50 full steps + 23 moves into the fifth.
	tr := &trip{cancelAt: 1 + 20 + 4*50 + 23, cancel: cancel}
	var last *Snapshot
	ck := cfg
	ck.CheckpointEvery = 2
	ck.Checkpoint = func(s *Snapshot) error { last = s; return nil }
	_, _, runErr := Run(ctx, ck, tripState{x: 300, t: tr})
	if !errors.Is(runErr, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", runErr)
	}
	if last == nil {
		t.Fatal("cancellation wrote no snapshot")
	}
	if last.Step != 4 {
		t.Fatalf("snapshot step = %d, want the last completed boundary 4", last.Step)
	}

	re := cfg
	re.Resume = last
	gotBest, gotStats, err := Run(nil, re, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot carries tripState values; compare by position.
	if gotBest.(tripState).x != wantBest.(quadState).x {
		t.Errorf("best x = %d, want %d", gotBest.(tripState).x, wantBest.(quadState).x)
	}
	gotStats.Checkpoints, gotStats.CheckpointErrors = 0, 0
	if gotStats != wantStats {
		t.Errorf("stats %+v, want %+v", gotStats, wantStats)
	}
}

func TestCheckpointSinkErrorNeverAborts(t *testing.T) {
	boom := errors.New("disk full")
	cfg := Config{
		Seed: 5, MovesPerTemp: 20, MaxTemps: 10, MinAcceptRate: 1e-9,
		CheckpointEvery: 2,
		Checkpoint:      func(*Snapshot) error { return boom },
	}
	best, st, err := Run(nil, cfg, quadState{x: 100})
	if err != nil {
		t.Fatalf("sink error aborted the run: %v", err)
	}
	if st.CheckpointErrors == 0 {
		t.Error("CheckpointErrors not counted")
	}
	if st.Checkpoints != 0 {
		t.Errorf("Checkpoints = %d with an always-failing sink", st.Checkpoints)
	}
	// The search itself is unaffected.
	plain := cfg
	plain.Checkpoint, plain.CheckpointEvery = nil, 0
	wantBest, wantStats, _ := Run(nil, plain, quadState{x: 100})
	if best.(quadState) != wantBest.(quadState) {
		t.Error("failing checkpoint sink perturbed the search")
	}
	st.CheckpointErrors = 0
	if st != wantStats {
		t.Errorf("stats %+v, want %+v", st, wantStats)
	}
}

func TestCountingSourceFastForward(t *testing.T) {
	a := newCountingSource(99)
	rng := rand.New(a)
	for i := 0; i < 1000; i++ {
		rng.Float64()
		if i%3 == 0 {
			rng.Intn(17)
		}
	}
	b := newCountingSource(99)
	b.fastForward(a.n)
	if b.n != a.n {
		t.Fatalf("fastForward landed at %d, want %d", b.n, a.n)
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources diverged at draw %d", i)
		}
	}
}
