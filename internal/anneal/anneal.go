// Package anneal provides the seeded simulated-annealing engine that
// drives the floorplanner. It follows the classic Wong–Liu schedule:
// the initial temperature is calibrated so that a configurable fraction
// of random uphill moves is accepted, the temperature decays
// geometrically, and a fixed number of moves is attempted per
// temperature step. A per-temperature hook exposes the intermediate
// locally-optimized solutions that the paper's Experiment 2 samples
// ("we extract the intermediate solution at each temperature-dropping
// step").
package anneal

import (
	"math"
	"math/rand"

	"irgrid/internal/obs"
)

// State is one point of the search space. Implementations must treat
// states as immutable values: Neighbor returns a perturbed copy and
// never mutates the receiver.
type State interface {
	// Cost returns the scalar objective; lower is better.
	Cost() float64
	// Neighbor returns a random neighbouring state.
	Neighbor(rng *rand.Rand) State
}

// Config controls the annealing schedule.
type Config struct {
	// Seed seeds the engine's private PRNG; runs with equal seeds and
	// configs are bit-reproducible.
	Seed int64
	// InitAccept is the target acceptance probability for the average
	// uphill move used to calibrate the initial temperature
	// (default 0.95).
	InitAccept float64
	// Cooling is the geometric temperature decay per step in (0, 1)
	// (default 0.9).
	Cooling float64
	// MovesPerTemp is the number of proposed moves at each temperature
	// (default 100).
	MovesPerTemp int
	// MinAcceptRate stops the anneal when the acceptance rate at a
	// temperature falls below it (default 0.02).
	MinAcceptRate float64
	// MaxTemps caps the number of temperature steps (default 200).
	MaxTemps int
	// CalibrationMoves is the number of random perturbations used to
	// estimate the average uphill cost delta (default 50).
	CalibrationMoves int
	// OnTemperature, when non-nil, is invoked after each temperature
	// step with the step index, the temperature, the current state (the
	// locally-optimized solution at that temperature — what the paper's
	// Experiment 2 samples) and the best state found so far.
	OnTemperature func(step int, temp float64, cur, best State)
	// Obs, when non-nil, receives live run metrics: move/accept
	// counters and temperature/cost gauges. Telemetry never perturbs
	// the search — it observes values already computed and never
	// touches the RNG — so instrumented runs are bit-identical to
	// uninstrumented ones.
	Obs *obs.Registry
	// Trace, when non-nil, receives the JSONL run trace: one
	// calibration event, then one temp event per temperature step.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.InitAccept <= 0 || c.InitAccept >= 1 {
		c.InitAccept = 0.95
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = 0.9
	}
	if c.MovesPerTemp <= 0 {
		c.MovesPerTemp = 100
	}
	if c.MinAcceptRate <= 0 {
		c.MinAcceptRate = 0.02
	}
	if c.MaxTemps <= 0 {
		c.MaxTemps = 200
	}
	if c.CalibrationMoves <= 0 {
		c.CalibrationMoves = 50
	}
	return c
}

// Stats reports what the anneal did.
type Stats struct {
	Temps int // temperature steps executed
	// Moves counts search moves only (the proposals of the temperature
	// loop). The cost probes of the initial-temperature calibration are
	// reported separately in CalibrationMoves.
	Moves int
	// CalibrationMoves counts the random cost probes spent calibrating
	// the initial temperature (Config.CalibrationMoves of them): they
	// evaluate the cost function like a move does, but never alter the
	// search state.
	CalibrationMoves int
	Accepted         int // moves accepted
	// UphillAccepted counts accepted moves that increased cost (the
	// hill-climbing activity the temperature controls).
	UphillAccepted int
	// BestStep is the temperature-step index at which the returned
	// best state was last improved; -1 when no move ever beat the
	// initial state.
	BestStep  int
	InitTemp  float64 // calibrated initial temperature
	FinalTemp float64
	InitCost  float64
	FinalCost float64 // cost of the returned best state
}

// Run anneals from the initial state and returns the best state seen.
func Run(cfg Config, initial State) (State, Stats) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cur := initial
	curCost := cur.Cost()
	best, bestCost := cur, curCost
	st := Stats{InitCost: curCost, BestStep: -1}

	// Registry instruments resolve to nil no-ops when cfg.Obs is nil.
	var (
		mMoves = cfg.Obs.Counter("anneal_moves_total")
		mCalib = cfg.Obs.Counter("anneal_calibration_moves_total")
		mAcc   = cfg.Obs.Counter("anneal_accepted_total")
		mTemps = cfg.Obs.Counter("anneal_temps_total")
		gTemp  = cfg.Obs.Gauge("anneal_temperature")
		gCur   = cfg.Obs.Gauge("anneal_cost_current")
		gBest  = cfg.Obs.Gauge("anneal_cost_best")
		gRate  = cfg.Obs.Gauge("anneal_accept_rate")
	)

	// Calibrate the initial temperature from the average uphill delta:
	// exp(-avgUp/T0) = InitAccept  =>  T0 = -avgUp / ln(InitAccept).
	var upSum float64
	var upN int
	probe := cur
	probeCost := curCost
	for i := 0; i < cfg.CalibrationMoves; i++ {
		next := probe.Neighbor(rng)
		nextCost := next.Cost()
		st.CalibrationMoves++
		mCalib.Inc()
		if d := nextCost - probeCost; d > 0 {
			upSum += d
			upN++
		}
		probe, probeCost = next, nextCost
	}
	avgUp := 1.0
	if upN > 0 {
		avgUp = upSum / float64(upN)
	}
	temp := -avgUp / math.Log(cfg.InitAccept)
	if temp <= 0 || math.IsNaN(temp) || math.IsInf(temp, 0) {
		temp = 1
	}
	st.InitTemp = temp
	cfg.Trace.Emit(obs.CalibrationEvent{
		Ev: obs.EvCalibration, Moves: st.CalibrationMoves,
		InitTemp: temp, InitCost: curCost,
	})

	for step := 0; step < cfg.MaxTemps; step++ {
		accepted := 0
		for m := 0; m < cfg.MovesPerTemp; m++ {
			next := cur.Neighbor(rng)
			nextCost := next.Cost()
			st.Moves++
			mMoves.Inc()
			d := nextCost - curCost
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				cur, curCost = next, nextCost
				accepted++
				if d > 0 {
					st.UphillAccepted++
				}
				if curCost < bestCost {
					best, bestCost = cur, curCost
					st.BestStep = step
				}
			}
		}
		st.Accepted += accepted
		st.Temps = step + 1
		st.FinalTemp = temp
		rate := float64(accepted) / float64(cfg.MovesPerTemp)
		mAcc.Add(int64(accepted))
		mTemps.Inc()
		gTemp.Set(temp)
		gCur.Set(curCost)
		gBest.Set(bestCost)
		gRate.Set(rate)
		cfg.Trace.Emit(obs.TempEvent{
			Ev: obs.EvTemp, Step: step, Temp: temp,
			Cost: curCost, Best: bestCost,
			Accepted: accepted, Moves: cfg.MovesPerTemp, AcceptRate: rate,
		})
		if cfg.OnTemperature != nil {
			cfg.OnTemperature(step, temp, cur, best)
		}
		if rate < cfg.MinAcceptRate {
			break
		}
		temp *= cfg.Cooling
	}
	st.FinalCost = bestCost
	return best, st
}
