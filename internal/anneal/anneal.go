// Package anneal provides the seeded simulated-annealing engine that
// drives the floorplanner. It follows the classic Wong–Liu schedule:
// the initial temperature is calibrated so that a configurable fraction
// of random uphill moves is accepted, the temperature decays
// geometrically, and a fixed number of moves is attempted per
// temperature step. A per-temperature hook exposes the intermediate
// locally-optimized solutions that the paper's Experiment 2 samples
// ("we extract the intermediate solution at each temperature-dropping
// step").
package anneal

import (
	"context"
	"math"
	"math/rand"

	"irgrid/internal/obs"
)

// State is one point of the search space. Implementations must treat
// states as immutable values: Neighbor returns a perturbed copy and
// never mutates the receiver.
type State interface {
	// Cost returns the scalar objective; lower is better.
	Cost() float64
	// Neighbor returns a random neighbouring state.
	Neighbor(rng *rand.Rand) State
}

// MoveAware is an optional extension of State for search spaces that
// keep incremental evaluation caches: after each Metropolis decision on
// a proposed state, Run calls exactly one of AcceptMove (the proposal
// became the current state) or RejectMove (it was discarded) on the
// proposal. Implementations use RejectMove to roll their caches back to
// the pre-move state. The notifications observe decisions already made
// and never touch the RNG, so runs are bit-identical with or without
// them; the calibration probes are not search moves and are never
// notified.
type MoveAware interface {
	AcceptMove()
	RejectMove()
}

// Config controls the annealing schedule.
type Config struct {
	// Seed seeds the engine's private PRNG; runs with equal seeds and
	// configs are bit-reproducible.
	Seed int64
	// InitAccept is the target acceptance probability for the average
	// uphill move used to calibrate the initial temperature
	// (default 0.95).
	InitAccept float64
	// Cooling is the geometric temperature decay per step in (0, 1)
	// (default 0.9).
	Cooling float64
	// MovesPerTemp is the number of proposed moves at each temperature
	// (default 100).
	MovesPerTemp int
	// MinAcceptRate stops the anneal when the acceptance rate at a
	// temperature falls below it (default 0.02).
	MinAcceptRate float64
	// MaxTemps caps the number of temperature steps (default 200).
	MaxTemps int
	// CalibrationMoves is the number of random perturbations used to
	// estimate the average uphill cost delta (default 50).
	CalibrationMoves int
	// OnTemperature, when non-nil, is invoked after each temperature
	// step with the step index, the temperature, the current state (the
	// locally-optimized solution at that temperature — what the paper's
	// Experiment 2 samples) and the best state found so far.
	OnTemperature func(step int, temp float64, cur, best State)
	// Obs, when non-nil, receives live run metrics: move/accept
	// counters and temperature/cost gauges. Telemetry never perturbs
	// the search — it observes values already computed and never
	// touches the RNG — so instrumented runs are bit-identical to
	// uninstrumented ones.
	Obs *obs.Registry
	// Trace, when non-nil, receives the JSONL run trace: one
	// calibration event, then one temp event per temperature step. The
	// tracer's buffer is flushed at every temperature boundary, so a
	// crash loses at most the current temperature's events.
	Trace *obs.Tracer
	// Span, when non-nil, is the parent span the annealer's stage
	// spans (calibrate, temp, checkpoint) attach under. Spans time
	// work the anneal performed anyway and never touch the RNG, so
	// span-enabled runs are bit-identical.
	Span *obs.Span
	// Recorder, when non-nil, receives one flight-recorder event per
	// move, per temperature step and per checkpoint write. Like every
	// obs surface it only observes computed values; runs stay
	// bit-identical.
	Recorder *obs.Recorder
	// Status, when non-nil, receives the live run-status feed
	// (schedule bounds, then one update per temperature step).
	Status *obs.Status
	// CheckpointEvery, when positive together with Checkpoint, invokes
	// the checkpoint sink after every CheckpointEvery completed
	// temperature steps.
	CheckpointEvery int
	// Checkpoint, when non-nil, receives boundary snapshots: every
	// CheckpointEvery steps, and once more on cancellation (the last
	// completed boundary, so a canceled-and-resumed run replays the
	// interrupted step and stays bit-identical to an uninterrupted
	// one). A sink error never aborts the run; it is counted in
	// Stats.CheckpointErrors and the checkpoint_errors counter.
	Checkpoint func(*Snapshot) error
	// Resume, when non-nil, continues a previous run from the snapshot
	// instead of starting fresh: calibration is skipped, the PRNG is
	// fast-forwarded to the snapshot's draw position, and the
	// temperature loop re-enters at Snapshot.Step. The initial state
	// passed to Run is ignored.
	Resume *Snapshot
}

func (c Config) withDefaults() Config {
	if c.InitAccept <= 0 || c.InitAccept >= 1 {
		c.InitAccept = 0.95
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = 0.9
	}
	if c.MovesPerTemp <= 0 {
		c.MovesPerTemp = 100
	}
	if c.MinAcceptRate <= 0 {
		c.MinAcceptRate = 0.02
	}
	if c.MaxTemps <= 0 {
		c.MaxTemps = 200
	}
	if c.CalibrationMoves <= 0 {
		c.CalibrationMoves = 50
	}
	return c
}

// Stats reports what the anneal did.
type Stats struct {
	Temps int // temperature steps executed
	// Moves counts search moves only (the proposals of the temperature
	// loop). The cost probes of the initial-temperature calibration are
	// reported separately in CalibrationMoves.
	Moves int
	// CalibrationMoves counts the random cost probes spent calibrating
	// the initial temperature (Config.CalibrationMoves of them): they
	// evaluate the cost function like a move does, but never alter the
	// search state.
	CalibrationMoves int
	Accepted         int // moves accepted
	// UphillAccepted counts accepted moves that increased cost (the
	// hill-climbing activity the temperature controls).
	UphillAccepted int
	// BestStep is the temperature-step index at which the returned
	// best state was last improved; -1 when no move ever beat the
	// initial state.
	BestStep  int
	InitTemp  float64 // calibrated initial temperature
	FinalTemp float64
	InitCost  float64
	FinalCost float64 // cost of the returned best state
	// Checkpoints and CheckpointErrors count successful and failed
	// invocations of the Config.Checkpoint sink.
	Checkpoints      int
	CheckpointErrors int
}

// Run anneals from the initial state and returns the best state seen.
//
// The context is checked cooperatively at every proposed move (and
// between the evaluation inside a move and its acceptance decision, so
// a cost that an estimator computed after cancellation is never acted
// on). On cancellation Run returns the best state found so far with
// ErrCanceled or ErrDeadline — partial results are first-class, not
// failures — and, when a Checkpoint sink is configured, writes one
// final boundary snapshot so the run can be resumed.
func Run(ctx context.Context, cfg Config, initial State) (State, Stats, error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.Status.Schedule(cfg.MaxTemps, cfg.MovesPerTemp)
	src := newCountingSource(cfg.Seed)
	rng := rand.New(src)

	// Registry instruments resolve to nil no-ops when cfg.Obs is nil.
	var (
		mMoves    = cfg.Obs.Counter("anneal_moves_total")
		mCalib    = cfg.Obs.Counter("anneal_calibration_moves_total")
		mAcc      = cfg.Obs.Counter("anneal_accepted_total")
		mTemps    = cfg.Obs.Counter("anneal_temps_total")
		gTemp     = cfg.Obs.Gauge("anneal_temperature")
		gCur      = cfg.Obs.Gauge("anneal_cost_current")
		gBest     = cfg.Obs.Gauge("anneal_cost_best")
		gRate     = cfg.Obs.Gauge("anneal_accept_rate")
		mCkpt     = cfg.Obs.Counter("checkpoints_written")
		mCkptErr  = cfg.Obs.Counter("checkpoint_errors")
		mCanceled = cfg.Obs.Counter("runs_canceled")
	)

	var (
		cur, best         State
		curCost, bestCost float64
		temp              float64
		st                Stats
		startStep         int
		boundary          *Snapshot // last completed step boundary
	)

	// writeCheckpoint hands the boundary snapshot to the sink. Sink
	// errors (a full disk, an injected I/O fault) never abort the run.
	writeCheckpoint := func() {
		if cfg.Checkpoint == nil || boundary == nil {
			return
		}
		sp := cfg.Span.Child("checkpoint")
		err := cfg.Checkpoint(boundary)
		sp.End()
		if err != nil {
			st.CheckpointErrors++
			mCkptErr.Inc()
		} else {
			st.Checkpoints++
			mCkpt.Inc()
		}
		if cfg.Recorder != nil {
			note := ""
			if err != nil {
				note = err.Error()
			}
			cfg.Recorder.Record(obs.RecorderEvent{
				Kind: obs.RecCheckpoint, Step: boundary.Step, Note: note,
			})
		}
	}
	// finish concludes an interrupted run: best-so-far plus the typed
	// cancellation error, with a final resumable boundary snapshot.
	finish := func(err error) (State, Stats, error) {
		mCanceled.Inc()
		writeCheckpoint()
		st.FinalCost = bestCost
		return best, st, err
	}

	if snap := cfg.Resume; snap != nil {
		src.fastForward(snap.Draws)
		cur, curCost = snap.Cur, snap.CurCost
		best, bestCost = snap.Best, snap.BestCost
		st = snap.Stats
		temp = snap.Temp
		startStep = snap.Step
		boundary = snap
		if err := ctxErr(ctx); err != nil {
			return finish(err)
		}
	} else {
		cur = initial
		curCost = cur.Cost()
		best, bestCost = cur, curCost
		st = Stats{InitCost: curCost, BestStep: -1}

		// Calibrate the initial temperature from the average uphill
		// delta: exp(-avgUp/T0) = InitAccept => T0 = -avgUp / ln(InitAccept).
		spCal := cfg.Span.Child("calibrate")
		var upSum float64
		var upN int
		probe := cur
		probeCost := curCost
		for i := 0; i < cfg.CalibrationMoves; i++ {
			if err := ctxErr(ctx); err != nil {
				spCal.End()
				return finish(err)
			}
			next := probe.Neighbor(rng)
			if err := ctxErr(ctx); err != nil {
				spCal.End()
				return finish(err)
			}
			nextCost := next.Cost()
			st.CalibrationMoves++
			mCalib.Inc()
			if d := nextCost - probeCost; d > 0 {
				upSum += d
				upN++
			}
			probe, probeCost = next, nextCost
		}
		spCal.End()
		avgUp := 1.0
		if upN > 0 {
			avgUp = upSum / float64(upN)
		}
		temp = -avgUp / math.Log(cfg.InitAccept)
		if temp <= 0 || math.IsNaN(temp) || math.IsInf(temp, 0) {
			temp = 1
		}
		st.InitTemp = temp
		cfg.Trace.Emit(obs.CalibrationEvent{
			Ev: obs.EvCalibration, Moves: st.CalibrationMoves,
			InitTemp: temp, InitCost: curCost,
		})
		boundary = &Snapshot{
			Step: 0, Temp: temp, Draws: src.n,
			Cur: cur, CurCost: curCost,
			Best: best, BestCost: bestCost,
			Stats: st,
		}
	}

	for step := startStep; step < cfg.MaxTemps; step++ {
		spStep := cfg.Span.Child("temp")
		accepted := 0
		for m := 0; m < cfg.MovesPerTemp; m++ {
			if err := ctxErr(ctx); err != nil {
				spStep.End()
				return finish(err)
			}
			next := cur.Neighbor(rng)
			// A cancellation can interrupt the evaluation inside
			// Neighbor (estimators bail at shard boundaries), so the
			// cost may be partial — re-check before acting on it.
			if err := ctxErr(ctx); err != nil {
				spStep.End()
				return finish(err)
			}
			nextCost := next.Cost()
			st.Moves++
			mMoves.Inc()
			d := nextCost - curCost
			// Same decision and same RNG draw order as the classic
			// one-liner (the draw happens only for uphill moves), kept
			// explicit so the flight recorder can log the outcome.
			accept := d <= 0
			if !accept {
				accept = rng.Float64() < math.Exp(-d/temp)
			}
			if accept {
				cur, curCost = next, nextCost
				accepted++
				if d > 0 {
					st.UphillAccepted++
				}
				if curCost < bestCost {
					best, bestCost = cur, curCost
					st.BestStep = step
				}
				if ma, ok := next.(MoveAware); ok {
					ma.AcceptMove()
				}
			} else if ma, ok := next.(MoveAware); ok {
				ma.RejectMove()
			}
			// Gated on the handle (not folded into a nil-safe call) so
			// disabled runs skip building the event struct entirely.
			if cfg.Recorder != nil {
				cfg.Recorder.Record(obs.RecorderEvent{
					Kind: obs.RecMove, Step: step, Temp: temp,
					Cost: curCost, Best: bestCost,
					Delta: d, Accepted: accept,
				})
			}
		}
		spStep.End()
		st.Accepted += accepted
		st.Temps = step + 1
		st.FinalTemp = temp
		rate := float64(accepted) / float64(cfg.MovesPerTemp)
		mAcc.Add(int64(accepted))
		mTemps.Inc()
		gTemp.Set(temp)
		gCur.Set(curCost)
		gBest.Set(bestCost)
		gRate.Set(rate)
		cfg.Trace.Emit(obs.TempEvent{
			Ev: obs.EvTemp, Step: step, Temp: temp,
			Cost: curCost, Best: bestCost,
			Accepted: accepted, Moves: cfg.MovesPerTemp, AcceptRate: rate,
		})
		if cfg.OnTemperature != nil {
			cfg.OnTemperature(step, temp, cur, best)
		}
		// Bound trace staleness to one temperature step: everything up
		// to and including this step's events survives a crash.
		cfg.Trace.Flush()
		cfg.Status.Step(step+1, temp, curCost, bestCost, rate, int64(st.Moves))
		if cfg.Recorder != nil {
			cfg.Recorder.Record(obs.RecorderEvent{
				Kind: obs.RecTemp, Step: step, Temp: temp,
				Cost: curCost, Best: bestCost, Accepted: accepted > 0,
			})
		}
		if rate < cfg.MinAcceptRate {
			break
		}
		temp *= cfg.Cooling
		boundary = &Snapshot{
			Step: step + 1, Temp: temp, Draws: src.n,
			Cur: cur, CurCost: curCost,
			Best: best, BestCost: bestCost,
			Stats: st,
		}
		if cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 {
			writeCheckpoint()
		}
	}
	st.FinalCost = bestCost
	return best, st, nil
}
