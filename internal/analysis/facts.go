package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
)

// This file is the facts layer: per-package analysis results that
// cross package boundaries, mirroring go/analysis facts. A package's
// facts are computed once by ComputeFacts (a framework pre-pass, not
// an analyzer), serialized as JSON into the vet "vetx" file by the
// unitchecker driver, and accumulated in memory in dependency order by
// the standalone driver. Analyzers read them through Pass.Facts.

// PackageFacts is one package's exported facts.
type PackageFacts struct {
	// Blocks maps a function key (see FuncKey) to the reason the
	// function may block: a direct blocking operation in its body, or a
	// call to another function that blocks. Transitive closure is
	// intra-package; cross-package propagation happens because a
	// dependency's Blocks facts already incorporate its own deps'.
	Blocks map[string]string `json:"blocks,omitempty"`
	// LockEdges records acquired-while-holding pairs observed in the
	// package: while a mutex of class From was held, a mutex of class To
	// was acquired. Lock classes are "pkgpath.Type.field" (or
	// "pkgpath.var" for package-level mutexes).
	LockEdges []LockEdge `json:"lock_edges,omitempty"`
	// AtomicFields lists the field keys (FieldKey) accessed through
	// sync/atomic somewhere in the package.
	AtomicFields []string `json:"atomic_fields,omitempty"`
}

// LockEdge is one acquired-while-holding observation.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// At is the inner acquisition's position ("file:line:col"), the
	// diagnostic anchor when the edge closes a cycle.
	At string `json:"at,omitempty"`

	// pos is the in-memory token position of the acquisition; zero for
	// edges deserialized from a dependency's vetx file (a cycle through
	// them is reported at the current package's participating edge).
	pos int
}

// EncodeFacts serializes facts for a vetx file.
func EncodeFacts(f *PackageFacts) ([]byte, error) {
	if f == nil {
		f = &PackageFacts{}
	}
	return json.Marshal(f)
}

// DecodeFacts parses a vetx payload. Zero-length data decodes to empty
// facts: the go command pre-creates vetx files, and older irlint
// versions wrote empty ones.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	f := &PackageFacts{}
	if len(data) == 0 {
		return f, nil
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("parsing package facts: %v", err)
	}
	return f, nil
}

// FactStore gives one pass access to its own package's facts plus the
// facts of every dependency the driver could supply.
type FactStore struct {
	cur  *PackageFacts
	deps map[string]*PackageFacts
}

// NewFactStore assembles a store from the current package's facts and
// the dependency map (keyed by import path; nil is an empty store).
func NewFactStore(cur *PackageFacts, deps map[string]*PackageFacts) *FactStore {
	if cur == nil {
		cur = &PackageFacts{}
	}
	return &FactStore{cur: cur, deps: deps}
}

// BlockReason returns the reason a function (by FuncKey) may block,
// consulting the current package first, then every dependency.
func (s *FactStore) BlockReason(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	if r, ok := s.cur.Blocks[key]; ok {
		return r, true
	}
	for _, f := range s.deps {
		if r, ok := f.Blocks[key]; ok {
			return r, true
		}
	}
	return "", false
}

// AtomicField reports whether the field key is atomically accessed in
// the current package or any dependency.
func (s *FactStore) AtomicField(key string) bool {
	if s == nil {
		return false
	}
	for _, k := range s.cur.AtomicFields {
		if k == key {
			return true
		}
	}
	for _, f := range s.deps {
		for _, k := range f.AtomicFields {
			if k == key {
				return true
			}
		}
	}
	return false
}

// LockEdges returns the current package's edges followed by every
// dependency's, deduplicated by (From, To); the first occurrence (and
// so any in-memory position) wins.
func (s *FactStore) LockEdges() []LockEdge {
	if s == nil {
		return nil
	}
	seen := map[[2]string]bool{}
	var out []LockEdge
	add := func(edges []LockEdge) {
		for _, e := range edges {
			k := [2]string{e.From, e.To}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, e)
		}
	}
	add(s.cur.LockEdges)
	for _, f := range s.deps {
		add(f.LockEdges)
	}
	return out
}

// FuncKey is the Blocks fact key of a function or method:
// "pkgpath.Func" or "pkgpath.Recv.Method" (pointer receivers and
// generic instantiations folded), with testdata/src fixture prefixes
// stripped so fixtures impersonate production packages.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	name := fn.Name()
	pkg := fn.Pkg()
	if pkg == nil {
		return name
	}
	path := EffectivePath(pkg.Path())
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn, ok := namedOrIfaceName(sig.Recv().Type()); ok {
			return path + "." + tn + "." + name
		}
	}
	return path + "." + name
}

// FieldKey is the fact key of a struct field: "pkgpath.Type.field",
// derived from the owning expression's type. ok is false when the
// owner is not a named (or pointer-to-named) type.
func FieldKey(owner types.Type, field string) (string, bool) {
	tn, ok := namedTypeOf(owner)
	if !ok {
		return "", false
	}
	pkg := tn.Obj().Pkg()
	if pkg == nil {
		return "", false
	}
	return EffectivePath(pkg.Path()) + "." + tn.Obj().Name() + "." + field, true
}

// namedTypeOf unwraps pointers and returns the named type beneath.
func namedTypeOf(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u, true
		default:
			return nil, false
		}
	}
}

// namedOrIfaceName names a receiver type (struct or interface).
func namedOrIfaceName(t types.Type) (string, bool) {
	if n, ok := namedTypeOf(t); ok {
		return n.Obj().Name(), true
	}
	return "", false
}
