package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockWalker tracks the set of held mutex lock classes through a
// function body. It is shared by ComputeFacts (lock edges feeding
// lockorder) and the lockscope analyzer (blocking ops while holding).
//
// Semantics:
//   - x.mu.Lock()/RLock() adds x's class to the held set (onAcquire
//     fires first, with the classes already held);
//     x.mu.Unlock()/RUnlock() removes it.
//   - `defer x.mu.Unlock()` keeps the class held for the remainder of
//     the function: that is precisely the idiom that holds a lock
//     across everything that follows.
//   - Branches analyze each arm on a copy of the held set; the
//     continuation is the union of the non-terminated exits (plus the
//     entry set when an arm may be skipped). Loop bodies run on a
//     copy; the continuation is the entry set.
//   - go/defer function literals start fresh goroutine-local scopes
//     with an empty held set.
type lockWalker struct {
	info *types.Info
	// onAcquire fires at each mutex acquisition; held is the set of
	// classes already held (possibly empty) and may not be retained.
	onAcquire func(pos token.Pos, class string, held map[string]bool)
	// onBlocking fires at each potentially blocking operation reached
	// while at least one class is held.
	onBlocking func(pos token.Pos, reason string, held map[string]bool)
	// blockReason resolves whether a called function may block; nil
	// disables call-blocking detection (lock-edge-only walks).
	blockReason func(fn *types.Func) (string, bool)
}

func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	w.block(body.List, map[string]bool{})
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func union(sets ...map[string]bool) map[string]bool {
	out := map[string]bool{}
	for _, s := range sets {
		for k := range s {
			out[k] = true
		}
	}
	return out
}

// block processes a statement list; it returns the held set at
// fall-off and whether control definitely leaves the list early
// (return, panic, branch).
func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	for _, s := range stmts {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

// stmt processes one statement, returning the resulting held set and
// whether control terminates here.
func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return w.scan(st.X, held), false
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.scan(e, held)
		}
		for _, e := range st.Lhs {
			held = w.scan(e, held)
		}
		return held, false
	case *ast.DeclStmt, *ast.IncDecStmt:
		return w.scan(s, held), false
	case *ast.SendStmt:
		held = w.scan(st.Chan, held)
		held = w.scan(st.Value, held)
		w.blockingOp(st.Arrow, "channel send", held)
		return held, false
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = w.scan(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.DeferStmt:
		return w.deferStmt(st, held), false
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.block(lit.Body.List, map[string]bool{})
		}
		for _, a := range st.Call.Args {
			held = w.scan(a, held)
		}
		return held, false
	case *ast.BlockStmt:
		return w.block(st.List, held)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	case *ast.IfStmt:
		return w.ifStmt(st, held)
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		held = w.scan(st.Cond, held)
		body := copySet(held)
		body, _ = w.block(st.Body.List, body)
		if st.Post != nil {
			w.stmt(st.Post, body)
		}
		return held, false
	case *ast.RangeStmt:
		held = w.scan(st.X, held)
		if tv, ok := w.info.Types[st.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blockingOp(st.For, "range over channel", held)
			}
		}
		w.block(st.Body.List, copySet(held))
		return held, false
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		held = w.scan(st.Tag, held)
		return w.caseClauses(st.Body.List, held), false
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		return w.caseClauses(st.Body.List, held), false
	case *ast.SelectStmt:
		return w.selectStmt(st, held), false
	}
	return held, false
}

func (w *lockWalker) deferStmt(st *ast.DeferStmt, held map[string]bool) map[string]bool {
	// A deferred Unlock keeps the class held through the rest of the
	// function. Any other deferred call runs at return and is not a
	// blocking op at this point; its function-literal body is a fresh
	// scope.
	if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		w.block(lit.Body.List, map[string]bool{})
		return held
	}
	// Argument expressions evaluate now.
	for _, a := range st.Call.Args {
		held = w.scan(a, held)
	}
	return held
}

func (w *lockWalker) ifStmt(st *ast.IfStmt, held map[string]bool) (map[string]bool, bool) {
	if st.Init != nil {
		held, _ = w.stmt(st.Init, held)
	}
	held = w.scan(st.Cond, held)
	thenHeld, thenTerm := w.block(st.Body.List, copySet(held))
	if st.Else == nil {
		if thenTerm {
			return held, false
		}
		return union(held, thenHeld), false
	}
	elseHeld, elseTerm := w.stmt(st.Else, copySet(held))
	switch {
	case thenTerm && elseTerm:
		return held, true
	case thenTerm:
		return elseHeld, false
	case elseTerm:
		return thenHeld, false
	default:
		return union(thenHeld, elseHeld), false
	}
}

// caseClauses analyzes switch cases on copies of held; the
// continuation is the union of non-terminated case exits plus the
// entry set when no case might match (no default clause).
func (w *lockWalker) caseClauses(clauses []ast.Stmt, held map[string]bool) map[string]bool {
	exits := []map[string]bool{}
	hasDefault := false
	for _, c := range clauses {
		cc, isCase := c.(*ast.CaseClause)
		if !isCase {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		h := copySet(held)
		for _, e := range cc.List {
			h = w.scan(e, h)
		}
		h, term := w.block(cc.Body, h)
		if !term {
			exits = append(exits, h)
		}
	}
	if !hasDefault {
		exits = append(exits, held)
	}
	return union(exits...)
}

func (w *lockWalker) selectStmt(st *ast.SelectStmt, held map[string]bool) map[string]bool {
	hasDefault := false
	for _, c := range st.Body.List {
		if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.blockingOp(st.Select, "blocking select", held)
	}
	exits := []map[string]bool{}
	for _, c := range st.Body.List {
		cc, isComm := c.(*ast.CommClause)
		if !isComm {
			continue
		}
		h := copySet(held)
		// The comm statement's channel operation is the select's own
		// (already accounted); only scan it for mutex ops/func lits.
		if cc.Comm != nil {
			h, _ = w.commStmt(cc.Comm, h)
		}
		h, term := w.block(cc.Body, h)
		if !term {
			exits = append(exits, h)
		}
	}
	exits = append(exits, held)
	return union(exits...)
}

// commStmt scans a select comm statement without treating its
// channel send/receive as an independent blocking op.
func (w *lockWalker) commStmt(s ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	save := w.onBlocking
	w.onBlocking = nil
	defer func() { w.onBlocking = save }()
	return w.stmt(s, held)
}

func (w *lockWalker) blockingOp(pos token.Pos, reason string, held map[string]bool) {
	if w.onBlocking != nil && len(held) > 0 {
		w.onBlocking(pos, reason, held)
	}
}

// scan inspects an expression (or simple statement) for mutex
// operations, blocking operations, and function literals, mutating and
// returning the held set.
func (w *lockWalker) scan(n ast.Node, held map[string]bool) map[string]bool {
	if n == nil {
		return held
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			w.block(e.Body.List, map[string]bool{})
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				w.blockingOp(e.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if class, acquire, release, isMutex := mutexOp(w.info, e); isMutex {
				if acquire {
					if w.onAcquire != nil {
						w.onAcquire(e.Pos(), class, held)
					}
					if class != "" {
						held[class] = true
					}
				} else if release && class != "" {
					delete(held, class)
				}
				return false
			}
			if w.blockReason != nil && len(held) > 0 {
				if fn := calleeFunc(w.info, e); fn != nil {
					if reason, ok := w.blockReason(fn); ok {
						w.blockingOp(e.Pos(), reason, held)
					}
				}
			}
		}
		return true
	})
	return held
}
