// Package unit implements the `go vet -vettool` unitchecker protocol
// for irlint: the go command hands the tool a JSON config file per
// package (sources, export data of dependencies, import map, facts
// output path) and expects diagnostics on stderr with exit status 2,
// or a JSON object on stdout under `go vet -json`. This mirrors
// x/tools/go/analysis/unitchecker, reimplemented on the standard
// library because the environment has no module network access.
package unit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"irgrid/internal/analysis"
)

// Config mirrors the fields of the go command's vet config JSON that
// irlint consumes. Unknown fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run executes the analyzers against the package described by the
// config file and returns the process exit code: 0 clean, 1 tool
// failure, 2 diagnostics found (the vet convention).
func Run(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
		return 1
	}

	// Facts output must exist even when the package produced none, or
	// the go command reports the tool as failed; the real facts write
	// below marks itself done to keep this a fallback.
	factsWritten := false
	defer func() {
		if cfg.VetxOutput != "" && !factsWritten {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}()

	if analysis.IsTestVariant(cfg.ImportPath) && !isInternalTestVariant(cfg.ImportPath) {
		// Synthesized test-main and external _test packages carry no
		// production code; the plain variant already covers the sources.
		return 0
	}
	if cfg.VetxOnly && !analysis.FirstParty(analysis.EffectivePath(cfg.ImportPath)) {
		// The go command requests facts for every dependency, standard
		// library included. Derived facts are a first-party concept —
		// stdlib blocking behavior is modeled by the curated table — so
		// dependencies outside the module export empty facts (written by
		// the fallback above) without even being type-checked.
		return 0
	}

	diags, facts, err := check(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "irlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if data, encErr := analysis.EncodeFacts(facts); encErr == nil {
			if os.WriteFile(cfg.VetxOutput, data, 0o666) == nil {
				factsWritten = true
			}
		}
	}
	if cfg.VetxOnly {
		// This invocation only wants the dependency's facts.
		return 0
	}
	if len(diags) == 0 {
		if jsonOut {
			fmt.Println("{}")
		}
		return 0
	}
	if jsonOut {
		printJSON(os.Stdout, cfg.ImportPath, diags)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	return 2
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}

// isInternalTestVariant recognizes "pkg [pkg.test]" — the package's
// own sources recompiled with its _test.go files. Analyzers skip the
// test files internally, so running on the variant is harmless, and
// skipping it entirely would also be fine; it is analyzed for the rare
// case where go vet elides the plain variant.
func isInternalTestVariant(path string) bool {
	for i := 0; i+1 < len(path); i++ {
		if path[i] == ' ' && path[i+1] == '[' {
			return true
		}
	}
	return false
}

func check(cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *analysis.PackageFacts, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	imp := &vetImporter{
		fset:        fset,
		importMap:   cfg.ImportMap,
		packageFile: cfg.PackageFile,
		cache:       map[string]*types.Package{},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	// The vet config names the logical import path, which for the
	// internal test variant includes the " [pkg.test]" suffix; strip it
	// for the types.Package so path-based gates see the real path.
	pkgPath := cfg.ImportPath
	if i := indexSpace(pkgPath); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	tpkg, err := tconf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}

	deps := loadDepFacts(cfg)
	facts := analysis.ComputeFacts(fset, files, tpkg, info, deps)
	if cfg.VetxOnly {
		// The go command only wants this dependency's facts; skip the
		// analyzers (diagnostics in deps are the dep's own vet run).
		return nil, facts, nil
	}
	store := analysis.NewFactStore(facts, deps)

	ix := analysis.BuildIndex(fset, files)
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, tpkg, info, ix, store,
			func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	analysis.SortDiagnostics(diags)
	return diags, facts, nil
}

// loadDepFacts reads the dependencies' facts from the vetx files the
// go command recorded in PackageVetx. Zero-length files decode to
// empty facts (the go command pre-creates them; earlier irlint
// versions wrote nothing else); unreadable or corrupt entries are
// treated as fact-free rather than failing the run, matching vet's
// tolerance for tools that export no facts.
func loadDepFacts(cfg *Config) map[string]*analysis.PackageFacts {
	if len(cfg.PackageVetx) == 0 {
		return nil
	}
	deps := make(map[string]*analysis.PackageFacts, len(cfg.PackageVetx))
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		f, err := analysis.DecodeFacts(data)
		if err != nil {
			continue
		}
		deps[path] = f
	}
	return deps
}

func indexSpace(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return i
		}
	}
	return -1
}

// vetImporter resolves imports through the export files listed in the
// vet config, applying the import map first (vendoring and
// test-variant translation), with unsafe special-cased.
type vetImporter struct {
	fset        *token.FileSet
	importMap   map[string]string
	packageFile map[string]string
	cache       map[string]*types.Package
	base        types.Importer
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := v.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := v.cache[path]; ok {
		return pkg, nil
	}
	if v.base == nil {
		v.base = importer.ForCompiler(v.fset, "gc", func(p string) (io.ReadCloser, error) {
			file, ok := v.packageFile[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		})
	}
	pkg, err := v.base.Import(path)
	if err != nil {
		return nil, err
	}
	v.cache[path] = pkg
	return pkg, nil
}

// printJSON emits the go vet -json shape: package → analyzer →
// diagnostics.
func printJSON(w io.Writer, importPath string, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{Posn: d.Pos.String(), Message: d.Message})
	}
	// encoding/json sorts map keys, so the output is stable.
	out := map[string]map[string][]jsonDiag{importPath: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	_ = enc.Encode(out)
}
