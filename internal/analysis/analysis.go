// Package analysis is irlint: a suite of project-specific static
// analyzers that promote the repo's dynamically-tested invariants —
// bit-deterministic evaluation, a zero-allocation hot path, nil-safe
// telemetry, cooperative cancellation — to compile-time guarantees.
//
// The API mirrors a subset of golang.org/x/tools/go/analysis (the
// toolchain baked into this environment has no module network access,
// so the framework is self-contained on the standard library): an
// Analyzer owns a Run function over a type-checked Pass, diagnostics
// are (position, message) pairs, and drivers exist for standalone
// multichecker use (cmd/irlint PATTERN...), for `go vet -vettool`
// (the vet unitchecker protocol, internal/analysis/unit) and for
// golden-file tests (internal/analysis/atest).
//
// Suppressions and hot-path markers are source annotations parsed by
// internal/analysis/annot; see that package for the grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //irlint:allow annotations.
	Name string
	// Doc is the one-line description shown by cmd/irlint -list.
	Doc string
	// Run analyzes one package, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Index holds the package's parsed //irlint: annotations.
	Index *Index
	// Facts holds this package's computed facts plus those of every
	// dependency the driver supplied (nil-safe: a nil store answers
	// negatively).
	Facts *FactStore

	report func(Diagnostic)
}

// NewPass assembles a Pass; report receives each diagnostic.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, ix *Index, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Index: ix, Facts: facts, report: report}
}

// Reportf reports a finding at pos unless an //irlint:allow annotation
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Index != nil && p.Index.Allowed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Path returns the package's effective import path: for packages under
// a testdata/src/ tree (the golden-file analyzer tests) the path
// relative to that tree, so test fixtures can impersonate the
// production packages the analyzers gate on.
func (p *Pass) Path() string { return EffectivePath(p.Pkg.Path()) }

// EffectivePath strips everything up to and including the last
// "/testdata/src/" segment of an import path.
func EffectivePath(path string) string {
	if i := strings.LastIndex(path, "/testdata/src/"); i >= 0 {
		return path[i+len("/testdata/src/"):]
	}
	return path
}

// ModulePath is the module whose packages get derived blocking/lock
// facts. Standard-library and third-party dependencies are modeled by
// the curated blocker table in blockfacts.go instead: deriving facts
// from their internals over-approximates badly (fmt's printer fixpoint
// would mark Sprintf blocking because some sibling touches a writer).
const ModulePath = "irgrid"

// FirstParty reports whether an effective import path belongs to the
// module (facts are derived for it).
func FirstParty(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// DeterministicPackages are the packages whose results must be
// bit-reproducible: the evaluation engine and its exact oracle, the
// annealer, the pipeline assembly, checkpointing, and the public
// congestion API. detmap and detsource enforce their invariants here
// (subpackages included).
var DeterministicPackages = []string{
	"irgrid/internal/core",
	"irgrid/internal/oracle",
	"irgrid/internal/anneal",
	"irgrid/internal/fplan",
	"irgrid/internal/ckpt",
	"irgrid/congestion",
}

// CtxPackages are the packages whose exported API must propagate
// cooperative cancellation through unbounded loops (the PR 4
// contract): the annealer, the pipeline, the public floorplan API,
// the evaluation engine, and the job service whose workers and poll
// loops run jobs under per-job contexts.
var CtxPackages = []string{
	"irgrid/internal/anneal",
	"irgrid/internal/fplan",
	"irgrid/floorplan",
	"irgrid/internal/core",
	"irgrid/internal/server",
}

// LockPackages are the mutex-rich service-layer packages whose lock
// discipline lockscope, lockorder and golifecycle enforce: no mutex
// held across a blocking operation, no acquisition-order cycles, no
// orphan goroutines (subpackages included).
var LockPackages = []string{
	"irgrid/internal/server",
	"irgrid/internal/obs",
}

// inPackageSet reports whether the effective path is one of the given
// packages or a subpackage of one.
func inPackageSet(path string, set []string) bool {
	for _, p := range set {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file's name ends in _test.go. The
// determinism and allocation invariants bind production code; tests
// are free to use clocks, map iteration and fmt.
func (p *Pass) isTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// sourceFiles returns the pass's non-test files.
func (p *Pass) sourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.isTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// IsTestVariant reports whether an import path names a test package
// variant ("pkg.test", "pkg [pkg.test]", or an external _test
// package); drivers skip those outright — the plain variant already
// covers the production sources.
func IsTestVariant(path string) bool {
	return strings.HasSuffix(path, ".test") ||
		strings.Contains(path, " [") ||
		strings.HasSuffix(path, "_test")
}
