package analysis

import (
	"go/ast"
	"go/types"
)

// Hotalloc guards the allocation-free hot path (PR 1's 39→0 allocs/op
// on Model.Evaluate/Score): inside functions marked //irlint:hot it
// flags the constructs that put allocations back — implicit or
// explicit interface conversions (boxing), escaping closures, append
// without in-function capacity evidence, string concatenation and fmt
// calls. The AST-level check is complemented by cmd/escapegate, which
// diffs the compiler's actual escape-analysis verdicts against a
// committed allowlist; hotalloc catches the regression at the
// construct that causes it, escapegate catches whatever slips past
// the syntactic patterns.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags alloc-introducing constructs in //irlint:hot functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Index.Hot(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd.Body)
	evidenced := capacityEvidence(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkStringConcat(pass, n)
		case *ast.AssignStmt:
			checkAssignBoxing(pass, n)
		case *ast.CallExpr:
			checkCall(pass, n, evidenced)
		case *ast.FuncLit:
			checkFuncLit(pass, fd, n, parents)
			return false // closures are their own (non-hot) scope
		}
		return true
	})
}

// checkStringConcat flags runtime string concatenation; constant
// expressions fold at compile time and are exempt.
func checkStringConcat(pass *Pass, be *ast.BinaryExpr) {
	if be.Op.String() != "+" {
		return
	}
	tv, ok := pass.TypesInfo.Types[be]
	if !ok || tv.Value != nil { // untyped constant: folded
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	pass.Reportf(be.OpPos, "string concatenation on the hot path allocates; use a preallocated buffer or move it off the //irlint:hot function")
}

// checkAssignBoxing flags assigning a concrete value to an
// interface-typed variable (boxing).
func checkAssignBoxing(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(lhs)
		rt := pass.TypesInfo.TypeOf(as.Rhs[i])
		if boxes(lt, rt) && !exprIsNil(pass, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(), "assignment boxes %s into interface %s on the hot path (allocates unless escape analysis proves otherwise)", rt, lt)
		}
	}
}

// checkCall flags fmt calls, explicit conversions to interface types,
// implicit boxing at call arguments, and append without capacity
// evidence.
func checkCall(pass *Pass, call *ast.CallExpr, evidenced map[types.Object]bool) {
	// append without capacity evidence.
	if isBuiltin(pass, call.Fun, "append") && len(call.Args) > 0 {
		if !appendHasCapacityEvidence(pass, call.Args[0], evidenced) {
			pass.Reportf(call.Pos(), "append on the hot path without capacity evidence: grow the buffer from a reused arena (x[:0], three-arg make) or annotate //irlint:allow hotalloc(reason)")
		}
		return
	}
	// fmt.* calls.
	if pkg, fn, ok := pkgFuncCall(pass, call); ok && pkg == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s on the hot path allocates (formatting boxes its operands); format off the hot path", fn)
		return
	}
	// Explicit conversion to an interface type: I(x).
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(tv.Type, pass.TypesInfo.TypeOf(call.Args[0])) && !exprIsNil(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion boxes %s into interface %s on the hot path", pass.TypesInfo.TypeOf(call.Args[0]), tv.Type)
		}
		return
	}
	// Implicit boxing at call arguments.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice as-is
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		}
		if pt == nil {
			continue
		}
		if boxes(pt, pass.TypesInfo.TypeOf(arg)) && !exprIsNil(pass, arg) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface %s on the hot path", pass.TypesInfo.TypeOf(arg), pt)
		}
	}
}

// boxes reports whether assigning a value of type from to a location
// of type to converts a concrete value to an interface.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying())
}

// checkFuncLit flags closures that may escape. Two shapes are exempt
// because the compiler reliably keeps them on the stack: a literal
// called immediately (including via defer — deferred closures in
// non-looping positions are open-coded), and a literal bound to a
// local variable whose every use is a direct call.
func checkFuncLit(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, parents map[ast.Node]ast.Node) {
	switch p := parents[lit].(type) {
	case *ast.CallExpr:
		if p.Fun == lit {
			// Immediately invoked; a plain call or a defer is fine, but a
			// `go` launch always heap-allocates the closure.
			if _, isGo := parents[p].(*ast.GoStmt); isGo {
				pass.Reportf(lit.Pos(), "goroutine closure on the hot path heap-allocates; hoist the fan-out off the //irlint:hot function")
			}
			return
		}
	case *ast.AssignStmt:
		if id := assignedIdent(p, lit); id != nil && localCallOnly(pass, fd, id) {
			return
		}
	}
	pass.Reportf(lit.Pos(), "closure on the hot path may escape (captured variables heap-allocate); bind it to a local called directly, or annotate //irlint:allow hotalloc(reason)")
}

// assignedIdent returns the ident on the LHS matching lit's position
// on the RHS of a 1:1 or parallel assignment.
func assignedIdent(as *ast.AssignStmt, lit *ast.FuncLit) *ast.Ident {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, r := range as.Rhs {
		if r == lit {
			id, _ := as.Lhs[i].(*ast.Ident)
			return id
		}
	}
	return nil
}

// localCallOnly reports whether every use of the variable inside the
// function is as the function operand of a call.
func localCallOnly(pass *Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	ok := true
	parents := buildParents(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		use, isIdent := n.(*ast.Ident)
		if !isIdent || use == id || pass.TypesInfo.Uses[use] != obj {
			return true
		}
		call, isCall := parents[use].(*ast.CallExpr)
		if !isCall || call.Fun != use {
			ok = false
		}
		return true
	})
	return ok
}

// capacityEvidence collects the slice variables that the function
// demonstrably grows inside a reused arena: assigned from a slice
// expression (x[:0], scratch[:n]) or a three-arg make. append into
// such a variable reuses capacity in steady state.
func capacityEvidence(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	ev := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !providesCapacity(pass, as.Rhs[i]) {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				ev[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				ev[obj] = true
			}
		}
		return true
	})
	return ev
}

// providesCapacity reports whether the expression yields a slice with
// known reusable capacity: a slice expression or a three-arg make.
func providesCapacity(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		return isBuiltin(pass, e.Fun, "make") && len(e.Args) == 3
	}
	return false
}

// appendHasCapacityEvidence accepts append whose destination is a
// slice expression itself or an evidenced variable.
func appendHasCapacityEvidence(pass *Pass, dst ast.Expr, evidenced map[types.Object]bool) bool {
	switch d := ast.Unparen(dst).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[d]
		if obj == nil {
			obj = pass.TypesInfo.Defs[d]
		}
		return obj != nil && evidenced[obj]
	}
	return false
}

// buildParents maps every node in the subtree to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
