package annot

import (
	"strings"
	"testing"
)

func init() {
	// The real set is registered by internal/analysis; tests pin their
	// own so this package stays dependency-free.
	KnownAnalyzers["detmap"] = true
	KnownAnalyzers["detsource"] = true
	KnownAnalyzers["hotalloc"] = true
}

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		hot  bool
		want []Allow
	}{
		{in: "//irlint:hot", hot: true},
		{in: "//irlint:allow detmap(keys sorted below)", want: []Allow{{"detmap", "keys sorted below"}}},
		{in: "//irlint:allow detsource(obs timing only)", want: []Allow{{"detsource", "obs timing only"}}},
		{
			in:   "//irlint:allow detmap(order folded), detsource(obs timing only)",
			want: []Allow{{"detmap", "order folded"}, {"detsource", "obs timing only"}},
		},
		{in: "//irlint:allow hotalloc( cold path, spaces trimmed )", want: []Allow{{"hotalloc", "cold path, spaces trimmed"}}},
	}
	for _, c := range cases {
		d, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error: %v", c.in, err)
			continue
		}
		if d == nil {
			t.Errorf("Parse(%q): not recognized as a directive", c.in)
			continue
		}
		if d.Hot != c.hot {
			t.Errorf("Parse(%q): Hot = %v, want %v", c.in, d.Hot, c.hot)
		}
		if len(d.Allows) != len(c.want) {
			t.Errorf("Parse(%q): %d allows, want %d", c.in, len(d.Allows), len(c.want))
			continue
		}
		for i, a := range d.Allows {
			if a != c.want[i] {
				t.Errorf("Parse(%q): allow[%d] = %+v, want %+v", c.in, i, a, c.want[i])
			}
		}
	}
}

func TestParseNonDirective(t *testing.T) {
	for _, in := range []string{
		"// plain comment",
		"// irlint:allow detmap(spaced prefix is not a directive)",
		"//go:noinline",
		"//nolint:all",
	} {
		d, err := Parse(in)
		if d != nil || err != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil (not a directive)", in, d, err)
		}
	}
}

// TestParseMalformed pins the strictness contract: a malformed
// directive is an error, never a silent pass.
func TestParseMalformed(t *testing.T) {
	cases := []struct {
		in      string
		errWant string // substring of the error
	}{
		{"//irlint:frobnicate", "unknown irlint directive"},
		{"//irlint:", "unknown irlint directive"},
		{"//irlint:allowdetmap(x)", "unknown irlint directive"},
		{"//irlint:allow", "missing analyzer(reason) list"},
		{"//irlint:allow ", "missing analyzer(reason) list"},
		{"//irlint:allow detmap", "want analyzer(reason)"},
		{"//irlint:allow (no name)", "want analyzer(reason)"},
		{"//irlint:allow detmap(unterminated", "unterminated reason"},
		{"//irlint:allow detmap()", "missing reason"},
		{"//irlint:allow detmap(  )", "missing reason"},
		{"//irlint:allow nosuchanalyzer(reason here)", `unknown analyzer "nosuchanalyzer"`},
		{"//irlint:allow detmap(a) detsource(b)", "want ','"},
		{"//irlint:allow detmap(a),", "trailing comma"},
		{"//irlint:hot(why)", "no arguments"},
		{"//irlint:hotpath", "no arguments"},
	}
	for _, c := range cases {
		d, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) = %+v, nil; want error containing %q", c.in, d, c.errWant)
			continue
		}
		if !strings.Contains(err.Error(), c.errWant) {
			t.Errorf("Parse(%q) error = %q; want it to contain %q", c.in, err, c.errWant)
		}
	}
}
