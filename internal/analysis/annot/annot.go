// Package annot parses the //irlint: source annotations that the
// irlint analyzers honor:
//
//	//irlint:allow <analyzer>(<reason>)[, <analyzer>(<reason>)...]
//	//irlint:hot
//	//irlint:states <s1> <s2> ...
//	//irlint:initial <s>...
//	//irlint:terminal <s>...
//	//irlint:transition <from> -> <to1> <to2> ...
//
// An `allow` annotation suppresses the named analyzer on the line the
// comment appears on and — for a standalone comment — on the line
// following its comment group, so it can ride as a trailing comment or
// sit immediately above the statement it excuses. The reason is
// mandatory: every suppression is a reviewed decision with a stated
// justification, never a blanket opt-out.
//
// A `hot` annotation marks a function declaration (via its doc
// comment) as part of the allocation-free hot path; the hotalloc
// analyzer then flags alloc-introducing constructs inside it.
//
// The `states`/`initial`/`terminal`/`transition` family declares a
// state machine over string constant values, written as the doc
// comment of the struct field holding the state; the statemachine
// analyzer then checks every assignment, comparison and switch on that
// field against the declared transition relation. BuildMachine
// assembles and validates a block of these lines.
//
// Parsing is strict by design: a malformed directive, an unknown
// analyzer name or a missing reason is an error, not a silent pass —
// a typo in a suppression must fail the lint run rather than quietly
// re-enable it.
package annot

import (
	"fmt"
	"strings"
)

// Prefix introduces an irlint directive comment. Like //go: directives
// there is no space after the comment marker, which keeps the
// directives out of rendered documentation.
const Prefix = "//irlint:"

// Directive is one parsed //irlint: comment.
type Directive struct {
	// Hot is true for //irlint:hot.
	Hot bool
	// Allows holds the (analyzer, reason) pairs of an
	// //irlint:allow directive.
	Allows []Allow
	// States holds one line of a state-machine declaration block
	// (//irlint:states, :initial, :terminal or :transition).
	States *StatesLine
}

// StatesLine is one parsed line of a state-machine declaration.
type StatesLine struct {
	// Verb is "states", "initial", "terminal" or "transition".
	Verb string
	// From is the source state of a transition line; empty otherwise.
	From string
	// Names are the declared states, the initial/terminal lists, or a
	// transition line's target states.
	Names []string
}

// Allow is one analyzer suppression with its mandatory reason.
type Allow struct {
	Analyzer string
	Reason   string
}

// KnownAnalyzers is the set of analyzer names an allow annotation may
// reference. It is populated by the analysis package's registry at
// init time so annot itself stays dependency-free.
var KnownAnalyzers = map[string]bool{}

// IsDirective reports whether the comment text (including the //
// marker) is an irlint directive.
func IsDirective(text string) bool {
	return strings.HasPrefix(text, Prefix)
}

// Parse parses one comment line (including the leading //). It returns
// (nil, nil) when the comment is not an irlint directive at all, and a
// non-nil error for a directive that is present but malformed.
func Parse(text string) (*Directive, error) {
	if !IsDirective(text) {
		return nil, nil
	}
	body := strings.TrimPrefix(text, Prefix)
	switch {
	case body == "hot":
		return &Directive{Hot: true}, nil
	case strings.HasPrefix(body, "hot"):
		return nil, fmt.Errorf("malformed //irlint:hot directive %q: no arguments allowed", text)
	case strings.HasPrefix(body, "allow "):
		allows, err := parseAllows(strings.TrimPrefix(body, "allow "))
		if err != nil {
			return nil, err
		}
		return &Directive{Allows: allows}, nil
	case body == "allow":
		return nil, fmt.Errorf("malformed //irlint:allow directive: missing analyzer(reason) list")
	case isStatesVerb(body):
		line, err := parseStatesLine(body)
		if err != nil {
			return nil, err
		}
		return &Directive{States: line}, nil
	default:
		verb := body
		if i := strings.IndexAny(body, " ("); i >= 0 {
			verb = body[:i]
		}
		return nil, fmt.Errorf("unknown irlint directive %q (want allow or hot)", verb)
	}
}

// parseAllows parses "name(reason), name2(reason2)".
func parseAllows(s string) ([]Allow, error) {
	var out []Allow
	rest := strings.TrimSpace(s)
	if rest == "" {
		return nil, fmt.Errorf("malformed //irlint:allow directive: missing analyzer(reason) list")
	}
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		if open <= 0 {
			return nil, fmt.Errorf("malformed //irlint:allow entry %q: want analyzer(reason)", rest)
		}
		name := strings.TrimSpace(rest[:open])
		// The reason runs to the matching close paren; reasons may not
		// nest parens, which keeps the grammar unambiguous.
		close := strings.IndexByte(rest[open:], ')')
		if close < 0 {
			return nil, fmt.Errorf("malformed //irlint:allow entry %q: unterminated reason", rest)
		}
		close += open
		reason := strings.TrimSpace(rest[open+1 : close])
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("malformed //irlint:allow entry %q: bad analyzer name", rest)
		}
		if !KnownAnalyzers[name] {
			return nil, fmt.Errorf("//irlint:allow names unknown analyzer %q", name)
		}
		if reason == "" {
			return nil, fmt.Errorf("//irlint:allow %s: missing reason — every suppression must state why", name)
		}
		out = append(out, Allow{Analyzer: name, Reason: reason})
		rest = strings.TrimSpace(rest[close+1:])
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return nil, fmt.Errorf("malformed //irlint:allow directive: want ',' between entries, got %q", rest)
		}
		rest = strings.TrimSpace(rest[1:])
		if rest == "" {
			return nil, fmt.Errorf("malformed //irlint:allow directive: trailing comma")
		}
	}
	return out, nil
}

// isStatesVerb reports whether the directive body starts with a
// state-machine verb.
func isStatesVerb(body string) bool {
	for _, verb := range []string{"states", "initial", "terminal", "transition"} {
		if body == verb || strings.HasPrefix(body, verb+" ") {
			return true
		}
	}
	return false
}

// parseStatesLine parses the body (prefix stripped) of one
// state-machine directive line.
func parseStatesLine(body string) (*StatesLine, error) {
	fields := strings.Fields(body)
	verb := fields[0]
	args := fields[1:]
	if len(args) == 0 {
		return nil, fmt.Errorf("malformed //irlint:%s directive: missing state list", verb)
	}
	for _, a := range args {
		if a != "->" && !validStateName(a) {
			return nil, fmt.Errorf("malformed //irlint:%s directive: bad state name %q (want lowercase identifiers)", verb, a)
		}
	}
	if verb != "transition" {
		for _, a := range args {
			if a == "->" {
				return nil, fmt.Errorf("malformed //irlint:%s directive: '->' is only valid in a transition line", verb)
			}
		}
		return &StatesLine{Verb: verb, Names: args}, nil
	}
	if len(args) < 3 || args[1] != "->" {
		return nil, fmt.Errorf("malformed //irlint:transition directive %q: want \"from -> to...\"", body)
	}
	for _, a := range args[2:] {
		if a == "->" {
			return nil, fmt.Errorf("malformed //irlint:transition directive %q: more than one '->'", body)
		}
	}
	return &StatesLine{Verb: verb, From: args[0], Names: args[2:]}, nil
}

// validStateName accepts lowercase identifier-shaped state names, which
// keeps declarations readable and unambiguous with the '->' arrow.
func validStateName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_'
		if !ok || (i == 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// Machine is a validated state-machine declaration: the state set, the
// initial and terminal subsets, and the legal transition relation.
type Machine struct {
	// States lists every declared state in declaration order.
	States []string
	// Initial and Terminal are the declared subsets.
	Initial  map[string]bool
	Terminal map[string]bool
	// Edges maps a source state to its legal target set.
	Edges map[string]map[string]bool
}

// Declared reports whether s is a declared state.
func (m *Machine) Declared(s string) bool {
	for _, d := range m.States {
		if d == s {
			return true
		}
	}
	return false
}

// Allows reports whether the transition from -> to is declared.
// Self-transitions are always legal: re-asserting the current state is
// a no-op, not a state change.
func (m *Machine) Allows(from, to string) bool {
	if from == to {
		return true
	}
	return m.Edges[from][to]
}

// HasInbound reports whether any declared transition targets s (or s is
// initial): the reachability requirement for an assignment site whose
// source state is not statically known.
func (m *Machine) HasInbound(s string) bool {
	if m.Initial[s] {
		return true
	}
	for _, tos := range m.Edges {
		if tos[s] {
			return true
		}
	}
	return false
}

// Lines renders the machine back as directive lines (without the
// comment marker), in canonical order; Lines of a machine built by
// BuildMachine re-parse to an equivalent machine (the round-trip the
// parser tests pin).
func (m *Machine) Lines() []string {
	out := []string{Prefix + "states " + strings.Join(m.States, " ")}
	var initial, terminal []string
	for _, s := range m.States {
		if m.Initial[s] {
			initial = append(initial, s)
		}
		if m.Terminal[s] {
			terminal = append(terminal, s)
		}
	}
	out = append(out, Prefix+"initial "+strings.Join(initial, " "))
	if len(terminal) > 0 {
		out = append(out, Prefix+"terminal "+strings.Join(terminal, " "))
	}
	for _, from := range m.States {
		tos := m.Edges[from]
		if len(tos) == 0 {
			continue
		}
		var targets []string
		for _, s := range m.States {
			if tos[s] {
				targets = append(targets, s)
			}
		}
		out = append(out, Prefix+"transition "+from+" -> "+strings.Join(targets, " "))
	}
	return out
}

// BuildMachine assembles a declaration block's parsed lines into a
// validated Machine. Validation is strict for the same reason allow
// parsing is: a misdeclared machine silently legalizing (or outlawing)
// transitions is worse than a failed lint run. Errors: no states line,
// more than one states/initial/terminal line, duplicate states,
// undeclared names in any line, no initial state, a terminal state
// with outgoing transitions, duplicate transition targets, and states
// unreachable from the initial set.
func BuildMachine(lines []*StatesLine) (*Machine, error) {
	m := &Machine{
		Initial:  map[string]bool{},
		Terminal: map[string]bool{},
		Edges:    map[string]map[string]bool{},
	}
	var sawStates, sawInitial, sawTerminal bool
	for _, ln := range lines {
		switch ln.Verb {
		case "states":
			if sawStates {
				return nil, fmt.Errorf("duplicate //irlint:states line (declare the state set once)")
			}
			sawStates = true
			seen := map[string]bool{}
			for _, s := range ln.Names {
				if seen[s] {
					return nil, fmt.Errorf("duplicate state %q in //irlint:states", s)
				}
				seen[s] = true
				m.States = append(m.States, s)
			}
		case "initial", "terminal":
			if ln.Verb == "initial" {
				if sawInitial {
					return nil, fmt.Errorf("duplicate //irlint:initial line")
				}
				sawInitial = true
			} else {
				if sawTerminal {
					return nil, fmt.Errorf("duplicate //irlint:terminal line")
				}
				sawTerminal = true
			}
			if !sawStates {
				return nil, fmt.Errorf("//irlint:%s before //irlint:states (declare the state set first)", ln.Verb)
			}
			set := m.Initial
			if ln.Verb == "terminal" {
				set = m.Terminal
			}
			for _, s := range ln.Names {
				if !m.Declared(s) {
					return nil, fmt.Errorf("//irlint:%s names undeclared state %q", ln.Verb, s)
				}
				if set[s] {
					return nil, fmt.Errorf("duplicate state %q in //irlint:%s", s, ln.Verb)
				}
				set[s] = true
			}
		case "transition":
			if !sawStates {
				return nil, fmt.Errorf("//irlint:transition before //irlint:states (declare the state set first)")
			}
			if !m.Declared(ln.From) {
				return nil, fmt.Errorf("//irlint:transition from undeclared state %q", ln.From)
			}
			tos := m.Edges[ln.From]
			if tos == nil {
				tos = map[string]bool{}
				m.Edges[ln.From] = tos
			}
			for _, s := range ln.Names {
				if !m.Declared(s) {
					return nil, fmt.Errorf("//irlint:transition %s -> %s: undeclared target state", ln.From, s)
				}
				if tos[s] {
					return nil, fmt.Errorf("duplicate transition %s -> %s", ln.From, s)
				}
				if s == ln.From {
					return nil, fmt.Errorf("self-transition %s -> %s is implicit; do not declare it", ln.From, s)
				}
				tos[s] = true
			}
		default:
			return nil, fmt.Errorf("unexpected state-machine verb %q", ln.Verb)
		}
	}
	if !sawStates {
		return nil, fmt.Errorf("state-machine declaration has no //irlint:states line")
	}
	if len(m.Initial) == 0 {
		return nil, fmt.Errorf("state-machine declaration has no initial state (//irlint:initial)")
	}
	for s := range m.Terminal {
		if len(m.Edges[s]) > 0 {
			return nil, fmt.Errorf("terminal state %q has outgoing transitions", s)
		}
	}
	// Every state must be reachable from the initial set.
	reached := map[string]bool{}
	var frontier []string
	for s := range m.Initial {
		reached[s] = true
		frontier = append(frontier, s)
	}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for t := range m.Edges[s] {
			if !reached[t] {
				reached[t] = true
				frontier = append(frontier, t)
			}
		}
	}
	for _, s := range m.States {
		if !reached[s] {
			return nil, fmt.Errorf("state %q is unreachable from the initial state", s)
		}
	}
	return m, nil
}

// ParseStates extracts and assembles the state-machine declaration of a
// comment block (each element one comment line including the leading
// //), ignoring non-directive lines. It returns (nil, nil) when the
// block carries no state-machine lines at all.
func ParseStates(comments []string) (*Machine, error) {
	var lines []*StatesLine
	for _, text := range comments {
		d, err := Parse(text)
		if err != nil {
			// Malformed directives are annotcheck's findings; the machine
			// builder sees only well-formed lines.
			continue
		}
		if d != nil && d.States != nil {
			lines = append(lines, d.States)
		}
	}
	if len(lines) == 0 {
		return nil, nil
	}
	return BuildMachine(lines)
}
