// Package annot parses the //irlint: source annotations that the
// irlint analyzers honor:
//
//	//irlint:allow <analyzer>(<reason>)[, <analyzer>(<reason>)...]
//	//irlint:hot
//
// An `allow` annotation suppresses the named analyzer on the line the
// comment appears on and — for a standalone comment — on the line
// following its comment group, so it can ride as a trailing comment or
// sit immediately above the statement it excuses. The reason is
// mandatory: every suppression is a reviewed decision with a stated
// justification, never a blanket opt-out.
//
// A `hot` annotation marks a function declaration (via its doc
// comment) as part of the allocation-free hot path; the hotalloc
// analyzer then flags alloc-introducing constructs inside it.
//
// Parsing is strict by design: a malformed directive, an unknown
// analyzer name or a missing reason is an error, not a silent pass —
// a typo in a suppression must fail the lint run rather than quietly
// re-enable it.
package annot

import (
	"fmt"
	"strings"
)

// Prefix introduces an irlint directive comment. Like //go: directives
// there is no space after the comment marker, which keeps the
// directives out of rendered documentation.
const Prefix = "//irlint:"

// Directive is one parsed //irlint: comment.
type Directive struct {
	// Hot is true for //irlint:hot.
	Hot bool
	// Allows holds the (analyzer, reason) pairs of an
	// //irlint:allow directive.
	Allows []Allow
}

// Allow is one analyzer suppression with its mandatory reason.
type Allow struct {
	Analyzer string
	Reason   string
}

// KnownAnalyzers is the set of analyzer names an allow annotation may
// reference. It is populated by the analysis package's registry at
// init time so annot itself stays dependency-free.
var KnownAnalyzers = map[string]bool{}

// IsDirective reports whether the comment text (including the //
// marker) is an irlint directive.
func IsDirective(text string) bool {
	return strings.HasPrefix(text, Prefix)
}

// Parse parses one comment line (including the leading //). It returns
// (nil, nil) when the comment is not an irlint directive at all, and a
// non-nil error for a directive that is present but malformed.
func Parse(text string) (*Directive, error) {
	if !IsDirective(text) {
		return nil, nil
	}
	body := strings.TrimPrefix(text, Prefix)
	switch {
	case body == "hot":
		return &Directive{Hot: true}, nil
	case strings.HasPrefix(body, "hot"):
		return nil, fmt.Errorf("malformed //irlint:hot directive %q: no arguments allowed", text)
	case strings.HasPrefix(body, "allow "):
		allows, err := parseAllows(strings.TrimPrefix(body, "allow "))
		if err != nil {
			return nil, err
		}
		return &Directive{Allows: allows}, nil
	case body == "allow":
		return nil, fmt.Errorf("malformed //irlint:allow directive: missing analyzer(reason) list")
	default:
		verb := body
		if i := strings.IndexAny(body, " ("); i >= 0 {
			verb = body[:i]
		}
		return nil, fmt.Errorf("unknown irlint directive %q (want allow or hot)", verb)
	}
}

// parseAllows parses "name(reason), name2(reason2)".
func parseAllows(s string) ([]Allow, error) {
	var out []Allow
	rest := strings.TrimSpace(s)
	if rest == "" {
		return nil, fmt.Errorf("malformed //irlint:allow directive: missing analyzer(reason) list")
	}
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		if open <= 0 {
			return nil, fmt.Errorf("malformed //irlint:allow entry %q: want analyzer(reason)", rest)
		}
		name := strings.TrimSpace(rest[:open])
		// The reason runs to the matching close paren; reasons may not
		// nest parens, which keeps the grammar unambiguous.
		close := strings.IndexByte(rest[open:], ')')
		if close < 0 {
			return nil, fmt.Errorf("malformed //irlint:allow entry %q: unterminated reason", rest)
		}
		close += open
		reason := strings.TrimSpace(rest[open+1 : close])
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("malformed //irlint:allow entry %q: bad analyzer name", rest)
		}
		if !KnownAnalyzers[name] {
			return nil, fmt.Errorf("//irlint:allow names unknown analyzer %q", name)
		}
		if reason == "" {
			return nil, fmt.Errorf("//irlint:allow %s: missing reason — every suppression must state why", name)
		}
		out = append(out, Allow{Analyzer: name, Reason: reason})
		rest = strings.TrimSpace(rest[close+1:])
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return nil, fmt.Errorf("malformed //irlint:allow directive: want ',' between entries, got %q", rest)
		}
		rest = strings.TrimSpace(rest[1:])
		if rest == "" {
			return nil, fmt.Errorf("malformed //irlint:allow directive: trailing comma")
		}
	}
	return out, nil
}
