package annot

import (
	"strings"
	"testing"
)

// TestParseStatesValid builds the job machine from its declaration
// block and checks the derived relations: Declared, Allows (with
// implicit self-transitions), HasInbound (initial counts as reachable)
// and the initial/terminal subsets.
func TestParseStatesValid(t *testing.T) {
	m, err := ParseStates([]string{
		"//irlint:states queued running done failed canceled",
		"//irlint:initial queued",
		"//irlint:terminal done failed canceled",
		"//irlint:transition queued -> running canceled",
		"//irlint:transition running -> done failed canceled queued",
	})
	if err != nil {
		t.Fatalf("ParseStates: %v", err)
	}
	if m == nil {
		t.Fatal("ParseStates returned no machine")
	}
	if got := strings.Join(m.States, " "); got != "queued running done failed canceled" {
		t.Errorf("States = %q", got)
	}
	if !m.Initial["queued"] || len(m.Initial) != 1 {
		t.Errorf("Initial = %v, want {queued}", m.Initial)
	}
	for _, s := range []string{"done", "failed", "canceled"} {
		if !m.Terminal[s] {
			t.Errorf("Terminal[%s] = false", s)
		}
	}
	allows := []struct {
		from, to string
		want     bool
	}{
		{"queued", "running", true},
		{"running", "queued", true}, // requeue-on-recovery is declared
		{"queued", "done", false},
		{"done", "queued", false},
		{"running", "running", true}, // self-transitions are implicit
		{"nosuch", "nosuch", true},   // self rule is unconditional; Declared guards the names
	}
	for _, c := range allows {
		if got := m.Allows(c.from, c.to); got != c.want {
			t.Errorf("Allows(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	if !m.HasInbound("queued") {
		t.Error("HasInbound(queued) = false; the initial state is reachable by definition")
	}
	if !m.HasInbound("done") || m.HasInbound("nosuch") {
		t.Error("HasInbound should accept targeted states and reject unknown ones")
	}
	if m.Declared("nosuch") {
		t.Error(`Declared("nosuch") = true`)
	}
}

// TestParseStatesIgnoresNoise pins the extraction rules: plain comment
// lines and other irlint directives are skipped, malformed directive
// lines are annotcheck's findings (skipped here), and a block with no
// states lines at all yields (nil, nil).
func TestParseStatesIgnoresNoise(t *testing.T) {
	m, err := ParseStates([]string{
		"// state holds the job's lifecycle phase.",
		"//irlint:states a b",
		"//irlint:hot",
		"//irlint:transition a -> b -> b", // malformed: skipped, not fatal
		"//irlint:initial a",
		"//irlint:transition a -> b",
	})
	if err != nil {
		t.Fatalf("ParseStates: %v", err)
	}
	if m == nil || !m.Allows("a", "b") {
		t.Fatalf("machine not assembled from the well-formed lines: %+v", m)
	}

	m, err = ParseStates([]string{"// no directives here", "//irlint:hot"})
	if err != nil || m != nil {
		t.Fatalf("ParseStates(no states lines) = %+v, %v; want nil, nil", m, err)
	}
}

// TestBuildMachineStrict enumerates the declaration-table errors: the
// builder must reject every misdeclared machine rather than guess.
func TestBuildMachineStrict(t *testing.T) {
	cases := []struct {
		name    string
		lines   []string
		errWant string
	}{
		{
			"duplicate states line",
			[]string{"//irlint:states a b", "//irlint:states b a", "//irlint:initial a", "//irlint:transition a -> b"},
			"duplicate //irlint:states line",
		},
		{
			"duplicate state",
			[]string{"//irlint:states a a", "//irlint:initial a"},
			`duplicate state "a"`,
		},
		{
			"states must come first",
			[]string{"//irlint:initial a", "//irlint:states a"},
			"before //irlint:states",
		},
		{
			"undeclared initial",
			[]string{"//irlint:states a b", "//irlint:initial c", "//irlint:transition a -> b"},
			`names undeclared state "c"`,
		},
		{
			"no initial",
			[]string{"//irlint:states a b", "//irlint:transition a -> b"},
			"no initial state",
		},
		{
			"undeclared transition source",
			[]string{"//irlint:states a b", "//irlint:initial a", "//irlint:transition c -> b"},
			`from undeclared state "c"`,
		},
		{
			"undeclared transition target",
			[]string{"//irlint:states a b", "//irlint:initial a", "//irlint:transition a -> c"},
			"undeclared target state",
		},
		{
			"duplicate transition",
			[]string{"//irlint:states a b", "//irlint:initial a", "//irlint:transition a -> b b"},
			"duplicate transition a -> b",
		},
		{
			"declared self-transition",
			[]string{"//irlint:states a b", "//irlint:initial a", "//irlint:transition a -> a b"},
			"self-transition a -> a is implicit",
		},
		{
			"terminal with outgoing edges",
			[]string{"//irlint:states a b", "//irlint:initial a", "//irlint:terminal a", "//irlint:transition a -> b"},
			`terminal state "a" has outgoing transitions`,
		},
		{
			"unreachable state",
			[]string{"//irlint:states a b c", "//irlint:initial a", "//irlint:transition a -> b"},
			`state "c" is unreachable`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := ParseStates(c.lines)
			if err == nil {
				t.Fatalf("ParseStates(%v) = %+v, nil; want error containing %q", c.lines, m, c.errWant)
			}
			if !strings.Contains(err.Error(), c.errWant) {
				t.Errorf("error = %q; want it to contain %q", err, c.errWant)
			}
		})
	}
}

// TestMachineLinesRoundTrip pins the canonical rendering: Lines() of a
// built machine re-parse (through the same strict builder) to an
// equivalent machine.
func TestMachineLinesRoundTrip(t *testing.T) {
	src := []string{
		"//irlint:states queued running done failed",
		"//irlint:initial queued",
		"//irlint:terminal done failed",
		"//irlint:transition queued -> running failed",
		"//irlint:transition running -> done failed",
	}
	m, err := ParseStates(src)
	if err != nil {
		t.Fatalf("ParseStates: %v", err)
	}
	lines := m.Lines()
	for _, ln := range lines {
		if !strings.HasPrefix(ln, Prefix) {
			t.Fatalf("Lines() entry %q does not carry the directive prefix", ln)
		}
	}
	m2, err := ParseStates(lines)
	if err != nil {
		t.Fatalf("re-parsing Lines(): %v", err)
	}
	if strings.Join(m2.States, " ") != strings.Join(m.States, " ") {
		t.Errorf("round-trip changed the state set: %v vs %v", m2.States, m.States)
	}
	for _, from := range m.States {
		for _, to := range m.States {
			if m.Allows(from, to) != m2.Allows(from, to) {
				t.Errorf("round-trip changed Allows(%s, %s)", from, to)
			}
		}
		if m.Initial[from] != m2.Initial[from] || m.Terminal[from] != m2.Terminal[from] {
			t.Errorf("round-trip changed the %s subsets", from)
		}
	}
}
