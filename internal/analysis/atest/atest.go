// Package atest is the golden-file harness for the irlint analyzers,
// after the style of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under internal/analysis/testdata/src/, carry
// `// want "regexp"` comments on the lines where a diagnostic is
// expected, and Run fails the test on any missed or surplus finding.
//
// Fixture import paths are relative to testdata/src/, and the
// analyzers resolve package gates through EffectivePath, so a fixture
// directory named irgrid/internal/core impersonates the production
// engine package.
package atest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"irgrid/internal/analysis"
	"irgrid/internal/analysis/load"
)

// wantRe matches both line and block comment forms (the block form
// lets a want expectation share a line with a trailing //irlint:
// directive, whose diagnostics land on the directive itself), and both
// quoting styles: "..." with \" escapes, or `...` verbatim.
var wantRe = regexp.MustCompile("(?://|/\\*)\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// want is one expectation: a diagnostic on file:line matching pattern.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// TestdataDir returns the analyzer testdata root, resolved relative to
// this source file so tests work regardless of the working directory.
func TestdataDir(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate atest source file")
	}
	return filepath.Join(filepath.Dir(thisFile), "..", "testdata")
}

// Run loads each fixture package (an import path relative to
// testdata/src) and checks the analyzer's diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	dir := filepath.Join(TestdataDir(t), "src")
	for _, fixture := range fixtures {
		t.Run(strings.ReplaceAll(fixture, "/", "_"), func(t *testing.T) {
			runOne(t, a, dir, fixture)
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, srcDir, fixture string) {
	t.Helper()
	pkgs, err := load.Load(filepath.Join(srcDir, fixture), ".")
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", fixture, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", fixture, terr)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)

	var got []analysis.Diagnostic
	ix := analysis.BuildIndex(pkg.Fset, pkg.Files)
	// Same-package facts only: cross-package fact flow is the
	// unitchecker round-trip test's domain.
	facts := analysis.ComputeFacts(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, nil)
	pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, ix,
		analysis.NewFactStore(facts, nil),
		func(d analysis.Diagnostic) { got = append(got, d) })
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, fixture, err)
	}

	for _, d := range got {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", fixture, d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", fixture, w.file, w.line, w.pattern)
		}
	}
}

// collectWants extracts the want comments of every fixture file.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				raw := m[2] // backquoted: verbatim
				if m[1] != "" || m[2] == "" {
					raw = unquoteWant(m[1])
				}
				pat, err := regexp.Compile(raw)
				if err != nil {
					pos := fset.Position(c.Pos())
					t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
				}
				pos := fset.Position(c.Pos())
				out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: pat})
			}
		}
	}
	return out
}

// unquoteWant undoes the \" escaping inside a double-quoted want
// string. Other backslashes pass through untouched — they belong to
// the regexp (e.g. \*), since comment text is not a Go string literal.
func unquoteWant(s string) string {
	return strings.ReplaceAll(s, `\"`, `"`)
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Describe formats diagnostics for failure messages.
func Describe(ds []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
