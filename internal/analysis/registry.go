package analysis

import "irgrid/internal/analysis/annot"

// All returns the full irlint suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		Detmap, Detsource, Hotalloc, Ctxpropagate, Obssafe, Annotcheck,
		Lockscope, Lockorder, Atomicmix, Golifecycle, Statemachine,
	}
}

func init() {
	// Teach the annotation parser which analyzer names are valid in
	// //irlint:allow lists. annotcheck itself is excluded: suppressing
	// the suppression checker would be self-defeating.
	for _, a := range All() {
		if a.Name == Annotcheck.Name {
			continue
		}
		annot.KnownAnalyzers[a.Name] = true
	}
}
