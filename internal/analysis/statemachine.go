package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"irgrid/internal/analysis/annot"
)

// Statemachine verifies declared state machines. A struct field
// carrying an //irlint:states declaration block in its doc comment —
// the job queue's `state` field is the motivating machine — binds the
// field to a validated transition relation over string state values:
//
//	//irlint:states queued running done
//	//irlint:initial queued
//	//irlint:terminal done
//	//irlint:transition queued -> running
//	//irlint:transition running -> done
//	state string
//
// Every assignment to the field must then perform a declared
// transition. When the source state is statically known (the
// assignment is dominated by an `if f == K` or a `switch f { case K }`
// on the same field), the exact edge K → target must be declared; when
// it is unknown, the target must at least be reachable (initial or
// with an inbound edge). Assignments of non-constant values defeat the
// proof and are findings — restore from a checkpoint under a reviewed
// //irlint:allow. Comparisons and case labels must name declared
// states, and a `switch` over the field without a default must be
// exhaustive, so adding a state revisits every consumer.
var Statemachine = &Analyzer{
	Name: "statemachine",
	Doc:  "state fields declared with //irlint:states may only perform declared transitions",
	Run:  runStatemachine,
}

func runStatemachine(pass *Pass) error {
	machines := collectMachines(pass)
	if len(machines) == 0 {
		return nil
	}
	c := &smChecker{pass: pass, machines: machines}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.stmts(fd.Body.List, map[string]string{})
		}
	}
	return nil
}

// collectMachines finds struct fields whose doc comments declare a
// state machine, keyed by the field's FieldKey. Invalid declarations
// are findings at the field.
func collectMachines(pass *Pass) map[string]*annot.Machine {
	machines := map[string]*annot.Machine{}
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, isStruct := ts.Type.(*ast.StructType)
			if !isStruct {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Doc == nil {
					continue
				}
				var comments []string
				for _, cm := range field.Doc.List {
					comments = append(comments, cm.Text)
				}
				m, err := annot.ParseStates(comments)
				if err != nil {
					pass.Reportf(field.Pos(), "invalid state-machine declaration: %v", err)
					continue
				}
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					if key, keyed := FieldKey(obj.Type(), name.Name); keyed {
						machines[key] = m
					}
				}
			}
			return true
		})
	}
	return machines
}

// smChecker walks function bodies tracking, per machine field, the
// state the field is known to hold on the current path (from a
// dominating comparison or an earlier constant assignment).
type smChecker struct {
	pass     *Pass
	machines map[string]*annot.Machine
}

// machineField resolves an expression to a declared machine's field
// key.
func (c *smChecker) machineField(e ast.Expr) (string, *annot.Machine, bool) {
	key, ok := plainFieldKey(c.pass.TypesInfo, e)
	if !ok {
		return "", nil, false
	}
	m, declared := c.machines[key]
	return key, m, declared
}

// constState evaluates an expression to a constant string state value.
func (c *smChecker) constState(e ast.Expr) (string, bool) {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func (c *smChecker) stmts(list []ast.Stmt, known map[string]string) {
	for _, s := range list {
		c.stmt(s, known)
	}
}

func (c *smChecker) stmt(s ast.Stmt, known map[string]string) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			c.expr(e, known)
		}
		for i, lhs := range st.Lhs {
			key, m, isMachine := c.machineField(lhs)
			if !isMachine {
				continue
			}
			if i < len(st.Rhs) && len(st.Rhs) == len(st.Lhs) {
				c.checkAssign(key, m, known, st.Lhs[i], st.Rhs[i])
			} else {
				// Multi-value or mismatched assignment: non-constant.
				c.pass.Reportf(lhs.Pos(),
					"state field %s assigned a non-constant value: the transition cannot be verified", key)
				delete(known, key)
			}
		}
	case *ast.ExprStmt:
		c.expr(st.X, known)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.expr(e, known)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init, known)
		}
		c.expr(st.Cond, known)
		branchKnown := copyStates(known)
		for key, val := range c.condStates(st.Cond) {
			branchKnown[key] = val
		}
		c.stmts(st.Body.List, branchKnown)
		if st.Else != nil {
			c.stmt(st.Else, copyStates(known))
		}
		wipeStates(known)
	case *ast.SwitchStmt:
		c.switchStmt(st, known)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init, known)
		}
		for _, cl := range st.Body.List {
			if cc, isCase := cl.(*ast.CaseClause); isCase {
				c.stmts(cc.Body, copyStates(known))
			}
		}
		wipeStates(known)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init, known)
		}
		c.expr(st.Cond, known)
		// Loop bodies re-enter with an unknown field state: a previous
		// iteration may have transitioned it.
		body := map[string]string{}
		c.stmts(st.Body.List, body)
		if st.Post != nil {
			c.stmt(st.Post, body)
		}
		wipeStates(known)
	case *ast.RangeStmt:
		c.expr(st.X, known)
		c.stmts(st.Body.List, map[string]string{})
		wipeStates(known)
	case *ast.BlockStmt:
		c.stmts(st.List, known)
	case *ast.LabeledStmt:
		c.stmt(st.Stmt, known)
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			if cc, isComm := cl.(*ast.CommClause); isComm {
				if cc.Comm != nil {
					c.stmt(cc.Comm, copyStates(known))
				}
				c.stmts(cc.Body, copyStates(known))
			}
		}
		wipeStates(known)
	case *ast.GoStmt:
		c.expr(st.Call, map[string]string{})
	case *ast.DeferStmt:
		c.expr(st.Call, map[string]string{})
	case *ast.SendStmt:
		c.expr(st.Chan, known)
		c.expr(st.Value, known)
	case *ast.DeclStmt, *ast.IncDecStmt:
		c.exprIn(s, known)
	}
}

// checkAssign verifies one `field = value` site.
func (c *smChecker) checkAssign(key string, m *annot.Machine, known map[string]string, lhs, rhs ast.Expr) {
	to, isConst := c.constState(rhs)
	if !isConst {
		c.pass.Reportf(lhs.Pos(),
			"state field %s assigned a non-constant value: the transition cannot be verified", key)
		delete(known, key)
		return
	}
	if !m.Declared(to) {
		c.pass.Reportf(rhs.Pos(), "state field %s assigned undeclared state %q", key, to)
		delete(known, key)
		return
	}
	if from, hasFrom := known[key]; hasFrom {
		if !m.Allows(from, to) {
			c.pass.Reportf(lhs.Pos(),
				"undeclared state transition %s -> %s on %s", from, to, key)
		}
	} else if !m.HasInbound(to) {
		c.pass.Reportf(lhs.Pos(),
			"state field %s assigned %q, which no declared transition reaches", key, to)
	}
	known[key] = to
}

// condStates extracts `field == Const` facts from an if condition's
// conjuncts.
func (c *smChecker) condStates(cond ast.Expr) map[string]string {
	out := map[string]string{}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		be, isBin := ast.Unparen(e).(*ast.BinaryExpr)
		if !isBin {
			return
		}
		switch be.Op {
		case token.LAND:
			walk(be.X)
			walk(be.Y)
		case token.EQL:
			x, y := be.X, be.Y
			if key, _, isMachine := c.machineField(x); isMachine {
				if val, isConst := c.constState(y); isConst {
					out[key] = val
				}
			} else if key, _, isMachine := c.machineField(y); isMachine {
				if val, isConst := c.constState(x); isConst {
					out[key] = val
				}
			}
		}
	}
	walk(cond)
	return out
}

// switchStmt handles `switch field { ... }`: case labels must be
// declared states, the switch must be exhaustive unless it has a
// default clause, and single-state case bodies know their from-state.
func (c *smChecker) switchStmt(st *ast.SwitchStmt, known map[string]string) {
	if st.Init != nil {
		c.stmt(st.Init, known)
	}
	var key string
	var m *annot.Machine
	isMachine := false
	if st.Tag != nil {
		c.expr(st.Tag, known)
		key, m, isMachine = c.machineField(st.Tag)
	}
	covered := map[string]bool{}
	hasDefault := false
	for _, cl := range st.Body.List {
		cc, isCase := cl.(*ast.CaseClause)
		if !isCase {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseKnown := copyStates(known)
		if isMachine {
			for _, label := range cc.List {
				val, isConst := c.constState(label)
				if !isConst {
					continue
				}
				if !m.Declared(val) {
					c.pass.Reportf(label.Pos(), "switch over %s names undeclared state %q", key, val)
					continue
				}
				covered[val] = true
			}
			if len(cc.List) == 1 {
				if val, isConst := c.constState(cc.List[0]); isConst && m.Declared(val) {
					caseKnown[key] = val
				}
			}
		}
		c.stmts(cc.Body, caseKnown)
	}
	if isMachine && !hasDefault {
		var missing []string
		for _, s := range m.States {
			if !covered[s] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			c.pass.Reportf(st.Switch,
				"switch over %s is not exhaustive: missing %s (add the cases or a default)",
				key, strings.Join(missing, ", "))
		}
	}
	wipeStates(known)
}

// expr scans an expression for machine-field comparisons, composite-
// literal initializations, and nested function literals.
func (c *smChecker) expr(e ast.Expr, known map[string]string) {
	if e == nil {
		return
	}
	c.exprIn(e, known)
}

func (c *smChecker) exprIn(n ast.Node, known map[string]string) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			c.stmts(e.Body.List, map[string]string{})
			return false
		case *ast.BinaryExpr:
			if e.Op == token.EQL || e.Op == token.NEQ {
				c.checkCompare(e)
			}
		case *ast.CompositeLit:
			c.checkComposite(e, known)
		}
		return true
	})
}

// checkCompare requires the constant side of a machine-field
// comparison to name a declared state.
func (c *smChecker) checkCompare(be *ast.BinaryExpr) {
	check := func(fieldSide, valueSide ast.Expr) {
		key, m, isMachine := c.machineField(fieldSide)
		if !isMachine {
			return
		}
		val, isConst := c.constState(valueSide)
		if !isConst {
			return
		}
		if !m.Declared(val) {
			c.pass.Reportf(valueSide.Pos(), "comparison of %s against undeclared state %q", key, val)
		}
	}
	check(be.X, be.Y)
	check(be.Y, be.X)
}

// checkComposite verifies machine fields initialized in struct
// literals: the value must be a declared, reachable state (the
// from-state of a fresh literal is unknown).
func (c *smChecker) checkComposite(cl *ast.CompositeLit, known map[string]string) {
	tv, ok := c.pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	for _, el := range cl.Elts {
		kv, isKV := el.(*ast.KeyValueExpr)
		if !isKV {
			continue
		}
		id, isIdent := kv.Key.(*ast.Ident)
		if !isIdent {
			continue
		}
		key, keyed := FieldKey(tv.Type, id.Name)
		if !keyed {
			continue
		}
		m, declared := c.machines[key]
		if !declared {
			continue
		}
		to, isConst := c.constState(kv.Value)
		if !isConst {
			c.pass.Reportf(kv.Value.Pos(),
				"state field %s initialized with a non-constant value: the state cannot be verified", key)
			continue
		}
		if !m.Declared(to) {
			c.pass.Reportf(kv.Value.Pos(), "state field %s initialized with undeclared state %q", key, to)
			continue
		}
		if !m.HasInbound(to) {
			c.pass.Reportf(kv.Value.Pos(),
				"state field %s initialized with %q, which no declared transition reaches", key, to)
		}
	}
}

func copyStates(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func wipeStates(m map[string]string) {
	for k := range m {
		delete(m, k)
	}
}
