package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockscope forbids holding a service-layer mutex across a blocking
// operation: a channel send/receive, a blocking select, or a call that
// may block — filesystem and network I/O from the curated standard-
// library table, or any function carrying a Blocks fact (checkpoint
// saves, annealer runs, stream encoders and everything that
// transitively reaches them). A queue mutex held across a multi-second
// checkpoint write stalls every submit and status poll; holding it
// across a channel op risks deadlock against the goroutine meant to
// drain the channel.
//
// The dataflow is intraprocedural from Lock() to Unlock(); a deferred
// Unlock keeps the mutex held for the rest of the function (that is
// the idiom's meaning). Cross-function reasoning rides on the Blocks
// facts computed per package and exchanged through vetx files under
// `go vet`.
var Lockscope = &Analyzer{
	Name: "lockscope",
	Doc:  "service-layer mutexes must not be held across blocking operations",
	Run:  runLockscope,
}

func runLockscope(pass *Pass) error {
	if !inPackageSet(pass.Path(), LockPackages) {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{
				info: pass.TypesInfo,
				blockReason: func(fn *types.Func) (string, bool) {
					return blockerReason(fn, pass.Facts)
				},
				onBlocking: func(pos token.Pos, reason string, held map[string]bool) {
					pass.Reportf(pos, "%s while holding %s: release the mutex before blocking",
						reason, heldClasses(held))
				},
			}
			w.walkFunc(fd.Body)
		}
	}
	return nil
}

// heldClasses renders a held set for a diagnostic, sorted for
// determinism.
func heldClasses(held map[string]bool) string {
	return strings.Join(sortedKeys(held), ", ")
}
