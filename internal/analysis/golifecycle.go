package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Golifecycle requires every goroutine spawned in the service layer to
// be tied to a lifecycle: the goroutine must observe a
// context.Context, participate in a sync.WaitGroup, or communicate
// over a channel (the registered drain paths — worker stop channels,
// the probe loop's stop, event streams). An orphan goroutine holds no
// ticket for shutdown: the daemon's graceful drain returns while it
// still runs, and the goroutine-leak tests only sample schedules. A
// `go` statement whose body the analyzer cannot see (a function value,
// a cross-package callee) is also a finding — tie it visibly or
// annotate the reviewed reason.
var Golifecycle = &Analyzer{
	Name: "golifecycle",
	Doc:  "service-layer goroutines must be tied to a context, WaitGroup, or channel drain path",
	Run:  runGolifecycle,
}

func runGolifecycle(pass *Pass) error {
	if !inPackageSet(pass.Path(), LockPackages) {
		return nil
	}
	// Same-package function declarations, for `go s.worker()`-style
	// statements whose lifecycle lives in the named function's body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, isFn := pass.TypesInfo.Defs[fd.Name].(*types.Func); isFn {
				decls[fn] = fd
			}
		}
	}
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goLifecycleTied(pass, gs, decls) {
				pass.Reportf(gs.Pos(),
					"goroutine is not tied to a context, WaitGroup, or channel drain path: it can outlive the server's shutdown")
			}
			return true
		})
	}
	return nil
}

// goLifecycleTied reports whether the spawned goroutine observably
// participates in a lifecycle mechanism.
func goLifecycleTied(pass *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	// A context handed to the goroutine counts: cancellation reaches it.
	for _, a := range gs.Call.Args {
		if tv, ok := pass.TypesInfo.Types[a]; ok && isContextType(tv.Type) {
			return true
		}
	}
	var body *ast.BlockStmt
	if lit, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
		body = lit.Body
	} else if fn := calleeFunc(pass.TypesInfo, gs.Call); fn != nil {
		if fd, has := decls[fn]; has {
			body = fd.Body
		}
	}
	if body == nil {
		return false
	}
	return bodyLifecycleTied(pass, body)
}

func bodyLifecycleTied(pass *Pass, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.CallExpr:
			if isBuiltinClose(pass, e) || isWaitGroupCall(pass, e) {
				tied = true
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil && isContextType(obj.Type()) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

func isBuiltinClose(pass *Pass, call *ast.CallExpr) bool {
	return isBuiltin(pass, call.Fun, "close")
}

func isWaitGroupCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return false
	}
	named, isNamed := namedTypeOf(sig.Recv().Type())
	return isNamed && named.Obj().Name() == "WaitGroup"
}
