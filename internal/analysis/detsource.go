package analysis

import (
	"go/ast"
)

// Detsource bans the ambient nondeterminism sources from the
// deterministic packages: wall-clock reads (time.Now/Since/Until),
// the math/rand global generator (seeded *rand.Rand instances are
// fine — constructors are exempt), environment reads (os.Getenv and
// friends) and multi-way select statements (the runtime picks a ready
// case pseudo-randomly). Observation-only sites (telemetry timing)
// carry //irlint:allow detsource(reason) annotations, keeping the
// timing-vs-result separation documented in-source.
var Detsource = &Analyzer{
	Name: "detsource",
	Doc:  "bans clocks, global RNG, env reads and racy selects in deterministic packages",
	Run:  runDetsource,
}

// randConstructors are the math/rand (and v2) functions that build
// seeded, locally-owned generators rather than touching global state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

var bannedClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var bannedEnvFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

func runDetsource(pass *Pass) error {
	if !inPackageSet(pass.Path(), DeterministicPackages) {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, fn, ok := pkgFuncCall(pass, n)
				if !ok {
					return true
				}
				switch {
				case pkg == "time" && bannedClockFuncs[fn]:
					pass.Reportf(n.Pos(),
						"time.%s in deterministic package %s: wall-clock reads are nondeterministic; results must not depend on timing (annotate //irlint:allow detsource(reason) for observation-only sites)",
						fn, pass.Path())
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[fn]:
					pass.Reportf(n.Pos(),
						"%s.%s uses the global generator in deterministic package %s: draw from a seeded *rand.Rand owned by the run instead",
						pkg, fn, pass.Path())
				case pkg == "os" && bannedEnvFuncs[fn]:
					pass.Reportf(n.Pos(),
						"os.%s in deterministic package %s: results must not depend on the environment; plumb configuration explicitly",
						fn, pass.Path())
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Select,
						"select with %d communication cases in deterministic package %s: the runtime chooses a ready case pseudo-randomly; restructure (single case + default is fine) or annotate //irlint:allow detsource(reason)",
						comm, pass.Path())
				}
			}
			return true
		})
	}
	return nil
}
