package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Obssafe protects the telemetry layer's nil-safety contract (PR 3,
// extended by PR 7's span/recorder API): the instrument types
// (*obs.Counter, *obs.Gauge, *obs.Histogram, *obs.Span) are designed
// so a nil receiver is a no-op, which is what makes disabled
// telemetry zero-overhead and branch-free at call sites. Call sites
// must therefore use the nil-safe methods unconditionally — never
// field-access an instrument's internals and never nil-compare an
// instrument inline (the compare reintroduces the branch the design
// removed, and worse, trains readers to think nil instruments are
// unsafe). The handle types (*obs.Registry, *obs.Tracer, *obs.Spans,
// *obs.Recorder, *obs.Status) are exempt from the nil-compare rule —
// nil-gating those is the sanctioned enable/disable pattern — but
// their internals are still opaque: field access is flagged on
// handles too.
var Obssafe = &Analyzer{
	Name: "obssafe",
	Doc:  "obs instruments only via nil-safe methods: no field access, no inline nil-compares",
	Run:  runObssafe,
}

// obsInstruments are the nil-safe instrument types; the handle types
// are deliberately absent (their nil-compare is sanctioned).
var obsInstruments = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Span": true,
}

// obsHandles are the enable/disable handles: nil-gating is sanctioned,
// but their fields are still off-limits outside internal/obs.
var obsHandles = map[string]bool{
	"Registry": true, "Tracer": true, "Spans": true, "Recorder": true, "Status": true,
}

func runObssafe(pass *Pass) error {
	if isObsPath(pass.Pkg.Path()) {
		return nil // the implementation package touches its own fields
	}
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkObsSelector(pass, n)
			case *ast.BinaryExpr:
				checkObsNilCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkObsSelector flags x.field where x is an obs instrument or
// handle and the selector resolves to a struct field rather than a
// method.
func checkObsSelector(pass *Pass, sel *ast.SelectorExpr) {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return
	}
	name, ok := namedObsType(t)
	if !ok || (!obsInstruments[name] && !obsHandles[name]) {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"field access %s on *obs.%s: obs types are opaque outside internal/obs — use the nil-safe methods",
		sel.Sel.Name, name)
}

// checkObsNilCompare flags `instr == nil` / `instr != nil`.
func checkObsNilCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	var instr ast.Expr
	switch {
	case exprIsNil(pass, be.Y):
		instr = be.X
	case exprIsNil(pass, be.X):
		instr = be.Y
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(instr)
	if t == nil {
		return
	}
	name, ok := namedObsType(t)
	if !ok || !obsInstruments[name] {
		return
	}
	pass.Reportf(be.OpPos,
		"nil-compare of *obs.%s: instrument methods are nil-safe no-ops, call them unconditionally (gate on the Registry/Tracer handle if you need enablement state)",
		name)
}
