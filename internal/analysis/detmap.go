package analysis

import (
	"go/ast"
	"go/types"
)

// Detmap flags `range` over a map in the deterministic packages: map
// iteration order is randomized per run, so any map range on a result
// path breaks bit-reproducibility. The one recognized safe idiom is
// the collect-then-sort key gather (a loop whose entire body appends
// the key to a slice — the append order washes out in the subsequent
// sort, which detmap leaves to the reviewer); anything else needs an
// //irlint:allow detmap(reason) stating why the iteration is
// order-independent.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "flags range-over-map in deterministic packages (sort keys or annotate)",
	Run:  runDetmap,
}

func runDetmap(pass *Pass) error {
	if !inPackageSet(pass.Path(), DeterministicPackages) {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.TypesInfo.TypeOf(rs.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectLoop(pass, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map %s in deterministic package %s: iteration order is randomized; sort the keys first or annotate //irlint:allow detmap(reason)",
				render(pass.Fset, rs.X), pass.Path())
			return true
		})
	}
	return nil
}

// isKeyCollectLoop recognizes the canonical sorted-keys gather:
//
//	for k := range m { keys = append(keys, k) }
//
// The body must be exactly one append of the range key into a slice
// (no value variable consumed), so the only order-dependent effect is
// the append order — which the mandatory downstream sort erases.
func isKeyCollectLoop(pass *Pass, rs *ast.RangeStmt) bool {
	if rs.Value != nil {
		if id, ok := rs.Value.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	// The appended element must be the range key itself.
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.TypesInfo.Defs[key]
	return keyObj != nil && pass.TypesInfo.Uses[arg] == keyObj
}
