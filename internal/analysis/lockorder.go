package analysis

import (
	"go/token"
	"strings"
)

// Lockorder is a static deadlock detector for the service layer: it
// assembles the acquired-while-holding graph from the LockEdges facts
// (an edge A → B means some function acquired mutex class B while
// already holding A) and reports every acquisition that closes a
// cycle. Two goroutines traversing a cycle from different entry points
// deadlock; with the queue, store, quarantine and watchdog each owning
// a mutex, the ordering discipline is load-bearing and deserves a
// compile-time gate rather than a lucky chaos run.
//
// Edges contributed by dependencies arrive through their vetx facts
// and carry no local position; a cycle is therefore reported at each
// participating edge of the package under analysis.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be acyclic across the service layer",
	Run:  runLockorder,
}

func runLockorder(pass *Pass) error {
	if !inPackageSet(pass.Path(), LockPackages) {
		return nil
	}
	edges := pass.Facts.LockEdges()
	if len(edges) == 0 {
		return nil
	}
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, e := range edges {
		if e.pos == 0 {
			// A dependency's edge; its own package's run reports it.
			continue
		}
		path := lockPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		cycle := append([]string{e.From}, path...)
		pass.Reportf(token.Pos(e.pos),
			"acquiring %s while holding %s closes a lock-order cycle: %s",
			e.To, e.From, strings.Join(cycle, " -> "))
	}
	return nil
}

// lockPath returns a shortest node path from one lock class to another
// through the acquired-while-holding graph (BFS), or nil when
// unreachable.
func lockPath(adj map[string][]string, from, to string) []string {
	prev := map[string]string{from: from}
	frontier := []string{from}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		if n == to {
			var path []string
			for at := to; ; at = prev[at] {
				path = append([]string{at}, path...)
				if at == from {
					return path
				}
			}
		}
		for _, next := range adj[n] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = n
			frontier = append(frontier, next)
		}
	}
	return nil
}
