package analysis

// Annotcheck surfaces the annotation index's parse failures as
// first-class findings: a malformed //irlint: directive, an unknown
// analyzer name in an allow list, a missing reason, or a misplaced
// //irlint:hot. Annotations that don't parse MUST fail the run — a
// typo'd suppression that silently re-enables (or worse, silently
// disables) a check is exactly the failure mode a lint suite exists to
// prevent.
var Annotcheck = &Analyzer{
	Name: "annotcheck",
	Doc:  "malformed //irlint: directives are errors, not silent no-ops",
	Run:  runAnnotcheck,
}

func runAnnotcheck(pass *Pass) error {
	if pass.Index == nil {
		return nil
	}
	for _, d := range pass.Index.Malformed(pass.Fset) {
		// Bypass Reportf: suppression must not apply to the checker that
		// validates suppressions.
		pass.report(d)
	}
	return nil
}
