package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// render formats a node as source text for diagnostics.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// pkgFuncCall resolves a call of the form pkg.Func where pkg is an
// imported package name; it returns the package path and function
// name, or ok=false.
func pkgFuncCall(pass *Pass, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// namedObsType reports whether t (after unwrapping one pointer) is a
// named type declared in an internal/obs package, returning its name.
func namedObsType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return "", false
	}
	if !isObsPath(pkg.Path()) {
		return "", false
	}
	return n.Obj().Name(), true
}

// isObsPath matches the telemetry package (and test fixtures that
// impersonate it via a .../internal/obs suffix).
func isObsPath(path string) bool {
	path = EffectivePath(path)
	if path == "irgrid/internal/obs" {
		return true
	}
	const suffix = "/internal/obs"
	return len(path) >= len(suffix) && path[len(path)-len(suffix):] == suffix
}

// exprIsNil reports whether e is the untyped nil.
func exprIsNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
