package analysis

import (
	"go/ast"
	"go/token"
	"sort"

	"irgrid/internal/analysis/annot"
)

// Index holds one package's parsed //irlint: annotations: the
// suppressed (analyzer, file, line) sites, the hot-marked function
// declarations, and any malformed directives (reported by the
// annotcheck analyzer — a typo in a suppression fails the run rather
// than silently re-enabling the check).
type Index struct {
	// allowed maps analyzer name -> "file:line" -> reason.
	allowed map[string]map[string]string
	// counts is the number of allow annotations written per analyzer.
	counts map[string]int
	// hot is the set of hot-marked *ast.FuncDecls.
	hot map[*ast.FuncDecl]bool
	// malformed records unparsable directives.
	malformed []Diagnostic
	// hotComments tracks every //irlint:hot comment position; ones not
	// consumed as a FuncDecl doc are misplaced and reported.
	hotComments map[token.Pos]bool
	usedHot     map[token.Pos]bool
}

// BuildIndex parses every //irlint: comment of the files.
func BuildIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{
		allowed:     map[string]map[string]string{},
		counts:      map[string]int{},
		hot:         map[*ast.FuncDecl]bool{},
		hotComments: map[token.Pos]bool{},
		usedHot:     map[token.Pos]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			// A directive in a standalone comment group excuses the line
			// following the group; a trailing directive excuses its own
			// line. Covering both (own line + group end + 1) handles both
			// placements and stacked directives above one statement.
			endLine := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				d, err := annot.Parse(c.Text)
				if err != nil {
					ix.malformed = append(ix.malformed, Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "annotcheck",
						Message:  err.Error(),
					})
					continue
				}
				if d == nil {
					continue
				}
				if d.Hot {
					ix.hotComments[c.Pos()] = true
					continue
				}
				own := fset.Position(c.Pos())
				for _, a := range d.Allows {
					ix.counts[a.Analyzer]++
					m := ix.allowed[a.Analyzer]
					if m == nil {
						m = map[string]string{}
						ix.allowed[a.Analyzer] = m
					}
					m[lineKey(own.Filename, own.Line)] = a.Reason
					m[lineKey(own.Filename, endLine+1)] = a.Reason
				}
			}
		}
		// Bind //irlint:hot doc comments to their function declarations.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if ix.hotComments[c.Pos()] {
					ix.hot[fd] = true
					ix.usedHot[c.Pos()] = true
				}
			}
		}
	}
	return ix
}

func lineKey(file string, line int) string {
	// Positions within one package share the file set, so the raw
	// filename is a stable key.
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Allowed reports whether an //irlint:allow for the analyzer covers
// the position's line.
func (ix *Index) Allowed(analyzer string, pos token.Position) bool {
	m := ix.allowed[analyzer]
	if m == nil {
		return false
	}
	_, ok := m[lineKey(pos.Filename, pos.Line)]
	return ok
}

// Hot reports whether the function declaration carries //irlint:hot.
func (ix *Index) Hot(fd *ast.FuncDecl) bool { return ix.hot[fd] }

// HotCount returns the number of hot-marked functions.
func (ix *Index) HotCount() int { return len(ix.hot) }

// AllowCounts returns the number of allow annotations per analyzer.
func (ix *Index) AllowCounts() map[string]int {
	out := make(map[string]int, len(ix.counts))
	for name, n := range ix.counts {
		out[name] = n
	}
	return out
}

// Malformed returns the malformed-directive diagnostics, plus one for
// every //irlint:hot comment that is not a function doc comment.
func (ix *Index) Malformed(fset *token.FileSet) []Diagnostic {
	out := append([]Diagnostic(nil), ix.malformed...)
	for pos := range ix.hotComments {
		if !ix.usedHot[pos] {
			out = append(out, Diagnostic{
				Pos:      fset.Position(pos),
				Analyzer: "annotcheck",
				Message:  "misplaced //irlint:hot: must be part of a function declaration's doc comment",
			})
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, message so
// every driver emits them deterministically.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
