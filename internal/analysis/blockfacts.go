package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// curatedBlockers maps FuncKey-format names of standard-library
// operations that may block the calling goroutine to a short category
// used in diagnostics. The table is deliberately conservative:
// Close methods are exempt (the server holds its http mutex across
// ln.Close by design), as is sync.Cond.Wait (it releases the mutex it
// coordinates — the dequeue idiom). Project functions such as
// ckpt.SaveAs or floorplan.Run are NOT listed here; they acquire
// Blocks facts from their own bodies, which is what makes the facts
// round-trip across package boundaries meaningful.
var curatedBlockers = map[string]string{
	// filesystem I/O
	"os.Chtimes":          "filesystem I/O",
	"os.Create":           "filesystem I/O",
	"os.Mkdir":            "filesystem I/O",
	"os.MkdirAll":         "filesystem I/O",
	"os.MkdirTemp":        "filesystem I/O",
	"os.Open":             "filesystem I/O",
	"os.OpenFile":         "filesystem I/O",
	"os.ReadDir":          "filesystem I/O",
	"os.ReadFile":         "filesystem I/O",
	"os.Remove":           "filesystem I/O",
	"os.RemoveAll":        "filesystem I/O",
	"os.Rename":           "filesystem I/O",
	"os.Stat":             "filesystem I/O",
	"os.Truncate":         "filesystem I/O",
	"os.WriteFile":        "filesystem I/O",
	"os.File.Read":        "filesystem I/O",
	"os.File.ReadAt":      "filesystem I/O",
	"os.File.Sync":        "filesystem I/O",
	"os.File.Truncate":    "filesystem I/O",
	"os.File.Write":       "filesystem I/O",
	"os.File.WriteAt":     "filesystem I/O",
	"os.File.WriteString": "filesystem I/O",

	// timers and synchronization
	"time.Sleep":          "blocking sleep",
	"sync.WaitGroup.Wait": "waits for a WaitGroup",

	// network I/O
	"net.Dial":                       "network I/O",
	"net.DialTimeout":                "network I/O",
	"net.Listen":                     "network I/O",
	"net/http.Get":                   "network I/O",
	"net/http.Head":                  "network I/O",
	"net/http.Post":                  "network I/O",
	"net/http.PostForm":              "network I/O",
	"net/http.Client.Do":             "network I/O",
	"net/http.Client.Get":            "network I/O",
	"net/http.Client.Head":           "network I/O",
	"net/http.Client.Post":           "network I/O",
	"net/http.Client.PostForm":       "network I/O",
	"net/http.Server.ListenAndServe": "network I/O",
	"net/http.Server.Serve":          "network I/O",
	"net/http.Server.Shutdown":       "network I/O",
	"net/http.ResponseWriter.Write":  "HTTP response write",
	"net/http.Flusher.Flush":         "HTTP response write",

	// stream I/O against arbitrary writers/readers
	"io.Copy":                      "stream I/O",
	"io.CopyBuffer":                "stream I/O",
	"io.CopyN":                     "stream I/O",
	"io.ReadAll":                   "stream I/O",
	"io.ReadFull":                  "stream I/O",
	"io.WriteString":               "stream I/O",
	"fmt.Fprint":                   "stream I/O",
	"fmt.Fprintf":                  "stream I/O",
	"fmt.Fprintln":                 "stream I/O",
	"encoding/json.Encoder.Encode": "stream I/O",
	"encoding/json.Decoder.Decode": "stream I/O",
	"bufio.Writer.Flush":           "stream I/O",
	"bufio.Scanner.Scan":           "stream I/O",

	// subprocesses
	"os/exec.Cmd.CombinedOutput": "waits for a subprocess",
	"os/exec.Cmd.Output":         "waits for a subprocess",
	"os/exec.Cmd.Run":            "waits for a subprocess",
	"os/exec.Cmd.Wait":           "waits for a subprocess",
}

// blockerReason reports whether calling fn may block, from the curated
// standard-library table or from Blocks facts (the store may be nil).
func blockerReason(fn *types.Func, store *FactStore) (string, bool) {
	key := FuncKey(fn)
	if cat, ok := curatedBlockers[key]; ok {
		return fmt.Sprintf("calls %s (%s)", key, cat), true
	}
	if _, ok := store.BlockReason(key); ok {
		return "calls " + key, true
	}
	return "", false
}

// calleeFunc resolves the function or method a call expression
// invokes, or nil (builtins, conversions, calls of function values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// mutexOp classifies a call as a sync.Mutex/RWMutex acquire or
// release. class is the lock class ("" when it cannot be derived, in
// which case the operation is not tracked).
func mutexOp(info *types.Info, call *ast.CallExpr) (class string, acquire, release, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", false, false, false
	}
	recv, named := namedTypeOf(sig.Recv().Type())
	if !named || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return "", false, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false, false
	}
	return lockClass(info, sel.X, recv.Obj().Name()), acquire, release, true
}

// lockClass derives the lock class of a mutex operation's receiver
// expression: "pkgpath.Type.field" for a struct-field mutex (including
// an embedded one, keyed by the mutex type name), "pkgpath.var" for a
// package-level or local mutex variable, "" when underivable.
func lockClass(info *types.Info, x ast.Expr, mutexName string) string {
	x = ast.Unparen(x)
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if id, isIdent := e.X.(*ast.Ident); isIdent {
			if pn, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return EffectivePath(pn.Imported().Path()) + "." + e.Sel.Name
			}
		}
		if tv, ok := info.Types[e.X]; ok {
			if key, ok := FieldKey(tv.Type, e.Sel.Name); ok {
				return key
			}
		}
	case *ast.Ident:
		v, isVar := info.Uses[e].(*types.Var)
		if !isVar {
			return ""
		}
		if n, named := namedTypeOf(v.Type()); named {
			pkg := n.Obj().Pkg()
			if pkg != nil && pkg.Path() != "sync" {
				// method promoted from an embedded mutex
				if key, ok := FieldKey(v.Type(), mutexName); ok {
					return key
				}
			}
		}
		if v.Pkg() != nil {
			return EffectivePath(v.Pkg().Path()) + "." + v.Name()
		}
	}
	return ""
}

// scanBlocking classifies whether a function body performs a blocking
// operation directly (first reason wins) and records the same-package
// functions it calls into callees for the ComputeFacts fixpoint.
// Nested function literals, go statements and deferred calls are
// skipped: they do not block the enclosing function's caller at the
// point of the statement.
func scanBlocking(info *types.Info, pkg *types.Package, body *ast.BlockStmt, resolve func(*types.Func) (string, bool), callees map[string]bool) string {
	reason := ""
	set := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			set("channel send")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				set("channel receive")
			}
		case *ast.SelectStmt:
			// A select blocks unless it has a default clause; either
			// way its comm statements are non-blocking, so only the
			// clause bodies are scanned.
			hasDefault := false
			for _, c := range e.Body.List {
				if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				set("blocking select")
			}
			for _, c := range e.Body.List {
				if cc, isComm := c.(*ast.CommClause); isComm {
					for _, s := range cc.Body {
						ast.Inspect(s, visit)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					set("range over channel")
				}
			}
		case *ast.CallExpr:
			if _, _, _, isMutex := mutexOp(info, e); isMutex {
				return true
			}
			fn := calleeFunc(info, e)
			if fn == nil {
				return true
			}
			if r, ok := resolve(fn); ok {
				set(r)
				return true
			}
			if fn.Pkg() == pkg {
				callees[FuncKey(fn)] = true
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return reason
}

// ComputeFacts derives a package's exported facts — which functions
// may block (with an intra-package transitive-call fixpoint; deps'
// Blocks facts seed cross-package reasoning), the acquired-while-
// holding lock edges, and the atomically-accessed struct fields. It is
// a framework pre-pass run by every driver before the analyzers.
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps map[string]*PackageFacts) *PackageFacts {
	facts := &PackageFacts{}
	depStore := NewFactStore(nil, deps)
	resolve := func(fn *types.Func) (string, bool) { return blockerReason(fn, depStore) }
	isTest := func(f *ast.File) bool {
		return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
	}

	type fnInfo struct {
		decl    *ast.FuncDecl
		key     string
		reason  string
		callees map[string]bool
	}
	var fns []*fnInfo
	for _, f := range files {
		if isTest(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			obj, isObj := info.Defs[fd.Name].(*types.Func)
			if !isObj {
				continue
			}
			fi := &fnInfo{decl: fd, key: FuncKey(obj), callees: map[string]bool{}}
			fi.reason = scanBlocking(info, pkg, fd.Body, resolve, fi.callees)
			fns = append(fns, fi)
		}
	}

	blocks := map[string]string{}
	for _, fi := range fns {
		if fi.reason != "" {
			blocks[fi.key] = fi.reason
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if _, done := blocks[fi.key]; done {
				continue
			}
			for _, callee := range sortedKeys(fi.callees) {
				if _, ok := blocks[callee]; ok {
					blocks[fi.key] = "calls " + callee
					changed = true
					break
				}
			}
		}
	}
	if len(blocks) > 0 {
		facts.Blocks = blocks
	}

	edges := map[[2]string]LockEdge{}
	for _, fi := range fns {
		w := &lockWalker{
			info: info,
			onAcquire: func(pos token.Pos, class string, held map[string]bool) {
				if class == "" {
					return
				}
				for from := range held {
					if from == class {
						continue
					}
					k := [2]string{from, class}
					if _, ok := edges[k]; !ok {
						edges[k] = LockEdge{From: from, To: class, At: fset.Position(pos).String(), pos: int(pos)}
					}
				}
			},
		}
		w.walkFunc(fi.decl.Body)
	}
	for _, k := range sortedEdgeKeys(edges) {
		facts.LockEdges = append(facts.LockEdges, edges[k])
	}

	facts.AtomicFields = atomicFieldKeys(fset, files, info)
	return facts
}

// atomicFieldKeys collects the FieldKeys of struct fields passed by
// address to function-style sync/atomic operations anywhere in the
// package (tests included: an atomically-typed field is atomic for
// everyone).
func atomicFieldKeys(fset *token.FileSet, files []*ast.File, info *types.Info) []string {
	seen := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			sig, isSig := fn.Type().(*types.Signature)
			if !isSig || sig.Recv() != nil || len(call.Args) == 0 {
				return true
			}
			if key, ok := addressedFieldKey(info, call.Args[0]); ok {
				seen[key] = true
			}
			return true
		})
	}
	return sortedKeys(seen)
}

// addressedFieldKey resolves an &x.f argument to the field's FieldKey.
func addressedFieldKey(info *types.Info, arg ast.Expr) (string, bool) {
	un, isUnary := ast.Unparen(arg).(*ast.UnaryExpr)
	if !isUnary || un.Op != token.AND {
		return "", false
	}
	sel, isSel := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", false
	}
	return FieldKey(tv.Type, sel.Sel.Name)
}

// plainFieldKey resolves a (non-addressed) x.f field access to its
// FieldKey; used by atomicmix to find plain reads/writes.
func plainFieldKey(info *types.Info, e ast.Expr) (string, bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	s, isField := info.Selections[sel]
	if !isField || s.Kind() != types.FieldVal {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", false
	}
	return FieldKey(tv.Type, sel.Sel.Name)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeKeys(m map[[2]string]LockEdge) [][2]string {
	out := make([][2]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
