package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxpropagate enforces the PR 4 cancellation contract statically: an
// exported function in the lifecycle packages (anneal, fplan,
// floorplan, core) that contains an unbounded loop — `for {}` or a
// while-style `for cond {}` — must accept a context.Context and the
// loop body must actually consult the context (ctx.Done(), ctx.Err(),
// or any call forwarding ctx). Without this, a caller's cancel would
// hang until the loop's own exit condition fires, which for an
// annealer schedule can be minutes.
var Ctxpropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "exported functions with unbounded loops must accept and consult a context.Context",
	Run:  runCtxpropagate,
}

func runCtxpropagate(pass *Pass) error {
	if !inPackageSet(pass.Path(), CtxPackages) {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkCtxFunc(pass, fd)
		}
	}
	return nil
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	loops := unboundedLoops(fd.Body)
	if len(loops) == 0 {
		return
	}
	ctxParams := contextParams(pass, fd)
	if len(ctxParams) == 0 {
		pass.Reportf(fd.Name.Pos(),
			"exported %s contains an unbounded loop but takes no context.Context: accept one so callers can cancel",
			fd.Name.Name)
		return
	}
	for _, loop := range loops {
		if !consultsContext(pass, loop.Body, ctxParams) {
			pass.Reportf(loop.For,
				"unbounded loop in exported %s never consults its context: check ctx.Err()/ctx.Done() (or call something that does) each iteration",
				fd.Name.Name)
		}
	}
}

// unboundedLoops returns the for statements with no iteration bound:
// `for {}` (no condition) and while-style `for cond {}` (no init, no
// post — the canonical unbounded convergence/retry shape). Three-clause
// loops and range loops are bounded by construction or by convention
// and are exempt.
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are checked via their own enclosing decl rules
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if fs.Cond == nil || (fs.Init == nil && fs.Post == nil) {
			out = append(out, fs)
		}
		return true
	})
	return out
}

// contextParams returns the objects of the function's parameters whose
// type is context.Context.
func contextParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// consultsContext reports whether the loop body references any of the
// context parameters — a ctx.Done()/ctx.Err() check, a select on
// ctx.Done(), or forwarding ctx into a callee all count: each gives the
// cancellation signal a path into the iteration.
func consultsContext(pass *Pass, body *ast.BlockStmt, ctxParams map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && ctxParams[obj] {
			found = true
		}
		return !found
	})
	return found
}
