package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxpropagate enforces the PR 4 cancellation contract statically: an
// exported function in the lifecycle packages (anneal, fplan,
// floorplan, core) that contains an unbounded loop — `for {}` or a
// while-style `for cond {}` — must accept a context.Context and the
// loop body must actually consult the context (ctx.Done(), ctx.Err(),
// or any call forwarding ctx). Without this, a caller's cancel would
// hang until the loop's own exit condition fires, which for an
// annealer schedule can be minutes.
var Ctxpropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "exported functions with unbounded loops must accept and consult a context.Context",
	Run:  runCtxpropagate,
}

func runCtxpropagate(pass *Pass) error {
	if !inPackageSet(pass.Path(), CtxPackages) {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.IsExported() {
				checkCtxFunc(pass, fd)
			} else {
				// Unexported poll/ticker loops (the watchdog scan loop,
				// the degraded-store probe, harness pollers) don't owe
				// their callers a context parameter, but each ticker
				// select still needs a cancellation path.
				checkTickerFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkTickerFunc enforces the ticker-loop contract on unexported
// functions: an unbounded loop whose select receives from a
// time.Time channel (a time.Ticker's C, a time.After) must have some
// cancellation path — consulting a context parameter, or a second
// comm case on a non-ticker channel (ctx.Done(), a stop/drain
// channel). A ticker select with no such path spins until process
// exit regardless of shutdown.
func checkTickerFunc(pass *Pass, fd *ast.FuncDecl) {
	ctxParams := contextParams(pass, fd)
	for _, loop := range unboundedLoops(fd.Body) {
		loop := loop
		ast.Inspect(loop.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			if !selectHasTimeChanComm(pass, sel) {
				return true
			}
			if len(ctxParams) > 0 && consultsContext(pass, loop.Body, ctxParams) {
				return true
			}
			if selectHasNonTimeChanComm(pass, sel) {
				return true
			}
			pass.Reportf(sel.Select,
				"ticker loop in %s has no cancellation path: select on ctx.Done() or a stop channel alongside the ticker",
				fd.Name.Name)
			return true
		})
	}
}

// commChanIsTime reports whether a comm clause receives from a
// time.Time channel.
func commChanIsTime(pass *Pass, cc *ast.CommClause) bool {
	var ch ast.Expr
	switch s := cc.Comm.(type) {
	case *ast.ExprStmt:
		if un, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			ch = un.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if un, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				ch = un.X
			}
		}
	}
	if ch == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[ch]
	if !ok {
		return false
	}
	chType, isChan := tv.Type.Underlying().(*types.Chan)
	if !isChan {
		return false
	}
	named, isNamed := chType.Elem().(*types.Named)
	return isNamed && named.Obj().Name() == "Time" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time"
}

func selectHasTimeChanComm(pass *Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil && commChanIsTime(pass, cc) {
			return true
		}
	}
	return false
}

func selectHasNonTimeChanComm(pass *Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil && !commChanIsTime(pass, cc) {
			return true
		}
	}
	return false
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	loops := unboundedLoops(fd.Body)
	if len(loops) == 0 {
		return
	}
	ctxParams := contextParams(pass, fd)
	if len(ctxParams) == 0 {
		pass.Reportf(fd.Name.Pos(),
			"exported %s contains an unbounded loop but takes no context.Context: accept one so callers can cancel",
			fd.Name.Name)
		return
	}
	for _, loop := range loops {
		if !consultsContext(pass, loop.Body, ctxParams) {
			pass.Reportf(loop.For,
				"unbounded loop in exported %s never consults its context: check ctx.Err()/ctx.Done() (or call something that does) each iteration",
				fd.Name.Name)
		}
	}
}

// unboundedLoops returns the for statements with no iteration bound:
// `for {}` (no condition) and while-style `for cond {}` (no init, no
// post — the canonical unbounded convergence/retry shape). Three-clause
// loops and range loops are bounded by construction or by convention
// and are exempt.
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are checked via their own enclosing decl rules
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if fs.Cond == nil || (fs.Init == nil && fs.Post == nil) {
			out = append(out, fs)
		}
		return true
	})
	return out
}

// contextParams returns the objects of the function's parameters whose
// type is context.Context.
func contextParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// consultsContext reports whether the loop body references any of the
// context parameters — a ctx.Done()/ctx.Err() check, a select on
// ctx.Done(), or forwarding ctx into a callee all count: each gives the
// cancellation signal a path into the iteration.
func consultsContext(pass *Pass, body *ast.BlockStmt, ctxParams map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && ctxParams[obj] {
			found = true
		}
		return !found
	})
	return found
}
