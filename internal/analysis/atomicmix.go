package analysis

import (
	"go/ast"
)

// Atomicmix forbids mixing sync/atomic access with plain access on the
// same struct field. A field read through atomic.LoadInt64 in one
// place and written plainly in another has no happens-before edge
// between the two sites: the race detector only catches it when a
// schedule actually interleaves them, while the mix is statically
// evident. Fields accessed atomically anywhere — recorded as
// AtomicFields facts, so the atomic site and the plain site may live
// in different packages — must be accessed atomically everywhere.
//
// The analyzer is not gated to the service packages: a mixed access is
// a bug wherever it occurs. (Fields of the atomic.Int64-style types
// cannot be accessed plainly at all, which is why the repo prefers
// them; this analyzer closes the gap for the function-style API.)
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed through sync/atomic must never be read or written plainly",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		// Field addresses taken as arguments of atomic calls are the
		// sanctioned access sites.
		sanctioned := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if un, isUnary := ast.Unparen(arg).(*ast.UnaryExpr); isUnary {
					if sel, isSel := ast.Unparen(un.X).(*ast.SelectorExpr); isSel {
						sanctioned[sel] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key, isField := plainFieldKey(pass.TypesInfo, sel)
			if !isField || !pass.Facts.AtomicField(key) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"plain access to %s, which is accessed with sync/atomic elsewhere: use the atomic API at every site",
				key)
			return true
		})
	}
	return nil
}
