// Package load type-checks Go packages for the irlint analyzers
// without golang.org/x/tools (unavailable offline): it shells out to
// `go list -deps -export` for the package graph and compiled export
// data, then parses and type-checks only the root packages from
// source, resolving their imports through the gc export files. This is
// the same division of labor `go vet` uses — full syntax for the
// packages under analysis, summaries for everything beneath them.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked root package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors holds type-check problems; analyzers still run on the
	// partial information when possible.
	TypeErrors []error
}

// listedPackage mirrors the `go list -json` fields we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists the patterns with the go tool and type-checks each root
// (non-DepOnly, non-test-variant) package from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export-data lookup for every dependency, keyed by import path.
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || isTestVariant(p.ImportPath) {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by irlint", p.ImportPath)
		}
		pkg, err := checkPackage(p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var listed []*listedPackage
	dec := json.NewDecoder(stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		listed = append(listed, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	return listed, nil
}

// checkPackage parses and type-checks one root package, resolving
// imports via the export data of its dependencies.
func checkPackage(p *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}

	pkg := &Package{ImportPath: p.ImportPath, Dir: p.Dir, Fset: fset, Files: files}
	imp := &mapImporter{
		base:      importer.ForCompiler(fset, "gc", exportLookup(exports)),
		importMap: p.ImportMap,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("%s: type check: %v", p.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// exportLookup opens the export-data file recorded by `go list` for an
// import path.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// mapImporter applies the package's ImportMap (vendoring/test-variant
// translation) before delegating to the gc export-data importer, and
// special-cases unsafe, which has no export file.
type mapImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.base.Import(path)
}

func isTestVariant(path string) bool {
	for i := 0; i+1 < len(path); i++ {
		if path[i] == ' ' && path[i+1] == '[' {
			return true
		}
	}
	n := len(path)
	return n >= 5 && path[n-5:] == ".test"
}
