// Package annotfix exercises the annotcheck analyzer: malformed
// //irlint: directives are findings, valid ones are not. A trailing
// "// want" inside a directive comment is deliberately part of the
// malformed text; where the directive must end cleanly, the want
// expectation rides in a block comment on the same line.
package annotfix

//irlint:frobnicate // want "unknown irlint directive"
var a = 1

var b = 2 /* want "missing analyzer" */ //irlint:allow

//irlint:allow detmap // want "want analyzer"
var c = 3

//irlint:allow detmap() // want "missing reason"
var d = 4

//irlint:allow nosuchanalyzer(because) // want "unknown analyzer"
var e = 5

//irlint:hot with arguments // want "no arguments allowed"
var f = 6

var g = 7 /* want "misplaced" */ //irlint:hot

// Valid directives below must produce no findings.

//irlint:allow detmap(reviewed: iteration order washes out)
var ok1 = 8

//irlint:hot
func Hot() int { return ok1 }
