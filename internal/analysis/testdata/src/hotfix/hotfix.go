// Package hotfix exercises the hotalloc analyzer: the //irlint:hot
// marker gates the checks, so the same constructs appear marked
// (flagged) and unmarked (silent).
package hotfix

import "fmt"

func apply(xs []int, f func(int) int) int {
	s := 0
	for _, x := range xs {
		s += f(x)
	}
	return s
}

func take(v any) {}

//irlint:hot
func HotConcat(a, b string) string {
	return a + b // want "string concatenation on the hot path"
}

//irlint:hot
func HotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf on the hot path"
}

//irlint:hot
func HotBoxAssign(x int) any {
	var v any
	v = x // want "boxes int into interface"
	return v
}

//irlint:hot
func HotBoxArg(x int) {
	take(x) // want "argument boxes int into interface"
}

//irlint:hot
func HotAppend(xs []int, v int) []int {
	return append(xs, v) // want "append on the hot path without capacity evidence"
}

//irlint:hot
func HotAppendArena(scratch []int, vs []int) []int {
	buf := scratch[:0]
	for _, v := range vs {
		buf = append(buf, v)
	}
	return buf
}

//irlint:hot
func HotGo(f func()) {
	go func() { // want "goroutine closure on the hot path"
		f()
	}()
}

//irlint:hot
func HotClosureArg(xs []int) int {
	return apply(xs, func(x int) int { return x * 2 }) // want "closure on the hot path may escape"
}

//irlint:hot
func HotLocalClosure(xs []int) int {
	double := func(x int) int { return x * 2 }
	s := 0
	for _, x := range xs {
		s += double(x)
	}
	return s
}

//irlint:hot
func HotAllowedAppend(xs []int, v int) []int {
	//irlint:allow hotalloc(amortized growth, measured zero steady-state allocs)
	return append(xs, v)
}

// coldEverything repeats every flagged construct without the marker:
// hotalloc must stay silent.
func coldEverything(a, b string, x int, xs []int) string {
	take(x)
	xs = append(xs, x)
	go func() { _ = xs }()
	return a + b + fmt.Sprintf("%d", x)
}
