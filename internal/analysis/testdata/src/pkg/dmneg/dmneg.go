// Package dmneg ranges maps outside the deterministic package set:
// detmap must stay silent.
package dmneg

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
