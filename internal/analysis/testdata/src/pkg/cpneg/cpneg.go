// Package cpneg has an exported unbounded loop outside the lifecycle
// package set: ctxpropagate must stay silent.
package cpneg

func Spin(n int) int {
	i := 0
	for {
		i++
		if i >= n {
			break
		}
	}
	return i
}
