// Package loneg acquires two mutexes in both orders outside the gated
// service packages: lockorder must stay silent.
package loneg

import "sync"

type left struct{ mu sync.Mutex }
type right struct{ mu sync.Mutex }

type pair struct {
	l left
	r right
}

func (p *pair) forward() {
	p.l.mu.Lock()
	defer p.l.mu.Unlock()
	p.r.mu.Lock()
	p.r.mu.Unlock()
}

func (p *pair) backward() {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	p.l.mu.Lock()
	p.l.mu.Unlock()
}
