// Package glneg spawns an untied goroutine outside the gated service
// packages: golifecycle must stay silent.
package glneg

func fire() {
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}
