// Package lsneg holds the lockscope constructs outside the gated
// service packages: blocking under a mutex here is not the analyzer's
// business, so the fixture expects silence.
package lsneg

import (
	"os"
	"sync"
)

type cache struct {
	mu   sync.Mutex
	wake chan struct{}
}

func (c *cache) saveLocked(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return os.WriteFile(path, nil, 0o644)
}

func (c *cache) signalLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wake <- struct{}{}
}
