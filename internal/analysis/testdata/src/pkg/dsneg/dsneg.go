// Package dsneg uses clocks and the global generator outside the
// deterministic package set: detsource must stay silent.
package dsneg

import (
	"math/rand"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Roll() int { return rand.Intn(6) }
