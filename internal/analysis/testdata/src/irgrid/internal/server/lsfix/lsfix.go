// Package lsfix is the lockscope positive fixture: it impersonates the
// service package (the testdata/src prefix is stripped by
// EffectivePath) so the analyzer's package gate is open.
package lsfix

import (
	"os"
	"sync"
)

type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []string
	wake  chan struct{}
}

// Direct curated blocker under the mutex.
func (q *queue) saveLocked(path string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return os.WriteFile(path, nil, 0o644) // want `calls os\.WriteFile \(filesystem I/O\) while holding irgrid/internal/server/lsfix\.queue\.mu: release the mutex before blocking`
}

// persist blocks transitively: the fact layer must tag it so callers
// holding the mutex are caught through the same-package Blocks facts.
func persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func (q *queue) flushLocked(path string) {
	q.mu.Lock()
	_ = persist(path, nil) // want `calls irgrid/internal/server/lsfix\.persist while holding irgrid/internal/server/lsfix\.queue\.mu`
	q.mu.Unlock()
}

// Channel operations are blocking points in their own right.
func (q *queue) signalLocked() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wake <- struct{}{} // want `channel send while holding irgrid/internal/server/lsfix\.queue\.mu`
}

func (q *queue) awaitLocked() {
	q.mu.Lock()
	<-q.wake // want `channel receive while holding irgrid/internal/server/lsfix\.queue\.mu`
	q.mu.Unlock()
}

func (q *queue) selectLocked(stop chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `blocking select while holding irgrid/internal/server/lsfix\.queue\.mu`
	case <-q.wake:
	case <-stop:
	}
}

// Negatives below: the same operations with the mutex released, or
// constructs the analyzer deliberately exempts.

func (q *queue) saveUnlocked(path string) error {
	q.mu.Lock()
	items := append([]string(nil), q.items...)
	q.mu.Unlock()
	_ = items
	return os.WriteFile(path, nil, 0o644)
}

// A select with a default never parks the goroutine.
func (q *queue) trySignal() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// cond.Wait releases the mutex while parked; the dequeue idiom is
// exempt by design.
func (q *queue) dequeue() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item
}

// A goroutine launched while the mutex is held starts with its own
// empty lock scope.
func (q *queue) spawn(path string, drain chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		_ = os.WriteFile(path, nil, 0o644)
		<-drain
	}()
}
