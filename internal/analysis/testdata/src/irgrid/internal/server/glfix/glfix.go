// Package glfix is the golifecycle fixture: goroutines in the gated
// service packages must observably participate in a shutdown
// mechanism.
package glfix

import (
	"context"
	"sync"
)

type svc struct {
	wg   sync.WaitGroup
	stop chan struct{}
	work chan int
}

// An orphan: no context, no WaitGroup, no channel.
func (s *svc) orphan() {
	go func() { // want `goroutine is not tied to a context, WaitGroup, or channel drain path: it can outlive the server's shutdown`
		for i := 0; i < 1000; i++ {
			_ = i * i
		}
	}()
}

// An opaque function value: the analyzer cannot see the body, so the
// tie must be visible at the spawn site.
func (s *svc) opaque(f func()) {
	go f() // want `goroutine is not tied to a context, WaitGroup, or channel drain path`
}

// Negatives: each goroutine below is tied through one of the
// recognized mechanisms.

func (s *svc) withCtx(ctx context.Context) {
	go s.run(ctx)
}

func (s *svc) run(ctx context.Context) {
	<-ctx.Done()
}

func (s *svc) withWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

func (s *svc) withDrain() {
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
}

func (s *svc) withStop() {
	go func() {
		<-s.stop
	}()
}

// A named same-package callee is looked through: loop selects on the
// stop channel.
func (s *svc) named() {
	go s.loop()
}

func (s *svc) loop() {
	for {
		select {
		case <-s.stop:
			return
		case v := <-s.work:
			_ = v
		}
	}
}
