// Package lofix is the lockorder positive fixture: two mutex classes
// acquired in both orders close a cycle, and each participating
// acquisition is reported.
package lofix

import "sync"

type store struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }
type audit struct{ mu sync.Mutex }

type svc struct {
	s store
	i index
	a audit
}

func (v *svc) writeThrough() {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.i.mu.Lock() // want `acquiring irgrid/internal/server/lofix\.index\.mu while holding irgrid/internal/server/lofix\.store\.mu closes a lock-order cycle: irgrid/internal/server/lofix\.store\.mu -> irgrid/internal/server/lofix\.index\.mu -> irgrid/internal/server/lofix\.store\.mu`
	v.i.mu.Unlock()
}

func (v *svc) readBack() {
	v.i.mu.Lock()
	defer v.i.mu.Unlock()
	v.s.mu.Lock() // want `acquiring irgrid/internal/server/lofix\.store\.mu while holding irgrid/internal/server/lofix\.index\.mu closes a lock-order cycle`
	v.s.mu.Unlock()
}

// The audit mutex is always innermost: its edges close no cycle.
func (v *svc) log() {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.a.mu.Lock()
	v.a.mu.Unlock()
}
