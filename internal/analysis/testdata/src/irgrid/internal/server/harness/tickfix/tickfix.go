// Package tickfix exercises ctxpropagate's ticker rule in the harness
// subtree: an unbounded loop whose select only receives from a ticker
// has no cancellation path; selecting ctx.Done() or a stop channel
// alongside it is the sanctioned shape.
package tickfix

import (
	"context"
	"time"
)

func pollForever(t *time.Ticker) {
	for {
		select { // want `ticker loop in pollForever has no cancellation path: select on ctx\.Done\(\) or a stop channel alongside the ticker`
		case <-t.C:
			step()
		}
	}
}

func watchForever(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select { // want `ticker loop in watchForever has no cancellation path`
		case now := <-t.C:
			_ = now
		}
	}
}

// Negatives: a ctx.Done() case, a stop-channel case, and a bounded
// loop are each a cancellation path.

func pollWithCtx(ctx context.Context, t *time.Ticker) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			step()
		}
	}
}

func pollWithStop(stop chan struct{}, t *time.Ticker) {
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			step()
		}
	}
}

func pollBounded(t *time.Ticker) {
	for i := 0; i < 3; i++ {
		select {
		case <-t.C:
			step()
		}
	}
}

func step() {}
