// Package dmfix exercises the detmap analyzer inside a deterministic
// package (the testdata/src prefix is stripped, so this file is
// analyzed as irgrid/internal/core/dmfix).
package dmfix

import "sort"

// Sum ranges a map directly: flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map m in deterministic package"
		total += v
	}
	return total
}

// Count uses a bare range: still a map range, still flagged.
func Count(m map[string]int) int {
	n := 0
	for range m { // want "range over map m"
		n++
	}
	return n
}

// SortedSum uses the sanctioned collect-then-sort idiom: the gather
// loop is exempt, the sorted slice range is not a map range.
func SortedSum(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Drain is order-dependent in form but annotated as reviewed.
func Drain(m map[string]chan int) {
	//irlint:allow detmap(close order does not affect results)
	for _, ch := range m {
		close(ch)
	}
}
