// Package dsfix exercises the detsource analyzer inside a
// deterministic package.
package dsfix

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

// Roll draws from the global generator: flagged.
func Roll() int {
	return rand.Intn(6) // want "uses the global generator"
}

// Seeded builds a locally-owned generator: constructors are exempt.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Env reads the environment: flagged.
func Env() string {
	return os.Getenv("IRGRID_MODE") // want "os.Getenv in deterministic package"
}

// Pick races two channels through select: flagged.
func Pick(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// TryRecv is a non-blocking receive: one comm case plus default is
// deterministic enough and exempt.
func TryRecv(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// ObsStamp is an observation-only timing site, annotated as such.
func ObsStamp() time.Time {
	//irlint:allow detsource(obs timing only)
	return time.Now()
}
