// Package cpfix exercises the ctxpropagate analyzer inside a
// lifecycle package (analyzed as irgrid/internal/anneal/cpfix).
package cpfix

import "context"

// Spin has an unbounded loop and no context parameter: flagged.
func Spin(n int) int { // want "takes no context.Context"
	i := 0
	for {
		i++
		if i >= n {
			break
		}
	}
	return i
}

// Converge accepts a context but its while-style loop never consults
// it: flagged at the loop.
func Converge(ctx context.Context, eps float64) float64 {
	v := 1.0
	for v > eps { // want "never consults its context"
		v *= 0.5
	}
	return v
}

// Cancellable checks ctx.Err each iteration: compliant.
func Cancellable(ctx context.Context, eps float64) (float64, error) {
	v := 1.0
	for v > eps {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		v *= 0.5
	}
	return v, nil
}

// Forward consults the context indirectly by passing it to a callee:
// the cancellation signal has a path into the iteration.
func Forward(ctx context.Context, eps float64) (float64, error) {
	v := 1.0
	for v > eps {
		if err := step(ctx); err != nil {
			return 0, err
		}
		v *= 0.5
	}
	return v, nil
}

func step(ctx context.Context) error { return ctx.Err() }

// SumN is bounded by construction (three-clause loop): exempt.
func SumN(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// spin is unexported: the contract binds the exported API only.
func spin(n int) int {
	for {
		n--
		if n <= 0 {
			return n
		}
	}
}
