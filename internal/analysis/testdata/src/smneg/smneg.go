// Package smneg holds the statemachine negatives: a free-form string
// field with no declaration, and a declared machine used strictly
// within its transition relation.
package smneg

type widget struct {
	// No //irlint:states block: the field is not a machine.
	state string
}

func scribble(w *widget, s string) {
	w.state = s
	w.state = "whatever"
	if w.state == "anything" {
		w.state = "else"
	}
}

type door struct {
	//irlint:states closed open
	//irlint:initial closed
	//irlint:transition closed -> open
	//irlint:transition open -> closed
	pos string
}

func toggle(d *door) {
	switch d.pos {
	case "closed":
		d.pos = "open"
	case "open":
		d.pos = "closed"
	}
}

func slam(d *door) {
	// Unknown source state, but closed has an inbound edge.
	d.pos = "closed"
}

func newDoor() *door {
	return &door{pos: "closed"}
}
