// Package atomfix mixes sync/atomic and plain access to the same
// field; atomicmix is not package-gated, so the fixture needs no
// irgrid path prefix.
package atomfix

import "sync/atomic"

type counter struct {
	n    int64
	hits int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) read() int64 {
	return c.n // want `plain access to atomfix\.counter\.n, which is accessed with sync/atomic elsewhere: use the atomic API at every site`
}

func (c *counter) reset() {
	c.n = 0 // want `plain access to atomfix\.counter\.n`
}

// hits is never touched atomically: plain access is fine.
func (c *counter) bump() {
	c.hits++
}
