// Package use exercises the obssafe analyzer against the fake obs
// package.
package use

import obs "irgrid/internal/analysis/testdata/src/obsfix/internal/obs"

// Record mixes legal and illegal instrument handling.
func Record(c *obs.Counter, g *obs.Gauge, r *obs.Registry) int64 {
	c.Add(1)      // nil-safe method call: legal
	if c != nil { // want `nil-compare of \*obs.Counter`
		c.Add(1)
	}
	if g == nil { // want `nil-compare of \*obs.Gauge`
		return 0
	}
	total := c.N  // want `field access N on \*obs.Counter`
	if r == nil { // Registry nil-gating is the sanctioned pattern: legal
		return total
	}
	r.Counter("evals").Add(1)
	return total
}

// Trace mixes legal and illegal span/recorder handling (PR 7).
func Trace(t *obs.Spans, rec *obs.Recorder, st *obs.Status) string {
	sp := t.Start("evaluate") // nil-safe handle method: legal
	defer sp.End()            // nil-safe span method: legal
	if sp != nil {            // want `nil-compare of \*obs.Span`
		sp.Child("merge").End()
	}
	p := sp.Path    // want `field access Path on \*obs.Span`
	if rec != nil { // Recorder nil-gating is the sanctioned pattern: legal
		rec.Record()
	}
	n := t.N // want `field access N on \*obs.Spans`
	_ = n
	if st == nil { // Status nil-gating: legal
		return p
	}
	_ = st.Snapshot()
	return p
}
