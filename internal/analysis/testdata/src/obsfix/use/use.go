// Package use exercises the obssafe analyzer against the fake obs
// package.
package use

import obs "irgrid/internal/analysis/testdata/src/obsfix/internal/obs"

// Record mixes legal and illegal instrument handling.
func Record(c *obs.Counter, g *obs.Gauge, r *obs.Registry) int64 {
	c.Add(1)      // nil-safe method call: legal
	if c != nil { // want `nil-compare of \*obs.Counter`
		c.Add(1)
	}
	if g == nil { // want `nil-compare of \*obs.Gauge`
		return 0
	}
	total := c.N  // want `field access N on \*obs.Counter`
	if r == nil { // Registry nil-gating is the sanctioned pattern: legal
		return total
	}
	r.Counter("evals").Add(1)
	return total
}
