// Package obs is a miniature stand-in for irgrid/internal/obs (the
// import path ends in /internal/obs, which is how obssafe recognizes
// it). The exported field N exists so the fixture's illegal
// field-access compiles.
package obs

// Counter is a nil-safe monotonic counter.
type Counter struct{ N int64 }

// Add is a no-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.N += d
}

// Gauge is a nil-safe last-value gauge.
type Gauge struct{ V float64 }

// Set is a no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.V = v
}

// Histogram is a nil-safe distribution sketch.
type Histogram struct{ Sum float64 }

// Observe is a no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.Sum += v
}

// Registry hands out instruments; a nil *Registry means telemetry is
// disabled and is the sanctioned thing to nil-check.
type Registry struct{ counters map[string]*Counter }

// Counter returns the named counter, nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Span is a nil-safe timing span (PR 7). The exported Path field
// exists so the fixture's illegal field-access compiles.
type Span struct{ Path string }

// End is a no-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Path = ""
}

// Child is nil-safe and returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{Path: s.Path + "/" + name}
}

// Spans is the span-collection handle; a nil *Spans disables tracing
// and is the sanctioned thing to nil-check. The exported N field
// exists so the fixture's illegal handle field-access compiles.
type Spans struct{ N int }

// Start is nil-safe and returns a nil span on a nil receiver.
func (t *Spans) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.N++
	return &Span{Path: name}
}

// Recorder is the flight-recorder handle; nil-gating it is the
// sanctioned enable/disable pattern.
type Recorder struct{ Events int }

// Record is a no-op on a nil receiver.
func (r *Recorder) Record() {
	if r == nil {
		return
	}
	r.Events++
}

// Status is the live run-status handle.
type Status struct{ Step int }

// Snapshot is nil-safe.
func (st *Status) Snapshot() int {
	if st == nil {
		return 0
	}
	return st.Step
}
