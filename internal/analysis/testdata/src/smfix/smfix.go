// Package smfix declares a state machine on a struct field and
// exercises every statemachine check. The machine deliberately does
// NOT declare running -> queued: the requeue function below proves the
// analyzer rejects that transition.
package smfix

type job struct {
	//irlint:states queued running done failed
	//irlint:initial queued
	//irlint:terminal done failed
	//irlint:transition queued -> running failed
	//irlint:transition running -> done failed
	state string
	note  string
}

const (
	stQueued  = "queued"
	stRunning = "running"
	stDone    = "done"
	stFailed  = "failed"
)

// Declared transitions with a statically known source state.
func start(j *job) {
	if j.state == stQueued {
		j.state = stRunning
	}
}

// Unknown source, reachable target: allowed.
func finish(j *job) {
	j.state = stDone
}

// The acceptance case: running -> queued is not a declared transition.
func requeue(j *job) {
	switch j.state {
	case stRunning:
		j.state = stQueued // want `undeclared state transition running -> queued on smfix\.job\.state`
	default:
	}
}

// Same violation proven through an if-dominated source state.
func requeueIf(j *job) {
	if j.state == stRunning {
		j.state = stQueued // want `undeclared state transition running -> queued on smfix\.job\.state`
	}
}

// Assigning a state the table never declared.
func corrupt(j *job) {
	j.state = "paused" // want `state field smfix\.job\.state assigned undeclared state "paused"`
}

// A non-constant right-hand side defeats the proof.
func restore(j *job, persisted string) {
	j.state = persisted // want `state field smfix\.job\.state assigned a non-constant value: the transition cannot be verified`
}

// Comparisons must name declared states.
func isZombie(j *job) bool {
	return j.state == "zombie" // want `comparison of smfix\.job\.state against undeclared state "zombie"`
}

// A switch without a default must cover every declared state.
func code(j *job) int {
	switch j.state { // want `switch over smfix\.job\.state is not exhaustive: missing failed \(add the cases or a default\)`
	case stQueued:
		return 0
	case stRunning:
		return 1
	case stDone:
		return 2
	}
	return -1
}

// Case labels must be declared states.
func weird(j *job) {
	switch j.state {
	case "limbo": // want `switch over smfix\.job\.state names undeclared state "limbo"`
	default:
	}
}

// Composite literals: the initial state is reachable by definition;
// undeclared or non-constant initializers are findings.
func newJob() *job {
	return &job{state: stQueued}
}

func newBroken() *job {
	return &job{state: "limbo"} // want `state field smfix\.job\.state initialized with undeclared state "limbo"`
}

func newFromSpec(s string) *job {
	return &job{state: s} // want `state field smfix\.job\.state initialized with a non-constant value: the state cannot be verified`
}

// The note field carries no machine: anything goes.
func annotate(j *job, s string) {
	j.note = s
}

// task's table is invalid (transition names an undeclared state); the
// declaration itself is the finding and no machine is registered.
type task struct {
	//irlint:states idle busy
	//irlint:initial idle
	//irlint:transition idle -> gone
	phase string // want `invalid state-machine declaration`
}

func poke(t *task) {
	t.phase = "anything"
}
