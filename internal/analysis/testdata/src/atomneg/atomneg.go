// Package atomneg accesses its fields only plainly (under a mutex):
// with no atomic site anywhere, atomicmix must stay silent.
package atomneg

import "sync"

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) read() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
