package analysis_test

import (
	"testing"

	"irgrid/internal/analysis"
	"irgrid/internal/analysis/atest"
)

// Each analyzer runs against at least one positive fixture (inside the
// gated package set or carrying the gating marker, with want
// expectations) and at least one negative fixture (same constructs
// outside the gate, expecting silence).

func TestDetmap(t *testing.T) {
	atest.Run(t, analysis.Detmap,
		"irgrid/internal/core/dmfix", // positives + collect-idiom and allow negatives
		"pkg/dmneg",                  // outside deterministic set: silent
	)
}

func TestDetsource(t *testing.T) {
	atest.Run(t, analysis.Detsource,
		"irgrid/internal/core/dsfix",
		"pkg/dsneg",
	)
}

func TestHotalloc(t *testing.T) {
	// Positive and negative cases live side by side in one fixture: the
	// //irlint:hot marker is the gate, so marked and unmarked functions
	// with identical constructs cover both directions.
	atest.Run(t, analysis.Hotalloc, "hotfix")
}

func TestCtxpropagate(t *testing.T) {
	atest.Run(t, analysis.Ctxpropagate,
		"irgrid/internal/anneal/cpfix",
		"pkg/cpneg",
	)
}

func TestObssafe(t *testing.T) {
	// use holds positives (field access, instrument nil-compares) and
	// negatives (method calls, Registry nil-gating); the fake obs
	// package itself must be exempt — run it as its own fixture too.
	atest.Run(t, analysis.Obssafe,
		"obsfix/use",
		"obsfix/internal/obs",
	)
}

func TestAnnotcheck(t *testing.T) {
	atest.Run(t, analysis.Annotcheck, "annotfix")
}

// TestRegistry pins the suite composition: every analyzer registered
// exactly once, annotcheck not suppressible.
func TestRegistry(t *testing.T) {
	all := analysis.All()
	want := []string{"detmap", "detsource", "hotalloc", "ctxpropagate", "obssafe", "annotcheck"}
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
