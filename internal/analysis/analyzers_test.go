package analysis_test

import (
	"testing"

	"irgrid/internal/analysis"
	"irgrid/internal/analysis/atest"
)

// Each analyzer runs against at least one positive fixture (inside the
// gated package set or carrying the gating marker, with want
// expectations) and at least one negative fixture (same constructs
// outside the gate, expecting silence).

func TestDetmap(t *testing.T) {
	atest.Run(t, analysis.Detmap,
		"irgrid/internal/core/dmfix", // positives + collect-idiom and allow negatives
		"pkg/dmneg",                  // outside deterministic set: silent
	)
}

func TestDetsource(t *testing.T) {
	atest.Run(t, analysis.Detsource,
		"irgrid/internal/core/dsfix",
		"pkg/dsneg",
	)
}

func TestHotalloc(t *testing.T) {
	// Positive and negative cases live side by side in one fixture: the
	// //irlint:hot marker is the gate, so marked and unmarked functions
	// with identical constructs cover both directions.
	atest.Run(t, analysis.Hotalloc, "hotfix")
}

func TestCtxpropagate(t *testing.T) {
	atest.Run(t, analysis.Ctxpropagate,
		"irgrid/internal/anneal/cpfix",
		"pkg/cpneg",
		// The ticker rule: poll loops in the harness subtree must select
		// a cancellation path alongside the ticker.
		"irgrid/internal/server/harness/tickfix",
	)
}

func TestLockscope(t *testing.T) {
	atest.Run(t, analysis.Lockscope,
		"irgrid/internal/server/lsfix", // blocking under a held mutex, incl. a facts-derived callee
		"pkg/lsneg",                    // same constructs outside the gate: silent
	)
}

func TestLockorder(t *testing.T) {
	atest.Run(t, analysis.Lockorder,
		"irgrid/internal/server/lofix", // a two-mutex cycle, reported at both closing edges
		"pkg/loneg",                    // the same cycle outside the gate: silent
	)
}

func TestAtomicmix(t *testing.T) {
	// atomicmix is not package-gated; the negative is a package with no
	// atomic access at all.
	atest.Run(t, analysis.Atomicmix,
		"atomfix",
		"atomneg",
	)
}

func TestGolifecycle(t *testing.T) {
	atest.Run(t, analysis.Golifecycle,
		"irgrid/internal/server/glfix",
		"pkg/glneg",
	)
}

func TestStatemachine(t *testing.T) {
	// statemachine is keyed on //irlint:states declarations rather than
	// a package gate; smfix includes the acceptance case (an undeclared
	// running -> queued requeue) and an invalid declaration table.
	atest.Run(t, analysis.Statemachine,
		"smfix",
		"smneg",
	)
}

func TestObssafe(t *testing.T) {
	// use holds positives (field access, instrument nil-compares) and
	// negatives (method calls, Registry nil-gating); the fake obs
	// package itself must be exempt — run it as its own fixture too.
	atest.Run(t, analysis.Obssafe,
		"obsfix/use",
		"obsfix/internal/obs",
	)
}

func TestAnnotcheck(t *testing.T) {
	atest.Run(t, analysis.Annotcheck, "annotfix")
}

// TestRegistry pins the suite composition: every analyzer registered
// exactly once, annotcheck not suppressible.
func TestRegistry(t *testing.T) {
	all := analysis.All()
	want := []string{
		"detmap", "detsource", "hotalloc", "ctxpropagate", "obssafe", "annotcheck",
		"lockscope", "lockorder", "atomicmix", "golifecycle", "statemachine",
	}
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
