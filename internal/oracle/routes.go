package oracle

import (
	"fmt"
	"math/big"
)

// This file is level 1 of the oracle hierarchy: literal enumeration of
// every monotone (staircase) route on a small unit lattice. A route is
// the sequence of unit cells visited walking from the source cell
// (0, 0) to the sink cell (g1-1, g2-1) by unit steps right or up; the
// crossing probability of a rectangle is the fraction of routes that
// visit at least one of its cells. Nothing here is clever, which is
// the point.

// maxEnumRoutes bounds the number of routes an enumeration call may
// visit; beyond it the bounding box is not "small" and the rational
// oracle should be used instead.
const maxEnumRoutes = 4 << 20

// VisitRoutes enumerates every monotone route of a g1×g2 lattice in
// lexicographic step order (right before up), calling visit with the
// cell sequence. The slice is reused between calls; visit must not
// retain it. It panics when the lattice has more than maxEnumRoutes
// routes.
func VisitRoutes(g1, g2 int, visit func(cells [][2]int)) {
	if g1 < 1 || g2 < 1 {
		panic("oracle: lattice dimensions must be positive")
	}
	if !TotalRoutes(g1, g2).IsInt64() || TotalRoutes(g1, g2).Int64() > maxEnumRoutes {
		panic(fmt.Sprintf("oracle: %dx%d lattice too large to enumerate", g1, g2))
	}
	path := make([][2]int, 1, g1+g2-1)
	path[0] = [2]int{0, 0}
	var walk func(x, y int)
	walk = func(x, y int) {
		if x == g1-1 && y == g2-1 {
			visit(path)
			return
		}
		if x < g1-1 {
			path = append(path, [2]int{x + 1, y})
			walk(x+1, y)
			path = path[:len(path)-1]
		}
		if y < g2-1 {
			path = append(path, [2]int{x, y + 1})
			walk(x, y+1)
			path = path[:len(path)-1]
		}
	}
	walk(0, 0)
}

// CountRoutes returns the enumerated number of monotone routes.
func CountRoutes(g1, g2 int) int64 {
	var n int64
	VisitRoutes(g1, g2, func([][2]int) { n++ })
	return n
}

// CrossCountEnum enumerates all routes and counts those visiting at
// least one cell of the rectangle [x1..x2]×[y1..y2].
func CrossCountEnum(g1, g2, x1, x2, y1, y2 int) (crossing, total int64) {
	VisitRoutes(g1, g2, func(cells [][2]int) {
		total++
		for _, c := range cells {
			if c[0] >= x1 && c[0] <= x2 && c[1] >= y1 && c[1] <= y2 {
				crossing++
				return
			}
		}
	})
	return crossing, total
}

// CrossProbEnum is CrossCountEnum as an exact rational probability.
func CrossProbEnum(g1, g2, x1, x2, y1, y2 int) *big.Rat {
	crossing, total := CrossCountEnum(g1, g2, x1, x2, y1, y2)
	return big.NewRat(crossing, total)
}

// CellCrossCounts enumerates all routes once and returns, for every
// unit cell, the number of routes visiting it. Each route visits a
// cell at most once (monotone steps never revisit), so counts[x][y] /
// total is the exact single-cell crossing probability — the quantity
// the fixed-grid model's Formula 2 computes in closed form.
func CellCrossCounts(g1, g2 int) (counts [][]int64, total int64) {
	counts = make([][]int64, g1)
	for x := range counts {
		counts[x] = make([]int64, g2)
	}
	VisitRoutes(g1, g2, func(cells [][2]int) {
		total++
		for _, c := range cells {
			counts[c[0]][c[1]]++
		}
	})
	return counts, total
}
