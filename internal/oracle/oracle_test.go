package oracle

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"irgrid/internal/core"
	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// TestEnumMatchesRational checks levels 1 and 2 of the hierarchy
// against each other: for every rectangle of every small lattice, the
// enumerated crossing fraction, the boundary-escape identity and the
// avoidance DP must agree exactly (big-rational equality).
func TestEnumMatchesRational(t *testing.T) {
	max := 6
	if testing.Short() {
		max = 5
	}
	for g1 := 1; g1 <= max; g1++ {
		for g2 := 1; g2 <= max; g2++ {
			tab := NewPathTable(g1, g2)
			for x1 := 0; x1 < g1; x1++ {
				for x2 := x1; x2 < g1; x2++ {
					for y1 := 0; y1 < g2; y1++ {
						for y2 := y1; y2 < g2; y2++ {
							enum := CrossProbEnum(g1, g2, x1, x2, y1, y2)
							rat := tab.CrossProbRat(x1, x2, y1, y2)
							dp := CrossProbRatDP(g1, g2, x1, x2, y1, y2)
							if enum.Cmp(rat) != 0 {
								t.Fatalf("%dx%d rect [%d..%d]x[%d..%d]: enum %v != escape identity %v",
									g1, g2, x1, x2, y1, y2, enum, rat)
							}
							if enum.Cmp(dp) != 0 {
								t.Fatalf("%dx%d rect [%d..%d]x[%d..%d]: enum %v != avoidance DP %v",
									g1, g2, x1, x2, y1, y2, enum, dp)
							}
						}
					}
				}
			}
		}
	}
}

// TestCellCrossCountsMatchPathProducts: the enumerated per-cell visit
// counts must equal Ta(x,y)·Tb(x,y) — every route through a cell is a
// route to it times a route from it.
func TestCellCrossCountsMatchPathProducts(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 7}, {4, 4}, {5, 3}, {7, 6}} {
		g1, g2 := dims[0], dims[1]
		counts, total := CellCrossCounts(g1, g2)
		tab := NewPathTable(g1, g2)
		if tab.Total().Int64() != total {
			t.Fatalf("%dx%d: enumerated %d routes, Pascal says %v", g1, g2, total, tab.Total())
		}
		prod := new(big.Int)
		for x := 0; x < g1; x++ {
			for y := 0; y < g2; y++ {
				prod.Mul(tab.Ta(x, y), tab.Tb(x, y))
				if prod.Int64() != counts[x][y] {
					t.Fatalf("%dx%d cell (%d,%d): enumerated %d routes, Ta·Tb = %v",
						g1, g2, x, y, counts[x][y], prod)
				}
			}
		}
	}
}

// TestRationalMatchesEngineFormula3 drives the engine's log-space
// Formula 3 evaluation against the big-rational oracle on random
// rectangles of mid-sized lattices.
func TestRationalMatchesEngineFormula3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	if testing.Short() {
		n = 300
	}
	for i := 0; i < n; i++ {
		g1 := 2 + rng.Intn(40)
		g2 := 2 + rng.Intn(40)
		x1 := rng.Intn(g1)
		x2 := x1 + rng.Intn(g1-x1)
		y1 := rng.Intn(g2)
		y2 := y1 + rng.Intn(g2-y1)
		got := core.ExactCrossProb(g1, g2, x1, x2, y1, y2)
		want := ratToFloat(CrossProbRat(g1, g2, x1, x2, y1, y2))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%dx%d rect [%d..%d]x[%d..%d]: engine %.17g, oracle %.17g",
				g1, g2, x1, x2, y1, y2, got, want)
		}
	}
}

// TestApproxWithinDocumentedEps: the Theorem 1 Simpson approximation
// stays within the documented per-cell ε of the rational oracle on
// interior rectangles (the §4.5 pin-adjacent cells are overridden to 1
// on both sides and always match).
func TestApproxWithinDocumentedEps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 800
	if testing.Short() {
		n = 150
	}
	for i := 0; i < n; i++ {
		g1 := 6 + rng.Intn(40)
		g2 := 6 + rng.Intn(40)
		x1 := 1 + rng.Intn(g1-2)
		x2 := x1 + rng.Intn(g1-1-x1)
		y1 := 1 + rng.Intn(g2-2)
		y2 := y1 + rng.Intn(g2-1-y1)
		got := core.ApproxCrossProb(g1, g2, x1, x2, y1, y2, 0)
		want := ratToFloat(CrossProbRat(g1, g2, x1, x2, y1, y2))
		if d := math.Abs(got - want); d > SimpsonEps {
			t.Fatalf("%dx%d rect [%d..%d]x[%d..%d]: approx %.6f vs oracle %.6f, |Δ|=%.6f > %g",
				g1, g2, x1, x2, y1, y2, got, want, d, SimpsonEps)
		}
	}
}

// TestOracleRatMatchesFloat: the oracle's two arithmetic backends must
// agree to float rounding on identical circuits.
func TestOracleRatMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	chip := geom.Rect{X1: 0, Y1: 0, X2: 600, Y2: 600}
	for trial := 0; trial < 10; trial++ {
		var nets []netlist.TwoPin
		for i := 0; i < 12; i++ {
			nets = append(nets, netlist.TwoPin{
				A: geom.Pt{X: 30 * float64(rng.Intn(21)), Y: 30 * float64(rng.Intn(21))},
				B: geom.Pt{X: 30 * float64(rng.Intn(21)), Y: 30 * float64(rng.Intn(21))},
			})
		}
		f := Config{Pitch: 30}.Evaluate(chip, nets)
		r := Config{Pitch: 30, Rat: true}.Evaluate(chip, nets)
		if len(f.X) != len(r.X) || len(f.Y) != len(r.Y) {
			t.Fatalf("trial %d: backends disagree on geometry", trial)
		}
		for iy := range f.Prob {
			for ix := range f.Prob[iy] {
				if d := math.Abs(f.Prob[iy][ix] - r.Prob[iy][ix]); d > 1e-11 {
					t.Fatalf("trial %d cell (%d,%d): float %.17g vs rat %.17g",
						trial, ix, iy, f.Prob[iy][ix], r.Prob[iy][ix])
				}
			}
		}
		if d := math.Abs(f.TopScore(0.10) - r.TopScore(0.10)); d > 1e-11 {
			t.Fatalf("trial %d: scores diverge by %g", trial, d)
		}
	}
}

// TestOracleDegenerateNets: point and line routing ranges cross every
// covered IR-grid with probability exactly 1.
func TestOracleDegenerateNets(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 300}
	cases := []struct {
		name string
		net  netlist.TwoPin
	}{
		{"point", netlist.TwoPin{A: geom.Pt{X: 120, Y: 120}, B: geom.Pt{X: 120, Y: 120}}},
		{"hline", netlist.TwoPin{A: geom.Pt{X: 60, Y: 150}, B: geom.Pt{X: 240, Y: 150}}},
		{"vline", netlist.TwoPin{A: geom.Pt{X: 150, Y: 60}, B: geom.Pt{X: 150, Y: 240}}},
	}
	for _, tc := range cases {
		mp := Config{Pitch: 30}.Evaluate(chip, []netlist.TwoPin{tc.net})
		var mass float64
		for iy := range mp.Prob {
			for ix, p := range mp.Prob[iy] {
				if p != 0 && p != 1 {
					t.Errorf("%s: cell (%d,%d) has probability %g, want 0 or 1", tc.name, ix, iy, p)
				}
				mass += p
			}
		}
		if mass == 0 {
			t.Errorf("%s: net covered no IR-grid", tc.name)
		}
	}
}

// TestOracleTypeIIReflection: mirroring a type II net across the
// chip's horizontal midline yields the mirrored probability grid.
func TestOracleTypeIIReflection(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 600, Y2: 600}
	n1 := netlist.TwoPin{A: geom.Pt{X: 90, Y: 480}, B: geom.Pt{X: 450, Y: 120}} // type II
	n2 := netlist.TwoPin{A: geom.Pt{X: 90, Y: 120}, B: geom.Pt{X: 450, Y: 480}} // its type I mirror
	m1 := Config{Pitch: 30}.Evaluate(chip, []netlist.TwoPin{n1})
	m2 := Config{Pitch: 30}.Evaluate(chip, []netlist.TwoPin{n2})
	if len(m1.Y) != len(m2.Y) || len(m1.X) != len(m2.X) {
		t.Fatal("mirrored nets produced different grid shapes")
	}
	rows := m1.Rows()
	for iy := 0; iy < rows; iy++ {
		for ix := 0; ix < m1.Cols(); ix++ {
			a := m1.Prob[iy][ix]
			b := m2.Prob[rows-1-iy][ix]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("cell (%d,%d): type II %.17g vs mirrored type I %.17g", ix, iy, a, b)
			}
		}
	}
}

// FuzzRouteProbability cross-checks the three exact oracles and the
// engine's Formula 3 on fuzzer-chosen lattices and rectangles.
func FuzzRouteProbability(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(12), uint8(3), uint8(0), uint8(11), uint8(1), uint8(0))
	f.Add(uint8(30), uint8(30), uint8(7), uint8(12), uint8(20), uint8(5))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g uint8) {
		g1 := 1 + int(a)%24
		g2 := 1 + int(b)%24
		x1 := int(c) % g1
		x2 := x1 + int(d)%(g1-x1)
		y1 := int(e) % g2
		y2 := y1 + int(g)%(g2-y1)

		rat := CrossProbRat(g1, g2, x1, x2, y1, y2)
		if dp := CrossProbRatDP(g1, g2, x1, x2, y1, y2); rat.Cmp(dp) != 0 {
			t.Fatalf("escape identity %v != avoidance DP %v", rat, dp)
		}
		if one := big.NewRat(1, 1); rat.Cmp(one) > 0 || rat.Sign() < 0 {
			t.Fatalf("probability %v outside [0, 1]", rat)
		}
		if g1 >= 2 && g2 >= 2 {
			engine := core.ExactCrossProb(g1, g2, x1, x2, y1, y2)
			if math.Abs(engine-ratToFloat(rat)) > 1e-12 {
				t.Fatalf("engine %.17g vs rational %.17g", engine, ratToFloat(rat))
			}
		}
		if total := TotalRoutes(g1, g2); total.IsInt64() && total.Int64() <= 1<<14 {
			if enum := CrossProbEnum(g1, g2, x1, x2, y1, y2); rat.Cmp(enum) != 0 {
				t.Fatalf("rational %v != enumeration %v", rat, enum)
			}
		}
	})
}
