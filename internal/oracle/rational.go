package oracle

import "math/big"

// This file is level 2 of the oracle hierarchy: exact big-rational
// crossing probabilities from integer route counts. Route counts are
// built by Pascal's rule — Ta(x, y) = Ta(x-1, y) + Ta(x, y-1) — rather
// than factorials, so the table is correct by the definition of a
// monotone route; a single exact division per query turns counts into
// probabilities. Two independent combinations of the counts are
// provided: the paper's boundary-escape identity (Formula 3) and a
// route-avoidance DP. Their agreement, checked by the tests, proves
// the identity itself at full precision.

// PathTable holds the monotone route counts of a g1×g2 unit lattice
// with the source pin at cell (0, 0) and the sink at (g1-1, g2-1):
// ta[x][y] is the number of monotone routes from the source cell to
// cell (x, y).
type PathTable struct {
	g1, g2 int
	ta     [][]*big.Int
}

// NewPathTable builds the route-count table by Pascal's rule.
func NewPathTable(g1, g2 int) *PathTable {
	if g1 < 1 || g2 < 1 {
		panic("oracle: lattice dimensions must be positive")
	}
	t := &PathTable{g1: g1, g2: g2, ta: make([][]*big.Int, g1)}
	for x := 0; x < g1; x++ {
		t.ta[x] = make([]*big.Int, g2)
		for y := 0; y < g2; y++ {
			v := new(big.Int)
			switch {
			case x == 0 && y == 0:
				v.SetInt64(1)
			case x == 0:
				v.Set(t.ta[0][y-1])
			case y == 0:
				v.Set(t.ta[x-1][0])
			default:
				v.Add(t.ta[x-1][y], t.ta[x][y-1])
			}
			t.ta[x][y] = v
		}
	}
	return t
}

// Ta returns the number of monotone routes from the source cell to
// cell (x, y); zero outside the lattice.
func (t *PathTable) Ta(x, y int) *big.Int {
	if x < 0 || y < 0 || x >= t.g1 || y >= t.g2 {
		return new(big.Int)
	}
	return t.ta[x][y]
}

// Tb returns the number of monotone routes from cell (x, y) to the
// sink; zero outside the lattice.
func (t *PathTable) Tb(x, y int) *big.Int {
	return t.Ta(t.g1-1-x, t.g2-1-y)
}

// Total returns the number of monotone routes from source to sink.
func (t *PathTable) Total() *big.Int { return t.Ta(t.g1-1, t.g2-1) }

// TopEscapeSum returns the exact probability that a uniformly random
// monotone route leaves the rectangle columns [x1, x2] upward through
// top row y2: Σ_x Ta(x, y2)·Tb(x, y2+1) / Total.
func (t *PathTable) TopEscapeSum(x1, x2, y2 int) *big.Rat {
	num := new(big.Int)
	term := new(big.Int)
	for x := x1; x <= x2; x++ {
		num.Add(num, term.Mul(t.Ta(x, y2), t.Tb(x, y2+1)))
	}
	return new(big.Rat).SetFrac(num, t.Total())
}

// RightEscapeSum returns the exact probability that a route leaves the
// rectangle rows [y1, y2] rightward through right column x2.
func (t *PathTable) RightEscapeSum(x2, y1, y2 int) *big.Rat {
	num := new(big.Int)
	term := new(big.Int)
	for y := y1; y <= y2; y++ {
		num.Add(num, term.Mul(t.Ta(x2, y), t.Tb(x2+1, y)))
	}
	return new(big.Rat).SetFrac(num, t.Total())
}

// CrossProbRat returns the exact probability that a uniformly random
// monotone route on a g1×g2 lattice (type I orientation) crosses the
// rectangle [x1..x2]×[y1..y2], evaluated through the boundary-escape
// identity of Formula 3: a monotone route inside the routing range
// crosses the rectangle exactly once through its top or right edge,
// so the escape sums partition the crossing routes. Rectangles
// covering a pin cell return exactly 1 (every route visits the pin
// cells).
func CrossProbRat(g1, g2, x1, x2, y1, y2 int) *big.Rat {
	return NewPathTable(g1, g2).CrossProbRat(x1, x2, y1, y2)
}

// CrossProbRat is the method form of the package-level CrossProbRat,
// reusing an already-built table.
func (t *PathTable) CrossProbRat(x1, x2, y1, y2 int) *big.Rat {
	covers := func(cx, cy int) bool {
		return cx >= x1 && cx <= x2 && cy >= y1 && cy <= y2
	}
	if covers(0, 0) || covers(t.g1-1, t.g2-1) {
		return big.NewRat(1, 1)
	}
	p := new(big.Rat)
	if y2+1 <= t.g2-1 {
		p.Add(p, t.TopEscapeSum(x1, x2, y2))
	}
	if x2+1 <= t.g1-1 {
		p.Add(p, t.RightEscapeSum(x2, y1, y2))
	}
	return p
}

// CrossProbRatDP returns the same crossing probability as CrossProbRat
// but through an independent argument: count the monotone routes that
// avoid the rectangle entirely (a Pascal DP with the rectangle's cells
// zeroed) and subtract from certainty. It never uses the
// boundary-escape identity, so agreement with CrossProbRat verifies
// Formula 3 itself.
func CrossProbRatDP(g1, g2, x1, x2, y1, y2 int) *big.Rat {
	if g1 < 1 || g2 < 1 {
		panic("oracle: lattice dimensions must be positive")
	}
	inRect := func(x, y int) bool {
		return x >= x1 && x <= x2 && y >= y1 && y <= y2
	}
	avoid := make([][]*big.Int, g1)
	for x := 0; x < g1; x++ {
		avoid[x] = make([]*big.Int, g2)
		for y := 0; y < g2; y++ {
			v := new(big.Int)
			if !inRect(x, y) {
				switch {
				case x == 0 && y == 0:
					v.SetInt64(1)
				case x == 0:
					v.Set(avoid[0][y-1])
				case y == 0:
					v.Set(avoid[x-1][0])
				default:
					v.Add(avoid[x-1][y], avoid[x][y-1])
				}
			}
			avoid[x][y] = v
		}
	}
	total := NewPathTable(g1, g2).Total()
	p := new(big.Rat).SetFrac(avoid[g1-1][g2-1], total)
	return p.Sub(big.NewRat(1, 1), p)
}

// TotalRoutes returns the number of monotone routes across a g1×g2
// lattice, C(g1+g2-2, g1-1), from the Pascal table.
func TotalRoutes(g1, g2 int) *big.Int {
	return NewPathTable(g1, g2).Total()
}
