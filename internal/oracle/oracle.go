// Package oracle provides slow, obviously-correct reference
// implementations of the Irregular-Grid congestion model, forming a
// verification hierarchy beneath the production engine
// (internal/core):
//
//  1. Exhaustive monotone (staircase) route enumeration (routes.go):
//     every shortest Manhattan route on a small unit lattice is walked
//     cell by cell, so crossing probabilities are literal counts. This
//     is the ground floor — there is nothing to get wrong beyond the
//     definition of a monotone route.
//  2. Exact big-rational path counting (rational.go): binomial route
//     counts built by Pascal's rule in big.Int, combined either through
//     the paper's boundary-escape identity (Formula 3) or through an
//     independent avoidance DP. No floating point, no Simpson
//     quadrature, any lattice size. Validated against level 1 on small
//     lattices; validates Formula 3 itself at full precision.
//  3. A naive re-implementation of the full Model.Evaluate pipeline
//     (this file): cutting-line construction, the line-merge rule,
//     per-net per-IR-grid probabilities term by term, and the
//     area-weighted top-fraction score — single-threaded, allocating
//     freely, sharing no code with the engine's sweeps, memo caches or
//     quickselect. Validated against level 2 cell by cell (Config.Rat).
//
// The differential harness (package oracle/diff) drives level 3
// against core.Evaluator over randomized circuits and the MCNC
// benchmark suite, for both sequential and parallel evaluation.
package oracle

import (
	"math"
	"math/big"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// Documented error budgets for comparisons against the engine. They
// are exported so the differential harness, the fuzz targets and the
// golden suite all agree on one pair of numbers (see DESIGN.md,
// "Verification").
const (
	// ExactEps bounds |P_oracle − P_engine| for cells the engine
	// evaluates with exact log-binomial sums: pure float round-off
	// between two different exact summation orders.
	ExactEps = 1e-9
	// SimpsonEps bounds the per-net-contribution error of the Theorem 1
	// Simpson approximation against the exact escape sums. The measured
	// worst case over the randomized corpus is far smaller (see the
	// regression pins in internal/oracle/diff); this is the documented
	// engine-wide guarantee matching core's own approximation tests.
	SimpsonEps = 0.11
)

// Config mirrors the semantic knobs of core.Model. It deliberately has
// no performance knobs (workers, memo caps, Simpson subintervals): the
// oracle always evaluates the escape sums exactly.
type Config struct {
	// Pitch is the base grid pitch in µm (unit lattice and line-merge
	// threshold). Must be positive.
	Pitch float64
	// TopFraction is the most-congested chip-area fraction averaged
	// into Score. Zero means 0.10.
	TopFraction float64
	// Exact mirrors core.Model.Exact: when false (the paper's default
	// model) the §4.5 pin-adjacent cells are overridden to probability
	// 1 exactly as the approximate engine does.
	Exact bool
	// NoMerge disables the cutting-line merge rule (Algorithm step 2).
	NoMerge bool
	// ExactSpanLimit mirrors core.Model.ExactSpanLimit. The oracle
	// itself always sums exactly; the limit is only used to flag the
	// cells where the engine under the same configuration would take
	// the Theorem 1 Simpson path, so the differential harness can apply
	// the approximation's ε budget to those cells and the tight
	// round-off budget everywhere else. Zero means the engine default
	// (32); negative means 1 (the engine's force-Simpson setting).
	ExactSpanLimit int
	// Rat computes every escape term in big-rational arithmetic
	// (Pascal-rule route counts, one division per cell) instead of the
	// default independent float64 log-binomial sums. Exact but slow;
	// meant for small circuits.
	Rat bool
}

func (c Config) topFraction() float64 {
	if c.TopFraction <= 0 {
		return 0.10
	}
	return c.TopFraction
}

func (c Config) exactSpanLimit() int {
	switch {
	case c.ExactSpanLimit > 0:
		return c.ExactSpanLimit
	case c.ExactSpanLimit < 0:
		return 1
	default:
		return 32
	}
}

// Map is the oracle's evaluated Irregular-Grid.
type Map struct {
	Chip geom.Rect
	// X and Y are the cutting-line coordinates after dedup and merge.
	X, Y []float64
	// Prob[iy][ix] is F(I) = Σ_i P_i(I) for the IR-grid between
	// X[ix]..X[ix+1] and Y[iy]..Y[iy+1].
	Prob [][]float64
	// ApproxNets[iy][ix] counts the net contributions to this IR-grid
	// for which the engine (same configuration, default evaluation
	// policy) would score at least one edge with the Theorem 1 Simpson
	// integral instead of the exact sum. Zero means the engine's value
	// should match the oracle to round-off; positive cells carry the
	// approximation's error budget once per flagged contribution.
	ApproxNets [][]int
}

// Cols returns the number of IR-grid columns.
func (mp *Map) Cols() int { return len(mp.X) - 1 }

// Rows returns the number of IR-grid rows.
func (mp *Map) Rows() int { return len(mp.Y) - 1 }

// Evaluate runs the full reference pipeline: cutting lines from every
// net's routing range, dedup, merge rule, and per-net per-IR-grid
// exact crossing probabilities.
func (c Config) Evaluate(chip geom.Rect, nets []netlist.TwoPin) *Map {
	if c.Pitch <= 0 {
		panic("oracle: Pitch must be positive")
	}
	eps := c.Pitch * 1e-9
	xs := []float64{chip.X1, chip.X2}
	ys := []float64{chip.Y1, chip.Y2}
	for _, n := range nets {
		r := rangeOf(n)
		xs = append(xs, r.X1, r.X2)
		ys = append(ys, r.Y1, r.Y2)
	}
	x := dedupeSorted(xs, eps)
	y := dedupeSorted(ys, eps)
	if !c.NoMerge {
		x = mergeLines(x, 2*c.Pitch)
		y = mergeLines(y, 2*c.Pitch)
	}
	mp := &Map{Chip: chip, X: x, Y: y}
	mp.Prob = make([][]float64, mp.Rows())
	mp.ApproxNets = make([][]int, mp.Rows())
	for iy := range mp.Prob {
		mp.Prob[iy] = make([]float64, mp.Cols())
		mp.ApproxNets[iy] = make([]int, mp.Cols())
	}
	for _, n := range nets {
		c.addNet(mp, n)
	}
	return mp
}

// Score evaluates the nets and returns the chip-level congestion cost
// under the configured top fraction.
func (c Config) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	return c.Evaluate(chip, nets).TopScore(c.topFraction())
}

// TopScore returns the area-weighted mean density over the most
// congested IR-grids covering frac of the chip area, by fully sorting
// the cells (the engine uses a quickselect instead). The last consumed
// cell contributes only its remaining area share; a non-positive
// budget returns the maximum density.
func (mp *Map) TopScore(frac float64) float64 {
	type cell struct{ d, area float64 }
	var cells []cell
	for iy := 0; iy < mp.Rows(); iy++ {
		for ix := 0; ix < mp.Cols(); ix++ {
			a := (mp.X[ix+1] - mp.X[ix]) * (mp.Y[iy+1] - mp.Y[iy])
			if a <= 0 {
				continue
			}
			cells = append(cells, cell{d: mp.Prob[iy][ix] / a, area: a})
		}
	}
	if len(cells) == 0 {
		return 0
	}
	budget := frac * mp.Chip.Area()
	if budget <= 0 {
		mx := cells[0].d
		for _, cl := range cells[1:] {
			mx = math.Max(mx, cl.d)
		}
		return mx
	}
	// Selection sort, densest first: slow and unambiguous. Equal
	// densities contribute identically whatever their order, so ties
	// cannot change the result.
	for i := range cells {
		best := i
		for j := i + 1; j < len(cells); j++ {
			if cells[j].d > cells[best].d {
				best = j
			}
		}
		cells[i], cells[best] = cells[best], cells[i]
	}
	var sum, used float64
	remaining := budget
	for _, cl := range cells {
		a := math.Min(cl.area, remaining)
		sum += cl.d * a
		used += a
		remaining -= a
		if remaining <= 0 {
			break
		}
	}
	if used == 0 {
		return 0
	}
	return sum / used
}

// rangeOf is the net's routing range: the bounding box of its pins.
func rangeOf(n netlist.TwoPin) geom.Rect {
	return geom.Rect{
		X1: math.Min(n.A.X, n.B.X), Y1: math.Min(n.A.Y, n.B.Y),
		X2: math.Max(n.A.X, n.B.X), Y2: math.Max(n.A.Y, n.B.Y),
	}
}

// dedupeSorted sorts coords ascending (insertion sort — n is small and
// the intent is transparency) and keeps each coordinate that exceeds
// its predecessor by more than eps.
func dedupeSorted(coords []float64, eps float64) []float64 {
	c := append([]float64(nil), coords...)
	for i := 1; i < len(c); i++ {
		v := c[i]
		j := i - 1
		for j >= 0 && c[j] > v {
			c[j+1] = c[j]
			j--
		}
		c[j+1] = v
	}
	out := []float64{c[0]}
	for _, v := range c[1:] {
		if v-out[len(out)-1] > eps {
			out = append(out, v)
		}
	}
	return out
}

// mergeLines applies Algorithm step 2: interior cutting lines closer
// than minGap to the previously kept line or to the chip's far
// boundary are removed; the two boundary lines always survive.
func mergeLines(a []float64, minGap float64) []float64 {
	if len(a) <= 2 || minGap <= 0 {
		return a
	}
	last := len(a) - 1
	out := []float64{a[0]}
	for i := 1; i < last; i++ {
		if a[i]-out[len(out)-1] >= minGap && a[last]-a[i] >= minGap {
			out = append(out, a[i])
		}
	}
	return append(out, a[last])
}

// locate returns the index of the cell containing v: coordinates
// exactly on an interior cutting line belong to the cell to their
// right, the final coordinate to the last cell.
func locate(axis []float64, v float64) int {
	for i := 0; i+2 < len(axis); i++ {
		if v < axis[i+1] {
			return i
		}
	}
	return len(axis) - 2
}

// cellRange returns the cell index range covered by [lo, hi]; an
// interval ending exactly on a cell's lower line does not extend into
// that cell.
func cellRange(axis []float64, lo, hi float64) (int, int) {
	c1 := locate(axis, lo)
	c2 := locate(axis, hi)
	if c2 > c1 && hi <= axis[c2] {
		c2--
	}
	return c1, c2
}

// unitSpan maps an IR-grid boundary interval [lo, hi] (µm) into unit
// cell indices on a lattice of g cells anchored at origin, mirroring
// the engine's half-open rounding with its 1e-9 guard band.
func unitSpan(lo, hi, origin, pitch float64, g int) (int, int) {
	u1 := int(math.Floor((lo-origin)/pitch + 1e-9))
	u2 := int(math.Ceil((hi-origin)/pitch-1e-9)) - 1
	return clamp(u1, 0, g-1), clamp(u2, 0, g-1)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// addNet accumulates one net's exact crossing probabilities into mp.
func (c Config) addNet(mp *Map, n netlist.TwoPin) {
	r := rangeOf(n)
	cx1, cx2 := cellRange(mp.X, r.X1, r.X2)
	cy1, cy2 := cellRange(mp.Y, r.Y1, r.Y2)

	// The modified routing range spans whole IR-grids.
	x0, y0 := mp.X[cx1], mp.Y[cy1]
	g1 := unitCells(mp.X[cx2+1]-x0, c.Pitch)
	g2 := unitCells(mp.Y[cy2+1]-y0, c.Pitch)
	// Degenerate original ranges stay lines even when the snapped
	// range is wider.
	if r.W() < c.Pitch/2 {
		g1 = 1
	}
	if r.H() < c.Pitch/2 {
		g2 = 1
	}

	if g1 == 1 || g2 == 1 {
		for iy := cy1; iy <= cy2; iy++ {
			for ix := cx1; ix <= cx2; ix++ {
				mp.Prob[iy][ix] += 1
			}
		}
		return
	}

	// Type II: one pin upper-left of the other. Reflect y so the
	// source sits at unit cell (0, 0).
	a, b := n.A, n.B
	if a.X > b.X {
		a, b = b, a
	}
	typeII := b.Y < a.Y

	var tab *PathTable
	if c.Rat {
		tab = NewPathTable(g1, g2)
	}
	lf := newLnFact(g1 + g2)
	limit := c.exactSpanLimit()

	for iy := cy1; iy <= cy2; iy++ {
		for ix := cx1; ix <= cx2; ix++ {
			x1, x2 := unitSpan(mp.X[ix], mp.X[ix+1], x0, c.Pitch, g1)
			y1, y2 := unitSpan(mp.Y[iy], mp.Y[iy+1], y0, c.Pitch, g2)
			if x2 < x1 || y2 < y1 {
				continue
			}
			if typeII {
				y1, y2 = g2-1-y2, g2-1-y1
			}
			p, approx := c.cellProb(tab, lf, g1, g2, x1, x2, y1, y2, limit)
			mp.Prob[iy][ix] += p
			if approx {
				mp.ApproxNets[iy][ix]++
			}
		}
	}
}

// cellProb returns the exact crossing probability of the IR-rectangle
// [x1..x2]×[y1..y2] in type-I orientation, applying the model's pin
// and (in approximate mode) §4.5 overrides, and reports whether the
// engine under the same configuration would have scored any edge of
// this cell with the Simpson integral.
func (c Config) cellProb(tab *PathTable, lf lnFact, g1, g2, x1, x2, y1, y2, limit int) (float64, bool) {
	covers := func(cx, cy int) bool {
		return cx >= x1 && cx <= x2 && cy >= y1 && cy <= y2
	}
	if covers(0, 0) || covers(g1-1, g2-1) {
		return 1, false
	}
	if !c.Exact && (covers(g1-2, g2-1) || covers(g1-1, g2-2)) {
		return 1, false
	}

	approx := false
	var p float64
	if y2+1 <= g2-1 {
		if !c.Exact && x2-x1 >= limit && g2 != 2 {
			approx = true
		}
		if tab != nil {
			p += ratToFloat(tab.TopEscapeSum(x1, x2, y2))
		} else {
			for x := x1; x <= x2; x++ {
				p += math.Exp(lf.logChoose(x+y2, y2) +
					lf.logChoose((g1-1-x)+(g2-2-y2), g2-2-y2) -
					lf.logChoose(g1+g2-2, g2-1))
			}
		}
	}
	if x2+1 <= g1-1 {
		if !c.Exact && y2-y1 >= limit && g1 != 2 {
			approx = true
		}
		if tab != nil {
			p += ratToFloat(tab.RightEscapeSum(x2, y1, y2))
		} else {
			for yy := y1; yy <= y2; yy++ {
				p += math.Exp(lf.logChoose(x2+yy, yy) +
					lf.logChoose((g1-2-x2)+(g2-1-yy), g2-1-yy) -
					lf.logChoose(g1+g2-2, g2-1))
			}
		}
	}
	if p > 1 {
		p = 1
	}
	return p, approx
}

func ratToFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// unitCells converts a snapped routing-range extent into a unit-grid
// dimension.
func unitCells(w, pitch float64) int {
	g := int(math.Round(w / pitch))
	if g < 1 {
		g = 1
	}
	return g
}

// lnFact is the oracle's own ln-factorial table: lnFact[n] = ln(n!).
type lnFact []float64

func newLnFact(n int) lnFact {
	t := make(lnFact, n+1)
	for i := 2; i <= n; i++ {
		t[i] = t[i-1] + math.Log(float64(i))
	}
	return t
}

// logChoose returns ln C(n, k), or -Inf for a zero coefficient.
func (t lnFact) logChoose(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return math.Inf(-1)
	}
	return t[n] - t[k] - t[n-k]
}
