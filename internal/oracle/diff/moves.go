package diff

import (
	"fmt"
	"math/rand"

	"irgrid/internal/bench"
	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/slicing"
)

// MoveOpts configures one move-sequence comparison between the
// incremental delta engine and the full evaluator.
type MoveOpts struct {
	// Model is the engine configuration under test; Pitch must be set.
	Model core.Model
	// Moves is the number of M1/M2/M3 slicing perturbations to drive.
	Moves int
	// RejectRate is the fraction of moves rejected and rolled back;
	// zero means 0.35.
	RejectRate float64
	// MapEvery is the cadence (in moves) of dense-map bit-identity
	// checks; the top-fraction score is compared on every move. Zero
	// means every 10th move.
	MapEvery int
	// RepairRate is the fraction of moves that re-pair net endpoints
	// on the stationary placement (the MST re-decomposition event:
	// same pin set, different pairing) instead of perturbing the
	// slicing tree. Re-pairing preserves the merged cutting lines, so
	// it drives the engine's identical-axes path. Zero means slicing
	// moves only.
	RepairRate float64
}

func (o MoveOpts) rejectRate() float64 {
	if o.RejectRate == 0 {
		return 0.35
	}
	return o.RejectRate
}

func (o MoveOpts) mapEvery() int {
	if o.MapEvery == 0 {
		return 10
	}
	return o.MapEvery
}

// MoveResult summarizes one move-sequence comparison.
type MoveResult struct {
	Moves     int `json:"moves"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	MapChecks int `json:"map_checks"`
}

// CompareMoves drives a DeltaEvaluator through a randomized sequence
// of slicing moves on an MCNC benchmark and checks, move by move, that
// it stays bit-identical to the full evaluator: every move's
// top-fraction score must match exactly, dense maps are compared
// bitwise on a fixed cadence, and after each rejected move the engine
// is rolled back and re-verified against the full evaluation of the
// still-current placement. Slicing perturbations re-pack the
// floorplan, so chip bounds and every net move together — the
// axis-rebuild path dominates there; RepairRate mixes in
// endpoint-re-pairing moves that keep the cutting lines intact and
// drive the identical-axes path.
func CompareMoves(name string, seed int64, o MoveOpts) (*MoveResult, error) {
	c, err := bench.Load(name)
	if err != nil {
		return nil, err
	}
	r, err := fplan.New(c, fplan.Config{
		Weights: fplan.Weights{Alpha: 1},
		Pitch:   o.Model.Pitch,
	})
	if err != nil {
		return nil, err
	}

	m := o.Model
	delta := m.NewDeltaEvaluator()
	rng := rand.New(rand.NewSource(seed))
	res := &MoveResult{Moves: o.Moves}

	cur := slicing.Initial(len(c.Modules))
	sol := r.Evaluate(cur)
	curChip := sol.Placement.Chip
	curNets := append([]netlist.TwoPin(nil), sol.Nets...)
	for i := 0; i < o.Moves; i++ {
		var chip geom.Rect
		var nets []netlist.TwoPin
		var nextExpr slicing.Expr
		if rng.Float64() < o.RepairRate {
			chip = curChip
			nets = repairNets(rng, curNets, 4)
		} else {
			nextExpr = cur.Clone()
			nextExpr.Perturb(rng)
			s := r.Evaluate(nextExpr)
			chip = s.Placement.Chip
			nets = s.Nets
		}

		if i%o.mapEvery() == 0 {
			if err := checkMove(delta, m, chip, nets); err != nil {
				return res, fmt.Errorf("%s move %d: %w", name, i, err)
			}
			res.MapChecks++
		} else {
			got := delta.Score(chip, nets)
			if want := m.Score(chip, nets); got != want {
				return res, fmt.Errorf("%s move %d: delta score %.17g, full score %.17g",
					name, i, got, want)
			}
		}

		if rng.Float64() < o.rejectRate() {
			delta.Rollback()
			res.Rejected++
			// The rolled-back accumulator must reproduce the current
			// accepted placement exactly — not merely the next score.
			if i%o.mapEvery() == 1 {
				if err := checkMove(delta, m, curChip, curNets); err != nil {
					return res, fmt.Errorf("%s move %d (after rollback): %w", name, i, err)
				}
				res.MapChecks++
			}
		} else {
			if nextExpr != nil {
				cur = nextExpr
			}
			curChip = chip
			curNets = append(curNets[:0], nets...)
			res.Accepted++
		}
	}
	return res, nil
}

// repairNets returns a copy of nets with `swaps` random endpoint
// exchanges applied: the pin multiset is unchanged, only the pairing.
// Every per-net range emits both of its pin coordinates (one as the
// low edge, one as the high), so the coordinate multiset feeding the
// axis build — and therefore the merged cutting lines — is invariant
// under any re-pairing.
func repairNets(rng *rand.Rand, nets []netlist.TwoPin, swaps int) []netlist.TwoPin {
	out := append([]netlist.TwoPin(nil), nets...)
	for s := 0; s < swaps; s++ {
		a, b := rng.Intn(len(out)), rng.Intn(len(out))
		out[a].B, out[b].B = out[b].B, out[a].B
	}
	return out
}

// checkMove commits one state into the delta engine via the dense-map
// path and compares the map bitwise against a fresh full evaluation.
func checkMove(delta *core.DeltaEvaluator, m core.Model, chip geom.Rect, nets []netlist.TwoPin) error {
	got := delta.Evaluate(chip, nets)
	want := m.Evaluate(chip, nets)
	if err := bitIdentical(want, got); err != nil {
		return fmt.Errorf("delta map diverged from full evaluation: %w", err)
	}
	return nil
}
