package diff

import (
	"testing"

	"irgrid/internal/core"
)

// TestMoveSequenceBitIdentity is the acceptance run for the
// incremental engine: randomized M1/M2/M3 slicing-move sequences on
// MCNC benchmarks, with roughly a third of the moves rejected and
// rolled back, checking move-by-move bit-identity between the delta
// engine and the full evaluator (exact score every move, bitwise dense
// maps on a cadence and after rollbacks). Over a thousand moves in the
// full run.
func TestMoveSequenceBitIdentity(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		moves  int
		repair float64
	}{
		{"apte", 11, 500, 0},
		{"ami33", 12, 350, 0},
		{"xerox", 13, 250, 0},
		// Mix in endpoint re-pairing on the stationary placement: the
		// axis-preserving move class that drives the identical-axes
		// fast path, interleaved with full repacks.
		{"apte-repair", 14, 400, 0.6},
		{"ami33-repair", 15, 300, 0.6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			moves := tc.moves
			if testing.Short() {
				moves /= 10
			}
			name := tc.name
			if i := len(name) - len("-repair"); i > 0 && name[i:] == "-repair" {
				name = name[:i]
			}
			r, err := CompareMoves(name, tc.seed, MoveOpts{
				Model:      core.Model{Pitch: BenchPitch(name)},
				Moves:      moves,
				RepairRate: tc.repair,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Rejected == 0 || r.Accepted == 0 {
				t.Errorf("degenerate sequence: %+v", r)
			}
			t.Logf("%s: %d moves (%d accepted, %d rejected), %d dense-map checks",
				tc.name, r.Moves, r.Accepted, r.Rejected, r.MapChecks)
		})
	}
}

// TestMoveSequenceExactModel repeats the move-sequence comparison with
// the quadrature disabled (Model.Exact), pinning bit-identity on the
// all-exact evaluation path too.
func TestMoveSequenceExactModel(t *testing.T) {
	moves := 200
	if testing.Short() {
		moves = 25
	}
	r, err := CompareMoves("apte", 21, MoveOpts{
		Model: core.Model{Pitch: BenchPitch("apte"), Exact: true},
		Moves: moves,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("apte exact: %d moves (%d accepted, %d rejected), %d dense-map checks",
		r.Moves, r.Accepted, r.Rejected, r.MapChecks)
}
