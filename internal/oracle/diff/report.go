package diff

import (
	"encoding/json"
	"math"
	"os"
)

// Report aggregates the measured error envelope across many
// comparisons; the CI differential job serializes one as an artifact so
// a perf PR that silently widens the envelope is visible in review.
type Report struct {
	Circuits     int                `json:"circuits"`
	Cells        int                `json:"cells"`
	ExactCells   int                `json:"exact_cells"`
	ApproxCells  int                `json:"approx_cells"`
	MaxExactErr        float64      `json:"max_exact_err"`
	MaxApproxErr       float64      `json:"max_approx_err"`
	MaxApproxErrPerNet float64      `json:"max_approx_err_per_net"`
	MaxScoreErr        float64      `json:"max_score_err"`
	Failures     []string           `json:"failures,omitempty"`
	Benches      map[string]*Result `json:"benches,omitempty"`
}

// Add folds one comparison into the aggregate. A non-nil err is
// recorded as a failure line.
func (rp *Report) Add(r *Result, err error) {
	rp.Circuits++
	rp.Cells += r.Cols * r.Rows
	rp.ExactCells += r.ExactCells
	rp.ApproxCells += r.ApproxCells
	rp.MaxExactErr = math.Max(rp.MaxExactErr, r.MaxExactErr)
	rp.MaxApproxErr = math.Max(rp.MaxApproxErr, r.MaxApproxErr)
	rp.MaxApproxErrPerNet = math.Max(rp.MaxApproxErrPerNet, r.MaxApproxErrPerNet)
	rp.MaxScoreErr = math.Max(rp.MaxScoreErr, r.ScoreErr)
	if err != nil {
		rp.Failures = append(rp.Failures, err.Error())
	}
}

// AddBench records a named benchmark comparison alongside the
// aggregate.
func (rp *Report) AddBench(name string, r *Result, err error) {
	if rp.Benches == nil {
		rp.Benches = make(map[string]*Result)
	}
	rp.Benches[name] = r
	rp.Add(r, err)
}

// WriteFile serializes the report as indented JSON.
func (rp *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
