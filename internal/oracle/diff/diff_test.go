package diff

import (
	"math/rand"
	"testing"

	"irgrid/internal/bench"
	"irgrid/internal/core"
)

// TestDifferentialRandomCircuits is the bulk of the acceptance run:
// randomized circuits with adversarial net shapes, engine vs oracle,
// sequential and parallel, every cell within its documented budget.
func TestDifferentialRandomCircuits(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	rng := rand.New(rand.NewSource(1))
	var rp Report
	for i := 0; i < n; i++ {
		pitch := 30.0
		chip := RandomChip(rng, pitch)
		nets := RandomNets(rng, chip, 1+rng.Intn(40), pitch)
		r, err := Compare(chip, nets, Opts{Model: core.Model{Pitch: pitch}})
		rp.Add(r, err)
		if err != nil {
			t.Fatalf("circuit %d (%d nets, %dx%d grid): %v", i, r.Nets, r.Cols, r.Rows, err)
		}
	}
	t.Logf("%d circuits, %d cells (%d exact, %d approx): maxExactErr=%.3g maxApproxErr=%.3g maxScoreErr=%.3g",
		rp.Circuits, rp.Cells, rp.ExactCells, rp.ApproxCells,
		rp.MaxExactErr, rp.MaxApproxErr, rp.MaxScoreErr)
}

// TestDifferentialParallelLargeCircuits drives circuits big enough
// (≥256 nets) to actually take the engine's sharded parallel path, and
// demands bit-identical maps across worker counts.
func TestDifferentialParallelLargeCircuits(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 3
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		pitch := 30.0
		chip := RandomChip(rng, pitch)
		nets := RandomNets(rng, chip, 300+rng.Intn(300), pitch)
		r, err := Compare(chip, nets, Opts{
			Model:   core.Model{Pitch: pitch},
			Workers: []int{1, 2, 4, 16},
		})
		if err != nil {
			t.Fatalf("circuit %d (%d nets, %dx%d grid): %v", i, r.Nets, r.Cols, r.Rows, err)
		}
	}
}

// TestDifferentialRational runs the big-rational oracle backend — no
// floating point anywhere on the reference side — on small circuits.
func TestDifferentialRational(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 20
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		pitch := 30.0
		chip := RandomChip(rng, pitch)
		// Keep lattices small: big.Rat escape sums are quadratic-ish.
		if chip.W() > 16*pitch {
			chip.X2 = chip.X1 + 16*pitch
		}
		if chip.H() > 16*pitch {
			chip.Y2 = chip.Y1 + 16*pitch
		}
		nets := RandomNets(rng, chip, 1+rng.Intn(12), pitch)
		r, err := Compare(chip, nets, Opts{Model: core.Model{Pitch: pitch}, Rat: true})
		if err != nil {
			t.Fatalf("circuit %d (%d nets, %dx%d grid): %v", i, r.Nets, r.Cols, r.Rows, err)
		}
	}
}

// TestDifferentialExactModel compares under Model.Exact (no Theorem 1
// anywhere): every cell must match to round-off.
func TestDifferentialExactModel(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 30
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		pitch := 30.0
		chip := RandomChip(rng, pitch)
		nets := RandomNets(rng, chip, 1+rng.Intn(30), pitch)
		r, err := Compare(chip, nets, Opts{Model: core.Model{Pitch: pitch, Exact: true}})
		if err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
		if r.ApproxCells != 0 {
			t.Fatalf("circuit %d: exact model flagged %d approx cells", i, r.ApproxCells)
		}
	}
}

// TestDifferentialForcedSimpson forces the Theorem 1 quadrature onto
// every multi-cell edge (ExactSpanLimit < 0), exercising the Simpson
// machinery far more often than the default policy would.
func TestDifferentialForcedSimpson(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 30
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		pitch := 30.0
		chip := RandomChip(rng, pitch)
		nets := RandomNets(rng, chip, 1+rng.Intn(30), pitch)
		m := core.Model{Pitch: pitch, ExactSpanLimit: -1}
		r, err := Compare(chip, nets, Opts{Model: m})
		if err != nil {
			t.Fatalf("circuit %d (%d nets, %dx%d grid): %v", i, r.Nets, r.Cols, r.Rows, err)
		}
	}
}

// TestDifferentialNoMerge covers the merge-rule ablation: the oracle
// must reproduce the engine's unmerged cutting-line geometry too.
func TestDifferentialNoMerge(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < n; i++ {
		pitch := 30.0
		chip := RandomChip(rng, pitch)
		nets := RandomNets(rng, chip, 1+rng.Intn(20), pitch)
		if _, err := Compare(chip, nets, Opts{Model: core.Model{Pitch: pitch, NoMerge: true}}); err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
	}
}

// mcncErrPins hold the measured maximum per-cell |oracle − engine| for
// each MCNC benchmark's initial-expression placement, rounded up one
// decimal step. Under the default evaluation policy these placements
// never reach the Simpson path (no merged edge spans 32 unit cells),
// so the default pin is a pure round-off envelope; the forcedSimpson
// pin runs the same circuits with ExactSpanLimit = -1 so the Theorem 1
// quadrature covers every multi-cell edge. A future change that widens
// either envelope fails TestDifferentialMCNC even while staying inside
// the coarse oracle.SimpsonEps budget.
var mcncErrPins = map[string]struct{ exact, forcedSimpson float64 }{
	"apte":  {1e-11, 0.08}, // measured 6.8e-13, 0.0780
	"xerox": {1e-11, 0.06}, // measured 2.9e-12, 0.0537
	"hp":    {1e-11, 0.07}, // measured 6.5e-13, 0.0633
	"ami33": {1e-11, 0.05}, // measured 2.5e-13, 0.0475
	"ami49": {1e-11, 0.09}, // measured 7.6e-12, 0.0856
}

// TestDifferentialMCNC runs the full differential comparison on all
// five MCNC benchmark placements, sequential and parallel, under the
// default policy and with the quadrature forced on, and pins the
// measured error envelope per benchmark.
func TestDifferentialMCNC(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			chip, nets, err := BenchCase(name)
			if err != nil {
				t.Fatal(err)
			}
			pins := mcncErrPins[name]

			r, err := Compare(chip, nets, Opts{
				Model:   core.Model{Pitch: BenchPitch(name)},
				Workers: []int{1, 4},
			})
			if err != nil {
				t.Fatalf("%s (%d nets, %dx%d grid): %v", name, r.Nets, r.Cols, r.Rows, err)
			}
			t.Logf("%s: %d nets, %dx%d grid, %d exact / %d approx cells, maxExactErr=%.3g maxApproxErr=%.3g scoreErr=%.3g",
				name, r.Nets, r.Cols, r.Rows, r.ExactCells, r.ApproxCells,
				r.MaxExactErr, r.MaxApproxErr, r.ScoreErr)
			if r.MaxExactErr > pins.exact {
				t.Errorf("%s: default-policy round-off error %.4g exceeds pinned envelope %.4g",
					name, r.MaxExactErr, pins.exact)
			}

			fs, err := Compare(chip, nets, Opts{
				Model:   core.Model{Pitch: BenchPitch(name), ExactSpanLimit: -1},
				Workers: []int{1, 4},
			})
			if err != nil {
				t.Fatalf("%s forced Simpson: %v", name, err)
			}
			t.Logf("%s forced Simpson: %d approx cells, maxApproxErrPerNet=%.4g",
				name, fs.ApproxCells, fs.MaxApproxErrPerNet)
			if fs.ApproxCells == 0 {
				t.Errorf("%s forced Simpson: quadrature never exercised", name)
			}
			if fs.MaxApproxErrPerNet > pins.forcedSimpson {
				t.Errorf("%s: measured per-contribution Simpson error %.4g exceeds pinned envelope %.4g — "+
					"if the quadrature intentionally changed, re-measure and update mcncErrPins",
					name, fs.MaxApproxErrPerNet, pins.forcedSimpson)
			}
		})
	}
}
