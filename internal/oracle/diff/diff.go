// Package diff is the differential harness between the oracle's naive
// reference pipeline (internal/oracle) and the production engine
// (internal/core): it generates random circuits or MCNC benchmark
// placements, evaluates both sides, and checks that the IR-grid
// geometry matches exactly and every per-grid probability lands within
// its documented error budget — oracle.ExactEps for cells the engine
// sums exactly, plus oracle.SimpsonEps per net contribution the engine
// scores with the Theorem 1 quadrature. It also re-runs the engine at
// several worker counts and demands bit-identical maps, pinning the
// sharded evaluator's determinism guarantee.
package diff

import (
	"fmt"
	"math"
	"math/rand"

	"irgrid/internal/bench"
	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/oracle"
	"irgrid/internal/slicing"
)

// Opts configures one comparison.
type Opts struct {
	// Model is the engine configuration under test. Pitch must be set;
	// Workers is overridden per run.
	Model core.Model
	// Rat evaluates the oracle side in big-rational arithmetic. Exact
	// but slow; keep circuits small.
	Rat bool
	// Workers are the engine worker counts to run; the first is the
	// comparison baseline and the rest must produce bit-identical maps.
	// Nil means {1, 4}.
	Workers []int
	// ExactEps is the per-cell budget when no contribution was
	// approximated; zero means oracle.ExactEps.
	ExactEps float64
	// SimpsonEps is the additional per-cell budget per Simpson-scored
	// net contribution; zero means oracle.SimpsonEps.
	SimpsonEps float64
}

func (o Opts) workers() []int {
	if len(o.Workers) == 0 {
		return []int{1, 4}
	}
	return o.Workers
}

func (o Opts) exactEps() float64 {
	if o.ExactEps == 0 {
		return oracle.ExactEps
	}
	return o.ExactEps
}

func (o Opts) simpsonEps() float64 {
	if o.SimpsonEps == 0 {
		return oracle.SimpsonEps
	}
	return o.SimpsonEps
}

// Result summarizes one comparison. It is populated as far as the
// comparison got even when Compare also returns an error.
type Result struct {
	Nets       int     `json:"nets"`
	Cols       int     `json:"cols"`
	Rows       int     `json:"rows"`
	ExactCells int     `json:"exact_cells"`  // cells with no approximated contribution
	ApproxCells int    `json:"approx_cells"` // cells with ≥1 Simpson-scored contribution
	MaxExactErr  float64 `json:"max_exact_err"`  // worst |Δ| over exact cells
	MaxApproxErr float64 `json:"max_approx_err"` // worst |Δ| over approx cells
	// MaxApproxErrPerNet is the worst |Δ| divided by the cell's number
	// of Simpson-scored contributions — the per-contribution
	// approximation error the oracle.SimpsonEps budget bounds.
	MaxApproxErrPerNet float64 `json:"max_approx_err_per_net"`
	ScoreErr           float64 `json:"score_err"` // |engine − oracle| top-fraction score
}

// Compare evaluates chip/nets with the oracle and the engine and
// checks geometry, per-cell budgets, worker determinism and the
// top-score machinery. The returned Result carries the measured error
// envelope; a non-nil error describes the first violation.
func Compare(chip geom.Rect, nets []netlist.TwoPin, o Opts) (*Result, error) {
	cfg := oracle.Config{
		Pitch:          o.Model.Pitch,
		TopFraction:    o.Model.TopFraction,
		Exact:          o.Model.Exact,
		NoMerge:        o.Model.NoMerge,
		ExactSpanLimit: o.Model.ExactSpanLimit,
		Rat:            o.Rat,
	}
	ref := cfg.Evaluate(chip, nets)
	res := &Result{Nets: len(nets), Cols: ref.Cols(), Rows: ref.Rows()}

	workers := o.workers()
	m := o.Model
	m.Workers = workers[0]
	base := m.Evaluate(chip, nets)

	// Worker determinism: every other worker count must reproduce the
	// baseline map bit for bit.
	for _, w := range workers[1:] {
		m.Workers = w
		got := m.Evaluate(chip, nets)
		if err := bitIdentical(base, got); err != nil {
			return res, fmt.Errorf("workers=%d vs workers=%d: %w", w, workers[0], err)
		}
	}

	// Geometry: same cutting lines, exactly.
	if err := sameAxes(ref, base); err != nil {
		return res, err
	}

	// Per-cell probabilities within budget.
	exactEps, simpsonEps := o.exactEps(), o.simpsonEps()
	var firstViolation error
	for iy := 0; iy < ref.Rows(); iy++ {
		for ix := 0; ix < ref.Cols(); ix++ {
			d := math.Abs(ref.Prob[iy][ix] - base.At(ix, iy))
			n := ref.ApproxNets[iy][ix]
			if n == 0 {
				res.ExactCells++
				res.MaxExactErr = math.Max(res.MaxExactErr, d)
			} else {
				res.ApproxCells++
				res.MaxApproxErr = math.Max(res.MaxApproxErr, d)
				res.MaxApproxErrPerNet = math.Max(res.MaxApproxErrPerNet, d/float64(n))
			}
			budget := exactEps + simpsonEps*float64(n)
			if d > budget && firstViolation == nil {
				firstViolation = fmt.Errorf(
					"cell (%d,%d): |oracle %.12g − engine %.12g| = %.3g exceeds budget %.3g (%d approximated contributions)",
					ix, iy, ref.Prob[iy][ix], base.At(ix, iy), d, budget, n)
			}
		}
	}
	if firstViolation != nil {
		return res, firstViolation
	}

	// Top-score machinery in isolation: feed the engine's own
	// probabilities through the oracle's full-sort scorer; quickselect
	// must agree to round-off regardless of any probability error.
	frac := o.Model.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	engineScore := base.TopScore(frac)
	om := &oracle.Map{Chip: chip, X: ref.X, Y: ref.Y, Prob: make([][]float64, ref.Rows())}
	for iy := range om.Prob {
		om.Prob[iy] = make([]float64, ref.Cols())
		for ix := range om.Prob[iy] {
			om.Prob[iy][ix] = base.At(ix, iy)
		}
	}
	if d := math.Abs(om.TopScore(frac) - engineScore); d > 1e-9 {
		return res, fmt.Errorf("top-score quickselect diverges from full sort by %g on identical densities", d)
	}

	res.ScoreErr = math.Abs(ref.TopScore(frac) - engineScore)
	if res.ApproxCells == 0 && res.ScoreErr > 1e-6 {
		return res, fmt.Errorf("score |oracle − engine| = %g with no approximated cells", res.ScoreErr)
	}
	return res, nil
}

// bitIdentical reports whether two engine maps are exactly equal.
func bitIdentical(a, b *core.Map) error {
	if a.Cols() != b.Cols() || a.Rows() != b.Rows() {
		return fmt.Errorf("grid %dx%d vs %dx%d", a.Cols(), a.Rows(), b.Cols(), b.Rows())
	}
	for iy := 0; iy < a.Rows(); iy++ {
		for ix := 0; ix < a.Cols(); ix++ {
			if a.At(ix, iy) != b.At(ix, iy) {
				return fmt.Errorf("cell (%d,%d): %.17g vs %.17g", ix, iy, a.At(ix, iy), b.At(ix, iy))
			}
		}
	}
	return nil
}

// sameAxes checks the oracle and engine built identical cutting lines.
func sameAxes(ref *oracle.Map, got *core.Map) error {
	if len(ref.X) != len(got.XAxis) || len(ref.Y) != len(got.YAxis) {
		return fmt.Errorf("axes %dx%d lines vs engine %dx%d",
			len(ref.X), len(ref.Y), len(got.XAxis), len(got.YAxis))
	}
	for i, v := range ref.X {
		if v != got.XAxis[i] {
			return fmt.Errorf("x line %d: oracle %.17g vs engine %.17g", i, v, got.XAxis[i])
		}
	}
	for i, v := range ref.Y {
		if v != got.YAxis[i] {
			return fmt.Errorf("y line %d: oracle %.17g vs engine %.17g", i, v, got.YAxis[i])
		}
	}
	return nil
}

// RandomChip returns a chip whose extent is a few to a few dozen
// pitches per side, sometimes deliberately off the pitch lattice.
func RandomChip(rng *rand.Rand, pitch float64) geom.Rect {
	w := pitch * (4 + float64(rng.Intn(36)))
	h := pitch * (4 + float64(rng.Intn(36)))
	if rng.Intn(4) == 0 {
		w += pitch * rng.Float64() // fractional extent
		h += pitch * rng.Float64()
	}
	return geom.Rect{X1: 0, Y1: 0, X2: w, Y2: h}
}

// RandomNets generates n two-pin nets inside chip with a deliberate
// mix of adversarial shapes: generic pins, pitch-snapped pins
// (coincident cutting lines), degenerate point and line nets, and pin
// pairs closer than the 2×pitch merge threshold.
func RandomNets(rng *rand.Rand, chip geom.Rect, n int, pitch float64) []netlist.TwoPin {
	pt := func() geom.Pt {
		return geom.Pt{
			X: chip.X1 + rng.Float64()*chip.W(),
			Y: chip.Y1 + rng.Float64()*chip.H(),
		}
	}
	snapPt := func() geom.Pt {
		return geom.Pt{
			X: chip.X1 + pitch*math.Floor(rng.Float64()*chip.W()/pitch),
			Y: chip.Y1 + pitch*math.Floor(rng.Float64()*chip.H()/pitch),
		}
	}
	nets := make([]netlist.TwoPin, 0, n)
	for i := 0; i < n; i++ {
		var tp netlist.TwoPin
		switch r := rng.Intn(20); {
		case r < 12: // generic
			tp = netlist.TwoPin{A: pt(), B: pt()}
		case r < 15: // snapped to the pitch lattice
			tp = netlist.TwoPin{A: snapPt(), B: snapPt()}
		case r == 15: // coincident pins (point net)
			p := pt()
			tp = netlist.TwoPin{A: p, B: p}
		case r == 16: // horizontal line
			a := pt()
			tp = netlist.TwoPin{A: a, B: geom.Pt{X: chip.X1 + rng.Float64()*chip.W(), Y: a.Y}}
		case r == 17: // vertical line
			a := pt()
			tp = netlist.TwoPin{A: a, B: geom.Pt{X: a.X, Y: chip.Y1 + rng.Float64()*chip.H()}}
		default: // pins closer than the 2×pitch merge threshold
			a := pt()
			b := geom.Pt{
				X: math.Min(a.X+rng.Float64()*2*pitch, chip.X2),
				Y: math.Min(a.Y+rng.Float64()*2*pitch, chip.Y2),
			}
			tp = netlist.TwoPin{A: a, B: b}
		}
		nets = append(nets, tp)
	}
	return nets
}

// BenchPitch returns the paper's pitch for an MCNC benchmark: 60 µm
// for apte, 30 µm otherwise.
func BenchPitch(name string) float64 {
	if name == "apte" {
		return 60
	}
	return 30
}

// BenchCase deterministically derives a chip and a snapped
// MST-decomposed two-pin net set for an MCNC benchmark by packing the
// initial slicing expression — no annealing, so the case is stable
// across runs and machines.
func BenchCase(name string) (geom.Rect, []netlist.TwoPin, error) {
	c, err := bench.Load(name)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	r, err := fplan.New(c, fplan.Config{
		Weights: fplan.Weights{Alpha: 1},
		Pitch:   BenchPitch(name),
	})
	if err != nil {
		return geom.Rect{}, nil, err
	}
	sol := r.Evaluate(slicing.Initial(len(c.Modules)))
	return sol.Placement.Chip, sol.Nets, nil
}
