package diff

import (
	"math/rand"
	"testing"

	"irgrid/internal/core"
)

// FuzzEvaluateVsOracle feeds fuzzer-chosen circuit shapes through the
// full differential comparison, under both the default evaluation
// policy and with the Theorem 1 quadrature forced onto every
// multi-cell edge.
func FuzzEvaluateVsOracle(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(12))
	f.Add(int64(42), uint8(35), uint8(3))
	f.Add(int64(7), uint8(20), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, size, netCount uint8) {
		rng := rand.New(rand.NewSource(seed))
		pitch := 30.0
		chip := RandomChip(rng, pitch)
		// Let the fuzzer shrink the chip below RandomChip's floor.
		if w := pitch * float64(1+int(size)%40); w < chip.W() {
			chip.X2 = chip.X1 + w
		}
		nets := RandomNets(rng, chip, 1+int(netCount)%32, pitch)
		if r, err := Compare(chip, nets, Opts{Model: core.Model{Pitch: pitch}}); err != nil {
			t.Fatalf("default policy (%d nets, %dx%d grid): %v", r.Nets, r.Cols, r.Rows, err)
		}
		m := core.Model{Pitch: pitch, ExactSpanLimit: -1}
		if r, err := Compare(chip, nets, Opts{Model: m}); err != nil {
			t.Fatalf("forced Simpson (%d nets, %dx%d grid): %v", r.Nets, r.Cols, r.Rows, err)
		}
	})
}
