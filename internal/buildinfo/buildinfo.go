// Package buildinfo reports the binary's build identity (module
// version, VCS revision, dirty bit) from runtime/debug.ReadBuildInfo,
// so benchmark records and run traces can be tied to a commit.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"strings"
)

// read is stubbed in tests.
var read = debug.ReadBuildInfo

// Version returns a one-line build identity, e.g.
//
//	irgrid (devel) rev 1a2b3c4d5e6f-dirty (2026-08-06T10:00:00Z) go1.24.0
//
// Binaries built without VCS stamping (go test, go run on a plain
// tree) omit the revision part.
func Version() string {
	bi, ok := read()
	if !ok {
		return "irgrid unknown " + runtime.Version()
	}
	var sb strings.Builder
	sb.WriteString("irgrid")
	if v := bi.Main.Version; v != "" {
		sb.WriteString(" " + v)
	}
	var rev, when string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			when = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		sb.WriteString(" rev " + rev)
		if dirty {
			sb.WriteString("-dirty")
		}
		if when != "" {
			sb.WriteString(" (" + when + ")")
		}
	}
	sb.WriteString(" " + runtime.Version())
	return sb.String()
}
