package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestVersionAlwaysIdentifies(t *testing.T) {
	v := Version()
	if !strings.HasPrefix(v, "irgrid") || !strings.Contains(v, "go1") {
		t.Errorf("Version() = %q", v)
	}
}

func TestVersionWithVCSStamp(t *testing.T) {
	orig := read
	defer func() { read = orig }()
	read = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			Main: debug.Module{Version: "v0.2.0"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.time", Value: "2026-08-06T10:00:00Z"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	v := Version()
	for _, want := range []string{"v0.2.0", "rev 0123456789ab-dirty", "(2026-08-06T10:00:00Z)"} {
		if !strings.Contains(v, want) {
			t.Errorf("Version() = %q, missing %q", v, want)
		}
	}
}

func TestVersionWithoutBuildInfo(t *testing.T) {
	orig := read
	defer func() { read = orig }()
	read = func() (*debug.BuildInfo, bool) { return nil, false }
	if v := Version(); !strings.HasPrefix(v, "irgrid unknown") {
		t.Errorf("Version() = %q", v)
	}
}
