// Package ckpt reads and writes durable checkpoint files: versioned,
// checksummed JSON envelopes written atomically (temp file + fsync +
// rename), so a crash mid-write can never leave a truncated or
// corrupt file in place of a good one.
//
// The envelope carries a magic string, a format version and the
// SHA-256 of the payload bytes; Load verifies all three before
// handing the payload to the caller, returning typed errors
// (ErrCorrupt, ErrVersion) that callers can branch on.
package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"irgrid/internal/faultinject"
)

// Version is the current checkpoint format version. The compatibility
// policy is documented in DESIGN.md ("Fault tolerance & lifecycle"):
// Load accepts exactly the version it was built with; a snapshot from
// another version fails with ErrVersion rather than being guessed at.
const Version = 1

// Magic identifies irgrid checkpoint files.
const Magic = "irgrid-checkpoint"

var (
	// ErrCorrupt marks a checkpoint whose envelope or checksum does
	// not verify.
	ErrCorrupt = errors.New("ckpt: checkpoint corrupt")
	// ErrVersion marks a checkpoint written by an incompatible format
	// version.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
)

// envelope is the on-disk document.
type envelope struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Save atomically writes payload as a checkpoint file at path: the
// envelope is written to a temporary file in the same directory,
// synced, and renamed over path. On any error the previous file at
// path (if one exists) is left untouched.
//
// The checkpoint-write fault-injection point fires only here, not in
// SaveAs, so injected checkpoint failures never block other envelope
// users (postmortem dumps are written precisely when faults fire).
func Save(path string, payload any) error {
	if err := faultinject.Fire(faultinject.CheckpointWrite, 0); err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	return SaveAs(path, Magic, Version, payload)
}

// SaveAs is the generic envelope writer behind Save: it atomically
// writes payload under the caller's magic string and format version,
// with the same temp-file + fsync + rename discipline. Other durable
// artifacts (postmortem dumps, job records, results) reuse it so
// every on-disk file in the repo shares one verified write path.
//
// Every filesystem primitive is an injection seam of the chaos
// matrix (internal/faultinject fs.* points): disarmed, each seam is
// one atomic load; armed, a test can fail create/write/sync/rename
// deterministically, or request a torn in-place write — the on-disk
// damage a crash leaves on a filesystem without atomic rename — to
// prove readers reject the wreckage as ErrCorrupt.
func SaveAs(path, magic string, version int, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckpt: encode payload: %w", err)
	}
	sum := sha256.Sum256(raw)
	env, err := json.Marshal(envelope{
		Magic:   magic,
		Version: version,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: raw,
	})
	if err != nil {
		return fmt.Errorf("ckpt: encode envelope: %w", err)
	}

	if err := faultinject.FirePath(faultinject.FSCreate, path, 0); err != nil {
		return fmt.Errorf("ckpt: create %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if err := faultinject.FirePath(faultinject.FSTornWrite, path, 0); err != nil {
		// Simulate the torn write: half the envelope lands in place
		// over the destination, clobbering any previous good file —
		// exactly what a crash mid-write does without atomic rename.
		cleanup()
		os.WriteFile(path, env[:len(env)/2], 0o644)
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := faultinject.FirePath(faultinject.FSWrite, path, 0); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if _, err := tmp.Write(env); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := faultinject.FirePath(faultinject.FSSync, path, 0); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: close %s: %w", path, err)
	}
	if err := faultinject.FirePath(faultinject.FSRename, path, 0); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename %s: %w", path, err)
	}
	return nil
}

// Load reads the checkpoint at path, verifies the envelope and
// decodes the payload into out.
func Load(path string, out any) error {
	return LoadAs(path, Magic, Version, out)
}

// LoadAs reads the envelope at path, verifies it against the caller's
// magic string and format version, and decodes the payload into out.
// It returns ErrCorrupt/ErrVersion exactly as Load does.
//
// The read side carries two chaos seams: fs.read fails the read
// outright, and fs.corrupt-read hands the freshly read bytes to the
// armed read hook, which may mutate them — simulated bit rot the
// envelope checksum must catch as ErrCorrupt.
func LoadAs(path, magic string, version int, out any) error {
	if ferr := faultinject.FirePath(faultinject.FSRead, path, 0); ferr != nil {
		return fmt.Errorf("ckpt: read %s: %w", path, ferr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ckpt: read %s: %w", path, err)
	}
	if raw, err = faultinject.FireRead(faultinject.FSCorruptRead, path, raw); err != nil {
		return fmt.Errorf("ckpt: read %s: %w", path, err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if env.Magic != magic {
		return fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, path, env.Magic)
	}
	if env.Version != version {
		return fmt.Errorf("%w: %s: version %d, want %d", ErrVersion, path, env.Version, version)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return fmt.Errorf("%w: %s: payload checksum mismatch", ErrCorrupt, path)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("%w: %s: payload: %v", ErrCorrupt, path, err)
	}
	return nil
}
