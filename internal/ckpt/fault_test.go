package ckpt_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"irgrid/internal/ckpt"
	"irgrid/internal/faultinject"
)

type doc struct {
	N int    `json:"n"`
	S string `json:"s"`
}

// failAt arms a path hook failing every occurrence of point.
func failAt(t *testing.T, point faultinject.Point) *int {
	t.Helper()
	fired := new(int)
	faultinject.SetPath(func(p faultinject.Point, path string, detail int) error {
		if p == point {
			*fired++
			return errors.New("injected " + string(p))
		}
		return nil
	})
	t.Cleanup(faultinject.Reset)
	return fired
}

// TestSaveFaultPointsFailTypedAndPreserveOldFile walks every write-side
// fault point except the torn write: the save must fail with the
// injected error, the previous good file must survive untouched, and
// no temp debris may be left behind.
func TestSaveFaultPointsFailTypedAndPreserveOldFile(t *testing.T) {
	for _, point := range []faultinject.Point{
		faultinject.FSCreate, faultinject.FSWrite, faultinject.FSSync, faultinject.FSRename,
	} {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "rec.json")
			if err := ckpt.SaveAs(path, "m", 1, doc{N: 1, S: "good"}); err != nil {
				t.Fatal(err)
			}

			fired := failAt(t, point)
			err := ckpt.SaveAs(path, "m", 1, doc{N: 2, S: "new"})
			if err == nil {
				t.Fatal("save with injected fault succeeded")
			}
			if *fired == 0 {
				t.Fatalf("fault point %s never fired", point)
			}
			faultinject.Reset()

			var got doc
			if err := ckpt.LoadAs(path, "m", 1, &got); err != nil {
				t.Fatalf("previous file no longer verifies after failed save: %v", err)
			}
			if got.N != 1 || got.S != "good" {
				t.Errorf("previous file content %+v, want the pre-fault record", got)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 1 {
				names := make([]string, 0, len(ents))
				for _, e := range ents {
					names = append(names, e.Name())
				}
				t.Errorf("temp debris left after failed save: %v", names)
			}
		})
	}
}

// TestTornWriteLeavesCorruptFileLoadRejects pins the torn-write
// simulation: the destination holds half an envelope, and LoadAs
// rejects it as ErrCorrupt instead of decoding garbage or panicking.
func TestTornWriteLeavesCorruptFileLoadRejects(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := ckpt.SaveAs(path, "m", 1, doc{N: 1, S: "good"}); err != nil {
		t.Fatal(err)
	}
	fired := failAt(t, faultinject.FSTornWrite)
	if err := ckpt.SaveAs(path, "m", 1, doc{N: 2, S: "new"}); err == nil {
		t.Fatal("torn-write save succeeded")
	}
	if *fired == 0 {
		t.Fatal("torn-write point never fired")
	}
	faultinject.Reset()

	var got doc
	err := ckpt.LoadAs(path, "m", 1, &got)
	if !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("loading torn file = %v, want ErrCorrupt", err)
	}
}

// TestReadFaultFailsLoad pins fs.read: an injected read failure
// surfaces as a wrapped error, not a corrupt verdict (the file itself
// is fine).
func TestReadFaultFailsLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.json")
	if err := ckpt.SaveAs(path, "m", 1, doc{N: 1}); err != nil {
		t.Fatal(err)
	}
	fired := failAt(t, faultinject.FSRead)
	var got doc
	err := ckpt.LoadAs(path, "m", 1, &got)
	if err == nil || errors.Is(err, ckpt.ErrCorrupt) || errors.Is(err, ckpt.ErrVersion) {
		t.Fatalf("load with injected read fault = %v, want a plain wrapped read error", err)
	}
	if *fired == 0 {
		t.Fatal("fs.read never fired")
	}
	faultinject.Reset()
	if err := ckpt.LoadAs(path, "m", 1, &got); err != nil {
		t.Fatalf("load after disarm: %v", err)
	}
}

// TestCorruptReadCaughtByChecksum pins fs.corrupt-read: a single
// flipped payload bit must be caught by the envelope checksum as
// ErrCorrupt.
func TestCorruptReadCaughtByChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.json")
	if err := ckpt.SaveAs(path, "m", 1, doc{N: 42, S: "payload"}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	faultinject.SetRead(func(p faultinject.Point, _ string, data []byte) ([]byte, error) {
		fired++
		out := append([]byte(nil), data...)
		// Flip a bit deep in the payload half of the envelope, past the
		// header fields, so the JSON still parses but the checksum is
		// wrong. Find a digit of the payload to mutate.
		for i := len(out) - 2; i > 0; i-- {
			if out[i] >= '0' && out[i] <= '8' {
				out[i]++
				break
			}
		}
		return out, nil
	})
	defer faultinject.Reset()
	var got doc
	err := ckpt.LoadAs(path, "m", 1, &got)
	if !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("load of bit-rotted file = %v, want ErrCorrupt", err)
	}
	if fired == 0 {
		t.Fatal("fs.corrupt-read never fired")
	}
}
