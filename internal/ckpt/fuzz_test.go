package ckpt_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"irgrid/internal/ckpt"
)

// FuzzCkptEnvelope is the reader-hardening proof behind the storage
// fault model: arbitrary bytes where an envelope should be must yield
// a typed verdict — ErrCorrupt or ErrVersion — and never a panic or a
// silently decoded payload. Recovery quarantines on exactly these
// verdicts, so this target pins the entire corrupt-store code path.
func FuzzCkptEnvelope(f *testing.F) {
	// A valid envelope, to seed mutations near the happy path.
	payload, _ := json.Marshal(map[string]any{"n": 1, "s": "x"})
	sum := sha256.Sum256(payload)
	valid, _ := json.Marshal(map[string]any{
		"magic":   ckpt.Magic,
		"version": ckpt.Version,
		"sha256":  hex.EncodeToString(sum[:]),
		"payload": json.RawMessage(payload),
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                            // truncation
	f.Add([]byte{})                                                                        // empty file
	f.Add([]byte(`{"magic":"wrong","version":1}`))                                         // bad magic
	f.Add([]byte(`not json at all`))                                                       // garbage
	f.Add([]byte(`{"magic":"` + ckpt.Magic + `","version":99,"sha256":"","payload":{}}`))  // version skew
	f.Add([]byte(`{"magic":"` + ckpt.Magic + `","version":1,"sha256":"00","payload":{}}`)) // bad checksum

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "env.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out json.RawMessage
		err := ckpt.LoadAs(path, ckpt.Magic, ckpt.Version, &out)
		if err == nil {
			// Acceptance is only legitimate for a fully verified
			// envelope: re-derive the checksum the loader must have
			// checked.
			var env struct {
				Magic   string          `json:"magic"`
				Version int             `json:"version"`
				SHA256  string          `json:"sha256"`
				Payload json.RawMessage `json:"payload"`
			}
			if jerr := json.Unmarshal(data, &env); jerr != nil {
				t.Fatalf("LoadAs accepted undecodable bytes %q", data)
			}
			got := sha256.Sum256(env.Payload)
			if env.Magic != ckpt.Magic || env.Version != ckpt.Version ||
				hex.EncodeToString(got[:]) != env.SHA256 {
				t.Fatalf("LoadAs accepted an unverified envelope %q", data)
			}
			return
		}
		if !errors.Is(err, ckpt.ErrCorrupt) && !errors.Is(err, ckpt.ErrVersion) {
			t.Fatalf("LoadAs(%q) = %v, want ErrCorrupt or ErrVersion", data, err)
		}
	})
}
