package ckpt

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"irgrid/internal/faultinject"
)

type payload struct {
	Name  string  `json:"name"`
	Step  int     `json:"step"`
	Score float64 `json:"score"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	in := payload{Name: "apte", Step: 42, Score: 1.25}
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v, want %+v", out, in)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, payload{Step: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, payload{Step: 2}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.Step != 2 {
		t.Errorf("step = %d, want 2", out.Step)
	}
	// No temp files left behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out payload
	err := Load(filepath.Join(t.TempDir(), "nope.ckpt"), &out)
	if err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
	if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) {
		t.Errorf("missing file misreported as corruption: %v", err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, payload{Name: "x", Step: 7}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"payload-bit-flip", func(b []byte) []byte {
			// Flip a digit inside the payload without breaking the JSON.
			s := strings.Replace(string(b), `"step":7`, `"step":8`, 1)
			if s == string(b) {
				t.Fatal("mutation did not apply")
			}
			return []byte(s)
		}},
		{"bad-magic", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), Magic, "other-format", 1))
		}},
		{"not-json", func([]byte) []byte { return []byte("hello\n") }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(bad, tc.mutate(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			var out payload
			if err := Load(bad, &out); !errors.Is(err, ErrCorrupt) {
				t.Errorf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	raw, _ := json.Marshal(payload{Name: "x"})
	env, _ := json.Marshal(map[string]any{
		"magic":   Magic,
		"version": Version + 1,
		"sha256":  "0000",
		"payload": json.RawMessage(raw),
	})
	path := filepath.Join(t.TempDir(), "future.ckpt")
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, &out); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

// TestSaveFaultLeavesPreviousFile arms the checkpoint-write injection
// point and verifies a failed Save reports the error and leaves the
// previous checkpoint untouched — the durability contract interrupted
// runs depend on.
func TestSaveFaultLeavesPreviousFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, payload{Step: 1}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected I/O failure")
	faultinject.Set(func(p faultinject.Point, _ int) error {
		if p == faultinject.CheckpointWrite {
			return boom
		}
		return nil
	})
	defer faultinject.Set(nil)

	if err := Save(path, payload{Step: 2}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	faultinject.Set(nil)

	var out payload
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.Step != 1 {
		t.Errorf("failed Save clobbered the previous checkpoint: step = %d", out.Step)
	}
}
