package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"irgrid/internal/fplan"
	"irgrid/internal/grid"
	"irgrid/internal/nmath"
	"irgrid/internal/slicing"
)

// Sensitivity quantifies the paper's §4.1 motivation (Figures 3–4):
// the fixed-size-grid model's estimate depends on the chosen grid
// resolution, and fidelity to the fine judging model is bought with
// runtime. Each row scores the same sample of random floorplans with
// one pitch and reports the Pearson correlation with the judging model
// plus the mean evaluation time.
type Sensitivity struct {
	Circuit string
	Samples int
	Rows    []SensitivityRow
}

// SensitivityRow is one grid pitch's result.
type SensitivityRow struct {
	Pitch     float64
	MeanScore float64
	CorrJudge float64 // Pearson correlation with the 10 µm judging model
	Cells     float64 // mean grid-cell count
	EvalMS    float64
}

// SensitivityPitches are the swept fixed-grid resolutions.
var SensitivityPitches = []float64{200, 150, 100, 80, 60, 40, 20, 10}

// RunSensitivity sweeps fixed-grid pitches over random floorplans of
// the circuit. samples <= 0 defaults to 16.
func RunSensitivity(circuit string, samples int, seed int64) (Sensitivity, error) {
	c, err := loadCircuit(circuit)
	if err != nil {
		return Sensitivity{}, err
	}
	if samples <= 0 {
		samples = 16
	}
	r, err := fplan.New(c, fplan.Config{Weights: fplan.Weights{Alpha: 1}, Pitch: PitchFor(circuit)})
	if err != nil {
		return Sensitivity{}, err
	}

	rng := rand.New(rand.NewSource(seed))
	e := slicing.Initial(len(c.Modules))
	scores := make([][]float64, len(SensitivityPitches))
	var judge []float64
	cells := make([]nmath.Welford, len(SensitivityPitches))
	times := make([]nmath.Welford, len(SensitivityPitches))

	for s := 0; s < samples; s++ {
		for k := 0; k < 5; k++ {
			e.Perturb(rng)
		}
		sol := r.Evaluate(e)
		chip := sol.Placement.Chip
		judge = append(judge, grid.Model{Pitch: JudgingPitch}.Score(chip, sol.Nets))
		for i, pitch := range SensitivityPitches {
			m := grid.Model{Pitch: pitch}
			start := time.Now()
			mp := m.Evaluate(chip, sol.Nets)
			score := mp.TopScore(0.10)
			times[i].Add(time.Since(start).Seconds() * 1e3)
			scores[i] = append(scores[i], score)
			cells[i].Add(float64(mp.Cols * mp.Rows))
		}
	}

	out := Sensitivity{Circuit: circuit, Samples: samples}
	for i, pitch := range SensitivityPitches {
		var mean nmath.Welford
		for _, v := range scores[i] {
			mean.Add(v)
		}
		out.Rows = append(out.Rows, SensitivityRow{
			Pitch:     pitch,
			MeanScore: mean.Mean(),
			CorrJudge: nmath.Pearson(scores[i], judge),
			Cells:     cells[i].Mean(),
			EvalMS:    times[i].Mean(),
		})
	}
	return out, nil
}

// FormatSensitivity renders the pitch sweep.
func FormatSensitivity(s Sensitivity) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Grid-size sensitivity of the fixed model (%s, %d random floorplans)\n", s.Circuit, s.Samples)
	fmt.Fprintf(&b, "%8s %12s %12s %10s %10s\n", "pitch", "mean score", "corr(judge)", "cells", "eval ms")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%5.0fum %12.5g %12.4f %10.0f %10.3f\n",
			r.Pitch, r.MeanScore, r.CorrJudge, r.Cells, r.EvalMS)
	}
	b.WriteString("(the paper's Figures 3-4 argument: the fixed model's picture shifts with the\npitch, and fidelity to the fine judging model costs cells and runtime)\n")
	return b.String()
}
