package exp

import (
	"fmt"
	"math"
	"strings"

	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/grid"
	"irgrid/internal/nmath"
)

// Figure9 holds Experiment 2's data: the congestion-cost trajectories
// of the intermediate per-temperature solutions (the current,
// locally-optimized floorplan at each temperature-dropping step, per
// the paper) under three models. Curve A is the IR-grid model steering
// the anneal; curves B and C are the judging model at fine (10 µm) and
// coarse (50 µm) pitches applied to the same snapshots. The paper's
// claim is that A's shape tracks B more closely than C.
type Figure9 struct {
	Circuit string
	Steps   []int
	CurveA  []float64 // IR-grid cost (30×30 µm² base pitch)
	CurveB  []float64 // judging model, 10×10 µm²
	CurveC  []float64 // judging model, 50×50 µm²

	CorrAB, CorrAC   float64 // Pearson correlation of A with B and C
	SlopeAB, SlopeAC float64 // mean |Δslope| of normalized curves
}

// Figure9Pitches are the two judging pitches compared in Experiment 2.
var Figure9Pitches = [2]float64{10, 50}

// RunFigure9 reproduces Experiment 2 on the given circuit (the paper
// uses ami33): a congestion-only anneal whose per-temperature best
// solutions are re-scored by the two judging models.
func RunFigure9(p Protocol, circuit string) (Figure9, error) {
	c, err := loadCircuit(circuit)
	if err != nil {
		return Figure9{}, err
	}
	pitch := PitchFor(circuit)
	est := core.Model{Pitch: pitch}
	fig := Figure9{Circuit: circuit}
	judgeB := grid.Model{Pitch: Figure9Pitches[0]}
	judgeC := grid.Model{Pitch: Figure9Pitches[1]}
	_, err = p.runOne(c, WeightsCongestionOnly, est, pitch, p.BaseSeed,
		func(step int, sol *fplan.Solution) {
			fig.Steps = append(fig.Steps, step)
			fig.CurveA = append(fig.CurveA, sol.Congestion)
			fig.CurveB = append(fig.CurveB, judgeB.Score(sol.Placement.Chip, sol.Nets))
			fig.CurveC = append(fig.CurveC, judgeC.Score(sol.Placement.Chip, sol.Nets))
		})
	if err != nil {
		return Figure9{}, err
	}
	fig.CorrAB = nmath.Pearson(fig.CurveA, fig.CurveB)
	fig.CorrAC = nmath.Pearson(fig.CurveA, fig.CurveC)
	a := normalize(fig.CurveA)
	fig.SlopeAB = nmath.SlopeSimilarity(a, normalize(fig.CurveB))
	fig.SlopeAC = nmath.SlopeSimilarity(a, normalize(fig.CurveC))
	return fig, nil
}

// normalize rescales a series to [0, 1] so slope comparisons are
// unit-free (the paper rescales curves "for adjusting the ranges of
// these three values to be near").
func normalize(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]float64, len(xs))
	if hi == lo {
		return out
	}
	for i, v := range xs {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}

// FormatFigure9 renders the Experiment 2 trajectories as aligned
// columns plus the correlation summary.
func FormatFigure9(f Figure9) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9. Model trajectories during congestion-only annealing (%s)\n", f.Circuit)
	fmt.Fprintf(&b, "%5s %14s %14s %14s\n", "step", "A: IR-grid", "B: judge 10um", "C: judge 50um")
	for i := range f.Steps {
		fmt.Fprintf(&b, "%5d %14.6g %14.6g %14.6g\n", f.Steps[i], f.CurveA[i], f.CurveB[i], f.CurveC[i])
	}
	fmt.Fprintf(&b, "corr(A,B) = %.4f   corr(A,C) = %.4f\n", f.CorrAB, f.CorrAC)
	fmt.Fprintf(&b, "mean |slope diff| A-B = %.4f   A-C = %.4f (lower = more similar)\n", f.SlopeAB, f.SlopeAC)
	b.WriteString("(paper: curve A's slopes are more similar to B's than to C's)\n")
	return b.String()
}

// Figure8Point is one x-position of the Figure 8 accuracy curves.
type Figure8Point struct {
	X      int
	Exact  float64
	Approx float64 // NaN at §4.5 failure points
}

// RunFigure8 reproduces Figure 8's curves: Function (1) exact vs
// approximated on a type I net divided into 31×21 grids, along the top
// row y2 of an IR-grid, for x in [x1, x2].
func RunFigure8(g1, g2, y2, x1, x2 int) []Figure8Point {
	pts := make([]Figure8Point, 0, x2-x1+1)
	for x := x1; x <= x2; x++ {
		pts = append(pts, Figure8Point{
			X:      x,
			Exact:  core.Function1Exact(g1, g2, x, y2),
			Approx: core.Function1Approx(g1, g2, x, y2),
		})
	}
	return pts
}

// FormatFigure8 renders the accuracy curves and the worst deviation.
func FormatFigure8(pts []Figure8Point, label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8. Function(1) exact vs approximation (%s)\n", label)
	fmt.Fprintf(&b, "%4s %12s %12s %12s\n", "x", "exact", "approx", "|dev|")
	worst := 0.0
	for _, p := range pts {
		if math.IsNaN(p.Approx) {
			fmt.Fprintf(&b, "%4d %12.6f %12s %12s\n", p.X, p.Exact, "(no value)", "-")
			continue
		}
		d := math.Abs(p.Exact - p.Approx)
		if d > worst {
			worst = d
		}
		fmt.Fprintf(&b, "%4d %12.6f %12.6f %12.6f\n", p.X, p.Exact, p.Approx, d)
	}
	fmt.Fprintf(&b, "worst deviation %.4f (paper: generally below 0.05)\n", worst)
	return b.String()
}
