package exp

import (
	"fmt"
	"strings"

	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/grid"
)

// Weights used by the experiments. The paper states the cost form
// α·Area + β·Wirelength + γ·Congestion without publishing the
// coefficients; these follow its usage: Experiment 1 balances all
// objectives, Experiments 2–3 optimize congestion only.
var (
	// WeightsAreaWire is Experiment 1's baseline floorplanner (Table 1).
	WeightsAreaWire = fplan.Weights{Alpha: 0.5, Beta: 0.5}
	// WeightsAll adds the congestion term (Table 2).
	WeightsAll = fplan.Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4}
	// WeightsCongestionOnly drives Experiments 2 and 3 (Figure 9,
	// Tables 4–5).
	WeightsCongestionOnly = fplan.Weights{Gamma: 1}
)

// Table1Row is one circuit's line of Table 1 (floorplanner optimizing
// area and wirelength only, judged afterwards).
type Table1Row struct {
	Circuit string
	Aggregate
}

// RunTable1 reproduces Table 1.
func RunTable1(p Protocol) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range p.Circuits {
		c, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		agg, err := p.runSeeded(c, WeightsAreaWire, nil, PitchFor(name), nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Circuit: name, Aggregate: agg})
	}
	return rows, nil
}

// Table2Row is one circuit's line of Table 2 (floorplanner additionally
// optimizing the Irregular-Grid congestion cost).
type Table2Row struct {
	Circuit   string
	GridPitch float64 // base pitch in µm (the paper's "grid size")
	Aggregate
}

// RunTable2 reproduces Table 2.
func RunTable2(p Protocol) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range p.Circuits {
		c, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		pitch := PitchFor(name)
		est := core.Model{Pitch: pitch}
		agg, err := p.runSeeded(c, WeightsAll, est, pitch, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Circuit: name, GridPitch: pitch, Aggregate: agg})
	}
	return rows, nil
}

// Table3Row is the percentage improvement of Table 2 over Table 1
// (positive = better under that metric, matching the paper's sign
// convention: area/wire penalties appear negative).
type Table3Row struct {
	Circuit                       string
	AvgArea, AvgWire, AvgJudge    float64 // % improvements, average results
	BestArea, BestWire, BestJudge float64
}

// Table3 derives Table 3 from Table 1 and Table 2 results.
func Table3(t1 []Table1Row, t2 []Table2Row) []Table3Row {
	imp := func(base, with float64) float64 {
		if base == 0 {
			return 0
		}
		return (base - with) / base * 100
	}
	var rows []Table3Row
	for i := range t1 {
		if i >= len(t2) || t1[i].Circuit != t2[i].Circuit {
			break
		}
		rows = append(rows, Table3Row{
			Circuit:   t1[i].Circuit,
			AvgArea:   imp(t1[i].AvgArea, t2[i].AvgArea),
			AvgWire:   imp(t1[i].AvgWire, t2[i].AvgWire),
			AvgJudge:  imp(t1[i].AvgJudge, t2[i].AvgJudge),
			BestArea:  imp(t1[i].BestArea, t2[i].BestArea),
			BestWire:  imp(t1[i].BestWire, t2[i].BestWire),
			BestJudge: imp(t1[i].BestJudge, t2[i].BestJudge),
		})
	}
	return rows
}

// Table4Result reproduces Table 4: ami33 annealed with the IR-grid
// model as the only objective.
type Table4Result struct {
	Circuit   string
	GridPitch float64
	Aggregate
}

// RunTable4 reproduces Table 4 (congestion-only IR-grid optimization,
// test circuit ami33).
func RunTable4(p Protocol) (Table4Result, error) {
	const circuit = "ami33"
	c, err := loadCircuit(circuit)
	if err != nil {
		return Table4Result{}, err
	}
	pitch := PitchFor(circuit)
	est := core.Model{Pitch: pitch}
	agg, err := p.runSeeded(c, WeightsCongestionOnly, est, pitch, irGridCount(est))
	if err != nil {
		return Table4Result{}, err
	}
	return Table4Result{Circuit: circuit, GridPitch: pitch, Aggregate: agg}, nil
}

// Table5Row is one pitch's line of Table 5: ami33 annealed with the
// fixed-size grid model as the only objective.
type Table5Row struct {
	Circuit   string
	GridPitch float64
	Aggregate
}

// Table5Pitches are the fixed-grid sizes the paper compares (100×100
// and 50×50 µm²).
var Table5Pitches = []float64{100, 50}

// RunTable5 reproduces Table 5.
func RunTable5(p Protocol) ([]Table5Row, error) {
	const circuit = "ami33"
	c, err := loadCircuit(circuit)
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for _, pitch := range Table5Pitches {
		est := grid.Model{Pitch: pitch}
		agg, err := p.runSeeded(c, WeightsCongestionOnly, est, PitchFor(circuit), fixedGridCount(pitch))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{Circuit: circuit, GridPitch: pitch, Aggregate: agg})
	}
	return rows, nil
}

// Experiment3Summary condenses Tables 4 and 5 into the paper's headline
// claims: speedup of the IR model over each fixed pitch and the
// relative judging-congestion change (positive = IR better).
type Experiment3Summary struct {
	FixedPitch     float64
	Speedup        float64 // fixed time / IR time
	JudgeReducePct float64 // (fixed judge - IR judge) / fixed judge * 100
}

// SummarizeExperiment3 derives the Experiment 3 comparison.
func SummarizeExperiment3(t4 Table4Result, t5 []Table5Row) []Experiment3Summary {
	var out []Experiment3Summary
	for _, r := range t5 {
		s := Experiment3Summary{FixedPitch: r.GridPitch}
		if t4.AvgTime > 0 {
			s.Speedup = r.AvgTime / t4.AvgTime
		}
		if r.AvgJudge > 0 {
			s.JudgeReducePct = (r.AvgJudge - t4.AvgJudge) / r.AvgJudge * 100
		}
		out = append(out, s)
	}
	return out
}

// --- formatting ---

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Results with area+wirelength optimization (judged by %dx%d um2 fixed grid)\n", JudgingPitch, JudgingPitch)
	fmt.Fprintf(&b, "%-8s | %12s %12s %8s %12s | %12s %12s %8s %12s\n",
		"circuit", "avg area", "avg wire", "avg t(s)", "avg judge", "best area", "best wire", "best t", "best judge")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %12.2f %12.0f %8.1f %12.6f | %12.2f %12.0f %8.1f %12.6f\n",
			r.Circuit, r.AvgArea/1e6, r.AvgWire, r.AvgTime, r.AvgJudge,
			r.BestArea/1e6, r.BestWire, r.BestTime, r.BestJudge)
	}
	b.WriteString("(areas in mm2, wirelength in um)\n")
	return b.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2. Results with Irregular-Grid congestion optimization\n")
	fmt.Fprintf(&b, "%-8s %6s | %10s %11s %12s %8s %11s | %10s %11s %12s %8s %11s\n",
		"circuit", "pitch", "avg area", "avg wire", "avg IRcgt", "avg t(s)", "avg judge",
		"best area", "best wire", "best IRcgt", "best t", "best judge")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %4.0fx%-3.0f| %10.2f %11.0f %12.4g %8.1f %11.6f | %10.2f %11.0f %12.4g %8.1f %11.6f\n",
			r.Circuit, r.GridPitch, r.GridPitch,
			r.AvgArea/1e6, r.AvgWire, r.AvgCgt, r.AvgTime, r.AvgJudge,
			r.BestArea/1e6, r.BestWire, r.BestCgt, r.BestTime, r.BestJudge)
	}
	return b.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3. Improvement of Table 2 over Table 1 (%, positive = better)\n")
	fmt.Fprintf(&b, "%-8s | %9s %9s %10s | %9s %9s %10s\n",
		"circuit", "avg area", "avg wire", "avg judge", "best area", "best wire", "best judge")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %9.2f %9.2f %10.2f | %9.2f %9.2f %10.2f\n",
			r.Circuit, r.AvgArea, r.AvgWire, r.AvgJudge, r.BestArea, r.BestWire, r.BestJudge)
	}
	return b.String()
}

// FormatTable4 renders Table 4.
func FormatTable4(r Table4Result) string {
	var b strings.Builder
	b.WriteString("Table 4. Irregular-Grid model, congestion optimization only (ami33)\n")
	fmt.Fprintf(&b, "%6s | %9s %12s %8s %11s | %9s %12s %8s %11s\n",
		"pitch", "avg #IR", "avg IRcgt", "avg t(s)", "avg judge", "best #IR", "best IRcgt", "best t", "best judge")
	fmt.Fprintf(&b, "%3.0fx%-3.0f| %9.0f %12.4g %8.1f %11.6f | %9.0f %12.4g %8.1f %11.6f\n",
		r.GridPitch, r.GridPitch,
		r.AvgGrids, r.AvgCgt, r.AvgTime, r.AvgJudge,
		r.BestGrids, r.BestCgt, r.BestTime, r.BestJudge)
	return b.String()
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5. Fixed-size grid model, congestion optimization only (ami33)\n")
	fmt.Fprintf(&b, "%8s | %10s %12s %8s %11s | %10s %12s %8s %11s\n",
		"pitch", "avg #grid", "avg cgt", "avg t(s)", "avg judge", "best #grid", "best cgt", "best t", "best judge")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4.0fx%-4.0f| %10.0f %12.4g %8.1f %11.6f | %10.0f %12.4g %8.1f %11.6f\n",
			r.GridPitch, r.GridPitch,
			r.AvgGrids, r.AvgCgt, r.AvgTime, r.AvgJudge,
			r.BestGrids, r.BestCgt, r.BestTime, r.BestJudge)
	}
	return b.String()
}

// FormatExperiment3 renders the Experiment 3 headline comparison.
func FormatExperiment3(sums []Experiment3Summary) string {
	var b strings.Builder
	b.WriteString("Experiment 3 summary: IR-grid vs fixed-size grid (ami33)\n")
	for _, s := range sums {
		fmt.Fprintf(&b, "vs %3.0fx%-3.0f fixed grid: runtime %.2fx faster, judging congestion %.2f%% lower\n",
			s.FixedPitch, s.FixedPitch, s.Speedup, s.JudgeReducePct)
	}
	b.WriteString("(paper: 2.3x faster / 8.79% lower vs 100x100; 3.5x faster / 4.59% lower vs 50x50)\n")
	return b.String()
}
