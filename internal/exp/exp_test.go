package exp

import (
	"math"
	"strings"
	"testing"

	"irgrid/internal/bench"
)

// tinyProtocol keeps the experiment tests fast while exercising every
// code path; one small circuit unless a test overrides.
func tinyProtocol() Protocol {
	return Protocol{
		Seeds: 2, BaseSeed: 500,
		MovesPerTemp: 10, MaxTemps: 8,
		Circuits: []string{"apte"},
	}
}

func TestProtocolsAreDistinct(t *testing.T) {
	full, quick, smoke := Full(), Quick(), Smoke()
	if full.Seeds != 20 {
		t.Errorf("full protocol should use the paper's 20 seeds, got %d", full.Seeds)
	}
	if quick.Seeds >= full.Seeds || smoke.Seeds >= quick.Seeds {
		t.Error("protocols should shrink: full > quick > smoke")
	}
	for _, p := range []Protocol{full, quick, smoke} {
		if len(p.Circuits) != len(bench.Names()) {
			t.Error("protocols should cover all circuits")
		}
	}
}

func TestPitchFor(t *testing.T) {
	if PitchFor("apte") != 60 {
		t.Error("apte uses 60x60 um2 per Table 2")
	}
	for _, c := range []string{"xerox", "hp", "ami33", "ami49"} {
		if PitchFor(c) != 30 {
			t.Errorf("%s should use 30x30 um2", c)
		}
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(tinyProtocol())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Circuit != "apte" {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.AvgArea <= 0 || r.AvgWire <= 0 || r.AvgJudge <= 0 {
		t.Errorf("bad aggregates: %+v", r.Aggregate)
	}
	if r.AvgCgt != 0 {
		t.Errorf("Table 1 has no congestion term, got %g", r.AvgCgt)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "apte") || !strings.Contains(out, "Table 1") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunTable2AndTable3(t *testing.T) {
	p := tinyProtocol()
	t1, err := RunTable1(p)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunTable2(p)
	if err != nil {
		t.Fatal(err)
	}
	if t2[0].GridPitch != 60 {
		t.Errorf("apte pitch = %g", t2[0].GridPitch)
	}
	if t2[0].AvgCgt <= 0 {
		t.Errorf("Table 2 must report the IR cost, got %g", t2[0].AvgCgt)
	}
	t3 := Table3(t1, t2)
	if len(t3) != 1 {
		t.Fatalf("t3 = %+v", t3)
	}
	// Improvements are finite percentages.
	for _, v := range []float64{t3[0].AvgArea, t3[0].AvgWire, t3[0].AvgJudge} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("bad improvement value %g", v)
		}
	}
	out := FormatTable2(t2) + FormatTable3(t3)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Table 3") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestTable3MismatchedRowsTruncate(t *testing.T) {
	t1 := []Table1Row{{Circuit: "a"}, {Circuit: "b"}}
	t2 := []Table2Row{{Circuit: "a"}}
	if got := Table3(t1, t2); len(got) != 1 {
		t.Errorf("expected truncation, got %d rows", len(got))
	}
}

func TestRunTable4And5(t *testing.T) {
	p := tinyProtocol()
	p.Circuits = []string{"ami33"}
	t4, err := RunTable4(p)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Circuit != "ami33" || t4.AvgGrids <= 0 || t4.AvgCgt <= 0 {
		t.Errorf("t4 = %+v", t4)
	}
	t5, err := RunTable5(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 2 || t5[0].GridPitch != 100 || t5[1].GridPitch != 50 {
		t.Fatalf("t5 = %+v", t5)
	}
	// Finer fixed grids have more cells.
	if t5[1].AvgGrids <= t5[0].AvgGrids {
		t.Errorf("50um grid should have more cells than 100um: %g vs %g",
			t5[1].AvgGrids, t5[0].AvgGrids)
	}
	sums := SummarizeExperiment3(t4, t5)
	if len(sums) != 2 {
		t.Fatalf("sums = %+v", sums)
	}
	for _, s := range sums {
		if s.Speedup <= 0 {
			t.Errorf("speedup = %g", s.Speedup)
		}
	}
	out := FormatTable4(t4) + FormatTable5(t5) + FormatExperiment3(sums)
	for _, want := range []string{"Table 4", "Table 5", "Experiment 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunFigure9(t *testing.T) {
	p := tinyProtocol()
	fig, err := RunFigure9(p, "ami33")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Steps) == 0 || len(fig.CurveA) != len(fig.Steps) ||
		len(fig.CurveB) != len(fig.Steps) || len(fig.CurveC) != len(fig.Steps) {
		t.Fatalf("curve lengths: %d/%d/%d/%d", len(fig.Steps), len(fig.CurveA), len(fig.CurveB), len(fig.CurveC))
	}
	for i := range fig.CurveA {
		if fig.CurveA[i] < 0 || fig.CurveB[i] < 0 || fig.CurveC[i] < 0 {
			t.Fatalf("negative congestion at step %d", i)
		}
	}
	// Current-solution trajectories may fluctuate but must end no worse
	// than they started (the anneal minimizes congestion).
	if fig.CurveA[len(fig.CurveA)-1] > fig.CurveA[0]+1e-9 {
		t.Errorf("curve A ended worse than it started: %g -> %g",
			fig.CurveA[0], fig.CurveA[len(fig.CurveA)-1])
	}
	out := FormatFigure9(fig)
	if !strings.Contains(out, "corr(A,B)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunFigure9UnknownCircuit(t *testing.T) {
	if _, err := RunFigure9(tinyProtocol(), "nope"); err == nil {
		t.Error("expected error")
	}
}

func TestRunFigure8(t *testing.T) {
	pts := RunFigure8(31, 21, 15, 10, 20)
	if len(pts) != 11 {
		t.Fatalf("%d points", len(pts))
	}
	worst := 0.0
	for _, p := range pts {
		if math.IsNaN(p.Approx) {
			t.Fatalf("unexpected failure point at x=%d", p.X)
		}
		if d := math.Abs(p.Exact - p.Approx); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("worst deviation %g exceeds the paper's 0.05", worst)
	}
	// The failure point renders as "(no value)".
	fail := RunFigure8(31, 21, 19, 29, 30)
	if !math.IsNaN(fail[1].Approx) {
		t.Error("x=30,y2=19 should be a failure point")
	}
	out := FormatFigure8(fail, "test")
	if !strings.Contains(out, "no value") {
		t.Errorf("output:\n%s", out)
	}
}

func TestNormalize(t *testing.T) {
	got := normalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("normalize = %v", got)
		}
	}
	if out := normalize([]float64{3, 3}); out[0] != 0 || out[1] != 0 {
		t.Error("constant series should normalize to zeros")
	}
	if normalize(nil) != nil {
		t.Error("nil should stay nil")
	}
}

func TestAggregateBestIsLowestCost(t *testing.T) {
	p := tinyProtocol()
	p.Seeds = 3
	c, err := loadCircuit("apte")
	if err != nil {
		t.Fatal(err)
	}
	var runs []RunResult
	for s := 0; s < p.Seeds; s++ {
		r, err := p.runOne(c, WeightsAreaWire, nil, 60, p.BaseSeed+int64(s), nil)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	agg := aggregate(runs, nil)
	minCost := runs[0].Sol.Cost
	bestIdx := 0
	for i, r := range runs {
		if r.Sol.Cost < minCost {
			minCost, bestIdx = r.Sol.Cost, i
		}
	}
	if agg.BestArea != runs[bestIdx].Sol.Area {
		t.Errorf("best row is not the lowest-cost run")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := tinyProtocol()
	par := tinyProtocol()
	par.Parallel = true
	c, err := loadCircuit("apte")
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.runSeeded(c, WeightsAreaWire, nil, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.runSeeded(c, WeightsAreaWire, nil, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except wall-clock must be bit-identical.
	if a.AvgArea != b.AvgArea || a.AvgWire != b.AvgWire || a.AvgJudge != b.AvgJudge ||
		a.BestArea != b.BestArea || a.BestWire != b.BestWire {
		t.Errorf("parallel diverged: %+v vs %+v", a, b)
	}
}
