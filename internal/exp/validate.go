package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"irgrid/internal/baseline"
	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/geom"
	"irgrid/internal/grid"
	"irgrid/internal/netlist"
	"irgrid/internal/nmath"
	"irgrid/internal/slicing"
)

// Validation is an extension experiment beyond the paper: every
// congestion estimator is scored on the same sample of random
// floorplans and correlated against ground truth from the global
// router (total edge overflow after negotiation). A good congestion
// model ranks floorplans the way the router does; Pearson and Spearman
// correlations quantify that. The paper argues this point indirectly
// through its judging model; routing the nets makes it direct.
type Validation struct {
	Circuit string
	Samples int
	// Models lists the estimator names in result order.
	Models []string
	// Pearson[i] and Spearman[i] correlate model i's scores with the
	// router overflow across the samples.
	Pearson  []float64
	Spearman []float64
	// Overflows are the ground-truth values per sample.
	Overflows []float64
	// Scores[i][j] is model i's score of sample j.
	Scores [][]float64
}

// validationModel pairs a name with an estimator.
type validationModel struct {
	name string
	est  fplan.Estimator
}

func validationModels(pitch float64) []validationModel {
	return []validationModel{
		{"ir-grid", core.Model{Pitch: pitch}},
		{"ir-grid(exact)", core.Model{Pitch: pitch, Exact: true}},
		{"fixed-grid 50", grid.Model{Pitch: 50}},
		{"fixed-grid 100", grid.Model{Pitch: 100}},
		{"fixed-grid-lz 50", grid.LZModel{Pitch: 50}},
		{"judging 10", grid.Model{Pitch: JudgingPitch}},
		{"empirical", baseline.Empirical{Pitch: pitch}},
		{"router-based", baseline.RouterBased{Pitch: pitch * 2, Capacity: 6, Iterations: 2}},
	}
}

// RunValidation samples random floorplans of the circuit (a seeded
// random walk over Polish expressions) and correlates every model's
// score with the router's true overflow. samples <= 0 defaults to 24.
func RunValidation(circuit string, samples int, seed int64) (Validation, error) {
	c, err := loadCircuit(circuit)
	if err != nil {
		return Validation{}, err
	}
	if samples <= 0 {
		samples = 24
	}
	pitch := PitchFor(circuit)
	models := validationModels(pitch)

	v := Validation{Circuit: circuit, Samples: samples}
	for _, m := range models {
		v.Models = append(v.Models, m.name)
	}
	v.Scores = make([][]float64, len(models))

	r, err := fplan.New(c, fplan.Config{
		Weights: fplan.Weights{Alpha: 1},
		Pitch:   pitch,
	})
	if err != nil {
		return Validation{}, err
	}

	// Ground-truth router: finer tiles, free detours, full negotiation,
	// capacity tight enough that bad floorplans overflow.
	truth := baseline.RouterBased{Pitch: pitch, Capacity: 4, Iterations: 6}

	rng := rand.New(rand.NewSource(seed))
	e := slicing.Initial(len(c.Modules))
	for s := 0; s < samples; s++ {
		// Random walk: a handful of perturbations between samples so
		// consecutive floorplans differ meaningfully.
		for k := 0; k < 5; k++ {
			e.Perturb(rng)
		}
		sol := r.Evaluate(e)
		chip := sol.Placement.Chip
		res, err := truth.Route(chip, sol.Nets)
		if err != nil {
			return Validation{}, err
		}
		v.Overflows = append(v.Overflows, float64(res.Overflow))
		for i, m := range models {
			v.Scores[i] = append(v.Scores[i], scoreWith(m.est, chip, sol.Nets))
		}
	}

	for i := range models {
		v.Pearson = append(v.Pearson, nmath.Pearson(v.Scores[i], v.Overflows))
		v.Spearman = append(v.Spearman, spearman(v.Scores[i], v.Overflows))
	}
	return v, nil
}

func scoreWith(est fplan.Estimator, chip geom.Rect, nets []netlist.TwoPin) float64 {
	return est.Score(chip, nets)
}

// spearman computes the Spearman rank correlation (Pearson over ranks,
// mean ranks for ties).
func spearman(x, y []float64) float64 {
	return nmath.Pearson(ranks(x), ranks(y))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mean := float64(i+j) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = mean
		}
		i = j + 1
	}
	return out
}

// FormatValidation renders the validation experiment.
func FormatValidation(v Validation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Validation: congestion models vs router overflow (%s, %d random floorplans)\n",
		v.Circuit, v.Samples)
	fmt.Fprintf(&b, "%-16s %10s %10s\n", "model", "pearson", "spearman")
	for i, m := range v.Models {
		fmt.Fprintf(&b, "%-16s %10.4f %10.4f\n", m, v.Pearson[i], v.Spearman[i])
	}
	b.WriteString("(higher = the model ranks floorplans the way the router does)\n")
	return b.String()
}
