package exp

import (
	"math"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	v, err := RunValidation("ami33", 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	if v.Samples != 8 || len(v.Overflows) != 8 {
		t.Fatalf("samples: %d/%d", v.Samples, len(v.Overflows))
	}
	if len(v.Models) == 0 || len(v.Pearson) != len(v.Models) || len(v.Spearman) != len(v.Models) {
		t.Fatalf("model lists inconsistent: %v", v.Models)
	}
	for i, m := range v.Models {
		if math.IsNaN(v.Pearson[i]) || v.Pearson[i] < -1 || v.Pearson[i] > 1 {
			t.Errorf("%s: pearson %g", m, v.Pearson[i])
		}
		if math.IsNaN(v.Spearman[i]) || v.Spearman[i] < -1 || v.Spearman[i] > 1 {
			t.Errorf("%s: spearman %g", m, v.Spearman[i])
		}
		if len(v.Scores[i]) != v.Samples {
			t.Errorf("%s: %d scores", m, len(v.Scores[i]))
		}
	}
	out := FormatValidation(v)
	if !strings.Contains(out, "ir-grid") || !strings.Contains(out, "pearson") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunValidationUnknownCircuit(t *testing.T) {
	if _, err := RunValidation("nope", 4, 1); err == nil {
		t.Error("expected error")
	}
}

func TestRanks(t *testing.T) {
	r := ranks([]float64{10, 30, 20})
	want := []float64{0, 2, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v", r)
		}
	}
	// Ties get the mean rank.
	r = ranks([]float64{5, 5, 1})
	if r[0] != 1.5 || r[1] != 1.5 || r[2] != 0 {
		t.Fatalf("tied ranks = %v", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 10, 100, 1000, 10000} // monotone, non-linear
	if got := spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("spearman = %g, want 1", got)
	}
}

func TestValidationIRModelCorrelates(t *testing.T) {
	// The headline sanity check: across random floorplans, the IR-grid
	// model's score should correlate positively with real router
	// overflow. Small sample, so just require a clearly positive rank
	// correlation.
	if testing.Short() {
		t.Skip("validation run is slow")
	}
	v, err := RunValidation("ami33", 16, 123)
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, m := range v.Models {
		if m == "ir-grid" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("ir-grid missing from validation models")
	}
	if v.Spearman[idx] < 0.3 {
		t.Errorf("ir-grid spearman %g; expected clearly positive correlation with router overflow", v.Spearman[idx])
	}
}
