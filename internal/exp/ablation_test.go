package exp

import (
	"strings"
	"testing"
)

func TestRunAblation(t *testing.T) {
	a, err := RunAblation("ami33", 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples != 4 || len(a.Rows) < 5 {
		t.Fatalf("ablation: %+v", a)
	}
	ref := a.Rows[0]
	if !strings.Contains(ref.Variant, "reference") {
		t.Fatalf("first row should be the reference, got %q", ref.Variant)
	}
	if ref.CorrRef < 0.999 {
		t.Errorf("reference self-correlation = %g", ref.CorrRef)
	}
	for _, r := range a.Rows {
		if r.MeanScore <= 0 || r.MeanGrids <= 0 || r.EvalMS < 0 {
			t.Errorf("%s: bad row %+v", r.Variant, r)
		}
		// Every variant must preserve the reference's ranking well —
		// that is the paper's central robustness claim.
		if r.CorrRef < 0.9 {
			t.Errorf("%s: correlation with reference only %g", r.Variant, r.CorrRef)
		}
	}
	// The unmerged variant uses strictly more IR-grids.
	var merged, unmerged float64
	for _, r := range a.Rows {
		switch {
		case strings.Contains(r.Variant, "no line merge"):
			unmerged = r.MeanGrids
		case strings.Contains(r.Variant, "reference"):
			merged = r.MeanGrids
		}
	}
	if unmerged <= merged {
		t.Errorf("line merge should reduce IR-grids: %g vs %g", merged, unmerged)
	}
	out := FormatAblation(a)
	if !strings.Contains(out, "Ablation") || !strings.Contains(out, "corr(ref)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunAblationUnknownCircuit(t *testing.T) {
	if _, err := RunAblation("nope", 4, 1); err == nil {
		t.Error("expected error")
	}
}

func TestRunSensitivity(t *testing.T) {
	s, err := RunSensitivity("ami33", 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(SensitivityPitches) {
		t.Fatalf("%d rows", len(s.Rows))
	}
	for i, r := range s.Rows {
		if r.MeanScore <= 0 || r.Cells <= 0 {
			t.Errorf("pitch %g: bad row %+v", r.Pitch, r)
		}
		if i > 0 && r.Cells <= s.Rows[i-1].Cells {
			t.Errorf("cells should grow as pitch shrinks: %g then %g", s.Rows[i-1].Cells, r.Cells)
		}
	}
	// The finest pitch equals the judging model: perfect correlation.
	last := s.Rows[len(s.Rows)-1]
	if last.Pitch != 10 || last.CorrJudge < 0.9999 {
		t.Errorf("judging-pitch row: %+v", last)
	}
	out := FormatSensitivity(s)
	if !strings.Contains(out, "sensitivity") && !strings.Contains(out, "Grid-size") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunSensitivityUnknownCircuit(t *testing.T) {
	if _, err := RunSensitivity("nope", 2, 1); err == nil {
		t.Error("expected error")
	}
}

func TestRunSoftStudy(t *testing.T) {
	p := tinyProtocol()
	rows, err := RunSoftStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.HardUtil <= 0 || r.HardUtil > 100+1e-9 || r.SoftUtil <= 0 || r.SoftUtil > 100+1e-9 {
		t.Errorf("utilizations: %+v", r)
	}
	// Soft modules can only help utilization under the same budget
	// (they strictly generalize the hard shapes); allow slack for SA
	// noise at tiny budgets.
	if r.SoftUtil < r.HardUtil*0.9 {
		t.Errorf("soft util %.1f%% much worse than hard %.1f%%", r.SoftUtil, r.HardUtil)
	}
	out := FormatSoftStudy(rows)
	if !strings.Contains(out, "Soft-module") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunRepStudy(t *testing.T) {
	p := tinyProtocol()
	rows, err := RunRepStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.SlicingArea <= 0 || r.SeqPairArea <= 0 || r.SlicingJudge <= 0 || r.SeqPairJudge <= 0 {
		t.Errorf("row %+v", r)
	}
	out := FormatRepStudy(rows)
	if !strings.Contains(out, "sequence pair") {
		t.Errorf("output:\n%s", out)
	}
}
