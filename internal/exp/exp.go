// Package exp reproduces the paper's evaluation: the three experiments
// of §5 (Tables 1–5 and Figure 9) plus the Figure 8 accuracy study.
// Each experiment is parameterized by a Protocol so the full 20-seed
// paper protocol, a quick check, and a smoke test for benchmarks share
// one code path.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"irgrid/internal/anneal"
	"irgrid/internal/bench"
	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/grid"
	"irgrid/internal/netlist"
	"irgrid/internal/nmath"
)

// JudgingPitch is the grid pitch of the "judging model": the fixed-size
// grid model with a very small pitch (10×10 µm² in the paper) used as
// the neutral referee for every experiment.
const JudgingPitch = 10

// Protocol sizes an experiment run.
type Protocol struct {
	// Seeds is the number of independent SA runs per data point
	// (paper: 20).
	Seeds int
	// BaseSeed offsets the per-run seeds so different protocols don't
	// share trajectories.
	BaseSeed int64
	// MovesPerTemp and MaxTemps size each anneal.
	MovesPerTemp int
	MaxTemps     int
	// Circuits lists the benchmark circuits (default: all five MCNC).
	Circuits []string
	// Representation selects the floorplan encoding ("" = slicing).
	Representation string
	// Parallel runs the seeds of one data point concurrently across
	// CPUs. Results are identical to the sequential order (each seed's
	// run is independent and deterministic); only wall-clock time and
	// the per-run Seconds measurements change, so keep it off when the
	// paper's runtime columns matter.
	Parallel bool
	// Ctx, when non-nil, bounds every run of the experiment: on
	// cancellation or deadline the in-flight anneal stops at the next
	// move and the experiment returns anneal.ErrCanceled/ErrDeadline.
	// Partially completed tables are discarded, not reported.
	Ctx context.Context
}

// Full is the paper's protocol: 20 seeds per data point.
func Full() Protocol {
	return Protocol{Seeds: 20, BaseSeed: 1000, MovesPerTemp: 120, MaxTemps: 80, Circuits: bench.Names()}
}

// Quick is a reduced protocol for interactive use: the same shape with
// fewer seeds and shorter anneals.
func Quick() Protocol {
	return Protocol{Seeds: 3, BaseSeed: 1000, MovesPerTemp: 40, MaxTemps: 30, Circuits: bench.Names()}
}

// Smoke is the minimal protocol used by the benchmark harness: one
// seed, tiny anneals, still exercising every code path.
func Smoke() Protocol {
	return Protocol{Seeds: 1, BaseSeed: 1000, MovesPerTemp: 15, MaxTemps: 12, Circuits: bench.Names()}
}

// PitchFor returns the IR-grid base pitch the paper uses per circuit
// (Table 2: 60×60 µm² for apte, 30×30 µm² for the rest).
func PitchFor(circuit string) float64 {
	if circuit == "apte" {
		return 60
	}
	return 30
}

func (p Protocol) annealConfig(seed int64) anneal.Config {
	return anneal.Config{
		Seed:             seed,
		MovesPerTemp:     p.MovesPerTemp,
		MaxTemps:         p.MaxTemps,
		CalibrationMoves: 20,
	}
}

// RunResult is one seeded floorplanning run with its referee score.
type RunResult struct {
	Sol     *fplan.Solution
	Seconds float64
	Judge   float64 // judging-model congestion of the final floorplan
	Stats   anneal.Stats
}

// runOne anneals circuit c once with the given cost weights and
// congestion estimator, then scores the result with the judging model.
func (p Protocol) runOne(c *netlist.Circuit, w fplan.Weights, est fplan.Estimator, pinPitch float64, seed int64, onTemp func(int, *fplan.Solution)) (RunResult, error) {
	r, err := fplan.New(c, fplan.Config{
		Weights:        w,
		Estimator:      est,
		Pitch:          pinPitch,
		AllowRotate:    true,
		Representation: p.Representation,
		Anneal:         p.annealConfig(seed),
	})
	if err != nil {
		return RunResult{}, err
	}
	start := time.Now()
	sol, stats, err := r.Run(p.Ctx, onTemp)
	if err != nil {
		return RunResult{}, err
	}
	secs := time.Since(start).Seconds()
	judge := grid.Model{Pitch: JudgingPitch}.Score(sol.Placement.Chip, sol.Nets)
	return RunResult{Sol: sol, Seconds: secs, Judge: judge, Stats: stats}, nil
}

// Aggregate is the average/best summary the paper's tables report: the
// mean over all seeds and the metrics of the single lowest-cost run.
type Aggregate struct {
	AvgArea, AvgWire, AvgCgt, AvgTime, AvgJudge      float64
	BestArea, BestWire, BestCgt, BestTime, BestJudge float64
	AvgGrids, BestGrids                              float64 // congestion-grid counts where applicable
}

// aggregate folds seeded runs into an Aggregate; grids extracts the
// per-run grid count (may be nil).
func aggregate(runs []RunResult, grids func(RunResult) float64) Aggregate {
	var a Aggregate
	var wArea, wWire, wCgt, wTime, wJudge, wGrids nmath.Welford
	best := 0
	for i, r := range runs {
		wArea.Add(r.Sol.Area)
		wWire.Add(r.Sol.Wirelength)
		wCgt.Add(r.Sol.Congestion)
		wTime.Add(r.Seconds)
		wJudge.Add(r.Judge)
		if grids != nil {
			wGrids.Add(grids(r))
		}
		if r.Sol.Cost < runs[best].Sol.Cost {
			best = i
		}
	}
	a.AvgArea, a.AvgWire, a.AvgCgt = wArea.Mean(), wWire.Mean(), wCgt.Mean()
	a.AvgTime, a.AvgJudge, a.AvgGrids = wTime.Mean(), wJudge.Mean(), wGrids.Mean()
	b := runs[best]
	a.BestArea, a.BestWire, a.BestCgt = b.Sol.Area, b.Sol.Wirelength, b.Sol.Congestion
	a.BestTime, a.BestJudge = b.Seconds, b.Judge
	if grids != nil {
		a.BestGrids = grids(b)
	}
	return a
}

// runSeeded executes Protocol.Seeds runs and aggregates them.
func (p Protocol) runSeeded(c *netlist.Circuit, w fplan.Weights, est fplan.Estimator, pinPitch float64, grids func(RunResult) float64) (Aggregate, error) {
	runs := make([]RunResult, p.Seeds)
	if !p.Parallel {
		for s := 0; s < p.Seeds; s++ {
			r, err := p.runOne(c, w, est, pinPitch, p.BaseSeed+int64(s), nil)
			if err != nil {
				return Aggregate{}, err
			}
			runs[s] = r
		}
		return aggregate(runs, grids), nil
	}
	errs := make([]error, p.Seeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for s := 0; s < p.Seeds; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runs[s], errs[s] = p.runOne(c, w, est, pinPitch, p.BaseSeed+int64(s), nil)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Aggregate{}, err
		}
	}
	return aggregate(runs, grids), nil
}

// irGridCount evaluates the IR-grid partition of a finished floorplan
// and returns the IR-grid count (Table 4's "# of IR-grid").
func irGridCount(m core.Model) func(RunResult) float64 {
	return func(r RunResult) float64 {
		mp := m.Evaluate(r.Sol.Placement.Chip, r.Sol.Nets)
		return float64(mp.GridCount())
	}
}

// fixedGridCount returns the fixed-model grid count of the floorplan.
func fixedGridCount(pitch float64) func(RunResult) float64 {
	return func(r RunResult) float64 {
		mp := grid.NewMap(r.Sol.Placement.Chip, pitch)
		return float64(mp.Cols * mp.Rows)
	}
}

func loadCircuit(name string) (*netlist.Circuit, error) {
	c, err := bench.Load(name)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	return c, nil
}
