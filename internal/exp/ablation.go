package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"irgrid/internal/core"
	"irgrid/internal/fplan"
	"irgrid/internal/nmath"
	"irgrid/internal/slicing"
)

// AblationRow reports one Irregular-Grid model variant evaluated on a
// common sample of floorplans: its mean score, the correlation of its
// scores with the reference (exact, merged, corrected) variant, its
// IR-grid count and its evaluation time.
type AblationRow struct {
	Variant   string
	MeanScore float64
	CorrRef   float64 // Pearson correlation with the reference variant
	MeanGrids float64
	EvalMS    float64 // mean per-evaluation wall time, ms
}

// Ablation holds the model-variant study of the design decisions
// DESIGN.md calls out: exact vs Theorem 1, line merging, integral
// bounds, and Simpson resolution.
type Ablation struct {
	Circuit string
	Samples int
	Rows    []AblationRow
}

// ablationVariants enumerates the studied model configurations. The
// first entry is the reference.
func ablationVariants(pitch float64) []struct {
	name  string
	model core.Model
} {
	return []struct {
		name  string
		model core.Model
	}{
		{"exact (reference)", core.Model{Pitch: pitch, Exact: true}},
		{"approx (default)", core.Model{Pitch: pitch}},
		{"approx, paper bounds", core.Model{Pitch: pitch, PaperBounds: true, ExactSpanLimit: -1}},
		{"approx, simpson only", core.Model{Pitch: pitch, ExactSpanLimit: -1}},
		{"approx, simpson n=16", core.Model{Pitch: pitch, ExactSpanLimit: -1, SimpsonN: 16}},
		{"exact, no line merge", core.Model{Pitch: pitch, Exact: true, NoMerge: true}},
		{"exact, pitch/2", core.Model{Pitch: pitch / 2, Exact: true}},
	}
}

// RunAblation samples random floorplans of the circuit and scores each
// with every model variant. samples <= 0 defaults to 16.
func RunAblation(circuit string, samples int, seed int64) (Ablation, error) {
	c, err := loadCircuit(circuit)
	if err != nil {
		return Ablation{}, err
	}
	if samples <= 0 {
		samples = 16
	}
	pitch := PitchFor(circuit)
	variants := ablationVariants(pitch)

	r, err := fplan.New(c, fplan.Config{Weights: fplan.Weights{Alpha: 1}, Pitch: pitch})
	if err != nil {
		return Ablation{}, err
	}

	rng := rand.New(rand.NewSource(seed))
	e := slicing.Initial(len(c.Modules))
	scores := make([][]float64, len(variants))
	grids := make([]nmath.Welford, len(variants))
	times := make([]nmath.Welford, len(variants))
	for s := 0; s < samples; s++ {
		for k := 0; k < 5; k++ {
			e.Perturb(rng)
		}
		sol := r.Evaluate(e)
		for i, v := range variants {
			start := time.Now()
			mp := v.model.Evaluate(sol.Placement.Chip, sol.Nets)
			score := mp.TopScore(0.10)
			times[i].Add(time.Since(start).Seconds() * 1e3)
			scores[i] = append(scores[i], score)
			grids[i].Add(float64(mp.GridCount()))
		}
	}

	ab := Ablation{Circuit: circuit, Samples: samples}
	for i, v := range variants {
		var mean nmath.Welford
		for _, s := range scores[i] {
			mean.Add(s)
		}
		ab.Rows = append(ab.Rows, AblationRow{
			Variant:   v.name,
			MeanScore: mean.Mean(),
			CorrRef:   nmath.Pearson(scores[i], scores[0]),
			MeanGrids: grids[i].Mean(),
			EvalMS:    times[i].Mean(),
		})
	}
	return ab, nil
}

// FormatAblation renders the ablation study.
func FormatAblation(a Ablation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: Irregular-Grid model variants (%s, %d random floorplans)\n", a.Circuit, a.Samples)
	fmt.Fprintf(&b, "%-22s %12s %10s %10s %10s\n", "variant", "mean score", "corr(ref)", "IR-grids", "eval ms")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-22s %12.5g %10.4f %10.0f %10.3f\n",
			r.Variant, r.MeanScore, r.CorrRef, r.MeanGrids, r.EvalMS)
	}
	b.WriteString("(corr(ref): Pearson correlation of the variant's floorplan ranking with\nthe exact merged reference; the paper's claims need high correlation at\nlower cost, not identical absolute scores)\n")
	return b.String()
}
