package exp

import (
	"fmt"
	"strings"

	"irgrid/internal/bench"
	"irgrid/internal/core"
	"irgrid/internal/fplan"
)

// SoftRow compares hard-module and soft-module floorplanning of one
// circuit: area utilization (module area over chip area) and judged
// congestion under the same annealing budget.
type SoftRow struct {
	Circuit              string
	HardUtil, SoftUtil   float64 // percent
	HardJudge, SoftJudge float64
	HardWire, SoftWire   float64
}

// RunSoftStudy floorplans every circuit twice — hard modules, then a
// soft variant with aspect ratios free in [0.25, 4] — optimizing area
// and wirelength. It is an extension beyond the paper (whose MCNC
// experiments use hard blocks) showing the substrate generalizes.
func RunSoftStudy(p Protocol) ([]SoftRow, error) {
	var rows []SoftRow
	for _, name := range p.Circuits {
		c, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		moduleArea := c.TotalModuleArea()

		hard, err := p.runSeeded(c, WeightsAreaWire, nil, PitchFor(name), nil)
		if err != nil {
			return nil, err
		}
		soft, err := p.runSeeded(bench.SoftVariant(c, 0.25, 4), WeightsAreaWire, nil, PitchFor(name), nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SoftRow{
			Circuit:   name,
			HardUtil:  moduleArea / hard.AvgArea * 100,
			SoftUtil:  moduleArea / soft.AvgArea * 100,
			HardJudge: hard.AvgJudge,
			SoftJudge: soft.AvgJudge,
			HardWire:  hard.AvgWire,
			SoftWire:  soft.AvgWire,
		})
	}
	return rows, nil
}

// RepRow compares the slicing and sequence-pair representations on one
// circuit under the same annealing budget and congestion objective.
type RepRow struct {
	Circuit                    string
	SlicingArea, SeqPairArea   float64
	SlicingJudge, SeqPairJudge float64
	SlicingTime, SeqPairTime   float64
}

// RunRepStudy anneals every circuit under both floorplan
// representations with the full cost function (area, wire and the
// IR-grid congestion term), showing that the congestion model is
// representation-agnostic. An extension beyond the paper, whose
// floorplanner is slicing-only.
func RunRepStudy(p Protocol) ([]RepRow, error) {
	var rows []RepRow
	for _, name := range p.Circuits {
		c, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		pitch := PitchFor(name)
		est := core.Model{Pitch: pitch}

		slicingP := p
		slicingP.Representation = fplan.ReprSlicing
		sl, err := slicingP.runSeeded(c, WeightsAll, est, pitch, nil)
		if err != nil {
			return nil, err
		}
		spP := p
		spP.Representation = fplan.ReprSeqPair
		sp, err := spP.runSeeded(c, WeightsAll, est, pitch, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RepRow{
			Circuit:      name,
			SlicingArea:  sl.AvgArea,
			SeqPairArea:  sp.AvgArea,
			SlicingJudge: sl.AvgJudge,
			SeqPairJudge: sp.AvgJudge,
			SlicingTime:  sl.AvgTime,
			SeqPairTime:  sp.AvgTime,
		})
	}
	return rows, nil
}

// FormatRepStudy renders the representation comparison.
func FormatRepStudy(rows []RepRow) string {
	var b strings.Builder
	b.WriteString("Representation study: slicing vs sequence pair (same budget, full cost fn)\n")
	fmt.Fprintf(&b, "%-8s | %12s %12s | %11s %11s | %8s %8s\n",
		"circuit", "slc area", "sp area", "slc judge", "sp judge", "slc t(s)", "sp t(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %12.2f %12.2f | %11.5f %11.5f | %8.1f %8.1f\n",
			r.Circuit, r.SlicingArea/1e6, r.SeqPairArea/1e6,
			r.SlicingJudge, r.SeqPairJudge, r.SlicingTime, r.SeqPairTime)
	}
	return b.String()
}

// FormatSoftStudy renders the hard-vs-soft comparison.
func FormatSoftStudy(rows []SoftRow) string {
	var b strings.Builder
	b.WriteString("Soft-module study (aspect free in [0.25, 4]; extension beyond the paper)\n")
	fmt.Fprintf(&b, "%-8s | %10s %10s | %11s %11s | %11s %11s\n",
		"circuit", "hard util", "soft util", "hard wire", "soft wire", "hard judge", "soft judge")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %9.1f%% %9.1f%% | %11.0f %11.0f | %11.5f %11.5f\n",
			r.Circuit, r.HardUtil, r.SoftUtil, r.HardWire, r.SoftWire, r.HardJudge, r.SoftJudge)
	}
	return b.String()
}
