package grid

import (
	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// LZModel is a bend-limited variant of the fixed-grid probabilistic
// model: instead of weighting all monotone staircase routes equally
// (the paper's assumption, after [3][4]), only 1-bend (L) and 2-bend
// (Z) shortest routes are considered, each equally likely. Practical
// global routers strongly prefer few bends, so this variant brackets
// the route-distribution assumption from the other side; the
// validation experiment compares both against real routed overflow.
type LZModel struct {
	// Pitch is the square grid side in µm.
	Pitch float64
	// TopFraction is the fraction of most-congested grids averaged
	// into the score (default 0.10).
	TopFraction float64
}

// Name identifies the model in experiment tables.
func (m LZModel) Name() string { return "fixed-grid-lz" }

// Evaluate builds the congestion map for the decomposed 2-pin nets.
func (m LZModel) Evaluate(chip geom.Rect, nets []netlist.TwoPin) *Map {
	mp := NewMap(chip, m.Pitch)
	for _, n := range nets {
		mp.AddNetLZ(n)
	}
	return mp
}

// Score returns the chip-level congestion cost.
func (m LZModel) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	frac := m.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	return m.Evaluate(chip, nets).TopScore(frac)
}

// AddNetLZ accumulates one 2-pin net assuming uniformly random L- or
// Z-shaped shortest routes. With the routing range spanning cell
// offsets (0,0)..(mx,my) in type I orientation, the route set is:
//
//   - 2 L-routes (right-then-up, up-then-right),
//   - mx-1 vertical-jog Z-routes (one per interior column), and
//   - my-1 horizontal-jog Z-routes (one per interior row),
//
// so R = mx + my routes in total (mx, my ≥ 1). Per-cell counts have
// closed forms; TestAddNetLZMatchesEnumeration checks them against
// explicit route enumeration.
func (mp *Map) AddNetLZ(n netlist.TwoPin) {
	ax, ay := mp.cell(n.A)
	bx, by := mp.cell(n.B)
	gx1, gx2 := minInt(ax, bx), maxInt(ax, bx)
	gy1, gy2 := minInt(ay, by), maxInt(ay, by)
	mx := gx2 - gx1
	my := gy2 - gy1

	if mx == 0 || my == 0 {
		// Point or line range: a single route through every cell.
		for y := gy1; y <= gy2; y++ {
			for x := gx1; x <= gx2; x++ {
				mp.Cost[y*mp.Cols+x] += 1
			}
		}
		return
	}

	typeII := n.TypeII()
	total := float64(mx + my)
	for ly := 0; ly <= my; ly++ {
		ty := ly
		if typeII {
			ty = my - ly
		}
		row := (gy1 + ly) * mp.Cols
		for lx := 0; lx <= mx; lx++ {
			mp.Cost[row+gx1+lx] += lzRoutesThrough(mx, my, lx, ty) / total
		}
	}
}

// lzRoutesThrough counts the L/Z routes from (0,0) to (mx,my) passing
// through cell (x,y); mx, my >= 1.
func lzRoutesThrough(mx, my, x, y int) float64 {
	count := 0

	// L-route A: along y=0 then up the column x=mx.
	if y == 0 || x == mx {
		count++
	}
	// L-route B: up the column x=0 then along y=my.
	if x == 0 || y == my {
		count++
	}
	// Vertical-jog Z at interior column c (1..mx-1): cells (x,0) x<=c,
	// (c,*), (x,my) x>=c.
	switch {
	case y == 0:
		// Columns c >= x qualify: c in [max(1,x), mx-1].
		lo := maxInt(1, x)
		if lo <= mx-1 {
			count += mx - 1 - lo + 1
		}
	case y == my:
		// Columns c <= x: c in [1, min(x, mx-1)].
		hi := minInt(x, mx-1)
		if hi >= 1 {
			count += hi
		}
	default:
		// Interior row: only the jog column itself.
		if x >= 1 && x <= mx-1 {
			count++
		}
	}
	// Horizontal-jog Z at interior row r (1..my-1): transpose of the
	// vertical case.
	switch {
	case x == 0:
		lo := maxInt(1, y)
		if lo <= my-1 {
			count += my - 1 - lo + 1
		}
	case x == mx:
		hi := minInt(y, my-1)
		if hi >= 1 {
			count += hi
		}
	default:
		if y >= 1 && y <= my-1 {
			count++
		}
	}
	return float64(count)
}
