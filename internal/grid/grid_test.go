package grid

import (
	"math"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// pathsThrough counts, by dynamic programming, the number of monotone
// up-right cell paths from (0,0) to (g1-1,g2-1) that pass through cell
// (x,y), as a float64. It is the ground truth for Formula 1/2.
func pathsThrough(g1, g2, x, y int) (through, total float64) {
	from := make([][]float64, g1) // paths from (0,0) to (i,j)
	to := make([][]float64, g1)   // paths from (i,j) to (g1-1,g2-1)
	for i := range from {
		from[i] = make([]float64, g2)
		to[i] = make([]float64, g2)
	}
	for i := 0; i < g1; i++ {
		for j := 0; j < g2; j++ {
			if i == 0 && j == 0 {
				from[i][j] = 1
				continue
			}
			if i > 0 {
				from[i][j] += from[i-1][j]
			}
			if j > 0 {
				from[i][j] += from[i][j-1]
			}
		}
	}
	for i := g1 - 1; i >= 0; i-- {
		for j := g2 - 1; j >= 0; j-- {
			if i == g1-1 && j == g2-1 {
				to[i][j] = 1
				continue
			}
			if i+1 < g1 {
				to[i][j] += to[i+1][j]
			}
			if j+1 < g2 {
				to[i][j] += to[i][j+1]
			}
		}
	}
	return from[x][y] * to[x][y], from[g1-1][g2-1]
}

func TestAddNetMatchesPathCountingTypeI(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	for _, dims := range [][2]int{{2, 2}, {3, 5}, {6, 6}, {7, 4}, {10, 10}} {
		g1, g2 := dims[0], dims[1]
		mp := NewMap(chip, 10)
		// Pins in cell centers of (0,0) and (g1-1, g2-1).
		n := netlist.TwoPin{
			A: geom.Pt{X: 5, Y: 5},
			B: geom.Pt{X: float64(g1-1)*10 + 5, Y: float64(g2-1)*10 + 5},
		}
		mp.AddNet(n)
		for x := 0; x < g1; x++ {
			for y := 0; y < g2; y++ {
				through, total := pathsThrough(g1, g2, x, y)
				want := through / total
				got := mp.At(x, y)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("g=%dx%d cell (%d,%d): got %g, want %g", g1, g2, x, y, got, want)
				}
			}
		}
	}
}

func TestAddNetMatchesPathCountingTypeII(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	g1, g2 := 6, 4
	mp := NewMap(chip, 10)
	// Type II: first pin upper-left, second lower-right.
	n := netlist.TwoPin{
		A: geom.Pt{X: 5, Y: float64(g2-1)*10 + 5},
		B: geom.Pt{X: float64(g1-1)*10 + 5, Y: 5},
	}
	mp.AddNet(n)
	for x := 0; x < g1; x++ {
		for y := 0; y < g2; y++ {
			// Reflect y: a down-right path through (x,y) corresponds to
			// an up-right path through (x, g2-1-y).
			through, total := pathsThrough(g1, g2, x, g2-1-y)
			want := through / total
			if got := mp.At(x, y); math.Abs(got-want) > 1e-9 {
				t.Fatalf("cell (%d,%d): got %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestAntiDiagonalMassTypeI(t *testing.T) {
	// Every monotone route visits exactly one cell per anti-diagonal
	// x+y = k, so the probabilities on each anti-diagonal sum to 1.
	chip := geom.Rect{X1: 0, Y1: 0, X2: 200, Y2: 200}
	for _, dims := range [][2]int{{2, 3}, {5, 5}, {12, 7}, {19, 19}} {
		g1, g2 := dims[0], dims[1]
		mp := NewMap(chip, 10)
		n := netlist.TwoPin{
			A: geom.Pt{X: 5, Y: 5},
			B: geom.Pt{X: float64(g1-1)*10 + 5, Y: float64(g2-1)*10 + 5},
		}
		mp.AddNet(n)
		for k := 0; k <= g1+g2-2; k++ {
			var sum float64
			for x := 0; x < g1; x++ {
				y := k - x
				if y < 0 || y >= g2 {
					continue
				}
				sum += mp.At(x, y)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("g=%dx%d diagonal %d: mass %g", g1, g2, k, sum)
			}
		}
	}
}

func TestDegenerateNets(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	mp := NewMap(chip, 10)
	// Horizontal line net: every covered cell has probability 1.
	mp.AddNet(netlist.TwoPin{A: geom.Pt{X: 5, Y: 45}, B: geom.Pt{X: 75, Y: 45}})
	for x := 0; x <= 7; x++ {
		if got := mp.At(x, 4); got != 1 {
			t.Errorf("line cell (%d,4) = %g", x, got)
		}
	}
	if mp.At(8, 4) != 0 || mp.At(3, 5) != 0 {
		t.Error("cells outside the line must be 0")
	}
	// Point net.
	mp2 := NewMap(chip, 10)
	mp2.AddNet(netlist.TwoPin{A: geom.Pt{X: 33, Y: 33}, B: geom.Pt{X: 33, Y: 33}})
	if mp2.At(3, 3) != 1 || mp2.Total() != 1 {
		t.Error("point net should hit exactly one cell")
	}
}

func TestNetTotalExpectedCells(t *testing.T) {
	// The expected number of crossed grids is g1+g2-1 for any net
	// (one cell per anti-diagonal).
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	mp := NewMap(chip, 10)
	mp.AddNet(netlist.TwoPin{A: geom.Pt{X: 5, Y: 5}, B: geom.Pt{X: 65, Y: 45}})
	g1, g2 := 7, 5
	if got := mp.Total(); math.Abs(got-float64(g1+g2-1)) > 1e-9 {
		t.Errorf("Total = %g, want %d", got, g1+g2-1)
	}
}

func TestPinsOutsideChipClamp(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	mp := NewMap(chip, 10)
	mp.AddNet(netlist.TwoPin{A: geom.Pt{X: -20, Y: -20}, B: geom.Pt{X: 150, Y: 150}})
	// Should clamp to corner cells and not panic; total mass is one
	// cell per diagonal.
	if got := mp.Total(); math.Abs(got-19) > 1e-9 {
		t.Errorf("Total = %g, want 19", got)
	}
}

func TestTopScore(t *testing.T) {
	mp := &Map{Cols: 10, Rows: 1, Cost: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 5}}
	// Top 10% of 10 cells = 1 cell.
	if got := mp.TopScore(0.10); got != 5 {
		t.Errorf("TopScore(0.10) = %g", got)
	}
	// Top 20% = 2 cells: (5+0)/2.
	if got := mp.TopScore(0.20); got != 2.5 {
		t.Errorf("TopScore(0.20) = %g", got)
	}
	// Fraction over 1 clamps to all cells.
	if got := mp.TopScore(5); got != 0.5 {
		t.Errorf("TopScore(5) = %g", got)
	}
}

func TestModelScoreAndEvaluate(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	nets := []netlist.TwoPin{
		{A: geom.Pt{X: 5, Y: 5}, B: geom.Pt{X: 95, Y: 95}},
		{A: geom.Pt{X: 5, Y: 95}, B: geom.Pt{X: 95, Y: 5}},
		{A: geom.Pt{X: 45, Y: 5}, B: geom.Pt{X: 45, Y: 95}},
	}
	m := Model{Pitch: 10}
	mp := m.Evaluate(chip, nets)
	if mp.Cols != 10 || mp.Rows != 10 {
		t.Fatalf("map %dx%d", mp.Cols, mp.Rows)
	}
	s := m.Score(chip, nets)
	if s <= 0 {
		t.Errorf("score = %g", s)
	}
	if s > mp.Max()+1e-9 {
		t.Errorf("score %g exceeds max %g", s, mp.Max())
	}
	// The crossing of the two diagonals plus the vertical line makes
	// the center column congested: max should be > 1.
	if mp.Max() <= 1 {
		t.Errorf("max = %g, expected > 1 at crossing", mp.Max())
	}
}

func TestScoreMonotoneInNets(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	m := Model{Pitch: 10}
	nets := []netlist.TwoPin{
		{A: geom.Pt{X: 5, Y: 5}, B: geom.Pt{X: 95, Y: 95}},
		{A: geom.Pt{X: 5, Y: 15}, B: geom.Pt{X: 95, Y: 85}},
	}
	s1 := m.Score(chip, nets[:1])
	s2 := m.Score(chip, nets)
	if s2 < s1 {
		t.Errorf("adding a net decreased the score: %g -> %g", s1, s2)
	}
}

func TestNonSquareChip(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 95, Y2: 43}
	mp := NewMap(chip, 10)
	if mp.Cols != 10 || mp.Rows != 5 {
		t.Errorf("map %dx%d, want 10x5", mp.Cols, mp.Rows)
	}
}
