// Package grid implements the fixed-size-grid probabilistic congestion
// model of Sham & Young (ISPD'02, the paper's reference [4], building
// on Lou et al., ISPD'01 [3]): the chip is divided into a uniform array
// of square grids; for every 2-pin net the probability that a uniformly
// random monotone shortest Manhattan route crosses each grid is
// computed from binomial path counts (the paper's Formulas 1–2); grid
// costs are the per-net probability sums; and the floorplan-level score
// is the average of the top-10% most congested grids.
//
// The same model instantiated with a very fine pitch (10×10 µm² in the
// paper) is the "judging model" used as the neutral referee in all
// three experiments.
package grid

import (
	"math"
	"sort"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/nmath"
)

// Model is a fixed-pitch probabilistic congestion estimator.
type Model struct {
	// Pitch is the square grid side in µm (e.g. 100, 50, or the
	// judging model's 10).
	Pitch float64
	// TopFraction is the fraction of most-congested grids averaged
	// into the score; the paper uses 0.10. Zero means 0.10.
	TopFraction float64
}

// Name identifies the model in experiment tables.
func (m Model) Name() string { return "fixed-grid" }

// Map is the congestion map produced by Evaluate: a Cols×Rows array of
// per-grid crossing-probability sums.
type Map struct {
	Chip       geom.Rect
	Pitch      float64
	Cols, Rows int
	Cost       []float64 // row-major: Cost[y*Cols+x]

	lf nmath.LogFact
}

// At returns the accumulated congestion cost of grid (x, y).
func (mp *Map) At(x, y int) float64 { return mp.Cost[y*mp.Cols+x] }

// NewMap allocates an empty congestion map over the chip.
func NewMap(chip geom.Rect, pitch float64) *Map {
	if pitch <= 0 {
		panic("grid: pitch must be positive")
	}
	cols := int(math.Ceil(chip.W() / pitch))
	rows := int(math.Ceil(chip.H() / pitch))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Map{
		Chip:  chip,
		Pitch: pitch,
		Cols:  cols,
		Rows:  rows,
		Cost:  make([]float64, cols*rows),
	}
}

// Evaluate builds the congestion map of the chip for the decomposed
// 2-pin nets.
func (m Model) Evaluate(chip geom.Rect, nets []netlist.TwoPin) *Map {
	mp := NewMap(chip, m.Pitch)
	for _, n := range nets {
		mp.AddNet(n)
	}
	return mp
}

// Score evaluates the chip-level congestion cost: the average of the
// top-10% most congested grids (paper §3).
func (m Model) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	frac := m.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	return m.Evaluate(chip, nets).TopScore(frac)
}

// cell returns the grid coordinates of the cell containing p, clamped
// to the map.
func (mp *Map) cell(p geom.Pt) (int, int) {
	x := int((p.X - mp.Chip.X1) / mp.Pitch)
	y := int((p.Y - mp.Chip.Y1) / mp.Pitch)
	if x < 0 {
		x = 0
	}
	if x >= mp.Cols {
		x = mp.Cols - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= mp.Rows {
		y = mp.Rows - 1
	}
	return x, y
}

// AddNet accumulates the crossing probabilities of one 2-pin net into
// the map, implementing the paper's Formula 2. A net whose routing
// range collapses to a point or a line crosses those grids with
// probability 1. For type II nets the computation reflects the y
// coordinate and reuses the type I formula; TestTypeIIMatchesPaper
// checks this against the paper's explicit type II expression.
func (mp *Map) AddNet(n netlist.TwoPin) {
	ax, ay := mp.cell(n.A)
	bx, by := mp.cell(n.B)
	gx1, gx2 := minInt(ax, bx), maxInt(ax, bx)
	gy1, gy2 := minInt(ay, by), maxInt(ay, by)
	g1 := gx2 - gx1 + 1
	g2 := gy2 - gy1 + 1

	if g1 == 1 || g2 == 1 {
		// Point or line routing range: every covered grid is crossed
		// by every route.
		for y := gy1; y <= gy2; y++ {
			for x := gx1; x <= gx2; x++ {
				mp.Cost[y*mp.Cols+x] += 1
			}
		}
		return
	}

	typeII := n.TypeII()
	mp.lf.Ensure(g1 + g2)
	logTotal := mp.lf.LogChoose(g1+g2-2, g2-1)
	for ly := 0; ly < g2; ly++ {
		// Local y in type I orientation: reflect for type II nets so
		// the source pin is at local (0, 0).
		ty := ly
		if typeII {
			ty = g2 - 1 - ly
		}
		row := (gy1 + ly) * mp.Cols
		// Formula 2 (type I): P(x,y) = C(x+y, y)·C(g1+g2-2-x-y, g2-1-y)
		// / C(g1+g2-2, g2-1). The row is scanned with the exact
		// recurrence
		//   P(x+1,y) = P(x,y) · (x+y+1)/(x+1) · (g1-1-x)/(g1+g2-2-x-y),
		// so only the first cell needs log-space binomials.
		p := math.Exp(mp.lf.LogChoose(g1+g2-2-ty, g2-1-ty) - logTotal)
		mp.Cost[row+gx1] += p
		for lx := 1; lx < g1; lx++ {
			x := lx - 1
			p *= float64(x+ty+1) / float64(x+1) *
				float64(g1-1-x) / float64(g1+g2-2-x-ty)
			mp.Cost[row+gx1+lx] += p
		}
	}
}

// TopScore returns the average cost of the ceil(frac·N) most congested
// grids.
func (mp *Map) TopScore(frac float64) float64 {
	if len(mp.Cost) == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(len(mp.Cost))))
	if k < 1 {
		k = 1
	}
	if k > len(mp.Cost) {
		k = len(mp.Cost)
	}
	tmp := append([]float64(nil), mp.Cost...)
	sort.Float64s(tmp)
	var sum float64
	for _, v := range tmp[len(tmp)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// Max returns the largest grid cost.
func (mp *Map) Max() float64 {
	var mx float64
	for _, v := range mp.Cost {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Total returns the sum of all grid costs. For a single net this is
// its expected number of crossed grids.
func (mp *Map) Total() float64 {
	var s float64
	for _, v := range mp.Cost {
		s += v
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
