package grid

import (
	"math"
	"testing"
	"testing/quick"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// enumerateLZ generates every L/Z route on an (mx+1)×(my+1) cell range
// and counts per-cell passes — the ground truth for lzRoutesThrough.
func enumerateLZ(mx, my int) [][]float64 {
	counts := make([][]float64, mx+1)
	for i := range counts {
		counts[i] = make([]float64, my+1)
	}
	addRoute := func(cells [][2]int) {
		seen := map[[2]int]bool{}
		for _, c := range cells {
			if !seen[c] {
				counts[c[0]][c[1]]++
				seen[c] = true
			}
		}
	}
	// L-route A: right along y=0, up along x=mx.
	var ra [][2]int
	for x := 0; x <= mx; x++ {
		ra = append(ra, [2]int{x, 0})
	}
	for y := 0; y <= my; y++ {
		ra = append(ra, [2]int{mx, y})
	}
	addRoute(ra)
	// L-route B: up along x=0, right along y=my.
	var rb [][2]int
	for y := 0; y <= my; y++ {
		rb = append(rb, [2]int{0, y})
	}
	for x := 0; x <= mx; x++ {
		rb = append(rb, [2]int{x, my})
	}
	addRoute(rb)
	// Vertical-jog Z at interior columns.
	for c := 1; c <= mx-1; c++ {
		var r [][2]int
		for x := 0; x <= c; x++ {
			r = append(r, [2]int{x, 0})
		}
		for y := 0; y <= my; y++ {
			r = append(r, [2]int{c, y})
		}
		for x := c; x <= mx; x++ {
			r = append(r, [2]int{x, my})
		}
		addRoute(r)
	}
	// Horizontal-jog Z at interior rows.
	for rr := 1; rr <= my-1; rr++ {
		var r [][2]int
		for y := 0; y <= rr; y++ {
			r = append(r, [2]int{0, y})
		}
		for x := 0; x <= mx; x++ {
			r = append(r, [2]int{x, rr})
		}
		for y := rr; y <= my; y++ {
			r = append(r, [2]int{mx, y})
		}
		addRoute(r)
	}
	return counts
}

func TestLZRoutesThroughMatchesEnumeration(t *testing.T) {
	for mx := 1; mx <= 8; mx++ {
		for my := 1; my <= 8; my++ {
			want := enumerateLZ(mx, my)
			for x := 0; x <= mx; x++ {
				for y := 0; y <= my; y++ {
					got := lzRoutesThrough(mx, my, x, y)
					if got != want[x][y] {
						t.Fatalf("m=%dx%d cell (%d,%d): got %g, want %g",
							mx, my, x, y, got, want[x][y])
					}
				}
			}
		}
	}
}

func TestLZPinCellsAlwaysCovered(t *testing.T) {
	f := func(a, b uint8) bool {
		mx := int(a%15) + 1
		my := int(b%15) + 1
		total := float64(mx + my)
		// Source, sink and the two L corners lie on every route count
		// correctly: pins are on all routes.
		return lzRoutesThrough(mx, my, 0, 0) == total &&
			lzRoutesThrough(mx, my, mx, my) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddNetLZTypeII(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	mpI := NewMap(chip, 10)
	mpI.AddNetLZ(netlist.TwoPin{A: geom.Pt{X: 5, Y: 5}, B: geom.Pt{X: 65, Y: 45}})
	mpII := NewMap(chip, 10)
	mpII.AddNetLZ(netlist.TwoPin{A: geom.Pt{X: 5, Y: 45}, B: geom.Pt{X: 65, Y: 5}})
	// Type II is the vertical mirror of type I within the range rows
	// 0..4.
	for x := 0; x < 7; x++ {
		for y := 0; y < 5; y++ {
			a := mpI.At(x, y)
			b := mpII.At(x, 4-y)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("mirror mismatch at (%d,%d): %g vs %g", x, y, a, b)
			}
		}
	}
}

func TestAddNetLZDegenerate(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	mp := NewMap(chip, 10)
	mp.AddNetLZ(netlist.TwoPin{A: geom.Pt{X: 5, Y: 45}, B: geom.Pt{X: 75, Y: 45}})
	for x := 0; x <= 7; x++ {
		if mp.At(x, 4) != 1 {
			t.Errorf("line cell (%d,4) = %g", x, mp.At(x, 4))
		}
	}
}

func TestLZModelScore(t *testing.T) {
	chip := geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 100}
	nets := []netlist.TwoPin{
		{A: geom.Pt{X: 5, Y: 5}, B: geom.Pt{X: 95, Y: 95}},
		{A: geom.Pt{X: 5, Y: 95}, B: geom.Pt{X: 95, Y: 5}},
	}
	m := LZModel{Pitch: 10}
	if s := m.Score(chip, nets); s <= 0 {
		t.Errorf("score = %g", s)
	}
	if m.Name() != "fixed-grid-lz" {
		t.Error("bad name")
	}
}

func TestLZVsMonotoneMassDiffer(t *testing.T) {
	// Both models conserve per-net total probability along the
	// boundary rows differently: the LZ model concentrates probability
	// on the range boundary, the monotone model spreads it over the
	// interior diagonal band. Check the defining signature: interior
	// cells carry less probability under LZ than under monotone for a
	// large square range.
	chip := geom.Rect{X1: 0, Y1: 0, X2: 200, Y2: 200}
	net := netlist.TwoPin{A: geom.Pt{X: 5, Y: 5}, B: geom.Pt{X: 195, Y: 195}}
	mono := NewMap(chip, 10)
	mono.AddNet(net)
	lz := NewMap(chip, 10)
	lz.AddNetLZ(net)
	// Center cell of the 20x20 range.
	cx, cy := 10, 10
	if lz.At(cx, cy) >= mono.At(cx, cy) {
		t.Errorf("interior: lz %g should be below monotone %g", lz.At(cx, cy), mono.At(cx, cy))
	}
	// Boundary row y=0 away from the pins: more probable under LZ.
	if lz.At(10, 0) <= mono.At(10, 0) {
		t.Errorf("boundary: lz %g should exceed monotone %g", lz.At(10, 0), mono.At(10, 0))
	}
}
