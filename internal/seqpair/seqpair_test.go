package seqpair

import (
	"math"
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

func mods(dims ...[2]float64) []netlist.Module {
	out := make([]netlist.Module, len(dims))
	for i, d := range dims {
		out[i] = netlist.Module{Name: string(rune('a' + i)), W: d[0], H: d[1]}
	}
	return out
}

func checkNoOverlap(t *testing.T, pl *netlist.Placement) {
	t.Helper()
	shrink := func(r geom.Rect) geom.Rect {
		const eps = 1e-9
		return geom.Rect{X1: r.X1 + eps, Y1: r.Y1 + eps, X2: r.X2 - eps, Y2: r.Y2 - eps}
	}
	for i := range pl.Rects {
		if !pl.Chip.ContainsRect(pl.Rects[i]) {
			t.Fatalf("module %d rect %v outside chip %v", i, pl.Rects[i], pl.Chip)
		}
		for j := i + 1; j < len(pl.Rects); j++ {
			if shrink(pl.Rects[i]).Overlaps(shrink(pl.Rects[j])) {
				t.Fatalf("modules %d and %d overlap: %v vs %v", i, j, pl.Rects[i], pl.Rects[j])
			}
		}
	}
}

func TestIdentityPairStacksHorizontally(t *testing.T) {
	// Identity pair: every earlier module is left of every later one.
	ms := mods([2]float64{2, 5}, [2]float64{3, 4}, [2]float64{1, 1})
	p := NewPacker(ms)
	pl, err := p.Pack(New(3))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chip.W() != 6 || pl.Chip.H() != 5 {
		t.Errorf("chip = %v", pl.Chip)
	}
	if pl.Rects[1].X1 != 2 || pl.Rects[2].X1 != 5 {
		t.Errorf("placements %v", pl.Rects)
	}
	checkNoOverlap(t, pl)
}

func TestReversedP1StacksVertically(t *testing.T) {
	// Γ⁺ reversed vs Γ⁻: every earlier Γ⁻ module is below the next.
	ms := mods([2]float64{2, 5}, [2]float64{3, 4})
	sp := New(2)
	sp.P1 = []int{1, 0}
	p := NewPacker(ms)
	pl, err := p.Pack(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Module 0 below module 1? a=0 precedes in Γ⁻, follows in Γ⁺ →
	// 0 below 1.
	if pl.Rects[1].Y1 != 5 {
		t.Errorf("module 1 at %v, want y=5", pl.Rects[1])
	}
	if pl.Chip.W() != 3 || pl.Chip.H() != 9 {
		t.Errorf("chip = %v", pl.Chip)
	}
	checkNoOverlap(t, pl)
}

func TestRandomPairsNeverOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 5, 12, 33} {
		dims := make([][2]float64, n)
		for i := range dims {
			dims[i] = [2]float64{1 + rng.Float64()*9, 1 + rng.Float64()*9}
		}
		ms := make([]netlist.Module, n)
		for i, d := range dims {
			ms[i] = netlist.Module{Name: "m", W: d[0], H: d[1]}
		}
		p := NewPacker(ms)
		sp := New(n)
		for iter := 0; iter < 300; iter++ {
			sp.Perturb(rng, true)
			if err := sp.Validate(); err != nil {
				t.Fatalf("n=%d iter=%d: %v", n, iter, err)
			}
			pl, err := p.Pack(sp)
			if err != nil {
				t.Fatal(err)
			}
			checkNoOverlap(t, pl)
			// Area lower bound: sum of module areas.
			var sum float64
			for _, m := range ms {
				sum += m.Area()
			}
			if pl.Chip.Area() < sum-1e-6 {
				t.Fatalf("chip area %g below module sum %g", pl.Chip.Area(), sum)
			}
		}
	}
}

func TestRotationChangesFootprint(t *testing.T) {
	ms := mods([2]float64{10, 2})
	sp := New(1)
	sp.Rot[0] = true
	p := NewPacker(ms)
	pl, err := p.Pack(sp)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Rects[0].W() != 2 || pl.Rects[0].H() != 10 {
		t.Errorf("rotated module = %v", pl.Rects[0])
	}
	if !pl.Rotated[0] {
		t.Error("rotation flag not propagated")
	}
}

func TestPadNotRotated(t *testing.T) {
	ms := mods([2]float64{10, 2})
	ms[0].Pad = true
	sp := New(1)
	sp.Rot[0] = true
	pl, err := NewPacker(ms).Pack(sp)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Rotated[0] || pl.Rects[0].W() != 10 {
		t.Errorf("pad was rotated: %v", pl.Rects[0])
	}
}

func TestValidateRejects(t *testing.T) {
	sp := New(3)
	sp.P1[0] = 5
	if err := sp.Validate(); err == nil {
		t.Error("out-of-range accepted")
	}
	sp2 := New(3)
	sp2.P2 = sp2.P2[:2]
	if err := sp2.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	sp3 := New(3)
	sp3.P1[0], sp3.P1[1] = 1, 1
	if err := sp3.Validate(); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	sp := New(4)
	c := sp.Clone()
	c.P1[0], c.P1[1] = c.P1[1], c.P1[0]
	c.Rot[2] = true
	if sp.P1[0] != 0 || sp.Rot[2] {
		t.Error("clone aliases the original")
	}
}

func TestPackerMismatch(t *testing.T) {
	p := NewPacker(mods([2]float64{1, 1}))
	if _, err := p.Pack(New(2)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestSeqPairCanBeatSlicingShape(t *testing.T) {
	// A classic non-slicing "pinwheel" packing of five modules is
	// representable: verify the representation can reach a tight area
	// for a pinwheel-friendly instance by random search.
	ms := mods(
		[2]float64{4, 2}, [2]float64{2, 4}, [2]float64{4, 2},
		[2]float64{2, 4}, [2]float64{2, 2},
	)
	var sum float64
	for _, m := range ms {
		sum += m.Area()
	}
	p := NewPacker(ms)
	rng := rand.New(rand.NewSource(17))
	sp := New(5)
	best := math.Inf(1)
	for i := 0; i < 4000; i++ {
		sp.Perturb(rng, true)
		pl, err := p.Pack(sp)
		if err != nil {
			t.Fatal(err)
		}
		if a := pl.Chip.Area(); a < best {
			best = a
		}
	}
	// The pinwheel packs into 6x6 = 36 = module-area sum exactly;
	// random search should get within 20%.
	if best > sum*1.2 {
		t.Errorf("best area %g too far above the %g lower bound", best, sum)
	}
}
