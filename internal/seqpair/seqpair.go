// Package seqpair implements the sequence-pair floorplan
// representation (Murata et al., ICCAD'95): a pair of module
// permutations (Γ⁺, Γ⁻) encodes the relative placement of arbitrary
// (non-slicing) packings — module a is left of b when a precedes b in
// both sequences, and below b when a follows b in Γ⁺ but precedes it
// in Γ⁻. Packing evaluates longest paths in the implied horizontal and
// vertical constraint graphs.
//
// The paper's floorplanner is slicing (Wong–Liu); this package extends
// the reproduction with the other classic representation so the
// congestion models can be exercised on general packings too.
package seqpair

import (
	"fmt"
	"math/rand"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// Pair is a sequence-pair state: two permutations of the module
// indices plus per-module rotation flags.
type Pair struct {
	P1, P2 []int  // Γ⁺ and Γ⁻
	Rot    []bool // 90° rotation per module
}

// New returns the identity sequence pair for n modules.
func New(n int) *Pair {
	if n < 1 {
		panic("seqpair: need at least one module")
	}
	p := &Pair{P1: make([]int, n), P2: make([]int, n), Rot: make([]bool, n)}
	for i := 0; i < n; i++ {
		p.P1[i] = i
		p.P2[i] = i
	}
	return p
}

// Clone returns a deep copy.
func (p *Pair) Clone() *Pair {
	return &Pair{
		P1:  append([]int(nil), p.P1...),
		P2:  append([]int(nil), p.P2...),
		Rot: append([]bool(nil), p.Rot...),
	}
}

// Validate checks that both sequences are permutations of 0..n-1.
func (p *Pair) Validate() error {
	n := len(p.P1)
	if len(p.P2) != n || len(p.Rot) != n {
		return fmt.Errorf("seqpair: length mismatch %d/%d/%d", len(p.P1), len(p.P2), len(p.Rot))
	}
	for _, s := range [][]int{p.P1, p.P2} {
		seen := make([]bool, n)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return fmt.Errorf("seqpair: not a permutation: %v", s)
			}
			seen[v] = true
		}
	}
	return nil
}

// Perturb applies one random move: swap two modules in Γ⁺ only, swap
// in both sequences, or toggle a rotation.
func (p *Pair) Perturb(rng *rand.Rand, allowRotate bool) {
	n := len(p.P1)
	if n < 2 {
		return
	}
	move := rng.Intn(3)
	if move == 2 && !allowRotate {
		move = rng.Intn(2)
	}
	switch move {
	case 0: // swap in Γ⁺
		i, j := rng.Intn(n), rng.Intn(n)
		p.P1[i], p.P1[j] = p.P1[j], p.P1[i]
	case 1: // swap the same two modules in both sequences
		a, b := rng.Intn(n), rng.Intn(n)
		swapVal(p.P1, a, b)
		swapVal(p.P2, a, b)
	default: // rotate
		i := rng.Intn(n)
		p.Rot[i] = !p.Rot[i]
	}
}

// swapVal exchanges the positions of values a and b within the
// permutation.
func swapVal(perm []int, a, b int) {
	var ia, ib int
	for i, v := range perm {
		if v == a {
			ia = i
		}
		if v == b {
			ib = i
		}
	}
	perm[ia], perm[ib] = perm[ib], perm[ia]
}

// Packer evaluates sequence pairs for a fixed module list. Soft
// modules are packed at their nominal dimensions (aspect optimization
// under sequence-pair constraints needs an LP and is out of scope);
// use the slicing representation for soft-module floorplanning.
type Packer struct {
	mods []netlist.Module
	// match[i] is the Γ⁻ position of the module at Γ⁺ position i.
	posP1, posP2 []int
	xs, ys       []float64
}

// NewPacker returns a Packer for the module list.
func NewPacker(mods []netlist.Module) *Packer {
	n := len(mods)
	return &Packer{
		mods:  mods,
		posP1: make([]int, n),
		posP2: make([]int, n),
		xs:    make([]float64, n),
		ys:    make([]float64, n),
	}
}

// Pack computes the placement implied by the pair: module b goes right
// of a when a precedes b in both sequences, above when a follows in Γ⁺
// but precedes in Γ⁻. Positions are the longest-path distances in the
// constraint graphs, evaluated in Γ⁻ order (a topological order for
// both relations). O(n²).
func (p *Packer) Pack(sp *Pair) (*netlist.Placement, error) {
	n := len(p.mods)
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if len(sp.P1) != n {
		return nil, fmt.Errorf("seqpair: pair over %d modules, packer has %d", len(sp.P1), n)
	}
	for i, v := range sp.P1 {
		p.posP1[v] = i
	}
	for i, v := range sp.P2 {
		p.posP2[v] = i
	}
	dims := func(m int) (w, h float64) {
		w, h = p.mods[m].W, p.mods[m].H
		if sp.Rot[m] && !p.mods[m].Pad {
			w, h = h, w
		}
		return
	}

	for i := range p.xs {
		p.xs[i], p.ys[i] = 0, 0
	}
	// Γ⁻ order is topological for both "left of" and "below".
	for i := 0; i < n; i++ {
		b := sp.P2[i]
		for j := 0; j < i; j++ {
			a := sp.P2[j]
			wa, ha := dims(a)
			if p.posP1[a] < p.posP1[b] {
				// a left of b
				if x := p.xs[a] + wa; x > p.xs[b] {
					p.xs[b] = x
				}
			} else {
				// a below b (posP1[a] > posP1[b], posP2[a] < posP2[b])
				if y := p.ys[a] + ha; y > p.ys[b] {
					p.ys[b] = y
				}
			}
		}
	}

	pl := &netlist.Placement{
		Rects:   make([]geom.Rect, n),
		Rotated: make([]bool, n),
	}
	var maxX, maxY float64
	for m := 0; m < n; m++ {
		w, h := dims(m)
		pl.Rects[m] = geom.Rect{X1: p.xs[m], Y1: p.ys[m], X2: p.xs[m] + w, Y2: p.ys[m] + h}
		pl.Rotated[m] = sp.Rot[m] && !p.mods[m].Pad
		if pl.Rects[m].X2 > maxX {
			maxX = pl.Rects[m].X2
		}
		if pl.Rects[m].Y2 > maxY {
			maxY = pl.Rects[m].Y2
		}
	}
	pl.Chip = geom.Rect{X1: 0, Y1: 0, X2: maxX, Y2: maxY}
	return pl, nil
}
