// Package mst decomposes multi-pin nets into two-pin nets using a
// Manhattan-distance minimum spanning tree, as the paper does for the
// interconnection-related objectives ("we decompose the multi-pin nets
// into several 2-pin nets by minimum spanning tree").
package mst

import (
	"math"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// Tree computes a minimum spanning tree over pts under the Manhattan
// metric using Prim's algorithm (O(k²) — net degrees are small) and
// returns the tree edges as index pairs. For fewer than two points it
// returns nil.
func Tree(pts []geom.Pt) [][2]int {
	k := len(pts)
	if k < 2 {
		return nil
	}
	const unreached = math.MaxFloat64
	dist := make([]float64, k)
	parent := make([]int, k)
	inTree := make([]bool, k)
	for i := range dist {
		dist[i] = unreached
		parent[i] = -1
	}
	dist[0] = 0
	edges := make([][2]int, 0, k-1)
	for iter := 0; iter < k; iter++ {
		// Pick the closest unreached point.
		best, bestD := -1, unreached
		for i := 0; i < k; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		if parent[best] >= 0 {
			edges = append(edges, [2]int{parent[best], best})
		}
		for i := 0; i < k; i++ {
			if inTree[i] {
				continue
			}
			if d := pts[best].Manhattan(pts[i]); d < dist[i] {
				dist[i] = d
				parent[i] = best
			}
		}
	}
	return edges
}

// Weight returns the total Manhattan length of the tree edges over pts.
func Weight(pts []geom.Pt, edges [][2]int) float64 {
	var w float64
	for _, e := range edges {
		w += pts[e[0]].Manhattan(pts[e[1]])
	}
	return w
}

// Decompose converts every net of the circuit into two-pin nets under
// the given placement: pin positions are resolved through the
// placement (optionally pre-snapped by the caller), each multi-pin net
// is spanned by its Manhattan MST, and each tree edge becomes one
// two-pin net. Degenerate edges (coincident pins) are kept — they
// contribute zero wirelength and a point routing range.
func Decompose(c *netlist.Circuit, pl *netlist.Placement, snap func(geom.Pt) geom.Pt) []netlist.TwoPin {
	var out []netlist.TwoPin
	var pts []geom.Pt
	for _, n := range c.Nets {
		pts = pts[:0]
		for _, p := range n.Pins {
			pos := pl.PinPosition(p)
			if snap != nil {
				pos = snap(pos)
			}
			pts = append(pts, pos)
		}
		for _, e := range Tree(pts) {
			out = append(out, netlist.TwoPin{A: pts[e[0]], B: pts[e[1]]})
		}
	}
	return out
}

// TotalWirelength sums the Manhattan lengths of the two-pin nets.
func TotalWirelength(nets []netlist.TwoPin) float64 {
	var w float64
	for _, n := range nets {
		w += n.Manhattan()
	}
	return w
}
