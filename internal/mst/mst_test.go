package mst

import (
	"math"
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

func TestTreeTrivial(t *testing.T) {
	if Tree(nil) != nil {
		t.Error("empty input should give nil")
	}
	if Tree([]geom.Pt{{X: 1, Y: 1}}) != nil {
		t.Error("single point should give nil")
	}
	e := Tree([]geom.Pt{{X: 0, Y: 0}, {X: 3, Y: 4}})
	if len(e) != 1 {
		t.Fatalf("edges = %v", e)
	}
	if w := Weight([]geom.Pt{{X: 0, Y: 0}, {X: 3, Y: 4}}, e); w != 7 {
		t.Errorf("weight = %g", w)
	}
}

func TestTreeSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(10)
		pts := make([]geom.Pt, k)
		for i := range pts {
			pts[i] = geom.Pt{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		edges := Tree(pts)
		if len(edges) != k-1 {
			t.Fatalf("got %d edges for %d points", len(edges), k)
		}
		// Union-find connectivity check.
		parent := make([]int, k)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		for _, e := range edges {
			parent[find(e[0])] = find(e[1])
		}
		root := find(0)
		for i := 1; i < k; i++ {
			if find(i) != root {
				t.Fatalf("tree does not span point %d", i)
			}
		}
	}
}

// bruteMST enumerates all spanning trees of up to 7 points via Prüfer
// sequences and returns the minimal weight.
func bruteMST(pts []geom.Pt) float64 {
	k := len(pts)
	if k < 2 {
		return 0
	}
	if k == 2 {
		return pts[0].Manhattan(pts[1])
	}
	best := math.Inf(1)
	seqLen := k - 2
	seq := make([]int, seqLen)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == seqLen {
			// Decode the Prüfer sequence.
			deg := make([]int, k)
			for i := range deg {
				deg[i] = 1
			}
			for _, v := range seq {
				deg[v]++
			}
			var w float64
			s := append([]int(nil), seq...)
			used := make([]bool, k)
			for _, v := range s {
				for leaf := 0; leaf < k; leaf++ {
					if deg[leaf] == 1 && !used[leaf] {
						w += pts[leaf].Manhattan(pts[v])
						used[leaf] = true
						deg[v]--
						break
					}
				}
			}
			// Connect the last two remaining nodes.
			last := []int{}
			for i := 0; i < k; i++ {
				if !used[i] {
					last = append(last, i)
				}
			}
			w += pts[last[0]].Manhattan(pts[last[1]])
			if w < best {
				best = w
			}
			return
		}
		for v := 0; v < k; v++ {
			seq[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return best
}

func TestTreeIsMinimalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		k := 3 + rng.Intn(4) // 3..6 points
		pts := make([]geom.Pt, k)
		for i := range pts {
			pts[i] = geom.Pt{X: float64(rng.Intn(50)), Y: float64(rng.Intn(50))}
		}
		got := Weight(pts, Tree(pts))
		want := bruteMST(pts)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("MST weight %g, brute force %g for %v", got, want, pts)
		}
	}
}

func TestTreeCoincidentPoints(t *testing.T) {
	pts := []geom.Pt{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}}
	edges := Tree(pts)
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	if Weight(pts, edges) != 0 {
		t.Error("coincident points should give zero weight")
	}
}

func TestDecompose(t *testing.T) {
	c := &netlist.Circuit{
		Name: "t",
		Modules: []netlist.Module{
			{Name: "a", W: 10, H: 10},
			{Name: "b", W: 10, H: 10},
			{Name: "c", W: 10, H: 10},
		},
		Nets: []netlist.Net{
			{Name: "n1", Pins: []netlist.PinRef{
				{Module: 0, FX: 0.5, FY: 0.5},
				{Module: 1, FX: 0.5, FY: 0.5},
				{Module: 2, FX: 0.5, FY: 0.5},
			}},
			{Name: "n2", Pins: []netlist.PinRef{
				{Module: 0, FX: 0, FY: 0},
				{Module: 1, FX: 1, FY: 1},
			}},
		},
	}
	pl := &netlist.Placement{
		Rects: []geom.Rect{
			{X1: 0, Y1: 0, X2: 10, Y2: 10},
			{X1: 10, Y1: 0, X2: 20, Y2: 10},
			{X1: 0, Y1: 10, X2: 10, Y2: 20},
		},
		Rotated: make([]bool, 3),
		Chip:    geom.Rect{X1: 0, Y1: 0, X2: 20, Y2: 20},
	}
	two := Decompose(c, pl, nil)
	// 3-pin net → 2 edges, 2-pin net → 1 edge.
	if len(two) != 3 {
		t.Fatalf("got %d two-pin nets", len(two))
	}
	// n1's MST over centers (5,5),(15,5),(5,15): edges 10+10.
	w := TotalWirelength(two[:2])
	if w != 20 {
		t.Errorf("n1 wirelength = %g, want 20", w)
	}
	// n2 connects (0,0) to (20,10).
	if two[2].Manhattan() != 30 {
		t.Errorf("n2 length = %g, want 30", two[2].Manhattan())
	}
}

func TestDecomposeSnap(t *testing.T) {
	c := &netlist.Circuit{
		Name:    "t",
		Modules: []netlist.Module{{Name: "a", W: 10, H: 10}, {Name: "b", W: 10, H: 10}},
		Nets: []netlist.Net{{Name: "n", Pins: []netlist.PinRef{
			{Module: 0, FX: 0.33, FY: 0.41},
			{Module: 1, FX: 0.77, FY: 0.6},
		}}},
	}
	pl := &netlist.Placement{
		Rects:   []geom.Rect{{X1: 0, Y1: 0, X2: 10, Y2: 10}, {X1: 10, Y1: 0, X2: 20, Y2: 10}},
		Rotated: make([]bool, 2),
		Chip:    geom.Rect{X1: 0, Y1: 0, X2: 20, Y2: 10},
	}
	snap := func(p geom.Pt) geom.Pt {
		return geom.Pt{X: math.Round(p.X/5) * 5, Y: math.Round(p.Y/5) * 5}
	}
	two := Decompose(c, pl, snap)
	if len(two) != 1 {
		t.Fatalf("got %d nets", len(two))
	}
	for _, p := range []geom.Pt{two[0].A, two[0].B} {
		if math.Mod(p.X, 5) != 0 || math.Mod(p.Y, 5) != 0 {
			t.Errorf("pin %v not snapped", p)
		}
	}
}

func TestDecomposeRotatedPin(t *testing.T) {
	c := &netlist.Circuit{
		Name:    "t",
		Modules: []netlist.Module{{Name: "a", W: 10, H: 20}, {Name: "b", W: 5, H: 5}},
		Nets: []netlist.Net{{Name: "n", Pins: []netlist.PinRef{
			{Module: 0, FX: 1, FY: 0}, // lower-right corner of unrotated cell
			{Module: 1, FX: 0, FY: 0},
		}}},
	}
	pl := &netlist.Placement{
		// Module 0 placed rotated: occupies 20x10.
		Rects:   []geom.Rect{{X1: 0, Y1: 0, X2: 20, Y2: 10}, {X1: 20, Y1: 0, X2: 25, Y2: 5}},
		Rotated: []bool{true, false},
		Chip:    geom.Rect{X1: 0, Y1: 0, X2: 25, Y2: 10},
	}
	two := Decompose(c, pl, nil)
	// 90° CCW rotation maps (fx,fy)=(1,0) to (fy,1-fx)=(0,0): the pin
	// lands at the rotated module's lower-left corner.
	got := two[0].A
	want := geom.Pt{X: 0, Y: 0}
	if got != want {
		t.Errorf("rotated pin at %v, want %v", got, want)
	}
}
