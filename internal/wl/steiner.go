package wl

import (
	"sort"

	"irgrid/internal/geom"
	"irgrid/internal/mst"
)

// SteinerMST estimates Steiner-tree wirelength by embedding every
// Manhattan-MST edge as an L-shaped route and letting embedded
// segments share track: each edge picks whichever of its two corners
// minimizes the running union length. The result is a connected
// rectilinear tree, so
//
//	HPWL(pins) <= SteinerMST(pins) <= MST(pins)
//
// (lower bound: any connected tree spans the bounding box in both
// dimensions; upper bound: sharing can only remove length). It is the
// standard cheap rectilinear-Steiner improvement over plain MST
// wirelength.
func SteinerMST(pins []geom.Pt) float64 {
	if len(pins) < 2 {
		return 0
	}
	edges := mst.Tree(pins)
	var u segUnion
	for _, e := range edges {
		a, b := pins[e[0]], pins[e[1]]
		if a.X == b.X || a.Y == b.Y {
			u.addEdge(a, b, geom.Pt{}) // straight edge, corner unused
			continue
		}
		// Candidate corners: (b.X, a.Y) and (a.X, b.Y).
		c1 := geom.Pt{X: b.X, Y: a.Y}
		c2 := geom.Pt{X: a.X, Y: b.Y}
		l1 := u.lengthWith(a, b, c1)
		l2 := u.lengthWith(a, b, c2)
		if l1 <= l2 {
			u.addEdge(a, b, c1)
		} else {
			u.addEdge(a, b, c2)
		}
	}
	return u.length()
}

// segUnion accumulates horizontal and vertical segments and measures
// the length of their union.
type segUnion struct {
	h []seg // fixed = y, spans x
	v []seg // fixed = x, spans y
}

type seg struct {
	fixed, lo, hi float64
}

// addEdge embeds edge a-b through corner c (ignored when the edge is
// axis-parallel).
func (u *segUnion) addEdge(a, b, c geom.Pt) {
	segs := edgeSegs(a, b, c)
	u.h = append(u.h, segs.h...)
	u.v = append(u.v, segs.v...)
}

// lengthWith returns the union length if edge a-b were embedded via
// corner c.
func (u *segUnion) lengthWith(a, b, c geom.Pt) float64 {
	segs := edgeSegs(a, b, c)
	trial := segUnion{
		h: append(append([]seg(nil), u.h...), segs.h...),
		v: append(append([]seg(nil), u.v...), segs.v...),
	}
	return trial.length()
}

type segSet struct{ h, v []seg }

// edgeSegs decomposes edge a-b routed through corner c into axis
// segments.
func edgeSegs(a, b, c geom.Pt) segSet {
	var out segSet
	add := func(p, q geom.Pt) {
		switch {
		case p.Y == q.Y && p.X != q.X:
			lo, hi := p.X, q.X
			if lo > hi {
				lo, hi = hi, lo
			}
			out.h = append(out.h, seg{fixed: p.Y, lo: lo, hi: hi})
		case p.X == q.X && p.Y != q.Y:
			lo, hi := p.Y, q.Y
			if lo > hi {
				lo, hi = hi, lo
			}
			out.v = append(out.v, seg{fixed: p.X, lo: lo, hi: hi})
		}
	}
	if a.X == b.X || a.Y == b.Y {
		add(a, b)
		return out
	}
	add(a, c)
	add(c, b)
	return out
}

// length measures the union, merging co-linear overlapping spans.
func (u *segUnion) length() float64 {
	return mergeLen(u.h) + mergeLen(u.v)
}

func mergeLen(ss []seg) float64 {
	if len(ss) == 0 {
		return 0
	}
	sorted := append([]seg(nil), ss...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].fixed != sorted[j].fixed {
			return sorted[i].fixed < sorted[j].fixed
		}
		return sorted[i].lo < sorted[j].lo
	})
	var total float64
	curFixed := sorted[0].fixed
	curLo, curHi := sorted[0].lo, sorted[0].hi
	for _, s := range sorted[1:] {
		if s.fixed != curFixed || s.lo > curHi {
			total += curHi - curLo
			curFixed, curLo, curHi = s.fixed, s.lo, s.hi
			continue
		}
		if s.hi > curHi {
			curHi = s.hi
		}
	}
	return total + (curHi - curLo)
}
