package wl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"irgrid/internal/geom"
)

func pins(coords ...float64) []geom.Pt {
	out := make([]geom.Pt, 0, len(coords)/2)
	for i := 0; i+1 < len(coords); i += 2 {
		out = append(out, geom.Pt{X: coords[i], Y: coords[i+1]})
	}
	return out
}

func TestTwoPinAllModelsAgree(t *testing.T) {
	p := pins(0, 0, 30, 40)
	want := 70.0
	for _, m := range []Model{ModelMST, ModelHPWL, ModelStar, ModelClique} {
		if got := m.Eval(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %g, want %g", m, got, want)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	for _, m := range []Model{ModelMST, ModelHPWL, ModelStar, ModelClique} {
		if m.Eval(nil) != 0 || m.Eval(pins(5, 5)) != 0 {
			t.Errorf("%s should be 0 for <2 pins", m)
		}
	}
}

func TestHPWL(t *testing.T) {
	// L-shaped 3-pin net: bbox 10x20.
	if got := HPWL(pins(0, 0, 10, 0, 10, 20)); got != 30 {
		t.Errorf("HPWL = %g", got)
	}
}

func TestStarCentroid(t *testing.T) {
	// 4 pins at square corners, centroid at center: 4 × (5+5) = 40.
	if got := Star(pins(0, 0, 10, 0, 0, 10, 10, 10)); math.Abs(got-40) > 1e-9 {
		t.Errorf("Star = %g", got)
	}
}

func TestCliqueScaling(t *testing.T) {
	// 3 collinear pins 0,10,20: pairwise 10+20+10=40, ×2/3.
	if got := Clique(pins(0, 0, 10, 0, 20, 0)); math.Abs(got-80.0/3) > 1e-9 {
		t.Errorf("Clique = %g", got)
	}
}

func TestOrderingProperties(t *testing.T) {
	// For any pin set: HPWL <= MST (HPWL is a Steiner lower bound and
	// MST >= Steiner).
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		var ps []geom.Pt
		for i := 0; i+1 < len(raw); i += 2 {
			ps = append(ps, geom.Pt{X: float64(raw[i] % 1000), Y: float64(raw[i+1] % 1000)})
		}
		hp := HPWL(ps)
		ms := MST(ps)
		return hp <= ms+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMSTMatchesPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var ps []geom.Pt
		for i := 0; i < 2+rng.Intn(6); i++ {
			ps = append(ps, geom.Pt{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		}
		if MST(ps) < HPWL(ps)-1e-9 {
			t.Fatalf("MST %g below HPWL %g for %v", MST(ps), HPWL(ps), ps)
		}
	}
}

func TestUnknownModelFallsBackToMST(t *testing.T) {
	p := pins(0, 0, 10, 0, 10, 20)
	if Model("bogus").Eval(p) != MST(p) {
		t.Error("unknown model should evaluate as MST")
	}
}

func TestSteinerMSTBasics(t *testing.T) {
	// Two pins: Steiner = MST = Manhattan distance.
	p := pins(0, 0, 30, 40)
	if got := SteinerMST(p); got != 70 {
		t.Errorf("2-pin steiner = %g", got)
	}
	if SteinerMST(nil) != 0 || SteinerMST(pins(3, 3)) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestSteinerSharingWins(t *testing.T) {
	// Three pins in an L: (0,0), (10,0), (0,10) plus (10,10).
	// MST: 3 edges of length 10+10+10 = 30. A Steiner tree of the four
	// corners also needs 30 — use a case with real sharing instead:
	// pins (0,0), (10,5), (0,10): MST edges (0,0)-(10,5) and
	// (10,5)-(0,10), each length 15 → 30; L-embeddings can share the
	// vertical track at x=0 or x=10... choose a sharper case:
	// (0,0), (10,0), (5,5): MST = (0,0)-(10,0)? dist 10; (5,5) to
	// nearer: 10. Total 20. Steiner: trunk y=0 plus stub x=5: 10+5=15.
	p := pins(0, 0, 10, 0, 5, 5)
	st := SteinerMST(p)
	ms := MST(p)
	if st > ms+1e-9 {
		t.Errorf("steiner %g exceeds MST %g", st, ms)
	}
	if st < HPWL(p)-1e-9 {
		t.Errorf("steiner %g below HPWL %g", st, HPWL(p))
	}
}

func TestSteinerOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 6 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		var ps []geom.Pt
		for i := 0; i+1 < len(raw); i += 2 {
			ps = append(ps, geom.Pt{X: float64(raw[i] % 500), Y: float64(raw[i+1] % 500)})
		}
		st := SteinerMST(ps)
		return HPWL(ps)-1e-9 <= st && st <= MST(ps)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSteinerModelDispatch(t *testing.T) {
	p := pins(0, 0, 10, 0, 5, 5)
	if Model(ModelSteiner).Eval(p) != SteinerMST(p) {
		t.Error("dispatch broken")
	}
}
