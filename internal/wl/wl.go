// Package wl provides the wirelength models floorplanners commonly
// trade off: half-perimeter (HPWL), star, clique and Manhattan-MST
// estimates over a net's pin set. The paper computes wirelength from
// MST-decomposed 2-pin nets (§5); the alternatives here support the
// wirelength-model ablation (BenchmarkAblationWirelength) and callers
// who want a cheaper or smoother cost term.
package wl

import (
	"irgrid/internal/geom"
	"irgrid/internal/mst"
)

// HPWL returns the half-perimeter wirelength of the pin set: the
// semi-perimeter of the pins' bounding box. It is exact for 2- and
// 3-pin nets under optimal Steiner routing and a lower bound beyond.
func HPWL(pins []geom.Pt) float64 {
	if len(pins) < 2 {
		return 0
	}
	r := geom.RectFromCorners(pins[0], pins[1])
	for _, p := range pins[2:] {
		r = r.Union(geom.RectFromCorners(p, p))
	}
	return r.W() + r.H()
}

// MST returns the Manhattan minimum-spanning-tree wirelength of the
// pin set, the paper's model.
func MST(pins []geom.Pt) float64 {
	return mst.Weight(pins, mst.Tree(pins))
}

// Star returns the star-model wirelength: every pin connects to the
// pin set's centroid. Smooth in the pin positions, which makes it
// popular in analytical placers.
func Star(pins []geom.Pt) float64 {
	if len(pins) < 2 {
		return 0
	}
	var cx, cy float64
	for _, p := range pins {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(pins))
	c := geom.Pt{X: cx / n, Y: cy / n}
	var sum float64
	for _, p := range pins {
		sum += p.Manhattan(c)
	}
	return sum
}

// Clique returns the clique-model wirelength: the sum of all pairwise
// Manhattan distances scaled by 2/k so that 2-pin nets keep their exact
// length. An upper-bound style estimate that over-weights large nets.
func Clique(pins []geom.Pt) float64 {
	k := len(pins)
	if k < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += pins[i].Manhattan(pins[j])
		}
	}
	return sum * 2 / float64(k)
}

// Model names a wirelength estimator for configuration surfaces.
type Model string

// Supported wirelength models.
const (
	ModelMST    Model = "mst"
	ModelHPWL   Model = "hpwl"
	ModelStar   Model = "star"
	ModelClique Model = "clique"
	// ModelSteiner is the L-embedded MST with track sharing (SteinerMST).
	ModelSteiner Model = "steiner"
)

// Eval dispatches on the model name; unknown models evaluate as MST
// (the paper's default).
func (m Model) Eval(pins []geom.Pt) float64 {
	switch m {
	case ModelHPWL:
		return HPWL(pins)
	case ModelStar:
		return Star(pins)
	case ModelClique:
		return Clique(pins)
	case ModelSteiner:
		return SteinerMST(pins)
	default:
		return MST(pins)
	}
}
