package core

import (
	"math"
	"testing"
)

// bruteCrossProb computes the exact probability that a uniformly random
// monotone up-right cell path from (0,0) to (g1-1,g2-1) touches the
// rectangle [x1..x2]×[y1..y2], via path counting with the rectangle
// blocked: P = 1 - avoiding/total.
func bruteCrossProb(g1, g2, x1, x2, y1, y2 int) float64 {
	count := func(blocked bool) float64 {
		dp := make([][]float64, g1)
		for i := range dp {
			dp[i] = make([]float64, g2)
		}
		for i := 0; i < g1; i++ {
			for j := 0; j < g2; j++ {
				if blocked && i >= x1 && i <= x2 && j >= y1 && j <= y2 {
					continue // dp stays 0
				}
				if i == 0 && j == 0 {
					dp[i][j] = 1
					continue
				}
				if i > 0 {
					dp[i][j] += dp[i-1][j]
				}
				if j > 0 {
					dp[i][j] += dp[i][j-1]
				}
			}
		}
		return dp[g1-1][g2-1]
	}
	total := count(false)
	if total == 0 {
		return 0
	}
	return 1 - count(true)/total
}

func TestExactCrossProbAgainstBruteForce(t *testing.T) {
	for _, g := range [][2]int{{2, 2}, {3, 3}, {4, 6}, {7, 5}, {10, 10}, {12, 8}} {
		g1, g2 := g[0], g[1]
		for x1 := 0; x1 < g1; x1++ {
			for x2 := x1; x2 < g1; x2++ {
				for y1 := 0; y1 < g2; y1++ {
					for y2 := y1; y2 < g2; y2++ {
						want := bruteCrossProb(g1, g2, x1, x2, y1, y2)
						got := ExactCrossProb(g1, g2, x1, x2, y1, y2)
						if math.Abs(got-want) > 1e-9 {
							t.Fatalf("g=%dx%d IR=[%d..%d]x[%d..%d]: got %g, want %g",
								g1, g2, x1, x2, y1, y2, got, want)
						}
					}
				}
			}
		}
	}
}

func TestExactCrossProbPinCells(t *testing.T) {
	// IR-grids covering a pin cell are crossed with certainty.
	if got := ExactCrossProb(6, 6, 0, 0, 0, 0); got != 1 {
		t.Errorf("source cell = %g", got)
	}
	if got := ExactCrossProb(6, 6, 5, 5, 5, 5); got != 1 {
		t.Errorf("sink cell = %g", got)
	}
	if got := ExactCrossProb(6, 6, 0, 5, 0, 5); got != 1 {
		t.Errorf("whole range = %g", got)
	}
}

func TestExactCrossProbLargeGridNoOverflow(t *testing.T) {
	// Route counts at g1=g2=400 overflow float64 by ~200 orders of
	// magnitude; the log-space pipeline must stay finite and in [0,1].
	g1, g2 := 400, 300
	p := ExactCrossProb(g1, g2, 100, 200, 100, 180)
	if math.IsNaN(p) || p <= 0 || p > 1 {
		t.Fatalf("large-grid probability = %g", p)
	}
}

func TestTypeIIMatchesReflectedTypeI(t *testing.T) {
	// The paper's explicit type II formula must agree with evaluating
	// the reflected IR-grid under the type I formula (the production
	// code path).
	for _, g := range [][2]int{{3, 3}, {5, 4}, {8, 8}, {9, 5}} {
		g1, g2 := g[0], g[1]
		for x1 := 0; x1 < g1; x1++ {
			for x2 := x1; x2 < g1; x2++ {
				for y1 := 0; y1 < g2; y1++ {
					for y2 := y1; y2 < g2; y2++ {
						ii := TypeIICrossProb(g1, g2, x1, x2, y1, y2)
						ref := ExactCrossProb(g1, g2, x1, x2, g2-1-y2, g2-1-y1)
						if math.Abs(ii-ref) > 1e-9 {
							t.Fatalf("g=%dx%d IR=[%d..%d]x[%d..%d]: typeII %g, reflected %g",
								g1, g2, x1, x2, y1, y2, ii, ref)
						}
					}
				}
			}
		}
	}
}

func TestExactCrossProbMonotoneInRect(t *testing.T) {
	// Growing the IR-rectangle can only increase the crossing
	// probability.
	g1, g2 := 12, 9
	p1 := ExactCrossProb(g1, g2, 4, 6, 3, 5)
	p2 := ExactCrossProb(g1, g2, 3, 7, 2, 6)
	if p2 < p1-1e-12 {
		t.Errorf("probability decreased when growing rect: %g -> %g", p1, p2)
	}
}

func TestExactCrossProbFullWidthBand(t *testing.T) {
	// A band spanning the full width is crossed with certainty (every
	// monotone route crosses every horizontal band).
	g1, g2 := 9, 7
	for y := 0; y < g2; y++ {
		if got := ExactCrossProb(g1, g2, 0, g1-1, y, y); math.Abs(got-1) > 1e-9 {
			t.Errorf("full-width band at y=%d: %g", y, got)
		}
	}
	for x := 0; x < g1; x++ {
		if got := ExactCrossProb(g1, g2, x, x, 0, g2-1); math.Abs(got-1) > 1e-9 {
			t.Errorf("full-height band at x=%d: %g", x, got)
		}
	}
}

func TestPaperFigure6Example(t *testing.T) {
	// §4.3's worked example: "Figure 6 shows a net with pins at (0,0)
	// and (6,6) … divided into 6×6 fixed-size grids … the probability
	// is 245/252". The two statements are inconsistent in the paper
	// (pins at (6,6) imply a 7×7 grid whose route total is C(12,6)=924,
	// while 252 = C(10,5) is the 6×6 total). We pin down the 6×6
	// reading — the one the 252 denominator and all of §3's formulas
	// support — and check our Formula 3 against brute force for the
	// quoted IR-grid {2≤x≤4, 2≤y≤5}.
	got := ExactCrossProb(6, 6, 2, 4, 2, 5)
	want := bruteCrossProb(6, 6, 2, 4, 2, 5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Formula 3 %g != brute force %g", got, want)
	}
	// The brute-force crossing count on the 6×6 lattice is 246/252
	// (the paper's 245 appears to drop one escape term); assert the
	// self-consistent value so regressions are caught.
	if math.Abs(got-246.0/252.0) > 1e-12 {
		t.Errorf("crossing probability %g, want 246/252 = %g", got, 246.0/252.0)
	}
}

func TestFunction1ExactProperties(t *testing.T) {
	g1, g2 := 31, 21
	// Summing Function (1) over a full row y2 plus the complementary
	// right-edge escapes of the row's right end must give the crossing
	// probability of the row band [0..g1-1]×[0..y2] = 1.
	for y2 := 0; y2 < g2-1; y2++ {
		var sum float64
		for x := 0; x < g1; x++ {
			sum += Function1Exact(g1, g2, x, y2)
		}
		// A band [0..g1-1]×[y1..y2] spanning the full width: every
		// route escapes through its top (it cannot escape right).
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d: top-escape mass %g, want 1", y2, sum)
		}
	}
	// Out-of-range arguments give 0.
	if Function1Exact(g1, g2, -1, 5) != 0 || Function1Exact(g1, g2, 5, g2) != 0 {
		t.Error("out-of-range Function1Exact should be 0")
	}
}
