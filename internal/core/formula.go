package core

import (
	"math"

	"irgrid/internal/nmath"
)

// This file implements the exact boundary-escape computation of the
// paper's Formula 3 in type-I-oriented unit coordinates: the source pin
// occupies unit cell (0,0), the sink (g1-1, g2-1), and the IR-grid
// covers cells [x1..x2]×[y1..y2]. Type II nets are reflected into this
// frame by the caller; TestFormula3TypeIIMatchesPaper cross-checks the
// reflection against the paper's explicit type II expression.

// exactProb evaluates Formula 3 (type I):
//
//	P = [ Σ_{x=x1}^{x2} Ta(x, y2)·Tb(x, y2+1)
//	    + Σ_{y=y1}^{y2} Ta(x2, y)·Tb(x2+1, y) ] / Ta(g1-1, g2-1)
//
// where Ta(x,y) = C(x+y, y) counts monotone routes from the source to
// cell (x,y) and Tb(x,y) = Ta(g1-1-x, g2-1-y) counts routes from cell
// (x,y) to the sink (zero outside the routing range). Each term is the
// number of routes leaving the IR-grid upward through its top edge or
// rightward through its right edge; a monotone route crosses the
// rectangle exactly once, so the terms partition the crossing routes.
//
// The caller guarantees the IR-grid does not cover a pin cell, so the
// sums are strictly less than the total and at least one escape
// direction exists.
func (ev *evaluator) exactProb(g1, g2, x1, x2, y1, y2 int) float64 {
	ev.ensureLF(g1 + g2)
	var p float64
	// Top-edge escapes: from (x, y2) to (x, y2+1). Tb(x, y2+1) is zero
	// when y2 is the top row of the routing range.
	if y2+1 <= g2-1 {
		p += ev.exactTopSum(g1, g2, x1, x2, y2)
	}
	// Right-edge escapes: from (x2, y) to (x2+1, y).
	if x2+1 <= g1-1 {
		p += ev.exactRightSum(g1, g2, x2, y1, y2)
	}
	if p > 1 {
		p = 1 // guard against rounding above certainty
	}
	return p
}

// logTa returns ln Ta(x, y) = ln C(x+y, y).
func (ev *evaluator) logTa(x, y int) float64 {
	if x < 0 || y < 0 {
		return math.Inf(-1)
	}
	return ev.lf.LogChoose(x+y, y)
}

// logTb returns ln Tb(x, y) = ln Ta(g1-1-x, g2-1-y).
func (ev *evaluator) logTb(g1, g2, x, y int) float64 {
	return ev.logTa(g1-1-x, g2-1-y)
}

// ExactCrossProb exposes the exact Formula 3 evaluation for a type I
// net on a g1×g2 unit lattice and the IR-rectangle [x1..x2]×[y1..y2];
// IR-rectangles covering a pin cell return 1 (Algorithm step 3.1). It
// is the reference implementation used by the accuracy experiment
// (Figure 8) and by the ablation benchmarks.
func ExactCrossProb(g1, g2, x1, x2, y1, y2 int) float64 {
	ev := &evaluator{}
	if coversCell(x1, x2, y1, y2, 0, 0) || coversCell(x1, x2, y1, y2, g1-1, g2-1) {
		return 1
	}
	return ev.exactProb(g1, g2, x1, x2, y1, y2)
}

// TypeIICrossProb evaluates the paper's explicit type II Formula 3 on
// a g1×g2 lattice where the source pin occupies unit cell (0, g2-1)
// and the sink (g1-1, 0):
//
//	P = [ Σ_{x=x1}^{x2} Ta(x, y1)·Tb(x, y1-1)
//	    + Σ_{y=y1}^{y2} Ta(x2, y)·Tb(x2+1, y) ] / Ta(g1-1, 0)
//
// with Ta(x,y) = C(x + (g2-1-y), x) and Tb(x,y) = Ta(g1-1-x, g2-1-y) =
// C((g1-1-x) + y, g1-1-x). It exists to validate the reflection used
// by the evaluator; production code paths reflect into type I instead.
func TypeIICrossProb(g1, g2, x1, x2, y1, y2 int) float64 {
	if coversCell(x1, x2, y1, y2, 0, g2-1) || coversCell(x1, x2, y1, y2, g1-1, 0) {
		return 1
	}
	var lf nmath.LogFact
	lf.Ensure(g1 + g2)
	ta := func(x, y int) float64 {
		if x < 0 || x > g1-1 || y < 0 || y > g2-1 {
			return math.Inf(-1)
		}
		return lf.LogChoose(x+(g2-1-y), x)
	}
	tb := func(x, y int) float64 { return ta(g1-1-x, g2-1-y) }
	logTotal := ta(g1-1, 0)
	var p float64
	// Bottom-edge escapes: routes travel down-right, leaving through
	// the bottom edge from (x, y1) to (x, y1-1).
	if y1-1 >= 0 {
		for x := x1; x <= x2; x++ {
			p += math.Exp(ta(x, y1) + tb(x, y1-1) - logTotal)
		}
	}
	// Right-edge escapes.
	if x2+1 <= g1-1 {
		for y := y1; y <= y2; y++ {
			p += math.Exp(ta(x2, y) + tb(x2+1, y) - logTotal)
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}
