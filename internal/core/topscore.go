package core

// TopScore's partial selection: only the densest IR-grids covering
// frac of the chip area are ever consumed, so ranking every cell with
// a full sort is wasted work. weightedTopSum instead runs an expected
// O(n) quickselect-style three-way partition that recurses only into
// the side containing the area-budget boundary.

// topCell is one positive-area IR-grid prepared for selection.
type topCell struct {
	d, area float64
}

// TopScore returns the area-weighted mean density over the most
// congested IR-grids covering frac of the chip area: IR-grids are
// ranked by density; whole grids are taken until the area budget is
// reached, the last one contributing only its remaining share.
func (mp *Map) TopScore(frac float64) float64 {
	s, _ := mp.topScore(nil, frac)
	return s
}

// topScore is TopScore with a caller-supplied scratch buffer; it
// returns the (possibly grown) buffer for reuse.
//
//irlint:hot
func (mp *Map) topScore(scratch []topCell, frac float64) (float64, []topCell) {
	cells := scratch[:0]
	for iy := 0; iy < mp.Rows(); iy++ {
		for ix := 0; ix < mp.Cols(); ix++ {
			a := mp.Rect(ix, iy).Area()
			if a <= 0 {
				continue
			}
			cells = append(cells, topCell{d: mp.At(ix, iy) / a, area: a})
		}
	}
	if len(cells) == 0 {
		return 0, cells
	}
	budget := frac * mp.Chip.Area()
	if budget <= 0 {
		mx := cells[0].d
		for _, c := range cells[1:] {
			if c.d > mx {
				mx = c.d
			}
		}
		return mx, cells
	}
	sum, used := weightedTopSum(cells, budget)
	if used == 0 {
		return 0, cells
	}
	return sum / used, cells
}

// weightedTopSum consumes the densest cells until `budget` area is
// used (the last cell contributing a partial share) and returns the
// density-weighted area sum alongside the area actually used (less
// than budget only when the cells run out). It reorders cells.
//
//irlint:hot
func weightedTopSum(cells []topCell, budget float64) (sum, used float64) {
	lo, hi := 0, len(cells)
	remaining := budget
	for {
		if hi-lo <= 16 {
			// Insertion-sort the remnant descending by density and walk.
			for i := lo + 1; i < hi; i++ {
				c := cells[i]
				j := i - 1
				for j >= lo && cells[j].d < c.d {
					cells[j+1] = cells[j]
					j--
				}
				cells[j+1] = c
			}
			for i := lo; i < hi; i++ {
				a := cells[i].area
				if a > remaining {
					a = remaining
				}
				sum += cells[i].d * a
				used += a
				remaining -= a
				if remaining <= 0 {
					return sum, used
				}
			}
			return sum, used
		}

		p := medianOfThreeDensity(cells, lo, hi)
		// Three-way partition [lo,hi) into > p | == p | < p, tracking
		// the area and weighted mass of the dense side as it forms.
		i, k, g := lo, lo, hi
		var areaG, sumG float64
		for k < g {
			switch d := cells[k].d; {
			case d > p:
				cells[i], cells[k] = cells[k], cells[i]
				areaG += cells[i].area
				sumG += cells[i].d * cells[i].area
				i++
				k++
			case d < p:
				g--
				cells[k], cells[g] = cells[g], cells[k]
			default:
				k++
			}
		}

		if areaG >= remaining {
			// The budget boundary lies inside the dense side; discard
			// the scan's partial aggregates and re-select there.
			hi = i
			continue
		}
		// Consume the dense side whole.
		sum += sumG
		used += areaG
		remaining -= areaG
		// The pivot-density band: every cell contributes the same
		// density, so the order within the band cannot matter.
		var areaE float64
		for t := i; t < k; t++ {
			areaE += cells[t].area
		}
		if areaE >= remaining {
			sum += p * remaining
			used += remaining
			return sum, used
		}
		for t := i; t < k; t++ {
			sum += cells[t].d * cells[t].area
		}
		used += areaE
		remaining -= areaE
		lo = k
	}
}

// medianOfThreeDensity picks a deterministic pivot density from the
// first, middle and last cells of [lo, hi).
func medianOfThreeDensity(cells []topCell, lo, hi int) float64 {
	a, b, c := cells[lo].d, cells[(lo+hi)/2].d, cells[hi-1].d
	switch {
	case a < b:
		switch {
		case b < c:
			return b
		case a < c:
			return c
		default:
			return a
		}
	default:
		switch {
		case a < c:
			return a
		case b < c:
			return c
		default:
			return b
		}
	}
}
