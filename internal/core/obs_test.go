package core

import (
	"math"
	"testing"

	"irgrid/internal/obs"
)

// TestEvaluatorMetricsPopulated checks that an instrumented evaluation
// reports every engine metric: call/net counters, stage timings, grid
// dimensions, memo traffic, exact-lane counts and per-worker busy time.
func TestEvaluatorMetricsPopulated(t *testing.T) {
	chip := engineChip()
	nets := engineNets(500) // past parallelMinNets for the worker path
	reg := obs.NewRegistry()
	// ExactSpanLimit 2 pushes most lanes through the Simpson-approx
	// path so the memo counters see traffic.
	e := Model{Pitch: 30, Workers: 2, Obs: reg, ExactSpanLimit: 2}.NewEvaluator()
	e.Score(chip, nets)
	e.Score(chip, nets) // warm pass: memo hits

	snap := reg.Snapshot()
	if got := snap["eval_calls_total"]; got != 2 {
		t.Errorf("eval_calls_total = %g, want 2", got)
	}
	if got := snap["eval_nets_total"]; got != 1000 {
		t.Errorf("eval_nets_total = %g, want 1000", got)
	}
	if got := snap["eval_workers"]; got != 2 {
		t.Errorf("eval_workers = %g, want 2", got)
	}
	for _, name := range []string{
		"eval_axis_ns_total", "eval_accumulate_ns_total", "eval_topscore_ns_total",
		"eval_grid_cols", "eval_grid_rows",
		"eval_simpson_memo_hits_total", "eval_simpson_memo_misses_total",
		"eval_exact_lanes_total",
		"eval_ns_count", "eval_ns_sum",
		`eval_worker_busy_ns_total{worker="0"}`, `eval_worker_busy_ns_total{worker="1"}`,
	} {
		if v, ok := snap[name]; !ok || v <= 0 {
			t.Errorf("%s = %g (present %v), want > 0", name, v, ok)
		}
	}
	// Hits appear on the warm pass; misses stay non-zero because the
	// memo is capacity-bounded (memoCap) and this configuration's key
	// population exceeds it. Both being > 0 is asserted above.
}

// TestObserverDoesNotChangeScores: instrumentation must be invisible to
// the numbers — scores with and without a registry are bit-identical.
func TestObserverDoesNotChangeScores(t *testing.T) {
	chip := engineChip()
	nets := engineNets(400)
	for _, m := range []Model{
		{Pitch: 30},
		{Pitch: 30, Workers: 2},
		{Pitch: 30, ExactSpanLimit: 2},
		{Pitch: 30, Exact: true},
	} {
		plain := m.NewEvaluator().Score(chip, nets)
		m.Obs = obs.NewRegistry()
		traced := m.NewEvaluator().Score(chip, nets)
		if plain != traced {
			t.Errorf("%+v: instrumented score %v != plain %v", m, traced, plain)
		}
	}
}

// TestPooledEvaluatorPicksUpObserver: the Model.Evaluate/Score pool
// must attach (and detach) instrumentation when the model changes.
func TestPooledEvaluatorPicksUpObserver(t *testing.T) {
	chip := engineChip()
	nets := engineNets(100)
	reg := obs.NewRegistry()
	Model{Pitch: 30}.Score(chip, nets) // seed the pool uninstrumented
	Model{Pitch: 30, Obs: reg}.Score(chip, nets)
	if got := reg.Snapshot()["eval_calls_total"]; got != 1 {
		t.Errorf("eval_calls_total = %g after one instrumented pooled call, want 1", got)
	}
	Model{Pitch: 30}.Score(chip, nets) // must detach again
	if got := reg.Snapshot()["eval_calls_total"]; got != 1 {
		t.Errorf("eval_calls_total = %g after a later uninstrumented call, want 1", got)
	}
}

// TestDisabledTelemetryZeroAlloc guards the zero-overhead contract's
// allocation half: with Model.Obs nil, steady-state Score performs no
// heap allocation (the telemetry fields are plain tallies, no
// instruments are resolved, no flush runs).
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	chip := engineChip()
	nets := engineNets(200)
	e := Model{Pitch: 30, Workers: 1}.NewEvaluator()
	for i := 0; i < 3; i++ {
		e.Score(chip, nets)
	}
	if avg := testing.AllocsPerRun(10, func() { e.Score(chip, nets) }); avg > 0 {
		t.Fatalf("disabled-telemetry Score allocates %.1f times per call, want 0", avg)
	}
}

// laneKernel mirrors the shape of the exact-lane sweep: an outer loop
// over lanes, each doing a short multiplicative inner sweep, with the
// optional per-lane tally field increment the disabled telemetry path
// adds. The pair measures the tally's *marginal* cost in context — an
// isolated increment loop would overstate it, since in the real sweep
// the increment retires in the shadow of the float pipeline.
type laneKernel struct {
	sum   float64
	tally int64
}

//go:noinline
func (k *laneKernel) sweep(lanes, span int, count bool) {
	t := 1.0001
	for l := 0; l < lanes; l++ {
		sum := t
		for x := 0; x < span; x++ {
			t *= 0.99999871
			sum += t
		}
		k.sum += sum
		if count {
			k.tally++
		}
	}
}

// TestDisabledTelemetryNsBudget guards the timing half of the
// zero-overhead contract. The only work the disabled path adds to the
// hot sweep loops is one plain int64 field increment per lane / memo
// probe (instruments and timers sit behind a single nil check per
// Evaluate). The test bounds that cost from measurements:
// increments-per-call × marginal-cost-per-increment must stay under 2%
// of the call's total runtime.
func TestDisabledTelemetryNsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation multiplies the per-increment cost; the budget only holds for native builds")
	}
	chip := engineChip()
	nets := engineNets(500)

	// Count the increments one evaluation performs via an instrumented
	// twin: exact lanes plus Simpson-memo probes (each probe bumps
	// exactly one of the hit/miss tallies).
	reg := obs.NewRegistry()
	Model{Pitch: 30, Obs: reg}.NewEvaluator().Score(chip, nets)
	snap := reg.Snapshot()
	incs := snap["eval_exact_lanes_total"] +
		snap["eval_simpson_memo_hits_total"] + snap["eval_simpson_memo_misses_total"]
	if incs <= 0 {
		t.Fatal("instrumented twin recorded no tally increments")
	}

	// Marginal per-lane increment cost: kernel with tally minus kernel
	// without, per lane. Three rounds, keeping the smallest delta (the
	// least noise-inflated estimate); clamped at zero since the true
	// marginal cost cannot be negative.
	const lanes, span = 1024, 8
	var k laneKernel
	measure := func(count bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.sweep(lanes, span, count)
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N) / lanes
	}
	perInc := math.Inf(1)
	for round := 0; round < 3; round++ {
		if d := measure(true) - measure(false); d < perInc {
			perInc = d
		}
	}
	if perInc < 0 {
		perInc = 0
	}

	e := Model{Pitch: 30}.NewEvaluator()
	e.Score(chip, nets) // warm
	s := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Score(chip, nets)
		}
	})
	scoreNs := float64(s.T.Nanoseconds()) / float64(s.N)

	overhead := incs*perInc + 100 // + a handful of nil checks per call
	if limit := 0.02 * scoreNs; overhead >= limit {
		t.Errorf("estimated disabled-telemetry overhead %.0f ns/op (%.0f increments × %.3f ns) exceeds 2%% of Score's %.0f ns/op",
			overhead, incs, perInc, scoreNs)
	}
	t.Logf("budget: %.0f increments × %.3f ns = %.0f ns vs Score %.0f ns/op (%.2f%%)",
		incs, perInc, incs*perInc, scoreNs, 100*incs*perInc/scoreNs)
}
