package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"irgrid/internal/faultinject"
	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/nmath"
	"irgrid/internal/obs"
)

// degradeAfter is the number of recovered shard panics after which an
// Evaluator stops trusting parallel execution and pins itself to the
// sequential path (graceful degradation: correctness over throughput).
const degradeAfter = 3

// Shard geometry. The per-net accumulation is partitioned into shards
// whose boundaries depend only on the net count — never on the worker
// count — and the per-shard partial grids are reduced in shard order.
// That fixes the floating-point summation tree, so Evaluate is
// bit-identical for every Workers setting (TestEvaluateParallelDeterminism).
const (
	// shardGrain is the target number of nets per shard; it sets the
	// reduction tree's fan-in and bounds the bookkeeping overhead the
	// sequential path pays for determinism.
	shardGrain = 64
	// maxShards caps the shard count (and with it the number of
	// partial grids held and the useful worker count).
	maxShards = 16
	// parallelMinNets is the net count below which Evaluate stays
	// sequential: small inputs lose more to goroutine fan-out than
	// they gain from extra cores.
	parallelMinNets = 256
)

// Evaluator is a reusable Irregular-Grid evaluation engine. It owns
// every buffer an evaluation needs — the cutting-line coordinate
// buffers, the probability grid, per-worker span scratch and per-edge
// memo caches, the shared ln-factorial table and the top-score
// selection scratch — so holding one across calls makes a steady-state
// evaluation allocation-free. With Model.Workers (or GOMAXPROCS) above
// one and enough nets, the per-net accumulation is sharded across
// worker goroutines.
//
// An Evaluator is not safe for concurrent use; give each goroutine its
// own (or use the pooled Model.Evaluate/Model.Score wrappers, which
// are).
type Evaluator struct {
	m Model

	// lf is the shared ln-factorial table. It is pre-grown past every
	// unit-lattice dimension reachable on the current chip before
	// worker fan-out, so concurrent workers only ever read it.
	lf nmath.LogFact

	xs, ys   []float64    // cutting-line coordinate buffers
	mp       Map          // the arena-backed result map
	acc      []int64      // fixed-point accumulation grid (shard 0 target)
	prob     []float64    // backing for mp.Prob, converted from acc
	partials [][]int64    // per-shard partial grids (shard 0 writes acc)
	workers  []*evaluator // per-worker scratch + memo
	cells    []topCell    // top-score selection scratch
	slots    []*launchSlot

	nextShard atomic.Int64
	wg        sync.WaitGroup

	// Shard-panic bookkeeping. A panic inside a shard (a worker crash)
	// is recovered, the shard's partial grid is zeroed and recomputed
	// sequentially, and after degradeAfter recovered panics the engine
	// degrades to single-worker mode for the rest of its lifetime. A
	// panic that repeats on the sequential retry is deterministic — a
	// genuine invariant violation — and is re-raised.
	failMu      sync.Mutex
	failed      []int // shard indices that panicked this Evaluate
	shardPanics int   // lifetime recovered panic count
	degraded    bool

	// instr is the engine's resolved telemetry, nil when Model.Obs is
	// nil; every instrumentation point is guarded by one nil check.
	instr *evalInstr
}

// evalInstr holds the engine's resolved registry instruments so the
// hot path never performs a registry lookup.
type evalInstr struct {
	calls       *obs.Counter
	nets        *obs.Counter
	axisNs      *obs.Counter
	accumNs     *obs.Counter
	topNs       *obs.Counter
	memoHit     *obs.Counter
	memoMiss    *obs.Counter
	exactLanes  *obs.Counter
	cols        *obs.Gauge
	rows        *obs.Gauge
	workersG    *obs.Gauge
	evalNs      *obs.Histogram
	shardPanics *obs.Counter
	degraded    *obs.Counter
	workerNs    []*obs.Counter // per-worker busy time, grown on demand
	reg         *obs.Registry
}

func newEvalInstr(reg *obs.Registry) *evalInstr {
	return &evalInstr{
		calls:       reg.Counter("eval_calls_total"),
		nets:        reg.Counter("eval_nets_total"),
		axisNs:      reg.Counter("eval_axis_ns_total"),
		accumNs:     reg.Counter("eval_accumulate_ns_total"),
		topNs:       reg.Counter("eval_topscore_ns_total"),
		memoHit:     reg.Counter("eval_simpson_memo_hits_total"),
		memoMiss:    reg.Counter("eval_simpson_memo_misses_total"),
		exactLanes:  reg.Counter("eval_exact_lanes_total"),
		cols:        reg.Gauge("eval_grid_cols"),
		rows:        reg.Gauge("eval_grid_rows"),
		workersG:    reg.Gauge("eval_workers"),
		evalNs:      reg.Histogram("eval_ns", obs.DurationBuckets),
		shardPanics: reg.Counter("eval_shard_panics"),
		degraded:    reg.Counter("eval_degraded"),
		reg:         reg,
	}
}

// workerBusy returns the busy-time counter of worker i, labeled in
// Prometheus exposition syntax.
func (in *evalInstr) workerBusy(i int) *obs.Counter {
	for len(in.workerNs) <= i {
		name := `eval_worker_busy_ns_total{worker="` + strconv.Itoa(len(in.workerNs)) + `"}`
		in.workerNs = append(in.workerNs, in.reg.Counter(name))
	}
	return in.workerNs[i]
}

// NewEvaluator returns a reusable evaluation engine for the model.
func (m Model) NewEvaluator() *Evaluator {
	if m.Pitch <= 0 {
		panic("core: Pitch must be positive")
	}
	e := &Evaluator{m: m}
	if m.Obs != nil {
		e.instr = newEvalInstr(m.Obs)
	}
	return e
}

// Model returns the engine's configuration.
func (e *Evaluator) Model() Model { return e.m }

// Evaluate partitions the chip into IR-grids from the nets' routing
// ranges and accumulates every net's crossing probabilities.
//
// The returned Map aliases the engine's arena: it is valid only until
// the next Evaluate or Score call. Use Map.Clone (or Model.Evaluate)
// for a caller-owned copy.
//
//irlint:hot
func (e *Evaluator) Evaluate(chip geom.Rect, nets []netlist.TwoPin) *Map {
	in := e.instr
	rec := e.m.Recorder
	var tStart time.Time
	if in != nil || rec != nil {
		//irlint:allow detsource(obs timing only)
		tStart = time.Now()
	}
	root := e.m.Spans.Start("evaluate")
	sp := root.Child("merge")
	e.buildAxes(chip, nets)
	sp.End()
	cells := e.mp.Cols() * e.mp.Rows()
	e.acc = resizeInt64s(e.acc, cells)
	e.prob = resizeFloats(e.prob, cells)
	e.mp.Prob = e.prob

	// Pre-grow the shared ln-factorial table past any reachable
	// g1+g2: snapped routing ranges never exceed the chip extent.
	e.lf.Ensure(unitCells(chip.W(), e.m.Pitch) + unitCells(chip.H(), e.m.Pitch) + 4)

	var tAccum time.Time
	if in != nil {
		//irlint:allow detsource(obs timing only)
		tAccum = time.Now()
		in.axisNs.Add(tAccum.Sub(tStart).Nanoseconds())
	}
	shards := shardCount(len(nets))
	w := e.workerCount(shards, len(nets))
	e.growPartials(shards)
	e.failed = e.failed[:0]
	sp = root.Child("sweep")
	if w > 1 {
		e.runParallel(nets, shards, w)
	} else {
		e.runSequential(nets, shards)
	}
	e.retryFailed(nets, shards)
	sp.End()
	sp = root.Child("fold")
	// Reduce the partial grids. Integer sums are order-independent, so
	// any reduction order is bit-identical for every worker count and
	// across recovered shard panics; shard order is kept for clarity.
	for s := 1; s < shards; s++ {
		addInto(e.acc, e.partials[s-1])
	}
	// Convert the exact fixed-point sums to the float64 map the
	// consumers read. probInv is a power of two, so each cell rounds
	// exactly once, in the int64→float64 conversion.
	for i, v := range e.acc {
		e.prob[i] = float64(v) * probInv
	}
	sp.End()
	root.End()
	if in != nil {
		//irlint:allow detsource(obs timing only)
		end := time.Now()
		in.accumNs.Add(end.Sub(tAccum).Nanoseconds())
		in.evalNs.Observe(float64(end.Sub(tStart).Nanoseconds()))
		in.calls.Inc()
		in.nets.Add(int64(len(nets)))
		in.cols.Set(float64(e.mp.Cols()))
		in.rows.Set(float64(e.mp.Rows()))
		in.workersG.Set(float64(w))
		e.flushWorkerTallies(in)
	}
	if rec != nil {
		//irlint:allow detsource(obs timing only)
		ns := time.Since(tStart).Nanoseconds()
		rec.Record(obs.RecorderEvent{Kind: obs.RecEval, Ns: ns})
	}
	return &e.mp
}

// flushWorkerTallies folds the workers' plain memo/lane tallies into
// the registry counters and resets them.
func (e *Evaluator) flushWorkerTallies(in *evalInstr) {
	for _, w := range e.workers {
		in.memoHit.Add(w.nHit)
		in.memoMiss.Add(w.nMiss)
		in.exactLanes.Add(w.nExactLanes)
		w.nHit, w.nMiss, w.nExactLanes = 0, 0, 0
	}
}

// Score evaluates the nets and returns the chip-level congestion cost
// (the average density of the most congested IR-grids covering the
// model's TopFraction of the chip area). Steady state it allocates
// nothing.
//
//irlint:hot
func (e *Evaluator) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	mp := e.Evaluate(chip, nets)
	frac := e.m.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	in := e.instr
	var t0 time.Time
	if in != nil {
		//irlint:allow detsource(obs timing only)
		t0 = time.Now()
	}
	// The "evaluate" root span ended inside Evaluate, so the top-score
	// stage attaches to the tree by explicit path.
	sp := e.m.Spans.StartAt("evaluate/topscore")
	s, cells := mp.topScore(e.cells, frac)
	sp.End()
	e.cells = cells
	if in != nil {
		//irlint:allow detsource(obs timing only)
		in.topNs.Add(time.Since(t0).Nanoseconds())
	}
	return s
}

// buildAxes assembles the cutting-line axes (Algorithm steps 1–2)
// into the engine's reused coordinate buffers.
//
//irlint:hot
func (e *Evaluator) buildAxes(chip geom.Rect, nets []netlist.TwoPin) {
	eps := e.m.Pitch * 1e-9
	xs, ys := e.xs[:0], e.ys[:0]
	xs = append(xs, chip.X1, chip.X2)
	ys = append(ys, chip.Y1, chip.Y2)
	for _, n := range nets {
		r := n.Range()
		xs = append(xs, r.X1, r.X2)
		ys = append(ys, r.Y1, r.Y2)
	}
	e.xs, e.ys = xs, ys // retain grown capacity
	xAxis := geom.NewAxisInPlace(xs, eps)
	yAxis := geom.NewAxisInPlace(ys, eps)
	if !e.m.NoMerge {
		xAxis = xAxis.MergeInPlace(2 * e.m.Pitch)
		yAxis = yAxis.MergeInPlace(2 * e.m.Pitch)
	}
	e.mp = Map{Chip: chip, XAxis: xAxis, YAxis: yAxis}
}

// worker returns the i-th per-worker scratch evaluator, creating it on
// first use. Worker 0 doubles as the sequential path's evaluator.
func (e *Evaluator) worker(i int) *evaluator {
	for len(e.workers) <= i {
		e.workers = append(e.workers, &evaluator{
			m:    e.m,
			lf:   &e.lf,
			memo: make(map[edgeKey]float64),
		})
	}
	w := e.workers[i]
	w.mp = &e.mp
	return w
}

// shardCount is a pure function of the net count so that the
// summation tree — and with it the bit pattern of every result — is
// independent of the worker count.
func shardCount(n int) int {
	s := (n + shardGrain - 1) / shardGrain
	if s < 1 {
		s = 1
	}
	if s > maxShards {
		s = maxShards
	}
	return s
}

// shardRange returns the half-open net index range of shard s.
func shardRange(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// workerCount resolves the effective number of worker goroutines.
func (e *Evaluator) workerCount(shards, nets int) int {
	if e.degraded || nets < parallelMinNets {
		return 1
	}
	w := e.m.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	return w
}

// shardTarget returns the accumulation grid of shard s: shard 0 folds
// straight into the result accumulator, later shards into their own
// partial grid.
func (e *Evaluator) shardTarget(s int) []int64 {
	if s == 0 {
		return e.acc
	}
	return e.partials[s-1]
}

// growPartials sizes the per-shard partial grids for shards 1..shards-1.
func (e *Evaluator) growPartials(shards int) {
	for len(e.partials) < shards-1 {
		e.partials = append(e.partials, nil)
	}
	for s := 1; s < shards; s++ {
		e.partials[s-1] = resizeInt64s(e.partials[s-1], len(e.acc))
	}
}

// runSequential executes every shard in order on worker 0, each into
// its own target grid. The shard structure is kept (rather than one
// flat loop) so the summation tree matches the parallel path.
//
//irlint:hot
func (e *Evaluator) runSequential(nets []netlist.TwoPin, shards int) {
	w := e.worker(0)
	ctx := e.m.Ctx
	for s := 0; s < shards; s++ {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		e.runShard(w, nets, shards, s)
	}
	w.out = nil
}

// launchSlot is the persistent per-worker launch state of the parallel
// path. The goroutine body (run) is created once per slot and closes
// only over the slot itself; per-call parameters are stored in the
// slot's fields before fan-out. Spawning `go slot.run()` on a stored
// func value performs no allocation, which keeps the parallel path as
// allocation-free as the sequential one (TestEvaluatorSteadyStateAllocs
// gates both).
type launchSlot struct {
	e      *Evaluator
	w      *evaluator
	busy   *obs.Counter
	nets   []netlist.TwoPin
	shards int
	run    func()
}

func (sl *launchSlot) main() {
	e := sl.e
	defer e.wg.Done()
	// Gate the timing on whether telemetry is enabled, not on the
	// counter handle: busy.Add is a nil-safe no-op either way, and
	// the instr check keeps the clock reads out of untraced runs.
	if e.instr != nil {
		//irlint:allow detsource(obs timing only)
		start := time.Now()
		//irlint:allow detsource(obs timing only)
		defer func() { sl.busy.Add(time.Since(start).Nanoseconds()) }()
	}
	ctx := e.m.Ctx
	for {
		if ctx != nil && ctx.Err() != nil {
			sl.w.out = nil
			return
		}
		s := int(e.nextShard.Add(1)) - 1
		if s >= sl.shards {
			sl.w.out = nil
			return
		}
		e.runShard(sl.w, sl.nets, sl.shards, s)
	}
}

// slot returns the persistent launch slot of worker wi.
func (e *Evaluator) slot(wi int) *launchSlot {
	for len(e.slots) <= wi {
		sl := &launchSlot{e: e}
		sl.run = sl.main
		e.slots = append(e.slots, sl)
	}
	return e.slots[wi]
}

// runParallel fans the shards out over `workers` goroutines claiming
// shard indices from an atomic counter. Which worker computes a shard
// cannot affect the result: per-net values are canonical (the memo
// caches pure functions), each shard owns its accumulation grid, and
// integer accumulation is order-independent.
func (e *Evaluator) runParallel(nets []netlist.TwoPin, shards, workers int) {
	e.nextShard.Store(0)
	for wi := 0; wi < workers; wi++ {
		sl := e.slot(wi)
		sl.w = e.worker(wi)
		sl.busy = nil
		if e.instr != nil {
			sl.busy = e.instr.workerBusy(wi)
		}
		sl.nets, sl.shards = nets, shards
		e.wg.Add(1)
		go sl.run()
	}
	e.wg.Wait()
	for _, sl := range e.slots {
		sl.nets = nil // do not retain the caller's nets past the call
	}
}

// runShard computes shard s into its target grid, converting a panic
// (a worker crash, or an injected fault) into a recorded failure that
// Evaluate retries sequentially.
//
//irlint:hot
func (e *Evaluator) runShard(w *evaluator, nets []netlist.TwoPin, shards, s int) {
	defer func() {
		if r := recover(); r != nil {
			e.recordPanic(s, r)
		}
	}()
	lo, hi := shardRange(len(nets), shards, s)
	w.out = e.shardTarget(s)
	if err := faultinject.Fire(faultinject.EvalShard, s); err != nil {
		panic(err)
	}
	for _, n := range nets[lo:hi] {
		w.addNet(n)
	}
}

// recordPanic books a recovered shard panic and trips the degradation
// latch once the lifetime count reaches degradeAfter. This is the
// cold forensic path: the flight recorder gets a shard_panic event
// and, when armed, dumps a postmortem file — the shard itself is
// still retried, so the run continues.
func (e *Evaluator) recordPanic(s int, r any) {
	e.failMu.Lock()
	e.failed = append(e.failed, s)
	e.shardPanics++
	degradeNow := !e.degraded && e.shardPanics >= degradeAfter
	if degradeNow {
		e.degraded = true
	}
	e.failMu.Unlock()
	if in := e.instr; in != nil {
		in.shardPanics.Inc()
		if degradeNow {
			in.degraded.Inc()
		}
	}
	if rec := e.m.Recorder; rec != nil {
		rec.Record(obs.RecorderEvent{
			Kind: obs.RecShardPanic,
			Note: "shard " + strconv.Itoa(s) + ": " + fmt.Sprint(r),
		})
		// Dump errors are swallowed: forensics must never turn a
		// recovered panic into a run failure.
		rec.Dump(obs.RecShardPanic)
	}
}

// retryFailed recomputes the shards whose first attempt panicked: the
// shard's target grid is zeroed (it may hold a partial accumulation)
// and recomputed sequentially on worker 0, without recovery — a panic
// that repeats on the deterministic sequential path is a genuine
// invariant violation and propagates to the caller. Because each
// shard's values are pure functions of its nets and the reduction
// order is fixed, a recovered run is bit-identical to an undisturbed
// one.
func (e *Evaluator) retryFailed(nets []netlist.TwoPin, shards int) {
	if len(e.failed) == 0 {
		return
	}
	if ctx := e.m.Ctx; ctx != nil && ctx.Err() != nil {
		e.failed = e.failed[:0]
		return // result will be discarded anyway
	}
	w := e.worker(0)
	for _, s := range e.failed {
		target := e.shardTarget(s)
		clear(target)
		lo, hi := shardRange(len(nets), shards, s)
		w.out = target
		for _, n := range nets[lo:hi] {
			w.addNet(n)
		}
	}
	w.out = nil
	e.failed = e.failed[:0]
}

// addInto accumulates src into dst elementwise.
//
//irlint:hot
func addInto(dst, src []int64) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] += v
	}
}

// reconfigure repoints a pooled engine at a new model configuration.
// The edge-sum memos cache values that depend on the configuration, so
// they are flushed; the ln-factorial table is configuration-free and
// survives.
func (e *Evaluator) reconfigure(m Model) {
	e.m = m
	if m.Obs != nil {
		e.instr = newEvalInstr(m.Obs)
	} else {
		e.instr = nil
	}
	for _, w := range e.workers {
		w.m = m
		clear(w.memo)
	}
}

// evalPool recycles engines across the Model.Evaluate / Model.Score
// compatibility wrappers, so even callers that never hold an Evaluator
// reuse the ln-factorial table, the axis and grid arenas and — when
// the model configuration matches — the warm edge-sum memos.
var evalPool sync.Pool

func pooledEvaluator(m Model) *Evaluator {
	e, _ := evalPool.Get().(*Evaluator)
	if e == nil {
		return m.NewEvaluator()
	}
	if e.m != m {
		e.reconfigure(m)
	}
	return e
}

func putPooledEvaluator(e *Evaluator) { evalPool.Put(e) }
