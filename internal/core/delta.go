package core

// Incremental (delta) evaluation of the IR-grid congestion model.
//
// A simulated-annealing move perturbs a handful of modules; most nets
// keep their routing ranges and most cutting lines survive. The
// DeltaEvaluator exploits that by maintaining, across Score calls:
//
//   - the sorted multisets of cutting-line source coordinates (two per
//     net range plus the chip boundary, per axis), updated per move in
//     O(dirty·log dirty + lines) by a linear merge — no full re-sort;
//   - the merged cutting-line axes, rebuilt from the multisets in O(lines)
//     and compared to the cached axes (the "axis cache");
//   - one fixed-point contribution vector per net (the quantized values
//     the full evaluator would fold into the grid), double-buffered.
//
// The central invariant making this both cheap and exact: a net's
// contribution vector is a pure function of its unit-lattice tuple
// (g1, g2, typeII, per-cell unit spans) — the global axes only anchor
// where the vector lands on the grid. Two consequences:
//
//   - when a move leaves the axes bit-identical, only the dirty nets'
//     vectors are recomputed; the grid update is subtract-old/add-new
//     over their covered cells (O(dirty·coverage));
//   - when the axes shift, the grid is refolded from the stored vectors
//     onto the new grid; a net's expensive probability sweep reruns only
//     if its span tuple changed AND no other net ever produced the same
//     tuple (vectors are shared across nets through sweepMemo, since the
//     tuple fully determines them).
//
// Accumulation is int64 fixed point (fixed.go), so additions commute
// and subtracting a stored vector perfectly inverts adding it. Every
// path therefore reproduces, bit for bit, what Evaluator.Evaluate
// computes from scratch on the same (chip, nets) — the differential
// suites in delta_test.go and oracle/diff assert exactly that — and
// Rollback is an exact O(touched) inverse with no cell-level undo log.

import (
	"sort"
	"time"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/nmath"
	"irgrid/internal/obs"
)

// netSide is one buffered evaluation of a net against some axis pair:
// its frame on the IR-grid, its unit-lattice tuple and its quantized
// contribution vector.
type netSide struct {
	ok      bool // frame resolved; false → no contribution
	uniform bool // g1==1 or g2==1: probability 1 over the covered box
	typeII  bool
	g1, g2  int32
	// Covered IR-grid box (frame anchor on the axes the side was
	// computed against).
	cx1, cy1, cols, rows int32
	// spans holds colLo,colHi per covered column then rowLo,rowHi per
	// covered row (rows oriented, i.e. typeII-reflected), exactly as
	// addNetSweep derives them. Empty for uniform sides.
	spans []int32
	// vals[j*cols+i] is the net's quantized contribution to frame cell
	// (i, j); nil for uniform sides (every cell contributes probOne).
	vals []int64
}

// netVec double-buffers a net's evaluation: cur is folded into the
// accumulator, alt is the scratch side the next move computes into.
// After a move the buffers swap; Rollback swaps them back.
type netVec struct {
	cur, alt netSide
}

// sweepMemo caches contribution vectors across nets and moves, keyed by
// the exact unit-lattice tuple (g1, g2, typeII, per-cell unit spans).
// The sweep is a pure function of that tuple — crossProb and the pin
// overrides consume only unit indices — so two nets anywhere on the
// chip, or the same net on two different move steps, share one vector
// as long as their tuples match bit for bit. Small nets repeat a
// handful of shapes endlessly, which is what makes the axis-rebuild
// path cheap: a global repack re-anchors every frame, but almost every
// vector comes out of this table instead of a fresh probability sweep.
//
// Entries are immutable once stored; net sides alias them, never copy.
// Keys are compared exactly on lookup (the hash only buckets), so a
// collision can never substitute a wrong vector.
type sweepMemo struct {
	idx   map[uint64]int32 // tuple hash → head of entry chain (index+1)
	next  []int32          // per-entry collision chain (0 terminates)
	keys  [][]int32
	vecs  [][]int64
	cells int // total cached int64s, for the memory bound
}

// memoMaxCells caps the memory held by cached vectors (16 MiB of
// int64s). Exceeding it drops the whole index and starts over: vectors
// already aliased by live net sides remain valid because their storage
// is never recycled, only unreferenced.
const memoMaxCells = 1 << 26

//irlint:hot
func (sm *sweepMemo) lookup(key []int32, h uint64) ([]int64, bool) {
	for e := sm.idx[h]; e != 0; e = sm.next[e-1] {
		if int32sEqual(sm.keys[e-1], key) {
			return sm.vecs[e-1], true
		}
	}
	return nil, false
}

func (sm *sweepMemo) put(key []int32, h uint64, vec []int64) {
	if sm.cells+len(vec) > memoMaxCells {
		sm.idx = nil
		sm.next = sm.next[:0]
		sm.keys = sm.keys[:0]
		sm.vecs = sm.vecs[:0]
		sm.cells = 0
	}
	if sm.idx == nil {
		sm.idx = make(map[uint64]int32)
	}
	sm.keys = append(sm.keys, append([]int32(nil), key...))
	sm.vecs = append(sm.vecs, vec)
	sm.next = append(sm.next, sm.idx[h])
	sm.idx[h] = int32(len(sm.keys))
	sm.cells += len(vec)
}

//irlint:hot
func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// netUndo records one dirty net's pre-move value for Rollback.
type netUndo struct {
	idx int32
	n   netlist.TwoPin
}

// Undo kinds (what Rollback has to invert).
const (
	undoNone      byte = iota
	undoNoop           // nothing changed
	undoIdentical      // axis-cache hit: dirty nets' folds + buffer swaps
	undoRebuild        // axes shifted: whole-state ping-pong swap
	undoInit           // full (re)initialization: replay the previous state
)

// deltaInstr holds the delta engine's resolved telemetry instruments.
type deltaInstr struct {
	incMoves  *obs.Counter // eval_incremental_moves
	fullFalls *obs.Counter // eval_full_fallbacks
	dirtyNets *obs.Counter // eval_dirty_nets
	axisHits  *obs.Counter // eval_axis_cache_hits_total
	axisMiss  *obs.Counter // eval_axis_cache_misses_total
	hitRate   *obs.Gauge   // eval_axis_cache_hit_rate
	vecReuse  *obs.Counter // eval_vec_reuse_total
	vecMemo   *obs.Counter // eval_vec_memo_hits_total
	vecSweeps *obs.Counter // eval_vec_sweeps_total
	rollbacks *obs.Counter // eval_rollbacks_total
	memoHit   *obs.Counter // eval_simpson_memo_hits_total (shared name)
	memoMiss  *obs.Counter // eval_simpson_memo_misses_total
	moveNs    *obs.Histogram
}

func newDeltaInstr(reg *obs.Registry) *deltaInstr {
	return &deltaInstr{
		incMoves:  reg.Counter("eval_incremental_moves"),
		fullFalls: reg.Counter("eval_full_fallbacks"),
		dirtyNets: reg.Counter("eval_dirty_nets"),
		axisHits:  reg.Counter("eval_axis_cache_hits_total"),
		axisMiss:  reg.Counter("eval_axis_cache_misses_total"),
		hitRate:   reg.Gauge("eval_axis_cache_hit_rate"),
		vecReuse:  reg.Counter("eval_vec_reuse_total"),
		vecMemo:   reg.Counter("eval_vec_memo_hits_total"),
		vecSweeps: reg.Counter("eval_vec_sweeps_total"),
		rollbacks: reg.Counter("eval_rollbacks_total"),
		memoHit:   reg.Counter("eval_simpson_memo_hits_total"),
		memoMiss:  reg.Counter("eval_simpson_memo_misses_total"),
		moveNs:    reg.Histogram("eval_move_ns", obs.DurationBuckets),
	}
}

// DeltaEvaluator scores successive (chip, nets) states incrementally.
// It is the move-level counterpart of Evaluator: Score on a state that
// differs from the previous one by a few nets costs O(dirty) instead of
// O(nets), and the result is bit-identical to Evaluator.Score on the
// same input. Rollback restores the cached state to what it was before
// the last Score (one level deep), so a rejected SA move costs only the
// inverse folds.
//
// A DeltaEvaluator is not safe for concurrent use.
type DeltaEvaluator struct {
	m  Model
	ev evaluator // sweep engine in vec-capture mode
	lf nmath.LogFact

	valid bool
	chip  geom.Rect
	nets  []netlist.TwoPin // owned copy of the cached state
	nv    []netVec

	// Sorted coordinate multisets feeding the axis build (chip bounds +
	// two range coordinates per net, per axis).
	msX, msY multiset
	dedup    []float64 // dedup scratch between multiset and merge

	// Current and spare merged axes (ping-pong on rebuild moves).
	axX, axY       geom.Axis
	axXAlt, axYAlt geom.Axis

	// Per-move coordinate change lists.
	rmX, insX, rmY, insY []float64

	// Cross-net sweep cache and its key scratch.
	memo    sweepMemo
	memoKey []int32

	acc, accAlt []int64 // fixed-point grids (ping-pong on rebuild moves)
	prob        []float64
	mp          Map
	cells       []topCell
	wX, wY      []float64 // per-axis cell extents for the score path

	score float64

	// Rollback journal (one level).
	canUndo   bool
	undoKind  byte
	dirty     []int32
	undoNets  []netUndo
	prevChip  geom.Rect
	prevScore float64
	prevValid bool
	prevNets  []netlist.TwoPin // only for undoInit

	instr              *deltaInstr
	axisHits, axisMiss int64
}

// NewDeltaEvaluator returns an incremental move scorer for the model.
// The delta engine is single-threaded: per-move work is far below the
// parallel fan-out break-even, so Model.Workers is ignored.
func (m Model) NewDeltaEvaluator() *DeltaEvaluator {
	if m.Pitch <= 0 {
		panic("core: Pitch must be positive")
	}
	d := &DeltaEvaluator{m: m}
	d.ev = evaluator{m: m, lf: &d.lf, mp: &d.mp, memo: make(map[edgeKey]float64)}
	if m.Obs != nil {
		d.instr = newDeltaInstr(m.Obs)
	}
	return d
}

// NewMoveScorer implements the optional incremental-evaluation hook of
// higher layers (fplan detects it on the estimator): the returned value
// scores successive SA states sharing most of their nets. The `any`
// return keeps core free of pipeline imports, like WithWorkers.
func (m Model) NewMoveScorer() any { return m.NewDeltaEvaluator() }

// Model returns the engine's configuration.
func (d *DeltaEvaluator) Model() Model { return d.m }

// Name identifies the engine in experiment tables.
func (d *DeltaEvaluator) Name() string { return d.m.Name() + "+delta" }

// Score evaluates the state incrementally against the cached previous
// state and returns the chip-level congestion cost, bit-identical to
// Evaluator.Score(chip, nets). The call commits (chip, nets) as the new
// cached state; Rollback reverts to the previous one.
//
//irlint:hot
func (d *DeltaEvaluator) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	in := d.instr
	var t0 time.Time
	if in != nil {
		//irlint:allow detsource(obs timing only)
		t0 = time.Now()
	}
	root := d.m.Spans.Start("move")
	d.apply(chip, nets, root)
	s := d.finishScore()
	root.End()
	if in != nil {
		//irlint:allow detsource(obs timing only)
		in.moveNs.Observe(float64(time.Since(t0).Nanoseconds()))
		d.flushTallies(in)
	}
	return s
}

// Evaluate is Score returning the dense map instead of the top-score
// scalar; it commits the state exactly like Score. The returned Map
// aliases the engine's arena and is valid until the next call.
func (d *DeltaEvaluator) Evaluate(chip geom.Rect, nets []netlist.TwoPin) *Map {
	root := d.m.Spans.Start("move")
	d.apply(chip, nets, root)
	root.End()
	d.refreshProb()
	return &d.mp
}

// Rollback restores the engine's cached state to what it was before the
// last Score/Evaluate call: the grid update is the exact integer
// inverse of the folds the move applied, so the restored accumulator is
// bit-identical to never having scored the rejected state. A second
// Rollback without an intervening Score is a no-op.
//
//irlint:hot
func (d *DeltaEvaluator) Rollback() {
	if !d.canUndo {
		return
	}
	d.canUndo = false
	if in := d.instr; in != nil {
		in.rollbacks.Inc()
	}
	// The "move" root span ended when Score returned, so the rollback
	// stage attaches to the tree by explicit path.
	sp := d.m.Spans.StartAt("move/rollback")
	defer sp.End()
	switch d.undoKind {
	case undoNoop:
		// No state was touched.
	case undoIdentical:
		stride := d.axX.Cells()
		for _, i := range d.dirty {
			nv := &d.nv[i]
			foldSide(d.acc, stride, &nv.cur, -1)
			foldSide(d.acc, stride, &nv.alt, +1)
			nv.cur, nv.alt = nv.alt, nv.cur
		}
		d.msX.swap()
		d.msY.swap()
		d.restoreNets()
	case undoRebuild:
		for i := range d.nv {
			nv := &d.nv[i]
			nv.cur, nv.alt = nv.alt, nv.cur
		}
		d.acc, d.accAlt = d.accAlt, d.acc
		d.axX, d.axXAlt = d.axXAlt, d.axX
		d.axY, d.axYAlt = d.axYAlt, d.axY
		d.msX.swap()
		d.msY.swap()
		d.restoreNets()
	case undoInit:
		if !d.prevValid {
			d.valid = false
			break
		}
		// Replay the previous state from scratch. Rare (first call or a
		// net-count change), so the O(n) rebuild is acceptable.
		d.fullInit(d.prevChip, d.prevNets)
		d.canUndo = false
	}
	d.chip = d.prevChip
	d.score = d.prevScore
	d.undoKind = undoNone
}

func (d *DeltaEvaluator) restoreNets() {
	for _, u := range d.undoNets {
		d.nets[u.idx] = u.n
	}
}

// apply advances the cached state to (chip, nets), updating the
// accumulator through the cheapest valid path. sp (the enclosing
// "move" span, nil when spans are disabled) receives the per-stage
// children: diff, fold-out/fold-in or rebuild.
//
//irlint:hot
func (d *DeltaEvaluator) apply(chip geom.Rect, nets []netlist.TwoPin, sp *obs.Span) {
	if !d.valid || len(nets) != len(d.nets) {
		// Full fallback: no usable cached state (first call) or the net
		// population changed shape.
		d.prevValid = d.valid
		d.prevChip = d.chip
		d.prevScore = d.score
		if d.valid {
			d.prevNets = append(d.prevNets[:0], d.nets...)
		}
		c := sp.Child("rebuild")
		d.fullInit(chip, nets)
		c.End()
		d.undoKind = undoInit
		d.canUndo = true
		if in := d.instr; in != nil {
			in.fullFalls.Inc()
		}
		return
	}

	// Diff the net lists; record pre-move values for rollback.
	c := sp.Child("diff")
	dirty, undo := d.dirty[:0], d.undoNets[:0]
	for i, n := range nets {
		if n != d.nets[i] {
			dirty = append(dirty, int32(i))
			undo = append(undo, netUndo{idx: int32(i), n: d.nets[i]})
		}
	}
	d.dirty, d.undoNets = dirty, undo
	chipChanged := chip != d.chip
	d.prevChip = d.chip
	d.prevScore = d.score
	if in := d.instr; in != nil {
		in.dirtyNets.Add(int64(len(d.dirty)))
	}
	if len(d.dirty) == 0 && !chipChanged {
		c.End()
		d.undoKind = undoNoop
		d.canUndo = true
		return
	}

	// Update the coordinate multisets and rebuild the candidate axes.
	rmX, insX := d.rmX[:0], d.insX[:0]
	rmY, insY := d.rmY[:0], d.insY[:0]
	for k, u := range d.undoNets {
		or := u.n.Range()
		nr := nets[d.dirty[k]].Range()
		rmX = append(rmX, or.X1, or.X2)
		insX = append(insX, nr.X1, nr.X2)
		rmY = append(rmY, or.Y1, or.Y2)
		insY = append(insY, nr.Y1, nr.Y2)
	}
	if chipChanged {
		rmX = append(rmX, d.chip.X1, d.chip.X2)
		insX = append(insX, chip.X1, chip.X2)
		rmY = append(rmY, d.chip.Y1, d.chip.Y2)
		insY = append(insY, chip.Y1, chip.Y2)
	}
	d.rmX, d.insX, d.rmY, d.insY = rmX, insX, rmY, insY
	sort.Float64s(d.rmX)
	sort.Float64s(d.insX)
	sort.Float64s(d.rmY)
	sort.Float64s(d.insY)
	d.msX.apply(d.rmX, d.insX)
	d.msY.apply(d.rmY, d.insY)
	d.axXAlt = d.buildAxis(d.msX.vals, d.axXAlt)
	d.axYAlt = d.buildAxis(d.msY.vals, d.axYAlt)

	// Commit the new inputs (old values are in the undo journal).
	for _, i := range d.dirty {
		d.nets[i] = nets[i]
	}
	d.chip = chip
	c.End()

	if axisEqual(d.axX, d.axXAlt) && axisEqual(d.axY, d.axYAlt) {
		d.axisHits++
		d.identicalMove(sp)
		d.undoKind = undoIdentical
	} else {
		d.axisMiss++
		c = sp.Child("rebuild")
		d.rebuildMove()
		c.End()
		d.undoKind = undoRebuild
	}
	d.canUndo = true
	if in := d.instr; in != nil {
		in.incMoves.Inc()
		if d.undoKind == undoIdentical {
			in.axisHits.Inc()
		} else {
			in.axisMiss.Inc()
		}
		in.hitRate.Set(float64(d.axisHits) / float64(d.axisHits+d.axisMiss))
	}
}

// identicalMove updates the accumulator in place: the axes are
// bit-identical, so clean nets' frames and vectors are untouched and
// only the dirty nets fold out and back in.
//
//irlint:hot
func (d *DeltaEvaluator) identicalMove(sp *obs.Span) {
	d.mp.XAxis, d.mp.YAxis = d.axX, d.axY
	stride := d.axX.Cells()
	for _, i := range d.dirty {
		nv := &d.nv[i]
		c := sp.Child("fold-out")
		foldSide(d.acc, stride, &nv.cur, -1)
		c.End()
		c = sp.Child("fold-in")
		d.computeSide(d.nets[i], &nv.cur, &nv.alt)
		foldSide(d.acc, stride, &nv.alt, +1)
		c.End()
		nv.cur, nv.alt = nv.alt, nv.cur
	}
}

// rebuildMove refolds the whole grid onto the shifted axes. Clean nets
// whose unit-lattice tuple survived the shift realias their stored
// vectors (a frame relocation, no copy); tuple-changed nets hit the
// cross-net sweep memo first and only sweep on a genuinely new shape.
// The previous grid, axes and vectors stay intact in the spare buffers
// for Rollback.
//
//irlint:hot
func (d *DeltaEvaluator) rebuildMove() {
	d.mp.XAxis, d.mp.YAxis = d.axXAlt, d.axYAlt
	stride := d.axXAlt.Cells()
	cells := stride * d.axYAlt.Cells()
	d.accAlt = resizeInt64s(d.accAlt, cells)
	for i := range d.nv {
		nv := &d.nv[i]
		d.computeSide(d.nets[i], &nv.cur, &nv.alt)
		foldSide(d.accAlt, stride, &nv.alt, +1)
		nv.cur, nv.alt = nv.alt, nv.cur
	}
	d.acc, d.accAlt = d.accAlt, d.acc
	d.axX, d.axXAlt = d.axXAlt, d.axX
	d.axY, d.axYAlt = d.axYAlt, d.axY
}

// fullInit rebuilds every cached structure from scratch for (chip,
// nets). Stored vectors still short-circuit the sweeps when their
// tuples match, so even a fallback is cheaper than a cold start.
func (d *DeltaEvaluator) fullInit(chip geom.Rect, nets []netlist.TwoPin) {
	d.chip = chip
	d.nets = append(d.nets[:0], nets...)
	d.msX.init(d.collectCoords(&d.rmX, chip.X1, chip.X2, axisX))
	d.msY.init(d.collectCoords(&d.rmY, chip.Y1, chip.Y2, axisY))
	d.axX = d.buildAxis(d.msX.vals, d.axX)
	d.axY = d.buildAxis(d.msY.vals, d.axY)
	d.mp.XAxis, d.mp.YAxis = d.axX, d.axY
	d.lf.Ensure(unitCells(chip.W(), d.m.Pitch) + unitCells(chip.H(), d.m.Pitch) + 4)

	for len(d.nv) < len(nets) {
		d.nv = append(d.nv, netVec{})
	}
	d.nv = d.nv[:len(nets)]

	stride := d.axX.Cells()
	cells := stride * d.axY.Cells()
	d.acc = resizeInt64s(d.acc, cells)
	for i := range nets {
		nv := &d.nv[i]
		d.computeSide(nets[i], &nv.cur, &nv.alt)
		foldSide(d.acc, stride, &nv.alt, +1)
		nv.cur, nv.alt = nv.alt, nv.cur
	}
	d.valid = true
}

type axisDim bool

const (
	axisX axisDim = false
	axisY axisDim = true
)

// collectCoords gathers the chip bounds plus every net range's lo/hi
// coordinate along one axis into the given scratch buffer.
func (d *DeltaEvaluator) collectCoords(buf *[]float64, lo, hi float64, dim axisDim) []float64 {
	c := (*buf)[:0]
	c = append(c, lo, hi)
	for _, n := range d.nets {
		r := n.Range()
		if dim == axisX {
			c = append(c, r.X1, r.X2)
		} else {
			c = append(c, r.Y1, r.Y2)
		}
	}
	*buf = c
	return c
}

// buildAxis turns a sorted coordinate multiset into the merged
// cutting-line axis, writing into dst's backing array. It mirrors
// geom.NewAxisInPlace (eps dedup) followed by Axis.MergeInPlace
// (2×pitch merge) exactly, so the result is bit-identical to what
// Evaluator.buildAxes derives from the same coordinates.
//
//irlint:hot
func (d *DeltaEvaluator) buildAxis(ms []float64, dst geom.Axis) geom.Axis {
	out := dst[:0]
	if len(ms) == 0 {
		return out
	}
	eps := d.m.Pitch * 1e-9
	dd := d.dedup[:0]
	dd = append(dd, ms[0])
	for _, v := range ms[1:] {
		if v-dd[len(dd)-1] > eps {
			dd = append(dd, v)
		}
	}
	d.dedup = dd
	minGap := 2 * d.m.Pitch
	if d.m.NoMerge || len(dd) <= 2 {
		return append(out, dd...)
	}
	last := len(dd) - 1
	hi := dd[last]
	out = append(out, dd[0])
	for i := 1; i < last; i++ {
		if dd[i]-out[len(out)-1] >= minGap && hi-dd[i] >= minGap {
			out = append(out, dd[i])
		}
	}
	return append(out, hi)
}

func axisEqual(a, b geom.Axis) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// computeSide evaluates net n against the axes currently installed in
// d.mp, into out. The probability sweep only runs when neither cur's
// stored side nor the cross-net sweep memo already holds a vector for
// the same unit-lattice tuple — valid because the vector is a pure
// function of the tuple (the axes only position the frame). Vectors are
// immutable and aliased, never copied.
//
//irlint:hot
func (d *DeltaEvaluator) computeSide(n netlist.TwoPin, cur, out *netSide) {
	f, ok := d.ev.frame(n)
	if !ok {
		out.ok = false
		return
	}
	out.ok = true
	out.typeII = f.typeII
	out.g1, out.g2 = int32(f.g1), int32(f.g2)
	out.cx1, out.cy1 = int32(f.cx1), int32(f.cy1)
	out.cols = int32(f.cx2 - f.cx1 + 1)
	out.rows = int32(f.cy2 - f.cy1 + 1)
	if f.g1 == 1 || f.g2 == 1 {
		out.uniform = true
		out.spans = out.spans[:0]
		return
	}
	out.uniform = false
	d.sideSpans(f, out)
	if sideReusable(cur, out) {
		out.vals = cur.vals
		if in := d.instr; in != nil {
			in.vecReuse.Inc()
		}
		return
	}
	key, h := d.memoTuple(out)
	if vec, ok := d.memo.lookup(key, h); ok {
		out.vals = vec
		if in := d.instr; in != nil {
			in.vecMemo.Inc()
		}
		return
	}
	vec := make([]int64, int(out.cols)*int(out.rows))
	d.ev.ensureLF(f.g1 + f.g2)
	d.ev.vec = vec
	d.ev.addNetSweep(f)
	d.ev.vec = nil
	out.vals = vec
	d.memo.put(key, h, vec)
	if in := d.instr; in != nil {
		in.vecSweeps.Inc()
	}
}

// memoTuple packs a side's unit-lattice tuple into the key scratch and
// returns it with its FNV-1a hash.
//
//irlint:hot
func (d *DeltaEvaluator) memoTuple(s *netSide) ([]int32, uint64) {
	k := d.memoKey[:0]
	t := int32(0)
	if s.typeII {
		t = 1
	}
	k = append(k, s.g1, s.g2, t, s.cols, s.rows)
	k = append(k, s.spans...)
	d.memoKey = k
	h := uint64(14695981039346656037)
	for _, v := range k {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return k, h
}

// sideSpans derives the per-cell unit spans of frame f, replicating the
// colLo/colHi/rowLo/rowHi computation of addNetSweep (including the
// type II row reflection).
//
//irlint:hot
func (d *DeltaEvaluator) sideSpans(f netFrame, s *netSide) {
	cols, rows := int(s.cols), int(s.rows)
	s.spans = resizeInt32s(s.spans, 2*(cols+rows))
	sp := s.spans
	pitch := d.m.Pitch
	for i := 0; i < cols; i++ {
		ix := f.cx1 + i
		sp[2*i] = int32(unitIndexLo(d.mp.XAxis[ix], f.x0, pitch, f.g1))
		sp[2*i+1] = int32(unitIndexHi(d.mp.XAxis[ix+1], f.x0, pitch, f.g1))
	}
	off := 2 * cols
	for j := 0; j < rows; j++ {
		iy := f.cy1 + j
		y1 := unitIndexLo(d.mp.YAxis[iy], f.y0, pitch, f.g2)
		y2 := unitIndexHi(d.mp.YAxis[iy+1], f.y0, pitch, f.g2)
		if f.typeII {
			y1, y2 = f.g2-1-y2, f.g2-1-y1
		}
		sp[off+2*j] = int32(y1)
		sp[off+2*j+1] = int32(y2)
	}
}

// sideReusable reports whether cur's stored vector is valid for out:
// the unit-lattice tuples must match exactly. Positions (cx1, cy1) are
// deliberately excluded — translation preserves the vector.
func sideReusable(cur, out *netSide) bool {
	if cur == nil || !cur.ok || cur.uniform ||
		cur.g1 != out.g1 || cur.g2 != out.g2 || cur.typeII != out.typeII ||
		cur.cols != out.cols || cur.rows != out.rows ||
		len(cur.spans) != len(out.spans) {
		return false
	}
	for i, v := range cur.spans {
		if v != out.spans[i] {
			return false
		}
	}
	return true
}

// foldSide adds (sign +1) or subtracts (sign -1) a net side's
// contribution vector into the accumulator grid.
//
//irlint:hot
func foldSide(acc []int64, stride int, s *netSide, sign int64) {
	if !s.ok {
		return
	}
	cx1, cy1 := int(s.cx1), int(s.cy1)
	cols, rows := int(s.cols), int(s.rows)
	if s.uniform {
		add := sign * probOne
		for j := 0; j < rows; j++ {
			dst := acc[(cy1+j)*stride+cx1:][:cols]
			for i := range dst {
				dst[i] += add
			}
		}
		return
	}
	idx := 0
	for j := 0; j < rows; j++ {
		dst := acc[(cy1+j)*stride+cx1:][:cols]
		src := s.vals[idx : idx+cols]
		if sign > 0 {
			for i, v := range src {
				dst[i] += v
			}
		} else {
			for i, v := range src {
				dst[i] -= v
			}
		}
		idx += cols
	}
}

// refreshProb converts the fixed-point accumulator to the float map the
// consumers read, exactly like Evaluator.Evaluate's final conversion.
//
//irlint:hot
func (d *DeltaEvaluator) refreshProb() {
	cells := d.axX.Cells() * d.axY.Cells()
	d.prob = resizeFloats(d.prob, cells)
	for i, v := range d.acc[:cells] {
		d.prob[i] = float64(v) * probInv
	}
	d.mp = Map{Chip: d.chip, XAxis: d.axX, YAxis: d.axY, Prob: d.prob}
}

// finishScore runs the top-fraction selection straight off the
// fixed-point accumulator, matching Evaluator.Score bit for bit
// without materializing the float map: the density of cell (i, j) is
// (float64(acc)·probInv)/(w·h), exactly the operations Map.topScore
// performs via Prob and Rect, and the selection itself is the shared
// weightedTopSum. Evaluate still converts the full map on demand.
//
//irlint:hot
func (d *DeltaEvaluator) finishScore() float64 {
	frac := d.m.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	cols, rows := d.axX.Cells(), d.axY.Cells()
	d.wX = resizeFloats(d.wX, cols)
	d.wY = resizeFloats(d.wY, rows)
	for i := 0; i < cols; i++ {
		d.wX[i] = d.axX[i+1] - d.axX[i]
	}
	for j := 0; j < rows; j++ {
		d.wY[j] = d.axY[j+1] - d.axY[j]
	}
	cells := d.cells[:0]
	for j := 0; j < rows; j++ {
		row := d.acc[j*cols : (j+1)*cols]
		h := d.wY[j]
		for i, v := range row {
			a := d.wX[i] * h
			if a <= 0 {
				continue
			}
			cells = append(cells, topCell{d: float64(v) * probInv / a, area: a})
		}
	}
	d.cells = cells
	var s float64
	switch {
	case len(cells) == 0:
		s = 0
	case frac*d.chip.Area() <= 0:
		mx := cells[0].d
		for _, c := range cells[1:] {
			if c.d > mx {
				mx = c.d
			}
		}
		s = mx
	default:
		sum, used := weightedTopSum(cells, frac*d.chip.Area())
		if used == 0 {
			s = 0
		} else {
			s = sum / used
		}
	}
	d.score = s
	return s
}

// flushTallies folds the sweep engine's memo tallies into the registry.
func (d *DeltaEvaluator) flushTallies(in *deltaInstr) {
	in.memoHit.Add(d.ev.nHit)
	in.memoMiss.Add(d.ev.nMiss)
	d.ev.nHit, d.ev.nMiss, d.ev.nExactLanes = 0, 0, 0
}

// multiset is a sorted multiset of float64 coordinates with a spare
// buffer: apply writes the updated sequence into the spare and swaps,
// keeping the previous sequence intact for rollback.
type multiset struct {
	vals, spare []float64
}

func (s *multiset) init(coords []float64) {
	s.vals = append(s.vals[:0], coords...)
	sort.Float64s(s.vals)
}

// apply removes one instance of every value in rm and inserts every
// value in ins (both sorted), via a single linear merge. Every rm value
// must be present (they are exact copies of previously inserted
// coordinates).
//
//irlint:hot
func (s *multiset) apply(rm, ins []float64) {
	out := s.spare[:0]
	j, k := 0, 0
	for _, v := range s.vals {
		for k < len(ins) && ins[k] <= v {
			out = append(out, ins[k])
			k++
		}
		if j < len(rm) && rm[j] == v {
			j++
			continue
		}
		out = append(out, v)
	}
	for ; k < len(ins); k++ {
		out = append(out, ins[k])
	}
	s.spare = s.vals
	s.vals = out
}

// swap restores the pre-apply sequence (single-level rollback).
func (s *multiset) swap() { s.vals, s.spare = s.spare, s.vals }

func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
