package core

import (
	"math"
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// evaluatePerCell runs the model with the reference per-cell evaluator.
func evaluatePerCell(m Model, chip geom.Rect, nets []netlist.TwoPin) *Map {
	// Reimplements Model.Evaluate with perCell forced.
	eps := m.Pitch * 1e-9
	xs := []float64{chip.X1, chip.X2}
	ys := []float64{chip.Y1, chip.Y2}
	for _, n := range nets {
		r := n.Range()
		xs = append(xs, r.X1, r.X2)
		ys = append(ys, r.Y1, r.Y2)
	}
	xAxis := geom.NewAxis(xs, eps)
	yAxis := geom.NewAxis(ys, eps)
	if !m.NoMerge {
		xAxis = xAxis.Merge(2 * m.Pitch)
		yAxis = yAxis.Merge(2 * m.Pitch)
	}
	mp := &Map{Chip: chip, XAxis: xAxis, YAxis: yAxis}
	mp.Prob = make([]float64, mp.Cols()*mp.Rows())
	acc := make([]int64, len(mp.Prob))
	ev := &evaluator{m: m, mp: mp, perCell: true, out: acc}
	for _, n := range nets {
		ev.addNet(n)
	}
	for i, v := range acc {
		mp.Prob[i] = float64(v) * probInv
	}
	return mp
}

func TestSweepMatchesPerCell(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, cfg := range []Model{
		{Pitch: 30},
		{Pitch: 30, Exact: true},
		{Pitch: 30, ExactSpanLimit: 2}, // force Simpson on most edges
		{Pitch: 30, NoMerge: true},
		{Pitch: 17}, // unaligned: cutting lines off the unit lattice
	} {
		for trial := 0; trial < 6; trial++ {
			nets := snapNets(rng, 25)
			// Add some type II and degenerate nets explicitly.
			nets = append(nets,
				netlist.TwoPin{A: geom.Pt{X: 60, Y: 540}, B: geom.Pt{X: 510, Y: 90}},
				netlist.TwoPin{A: geom.Pt{X: 90, Y: 300}, B: geom.Pt{X: 480, Y: 300}},
				netlist.TwoPin{A: geom.Pt{X: 240, Y: 240}, B: geom.Pt{X: 240, Y: 240}},
			)
			sweep := cfg.Evaluate(chip, nets)
			ref := evaluatePerCell(cfg, chip, nets)
			if sweep.GridCount() != ref.GridCount() {
				t.Fatalf("%+v: grid counts differ", cfg)
			}
			for i := range sweep.Prob {
				if math.IsNaN(sweep.Prob[i]) || math.IsNaN(ref.Prob[i]) ||
					math.Abs(sweep.Prob[i]-ref.Prob[i]) > 1e-6 {
					t.Fatalf("cfg %+v trial %d cell %d: sweep %.9f vs per-cell %.9f",
						cfg, trial, i, sweep.Prob[i], ref.Prob[i])
				}
			}
		}
	}
}

func TestSweepHandlesHugeNet(t *testing.T) {
	// A net spanning the whole chip with a tiny pitch produces long
	// sweeps; probabilities must stay in [0, 1].
	big := geom.Rect{X1: 0, Y1: 0, X2: 12000, Y2: 9000}
	nets := []netlist.TwoPin{
		{A: geom.Pt{X: 0, Y: 0}, B: geom.Pt{X: 12000, Y: 9000}},
		{A: geom.Pt{X: 3000, Y: 6000}, B: geom.Pt{X: 9000, Y: 3000}},
	}
	m := Model{Pitch: 10}
	mp := m.Evaluate(big, nets)
	for i, p := range mp.Prob {
		if p < -1e-9 || p > 2+1e-9 || math.IsNaN(p) {
			t.Fatalf("cell %d: probability sum %g out of range", i, p)
		}
	}
}
