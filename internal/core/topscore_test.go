package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"irgrid/internal/geom"
)

// These tests lock TopScore's edge-case behavior independently of how
// the selection is implemented (full sort in the seed, partial
// quickselect in the engine): zero-area cells are skipped, density
// ties at the budget boundary contribute exactly the tied density,
// and frac >= 1 degrades to total mass over total area.

func TestTopScoreSkipsZeroAreaCells(t *testing.T) {
	// The x axis contains a duplicated cutting line, producing a
	// zero-width (zero-area) middle cell that must not contribute to —
	// or poison — the score, even though it carries probability mass.
	mp := &Map{
		Chip:  geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 10},
		XAxis: geom.Axis{0, 50, 50, 100},
		YAxis: geom.Axis{0, 10},
		Prob:  []float64{1, 7, 2},
	}
	// Cells: [0,50]x[0,10] F=1 (d=0.002), zero-area F=7, [50,100] F=2
	// (d=0.004). Top 50% = 500 µm² = exactly the denser cell.
	if got, want := mp.TopScore(0.5), 0.004; math.Abs(got-want) > 1e-12 {
		t.Errorf("TopScore(0.5) = %g, want %g", got, want)
	}
	// Full budget: mean density over the two real cells.
	if got, want := mp.TopScore(1), 3.0/1000; math.Abs(got-want) > 1e-12 {
		t.Errorf("TopScore(1) = %g, want %g", got, want)
	}
}

func TestTopScoreTiesAtBudgetBoundary(t *testing.T) {
	// Four equal-density cells straddle the budget boundary: whichever
	// of the tied cells selection picks, the score is the tied density.
	mp := &Map{
		Chip:  geom.Rect{X1: 0, Y1: 0, X2: 400, Y2: 10},
		XAxis: geom.Axis{0, 100, 200, 300, 400},
		YAxis: geom.Axis{0, 10},
		Prob:  []float64{3, 3, 3, 3},
	}
	for _, frac := range []float64{0.10, 0.25, 0.375, 0.5, 0.75} {
		if got, want := mp.TopScore(frac), 0.003; math.Abs(got-want) > 1e-12 {
			t.Errorf("TopScore(%g) = %g, want %g", frac, got, want)
		}
	}
	// A strictly denser cell plus ties below the boundary: the dense
	// cell is consumed whole, the remainder at the tied density.
	mp.Prob[1] = 6 // density 0.006 on cell 1
	// Budget 0.5 → 2000 µm²: cell 1 (1000 µm², d=.006) + 1000 µm² at .003.
	want := (0.006*1000 + 0.003*1000) / 2000
	if got := mp.TopScore(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("TopScore(0.5) with dense cell = %g, want %g", got, want)
	}
}

func TestTopScoreFracAboveOne(t *testing.T) {
	mp := &Map{
		Chip:  geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 10},
		XAxis: geom.Axis{0, 100, 300},
		YAxis: geom.Axis{0, 10},
		Prob:  []float64{5, 1},
	}
	// frac >= 1 consumes every cell: total mass / total area.
	want := (5.0 + 1.0) / 3000
	for _, frac := range []float64{1, 1.5, 100} {
		if got := mp.TopScore(frac); math.Abs(got-want) > 1e-12 {
			t.Errorf("TopScore(%g) = %g, want %g", frac, got, want)
		}
	}
}

func TestTopScoreNonPositiveBudget(t *testing.T) {
	mp := &Map{
		Chip:  geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 10},
		XAxis: geom.Axis{0, 100, 300},
		YAxis: geom.Axis{0, 10},
		Prob:  []float64{1, 4},
	}
	// frac == 0 makes the area budget 0: the score degenerates to the
	// maximum cell density.
	if got, want := mp.TopScore(0), 4.0/2000; math.Abs(got-want) > 1e-12 {
		t.Errorf("TopScore(0) = %g, want %g", got, want)
	}
}

func TestTopScoreEmptyMap(t *testing.T) {
	mp := &Map{Chip: geom.Rect{X1: 0, Y1: 0, X2: 10, Y2: 10}}
	if got := mp.TopScore(0.1); got != 0 {
		t.Errorf("TopScore on empty map = %g, want 0", got)
	}
}

// TestTopScoreMatchesSortedReference cross-checks the selection
// against a straightforward fully-sorted reference on random maps.
func TestTopScoreMatchesSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		nx, ny := 2+rng.Intn(12), 2+rng.Intn(12)
		xAxis := randomAxis(rng, nx, 600)
		yAxis := randomAxis(rng, ny, 400)
		mp := &Map{
			Chip:  geom.Rect{X1: xAxis[0], Y1: yAxis[0], X2: xAxis[len(xAxis)-1], Y2: yAxis[len(yAxis)-1]},
			XAxis: xAxis,
			YAxis: yAxis,
			Prob:  make([]float64, (len(xAxis)-1)*(len(yAxis)-1)),
		}
		for i := range mp.Prob {
			mp.Prob[i] = rng.Float64() * 5
		}
		for _, frac := range []float64{0.05, 0.1, 0.33, 0.9, 1} {
			got := mp.TopScore(frac)
			want := sortedTopScore(mp, frac)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d frac %g: TopScore %.15g, sorted reference %.15g", trial, frac, got, want)
			}
		}
	}
}

func randomAxis(rng *rand.Rand, cells int, span float64) geom.Axis {
	cuts := make([]float64, cells+1)
	for i := range cuts {
		cuts[i] = rng.Float64() * span
	}
	sort.Float64s(cuts)
	return geom.Axis(cuts)
}

// sortedTopScore is the seed implementation: rank every positive-area
// cell by density, take whole cells until the budget, the last
// partially.
func sortedTopScore(mp *Map, frac float64) float64 {
	type cell struct{ d, area float64 }
	var cells []cell
	for iy := 0; iy < mp.Rows(); iy++ {
		for ix := 0; ix < mp.Cols(); ix++ {
			a := mp.Rect(ix, iy).Area()
			if a <= 0 {
				continue
			}
			cells = append(cells, cell{d: mp.At(ix, iy) / a, area: a})
		}
	}
	if len(cells) == 0 {
		return 0
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].d > cells[j].d })
	budget := frac * mp.Chip.Area()
	if budget <= 0 {
		return cells[0].d
	}
	var sum, used float64
	for _, c := range cells {
		a := math.Min(c.area, budget-used)
		sum += c.d * a
		used += a
		if used >= budget {
			break
		}
	}
	if used == 0 {
		return 0
	}
	return sum / used
}
