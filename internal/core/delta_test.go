package core

import (
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// mutateNets applies a random SA-like perturbation to the net list:
// translate a contiguous block of nets (a subtree move), rewire a
// single net, or swap two nets' geometry. It mirrors the dirty-set
// shapes the floorplanner produces without depending on fplan.
func mutateNets(rng *rand.Rand, nets []netlist.TwoPin) {
	switch rng.Intn(4) {
	case 0: // translate a block by a lattice multiple
		lo := rng.Intn(len(nets))
		hi := lo + 1 + rng.Intn(len(nets)-lo)
		d := geom.Pt{
			X: float64(rng.Intn(7)-3) * 30,
			Y: float64(rng.Intn(7)-3) * 30,
		}
		for i := lo; i < hi; i++ {
			nets[i].A = clampPt(nets[i].A.Add(d))
			nets[i].B = clampPt(nets[i].B.Add(d))
		}
	case 1: // rewire one net
		i := rng.Intn(len(nets))
		nets[i] = netlist.TwoPin{
			A: geom.Pt{X: float64(rng.Intn(21)) * 30, Y: float64(rng.Intn(21)) * 30},
			B: geom.Pt{X: float64(rng.Intn(21)) * 30, Y: float64(rng.Intn(21)) * 30},
		}
	case 2: // swap two nets (multiset unchanged → axis-cache hit)
		i, j := rng.Intn(len(nets)), rng.Intn(len(nets))
		nets[i], nets[j] = nets[j], nets[i]
	case 3: // off-lattice jitter (exercises dedup/merge boundaries)
		i := rng.Intn(len(nets))
		nets[i].A.X += float64(rng.Intn(11) - 5)
		nets[i].B.Y += float64(rng.Intn(11) - 5)
		nets[i].A = clampPt(nets[i].A)
		nets[i].B = clampPt(nets[i].B)
	}
}

func clampPt(p geom.Pt) geom.Pt {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 600 {
			return 600
		}
		return v
	}
	return geom.Pt{X: clamp(p.X), Y: clamp(p.Y)}
}

// requireSameMap asserts bit-identity of the delta map against a fresh
// full evaluation.
func requireSameMap(t *testing.T, tag string, got, want *Map) {
	t.Helper()
	if !axisEqual(got.XAxis, want.XAxis) || !axisEqual(got.YAxis, want.YAxis) {
		t.Fatalf("%s: axes differ: %d×%d vs %d×%d cells",
			tag, got.Cols(), got.Rows(), want.Cols(), want.Rows())
	}
	if got.Chip != want.Chip {
		t.Fatalf("%s: chip differs", tag)
	}
	for i := range want.Prob {
		if got.Prob[i] != want.Prob[i] {
			t.Fatalf("%s: cell %d: delta %v vs full %v (diff %g)",
				tag, i, got.Prob[i], want.Prob[i], got.Prob[i]-want.Prob[i])
		}
	}
}

// TestDeltaBitIdentical drives randomized move sequences — including
// rejected moves rolled back — through the delta engine and asserts
// that every accepted state's map and score are bit-identical to a
// from-scratch evaluation, across model configurations.
func TestDeltaBitIdentical(t *testing.T) {
	for _, cfg := range []Model{
		{Pitch: 30},
		{Pitch: 30, Exact: true},
		{Pitch: 30, ExactSpanLimit: 2},
		{Pitch: 30, NoMerge: true},
		{Pitch: 17},
	} {
		rng := rand.New(rand.NewSource(97))
		nets := snapNets(rng, 60)
		d := cfg.NewDeltaEvaluator()
		full := cfg.NewEvaluator()
		cur := append([]netlist.TwoPin(nil), nets...)
		ch := chip
		for move := 0; move < 120; move++ {
			cand := append([]netlist.TwoPin(nil), cur...)
			mutateNets(rng, cand)
			if rng.Intn(10) == 0 { // occasional chip resize
				ch.X2 = 570 + float64(rng.Intn(3))*30
			}
			ds := d.Score(ch, cand)
			fs := full.Score(ch, cand)
			if ds != fs {
				t.Fatalf("cfg %+v move %d: delta score %v != full %v", cfg, move, ds, fs)
			}
			if rng.Intn(3) == 0 {
				d.Rollback() // reject
			} else {
				cur = cand // accept
			}
			// Cross-check the dense map on the engine's current state.
			if move%20 == 19 {
				gm := d.Evaluate(ch, cur)
				wm := full.Evaluate(ch, cur)
				requireSameMap(t, cfg.Name(), gm, wm)
			}
		}
	}
}

// TestDeltaRollbackExact asserts that a rejected move leaves no trace:
// after Rollback the engine's map is bit-identical to the map before
// the move, and a second Rollback is a no-op.
func TestDeltaRollbackExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := Model{Pitch: 30}
	nets := snapNets(rng, 50)
	d := m.NewDeltaEvaluator()
	full := m.NewEvaluator()
	d.Score(chip, nets)
	before := full.Evaluate(chip, nets).Clone()
	beforeScore := full.Score(chip, nets)

	for trial := 0; trial < 40; trial++ {
		cand := append([]netlist.TwoPin(nil), nets...)
		mutateNets(rng, cand)
		d.Score(chip, cand)
		d.Rollback()
		d.Rollback() // must be a no-op
		got := d.Evaluate(chip, nets)
		requireSameMap(t, "rollback", got, before)
		if s := d.Score(chip, nets); s != beforeScore {
			t.Fatalf("trial %d: score after rollback %v != %v", trial, s, beforeScore)
		}
	}
}

// TestDeltaFullFallback exercises the net-count-change fallback and its
// rollback (a full replay of the previous state).
func TestDeltaFullFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := Model{Pitch: 30}
	nets := snapNets(rng, 40)
	grown := snapNets(rng, 55)
	d := m.NewDeltaEvaluator()
	full := m.NewEvaluator()

	if d.Score(chip, nets) != full.Score(chip, nets) {
		t.Fatal("initial score differs")
	}
	if d.Score(chip, grown) != full.Score(chip, grown) {
		t.Fatal("score after net-count change differs")
	}
	d.Rollback()
	requireSameMap(t, "fallback rollback", d.Evaluate(chip, nets), full.Evaluate(chip, nets))

	// Rollback of the very first Score invalidates the cache; the next
	// Score must re-initialize and still match.
	d2 := m.NewDeltaEvaluator()
	d2.Score(chip, nets)
	d2.Rollback()
	if d2.Score(chip, grown) != full.Score(chip, grown) {
		t.Fatal("score after initial-call rollback differs")
	}
}

// TestDeltaAxisCachePaths verifies both tiers are actually taken: net
// swaps keep the coordinate multiset (axis-cache hit, in-place update)
// and rewires shift it (miss, grid refold).
func TestDeltaAxisCachePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := Model{Pitch: 30}
	nets := snapNets(rng, 40)
	d := m.NewDeltaEvaluator()
	full := m.NewEvaluator()
	d.Score(chip, nets)

	// Swap two nets: the multiset — hence the axes — is unchanged.
	cand := append([]netlist.TwoPin(nil), nets...)
	cand[3], cand[17] = cand[17], cand[3]
	if d.Score(chip, cand) != full.Score(chip, cand) {
		t.Fatal("swap move differs")
	}
	if d.axisHits != 1 {
		t.Fatalf("expected 1 axis-cache hit, have %d (misses %d)", d.axisHits, d.axisMiss)
	}

	// Shrink the chip: the boundary cutting lines move, the axes shift.
	small := chip
	small.X2, small.Y2 = 510, 510
	cand2 := append([]netlist.TwoPin(nil), cand...)
	for i := range cand2 {
		cand2[i].A = geom.Pt{X: min(cand2[i].A.X, 510), Y: min(cand2[i].A.Y, 510)}
		cand2[i].B = geom.Pt{X: min(cand2[i].B.X, 510), Y: min(cand2[i].B.Y, 510)}
	}
	if d.Score(small, cand2) != full.Score(small, cand2) {
		t.Fatal("chip-resize move differs")
	}
	if d.axisMiss == 0 {
		t.Fatal("expected an axis-cache miss for the chip-resize move")
	}
}

// TestDeltaSteadyStateAllocs replays an identical move sequence twice:
// the first pass warms every arena to its high-water mark, the second
// must not allocate at all — the delta hot path is zero-alloc.
func TestDeltaSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	rng := rand.New(rand.NewSource(31))
	m := Model{Pitch: 30}
	base := snapNets(rng, 60)
	type step struct {
		nets   []netlist.TwoPin
		reject bool
	}
	cur := append([]netlist.TwoPin(nil), base...)
	var steps []step
	for i := 0; i < 60; i++ {
		cand := append([]netlist.TwoPin(nil), cur...)
		mutateNets(rng, cand)
		rej := rng.Intn(3) == 0
		steps = append(steps, step{nets: cand, reject: rej})
		if !rej {
			cur = cand
		}
	}
	d := m.NewDeltaEvaluator()
	replay := func() {
		d.Score(chip, base)
		for _, s := range steps {
			d.Score(chip, s.nets)
			if s.reject {
				d.Rollback()
			}
		}
	}
	replay() // warm arenas and memo
	allocs := testing.AllocsPerRun(3, replay)
	if allocs > 0 {
		t.Fatalf("delta move path allocates: %.1f allocs per replay", allocs)
	}
}
