package core

import (
	"math"
	"testing"
)

func TestFunction1ApproxDeviationFig8(t *testing.T) {
	// Figure 8 / §4.5: on a 31×21 type I net with an IR-grid whose top
	// row is y2 = 15, the approximation of Function (1) tracks the
	// exact values for x = 10..20 with deviation "generally less than
	// 0.05".
	g1, g2 := 31, 21
	y2 := 15
	for x := 10; x <= 20; x++ {
		exact := Function1Exact(g1, g2, x, y2)
		approx := Function1Approx(g1, g2, x, y2)
		if math.IsNaN(approx) {
			t.Fatalf("x=%d: unexpected NaN", x)
		}
		if d := math.Abs(exact - approx); d > 0.05 {
			t.Errorf("x=%d: exact %.4f approx %.4f deviation %.4f > 0.05", x, exact, approx, d)
		}
	}
}

func TestFunction1ApproxFailurePoints(t *testing.T) {
	// §4.5: the approximation is undefined where q = (x+y2)/(g1+g2-3)
	// reaches 0 or ≥ 1; Figure 8(d) "shows no value when x = 30".
	g1, g2 := 31, 21
	if !math.IsNaN(Function1Approx(g1, g2, 30, 19)) {
		t.Error("x=30,y2=19 should be a failure point (q=1)")
	}
	if !math.IsNaN(Function1Approx(g1, g2, 30, 20)) {
		t.Error("x=30,y2=20 should be a failure point (q>1)")
	}
	if !math.IsNaN(Function1Approx(g1, g2, 0, 0)) {
		t.Error("x=0,y2=0 should be a failure point (q=0)")
	}
	if math.IsNaN(Function1Approx(g1, g2, 15, 10)) {
		t.Error("interior point should be defined")
	}
}

func TestFunction1ApproxDeviationBroad(t *testing.T) {
	// The 0.05 bound holds across a range of net sizes for interior
	// points away from the §4.5 failure set.
	for _, g := range [][2]int{{10, 10}, {31, 21}, {20, 40}, {50, 50}} {
		g1, g2 := g[0], g[1]
		for y2 := 1; y2 < g2-1; y2 += 3 {
			for x := 1; x < g1-1; x += 3 {
				q := float64(x+y2) / float64(g1+g2-3)
				if q <= 0.05 || q >= 0.95 {
					continue // near the failure set
				}
				exact := Function1Exact(g1, g2, x, y2)
				approx := Function1Approx(g1, g2, x, y2)
				if math.IsNaN(approx) {
					continue
				}
				if d := math.Abs(exact - approx); d > 0.05 {
					t.Errorf("g=%dx%d x=%d y2=%d: deviation %.4f", g1, g2, x, y2, d)
				}
			}
		}
	}
}

// approxSimpson forces the Theorem 1 Simpson path on every
// non-degenerate edge, bypassing the adaptive exact-span shortcut.
func approxSimpson(g1, g2, x1, x2, y1, y2 int) float64 {
	if coversCell(x1, x2, y1, y2, 0, 0) || coversCell(x1, x2, y1, y2, g1-1, g2-1) ||
		coversCell(x1, x2, y1, y2, g1-2, g2-1) || coversCell(x1, x2, y1, y2, g1-1, g2-2) {
		return 1
	}
	ev := &evaluator{m: Model{Pitch: 1, ExactSpanLimit: -1}}
	return ev.approxProb(g1, g2, x1, x2, y1, y2)
}

func TestApproxCrossProbNearExact(t *testing.T) {
	// Whole-IR-grid probabilities: Theorem 1 integrals (with the
	// half-cell continuity correction) vs Formula 3. The corrected
	// integrals track the exact sums within the paper's 0.05 pointwise
	// budget.
	type tc struct{ g1, g2, x1, x2, y1, y2 int }
	cases := []tc{
		{31, 21, 10, 20, 2, 15},
		{31, 21, 5, 12, 3, 9},
		{20, 20, 4, 10, 6, 14},
		{40, 30, 10, 25, 8, 20},
		{15, 25, 2, 8, 5, 18},
		{12, 12, 3, 6, 3, 6},
		{10, 10, 5, 5, 2, 7}, // single column: exact top edge + Simpson right edge
		{10, 10, 2, 7, 5, 5}, // single row
	}
	for _, c := range cases {
		exact := ExactCrossProb(c.g1, c.g2, c.x1, c.x2, c.y1, c.y2)
		simpson := approxSimpson(c.g1, c.g2, c.x1, c.x2, c.y1, c.y2)
		if d := math.Abs(exact - simpson); d > 0.05 {
			t.Errorf("%+v: exact %.4f simpson %.4f deviation %.4f", c, exact, simpson, d)
		}
		// The adaptive default (exact short edges) must be at least as
		// close to the exact value as the pure Simpson path.
		adaptive := ApproxCrossProb(c.g1, c.g2, c.x1, c.x2, c.y1, c.y2, 0)
		if math.Abs(exact-adaptive) > math.Abs(exact-simpson)+1e-9 {
			t.Errorf("%+v: adaptive %.4f worse than simpson %.4f (exact %.4f)",
				c, adaptive, simpson, exact)
		}
	}
}

func TestPaperBoundsUndercount(t *testing.T) {
	// With the paper's literal Theorem 1 bounds the integral covers one
	// fewer cell per edge, so it must not exceed the corrected value
	// and must undershoot the exact sum on interior IR-grids.
	g1, g2, x1, x2, y1, y2 := 31, 21, 10, 20, 2, 15
	exact := ExactCrossProb(g1, g2, x1, x2, y1, y2)
	evPaper := &evaluator{m: Model{Pitch: 1, PaperBounds: true, ExactSpanLimit: -1}}
	paper := evPaper.approxProb(g1, g2, x1, x2, y1, y2)
	evCorr := &evaluator{m: Model{Pitch: 1, ExactSpanLimit: -1}}
	corr := evCorr.approxProb(g1, g2, x1, x2, y1, y2)
	if paper >= corr {
		t.Errorf("paper bounds %.4f should be below corrected %.4f", paper, corr)
	}
	if math.Abs(corr-exact) >= math.Abs(paper-exact) {
		t.Errorf("correction did not improve: |%.4f-%.4f| vs |%.4f-%.4f|", corr, exact, paper, exact)
	}
}

func TestApproxCrossProbPinAndErrorCells(t *testing.T) {
	g1, g2 := 10, 10
	// Pin cells and the §4.5 error cells are assigned 1 directly.
	for _, c := range [][4]int{
		{0, 0, 0, 0},                     // source
		{g1 - 1, g1 - 1, g2 - 1, g2 - 1}, // sink
		{g1 - 2, g1 - 2, g2 - 1, g2 - 1}, // error cell left of sink
		{g1 - 1, g1 - 1, g2 - 2, g2 - 2}, // error cell below sink
		{g1 - 2, g1 - 1, g2 - 2, g2 - 1}, // block containing all of them
	} {
		if got := ApproxCrossProb(g1, g2, c[0], c[1], c[2], c[3], 0); got != 1 {
			t.Errorf("cells %v: got %g, want 1", c, got)
		}
	}
}

func TestApproxCrossProbInUnitRange(t *testing.T) {
	for _, c := range [][6]int{
		{31, 21, 10, 20, 2, 15},
		{8, 8, 1, 3, 1, 3},
		{50, 40, 5, 45, 5, 35},
	} {
		p := ApproxCrossProb(c[0], c[1], c[2], c[3], c[4], c[5], 0)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("%v: probability %g outside [0,1]", c, p)
		}
	}
}

func TestApproxDegenerateEdgesFallBackToExact(t *testing.T) {
	// Single-column/row IR-grids and g=2 lattices use the exact sums,
	// so they must match Formula 3 exactly.
	// Cases where *both* edges are degenerate, so the whole value is
	// computed by the exact fallback.
	cases := [][6]int{
		{2, 5, 0, 0, 1, 2},   // g1 = 2: top edge single col, right edge g1==2
		{5, 2, 1, 2, 0, 0},   // g2 = 2
		{10, 10, 4, 4, 3, 3}, // single cell
	}
	for _, c := range cases {
		exact := ExactCrossProb(c[0], c[1], c[2], c[3], c[4], c[5])
		approx := ApproxCrossProb(c[0], c[1], c[2], c[3], c[4], c[5], 0)
		if math.Abs(exact-approx) > 1e-9 {
			t.Errorf("%v: approx %g != exact %g on degenerate edge", c, approx, exact)
		}
	}
}

func TestSimpsonNConvergence(t *testing.T) {
	// More Simpson points should not make the approximation worse on a
	// smooth interior IR-grid.
	g1, g2, x1, x2, y1, y2 := 31, 21, 10, 20, 2, 15
	exact := ExactCrossProb(g1, g2, x1, x2, y1, y2)
	force := func(n int) float64 {
		ev := &evaluator{m: Model{Pitch: 1, SimpsonN: n, ExactSpanLimit: -1}}
		return ev.approxProb(g1, g2, x1, x2, y1, y2)
	}
	d8 := math.Abs(force(8) - exact)
	d64 := math.Abs(force(64) - exact)
	// At n=8 Simpson is already near-converged on this smooth
	// integrand; n=64 must not be meaningfully worse (the residual is
	// the normal-approximation error, not quadrature error).
	if d64 > d8+1e-3 {
		t.Errorf("Simpson n=64 worse than n=8: %g vs %g", d64, d8)
	}
}
