package core

import (
	"math"
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

var chip = geom.Rect{X1: 0, Y1: 0, X2: 600, Y2: 600}

// snapNets generates random nets with pins on 30 µm intersections, the
// precondition the intersection-to-intersection pin placement
// establishes.
func snapNets(rng *rand.Rand, n int) []netlist.TwoPin {
	nets := make([]netlist.TwoPin, n)
	for i := range nets {
		nets[i] = netlist.TwoPin{
			A: geom.Pt{X: float64(rng.Intn(21)) * 30, Y: float64(rng.Intn(21)) * 30},
			B: geom.Pt{X: float64(rng.Intn(21)) * 30, Y: float64(rng.Intn(21)) * 30},
		}
	}
	return nets
}

func TestEvaluateTilesChip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := Model{Pitch: 30}
	mp := m.Evaluate(chip, snapNets(rng, 40))
	// IR-grids tile the chip: areas sum to the chip area.
	var sum float64
	for iy := 0; iy < mp.Rows(); iy++ {
		for ix := 0; ix < mp.Cols(); ix++ {
			sum += mp.Rect(ix, iy).Area()
		}
	}
	if math.Abs(sum-chip.Area()) > 1e-6 {
		t.Errorf("IR-grid areas sum to %g, chip area %g", sum, chip.Area())
	}
	// Axes start and end at the chip boundary.
	if mp.XAxis[0] != chip.X1 || mp.XAxis[len(mp.XAxis)-1] != chip.X2 {
		t.Errorf("x axis %v does not span the chip", mp.XAxis)
	}
}

func TestEvaluateCuttingLinesFromRoutingRanges(t *testing.T) {
	nets := []netlist.TwoPin{
		{A: geom.Pt{X: 90, Y: 90}, B: geom.Pt{X: 300, Y: 420}},
	}
	m := Model{Pitch: 30}
	mp := m.Evaluate(chip, nets)
	// Every routing-range boundary creates a cutting line (none are
	// merged here: all gaps exceed 60).
	for _, want := range []float64{0, 90, 300, 600} {
		if mp.XAxis.IndexOf(want, 1e-6) < 0 {
			t.Errorf("x axis %v missing line at %g", mp.XAxis, want)
		}
	}
	for _, want := range []float64{0, 90, 420, 600} {
		if mp.YAxis.IndexOf(want, 1e-6) < 0 {
			t.Errorf("y axis %v missing line at %g", mp.YAxis, want)
		}
	}
}

func TestEvaluateMergesCloseLines(t *testing.T) {
	nets := []netlist.TwoPin{
		{A: geom.Pt{X: 90, Y: 90}, B: geom.Pt{X: 300, Y: 300}},
		{A: geom.Pt{X: 120, Y: 120}, B: geom.Pt{X: 330, Y: 330}}, // 30 < 2*30 from the first
	}
	m := Model{Pitch: 30}
	mp := m.Evaluate(chip, nets)
	// 120 is within 60 of 90, so it must be merged away.
	if mp.XAxis.IndexOf(120, 1e-6) >= 0 {
		t.Errorf("x axis %v should not contain the merged line 120", mp.XAxis)
	}
	nm := Model{Pitch: 30, NoMerge: true}
	mp2 := nm.Evaluate(chip, nets)
	if mp2.XAxis.IndexOf(120, 1e-6) < 0 {
		t.Errorf("NoMerge axis %v should contain 120", mp2.XAxis)
	}
	if mp2.GridCount() <= mp.GridCount() {
		t.Errorf("merging should reduce grid count: %d vs %d", mp.GridCount(), mp2.GridCount())
	}
}

func TestSingleNetProbabilityBounds(t *testing.T) {
	nets := []netlist.TwoPin{{A: geom.Pt{X: 90, Y: 90}, B: geom.Pt{X: 450, Y: 390}}}
	for _, exact := range []bool{false, true} {
		m := Model{Pitch: 30, Exact: exact}
		mp := m.Evaluate(chip, nets)
		r := nets[0].Range()
		for iy := 0; iy < mp.Rows(); iy++ {
			for ix := 0; ix < mp.Cols(); ix++ {
				p := mp.At(ix, iy)
				if p < -1e-9 || p > 1+1e-9 {
					t.Fatalf("exact=%v grid (%d,%d): probability %g", exact, ix, iy, p)
				}
				cell := mp.Rect(ix, iy)
				if p > 1e-9 && !r.Overlaps(cell) && !r.ContainsRect(cell) {
					// Outside the routing range nothing may accumulate.
					t.Fatalf("exact=%v grid (%d,%d)=%v outside range %v has p=%g",
						exact, ix, iy, cell, r, p)
				}
			}
		}
	}
}

func TestPinIRGridsAreCertain(t *testing.T) {
	nets := []netlist.TwoPin{{A: geom.Pt{X: 90, Y: 90}, B: geom.Pt{X: 450, Y: 390}}}
	m := Model{Pitch: 30, Exact: true}
	mp := m.Evaluate(chip, nets)
	// The pin IR-grids are the corner cells of the routing range: a pin
	// sits on cutting lines, so the cell of the range it touches is the
	// lower-left (source) / upper-right (sink) covered cell.
	r := nets[0].Range()
	cx1, cx2 := mp.XAxis.Locate(r.X1), mp.XAxis.Locate(r.X2-1e-9)
	cy1, cy2 := mp.YAxis.Locate(r.Y1), mp.YAxis.Locate(r.Y2-1e-9)
	for _, c := range [][2]int{{cx1, cy1}, {cx2, cy2}} {
		if p := mp.At(c[0], c[1]); math.Abs(p-1) > 1e-9 {
			t.Errorf("pin IR-grid (%d,%d): probability %g, want 1", c[0], c[1], p)
		}
	}
}

func TestDegenerateNetsInMap(t *testing.T) {
	nets := []netlist.TwoPin{
		{A: geom.Pt{X: 90, Y: 300}, B: geom.Pt{X: 390, Y: 300}},  // horizontal line
		{A: geom.Pt{X: 210, Y: 210}, B: geom.Pt{X: 210, Y: 210}}, // point
	}
	m := Model{Pitch: 30}
	mp := m.Evaluate(chip, nets)
	// All IR-grids straddling the horizontal line between the pins get
	// +1 from the line net.
	iy := mp.YAxis.Locate(300)
	for ix := mp.XAxis.Locate(90); ix <= mp.XAxis.Locate(389.9); ix++ {
		if p := mp.At(ix, iy); p < 1-1e-9 {
			t.Errorf("line-covered IR-grid (%d,%d) = %g", ix, iy, p)
		}
	}
}

func TestExactAndApproxMapsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nets := snapNets(rng, 60)
	ex := Model{Pitch: 30, Exact: true}.Evaluate(chip, nets)
	ap := Model{Pitch: 30}.Evaluate(chip, nets)
	if ex.GridCount() != ap.GridCount() {
		t.Fatalf("grid counts differ: %d vs %d", ex.GridCount(), ap.GridCount())
	}
	var worst float64
	for i := range ex.Prob {
		d := math.Abs(ex.Prob[i] - ap.Prob[i])
		if d > worst {
			worst = d
		}
	}
	// Per-IR-grid accumulated error across 60 nets stays small.
	if worst > 0.6 {
		t.Errorf("worst per-grid |exact-approx| = %g", worst)
	}
	se, sa := ex.TopScore(0.1), ap.TopScore(0.1)
	if math.Abs(se-sa)/se > 0.15 {
		t.Errorf("scores diverge: exact %g vs approx %g", se, sa)
	}
}

func TestTypeIINetsInMap(t *testing.T) {
	// A type II net and its mirrored type I twin must produce mirrored
	// congestion maps.
	netII := []netlist.TwoPin{{A: geom.Pt{X: 90, Y: 390}, B: geom.Pt{X: 450, Y: 90}}}
	netI := []netlist.TwoPin{{A: geom.Pt{X: 90, Y: 90}, B: geom.Pt{X: 450, Y: 390}}}
	mII := Model{Pitch: 30, Exact: true}.Evaluate(chip, netII)
	mI := Model{Pitch: 30, Exact: true}.Evaluate(chip, netI)
	if mII.Cols() != mI.Cols() || mII.Rows() != mI.Rows() {
		t.Fatalf("maps differ in shape")
	}
	rows := mI.Rows()
	// The y-axes are symmetric around the chip center here (90/390
	// mirror to 210/510? no — both nets span y 90..390 inside 0..600,
	// and the cutting lines are the same set), so row iy maps to the
	// row containing the mirrored y-coordinate.
	for iy := 0; iy < rows; iy++ {
		yLo, yHi := mI.YAxis.Cell(iy)
		yMid := (yLo + yHi) / 2
		mirY := 90 + 390 - yMid // reflect inside the routing range band
		if mirY < 0 || mirY > 600 {
			continue
		}
		jy := mII.YAxis.Locate(mirY)
		for ix := 0; ix < mI.Cols(); ix++ {
			a := mI.At(ix, iy)
			b := mII.At(ix, jy)
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("mirror mismatch at (%d,%d)->(%d,%d): %g vs %g", ix, iy, ix, jy, a, b)
			}
		}
	}
}

func TestTopScoreAreaWeighted(t *testing.T) {
	mp := &Map{
		Chip:  geom.Rect{X1: 0, Y1: 0, X2: 100, Y2: 10},
		XAxis: geom.Axis{0, 10, 100},
		YAxis: geom.Axis{0, 10},
		// Small dense cell (area 100, F=2 → density .02), large sparse
		// cell (area 900, F=1 → density ~.00111).
		Prob: []float64{2, 1},
	}
	// Top 10% of chip area = 100 µm² — exactly the dense cell.
	if got := mp.TopScore(0.10); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("TopScore(0.10) = %g, want 0.02", got)
	}
	// Top 50% = 500 µm²: 100 dense + 400 of the sparse cell.
	want := (0.02*100 + (1.0/900)*400) / 500
	if got := mp.TopScore(0.50); math.Abs(got-want) > 1e-12 {
		t.Errorf("TopScore(0.50) = %g, want %g", got, want)
	}
}

func TestScoreRespondsToClustering(t *testing.T) {
	// Many nets forced through the same corridor must score worse than
	// the same number of nets spread out.
	var clustered, spread []netlist.TwoPin
	for i := 0; i < 12; i++ {
		clustered = append(clustered, netlist.TwoPin{
			A: geom.Pt{X: 270, Y: float64(i%3) * 30},
			B: geom.Pt{X: 330, Y: 570 - float64(i%3)*30},
		})
		spread = append(spread, netlist.TwoPin{
			A: geom.Pt{X: float64(i) * 30, Y: float64(i) * 30},
			B: geom.Pt{X: float64(i)*30 + 60, Y: float64(i)*30 + 60},
		})
	}
	m := Model{Pitch: 30}
	sc := m.Score(chip, clustered)
	ss := m.Score(chip, spread)
	if sc <= ss {
		t.Errorf("clustered %g should exceed spread %g", sc, ss)
	}
}

func TestEvaluatePanicsOnBadPitch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Model{}.Evaluate(chip, nil)
}

func TestEmptyNetListGivesZeroScore(t *testing.T) {
	m := Model{Pitch: 30}
	if s := m.Score(chip, nil); s != 0 {
		t.Errorf("score = %g", s)
	}
}

func TestGridCountGrowsWithNets(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := Model{Pitch: 30}
	few := m.Evaluate(chip, snapNets(rng, 5))
	many := m.Evaluate(chip, snapNets(rng, 80))
	if many.GridCount() < few.GridCount() {
		t.Errorf("grid count should grow with nets: %d vs %d", few.GridCount(), many.GridCount())
	}
}
