package core

import (
	"fmt"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

func TestDebugNaN(t *testing.T) {
	for i := 0; i < 3; i++ {
		n := netlist.TwoPin{
			A: geom.Pt{X: 270, Y: float64(i) * 30},
			B: geom.Pt{X: 330, Y: 570 - float64(i)*30},
		}
		// Rebuild the same merged axes as the full net set.
		full := []netlist.TwoPin{}
		for k := 0; k < 3; k++ {
			full = append(full, netlist.TwoPin{
				A: geom.Pt{X: 270, Y: float64(k) * 30},
				B: geom.Pt{X: 330, Y: 570 - float64(k)*30},
			})
		}
		m := Model{Pitch: 30}
		mpAll := m.Evaluate(chip, full)
		_ = mpAll
		// Evaluate single net against the full axes by hand:
		mp := &Map{Chip: chip, XAxis: mpAll.XAxis, YAxis: mpAll.YAxis}
		mp.Prob = make([]float64, mp.Cols()*mp.Rows())
		acc := make([]int64, len(mp.Prob))
		ev := &evaluator{m: m, mp: mp, out: acc}
		ev.addNet(n)
		for j, v := range acc {
			mp.Prob[j] = float64(v) * probInv
		}
		fmt.Printf("net %d: ", i)
		for iy := 0; iy < mp.Rows(); iy++ {
			for ix := 0; ix < mp.Cols(); ix++ {
				fmt.Printf("%8.4f", mp.At(ix, iy))
			}
			fmt.Print(" | ")
		}
		fmt.Println()
	}
}
