package core

import (
	"math"
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// engineChip and engineNets build a fixed ≥500-net synthetic instance
// large enough to exercise every shard and both evaluation paths
// (short exact spans and long Simpson spans).
func engineChip() geom.Rect { return geom.Rect{X1: 0, Y1: 0, X2: 3000, Y2: 2400} }

func engineNets(n int) []netlist.TwoPin {
	rng := rand.New(rand.NewSource(20040216)) // fixed: the fixture is part of the test
	chip := engineChip()
	nets := make([]netlist.TwoPin, n)
	for i := range nets {
		a := geom.Pt{
			X: chip.X1 + rng.Float64()*chip.W(),
			Y: chip.Y1 + rng.Float64()*chip.H(),
		}
		// Mix of long diagonal nets, short local nets and a few
		// degenerate (shared row/column) nets.
		var b geom.Pt
		switch i % 7 {
		case 0:
			b = geom.Pt{X: a.X, Y: chip.Y1 + rng.Float64()*chip.H()}
		case 1, 2:
			b = geom.Pt{
				X: math.Min(chip.X2, a.X+rng.Float64()*200),
				Y: math.Max(chip.Y1, a.Y-rng.Float64()*200),
			}
		default:
			b = geom.Pt{
				X: chip.X1 + rng.Float64()*chip.W(),
				Y: chip.Y1 + rng.Float64()*chip.H(),
			}
		}
		nets[i] = netlist.TwoPin{A: a, B: b}
	}
	return nets
}

// TestEvaluateParallelDeterminism is the engine's core guarantee: the
// probability map must be bit-identical — not merely close — for every
// Workers setting, because SA acceptance decisions compare scores
// across moves and any worker-count dependence would make runs
// irreproducible.
func TestEvaluateParallelDeterminism(t *testing.T) {
	chip := engineChip()
	nets := engineNets(700)
	if len(nets) < parallelMinNets {
		t.Fatalf("fixture too small to engage the parallel path: %d nets", len(nets))
	}

	ref := Model{Pitch: 4, Workers: 1}.Evaluate(chip, nets)
	for _, workers := range []int{2, 3, 4, 8, 16} {
		mp := Model{Pitch: 4, Workers: workers}.Evaluate(chip, nets)
		if len(mp.Prob) != len(ref.Prob) {
			t.Fatalf("Workers=%d: %d cells, want %d", workers, len(mp.Prob), len(ref.Prob))
		}
		for i := range ref.Prob {
			if mp.Prob[i] != ref.Prob[i] { // bitwise, no tolerance
				t.Fatalf("Workers=%d: cell %d = %.17g, sequential %.17g (diff %g)",
					workers, i, mp.Prob[i], ref.Prob[i], mp.Prob[i]-ref.Prob[i])
			}
		}
	}
}

// TestEvaluatorReuseIsStable holds one Evaluator across repeated calls
// (the SA steady state): warm memos and reused arenas must not change
// a single bit of the output.
func TestEvaluatorReuseIsStable(t *testing.T) {
	chip := engineChip()
	nets := engineNets(500)
	e := Model{Pitch: 4}.NewEvaluator()

	first := e.Evaluate(chip, nets).Clone()
	for round := 0; round < 3; round++ {
		mp := e.Evaluate(chip, nets)
		for i := range first.Prob {
			if mp.Prob[i] != first.Prob[i] {
				t.Fatalf("round %d: cell %d drifted: %.17g vs %.17g",
					round, i, mp.Prob[i], first.Prob[i])
			}
		}
	}
	if s1, s2 := e.Score(chip, nets), e.Score(chip, nets); s1 != s2 {
		t.Fatalf("Score not stable across reuse: %.17g vs %.17g", s1, s2)
	}
}

// TestEvaluatorMatchesModelEvaluate pins the compatibility wrappers to
// the engine: Model.Evaluate/Score must be exactly the pooled-engine
// result.
func TestEvaluatorMatchesModelEvaluate(t *testing.T) {
	chip := engineChip()
	nets := engineNets(300)
	m := Model{Pitch: 4, TopFraction: 0.1}

	e := m.NewEvaluator()
	want := e.Evaluate(chip, nets).Clone()
	got := m.Evaluate(chip, nets)
	if got.Cols() != want.Cols() || got.Rows() != want.Rows() {
		t.Fatalf("grid mismatch: %dx%d vs %dx%d", got.Cols(), got.Rows(), want.Cols(), want.Rows())
	}
	for i := range want.Prob {
		if got.Prob[i] != want.Prob[i] {
			t.Fatalf("cell %d: wrapper %.17g, engine %.17g", i, got.Prob[i], want.Prob[i])
		}
	}
	if ws, ms := e.Score(chip, nets), m.Score(chip, nets); ws != ms {
		t.Fatalf("Score: wrapper %.17g, engine %.17g", ms, ws)
	}
}

// TestEvaluatorSteadyStateAllocs verifies the arena actually works: a
// warmed engine must not allocate per Score call — on the sequential
// path and on the parallel fan-out (persistent launch slots make
// spawning the worker goroutines allocation-free too).
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	chip := engineChip()
	for _, tc := range []struct {
		name    string
		nets    int
		workers int
	}{
		{name: "seq", nets: 200, workers: 1}, // below parallelMinNets
		{name: "par4", nets: 500, workers: 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nets := engineNets(tc.nets)
			e := Model{Pitch: 4, Workers: tc.workers}.NewEvaluator()
			for i := 0; i < 3; i++ { // warm arenas and memos
				e.Score(chip, nets)
			}
			avg := testing.AllocsPerRun(10, func() { e.Score(chip, nets) })
			if avg > 0.5 {
				t.Fatalf("steady-state Score allocates %.1f times per call, want 0", avg)
			}
		})
	}
}

// TestShardRangeCoversAllNets checks the shard partition is exact:
// contiguous, disjoint and covering [0, n).
func TestShardRangeCoversAllNets(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 500, 700, 5000} {
		shards := shardCount(n)
		if shards < 1 || shards > maxShards {
			t.Fatalf("n=%d: shardCount=%d out of range", n, shards)
		}
		next := 0
		for s := 0; s < shards; s++ {
			lo, hi := shardRange(n, shards, s)
			if lo != next || hi < lo {
				t.Fatalf("n=%d shard %d: range [%d,%d), expected lo=%d", n, s, lo, hi, next)
			}
			next = hi
		}
		if next != n {
			t.Fatalf("n=%d: shards cover [0,%d), want [0,%d)", n, next, n)
		}
	}
}

// TestPooledEvaluatorReconfigures ensures the wrapper pool does not
// serve memo entries cached under a different model configuration.
func TestPooledEvaluatorReconfigures(t *testing.T) {
	chip := engineChip()
	nets := engineNets(300)

	approx := Model{Pitch: 4}
	exact := Model{Pitch: 4, Exact: true}
	wantExact := exact.NewEvaluator().Evaluate(chip, nets).Clone()

	// Interleave configurations through the shared pool; the exact
	// model must keep producing exact results.
	for i := 0; i < 3; i++ {
		approx.Evaluate(chip, nets)
		got := exact.Evaluate(chip, nets)
		for j := range wantExact.Prob {
			if got.Prob[j] != wantExact.Prob[j] {
				t.Fatalf("iteration %d: pooled exact result drifted at cell %d", i, j)
			}
		}
	}
}
