package core

// Fixed-point accumulation.
//
// The per-cell congestion sum F(I) = Σ_i P_i(I) is accumulated in
// 64-bit fixed point rather than float64: each net's per-cell
// contribution is quantized exactly once (at the sweep's fold step)
// and the quantized integers are summed. Integer addition is exact and
// order-independent, which buys two properties float accumulation
// cannot offer together:
//
//   - any partition of the nets — shards, workers, or the delta
//     engine's add/remove of individual nets — produces the same
//     accumulated bits, with no reduction-tree bookkeeping;
//   - subtracting a net's stored contribution perfectly inverts having
//     added it, so the incremental evaluator (delta.go) is bit-identical
//     to a from-scratch evaluation regardless of the move history.
//
// Precision: probShift = 46 keeps the quantization error per
// contribution at 2^-47 ≈ 7.1e-15 — three orders of magnitude inside
// the oracle's exact-path budget (1e-9) even after summing thousands
// of nets. Headroom: contributions are clamped to [0, 1], so a cell
// overflows int64 only beyond 2^(63-46) = 131072 contributing nets,
// far past any floorplanning instance this code base targets.
const (
	probShift = 46
	// probOne is the fixed-point representation of probability 1.
	probOne = int64(1) << probShift
)

// probInv converts an accumulated fixed-point sum back to float64.
// It is an exact power of two, so the conversion rounds once (in the
// int64→float64 conversion) and never in the multiply.
const probInv = 1.0 / float64(probOne)

// fixProb quantizes one per-cell contribution. p must be in [0, 1]
// (the fold step clamps before quantizing); rounding is to nearest
// with ties away from zero, a pure function of p.
//
//irlint:hot
func fixProb(p float64) int64 {
	return int64(p*float64(probOne) + 0.5)
}
