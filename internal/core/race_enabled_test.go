//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// timing-budget tests skip under it because instrumented memory accesses
// cost an order of magnitude more than native ones.
const raceEnabled = true
