package core

import (
	"math"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// Edge-case coverage for the cutting-line construction and the
// Algorithm step 2 merge rule: coincident pins, pins closer than the
// 2×pitch merge threshold, single-net circuits and the zero-area
// module / zero-area routing-range degeneracies.

func interiorGapsRespectMerge(t *testing.T, axis geom.Axis, pitch float64) {
	t.Helper()
	last := len(axis) - 1
	for i := 1; i < last; i++ {
		if axis[i] <= axis[i-1] {
			t.Fatalf("axis not strictly increasing at %d: %v", i, axis)
		}
		if gap := axis[i] - axis[i-1]; gap < 2*pitch {
			t.Errorf("interior line %d at %g only %g from previous kept line (< 2×pitch %g)",
				i, axis[i], gap, 2*pitch)
		}
		if gap := axis[last] - axis[i]; gap < 2*pitch {
			t.Errorf("interior line %d at %g only %g from far boundary (< 2×pitch %g)",
				i, axis[i], gap, 2*pitch)
		}
	}
}

// TestMergeCoincidentPins: many nets sharing identical pin coordinates
// must collapse to one set of cutting lines, and the accumulated map
// is exactly the single-net map scaled by the net count.
func TestMergeCoincidentPins(t *testing.T) {
	m := Model{Pitch: 30}
	chip := geom.Rect{X1: 0, Y1: 0, X2: 600, Y2: 600}
	net := netlist.TwoPin{A: geom.Pt{X: 120, Y: 90}, B: geom.Pt{X: 450, Y: 480}}

	one := m.Evaluate(chip, []netlist.TwoPin{net})
	k := 7
	nets := make([]netlist.TwoPin, k)
	for i := range nets {
		nets[i] = net
	}
	many := m.Evaluate(chip, nets)

	if one.Cols() != many.Cols() || one.Rows() != many.Rows() {
		t.Fatalf("coincident nets changed grid: %dx%d vs %dx%d",
			one.Cols(), one.Rows(), many.Cols(), many.Rows())
	}
	interiorGapsRespectMerge(t, many.XAxis, m.Pitch)
	interiorGapsRespectMerge(t, many.YAxis, m.Pitch)
	for iy := 0; iy < one.Rows(); iy++ {
		for ix := 0; ix < one.Cols(); ix++ {
			want := float64(k) * one.At(ix, iy)
			if d := math.Abs(many.At(ix, iy) - want); d > 1e-9 {
				t.Fatalf("cell (%d,%d): %d coincident nets gave %g, want %g",
					ix, iy, k, many.At(ix, iy), want)
			}
		}
	}
}

// TestMergeClosePins: cutting lines spawned by pins closer than
// 2×pitch must be merged away, leaving every interior line at least
// 2×pitch from its predecessor and from the far chip boundary.
func TestMergeClosePins(t *testing.T) {
	m := Model{Pitch: 30}
	chip := geom.Rect{X1: 0, Y1: 0, X2: 900, Y2: 900}
	// A ladder of nets whose endpoints step by less than 2×pitch, plus
	// pins hugging the chip boundary.
	var nets []netlist.TwoPin
	for i := 0; i < 16; i++ {
		d := float64(i) * 25 // < 60 apart line to line
		nets = append(nets, netlist.TwoPin{
			A: geom.Pt{X: 100 + d, Y: 80 + d},
			B: geom.Pt{X: 500 + d/2, Y: 600 + d/3},
		})
	}
	// Routing-range corners within 2×pitch of the far boundary.
	nets = append(nets,
		netlist.TwoPin{A: geom.Pt{X: 20, Y: 30}, B: geom.Pt{X: 880, Y: 870}},
		netlist.TwoPin{A: geom.Pt{X: 850, Y: 845}, B: geom.Pt{X: 899, Y: 899}},
	)
	mp := m.Evaluate(chip, nets)
	interiorGapsRespectMerge(t, mp.XAxis, m.Pitch)
	interiorGapsRespectMerge(t, mp.YAxis, m.Pitch)
	if mp.Cols() < 2 || mp.Rows() < 2 {
		t.Fatalf("merge collapsed the whole grid: %dx%d", mp.Cols(), mp.Rows())
	}
}

// TestSingleNetCircuitGeometry: a single net's cutting lines are its
// routing-range edges plus the chip boundary (post-merge), with
// probabilities only inside the snapped routing range.
func TestSingleNetCircuitGeometry(t *testing.T) {
	m := Model{Pitch: 30}
	chip := geom.Rect{X1: 0, Y1: 0, X2: 600, Y2: 600}
	net := netlist.TwoPin{A: geom.Pt{X: 150, Y: 120}, B: geom.Pt{X: 420, Y: 450}}
	mp := m.Evaluate(chip, []netlist.TwoPin{net})

	for _, want := range []float64{0, 150, 420, 600} {
		found := false
		for _, v := range mp.XAxis {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Errorf("x axis %v missing cutting line at %g", mp.XAxis, want)
		}
	}
	var inside, outside float64
	r := net.Range()
	for iy := 0; iy < mp.Rows(); iy++ {
		for ix := 0; ix < mp.Cols(); ix++ {
			c := mp.Rect(ix, iy)
			mid := geom.Pt{X: (c.X1 + c.X2) / 2, Y: (c.Y1 + c.Y2) / 2}
			if r.Contains(mid) {
				inside += mp.At(ix, iy)
			} else {
				outside += mp.At(ix, iy)
			}
			if p := mp.At(ix, iy); p < 0 || p > 1+1e-12 {
				t.Errorf("cell (%d,%d): single-net probability %g outside [0,1]", ix, iy, p)
			}
		}
	}
	if outside != 0 {
		t.Errorf("probability mass %g leaked outside the routing range", outside)
	}
	if inside < 1 {
		t.Errorf("total in-range mass %g; a route must cross at least one IR-grid", inside)
	}
}

// TestZeroAreaDegeneracies: zero-area modules are rejected at circuit
// validation, and the evaluator-side analogue — a zero-area routing
// range from coincident pins — degenerates to certainty on its cell.
func TestZeroAreaDegeneracies(t *testing.T) {
	c := &netlist.Circuit{
		Name: "degenerate",
		Modules: []netlist.Module{
			{Name: "ok", W: 30, H: 30},
			{Name: "flat", W: 30, H: 0},
		},
	}
	if err := c.Validate(); err == nil {
		t.Error("circuit with a zero-area module passed validation")
	}

	m := Model{Pitch: 30}
	chip := geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 300}
	p := geom.Pt{X: 150, Y: 150}
	mp := m.Evaluate(chip, []netlist.TwoPin{{A: p, B: p}})
	var mass float64
	for iy := 0; iy < mp.Rows(); iy++ {
		for ix := 0; ix < mp.Cols(); ix++ {
			v := mp.At(ix, iy)
			if v != 0 && v != 1 {
				t.Errorf("cell (%d,%d): point net gave %g, want 0 or 1", ix, iy, v)
			}
			mass += v
		}
	}
	if mass == 0 {
		t.Error("point net covered no IR-grid")
	}
	// Pins exactly on the chip corner: routing range of zero area at
	// the boundary must still evaluate without panicking.
	corner := geom.Pt{X: 300, Y: 300}
	_ = m.Evaluate(chip, []netlist.TwoPin{{A: corner, B: corner}})
}
