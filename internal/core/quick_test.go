package core

import (
	"math"
	"testing"
	"testing/quick"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// TestQuickExactMatchesBruteForce drives Formula 3 against blocked-DP
// path counting on randomly drawn lattices and IR-rectangles.
func TestQuickExactMatchesBruteForce(t *testing.T) {
	f := func(a, b, c, d, e, g uint8) bool {
		g1 := int(a%11) + 2 // 2..12
		g2 := int(b%11) + 2
		x1 := int(c) % g1
		x2 := x1 + int(d)%(g1-x1)
		y1 := int(e) % g2
		y2 := y1 + int(g)%(g2-y1)
		got := ExactCrossProb(g1, g2, x1, x2, y1, y2)
		want := bruteCrossProb(g1, g2, x1, x2, y1, y2)
		// Pin-covering rectangles are overridden to 1; brute force
		// agrees (all routes touch the pin cells).
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickApproxWithinBounds checks the Theorem 1 approximation stays
// a probability and near the exact value on random interior
// rectangles.
func TestQuickApproxWithinBounds(t *testing.T) {
	f := func(a, b, c, d, e, g uint8) bool {
		g1 := int(a%30) + 6 // 6..35
		g2 := int(b%30) + 6
		x1 := 1 + int(c)%(g1-2)
		x2 := x1 + int(d)%(g1-1-x1)
		y1 := 1 + int(e)%(g2-2)
		y2 := y1 + int(g)%(g2-1-y1)
		p := ApproxCrossProb(g1, g2, x1, x2, y1, y2, 0)
		if math.IsNaN(p) || p < 0 || p > 1 {
			return false
		}
		exact := ExactCrossProb(g1, g2, x1, x2, y1, y2)
		// Interior rectangles: within the paper's coarse budget. The
		// §4.5-adjacent regions are overridden to 1 and always match.
		return math.Abs(p-exact) < 0.11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickTypeIIReflection drives the reflection identity under
// random rectangles.
func TestQuickTypeIIReflection(t *testing.T) {
	f := func(a, b, c, d, e, g uint8) bool {
		g1 := int(a%9) + 2
		g2 := int(b%9) + 2
		x1 := int(c) % g1
		x2 := x1 + int(d)%(g1-x1)
		y1 := int(e) % g2
		y2 := y1 + int(g)%(g2-y1)
		ii := TypeIICrossProb(g1, g2, x1, x2, y1, y2)
		ref := ExactCrossProb(g1, g2, x1, x2, g2-1-y2, g2-1-y1)
		return math.Abs(ii-ref) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickMapMassBounds: with n nets, no IR-grid can accumulate more
// than n crossing probability, and none can be negative.
func TestQuickMapMassBounds(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) < 4 {
			return true
		}
		if len(seeds) > 40 {
			seeds = seeds[:40]
		}
		var nets []netsAlias
		for i := 0; i+3 < len(seeds); i += 4 {
			nets = append(nets, netsAlias{
				ax: float64(seeds[i]%21) * 30, ay: float64(seeds[i+1]%21) * 30,
				bx: float64(seeds[i+2]%21) * 30, by: float64(seeds[i+3]%21) * 30,
			})
		}
		mp := Model{Pitch: 30}.Evaluate(chip, toTwoPin(nets))
		n := float64(len(nets))
		for _, p := range mp.Prob {
			if math.IsNaN(p) || p < -1e-9 || p > n+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

type netsAlias struct{ ax, ay, bx, by float64 }

func toTwoPin(ns []netsAlias) []netlist.TwoPin {
	out := make([]netlist.TwoPin, len(ns))
	for i, n := range ns {
		out[i] = netlist.TwoPin{A: geom.Pt{X: n.ax, Y: n.ay}, B: geom.Pt{X: n.bx, Y: n.by}}
	}
	return out
}
