package core

import (
	"path/filepath"
	"strings"
	"testing"

	"irgrid/internal/obs"
)

// TestShardPanicWritesPostmortem pins the flight-recorder fault path:
// a recovered shard panic records a shard_panic event and dumps a
// loadable postmortem through the armed recorder, while the
// evaluation itself still completes bit-identically.
func TestShardPanicWritesPostmortem(t *testing.T) {
	chip := engineChip()
	nets := engineNets(700) // engages the parallel path
	want := Model{Pitch: 4, Workers: 1}.Evaluate(chip, nets)

	pmPath := filepath.Join(t.TempDir(), "eval.postmortem.json")
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(32)
	info := obs.PostmortemInfo{Version: "v-test", Circuit: "engine", Model: "ir-grid", Seed: 1}
	rec.Arm(pmPath, info, reg, nil, nil)

	e := Model{Pitch: 4, Workers: 4, Obs: reg, Recorder: rec}.NewEvaluator()
	armShardPanics(t, 1)
	got := e.Evaluate(chip, nets)

	for i, v := range want.Prob {
		if got.Prob[i] != v {
			t.Fatalf("recovered run differs at cell %d", i)
		}
	}

	pm, err := obs.LoadPostmortem(pmPath)
	if err != nil {
		t.Fatalf("shard panic left no postmortem: %v", err)
	}
	if pm.Reason != obs.RecShardPanic {
		t.Errorf("postmortem reason %q, want %q", pm.Reason, obs.RecShardPanic)
	}
	if pm.Info != info {
		t.Errorf("postmortem info %+v, want %+v", pm.Info, info)
	}
	var panicEv *obs.RecorderEvent
	for i := range pm.Events {
		if pm.Events[i].Kind == obs.RecShardPanic {
			panicEv = &pm.Events[i]
		}
	}
	if panicEv == nil {
		t.Fatalf("postmortem events missing shard_panic: %+v", pm.Events)
	}
	if !strings.Contains(panicEv.Note, "injected shard crash") {
		t.Errorf("shard_panic note %q missing the panic value", panicEv.Note)
	}
	if pm.Metrics["eval_shard_panics"] != 1 {
		t.Errorf("postmortem metrics %v, want eval_shard_panics 1", pm.Metrics)
	}
}

// TestRecorderEvalEvents pins the eval event stream: every Evaluate
// through a recorder-attached model appends one timed eval event.
func TestRecorderEvalEvents(t *testing.T) {
	chip := engineChip()
	nets := engineNets(64)
	rec := obs.NewRecorder(8)
	e := Model{Pitch: 4, Workers: 1, Recorder: rec}.NewEvaluator()
	e.Evaluate(chip, nets)
	e.Evaluate(chip, nets)
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != obs.RecEval {
			t.Errorf("event %d kind %q", i, ev.Kind)
		}
		if ev.Ns <= 0 {
			t.Errorf("event %d has no duration", i)
		}
	}
}
