// Package core implements the paper's contribution: the Irregular-Grid
// probabilistic congestion model (§4).
//
// Instead of a uniform lattice, the chip is partitioned by cutting
// lines extended from the boundaries of every net's routing range
// (§4.2); lines closer than twice the base grid pitch are merged
// (Algorithm step 2). Because pins lie on cutting lines (pins are
// snapped to base-grid intersections by the intersection-to-
// intersection method), every net crosses whole IR-grids, and the
// probability that a net crosses an IR-grid reduces to the
// boundary-escape identity of Formula 3: a monotone route crosses an
// axis-aligned rectangle inside its routing range exactly once through
// the rectangle's top or right edge (type I; bottom/right for type II).
//
// The per-edge sums are either computed exactly (Formula 3, O(IR-grid
// perimeter)) or approximated in O(1) by the normal-distribution-like
// integrals of Theorem 1 evaluated with Simpson's rule; IR-grids
// covering a pin — including the cells adjacent to pins where the
// normal approximation degenerates (§4.5) — are assigned probability 1
// directly.
//
// The hot path is the reusable Evaluator (engine.go): it keeps every
// buffer the evaluation needs — cutting-line axes, the probability
// grid, per-net span scratch, the ln-factorial table and a memo of
// per-edge escape sums — alive across calls, so a steady-state
// simulated-annealing move evaluates with no heap allocation, and it
// can shard the per-net accumulation across worker goroutines.
// Model.Evaluate and Model.Score remain as thin wrappers over a pooled
// Evaluator.
package core

import (
	"context"
	"math"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/nmath"
	"irgrid/internal/obs"
)

// Model configures the Irregular-Grid congestion estimator.
type Model struct {
	// Pitch is the base grid pitch in µm (the paper uses 30×30 µm² for
	// most circuits, 60×60 for apte). It defines the unit lattice the
	// path-counting formulas operate on and the line-merge threshold.
	Pitch float64
	// TopFraction is the fraction of the chip's most congested area
	// units averaged into the score (paper: 0.10). Zero means 0.10.
	TopFraction float64
	// Exact selects the exact Formula 3 sums instead of the Theorem 1
	// approximation. The default (false) is the paper's model.
	Exact bool
	// SimpsonN is the baseline number of Simpson subintervals per
	// Theorem 1 integral. Zero means 4. The evaluator raises the count
	// (up to a fixed cap, keeping each IR-grid O(1)) whenever the
	// band-clipped integration window would otherwise under-resolve
	// the integrand's normal peak; see simpsonPlan.
	SimpsonN int
	// NoMerge disables cutting-line merging (Algorithm step 2); used
	// by the line-merge ablation only.
	NoMerge bool
	// ExactSpanLimit is the edge span (in unit cells) below which the
	// approximate evaluator uses the exact recurrence sum instead of
	// the Theorem 1 Simpson integral: short exact sums are both cheaper
	// than quadrature and error-free, while long edges keep the O(1)
	// integral. Zero selects the default (32); negative forces the
	// Simpson path everywhere (used by accuracy tests and ablations).
	ExactSpanLimit int
	// PaperBounds integrates the Theorem 1 approximation over the
	// paper's literal bounds [x1, x2] instead of the half-cell
	// continuity-corrected [x1-½, x2+½] that matches the discrete sum.
	// Off by default; used by the integral-bounds ablation.
	PaperBounds bool
	// Workers is the number of goroutines Evaluate shards the per-net
	// accumulation across. Zero uses GOMAXPROCS; 1 forces the
	// sequential path. The result is bit-identical for every worker
	// count: nets are partitioned into shards whose boundaries depend
	// only on the net count, each shard accumulates into its own
	// partial grid, and the partials are reduced in shard order.
	Workers int
	// Obs, when non-nil, receives the evaluation engine's metrics:
	// stage timings (axis build, net accumulation, top-score
	// selection), Simpson-memo hit/miss counters, grid dimensions and
	// per-worker busy time. Telemetry observes values the evaluation
	// already computed and never alters them, so instrumented and
	// uninstrumented evaluations are bit-identical; with Obs nil the
	// instrumentation costs a few predictable branches and zero
	// allocations (TestDisabledTelemetryZeroAlloc,
	// TestDisabledTelemetryNsBudget).
	Obs *obs.Registry
	// Spans, when non-nil, receives hierarchical stage timings from the
	// evaluation engine: an "evaluate" root with merge/sweep/fold
	// children (plus topscore under Score) on the full path, and a
	// "move" root with diff/fold-out/fold-in/rebuild/rollback children
	// on the delta path. Spans only time work the evaluation performed
	// anyway, so span-enabled evaluations stay bit-identical; nil costs
	// a few predictable branches and zero allocations.
	Spans *obs.Spans
	// Recorder, when non-nil, is the flight recorder the engine feeds
	// eval events and shard-panic events into; a recovered shard panic
	// additionally triggers a postmortem dump if the recorder is armed.
	Recorder *obs.Recorder
	// Ctx, when non-nil, is checked cooperatively at shard boundaries
	// during evaluation: once it is canceled, workers stop claiming
	// shards and Evaluate returns early with a partial (meaningless)
	// map. Callers that set Ctx own detecting the cancellation (via
	// Ctx.Err) and discarding the result; the annealer does exactly
	// that between a move's evaluation and its acceptance decision.
	// With Ctx nil the checks cost one predictable branch per shard.
	Ctx context.Context
}

// Name identifies the model in experiment tables.
func (m Model) Name() string {
	if m.Exact {
		return "ir-grid(exact)"
	}
	return "ir-grid"
}

// WithWorkers returns a copy of the model evaluating with the given
// worker count. The `any` return implements the optional
// estimator-parallelism hook of higher layers (fplan.Config.Workers)
// without core importing the pipeline packages.
func (m Model) WithWorkers(workers int) any {
	m.Workers = workers
	return m
}

// WithObserver returns a copy of the model reporting metrics into reg.
// Like WithWorkers, the `any` return implements the optional
// estimator-telemetry hook of higher layers (fplan.Config.Obs).
func (m Model) WithObserver(reg *obs.Registry) any {
	m.Obs = reg
	return m
}

// WithSpans returns a copy of the model reporting stage timings into
// sp. Like WithWorkers, the `any` return implements the optional
// estimator-span hook of higher layers (fplan.Config.Spans).
func (m Model) WithSpans(sp *obs.Spans) any {
	m.Spans = sp
	return m
}

// WithRecorder returns a copy of the model feeding eval and
// shard-panic events into rec. Like WithWorkers, the `any` return
// implements the optional estimator-recorder hook of higher layers
// (fplan.Config.Recorder).
func (m Model) WithRecorder(rec *obs.Recorder) any {
	m.Recorder = rec
	return m
}

// WithContext returns a copy of the model whose evaluations check ctx
// at shard boundaries. Like WithWorkers, the `any` return implements
// the optional estimator-cancellation hook of higher layers
// (fplan.Runner.Run threads its context through it).
func (m Model) WithContext(ctx context.Context) any {
	m.Ctx = ctx
	return m
}

func (m Model) exactSpanLimit() int {
	switch {
	case m.ExactSpanLimit > 0:
		return m.ExactSpanLimit
	case m.ExactSpanLimit < 0:
		return 1 // only truly degenerate single-cell edges
	default:
		return 32
	}
}

func (m Model) simpsonN() int {
	if m.SimpsonN <= 0 {
		return 4
	}
	return m.SimpsonN
}

// Map is the evaluated Irregular-Grid: the cutting-line axes and the
// accumulated crossing-probability sum F(I) of every IR-grid.
type Map struct {
	Chip  geom.Rect
	XAxis geom.Axis
	YAxis geom.Axis
	// Prob[iy*Cols()+ix] is F(I) = Σ_i P_i(I) for IR-grid (ix, iy).
	Prob []float64
}

// Cols returns the number of IR-grid columns.
func (mp *Map) Cols() int { return mp.XAxis.Cells() }

// Rows returns the number of IR-grid rows.
func (mp *Map) Rows() int { return mp.YAxis.Cells() }

// GridCount returns the total number of IR-grids (Table 4's
// "# of IR-grid").
func (mp *Map) GridCount() int { return mp.Cols() * mp.Rows() }

// At returns F(I) for IR-grid (ix, iy).
func (mp *Map) At(ix, iy int) float64 { return mp.Prob[iy*mp.Cols()+ix] }

// Rect returns the rectangle of IR-grid (ix, iy).
func (mp *Map) Rect(ix, iy int) geom.Rect {
	return geom.Rect{X1: mp.XAxis[ix], Y1: mp.YAxis[iy], X2: mp.XAxis[ix+1], Y2: mp.YAxis[iy+1]}
}

// Density returns the congestion cost per area unit of IR-grid
// (ix, iy): F(I) divided by the IR-grid area (§4.3).
func (mp *Map) Density(ix, iy int) float64 {
	a := mp.Rect(ix, iy).Area()
	if a <= 0 {
		return 0
	}
	return mp.At(ix, iy) / a
}

// Clone returns a deep copy of the map that does not alias the
// receiver's buffers. Evaluator.Evaluate returns arena-backed maps
// that are only valid until the next call; Clone detaches them.
func (mp *Map) Clone() *Map {
	return &Map{
		Chip:  mp.Chip,
		XAxis: append(geom.Axis(nil), mp.XAxis...),
		YAxis: append(geom.Axis(nil), mp.YAxis...),
		Prob:  append([]float64(nil), mp.Prob...),
	}
}

// Evaluate partitions the chip into IR-grids from the nets' routing
// ranges and accumulates every net's crossing probabilities.
//
// It is a compatibility wrapper over a pooled Evaluator: the returned
// Map is caller-owned, but the evaluation scratch (axis buffers,
// ln-factorial table, edge-sum memo) is recycled across calls. Loops
// that evaluate many times should hold a NewEvaluator instead and skip
// the copy.
func (m Model) Evaluate(chip geom.Rect, nets []netlist.TwoPin) *Map {
	if m.Pitch <= 0 {
		panic("core: Pitch must be positive")
	}
	e := pooledEvaluator(m)
	mp := e.Evaluate(chip, nets).Clone()
	putPooledEvaluator(e)
	return mp
}

// Score returns the chip-level congestion cost: the average congestion
// of the top-10% most congested area units (Algorithm step 5). Like
// Evaluate, it runs on a pooled Evaluator; steady state performs no
// heap allocation.
func (m Model) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	if m.Pitch <= 0 {
		panic("core: Pitch must be positive")
	}
	e := pooledEvaluator(m)
	s := e.Score(chip, nets)
	putPooledEvaluator(e)
	return s
}

// Max returns the largest IR-grid density.
func (mp *Map) Max() float64 {
	var mx float64
	for iy := 0; iy < mp.Rows(); iy++ {
		for ix := 0; ix < mp.Cols(); ix++ {
			if d := mp.Density(ix, iy); d > mx {
				mx = d
			}
		}
	}
	return mx
}

// evaluator carries the per-worker evaluation state: the model
// configuration, the map being filled, the accumulation target, span
// scratch, the ln-factorial table and an optional memo of canonical
// per-edge escape sums.
type evaluator struct {
	m   Model
	mp  *Map
	lf  *nmath.LogFact
	out []int64 // fixed-point accumulation target (full grid)
	// vec, when non-nil, redirects the fold step: instead of
	// accumulating into out, the quantized per-cell contributions are
	// written frame-locally into vec[j*cols+i]. The delta engine uses
	// this to capture a net's contribution vector; the captured values
	// are bit-identical to what the full path would have accumulated.
	vec []int64

	// perCell forces the reference per-cell evaluation instead of the
	// row/column sweeps; used by tests to cross-validate the sweeps.
	perCell bool
	scratch []float64
	colLo   []int
	colHi   []int
	rowLo   []int
	rowHi   []int

	// memo caches the Theorem 1 Simpson edge integrals keyed by
	// (g1, g2, span, offset). MCNC-style netlists repeat routing-range
	// shapes heavily across nets and across SA moves, so a warm cache
	// skips the quadratures outright. Only the Simpson sums are cached:
	// they are canonical pure functions of the key (a hit is bit-equal
	// to a fresh computation, keeping results deterministic), whereas
	// the exact short-span sums ride the sweep's multiplicative carry
	// and cost fewer cycles to recompute than a map probe (profiled:
	// hashing a cell-level memo dominated the whole evaluation).
	memo map[edgeKey]float64

	// Telemetry tallies: plain (non-atomic) per-worker counts of memo
	// hits/misses and exact-recurrence lane sums, bumped unconditionally
	// in the sweeps (a register increment — cheaper than even a
	// nil-receiver method call in the lane loop) and flushed to the
	// engine's registry counters only when telemetry is enabled.
	nHit, nMiss, nExactLanes int64
}

// edgeKey identifies one boundary-escape edge sum: the unit-lattice
// dimensions, the edge span [lo, hi] and the fixed offset (the top row
// y2 for top edges, the right column x2 for right edges).
type edgeKey struct {
	g1, g2, lo, hi, off int32
	right               bool
}

// memoCap bounds the per-worker cache; beyond it new shapes are
// computed without being stored (an SA run revisits a bounded shape
// population, so in practice the cap is never approached).
const memoCap = 1 << 16

// ensureLF lazily allocates and grows the ln-factorial table. In
// parallel evaluation the table is shared read-only: the Evaluator
// pre-grows it past every reachable n before fan-out, making the
// Ensure here a no-op length check.
func (ev *evaluator) ensureLF(n int) {
	if ev.lf == nil {
		ev.lf = new(nmath.LogFact)
	}
	ev.lf.Ensure(n)
}

// netFrame is a net's routing range expressed on the unit lattice: the
// range snapped to the surviving cutting lines, its unit-grid
// dimensions g1×g2, covered IR-grid index ranges, and the type II flag.
type netFrame struct {
	cx1, cx2, cy1, cy2 int     // covered IR-grid index ranges
	x0, y0             float64 // snapped range origin (µm)
	g1, g2             int     // unit-grid dimensions
	typeII             bool
}

// addNet accumulates one 2-pin net into the target grid.
//
//irlint:hot
func (ev *evaluator) addNet(n netlist.TwoPin) {
	mp := ev.mp
	f, ok := ev.frame(n)
	if !ok {
		return
	}

	if f.g1 == 1 || f.g2 == 1 {
		// Point or line routing range: probability 1 everywhere it
		// covers.
		cols := mp.Cols()
		for iy := f.cy1; iy <= f.cy2; iy++ {
			for ix := f.cx1; ix <= f.cx2; ix++ {
				ev.out[iy*cols+ix] += probOne
			}
		}
		return
	}

	ev.ensureLF(f.g1 + f.g2)
	if ev.perCell {
		cols := mp.Cols()
		for iy := f.cy1; iy <= f.cy2; iy++ {
			for ix := f.cx1; ix <= f.cx2; ix++ {
				p := ev.irProb(f, ix, iy)
				if p > 1 {
					p = 1
				}
				ev.out[iy*cols+ix] += fixProb(p)
			}
		}
		return
	}
	ev.addNetSweep(f)
}

// addNetSweep computes every covered IR-grid's crossing probability
// with one recurrence sweep per IR row (top-edge escape sums) and one
// per IR column (right-edge escape sums), amortizing the log-space
// start term across all IR-grids in the lane. It produces the same
// values as irProb up to quadrature-noise ulps
// (TestSweepMatchesPerCell) at a fraction of the cost: ~4 flops per
// unit cell instead of two exp calls per IR-grid. Long edges take the
// memoized Theorem 1 Simpson integral instead of the recurrence; the
// sweep is self-contained per net, so results cannot depend on which
// worker runs it.
//
//irlint:hot
func (ev *evaluator) addNetSweep(f netFrame) {
	mp := ev.mp
	g1, g2 := f.g1, f.g2
	cols := f.cx2 - f.cx1 + 1
	rows := f.cy2 - f.cy1 + 1
	ev.scratch = resizeFloats(ev.scratch, cols*rows)
	ev.colLo = resizeInts(ev.colLo, cols)
	ev.colHi = resizeInts(ev.colHi, cols)
	ev.rowLo = resizeInts(ev.rowLo, rows)
	ev.rowHi = resizeInts(ev.rowHi, rows)

	// Oriented unit spans per covered IR column and row. Columns share
	// the x orientation; type II rows are reflected so that the source
	// pin sits at oriented (0, 0).
	for i := 0; i < cols; i++ {
		ix := f.cx1 + i
		ev.colLo[i] = unitIndexLo(mp.XAxis[ix], f.x0, ev.m.Pitch, g1)
		ev.colHi[i] = unitIndexHi(mp.XAxis[ix+1], f.x0, ev.m.Pitch, g1)
	}
	for j := 0; j < rows; j++ {
		iy := f.cy1 + j
		y1 := unitIndexLo(mp.YAxis[iy], f.y0, ev.m.Pitch, g2)
		y2 := unitIndexHi(mp.YAxis[iy+1], f.y0, ev.m.Pitch, g2)
		if f.typeII {
			y1, y2 = g2-1-y2, g2-1-y1
		}
		ev.rowLo[j], ev.rowHi[j] = y1, y2
	}

	limit := ev.m.exactSpanLimit()
	// Matches the per-cell rule in approxProb: exact when the span's
	// last-minus-first index stays below the limit.
	useSimpson := func(span int) bool { return !ev.m.Exact && span-1 >= limit }

	// Top-edge sweeps: for each IR row, T(x) = Ta(x,y2)·Tb(x,y2+1)/total
	// walks x across the covered columns with the multiplicative
	// recurrence; each column accumulates its sub-sum. Adjacent columns
	// may share one boundary unit cell (unaligned cutting lines), which
	// the cursor rewinds over.
	logTotal := ev.lf.LogChoose(g1+g2-2, g2-1)
	for j := 0; j < rows; j++ {
		y2 := ev.rowHi[j]
		if y2+1 > g2-1 {
			continue // top row of the routing range: no upward escape
		}
		ratio := func(x int) float64 {
			return float64(x+y2+1) / float64(x+1) *
				float64(g1-1-x) / float64(g1+g2-3-x-y2)
		}
		cursor := -1 // unit x the running term t corresponds to
		var t float64
		for i := 0; i < cols; i++ {
			lo, hi := ev.colLo[i], ev.colHi[i]
			if hi < lo {
				continue
			}
			if useSimpson(hi - lo + 1) {
				if g2 != 2 {
					ev.scratch[j*cols+i] += ev.simpsonTop(g1, g2, lo, hi, y2)
					cursor = -1
					continue
				}
				// g2 == 2 degenerates the normal variance: fall
				// through to the exact sweep.
			}
			switch {
			case cursor < 0:
				t = math.Exp(ev.logTa(lo, y2) + ev.logTb(g1, g2, lo, y2+1) - logTotal)
			case cursor == lo:
				// t already holds T(lo) (shared boundary unit).
			case cursor == lo-1:
				t *= ratio(cursor) // advance into the contiguous column
			case cursor == lo+1:
				t /= ratio(lo) // rewind over the shared boundary unit
			default:
				t = math.Exp(ev.logTa(lo, y2) + ev.logTb(g1, g2, lo, y2+1) - logTotal)
			}
			cursor = lo
			sum := t
			for x := lo; x < hi; x++ {
				t *= ratio(x)
				sum += t
			}
			cursor = hi
			ev.nExactLanes++
			ev.scratch[j*cols+i] += sum
		}
	}

	// Right-edge sweeps: per IR column, T(y) = Ta(x2,y)·Tb(x2+1,y)/total.
	for i := 0; i < cols; i++ {
		x2 := ev.colHi[i]
		if x2+1 > g1-1 {
			continue // rightmost column: no rightward escape
		}
		ratio := func(y int) float64 {
			return float64(x2+y+1) / float64(y+1) *
				float64(g2-1-y) / float64(g1+g2-3-x2-y)
		}
		cursor := -1
		var t float64
		// Walk rows in oriented-y order: for type II the physical rows
		// descend in oriented y, so iterate them reversed.
		for jj := 0; jj < rows; jj++ {
			j := jj
			if f.typeII {
				j = rows - 1 - jj
			}
			lo, hi := ev.rowLo[j], ev.rowHi[j]
			if hi < lo {
				continue
			}
			if useSimpson(hi - lo + 1) {
				if g1 != 2 {
					ev.scratch[j*cols+i] += ev.simpsonRight(g1, g2, x2, lo, hi)
					cursor = -1
					continue
				}
			}
			switch {
			case cursor < 0:
				t = math.Exp(ev.logTa(x2, lo) + ev.logTb(g1, g2, x2+1, lo) - logTotal)
			case cursor == lo:
			case cursor == lo-1:
				t *= ratio(cursor)
			case cursor == lo+1:
				t /= ratio(lo)
			default:
				t = math.Exp(ev.logTa(x2, lo) + ev.logTb(g1, g2, x2+1, lo) - logTotal)
			}
			cursor = lo
			sum := t
			for y := lo; y < hi; y++ {
				t *= ratio(y)
				sum += t
			}
			cursor = hi
			ev.nExactLanes++
			ev.scratch[j*cols+i] += sum
		}
	}

	// Pin and §4.5 overrides, then quantize and fold into the target
	// grid (or the capture vector — see evaluator.vec). The single
	// quantization here is the only rounding between a net's float
	// probability and the integer accumulator, so recomputing a net
	// always reproduces the same fixed-point contribution. The
	// vec/out split is hoisted out of the cell loop.
	exact := ev.m.Exact
	mpCols := mp.Cols()
	for j := 0; j < rows; j++ {
		y1, y2 := ev.rowLo[j], ev.rowHi[j]
		pinRow := y1 <= 0 || y2 >= g2-1 || (!exact && y2 >= g2-2)
		row := ev.scratch[j*cols : (j+1)*cols]
		if pinRow {
			// Only rows that can cover a pin (or a §4.5 neighbour)
			// need the cell-level override checks.
			for i := 0; i < cols; i++ {
				x1, x2 := ev.colLo[i], ev.colHi[i]
				p := row[i]
				if coversCell(x1, x2, y1, y2, 0, 0) || coversCell(x1, x2, y1, y2, g1-1, g2-1) {
					p = 1
				} else if !exact &&
					(coversCell(x1, x2, y1, y2, g1-2, g2-1) ||
						coversCell(x1, x2, y1, y2, g1-1, g2-2)) {
					p = 1
				} else if p > 1 {
					p = 1
				}
				row[i] = p
			}
		} else {
			for i, p := range row {
				if p > 1 {
					row[i] = 1
				}
			}
		}
		if ev.vec != nil {
			dst := ev.vec[j*cols : (j+1)*cols]
			for i, p := range row {
				dst[i] = fixProb(p)
			}
		} else {
			dst := ev.out[(f.cy1+j)*mpCols+f.cx1:]
			for i, p := range row {
				dst[i] += fixProb(p)
			}
		}
	}
}

// simpsonTop is simpsonTopDirect through the per-edge memo.
//
//irlint:hot
func (ev *evaluator) simpsonTop(g1, g2, lo, hi, y2 int) float64 {
	if ev.memo == nil {
		ev.nMiss++
		return ev.simpsonTopDirect(g1, g2, lo, hi, y2)
	}
	k := edgeKey{g1: int32(g1), g2: int32(g2), lo: int32(lo), hi: int32(hi), off: int32(y2)}
	if v, ok := ev.memo[k]; ok {
		ev.nHit++
		return v
	}
	ev.nMiss++
	v := ev.simpsonTopDirect(g1, g2, lo, hi, y2)
	if len(ev.memo) < memoCap {
		ev.memo[k] = v
	}
	return v
}

// simpsonRight is simpsonRightDirect through the per-edge memo.
//
//irlint:hot
func (ev *evaluator) simpsonRight(g1, g2, x2, lo, hi int) float64 {
	if ev.memo == nil {
		ev.nMiss++
		return ev.simpsonRightDirect(g1, g2, x2, lo, hi)
	}
	k := edgeKey{g1: int32(g1), g2: int32(g2), lo: int32(lo), hi: int32(hi), off: int32(x2), right: true}
	if v, ok := ev.memo[k]; ok {
		ev.nHit++
		return v
	}
	ev.nMiss++
	v := ev.simpsonRightDirect(g1, g2, x2, lo, hi)
	if len(ev.memo) < memoCap {
		ev.memo[k] = v
	}
	return v
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// frame maps the net's routing range onto the IR-grid and unit lattice.
//
//irlint:hot
func (ev *evaluator) frame(n netlist.TwoPin) (netFrame, bool) {
	mp := ev.mp
	r := n.Range()
	var f netFrame
	f.typeII = n.TypeII()
	f.cx1, f.cx2 = cellRange(mp.XAxis, r.X1, r.X2)
	f.cy1, f.cy2 = cellRange(mp.YAxis, r.Y1, r.Y2)
	if f.cx1 < 0 || f.cy1 < 0 {
		return f, false
	}
	// The modified routing range spans whole IR-grids (Algorithm
	// step 2 "modify the corresponding routing ranges").
	f.x0 = mp.XAxis[f.cx1]
	f.y0 = mp.YAxis[f.cy1]
	w := mp.XAxis[f.cx2+1] - f.x0
	h := mp.YAxis[f.cy2+1] - f.y0
	f.g1 = unitCells(w, ev.m.Pitch)
	f.g2 = unitCells(h, ev.m.Pitch)
	// Degenerate *original* ranges stay lines even when the snapped
	// range is wider: the net's routes never leave the original line.
	if r.W() < ev.m.Pitch/2 {
		f.g1 = 1
	}
	if r.H() < ev.m.Pitch/2 {
		f.g2 = 1
	}
	return f, true
}

// irProb returns P_i(I) for IR-grid (ix, iy) within frame f. It is the
// uncached reference computation the per-cell test path exercises.
func (ev *evaluator) irProb(f netFrame, ix, iy int) float64 {
	mp := ev.mp
	// Unit-cell span of the IR-grid inside the routing range.
	x1 := unitIndexLo(mp.XAxis[ix], f.x0, ev.m.Pitch, f.g1)
	x2 := unitIndexHi(mp.XAxis[ix+1], f.x0, ev.m.Pitch, f.g1)
	y1 := unitIndexLo(mp.YAxis[iy], f.y0, ev.m.Pitch, f.g2)
	y2 := unitIndexHi(mp.YAxis[iy+1], f.y0, ev.m.Pitch, f.g2)
	if x2 < x1 || y2 < y1 {
		return 0
	}
	// Orient type II nets by reflecting y so the source pin sits at
	// unit cell (0,0) and the sink at (g1-1, g2-1).
	if f.typeII {
		y1, y2 = f.g2-1-y2, f.g2-1-y1
	}

	// Algorithm step 3.1 and §4.5: IR-grids covering a pin — widened,
	// in approximate mode, by the pin-adjacent cells where the normal
	// approximation degenerates — have probability 1.
	if coversCell(x1, x2, y1, y2, 0, 0) || coversCell(x1, x2, y1, y2, f.g1-1, f.g2-1) {
		return 1
	}
	if !ev.m.Exact &&
		(coversCell(x1, x2, y1, y2, f.g1-2, f.g2-1) ||
			coversCell(x1, x2, y1, y2, f.g1-1, f.g2-2)) {
		return 1
	}

	if ev.m.Exact {
		return ev.exactProb(f.g1, f.g2, x1, x2, y1, y2)
	}
	return ev.approxProb(f.g1, f.g2, x1, x2, y1, y2)
}

// coversCell reports whether the unit-cell span contains cell (cx, cy).
func coversCell(x1, x2, y1, y2, cx, cy int) bool {
	return cx >= x1 && cx <= x2 && cy >= y1 && cy <= y2
}

// cellRange returns the index range of axis cells overlapping [lo, hi];
// a degenerate interval returns the single containing cell. It returns
// (-1, -1) for an empty axis.
func cellRange(a geom.Axis, lo, hi float64) (int, int) {
	if a.Cells() == 0 {
		return -1, -1
	}
	c1 := a.Locate(lo)
	c2 := a.Locate(hi)
	// When hi sits exactly on c2's lower cutting line, the range does
	// not extend into cell c2.
	if c2 > c1 && hi <= a[c2] {
		c2--
	}
	return c1, c2
}

// unitCells converts a snapped routing-range extent into a unit-grid
// dimension.
func unitCells(w, pitch float64) int {
	g := int(math.Round(w / pitch))
	if g < 1 {
		g = 1
	}
	return g
}

// unitIndexLo maps an IR-grid's lower boundary to the first covered
// unit cell.
func unitIndexLo(coord, origin, pitch float64, g int) int {
	i := int(math.Floor((coord-origin)/pitch + 1e-9))
	return clampInt(i, 0, g-1)
}

// unitIndexHi maps an IR-grid's upper boundary to the last covered
// unit cell.
func unitIndexHi(coord, origin, pitch float64, g int) int {
	i := int(math.Ceil((coord-origin)/pitch-1e-9)) - 1
	return clampInt(i, 0, g-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
