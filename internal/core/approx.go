package core

import (
	"math"

	"irgrid/internal/nmath"
)

// This file implements the paper's Theorem 1: the O(1) approximation of
// Formula 3's boundary-escape sums. Each sum is recast as a
// hypergeometric-like function h(x, r, R, Q) with R = g1+g2-3,
// r = g1-1, Q = x+y2 (§4.4), approximated by a normal density whose
// mean and variance vary with the integration variable, and integrated
// with Simpson's rule over the IR-grid's edge span.

// approxProb evaluates Theorem 1 for a type-I-oriented IR-grid
// [x1..x2]×[y1..y2] on a g1×g2 unit lattice.
//
// Each edge is scored by whichever of two O(1)-bounded evaluators is
// cheaper: edges spanning at most the model's exact-span limit use the
// exact boundary-escape sum (computed by a multiplicative recurrence —
// one exp then ~4 flops per term, cheaper than quadrature at short
// spans), and longer edges use the paper's Theorem 1 normal integral
// via Simpson's rule. Degenerate edges — single-cell spans, where the
// paper's integral collapses to zero, or g1/g2 = 2, where the normal
// variance vanishes — always take the exact path.
func (ev *evaluator) approxProb(g1, g2, x1, x2, y1, y2 int) float64 {
	ev.ensureLF(g1 + g2)
	var p float64
	// Top-edge escapes.
	if y2+1 <= g2-1 {
		p += ev.topEdgeSumDirect(g1, g2, x1, x2, y2)
	}
	// Right-edge escapes.
	if x2+1 <= g1-1 {
		p += ev.rightEdgeSumDirect(g1, g2, x2, y1, y2)
	}
	if p > 1 {
		p = 1
	}
	return p
}

// topEdgeSumDirect is the canonical top-edge escape sum for columns
// [x1, x2] under the model's evaluation policy: the exact recurrence
// for exact mode, short spans and the degenerate g2 == 2 lattice, the
// (memoized) Theorem 1 Simpson integral otherwise.
func (ev *evaluator) topEdgeSumDirect(g1, g2, x1, x2, y2 int) float64 {
	if ev.m.Exact || x2-x1 < ev.m.exactSpanLimit() || g2 == 2 {
		return ev.exactTopSum(g1, g2, x1, x2, y2)
	}
	return ev.simpsonTop(g1, g2, x1, x2, y2)
}

// rightEdgeSumDirect is the right-edge counterpart of
// topEdgeSumDirect for rows [y1, y2] along right column x2.
func (ev *evaluator) rightEdgeSumDirect(g1, g2, x2, y1, y2 int) float64 {
	if ev.m.Exact || y2-y1 < ev.m.exactSpanLimit() || g1 == 2 {
		return ev.exactRightSum(g1, g2, x2, y1, y2)
	}
	return ev.simpsonRight(g1, g2, x2, y1, y2)
}

// simpsonTopDirect evaluates the Theorem 1 top-edge integral for unit
// span [lo, hi] at top row y2 (zero when the whole span sits provably
// outside the normal band). Its value is a pure function of
// (g1, g2, lo, hi, y2) under one model configuration, which is what
// makes the per-edge memo sound.
func (ev *evaluator) simpsonTopDirect(g1, g2, lo, hi, y2 int) float64 {
	// Half-cell continuity correction: the integral stands in for the
	// discrete sum Σ_{x=lo}^{hi}, whose hi-lo+1 terms are matched by
	// the interval [lo-½, hi+½]. The paper's Theorem 1 integrates
	// [lo, hi] literally, which systematically undercounts one cell per
	// edge; Model.PaperBounds restores the literal behaviour for
	// fidelity comparisons (BenchmarkAblationIntegralBounds).
	cc := 0.5
	if ev.m.PaperBounds {
		cc = 0
	}
	a, b, n, ok := simpsonPlan(float64(lo)-cc, float64(hi)+cc,
		float64(g1-1)/float64(g1+g2-3), float64(y2), float64(g1+g2-3),
		float64(g2-2)/float64(g1+g2-4)*float64(g1-1), ev.m.simpsonN())
	if !ok {
		return 0
	}
	w := float64(g2-1) / float64(g1+g2-2)
	f := func(x float64) float64 {
		return function1PDF(g1, g2, x, float64(y2))
	}
	return w * nmath.Simpson(f, a, b, n)
}

// simpsonRightDirect evaluates the Theorem 1 right-edge integral for
// unit span [lo, hi] at right column x2.
func (ev *evaluator) simpsonRightDirect(g1, g2, x2, lo, hi int) float64 {
	cc := 0.5
	if ev.m.PaperBounds {
		cc = 0
	}
	a, b, n, ok := simpsonPlan(float64(lo)-cc, float64(hi)+cc,
		float64(g2-1)/float64(g1+g2-3), float64(x2), float64(g1+g2-3),
		float64(g1-2)/float64(g1+g2-4)*float64(g2-1), ev.m.simpsonN())
	if !ok {
		return 0
	}
	w := float64(g1-1) / float64(g1+g2-2)
	f := func(y float64) float64 {
		return function2PDF(g1, g2, float64(x2), y)
	}
	return w * nmath.Simpson(f, a, b, n)
}

// simpsonPlanMaxN caps the adaptive Simpson subinterval count: the
// integration window is at most 16 effective standard deviations wide
// after band clipping, so 64 steps keep the step below a quarter
// deviation and the per-edge cost O(1).
const simpsonPlanMaxN = 64

// simpsonPlan prepares one Theorem 1 edge integral: it clips the
// interval [a, b] to the band where the integrand is non-negligible and
// picks a subinterval count that actually resolves the integrand.
//
// The integrand at t is a normal density in t − μ(t) = (1−c)·t − c·off
// with variance σ²(t) = varScale·q(1−q), q = (t+off)/R, which never
// exceeds varScale/4. Two consequences:
//
//   - Mass lies within 8 conservative standard deviations of the band
//     center t* = c·off/(1−c); outside it the contribution is below
//     1e-14 and the edge can be skipped entirely (ok = false). This
//     prunes the IR-grids far off the source–sink diagonal, which
//     dominate large routing ranges.
//   - Seen as a function of t the peak has effective width
//     σ(t*)/(1−c) — the argument moves at rate 1−c — so a fixed
//     subinterval count under-resolves long edges: escape densities are
//     often a spike a cell or two wide sitting in a 40-cell span, and a
//     coarse Simpson step walks straight over it, losing most of the
//     edge's probability. base subintervals are raised until the step
//     is at most a quarter of the peak width, capped at
//     simpsonPlanMaxN so each edge stays O(1).
func simpsonPlan(a, b, c, off, R, varScale float64, base int) (lo, hi float64, n int, ok bool) {
	if c >= 1 || varScale <= 0 {
		return 0, 0, 0, false
	}
	sBand := 8 * math.Sqrt(varScale*0.25) / (1 - c)
	tStar := c * off / (1 - c)
	lo = math.Max(a, tStar-sBand)
	hi = math.Min(b, tStar+sBand)
	if lo >= hi {
		return 0, 0, 0, false
	}
	q := (tStar + off) / R
	s2 := varScale * q * (1 - q)
	peakW := math.Max(math.Sqrt(math.Max(s2, 0)), 0.5) / (1 - c)
	n = base
	if need := int(math.Ceil((hi - lo) / (peakW / 4))); need > n {
		n = need
	}
	if n > simpsonPlanMaxN {
		n = simpsonPlanMaxN
	}
	return lo, hi, n, true
}

// function1PDF is the normal-like density approximating the top-escape
// term at column x with the IR-grid's top row y2 (§4.4): the
// hypergeometric-like h(x, r, R, Q) with Q = x+y2, R = g1+g2-3,
// r = g1-1 approximated by N(μx, σx²) evaluated at x.
func function1PDF(g1i, g2i int, x, y2 float64) float64 {
	g1, g2 := float64(g1i), float64(g2i)
	q := (x + y2) / (g1 + g2 - 3)
	mu := (g1 - 1) * q
	s2 := (g2 - 2) / (g1 + g2 - 4) * (g1 - 1) * q * (1 - q)
	if s2 <= 0 {
		return 0
	}
	return nmath.NormalPDF(x, mu, math.Sqrt(s2))
}

// function2PDF is the right-escape counterpart: h in y along the
// IR-grid's right column x2, approximated by N(μy, σy²) at y.
func function2PDF(g1i, g2i int, x2, y float64) float64 {
	g1, g2 := float64(g1i), float64(g2i)
	q := (x2 + y) / (g1 + g2 - 3)
	mu := (g2 - 1) * q
	s2 := (g1 - 2) / (g1 + g2 - 4) * (g2 - 1) * q * (1 - q)
	if s2 <= 0 {
		return 0
	}
	return nmath.NormalPDF(y, mu, math.Sqrt(s2))
}

// exactTopSum is the exact top-edge escape probability sum
// Σ_{x=x1}^{x2} Ta(x,y2)·Tb(x,y2+1)/total, evaluated with the exact
// multiplicative recurrence
//
//	T(x+1) = T(x) · (x+y2+1)/(x+1) · (g1-1-x)/(g1+g2-3-x-y2),
//
// so only the first term needs log-space binomials.
func (ev *evaluator) exactTopSum(g1, g2, x1, x2, y2 int) float64 {
	logTotal := ev.lf.LogChoose(g1+g2-2, g2-1)
	t := math.Exp(ev.logTa(x1, y2) + ev.logTb(g1, g2, x1, y2+1) - logTotal)
	p := t
	for x := x1; x < x2; x++ {
		t *= float64(x+y2+1) / float64(x+1) *
			float64(g1-1-x) / float64(g1+g2-3-x-y2)
		p += t
	}
	return p
}

// exactRightSum is the exact right-edge escape probability sum with
// the transposed recurrence of exactTopSum.
func (ev *evaluator) exactRightSum(g1, g2, x2, y1, y2 int) float64 {
	logTotal := ev.lf.LogChoose(g1+g2-2, g2-1)
	t := math.Exp(ev.logTa(x2, y1) + ev.logTb(g1, g2, x2+1, y1) - logTotal)
	p := t
	for y := y1; y < y2; y++ {
		t *= float64(x2+y+1) / float64(y+1) *
			float64(g2-1-y) / float64(g1+g2-3-x2-y)
		p += t
	}
	return p
}

// Function1Exact returns the exact value of the paper's Function (1):
// the probability that a route escapes upward from cell (x, y2),
//
//	Ta(x, y2)·Tb(x, y2+1) / Ta(g1-1, g2-1),
//
// for a type I net on a g1×g2 lattice. It is the "real values" curve of
// Figure 8.
func Function1Exact(g1, g2, x, y2 int) float64 {
	var lf nmath.LogFact
	lf.Ensure(g1 + g2)
	if x < 0 || x > g1-1 || y2 < 0 || y2 > g2-1 {
		return 0
	}
	logTotal := lf.LogChoose(g1+g2-2, g2-1)
	num := lf.LogChoose(x+y2, y2) + lf.LogChoose(g1+g2-2-x-(y2+1), g2-1-(y2+1))
	return math.Exp(num - logTotal)
}

// Function1Approx returns the Theorem 1 normal approximation of
// Function (1) at column x, the "approximating values" curve of
// Figure 8. It returns NaN at the §4.5 failure points where the
// implied mean parameter q = (x+y2)/(g1+g2-3) reaches 0 or exceeds the
// valid range ("the approximating curve shows no value when x = 30").
func Function1Approx(g1, g2, x, y2 int) float64 {
	q := float64(x+y2) / float64(g1+g2-3)
	if q <= 0 || q >= 1 {
		return math.NaN()
	}
	w := float64(g2-1) / float64(g1+g2-2)
	return w * function1PDF(g1, g2, float64(x), float64(y2))
}

// ApproxCrossProb exposes the Theorem 1 evaluation for a type I net on
// a g1×g2 unit lattice with IR-rectangle [x1..x2]×[y1..y2], applying
// the pin and §4.5 rules exactly as the evaluator does. simpsonN <= 0
// selects the default.
func ApproxCrossProb(g1, g2, x1, x2, y1, y2, simpsonN int) float64 {
	if coversCell(x1, x2, y1, y2, 0, 0) || coversCell(x1, x2, y1, y2, g1-1, g2-1) ||
		coversCell(x1, x2, y1, y2, g1-2, g2-1) || coversCell(x1, x2, y1, y2, g1-1, g2-2) {
		return 1
	}
	ev := &evaluator{m: Model{Pitch: 1, SimpsonN: simpsonN}}
	return ev.approxProb(g1, g2, x1, x2, y1, y2)
}
