package core

import (
	"sync/atomic"
	"testing"

	"irgrid/internal/faultinject"
	"irgrid/internal/obs"
)

// armShardPanics makes the first n EvalShard firings panic; later
// firings proceed. The counter is atomic because shards fire from
// concurrent workers.
func armShardPanics(t *testing.T, n int64) *atomic.Int64 {
	t.Helper()
	var fired atomic.Int64
	faultinject.Set(func(p faultinject.Point, _ int) error {
		if p != faultinject.EvalShard {
			return nil
		}
		if fired.Add(1) <= n {
			panic("injected shard crash")
		}
		return nil
	})
	t.Cleanup(func() { faultinject.Set(nil) })
	return &fired
}

// TestShardPanicRecoveredBitIdentical is the isolation contract: a
// worker crash inside a shard is recovered, the shard is recomputed
// sequentially, and the result is bit-identical to an undisturbed run.
func TestShardPanicRecoveredBitIdentical(t *testing.T) {
	chip := engineChip()
	nets := engineNets(700) // engages the parallel path
	want := Model{Pitch: 4, Workers: 1}.Evaluate(chip, nets)

	reg := obs.NewRegistry()
	e := Model{Pitch: 4, Workers: 4, Obs: reg}.NewEvaluator()
	armShardPanics(t, 2) // two shards crash on first attempt
	got := e.Evaluate(chip, nets)
	faultinject.Set(nil)

	if got.Cols() != want.Cols() || got.Rows() != want.Rows() {
		t.Fatalf("grid %dx%d, want %dx%d", got.Cols(), got.Rows(), want.Cols(), want.Rows())
	}
	for i, v := range want.Prob {
		if got.Prob[i] != v {
			t.Fatalf("cell %d: %g, want %g (recovered run not bit-identical)", i, got.Prob[i], v)
		}
	}
	snap := reg.Snapshot()
	if snap["eval_shard_panics"] != 2 {
		t.Errorf("eval_shard_panics = %g, want 2", snap["eval_shard_panics"])
	}
	if snap["eval_degraded"] != 0 {
		t.Errorf("eval_degraded = %g before the degradation threshold", snap["eval_degraded"])
	}
	if e.degraded {
		t.Error("engine degraded below the threshold")
	}

	// The engine stays reusable and correct after recovery.
	again := e.Evaluate(chip, nets)
	for i, v := range want.Prob {
		if again.Prob[i] != v {
			t.Fatalf("post-recovery evaluation differs at cell %d", i)
		}
	}
}

// TestDegradationAfterRepeatedPanics: after degradeAfter recovered
// panics the engine pins itself to the sequential path for the rest of
// its lifetime — correctness over throughput — and still produces
// bit-identical results.
func TestDegradationAfterRepeatedPanics(t *testing.T) {
	chip := engineChip()
	nets := engineNets(600)
	want := Model{Pitch: 4, Workers: 1}.Evaluate(chip, nets)

	reg := obs.NewRegistry()
	e := Model{Pitch: 4, Workers: 4, Obs: reg}.NewEvaluator()
	armShardPanics(t, degradeAfter)
	got := e.Evaluate(chip, nets)
	faultinject.Set(nil)

	if !e.degraded {
		t.Fatalf("engine not degraded after %d panics", degradeAfter)
	}
	if w := e.workerCount(shardCount(len(nets)), len(nets)); w != 1 {
		t.Errorf("degraded engine still plans %d workers", w)
	}
	snap := reg.Snapshot()
	if snap["eval_shard_panics"] != float64(degradeAfter) {
		t.Errorf("eval_shard_panics = %g, want %d", snap["eval_shard_panics"], degradeAfter)
	}
	if snap["eval_degraded"] != 1 {
		t.Errorf("eval_degraded = %g, want 1", snap["eval_degraded"])
	}
	for i, v := range want.Prob {
		if got.Prob[i] != v {
			t.Fatalf("degraded-run result differs at cell %d", i)
		}
	}
}

// TestAllShardsCrash: even when every shard's first attempt panics,
// the sequential retry (which bypasses the injection hook, like a real
// transient crash that does not reproduce) recomputes them all and the
// caller still gets the bit-exact answer.
func TestAllShardsCrash(t *testing.T) {
	chip := engineChip()
	nets := engineNets(300)
	e := Model{Pitch: 4, Workers: 1}.NewEvaluator()

	want := Model{Pitch: 4, Workers: 1}.Evaluate(chip, nets)
	faultinject.Set(func(p faultinject.Point, _ int) error {
		if p == faultinject.EvalShard {
			panic("crash every shard")
		}
		return nil
	})
	defer faultinject.Set(nil)
	got := e.Evaluate(chip, nets)
	faultinject.Set(nil)
	for i, v := range want.Prob {
		if got.Prob[i] != v {
			t.Fatalf("all-shards-crashed run differs at cell %d", i)
		}
	}
	if !e.degraded {
		t.Error("engine should have degraded after crashing every shard")
	}
}

// TestInjectedError documents that an error-returning hook on the
// shard point is converted to a panic (and thus recovered like a
// crash) rather than silently ignored.
func TestInjectedError(t *testing.T) {
	chip := engineChip()
	nets := engineNets(128)
	want := Model{Pitch: 4, Workers: 1}.Evaluate(chip, nets)

	var saw atomic.Int64
	faultinject.Set(func(p faultinject.Point, detail int) error {
		if p == faultinject.EvalShard && detail == 0 && saw.Add(1) == 1 {
			return errInjected{}
		}
		return nil
	})
	defer faultinject.Set(nil)
	e := Model{Pitch: 4, Workers: 1}.NewEvaluator()
	got := e.Evaluate(chip, nets)
	faultinject.Set(nil)
	for i, v := range want.Prob {
		if got.Prob[i] != v {
			t.Fatalf("error-injected run differs at cell %d", i)
		}
	}
	if saw.Load() == 0 {
		t.Fatal("hook never fired")
	}
}

type errInjected struct{}

func (errInjected) Error() string { return "injected EvalShard error" }
