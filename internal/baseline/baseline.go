// Package baseline implements the two non-probabilistic congestion-
// model families the paper's introduction surveys (§1), completing the
// taxonomy next to the probabilistic models in internal/grid and
// internal/core:
//
//   - Empirical models (after Wang & Sarrafzadeh, ISPD'99 [5]): each
//     net's expected wirelength is smeared uniformly over its bounding
//     box, and per-cell wire density is read off a uniform grid. Very
//     cheap, blind to the actual route distribution.
//   - Global-router based models (after Wang & Sarrafzadeh, ASP-DAC'00
//     [6]): actually route the nets on a coarse tile grid
//     (internal/route) and read congestion off the edge utilizations.
//     Most faithful, most expensive.
//
// Both satisfy the floorplanner's Estimator interface so they can be
// swapped into the annealing cost function and compared head-to-head
// with the paper's Irregular-Grid model (the validation experiment in
// internal/exp).
package baseline

import (
	"math"
	"sort"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
	"irgrid/internal/route"
)

// Empirical is the wirelength-density congestion model.
type Empirical struct {
	// Pitch is the evaluation grid pitch in µm.
	Pitch float64
	// TopFraction is the most-congested fraction averaged into the
	// score (default 0.10).
	TopFraction float64
}

// Name identifies the model in experiment tables.
func (m Empirical) Name() string { return "empirical" }

// Score evaluates the chip-level congestion: wire density is
// accumulated per cell and the top-10% average is returned.
func (m Empirical) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	cells := m.Evaluate(chip, nets)
	frac := m.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	if len(cells) == 0 {
		return 0
	}
	flat := append([]float64(nil), cells...)
	sort.Float64s(flat)
	k := int(math.Ceil(frac * float64(len(flat))))
	if k < 1 {
		k = 1
	}
	var sum float64
	for _, v := range flat[len(flat)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// Evaluate returns the per-cell expected wire density (µm of wire per
// cell), row-major over a ceil(W/Pitch)×ceil(H/Pitch) grid.
func (m Empirical) Evaluate(chip geom.Rect, nets []netlist.TwoPin) []float64 {
	if m.Pitch <= 0 {
		panic("baseline: Empirical.Pitch must be positive")
	}
	cols := int(math.Ceil(chip.W() / m.Pitch))
	rows := int(math.Ceil(chip.H() / m.Pitch))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	cells := make([]float64, cols*rows)
	for _, n := range nets {
		r := n.Range()
		wl := n.Manhattan()
		if wl == 0 {
			continue
		}
		// Smear the net's wirelength uniformly over its bounding box;
		// degenerate boxes (lines) spread along the covered cells.
		gx1 := clampInt(int((r.X1-chip.X1)/m.Pitch), 0, cols-1)
		gx2 := clampInt(int((r.X2-chip.X1)/m.Pitch), 0, cols-1)
		gy1 := clampInt(int((r.Y1-chip.Y1)/m.Pitch), 0, rows-1)
		gy2 := clampInt(int((r.Y2-chip.Y1)/m.Pitch), 0, rows-1)
		if r.Area() > 0 {
			for gy := gy1; gy <= gy2; gy++ {
				for gx := gx1; gx <= gx2; gx++ {
					cell := geom.Rect{
						X1: chip.X1 + float64(gx)*m.Pitch,
						Y1: chip.Y1 + float64(gy)*m.Pitch,
						X2: chip.X1 + float64(gx+1)*m.Pitch,
						Y2: chip.Y1 + float64(gy+1)*m.Pitch,
					}
					ov := cell.Intersect(r)
					if ov.Valid() && !ov.Empty() {
						cells[gy*cols+gx] += wl * ov.Area() / r.Area()
					}
				}
			}
			continue
		}
		// Line net: spread evenly over the covered cells.
		nCells := (gx2 - gx1 + 1) * (gy2 - gy1 + 1)
		share := wl / float64(nCells)
		for gy := gy1; gy <= gy2; gy++ {
			for gx := gx1; gx <= gx2; gx++ {
				cells[gy*cols+gx] += share
			}
		}
	}
	return cells
}

// RouterBased estimates congestion by actually global-routing the nets
// and aggregating edge utilizations.
type RouterBased struct {
	// Pitch is the routing tile size in µm.
	Pitch float64
	// Capacity is the tracks per tile edge (default 8).
	Capacity int
	// Iterations bounds the rip-up-and-reroute loop (default 3 — the
	// estimator is run inside annealing, so it stays cheap).
	Iterations int
	// TopFraction is the most-congested fraction averaged into the
	// score (default 0.10).
	TopFraction float64
}

// Name identifies the model in experiment tables.
func (m RouterBased) Name() string { return "router-based" }

// Score routes the nets and returns the top-10% average edge
// utilization.
func (m RouterBased) Score(chip geom.Rect, nets []netlist.TwoPin) float64 {
	res, err := m.Route(chip, nets)
	if err != nil {
		panic(err) // only config errors, validated below
	}
	utils := res.Grid.EdgeUtilizations()
	if len(utils) == 0 {
		return 0
	}
	sort.Float64s(utils)
	frac := m.TopFraction
	if frac <= 0 {
		frac = 0.10
	}
	k := int(math.Ceil(frac * float64(len(utils))))
	if k < 1 {
		k = 1
	}
	var sum float64
	for _, v := range utils[len(utils)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// Route exposes the underlying routing result (used by the validation
// experiment to read true overflow).
func (m RouterBased) Route(chip geom.Rect, nets []netlist.TwoPin) (*route.Result, error) {
	iters := m.Iterations
	if iters <= 0 {
		iters = 3
	}
	r := route.New(route.Config{
		Pitch:         m.Pitch,
		Capacity:      m.Capacity,
		MaxIterations: iters,
	})
	return r.RouteNets(chip, nets)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
