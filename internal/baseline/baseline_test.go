package baseline

import (
	"math"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

var chip = geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 300}

func pt(x, y float64) geom.Pt { return geom.Pt{X: x, Y: y} }

func TestEmpiricalConservesWirelength(t *testing.T) {
	m := Empirical{Pitch: 30}
	nets := []netlist.TwoPin{
		{A: pt(15, 15), B: pt(255, 195)},
		{A: pt(45, 255), B: pt(285, 45)},
	}
	cells := m.Evaluate(chip, nets)
	var total, want float64
	for _, v := range cells {
		total += v
	}
	for _, n := range nets {
		want += n.Manhattan()
	}
	if math.Abs(total-want)/want > 1e-9 {
		t.Errorf("smeared wirelength %g, want %g", total, want)
	}
}

func TestEmpiricalLineNet(t *testing.T) {
	m := Empirical{Pitch: 30}
	nets := []netlist.TwoPin{{A: pt(15, 45), B: pt(255, 45)}}
	cells := m.Evaluate(chip, nets)
	var total float64
	nonzero := 0
	for _, v := range cells {
		total += v
		if v > 0 {
			nonzero++
		}
	}
	if math.Abs(total-240) > 1e-9 {
		t.Errorf("line mass %g, want 240", total)
	}
	if nonzero != 9 { // tiles 0..8 in x at row 1
		t.Errorf("line spread over %d cells, want 9", nonzero)
	}
}

func TestEmpiricalZeroLengthNet(t *testing.T) {
	m := Empirical{Pitch: 30}
	cells := m.Evaluate(chip, []netlist.TwoPin{{A: pt(15, 15), B: pt(15, 15)}})
	for _, v := range cells {
		if v != 0 {
			t.Fatal("point net contributed wire density")
		}
	}
}

func TestEmpiricalScore(t *testing.T) {
	m := Empirical{Pitch: 30}
	nets := []netlist.TwoPin{{A: pt(15, 15), B: pt(255, 195)}}
	s := m.Score(chip, nets)
	if s <= 0 {
		t.Errorf("score = %g", s)
	}
	// Clustered nets score worse than spread nets.
	var clustered, spread []netlist.TwoPin
	for i := 0; i < 8; i++ {
		clustered = append(clustered, netlist.TwoPin{A: pt(120, 120), B: pt(180, 180)})
		spread = append(spread, netlist.TwoPin{
			A: pt(float64(i)*30+15, 15), B: pt(float64(i)*30+45, 285),
		})
	}
	if m.Score(chip, clustered) <= m.Score(chip, spread) {
		t.Error("clustered nets should score worse")
	}
}

func TestEmpiricalPanicsOnBadPitch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Empirical{}.Evaluate(chip, nil)
}

func TestRouterBasedScore(t *testing.T) {
	m := RouterBased{Pitch: 30, Capacity: 2}
	var nets []netlist.TwoPin
	for i := 0; i < 6; i++ {
		nets = append(nets, netlist.TwoPin{A: pt(15, 135), B: pt(285, 135)})
	}
	s := m.Score(chip, nets)
	if s <= 0 {
		t.Errorf("score = %g", s)
	}
	// A single net scores lower than six stacked nets.
	s1 := m.Score(chip, nets[:1])
	if s1 >= s {
		t.Errorf("one net (%g) should score below six (%g)", s1, s)
	}
}

func TestRouterBasedRouteExposesOverflow(t *testing.T) {
	m := RouterBased{Pitch: 30, Capacity: 1, Iterations: 1}
	var nets []netlist.TwoPin
	for i := 0; i < 12; i++ {
		nets = append(nets, netlist.TwoPin{A: pt(15, 135), B: pt(285, 135)})
	}
	res, err := m.Route(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow == 0 {
		t.Error("12 identical nets at capacity 1 with one iteration should overflow")
	}
}

func TestEstimatorNames(t *testing.T) {
	if (Empirical{}).Name() != "empirical" {
		t.Error("bad name")
	}
	if (RouterBased{}).Name() != "router-based" {
		t.Error("bad name")
	}
}
