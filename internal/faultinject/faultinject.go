// Package faultinject is a deterministic fault-injection harness for
// the fault-tolerance tests: hook points compiled into the pipeline's
// recovery paths (evaluation-shard execution, checkpoint writes) that
// a test can arm with a deterministic failure policy.
//
// The package's contract mirrors internal/obs: zero overhead when
// disarmed. Every injection point is guarded by a single atomic load
// (Fire returns immediately while no hook is set), so production code
// can call Fire unconditionally on paths that must stay fast. Hooks
// are process-global — tests that arm them must not run in parallel
// with each other — and Set(nil) disarms.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Point identifies an injection site.
type Point string

const (
	// EvalShard fires at the start of every evaluation shard in
	// core.Evaluator; detail is the shard index. A hook that panics
	// simulates a shard worker crash.
	EvalShard Point = "eval.shard"
	// CheckpointWrite fires before a checkpoint file write in
	// internal/ckpt; detail is unused. A hook that returns an error
	// simulates a checkpoint I/O failure.
	CheckpointWrite Point = "checkpoint.write"
)

// Hook decides what happens at an injection point: return nil to let
// the operation proceed, return an error to inject a failure on sites
// that propagate errors, or panic to simulate a crash on sites that
// recover panics. Hooks may be called concurrently from evaluation
// workers and must be race-safe; keep any state in atomics.
type Hook func(point Point, detail int) error

var (
	armed atomic.Bool
	mu    sync.Mutex
	hook  Hook
)

// Set arms the harness with h; Set(nil) disarms it. Tests should
// defer Set(nil).
func Set(h Hook) {
	mu.Lock()
	hook = h
	armed.Store(h != nil)
	mu.Unlock()
}

// Fire triggers the injection point. While the harness is disarmed it
// is one atomic load and a not-taken branch.
func Fire(point Point, detail int) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	h := hook
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h(point, detail)
}
