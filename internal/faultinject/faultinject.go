// Package faultinject is a deterministic fault-injection harness for
// the fault-tolerance tests: a registered matrix of hook points
// compiled into the pipeline's recovery paths (evaluation-shard
// execution, every filesystem primitive of the durable store, job
// scheduling) that a test can arm with a deterministic failure policy.
//
// The package's contract mirrors internal/obs: zero overhead when
// disarmed. Every injection point is guarded by a single atomic load
// (the Fire variants return immediately while no hook is set), so
// production code can call them unconditionally on paths that must
// stay fast. Hooks are process-global — tests that arm them must not
// run in parallel with each other — and Set*(nil) disarms.
//
// Every Point is declared in the registry below with a one-line
// contract. Points() enumerates the registry so the chaos matrix can
// iterate every declared fault site; the server's
// TestFaultMatrixCoversAllRegisteredPoints fails when a newly
// registered point is not exercised, so new fault sites cannot ship
// untested.
package faultinject

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Point identifies an injection site.
type Point string

const (
	// EvalShard fires at the start of every evaluation shard in
	// core.Evaluator; detail is the shard index. A hook that panics
	// simulates a shard worker crash.
	EvalShard Point = "eval.shard"
	// CheckpointWrite fires before a checkpoint file write in
	// internal/ckpt; detail is unused. A hook that returns an error
	// simulates a checkpoint I/O failure.
	CheckpointWrite Point = "checkpoint.write"

	// FSCreate fires before the temp-file create of every atomic
	// envelope write (ckpt.SaveAs); path is the destination file. An
	// error simulates open/create failure (ENOSPC, EMFILE, EROFS).
	FSCreate Point = "fs.create"
	// FSWrite fires before the payload write of every atomic envelope
	// write; path is the destination file. An error simulates a failed
	// write (ENOSPC mid-stream).
	FSWrite Point = "fs.write"
	// FSSync fires before the fsync of every atomic envelope write;
	// path is the destination file. An error simulates a sync failure
	// (EIO — the classic lost-write on a dying disk).
	FSSync Point = "fs.sync"
	// FSRename fires before the atomic rename that publishes an
	// envelope; path is the destination file. An error simulates the
	// publish step failing after a fully written temp file.
	FSRename Point = "fs.rename"
	// FSTornWrite fires before the payload write of an atomic envelope
	// write; path is the destination file. When the hook returns an
	// error, half of the envelope bytes are written IN PLACE over the
	// destination — the on-disk state a crash mid-write leaves on a
	// filesystem without atomic rename — and the write fails with the
	// hook's error. Readers must treat the file as corrupt.
	FSTornWrite Point = "fs.torn-write"
	// FSRead fires before every envelope read (ckpt.LoadAs); path is
	// the file being read. An error simulates a read failure.
	FSRead Point = "fs.read"
	// FSCorruptRead fires through the read hook (SetRead) after every
	// envelope read with the bytes just read; the hook may return
	// mutated bytes to simulate bit rot or a torn sector under a
	// checksum. Readers must detect the damage and fail typed.
	FSCorruptRead Point = "fs.corrupt-read"

	// JobRun fires in the server worker as a job transitions to
	// running; path is the job ID and detail the 1-based attempt
	// number. A hook that panics simulates a poison job crashing its
	// worker; an error simulates an immediate run failure.
	JobRun Point = "job.run"
)

// registry maps every declared point to its one-line contract. A
// Point used with Fire/FirePath/FireRead but absent here is a
// programming error the faultinject tests catch.
var registry = map[Point]string{
	EvalShard:       "evaluation shard start (panic = worker crash)",
	CheckpointWrite: "checkpoint write in internal/ckpt (error = I/O failure)",
	FSCreate:        "atomic-envelope temp-file create (error = open failure)",
	FSWrite:         "atomic-envelope payload write (error = write failure)",
	FSSync:          "atomic-envelope fsync (error = sync failure)",
	FSRename:        "atomic-envelope publish rename (error = rename failure)",
	FSTornWrite:     "atomic-envelope write (error = torn in-place write left behind)",
	FSRead:          "envelope read (error = read failure)",
	FSCorruptRead:   "envelope bytes post-read (read hook may corrupt them)",
	JobRun:          "server job run start (panic = poison job, error = run failure)",
}

// Points returns every registered injection point, sorted. The chaos
// matrix iterates this list so a new point is automatically part of
// the battery (or fails it, if never exercised).
func Points() []Point {
	out := make([]Point, 0, len(registry))
	for p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Registered reports whether p is a declared injection point.
func Registered(p Point) bool {
	_, ok := registry[p]
	return ok
}

// Doc returns the registered one-line contract of p ("" when
// unregistered).
func Doc(p Point) string { return registry[p] }

// Hook decides what happens at an injection point: return nil to let
// the operation proceed, return an error to inject a failure on sites
// that propagate errors, or panic to simulate a crash on sites that
// recover panics. Hooks may be called concurrently from evaluation
// workers and must be race-safe; keep any state in atomics.
type Hook func(point Point, detail int) error

// PathHook is a Hook with file/identity context: fs points pass the
// destination path, JobRun passes the job ID. The same
// proceed/error/panic contract applies.
type PathHook func(point Point, path string, detail int) error

// ReadHook observes (and may corrupt) bytes just read at
// FSCorruptRead: return the data unchanged to proceed, mutated bytes
// to simulate on-disk damage, or an error to fail the read outright.
// The hook must not retain data after returning.
type ReadHook func(point Point, path string, data []byte) ([]byte, error)

var (
	armed    atomic.Bool
	mu       sync.Mutex
	hook     Hook
	pathHook PathHook
	readHook ReadHook
)

func rearm() { armed.Store(hook != nil || pathHook != nil || readHook != nil) }

// Set arms the harness with h; Set(nil) disarms it. Tests should
// defer Set(nil).
func Set(h Hook) {
	mu.Lock()
	hook = h
	rearm()
	mu.Unlock()
}

// SetPath arms the path-aware hook serving the fs.* and job.* points;
// SetPath(nil) disarms it. Tests should defer SetPath(nil).
func SetPath(h PathHook) {
	mu.Lock()
	pathHook = h
	rearm()
	mu.Unlock()
}

// SetRead arms the read hook serving FSCorruptRead; SetRead(nil)
// disarms it. Tests should defer SetRead(nil).
func SetRead(h ReadHook) {
	mu.Lock()
	readHook = h
	rearm()
	mu.Unlock()
}

// Reset disarms every hook — the single defer for tests that arm more
// than one kind.
func Reset() {
	mu.Lock()
	hook, pathHook, readHook = nil, nil, nil
	rearm()
	mu.Unlock()
}

// Fire triggers the injection point. While the harness is disarmed it
// is one atomic load and a not-taken branch.
func Fire(point Point, detail int) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	h := hook
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h(point, detail)
}

// FirePath triggers a path-aware injection point. Disarmed cost is
// identical to Fire's: one atomic load.
func FirePath(point Point, path string, detail int) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	h := pathHook
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h(point, path, detail)
}

// FireRead passes freshly read bytes through the read hook, returning
// the (possibly corrupted) bytes to use. Disarmed it returns data
// untouched after one atomic load.
func FireRead(point Point, path string, data []byte) ([]byte, error) {
	if !armed.Load() {
		return data, nil
	}
	mu.Lock()
	h := readHook
	mu.Unlock()
	if h == nil {
		return data, nil
	}
	return h(point, path, data)
}
