package faultinject

import (
	"errors"
	"sort"
	"testing"
)

// TestRegistryCoversEveryDeclaredPoint pins the registry contract:
// every exported Point constant is registered with a non-empty doc,
// and Points() enumerates exactly the registry, sorted. Adding a
// Point constant without registering it fails here; registering it
// without exercising it fails the server chaos battery
// (TestFaultMatrixCoversAllRegisteredPoints).
func TestRegistryCoversEveryDeclaredPoint(t *testing.T) {
	declared := []Point{
		EvalShard, CheckpointWrite,
		FSCreate, FSWrite, FSSync, FSRename, FSTornWrite, FSRead, FSCorruptRead,
		JobRun,
	}
	pts := Points()
	if len(pts) != len(declared) {
		t.Errorf("Points() returned %d points, %d Point constants are declared", len(pts), len(declared))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i] < pts[j] }) {
		t.Errorf("Points() not sorted: %v", pts)
	}
	for _, p := range declared {
		if !Registered(p) {
			t.Errorf("point %q is declared but not registered", p)
		}
		if Doc(p) == "" {
			t.Errorf("point %q has no registered doc", p)
		}
	}
	if Registered("no.such.point") {
		t.Error("Registered accepted an unknown point")
	}
}

// TestDisarmedFiresAreNoOps pins the zero-overhead contract: with no
// hook set, every Fire variant proceeds.
func TestDisarmedFiresAreNoOps(t *testing.T) {
	Reset()
	if err := Fire(EvalShard, 3); err != nil {
		t.Errorf("disarmed Fire = %v", err)
	}
	if err := FirePath(FSWrite, "/x", 0); err != nil {
		t.Errorf("disarmed FirePath = %v", err)
	}
	data := []byte("abc")
	got, err := FireRead(FSCorruptRead, "/x", data)
	if err != nil || string(got) != "abc" {
		t.Errorf("disarmed FireRead = (%q, %v), want bytes untouched", got, err)
	}
}

// TestPathHookReceivesContext proves path and detail reach the hook
// and its error propagates.
func TestPathHookReceivesContext(t *testing.T) {
	boom := errors.New("boom")
	var gotPoint Point
	var gotPath string
	var gotDetail int
	SetPath(func(p Point, path string, detail int) error {
		gotPoint, gotPath, gotDetail = p, path, detail
		return boom
	})
	defer Reset()
	if err := FirePath(JobRun, "j00000007", 2); !errors.Is(err, boom) {
		t.Fatalf("FirePath error = %v, want boom", err)
	}
	if gotPoint != JobRun || gotPath != "j00000007" || gotDetail != 2 {
		t.Errorf("hook saw (%q, %q, %d)", gotPoint, gotPath, gotDetail)
	}
	// The legacy detail-only hook stays independent: unset, it proceeds.
	if err := Fire(EvalShard, 0); err != nil {
		t.Errorf("Fire with only a path hook armed = %v, want nil", err)
	}
}

// TestReadHookCanCorrupt proves a read hook can substitute bytes.
func TestReadHookCanCorrupt(t *testing.T) {
	SetRead(func(p Point, path string, data []byte) ([]byte, error) {
		out := append([]byte(nil), data...)
		out[0] ^= 0xFF
		return out, nil
	})
	defer Reset()
	got, err := FireRead(FSCorruptRead, "/f", []byte{0x01, 0x02})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xFE || got[1] != 0x02 {
		t.Errorf("corrupted bytes = %v, want first byte flipped", got)
	}
}

// TestResetDisarmsEverything pins Reset as the one-call disarm.
func TestResetDisarmsEverything(t *testing.T) {
	Set(func(Point, int) error { return errors.New("a") })
	SetPath(func(Point, string, int) error { return errors.New("b") })
	SetRead(func(_ Point, _ string, d []byte) ([]byte, error) { return d, errors.New("c") })
	Reset()
	if err := Fire(EvalShard, 0); err != nil {
		t.Errorf("Fire after Reset = %v", err)
	}
	if err := FirePath(FSSync, "/x", 0); err != nil {
		t.Errorf("FirePath after Reset = %v", err)
	}
	if _, err := FireRead(FSCorruptRead, "/x", nil); err != nil {
		t.Errorf("FireRead after Reset = %v", err)
	}
}
