package obs

// Trace event schema. A run trace is JSONL: one event object per line,
// each carrying an "ev" discriminator. The floorplanning pipeline
// emits, in order:
//
//	run_start    once — run identity: circuit, config, build version
//	calibration  once — initial-temperature calibration summary
//	temp         per temperature step (from the annealer)
//	solution     per temperature step (from fplan): the cost-component
//	             breakdown of the locally-optimized current solution
//	spans        once, before run_end — per-path span timing aggregates
//	run_end      once — final Stats plus a metrics snapshot
//
// TraceRecord is the union type for reading traces back.

// Event discriminators.
const (
	EvRunStart    = "run_start"
	EvCalibration = "calibration"
	EvTemp        = "temp"
	EvSolution    = "solution"
	EvSpans       = "spans"
	EvRunEnd      = "run_end"
)

// Run outcomes, recorded in RunEndEvent.Outcome, Status and
// postmortem dumps.
const (
	OutcomeCompleted = "completed"
	OutcomeCanceled  = "canceled"
	OutcomeDeadline  = "deadline"
	OutcomeError     = "error"
)

// RunStartEvent identifies the run: what is being optimized, under
// which configuration, by which build.
type RunStartEvent struct {
	Ev      string  `json:"ev"`
	Time    string  `json:"time,omitempty"` // RFC3339 wall clock
	Version string  `json:"version,omitempty"`
	Circuit string  `json:"circuit,omitempty"`
	Modules int     `json:"modules,omitempty"`
	Nets    int     `json:"nets,omitempty"`
	Seed    int64   `json:"seed"`
	Alpha   float64 `json:"alpha"`
	Beta    float64 `json:"beta"`
	Gamma   float64 `json:"gamma"`
	Model   string  `json:"model,omitempty"` // congestion estimator name
	Pitch   float64 `json:"pitch,omitempty"`
	Workers int     `json:"workers,omitempty"`
}

// CalibrationEvent summarizes the initial-temperature calibration.
type CalibrationEvent struct {
	Ev       string  `json:"ev"`
	Moves    int     `json:"moves"` // cost probes spent calibrating
	InitTemp float64 `json:"init_temp"`
	InitCost float64 `json:"init_cost"`
}

// TempEvent is one temperature step of the anneal.
type TempEvent struct {
	Ev         string  `json:"ev"`
	Step       int     `json:"step"`
	Temp       float64 `json:"temp"`
	Cost       float64 `json:"cost"` // current state's cost
	Best       float64 `json:"best"` // best cost so far
	Accepted   int     `json:"accepted"`
	Moves      int     `json:"moves"`
	AcceptRate float64 `json:"accept_rate"`
}

// SolutionEvent is the cost-component breakdown of the locally-
// optimized solution at one temperature step: raw physical terms and
// the normalized (raw / calibration-norm) values the weighted cost
// actually combines.
type SolutionEvent struct {
	Ev             string  `json:"ev"`
	Step           int     `json:"step"`
	Area           float64 `json:"area"`       // µm²
	Wirelength     float64 `json:"wirelength"` // µm
	Congestion     float64 `json:"congestion"` // estimator score
	NormArea       float64 `json:"norm_area"`
	NormWirelength float64 `json:"norm_wirelength"`
	NormCongestion float64 `json:"norm_congestion"`
	Cost           float64 `json:"cost"`
}

// SpansEvent carries the run's span timing tree as per-path
// aggregates, emitted once just before run_end when a span tracker
// was attached. Paths are slash-separated, so readers can rebuild the
// tree by prefix (cmd/tracestat renders it as an indented forest).
type SpansEvent struct {
	Ev    string          `json:"ev"`
	Spans []SpanAggregate `json:"spans"`
}

// RunEndEvent closes the trace with the run's Stats and, when a
// metrics registry was attached, a snapshot of every instrument (so a
// trace is self-contained: memo hit rates and stage timings ride along).
type RunEndEvent struct {
	Ev string `json:"ev"`
	// Outcome is how the run ended: completed|canceled|deadline|error.
	Outcome          string             `json:"outcome,omitempty"`
	Temps            int                `json:"temps"`
	Moves            int                `json:"moves"` // search moves only
	CalibrationMoves int                `json:"calibration_moves"`
	Accepted         int                `json:"accepted"`
	UphillAccepted   int                `json:"uphill_accepted"`
	BestStep         int                `json:"best_step"`
	InitTemp         float64            `json:"init_temp"`
	FinalTemp        float64            `json:"final_temp"`
	InitCost         float64            `json:"init_cost"`
	FinalCost        float64            `json:"final_cost"`
	Seconds          float64            `json:"seconds"`
	Metrics          map[string]float64 `json:"metrics,omitempty"`
}

// TraceRecord is the decoding union of every event type: unmarshal a
// trace line into it and dispatch on Ev. Fields not present in the
// line's event type stay zero.
type TraceRecord struct {
	Ev      string `json:"ev"`
	Time    string `json:"time"`
	Version string `json:"version"`
	Circuit string `json:"circuit"`
	Modules int    `json:"modules"`
	Nets    int    `json:"nets"`
	Seed    int64  `json:"seed"`

	Alpha   float64 `json:"alpha"`
	Beta    float64 `json:"beta"`
	Gamma   float64 `json:"gamma"`
	Model   string  `json:"model"`
	Pitch   float64 `json:"pitch"`
	Workers int     `json:"workers"`

	Step       int     `json:"step"`
	Temp       float64 `json:"temp"`
	Cost       float64 `json:"cost"`
	Best       float64 `json:"best"`
	Accepted   int     `json:"accepted"`
	Moves      int     `json:"moves"`
	AcceptRate float64 `json:"accept_rate"`

	Area           float64 `json:"area"`
	Wirelength     float64 `json:"wirelength"`
	Congestion     float64 `json:"congestion"`
	NormArea       float64 `json:"norm_area"`
	NormWirelength float64 `json:"norm_wirelength"`
	NormCongestion float64 `json:"norm_congestion"`

	Temps            int                `json:"temps"`
	CalibrationMoves int                `json:"calibration_moves"`
	UphillAccepted   int                `json:"uphill_accepted"`
	BestStep         int                `json:"best_step"`
	InitTemp         float64            `json:"init_temp"`
	FinalTemp        float64            `json:"final_temp"`
	InitCost         float64            `json:"init_cost"`
	FinalCost        float64            `json:"final_cost"`
	Seconds          float64            `json:"seconds"`
	Metrics          map[string]float64 `json:"metrics"`

	Outcome string          `json:"outcome"`
	Spans   []SpanAggregate `json:"spans"`
}
