package obs

import (
	"testing"
	"time"
)

func TestSpansAggregates(t *testing.T) {
	sp := NewSpans()
	root := sp.Start("evaluate")
	c := root.Child("merge")
	time.Sleep(time.Millisecond)
	c.End()
	c = root.Child("sweep")
	c.End()
	root.End()
	sp.Start("evaluate").End() // second top-level occurrence

	aggs := sp.Aggregates()
	want := []string{"evaluate", "evaluate/merge", "evaluate/sweep"}
	if len(aggs) != len(want) {
		t.Fatalf("%d aggregates, want %d: %+v", len(aggs), len(want), aggs)
	}
	for i, a := range aggs {
		if a.Path != want[i] {
			t.Errorf("aggregate %d path %q, want %q", i, a.Path, want[i])
		}
		if a.Count < 1 || a.TotalNs < 0 || a.MaxNs > a.TotalNs {
			t.Errorf("aggregate %q implausible: %+v", a.Path, a)
		}
	}
	if aggs[0].Count != 2 {
		t.Errorf("evaluate count %d, want 2", aggs[0].Count)
	}
	if aggs[1].TotalNs < int64(time.Millisecond) {
		t.Errorf("merge total %dns, want >= 1ms", aggs[1].TotalNs)
	}

	sp.Reset()
	if n := len(sp.Aggregates()); n != 0 {
		t.Errorf("%d aggregates after Reset, want 0", n)
	}
}

func TestSpansStartAt(t *testing.T) {
	sp := NewSpans()
	s := sp.StartAt("evaluate/topscore")
	s.End()
	aggs := sp.Aggregates()
	if len(aggs) != 1 || aggs[0].Path != "evaluate/topscore" {
		t.Fatalf("aggregates %+v, want single evaluate/topscore", aggs)
	}
}

func TestSpansNilSafe(t *testing.T) {
	var sp *Spans
	s := sp.Start("x")
	if s != nil {
		t.Fatalf("nil Spans.Start returned %+v, want nil", s)
	}
	s.Child("y").End() // must not panic
	s.End()
	s.End() // double End is safe
	if sp.StartAt("a/b") != nil {
		t.Error("nil Spans.StartAt should return nil")
	}
	if sp.Aggregates() != nil {
		t.Error("nil Spans.Aggregates should return nil")
	}
	sp.Reset()
}

func TestSpanDoubleEnd(t *testing.T) {
	sp := NewSpans()
	s := sp.Start("once")
	s.End()
	s.End() // second End must not double-count or panic
	if aggs := sp.Aggregates(); len(aggs) != 1 || aggs[0].Count != 1 {
		t.Fatalf("aggregates %+v, want single once with count 1", aggs)
	}
}

// TestSpansDisabledZeroAlloc pins the zero-overhead contract: the
// whole span API on a nil handle performs no allocation at all.
func TestSpansDisabledZeroAlloc(t *testing.T) {
	var sp *Spans
	allocs := testing.AllocsPerRun(1000, func() {
		root := sp.Start("evaluate")
		root.Child("merge").End()
		s := sp.StartAt("evaluate/topscore")
		s.End()
		root.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSpansSteadyStateAllocFree pins the enabled steady state: after
// the first pass interns the paths and primes the pool, repeated
// Start/Child/End cycles are allocation-free.
func TestSpansSteadyStateAllocFree(t *testing.T) {
	sp := NewSpans()
	cycle := func() {
		root := sp.Start("evaluate")
		root.Child("merge").End()
		root.Child("sweep").End()
		root.End()
	}
	cycle() // warm up: intern paths, seed the pool
	allocs := testing.AllocsPerRun(1000, cycle)
	// sync.Pool gives no hard guarantee, but the steady state should
	// be at (or extremely near) zero; anything above 1 alloc/op means
	// pooling or interning regressed.
	if allocs > 1 {
		t.Errorf("steady-state span cycle allocates %.1f allocs/op, want ~0", allocs)
	}
}
