package obs

import (
	"sync"
	"time"
)

// RecorderEvent kinds. Stored as interned constant strings so ring
// writes never allocate and dumps stay human-readable.
const (
	// RecMove is one annealing move (accept or reject).
	RecMove = "move"
	// RecTemp is one completed temperature step.
	RecTemp = "temp"
	// RecEval is one full (non-delta) evaluator pass.
	RecEval = "eval"
	// RecCheckpoint is one checkpoint write attempt.
	RecCheckpoint = "checkpoint"
	// RecShardPanic is a recovered evaluator shard panic.
	RecShardPanic = "shard_panic"
)

// RecorderEvent is one entry in the flight-recorder ring. It is a
// flat value struct so recording is a copy into preallocated storage —
// no pointers, no allocation.
type RecorderEvent struct {
	// Seq is the global 1-based sequence number of the event; the ring
	// keeps only the most recent N but Seq reveals how many came
	// before.
	Seq int64 `json:"seq"`
	// UnixNs is the wall-clock capture time.
	UnixNs int64 `json:"unix_ns"`
	// Kind is one of the Rec* constants.
	Kind string `json:"kind"`
	// Step is the temperature step the event belongs to, when known.
	Step int `json:"step,omitempty"`
	// Temp is the annealing temperature at capture time.
	Temp float64 `json:"temp,omitempty"`
	// Cost is the current solution cost (for moves/temps) or the
	// evaluated score (for evals).
	Cost float64 `json:"cost,omitempty"`
	// Best is the best cost seen so far.
	Best float64 `json:"best,omitempty"`
	// Delta is the move's cost delta (moves only).
	Delta float64 `json:"delta,omitempty"`
	// Accepted reports whether a move was accepted.
	Accepted bool `json:"accepted,omitempty"`
	// Ns is the event's duration, when the producer timed it.
	Ns int64 `json:"ns,omitempty"`
	// Note carries kind-specific detail (shard index, checkpoint
	// error, ...). Producers must pass constants or preformatted
	// strings from cold paths only.
	Note string `json:"note,omitempty"`
}

// Recorder is a black-box flight recorder: a fixed-size ring of the
// most recent events, preallocated up front so steady-state Record
// calls copy into existing storage and never allocate. On a fault
// (shard panic, cancellation, SIGQUIT) Dump writes a postmortem file
// capturing the ring together with build/config identity, the metrics
// snapshot and span aggregates.
//
// All methods are safe on a nil receiver and safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	buf  []RecorderEvent
	next int   // next write position
	n    int   // number of valid entries (≤ len(buf))
	seq  int64 // total events ever recorded

	// Arm context (set once before the run).
	path   string
	info   PostmortemInfo
	reg    *Registry
	spans  *Spans
	status *Status
}

// DefaultRecorderEvents is the ring capacity used when callers do not
// choose one.
const DefaultRecorderEvents = 4096

// NewRecorder returns a recorder holding the last n events
// (DefaultRecorderEvents if n <= 0). The ring is allocated eagerly.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRecorderEvents
	}
	return &Recorder{buf: make([]RecorderEvent, n)}
}

// Arm attaches dump context: the postmortem destination path, run
// identity, and the metric/span/status sources snapshotted at dump
// time. Until Arm is called Dump is a no-op, so a recorder can be
// wired through the pipeline before the run is fully configured.
func (r *Recorder) Arm(path string, info PostmortemInfo, reg *Registry, spans *Spans, status *Status) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.path = path
	r.info = info
	r.reg = reg
	r.spans = spans
	r.status = status
	r.mu.Unlock()
}

// Record appends ev to the ring, stamping Seq and UnixNs, evicting
// the oldest entry once full. Nil-safe; allocation-free.
func (r *Recorder) Record(ev RecorderEvent) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	ev.UnixNs = now
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Events returns the recorded events oldest-first. Nil-safe.
func (r *Recorder) Events() []RecorderEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

func (r *Recorder) eventsLocked() []RecorderEvent {
	out := make([]RecorderEvent, 0, r.n)
	if r.n == len(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.n]...)
	}
	return out
}

// Len reports how many events the ring currently holds. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Seq reports the total number of events ever recorded. Nil-safe.
func (r *Recorder) Seq() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
