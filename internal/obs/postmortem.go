package obs

import (
	"time"

	"irgrid/internal/ckpt"
)

// PostmortemMagic and PostmortemVersion identify postmortem dump
// files. They ride the same versioned, checksummed, atomically
// written envelope as checkpoints (internal/ckpt), so a crash during
// the dump itself can never leave a truncated file behind.
const (
	PostmortemMagic   = "irgrid-postmortem"
	PostmortemVersion = 1
)

// PostmortemInfo is the run identity block of a postmortem: what
// binary ran what configuration.
type PostmortemInfo struct {
	// Version is the buildinfo one-liner of the producing binary.
	Version string `json:"version"`
	// ConfigDigest is the run's deterministic configuration digest
	// (the same digest checkpoints are keyed by).
	ConfigDigest string `json:"config_digest,omitempty"`
	// Circuit names the input circuit.
	Circuit string `json:"circuit,omitempty"`
	// Model names the congestion estimator in use.
	Model string `json:"model,omitempty"`
	// Seed is the run's RNG seed.
	Seed int64 `json:"seed"`
}

// Postmortem is the payload of a flight-recorder dump: identity,
// reason, a snapshot of every observability surface, and the most
// recent ring events oldest-first.
type Postmortem struct {
	Info PostmortemInfo `json:"info"`
	// Reason is why the dump was taken: "shard_panic", "canceled",
	// "deadline", "sigquit", ...
	Reason string `json:"reason"`
	// UnixNs is the dump capture time.
	UnixNs int64 `json:"unix_ns"`
	// TotalEvents is the lifetime event count; len(Events) is only
	// the retained tail.
	TotalEvents int64 `json:"total_events"`
	// Metrics is the registry snapshot at dump time, if a registry
	// was armed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Spans holds per-path span aggregates at dump time.
	Spans []SpanAggregate `json:"spans,omitempty"`
	// Status is the live run-status snapshot at dump time.
	Status *StatusSnapshot `json:"status,omitempty"`
	// Events is the flight-recorder ring, oldest-first.
	Events []RecorderEvent `json:"events"`
}

// Dump writes a postmortem file for the given reason and returns its
// path. It is a no-op returning ("", nil) when the recorder is nil or
// was never armed with a destination, so fault paths can call it
// unconditionally. Dump may be called more than once (e.g. a shard
// panic followed by cancellation); each call rewrites the file
// atomically with the then-current state.
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	path := r.path
	if path == "" {
		r.mu.Unlock()
		return "", nil
	}
	pm := Postmortem{
		Info:        r.info,
		Reason:      reason,
		UnixNs:      time.Now().UnixNano(),
		TotalEvents: r.seq,
		Events:      r.eventsLocked(),
	}
	reg, spans, status := r.reg, r.spans, r.status
	r.mu.Unlock()

	// Snapshot the other surfaces outside r.mu: they have their own
	// locks and may be fed concurrently by the run we are dumping.
	if reg != nil {
		pm.Metrics = reg.Snapshot()
	}
	pm.Spans = spans.Aggregates()
	if status != nil {
		snap := status.Snapshot()
		pm.Status = &snap
	}
	if err := ckpt.SaveAs(path, PostmortemMagic, PostmortemVersion, pm); err != nil {
		return "", err
	}
	return path, nil
}

// LoadPostmortem reads and verifies a postmortem dump written by
// Recorder.Dump.
func LoadPostmortem(path string) (*Postmortem, error) {
	var pm Postmortem
	if err := ckpt.LoadAs(path, PostmortemMagic, PostmortemVersion, &pm); err != nil {
		return nil, err
	}
	return &pm, nil
}
