package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(TempEvent{Ev: EvTemp, Step: 0, Temp: 10, AcceptRate: 0.9})
	tr.Emit(TempEvent{Ev: EvTemp, Step: 1, Temp: 9, AcceptRate: 0.8})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var recs []TraceRecord
	for sc.Scan() {
		var r TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if recs[0].Ev != EvTemp || recs[0].Temp != 10 || recs[1].Step != 1 {
		t.Errorf("decoded %+v", recs)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(TempEvent{Ev: EvTemp})
	if err := tr.Err(); err != nil {
		t.Errorf("nil tracer Err = %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close = %v", err)
	}
}

func TestCreateTraceWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	tr, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(RunStartEvent{Ev: EvRunStart, Circuit: "tiny", Seed: 7})
	tr.Emit(RunEndEvent{Ev: EvRunEnd, Temps: 3})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"ev":"run_start"`) || !strings.Contains(lines[1], `"ev":"run_end"`) {
		t.Errorf("unexpected trace contents:\n%s", raw)
	}
}

// TestTracerFlush pins bounded staleness: after Flush, every emitted
// event is visible to the underlying writer without closing the
// tracer (the annealer flushes at each temperature boundary).
func TestTracerFlush(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(TempEvent{Ev: EvTemp, Step: 0, Temp: 10})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"step":0`) {
		t.Fatalf("flushed output missing event:\n%s", buf.String())
	}
	// The tracer stays usable after a flush.
	tr.Emit(TempEvent{Ev: EvTemp, Step: 1, Temp: 9})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"ev":"temp"`); got != 2 {
		t.Errorf("%d temp events after close, want 2:\n%s", got, buf.String())
	}
}

func TestTracerFlushNilSafe(t *testing.T) {
	var tr *Tracer
	if err := tr.Flush(); err != nil {
		t.Errorf("nil Flush = %v", err)
	}
}

func TestTracerErrorSticks(t *testing.T) {
	tr := NewTracer(failWriter{})
	for i := 0; i < 2000; i++ { // force a flush past the bufio buffer
		tr.Emit(TempEvent{Ev: EvTemp, Step: i})
	}
	if tr.Err() == nil {
		t.Error("expected a sticky write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }
