// Package obs is the telemetry subsystem: a registry of atomic
// counters, gauges and fixed-bucket histograms with Prometheus-style
// text exposition, a JSONL run tracer, and an HTTP handler serving
// live metrics plus net/http/pprof.
//
// The package's contract is zero overhead when disabled: every
// instrument type is a pointer whose methods are nil-safe no-ops, and
// a nil *Registry hands out nil instruments, so instrumented code can
// unconditionally call Add/Set/Observe and pay only a predictable
// not-taken branch when telemetry is off (no allocation, no atomic;
// guarded by TestNilInstrumentsAreFree and BenchmarkNilInstruments).
// Telemetry never perturbs results: instruments observe values that
// the computation already produced and touch no RNG or float path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter ignores all writes.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 holding the last observed value. The zero
// value is ready to use; a nil *Gauge ignores all writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// immutable after creation; Observe is lock-free. A nil *Histogram
// ignores all observations.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// DurationBuckets are the default nanosecond buckets for timing
// histograms: 1 µs to 10 s, roughly ×3 apart.
var DurationBuckets = []float64{
	1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 1e10,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a named collection of instruments. Instruments are
// created on first request and shared thereafter, so call sites can
// resolve them once and hold the pointers across the hot path. A nil
// *Registry hands out nil instruments, making every downstream write a
// no-op.
//
// Metric names follow Prometheus conventions (snake_case, counters
// ending in _total); a name may carry a label suffix in exposition
// syntax, e.g. `eval_worker_busy_ns_total{worker="0"}` — series
// sharing a base name are grouped under one TYPE line on export.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	histogram map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		histogram: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bucket bounds on first use (later calls reuse the existing
// buckets). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histogram[name]
	if !ok {
		h = newHistogram(bounds)
		r.histogram[name] = h
	}
	return h
}

// Snapshot returns the current value of every instrument: counters and
// gauges under their own names, histograms as <name>_count and
// <name>_sum. A nil registry returns nil.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.histogram))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histogram {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// baseName strips a label suffix: `a_total{worker="0"}` → `a_total`.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// WriteText writes the registry in the Prometheus text exposition
// format (one TYPE line per base name, series sorted by name). A nil
// registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histogram))
	for k, v := range r.histogram {
		hists[k] = v
	}
	r.mu.Unlock()

	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	typed := make(map[string]bool) // base names whose TYPE line is out
	family := func(name, kind string) {
		if b := baseName(name); !typed[b] {
			typed[b] = true
			emit("# TYPE %s %s\n", b, kind)
		}
	}

	for _, name := range sortedKeys(counters) {
		family(name, "counter")
		emit("%s %d\n", name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		family(name, "gauge")
		emit("%s %s\n", name, formatFloat(gauges[name].Value()))
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		family(name, "histogram")
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			emit("%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		emit("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		emit("%s_sum %s\n", name, formatFloat(h.Sum()))
		emit("%s_count %d\n", name, h.Count())
	}
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
