package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Hub bundles every live observability surface a process wants to
// expose over HTTP. All fields are optional: absent surfaces simply
// serve empty data, so callers wire up whatever subset they enabled.
type Hub struct {
	// Reg serves /metrics (Prometheus text exposition).
	Reg *Registry
	// Spans contributes span aggregates to /debug/run.
	Spans *Spans
	// Status contributes the live run snapshot to /debug/run.
	Status *Status
	// Recorder contributes ring depth/sequence counters to /debug/run.
	Recorder *Recorder
}

// runDebug is the /debug/run response shape.
type runDebug struct {
	Status StatusSnapshot  `json:"status"`
	Spans  []SpanAggregate `json:"spans,omitempty"`
	// RecorderEvents/RecorderSeq describe the flight-recorder ring:
	// how many events it holds and how many were ever recorded.
	RecorderEvents int   `json:"recorder_events,omitempty"`
	RecorderSeq    int64 `json:"recorder_seq,omitempty"`
}

// Handler returns an http.Handler serving the hub's surfaces on its
// own mux (nothing is registered on http.DefaultServeMux):
//
//	/metrics       Prometheus text exposition of h.Reg
//	/debug/run     JSON live run status + span aggregates
//	/debug/pprof/  the standard net/http/pprof endpoints
func (h Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Reg.WriteText(w)
	})
	mux.HandleFunc("/debug/run", func(w http.ResponseWriter, _ *http.Request) {
		resp := runDebug{
			Status:         h.Status.Snapshot(),
			Spans:          h.Spans.Aggregates(),
			RecorderEvents: h.Recorder.Len(),
			RecorderSeq:    h.Recorder.Seq(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler returns an http.Handler serving reg's metrics plus the
// pprof endpoints — the metrics-only view of Hub.Handler, kept for
// callers that have no run-level surfaces.
func Handler(reg *Registry) http.Handler {
	return Hub{Reg: reg}.Handler()
}

// Server is a background observability HTTP server with graceful
// shutdown: Shutdown drains in-flight requests (with ctx as the
// deadline) and then waits for the serve goroutine to exit, so tests
// can prove no goroutine leaks.
type Server struct {
	srv  *http.Server
	addr net.Addr
	done chan struct{}

	mu       sync.Mutex
	serveErr error
}

// Addr returns the server's bound address (useful with ":0" ports).
func (s *Server) Addr() net.Addr { return s.addr }

// Shutdown gracefully stops the server: the listener closes, in-flight
// requests get until ctx's deadline to finish, and the background
// serve goroutine is joined before returning.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	if err == nil {
		s.mu.Lock()
		err = s.serveErr
		s.mu.Unlock()
	}
	return err
}

// Close force-closes the server without draining, then joins the
// serve goroutine. Prefer Shutdown; Close keeps the old abrupt
// behavior for defer paths that cannot block.
func (s *Server) Close() error {
	err := s.srv.Close()
	select {
	case <-s.done:
	case <-time.After(time.Second):
	}
	return err
}

// ServeHub listens on addr and serves hub.Handler() in a background
// goroutine.
func ServeHub(addr string, hub Hub) (*Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: hub.Handler()},
		addr: ln.Addr(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if serr := s.srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			s.mu.Lock()
			s.serveErr = serr
			s.mu.Unlock()
		}
	}()
	return s, ln.Addr(), nil
}

// Serve listens on addr and serves Handler(reg) in a background
// goroutine. It returns the server (Shutdown or Close it to stop) and
// the bound address.
func Serve(addr string, reg *Registry) (*Server, net.Addr, error) {
	return ServeHub(addr, Hub{Reg: reg})
}
