package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry's metrics at
// /metrics in Prometheus text exposition format, and the standard
// net/http/pprof profiling endpoints under /debug/pprof/. It uses its
// own mux (nothing is registered on http.DefaultServeMux).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves Handler(reg) in a background
// goroutine. It returns the server (Close it to stop) and the bound
// address, useful with ":0" ports.
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
