package obs

import (
	"path/filepath"
	"testing"
)

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 11; i++ {
		r.Record(RecorderEvent{Kind: RecMove, Step: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Seq() != 11 {
		t.Fatalf("Seq = %d, want 11", r.Seq())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantStep := 7 + i // oldest-first: steps 7..10 survive
		if ev.Step != wantStep {
			t.Errorf("event %d step %d, want %d", i, ev.Step, wantStep)
		}
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Errorf("event %d seq %d not increasing after %d", i, ev.Seq, evs[i-1].Seq)
		}
		if ev.UnixNs == 0 {
			t.Errorf("event %d missing timestamp", i)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(RecorderEvent{Kind: RecMove})
	if r.Len() != 0 || r.Seq() != 0 || r.Events() != nil {
		t.Error("nil recorder should be empty")
	}
	r.Arm("x", PostmortemInfo{}, nil, nil, nil)
	path, err := r.Dump("test")
	if path != "" || err != nil {
		t.Errorf("nil Dump = (%q, %v), want no-op", path, err)
	}
}

func TestRecorderDumpUnarmed(t *testing.T) {
	r := NewRecorder(8)
	r.Record(RecorderEvent{Kind: RecMove})
	path, err := r.Dump("test")
	if path != "" || err != nil {
		t.Errorf("unarmed Dump = (%q, %v), want no-op", path, err)
	}
}

func TestRecorderPostmortemRoundtrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "run.postmortem.json")

	reg := NewRegistry()
	reg.Counter("anneal_moves_total").Add(99)
	sp := NewSpans()
	sp.Start("run").End()
	st := NewStatus()
	st.Begin("tiny", "ir-grid", 7)
	st.Schedule(10, 5)
	st.Step(3, 2.5, 100, 90, 0.5, 15)

	r := NewRecorder(8)
	info := PostmortemInfo{Version: "v-test", ConfigDigest: "abc", Circuit: "tiny", Model: "ir-grid", Seed: 7}
	r.Arm(out, info, reg, sp, st)
	for i := 0; i < 3; i++ {
		r.Record(RecorderEvent{Kind: RecMove, Step: i, Cost: float64(100 - i)})
	}
	r.Record(RecorderEvent{Kind: RecShardPanic, Note: "shard 2: boom"})

	path, err := r.Dump("shard_panic")
	if err != nil {
		t.Fatal(err)
	}
	if path != out {
		t.Fatalf("Dump path %q, want %q", path, out)
	}

	pm, err := LoadPostmortem(out)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Info != info {
		t.Errorf("info %+v, want %+v", pm.Info, info)
	}
	if pm.Reason != "shard_panic" {
		t.Errorf("reason %q", pm.Reason)
	}
	if pm.TotalEvents != 4 || len(pm.Events) != 4 {
		t.Errorf("events %d (total %d), want 4", len(pm.Events), pm.TotalEvents)
	}
	if pm.Events[3].Kind != RecShardPanic || pm.Events[3].Note != "shard 2: boom" {
		t.Errorf("last event %+v", pm.Events[3])
	}
	if pm.Metrics["anneal_moves_total"] != 99 {
		t.Errorf("metrics %v missing counter snapshot", pm.Metrics)
	}
	if len(pm.Spans) != 1 || pm.Spans[0].Path != "run" {
		t.Errorf("spans %+v", pm.Spans)
	}
	if pm.Status == nil || pm.Status.Circuit != "tiny" || pm.Status.Step != 3 {
		t.Errorf("status %+v", pm.Status)
	}
	if pm.UnixNs == 0 {
		t.Error("missing dump timestamp")
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < DefaultRecorderEvents+5; i++ {
		r.Record(RecorderEvent{Kind: RecMove, Step: i})
	}
	if r.Len() != DefaultRecorderEvents {
		t.Errorf("Len = %d, want default %d", r.Len(), DefaultRecorderEvents)
	}
}

// TestRecorderDisabledZeroAlloc pins the disabled path: a nil
// recorder's Record is allocation-free (callers additionally gate on
// the handle, skipping even the event construction).
func TestRecorderDisabledZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(RecorderEvent{Kind: RecMove, Step: 1, Cost: 2, Best: 3})
	})
	if allocs != 0 {
		t.Errorf("nil Record allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestRecorderEnabledAllocFree pins the armed hot path: ring writes
// allocate nothing once the buffer exists.
func TestRecorderEnabledAllocFree(t *testing.T) {
	r := NewRecorder(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(RecorderEvent{Kind: RecMove, Step: 1, Cost: 2, Best: 3, Accepted: true})
	})
	if allocs != 0 {
		t.Errorf("ring Record allocates %.1f allocs/op, want 0", allocs)
	}
}
