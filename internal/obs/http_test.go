package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("anneal_moves_total").Add(42)
	reg.Gauge("anneal_temperature").Set(1.5)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE anneal_moves_total counter",
		"anneal_moves_total 42",
		"anneal_temperature 1.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected:\n%.200s", body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestHubDebugRun(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("anneal_moves_total").Add(7)
	sp := NewSpans()
	sp.Start("run").End()
	st := NewStatus()
	st.Begin("ami33", "ir-grid", 3)
	st.Schedule(100, 10)
	st.Step(20, 4.5, 120, 100, 0.35, 200)
	rec := NewRecorder(8)
	rec.Record(RecorderEvent{Kind: RecTemp, Step: 20})

	srv := httptest.NewServer(Hub{Reg: reg, Spans: sp, Status: st, Recorder: rec}.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/run status %d", resp.StatusCode)
	}
	var doc struct {
		Status         StatusSnapshot  `json:"status"`
		Spans          []SpanAggregate `json:"spans"`
		RecorderEvents int             `json:"recorder_events"`
		RecorderSeq    int64           `json:"recorder_seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Status.Running || doc.Status.Circuit != "ami33" || doc.Status.Step != 20 {
		t.Errorf("status %+v", doc.Status)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Path != "run" {
		t.Errorf("spans %+v", doc.Spans)
	}
	if doc.RecorderEvents != 1 || doc.RecorderSeq != 1 {
		t.Errorf("recorder %d events seq %d, want 1/1", doc.RecorderEvents, doc.RecorderSeq)
	}
}

// TestHubDebugRunEmpty pins that a bare hub (metrics only) still
// serves /debug/run with zero-value sections instead of crashing on
// nil handles.
func TestHubDebugRunEmpty(t *testing.T) {
	srv := httptest.NewServer(Hub{}.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/run status %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
}

// TestServerShutdownNoLeak pins graceful shutdown: Shutdown returns
// only after the serve goroutine exits, so repeated serve/shutdown
// cycles do not accumulate goroutines.
func TestServerShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		srv, addr, err := Serve("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + addr.String() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown %d: %v", i, err)
		}
		cancel()
	}
	// Goroutine counts are noisy (http keep-alive reapers, test
	// runtime); allow slack but catch a per-cycle leak, which would
	// add at least 5.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines %d -> %d after 5 serve/shutdown cycles", before, runtime.NumGoroutine())
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x_total 1") {
		t.Errorf("metrics body:\n%s", body)
	}
}
