package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("anneal_moves_total").Add(42)
	reg.Gauge("anneal_temperature").Set(1.5)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE anneal_moves_total counter",
		"anneal_moves_total 42",
		"anneal_temperature 1.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected:\n%.200s", body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x_total 1") {
		t.Errorf("metrics body:\n%s", body)
	}
}
