package obs

import (
	"sort"
	"sync"
	"time"
)

// Spans aggregates hierarchical timing spans in process: every span
// path (a slash-separated stage name like "run/anneal/temp") keeps a
// count, a total and a maximum duration. The tracker follows the
// telemetry layer's two hard guarantees: a nil *Spans hands out nil
// *Span values whose methods are no-ops (zero overhead, zero
// allocations when disabled — TestSpansDisabledZeroAlloc), and spans
// only observe durations of work the pipeline already performed, so
// span-enabled runs are bit-identical to untimed ones.
//
// Spans are pooled: steady-state Start/Child/End cycles allocate
// nothing once a path has been interned (TestSpansSteadyStateAllocs).
// The tracker is safe for concurrent use.
type Spans struct {
	mu sync.Mutex
	// agg is the per-path aggregate. Entries are never removed, only
	// Reset clears them.
	agg map[string]*spanAgg
	// paths interns full paths per (parent, child name) so the hot
	// Start/Child path never concatenates strings after first use.
	paths map[string]map[string]string
	pool  sync.Pool
}

type spanAgg struct {
	count   int64
	totalNs int64
	maxNs   int64
}

// Span is one live timing measurement. Obtain spans from
// Spans.Start/StartAt or Span.Child; End records the elapsed time into
// the tracker and recycles the span. All methods are no-ops on a nil
// receiver, so instrumented code calls them unconditionally.
type Span struct {
	t     *Spans
	path  string
	start time.Time
}

// SpanAggregate is the exported aggregate of one span path, as emitted
// in trace SpansEvents, postmortem dumps and /debug/run snapshots.
type SpanAggregate struct {
	Path    string `json:"path"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// NewSpans returns an enabled span tracker.
func NewSpans() *Spans {
	return &Spans{
		agg:   make(map[string]*spanAgg),
		paths: make(map[string]map[string]string),
	}
}

// Start begins a root span. Nil trackers return a nil span.
func (t *Spans) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.begin("", name)
}

// StartAt begins a span at an explicit slash-separated path, so
// sibling stages recorded from different call frames can share one
// tree (e.g. the top-score stage timed outside the evaluation root).
// Nil trackers return a nil span.
func (t *Spans) StartAt(path string) *Span {
	if t == nil {
		return nil
	}
	return t.begin("", path)
}

// Child begins a span nested under s's path. A nil span returns nil,
// so disabled chains stay no-ops end to end.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.begin(s.path, name)
}

func (t *Spans) begin(parent, name string) *Span {
	t.mu.Lock()
	kids := t.paths[parent]
	if kids == nil {
		kids = make(map[string]string)
		t.paths[parent] = kids
	}
	path, ok := kids[name]
	if !ok {
		if parent == "" {
			path = name
		} else {
			path = parent + "/" + name
		}
		kids[name] = path
	}
	t.mu.Unlock()
	sp, _ := t.pool.Get().(*Span)
	if sp == nil {
		sp = &Span{}
	}
	sp.t = t
	sp.path = path
	sp.start = time.Now()
	return sp
}

// End records the span's elapsed time into its tracker and recycles
// it. Safe on a nil (or already ended) span; a span must not be used
// after End.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	ns := time.Since(s.start).Nanoseconds()
	t := s.t
	t.mu.Lock()
	a := t.agg[s.path]
	if a == nil {
		a = &spanAgg{}
		t.agg[s.path] = a
	}
	a.count++
	a.totalNs += ns
	if ns > a.maxNs {
		a.maxNs = ns
	}
	t.mu.Unlock()
	s.t = nil
	t.pool.Put(s)
}

// Aggregates returns every span path's aggregate, sorted by path (so
// a parent precedes its children). Nil trackers return nil.
func (t *Spans) Aggregates() []SpanAggregate {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanAggregate, 0, len(t.agg))
	for p, a := range t.agg {
		out = append(out, SpanAggregate{Path: p, Count: a.count, TotalNs: a.totalNs, MaxNs: a.maxNs})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Reset drops every aggregate (interned paths survive). Nil-safe.
func (t *Spans) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for p := range t.agg {
		delete(t.agg, p)
	}
	t.mu.Unlock()
}
