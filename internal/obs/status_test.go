package obs

import "testing"

func TestStatusLifecycle(t *testing.T) {
	st := NewStatus()
	s := st.Snapshot()
	if s.Running || s.ETASeconds != -1 {
		t.Errorf("fresh snapshot %+v, want idle with unknown ETA", s)
	}

	st.Begin("ami33", "ir-grid", 42)
	st.Schedule(100, 50)
	s = st.Snapshot()
	if !s.Running || s.Circuit != "ami33" || s.Model != "ir-grid" || s.Seed != 42 || s.MaxSteps != 100 {
		t.Errorf("post-Begin snapshot %+v", s)
	}
	if s.ETASeconds != -1 {
		t.Errorf("ETA %.1f before any step, want -1", s.ETASeconds)
	}

	st.Step(10, 5.5, 120, 100, 0.4, 500)
	s = st.Snapshot()
	if s.Step != 10 || s.Temp != 5.5 || s.Cost != 120 || s.Best != 100 || s.AcceptRate != 0.4 || s.Moves != 500 {
		t.Errorf("post-Step snapshot %+v", s)
	}
	if s.ETASeconds < 0 {
		t.Errorf("ETA %.2f after progress, want >= 0", s.ETASeconds)
	}
	if s.MovesPerSec <= 0 {
		t.Errorf("moves/sec %.2f, want > 0", s.MovesPerSec)
	}

	st.End(OutcomeCompleted)
	s = st.Snapshot()
	if s.Running || s.Outcome != OutcomeCompleted {
		t.Errorf("post-End snapshot %+v", s)
	}
	if s.ETASeconds != -1 {
		t.Errorf("ETA %.1f after End, want -1", s.ETASeconds)
	}
}

func TestStatusNilSafe(t *testing.T) {
	var st *Status
	st.Begin("x", "y", 1)
	st.Schedule(10, 10)
	st.Step(1, 1, 1, 1, 1, 1)
	st.End(OutcomeError)
	s := st.Snapshot()
	if s.Running || s.ETASeconds != -1 {
		t.Errorf("nil snapshot %+v", s)
	}
}

// TestStatusResumeHonestRate pins that moves/sec reflects only
// in-process work: a resumed run that starts at step 50 of 100 must
// not count the first 50 steps in its throughput or ETA.
func TestStatusResumeHonestRate(t *testing.T) {
	st := NewStatus()
	st.Begin("ami33", "ir-grid", 1)
	st.Schedule(100, 10)
	st.Step(51, 2.0, 10, 9, 0.3, 510) // first in-process boundary of a resume
	s := st.Snapshot()
	if s.ETASeconds < 0 {
		t.Errorf("ETA %.2f, want computable from one in-process step", s.ETASeconds)
	}
	// 49 steps remain after step 51 of 100; the per-step estimate uses
	// 1 in-process step, not 51, so the ETA is about 49 elapsed units,
	// not elapsed/51*49 ~ elapsed. Sub-second elapsed makes exact
	// comparison flaky; the sign check above plus the stepsDone=1
	// denominator is pinned by construction here.
	if s.Step != 51 || s.MaxSteps != 100 {
		t.Errorf("snapshot %+v", s)
	}
}
