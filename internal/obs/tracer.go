package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Tracer writes a JSONL run trace: one JSON object per line, in emit
// order. It is safe for concurrent use, and a nil *Tracer discards
// everything, so instrumented code can emit unconditionally.
//
// Tracing never perturbs results: events carry values the run already
// computed, and the annealer's RNG is never consulted by the tracer
// (TestTracedRunBitIdentical proves a traced run returns the
// bit-identical best solution of an untraced one).
type Tracer struct {
	mu  sync.Mutex
	buf *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	err error
}

// NewTracer returns a tracer writing JSONL to w. If w is also an
// io.Closer, Close closes it after flushing.
func NewTracer(w io.Writer) *Tracer {
	buf := bufio.NewWriter(w)
	t := &Tracer{buf: buf, enc: json.NewEncoder(buf)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// CreateTrace creates (truncating) the file at path and returns a
// tracer writing to it.
func CreateTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Emit appends one event as a JSON line. The first encoding error
// sticks (see Err); later emits are dropped. No-op on a nil receiver.
func (t *Tracer) Emit(event any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(event) //irlint:allow lockscope(the mutex exists to serialize the JSONL stream; encodes hit the in-memory bufio layer)
}

// Flush pushes buffered events to the underlying writer without
// closing it. The annealer calls this at temperature boundaries so a
// crash loses at most the current temperature's events rather than
// the whole buffered tail. Safe on a nil receiver.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.buf.Flush(); err != nil && t.err == nil { //irlint:allow lockscope(flush must exclude concurrent Emit to keep JSONL lines whole)
		t.err = err
	}
	return t.err
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes buffered events and closes the underlying writer when
// it is closeable. Safe on a nil receiver.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.buf.Flush(); err != nil && t.err == nil { //irlint:allow lockscope(final flush under the stream mutex; Close races Emit otherwise)
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
