package obs

import (
	"sync"
	"time"
)

// Status is the live run-status surface behind the /debug/run
// endpoint: the annealing loop publishes cheap per-temperature facts
// into it, and Snapshot derives progress rates (moves/sec, ETA) on
// demand so the hot loop never computes them.
//
// All methods are safe on a nil receiver and safe for concurrent use.
type Status struct {
	mu sync.Mutex

	running bool
	outcome string
	begin   time.Time

	circuit string
	model   string
	seed    int64

	maxSteps     int
	movesPerTemp int

	// stepsDone counts temperature steps completed in this process
	// (a resumed run restarts it, so rates stay honest about the
	// current process's throughput rather than the whole logical
	// run's).
	stepsDone  int
	step       int
	temp       float64
	cost       float64
	best       float64
	acceptRate float64
	moves      int64
}

// StatusSnapshot is the JSON shape served by /debug/run and embedded
// in postmortem dumps.
type StatusSnapshot struct {
	Running bool `json:"running"`
	// Outcome is set once the run ends: completed|canceled|deadline|error.
	Outcome string `json:"outcome,omitempty"`
	Circuit string `json:"circuit,omitempty"`
	Model   string `json:"model,omitempty"`
	Seed    int64  `json:"seed"`
	// Step is the last completed temperature step (1-based); MaxSteps
	// is the schedule's upper bound (early stop may end sooner).
	Step     int `json:"step"`
	MaxSteps int `json:"max_steps"`
	// Temp/Cost/Best/AcceptRate mirror the most recent TempEvent.
	Temp       float64 `json:"temp"`
	Cost       float64 `json:"cost"`
	Best       float64 `json:"best"`
	AcceptRate float64 `json:"accept_rate"`
	// Moves is the total move count so far in this process.
	Moves int64 `json:"moves"`
	// ElapsedSeconds is wall time since Begin.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// MovesPerSec is the mean throughput since Begin.
	MovesPerSec float64 `json:"moves_per_sec"`
	// ETASeconds projects time to finish the full schedule from the
	// mean pace so far; -1 when unknown (no steps done yet, or no
	// schedule). It is an upper bound: early stopping finishes sooner.
	ETASeconds float64 `json:"eta_seconds"`
}

// NewStatus returns an enabled status surface.
func NewStatus() *Status { return &Status{} }

// Begin marks the run started and records its identity. Nil-safe.
func (s *Status) Begin(circuit, model string, seed int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.running = true
	s.outcome = ""
	s.begin = time.Now()
	s.circuit = circuit
	s.model = model
	s.seed = seed
	s.stepsDone = 0
	s.step = 0
	s.moves = 0
	s.mu.Unlock()
}

// Schedule records the cooling schedule's bounds once the annealer
// has resolved its defaults. Nil-safe.
func (s *Status) Schedule(maxSteps, movesPerTemp int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.maxSteps = maxSteps
	s.movesPerTemp = movesPerTemp
	s.mu.Unlock()
}

// Step publishes one completed temperature step. Nil-safe.
func (s *Status) Step(step int, temp, cost, best, acceptRate float64, moves int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stepsDone++
	s.step = step
	s.temp = temp
	s.cost = cost
	s.best = best
	s.acceptRate = acceptRate
	s.moves = moves
	s.mu.Unlock()
}

// End marks the run finished with the given outcome. Nil-safe.
func (s *Status) End(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.running = false
	s.outcome = outcome
	s.mu.Unlock()
}

// Snapshot derives the current status. Nil receivers return a zero
// snapshot with ETASeconds -1.
func (s *Status) Snapshot() StatusSnapshot {
	if s == nil {
		return StatusSnapshot{ETASeconds: -1}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatusSnapshot{
		Running:    s.running,
		Outcome:    s.outcome,
		Circuit:    s.circuit,
		Model:      s.model,
		Seed:       s.seed,
		Step:       s.step,
		MaxSteps:   s.maxSteps,
		Temp:       s.temp,
		Cost:       s.cost,
		Best:       s.best,
		AcceptRate: s.acceptRate,
		Moves:      s.moves,
		ETASeconds: -1,
	}
	if !s.begin.IsZero() {
		elapsed := time.Since(s.begin).Seconds()
		snap.ElapsedSeconds = elapsed
		if elapsed > 0 {
			snap.MovesPerSec = float64(s.moves) / elapsed
		}
		if s.running && s.stepsDone > 0 && s.maxSteps > s.step {
			perStep := elapsed / float64(s.stepsDone)
			snap.ETASeconds = perStep * float64(s.maxSteps-s.step)
		}
	}
	return snap
}
