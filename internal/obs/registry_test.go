package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Error("counter not shared by name")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}

	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Errorf("hist sum = %g, want 555.5", h.Sum())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(1.5)
	h := r.Histogram("d", []float64{1})
	h.Observe(2)
	snap := r.Snapshot()
	if snap["a_total"] != 3 || snap["b"] != 1.5 || snap["d_count"] != 1 || snap["d_sum"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("moves_total").Add(7)
	r.Counter(`busy_ns_total{worker="0"}`).Add(11)
	r.Counter(`busy_ns_total{worker="1"}`).Add(13)
	r.Gauge("temp").Set(0.5)
	h := r.Histogram("lat_ns", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE moves_total counter\n",
		"moves_total 7\n",
		"# TYPE busy_ns_total counter\n",
		"busy_ns_total{worker=\"0\"} 11\n",
		"busy_ns_total{worker=\"1\"} 13\n",
		"# TYPE temp gauge\n",
		"temp 0.5\n",
		"# TYPE lat_ns histogram\n",
		"lat_ns_bucket{le=\"10\"} 1\n",
		"lat_ns_bucket{le=\"100\"} 2\n",
		"lat_ns_bucket{le=\"+Inf\"} 3\n",
		"lat_ns_sum 5055\n",
		"lat_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The labeled family must carry exactly one TYPE line.
	if n := strings.Count(out, "# TYPE busy_ns_total"); n != 1 {
		t.Errorf("busy_ns_total has %d TYPE lines, want 1", n)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n_total")
			h := r.Histogram("h", []float64{50})
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Gauge("g").Set(float64(i))
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("hist count = %d, want 8000", got)
	}
}

// TestNilInstrumentsAreFree is the zero-overhead-when-disabled
// contract: a nil registry hands out nil instruments, every operation
// on them is a no-op, and none of it allocates.
func TestNilInstrumentsAreFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_h", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}

	avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.0)
		h.Observe(2.0)
		_ = c.Value()
		_ = g.Value()
		_ = r.Snapshot()
		_ = r.Counter("y_total")
	})
	if avg != 0 {
		t.Errorf("nil instrument ops allocate %.2f/op, want 0", avg)
	}
	if err := r.WriteText(nil); err != nil {
		t.Errorf("nil registry WriteText: %v", err)
	}
}

// BenchmarkNilInstruments measures the per-call cost of the disabled
// path (a nil-receiver check); BENCH_trace_overhead.json and the <2%
// budget test in internal/core build on these numbers.
func BenchmarkNilInstruments(b *testing.B) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.Set(1)
		h.Observe(1)
	}
}
