package fplan

import (
	"math"
	"testing"

	"irgrid/internal/anneal"
	"irgrid/internal/bench"
	"irgrid/internal/core"
	"irgrid/internal/grid"
	"irgrid/internal/netlist"
	"irgrid/internal/slicing"
)

func tinyCircuit() *netlist.Circuit {
	return &netlist.Circuit{
		Name: "tiny",
		Modules: []netlist.Module{
			{Name: "a", W: 300, H: 300},
			{Name: "b", W: 300, H: 150},
			{Name: "c", W: 150, H: 300},
			{Name: "d", W: 150, H: 150},
		},
		Nets: []netlist.Net{
			{Name: "n1", Pins: []netlist.PinRef{{Module: 0, FX: 0.5, FY: 0.5}, {Module: 1, FX: 0.5, FY: 0.5}}},
			{Name: "n2", Pins: []netlist.PinRef{{Module: 1, FX: 0, FY: 0}, {Module: 2, FX: 1, FY: 1}}},
			{Name: "n3", Pins: []netlist.PinRef{{Module: 0, FX: 1, FY: 0}, {Module: 2, FX: 0, FY: 0}, {Module: 3, FX: 0.5, FY: 1}}},
		},
	}
}

func quickAnneal(seed int64) anneal.Config {
	return anneal.Config{Seed: seed, MovesPerTemp: 25, MaxTemps: 25, CalibrationMoves: 10}
}

func TestNewValidates(t *testing.T) {
	c := tinyCircuit()
	if _, err := New(c, Config{Pitch: 0}); err == nil {
		t.Error("zero pitch accepted")
	}
	if _, err := New(c, Config{Pitch: 30, Weights: Weights{Gamma: 1}}); err == nil {
		t.Error("gamma without estimator accepted")
	}
	bad := tinyCircuit()
	bad.Modules[0].W = -1
	if _, err := New(bad, Config{Pitch: 30}); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestEvaluateTerms(t *testing.T) {
	r, err := New(tinyCircuit(), Config{
		Weights: Weights{Alpha: 0.5, Beta: 0.5},
		Pitch:   30, AllowRotate: true, Anneal: quickAnneal(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Evaluate(sliceInitial(4))
	if s.Area <= 0 || s.Wirelength <= 0 || s.Cost <= 0 {
		t.Errorf("terms: area=%g wl=%g cost=%g", s.Area, s.Wirelength, s.Cost)
	}
	// Area is at least the module area sum.
	if s.Area < tinyCircuit().TotalModuleArea()-1e-6 {
		t.Errorf("area %g below module sum", s.Area)
	}
	// 3 nets → 2 + 1 + 1 MST edges... n3 has 3 pins → 2 edges; total 4.
	if len(s.Nets) != 4 {
		t.Errorf("decomposed into %d two-pin nets, want 4", len(s.Nets))
	}
	// No congestion term configured.
	if s.Congestion != 0 {
		t.Errorf("congestion = %g without estimator", s.Congestion)
	}
}

func TestPinsSnappedToPitch(t *testing.T) {
	r, err := New(tinyCircuit(), Config{
		Weights: Weights{Alpha: 1}, Pitch: 30, Anneal: quickAnneal(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Evaluate(sliceInitial(4))
	for _, n := range s.Nets {
		for _, p := range []float64{n.A.X, n.A.Y, n.B.X, n.B.Y} {
			if math.Abs(p-math.Round(p/30)*30) > 1e-9 {
				t.Fatalf("pin coordinate %g not on 30 µm intersection", p)
			}
		}
	}
}

func TestRunImprovesCost(t *testing.T) {
	r, err := New(tinyCircuit(), Config{
		Weights: Weights{Alpha: 0.5, Beta: 0.5},
		Pitch:   30, AllowRotate: true, Anneal: quickAnneal(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	init := r.Evaluate(sliceInitial(4))
	best, st, _ := r.Run(nil, nil)
	if best.Cost > init.Cost+1e-9 {
		t.Errorf("run did not improve: %g -> %g", init.Cost, best.Cost)
	}
	if st.Moves == 0 {
		t.Error("no moves recorded")
	}
}

func TestRunReproducible(t *testing.T) {
	mk := func() *Solution {
		r, err := New(tinyCircuit(), Config{
			Weights:   Weights{Alpha: 0.4, Beta: 0.3, Gamma: 0.3},
			Estimator: core.Model{Pitch: 30},
			Pitch:     30, AllowRotate: true, Anneal: quickAnneal(7),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _, _ := r.Run(nil, nil)
		return s
	}
	a, b := mk(), mk()
	if a.Cost != b.Cost || a.Area != b.Area || a.Wirelength != b.Wirelength {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunWithCongestionEstimators(t *testing.T) {
	for _, est := range []Estimator{
		grid.Model{Pitch: 100},
		core.Model{Pitch: 30},
		core.Model{Pitch: 30, Exact: true},
	} {
		r, err := New(tinyCircuit(), Config{
			Weights:   Weights{Alpha: 0.3, Beta: 0.3, Gamma: 0.4},
			Estimator: est, Pitch: 30, AllowRotate: true, Anneal: quickAnneal(11),
		})
		if err != nil {
			t.Fatalf("%s: %v", est.Name(), err)
		}
		s, _, _ := r.Run(nil, nil)
		if s.Congestion <= 0 {
			t.Errorf("%s: congestion = %g", est.Name(), s.Congestion)
		}
	}
}

func TestOnTempHookDeliversSolutions(t *testing.T) {
	r, err := New(tinyCircuit(), Config{
		Weights: Weights{Alpha: 1}, Pitch: 30, Anneal: quickAnneal(13),
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var lastArea float64
	_, st, _ := r.Run(nil, func(step int, sol *Solution) {
		n++
		lastArea = sol.Area
	})
	if n != st.Temps {
		t.Errorf("hook called %d times for %d temps", n, st.Temps)
	}
	if lastArea <= 0 {
		t.Error("hook received empty solution")
	}
}

func TestCongestionOptimizationReducesJudgingCost(t *testing.T) {
	// The paper's Experiment 1 in miniature: optimizing with the
	// IR-grid congestion term must not increase the judging-model
	// congestion relative to area/wire-only optimization.
	if testing.Short() {
		t.Skip("anneal comparison is slow")
	}
	c := bench.MustLoad("apte")
	judge := grid.Model{Pitch: 10}

	run := func(gamma float64, est Estimator) float64 {
		w := Weights{Alpha: 0.5, Beta: 0.5}
		if gamma > 0 {
			w = Weights{Alpha: 0.3, Beta: 0.2, Gamma: gamma}
		}
		r, err := New(c, Config{
			Weights: w, Estimator: est, Pitch: 60, AllowRotate: true,
			Anneal: anneal.Config{Seed: 17, MovesPerTemp: 25, MaxTemps: 25, CalibrationMoves: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _, _ := r.Run(nil, nil)
		return judge.Score(s.Placement.Chip, s.Nets)
	}

	noCgt := run(0, nil)
	withCgt := run(0.5, core.Model{Pitch: 60})
	t.Logf("judging congestion: area/wire-only %.4f, with IR term %.4f", noCgt, withCgt)
	// Allow slack: short anneals are noisy; the IR term must at least
	// not blow congestion up.
	if withCgt > noCgt*1.25 {
		t.Errorf("congestion optimization made things worse: %g -> %g", noCgt, withCgt)
	}
}

func sliceInitial(n int) slicing.Expr { return slicing.Initial(n) }

func TestSeqPairRepresentation(t *testing.T) {
	r, err := New(tinyCircuit(), Config{
		Weights: Weights{Alpha: 0.5, Beta: 0.5},
		Pitch:   30, AllowRotate: true,
		Representation: ReprSeqPair,
		Anneal:         quickAnneal(23),
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, st, _ := r.Run(nil, nil)
	if sol.Area <= 0 || sol.Wirelength <= 0 {
		t.Fatalf("solution %+v", sol)
	}
	if sol.Expr != nil {
		t.Error("seqpair solutions have no Polish expression")
	}
	if st.Moves == 0 {
		t.Error("no moves")
	}
	// Placement integrity: no overlaps.
	pl := sol.Placement
	for i := range pl.Rects {
		for j := i + 1; j < len(pl.Rects); j++ {
			a, b := pl.Rects[i], pl.Rects[j]
			if a.X1 < b.X2-1e-9 && b.X1 < a.X2-1e-9 && a.Y1 < b.Y2-1e-9 && b.Y1 < a.Y2-1e-9 {
				t.Fatalf("overlap between %v and %v", a, b)
			}
		}
	}
}

func TestSeqPairReproducible(t *testing.T) {
	mk := func() float64 {
		r, err := New(tinyCircuit(), Config{
			Weights: Weights{Alpha: 1}, Pitch: 30,
			Representation: ReprSeqPair, Anneal: quickAnneal(29),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _, _ := r.Run(nil, nil)
		return s.Area
	}
	if mk() != mk() {
		t.Error("seqpair runs with equal seeds diverged")
	}
}

func TestUnknownRepresentationRejected(t *testing.T) {
	_, err := New(tinyCircuit(), Config{Pitch: 30, Representation: "btree"})
	if err == nil {
		t.Error("unknown representation accepted")
	}
}

func TestWorkersForwardedToEstimator(t *testing.T) {
	r, err := New(tinyCircuit(), Config{
		Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
		Estimator: core.Model{Pitch: 30},
		Pitch:     30, AllowRotate: true, Anneal: quickAnneal(1),
		Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Cfg.Estimator.(core.Model)
	if !ok {
		t.Fatalf("estimator type changed: %T", r.Cfg.Estimator)
	}
	if m.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", m.Workers)
	}
	// Estimators without the hook pass through untouched.
	r2, err := New(tinyCircuit(), Config{
		Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
		Estimator: grid.Model{Pitch: 30},
		Pitch:     30, AllowRotate: true, Anneal: quickAnneal(1),
		Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Cfg.Estimator.(grid.Model); !ok {
		t.Fatalf("fixed-grid estimator type changed: %T", r2.Cfg.Estimator)
	}
}

// TestIncrementalMatchesFullEval is the pipeline-level bit-identity
// guarantee of the delta evaluation engine: the same seeded run with
// incremental scoring (the default) and with FullEval must produce
// identical trajectories — same stats, same best solution, same
// congestion — because every per-move score is bit-identical.
func TestIncrementalMatchesFullEval(t *testing.T) {
	run := func(fullEval bool, seed int64) (*Solution, anneal.Stats) {
		r, err := New(tinyCircuit(), Config{
			Weights:   Weights{Alpha: 0.3, Beta: 0.3, Gamma: 0.4},
			Estimator: core.Model{Pitch: 30},
			Pitch:     30, AllowRotate: true, Anneal: quickAnneal(seed),
			FullEval: fullEval,
		})
		if err != nil {
			t.Fatal(err)
		}
		if fullEval != (r.moveEst == nil) {
			t.Fatalf("FullEval=%v but moveEst=%v", fullEval, r.moveEst)
		}
		s, st, err := r.Run(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s, st
	}
	for _, seed := range []int64{7, 19, 43} {
		inc, incSt := run(false, seed)
		full, fullSt := run(true, seed)
		if incSt != fullSt {
			t.Fatalf("seed %d: stats diverged:\nincremental %+v\nfull        %+v", seed, incSt, fullSt)
		}
		if inc.Cost != full.Cost || inc.Area != full.Area ||
			inc.Wirelength != full.Wirelength || inc.Congestion != full.Congestion {
			t.Fatalf("seed %d: solutions diverged:\nincremental %+v\nfull        %+v", seed, inc, full)
		}
	}
}

// TestMoveScorerGating checks when the delta engine engages: never with
// FullEval, never without a congestion term, and never for estimators
// lacking the hook.
func TestMoveScorerGating(t *testing.T) {
	mk := func(cfg Config) *Runner {
		cfg.Pitch = 30
		cfg.Anneal = quickAnneal(1)
		r, err := New(tinyCircuit(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if r := mk(Config{Weights: Weights{Alpha: 0.6, Gamma: 0.4}, Estimator: core.Model{Pitch: 30}}); r.moveEst == nil {
		t.Error("IR-grid estimator with Gamma: delta engine not engaged")
	}
	if r := mk(Config{Weights: Weights{Alpha: 0.6, Gamma: 0.4}, Estimator: core.Model{Pitch: 30}, FullEval: true}); r.moveEst != nil {
		t.Error("FullEval: delta engine engaged anyway")
	}
	if r := mk(Config{Weights: Weights{Alpha: 1}}); r.moveEst != nil {
		t.Error("no congestion term: delta engine engaged anyway")
	}
	if r := mk(Config{Weights: Weights{Alpha: 0.6, Gamma: 0.4}, Estimator: grid.Model{Pitch: 100}}); r.moveEst != nil {
		t.Error("fixed-grid estimator: delta engine engaged without hook")
	}
}
