package fplan

import (
	"fmt"
	"math/rand"

	"irgrid/internal/netlist"
	"irgrid/internal/seqpair"
	"irgrid/internal/slicing"
)

// Floorplan representations the Runner can anneal over.
const (
	// ReprSlicing is the paper's representation: normalized Polish
	// expressions over a slicing tree (default).
	ReprSlicing = "slicing"
	// ReprSeqPair is the sequence-pair representation (Murata et al.),
	// which covers non-slicing packings. Soft modules pack at nominal
	// dimensions under this representation.
	ReprSeqPair = "seqpair"
)

// layout abstracts the annealer's search state: a packable floorplan
// encoding with a random neighbour move. Implementations are immutable
// values — neighbor returns a perturbed copy.
type layout interface {
	pack() (*netlist.Placement, error)
	neighbor(rng *rand.Rand) layout
	// expr returns the Polish expression for slicing layouts, nil
	// otherwise (Solution.Expr keeps its meaning for the default
	// representation).
	expr() slicing.Expr
}

// slicingLayout wraps a Polish expression; the Packer is shared across
// copies (annealing is sequential).
type slicingLayout struct {
	e slicing.Expr
	p *slicing.Packer
}

func (l slicingLayout) pack() (*netlist.Placement, error) { return l.p.Pack(l.e) }

func (l slicingLayout) neighbor(rng *rand.Rand) layout {
	e := l.e.Clone()
	e.Perturb(rng)
	return slicingLayout{e: e, p: l.p}
}

func (l slicingLayout) expr() slicing.Expr { return l.e }

// seqpairLayout wraps a sequence pair.
type seqpairLayout struct {
	sp          *seqpair.Pair
	p           *seqpair.Packer
	allowRotate bool
}

func (l seqpairLayout) pack() (*netlist.Placement, error) { return l.p.Pack(l.sp) }

func (l seqpairLayout) neighbor(rng *rand.Rand) layout {
	sp := l.sp.Clone()
	sp.Perturb(rng, l.allowRotate)
	return seqpairLayout{sp: sp, p: l.p, allowRotate: l.allowRotate}
}

func (l seqpairLayout) expr() slicing.Expr { return nil }

// initialLayout builds the representation's canonical starting state.
func (r *Runner) initialLayout() (layout, error) {
	switch r.Cfg.Representation {
	case "", ReprSlicing:
		return slicingLayout{e: slicing.Initial(len(r.Circuit.Modules)), p: r.packer}, nil
	case ReprSeqPair:
		return seqpairLayout{
			sp:          seqpair.New(len(r.Circuit.Modules)),
			p:           seqpair.NewPacker(r.Circuit.Modules),
			allowRotate: r.Cfg.AllowRotate,
		}, nil
	default:
		return nil, fmt.Errorf("fplan: unknown representation %q", r.Cfg.Representation)
	}
}
