package fplan

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"irgrid/internal/core"
	"irgrid/internal/geom"
	"irgrid/internal/grid"
	"irgrid/internal/netlist"
	"irgrid/internal/obs"
)

// TestTracedRunBitIdentical is the pipeline-level determinism guard:
// attaching a metrics registry and a trace to a full floorplanning run
// (annealer + evaluator + IR-grid estimator) must not change a single
// bit of the result.
func TestTracedRunBitIdentical(t *testing.T) {
	mk := func(reg *obs.Registry, tr *obs.Tracer) *Solution {
		r, err := New(tinyCircuit(), Config{
			Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
			Estimator: core.Model{Pitch: 30},
			Pitch:     30, AllowRotate: true, Anneal: quickAnneal(13),
			Obs: reg, Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _, _ := r.Run(nil, nil)
		return s
	}

	plain := mk(nil, nil)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	traced := mk(obs.NewRegistry(), tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if plain.Cost != traced.Cost || plain.Area != traced.Area ||
		plain.Wirelength != traced.Wirelength || plain.Congestion != traced.Congestion {
		t.Errorf("traced run diverged:\nplain  %+v\ntraced %+v", plain, traced)
	}
	if plain.Expr.String() != traced.Expr.String() {
		t.Errorf("traced run found a different floorplan: %s vs %s",
			plain.Expr.String(), traced.Expr.String())
	}

	// The trace itself must be complete: run_start, calibration, one
	// temp + solution pair per step, run_end with a metrics snapshot
	// covering all three instrumented layers.
	counts := map[string]int{}
	var end obs.TraceRecord
	var temps, solutions []obs.TraceRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		counts[r.Ev]++
		switch r.Ev {
		case obs.EvRunEnd:
			end = r
		case obs.EvTemp:
			temps = append(temps, r)
		case obs.EvSolution:
			solutions = append(solutions, r)
		}
	}
	if counts[obs.EvRunStart] != 1 || counts[obs.EvCalibration] != 1 || counts[obs.EvRunEnd] != 1 {
		t.Errorf("event counts: %v", counts)
	}
	if len(temps) == 0 || len(temps) != len(solutions) {
		t.Errorf("%d temp events vs %d solution events", len(temps), len(solutions))
	}
	for i := range solutions {
		if solutions[i].Step != temps[i].Step {
			t.Errorf("solution %d has step %d, temp has %d", i, solutions[i].Step, temps[i].Step)
		}
		if solutions[i].Cost <= 0 || solutions[i].NormArea <= 0 {
			t.Errorf("solution event %d has empty breakdown: %+v", i, solutions[i])
		}
	}
	for _, metric := range []string{
		"anneal_moves_total", "fplan_evals_total",
		// The incremental engine's move counters (the default scoring
		// path for the IR-grid estimator).
		"eval_incremental_moves", "eval_dirty_nets",
	} {
		if end.Metrics[metric] <= 0 {
			t.Errorf("run_end metrics missing %s: %v", metric, end.Metrics)
		}
	}
}

// countingEstimator records Score calls; used to prove the Gamma=0
// short-circuit never invokes the estimator.
type countingEstimator struct {
	calls *int
	score float64
}

func (c countingEstimator) Score(geom.Rect, []netlist.TwoPin) float64 {
	*c.calls++
	return c.score
}

func (c countingEstimator) Name() string { return "counting" }

func TestCostGammaZeroSkipsEstimator(t *testing.T) {
	calls := 0
	r, err := New(tinyCircuit(), Config{
		Weights:   Weights{Alpha: 0.5, Beta: 0.5}, // Gamma 0
		Estimator: countingEstimator{calls: &calls, score: 42},
		Pitch:     30, AllowRotate: true, Anneal: quickAnneal(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Evaluate(sliceInitial(4))
	if calls != 0 {
		t.Errorf("estimator called %d times with Gamma=0, want 0", calls)
	}
	if s.Congestion != 0 {
		t.Errorf("congestion = %g with Gamma=0", s.Congestion)
	}
	if r.normCgt != 1 {
		t.Errorf("normCgt = %g, want the positive() fallback 1", r.normCgt)
	}
}

func TestCostDegenerateNormalization(t *testing.T) {
	// An always-zero congestion estimator degenerates normCgt: the
	// calibration average is 0, so positive() must fall back to 1 and
	// the congestion term contributes Gamma·0/1 = 0 without dividing by
	// zero.
	calls := 0
	r, err := New(tinyCircuit(), Config{
		Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
		Estimator: countingEstimator{calls: &calls, score: 0},
		Pitch:     30, AllowRotate: true, Anneal: quickAnneal(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("estimator never called despite Gamma != 0")
	}
	if r.normCgt != 1 {
		t.Errorf("normCgt = %g for an all-zero estimator, want 1", r.normCgt)
	}
	s := r.Evaluate(sliceInitial(4))
	want := 0.4*s.Area/r.normArea + 0.2*s.Wirelength/r.normWire
	if s.Cost != want {
		t.Errorf("cost = %g, want %g (zero congestion term)", s.Cost, want)
	}
}

func TestCostNoNetsCircuit(t *testing.T) {
	// A circuit without nets has zero wirelength everywhere: normWire
	// degenerates to the positive() fallback and the cost reduces to
	// the area term alone.
	c := tinyCircuit()
	c.Nets = nil
	r, err := New(c, Config{
		Weights: Weights{Alpha: 0.7, Beta: 0.3},
		Pitch:   30, AllowRotate: true, Anneal: quickAnneal(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.normWire != 1 || r.normCgt != 1 {
		t.Errorf("norms = (%g, %g), want (1, 1)", r.normWire, r.normCgt)
	}
	s := r.Evaluate(sliceInitial(4))
	if s.Wirelength != 0 {
		t.Errorf("wirelength = %g for a netless circuit", s.Wirelength)
	}
	if want := 0.7 * s.Area / r.normArea; s.Cost != want {
		t.Errorf("cost = %g, want area term %g", s.Cost, want)
	}
}

func TestPositiveFallback(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, 1}, {-5, 1}, {3, 3}, {0.25, 0.25},
	} {
		if got := positive(tc.in); got != tc.want {
			t.Errorf("positive(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

// TestObserverForwardedToEstimator mirrors the Workers hook test: a
// registry on the Config must reach estimators that support the
// WithObserver hook and leave others untouched.
func TestObserverForwardedToEstimator(t *testing.T) {
	reg := obs.NewRegistry()
	r, err := New(tinyCircuit(), Config{
		Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
		Estimator: core.Model{Pitch: 30},
		Pitch:     30, AllowRotate: true, Anneal: quickAnneal(1),
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Cfg.Estimator.(core.Model)
	if !ok {
		t.Fatalf("estimator type changed: %T", r.Cfg.Estimator)
	}
	if m.Obs != reg {
		t.Fatal("registry not forwarded to the IR-grid estimator")
	}
	// New's calibration evaluations already flow through the
	// instrumented incremental engine.
	if reg.Snapshot()["eval_incremental_moves"] <= 0 {
		t.Error("calibration produced no evaluator metrics")
	}

	r2, err := New(tinyCircuit(), Config{
		Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
		Estimator: grid.Model{Pitch: 30},
		Pitch:     30, AllowRotate: true, Anneal: quickAnneal(1),
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Cfg.Estimator.(grid.Model); !ok {
		t.Fatalf("fixed-grid estimator type changed: %T", r2.Cfg.Estimator)
	}
}
