package fplan

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"irgrid/internal/core"
	"irgrid/internal/obs"
)

// TestSpanRecorderRunBitIdentical extends the pipeline determinism
// guard to the PR 7 deep-observability set: spans, flight recorder,
// live status and postmortem arming must not change a single bit of
// the result.
func TestSpanRecorderRunBitIdentical(t *testing.T) {
	mk := func(cfgMut func(*Config)) *Solution {
		cfg := Config{
			Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
			Estimator: core.Model{Pitch: 30},
			Pitch:     30, AllowRotate: true, Anneal: quickAnneal(13),
		}
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		r, err := New(tinyCircuit(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, _, _ := r.Run(nil, nil)
		return s
	}

	plain := mk(nil)

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	spans := obs.NewSpans()
	rec := obs.NewRecorder(256)
	status := obs.NewStatus()
	pmPath := filepath.Join(t.TempDir(), "run.postmortem.json")
	observed := mk(func(c *Config) {
		c.Obs = obs.NewRegistry()
		c.Trace = tr
		c.Spans = spans
		c.Recorder = rec
		c.Status = status
		c.PostmortemPath = pmPath
	})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if plain.Cost != observed.Cost || plain.Area != observed.Area ||
		plain.Wirelength != observed.Wirelength || plain.Congestion != observed.Congestion {
		t.Errorf("observed run diverged:\nplain    %+v\nobserved %+v", plain, observed)
	}
	if plain.Expr.String() != observed.Expr.String() {
		t.Errorf("observed run found a different floorplan: %s vs %s",
			plain.Expr.String(), observed.Expr.String())
	}

	// The span forest covers every layer: setup, the run tree, the
	// evaluator and the incremental move engine.
	byPath := map[string]obs.SpanAggregate{}
	for _, a := range spans.Aggregates() {
		byPath[a.Path] = a
	}
	for _, path := range []string{
		"setup",
		"run", "run/anneal", "run/anneal/calibrate", "run/anneal/temp", "run/finalize",
		"move", "move/diff",
	} {
		if byPath[path].Count == 0 {
			t.Errorf("span path %q missing (have %v)", path, keys(byPath))
		}
	}

	// The full-evaluation path (merge/sweep/fold) only runs when the
	// incremental engine is bypassed.
	fullSpans := obs.NewSpans()
	mk(func(c *Config) { c.Spans = fullSpans; c.FullEval = true })
	full := map[string]obs.SpanAggregate{}
	for _, a := range fullSpans.Aggregates() {
		full[a.Path] = a
	}
	for _, path := range []string{"evaluate", "evaluate/merge", "evaluate/sweep", "evaluate/fold", "evaluate/topscore"} {
		if full[path].Count == 0 {
			t.Errorf("FullEval span path %q missing (have %v)", path, keys(full))
		}
	}

	// The trace carries the spans event and a completed outcome.
	var spansEv, end *obs.TraceRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		switch r.Ev {
		case obs.EvSpans:
			cp := r
			spansEv = &cp
		case obs.EvRunEnd:
			cp := r
			end = &cp
		}
	}
	if spansEv == nil || len(spansEv.Spans) == 0 {
		t.Fatal("trace missing the spans event")
	}
	if end == nil || end.Outcome != obs.OutcomeCompleted {
		t.Fatalf("run_end outcome = %+v, want completed", end)
	}

	// The recorder saw the run; a completed run dumps no postmortem.
	if rec.Seq() == 0 {
		t.Error("recorder saw no events")
	}
	if _, err := obs.LoadPostmortem(pmPath); err == nil {
		t.Error("completed run wrote a postmortem; only faulted runs should")
	}
	if s := status.Snapshot(); s.Running || s.Outcome != obs.OutcomeCompleted {
		t.Errorf("status after run: %+v", s)
	}
}

func keys(m map[string]obs.SpanAggregate) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCanceledRunOutcomeAndPostmortem pins the fault path: a canceled
// run reports outcome "canceled" in the trace and status, and the
// armed flight recorder writes a loadable postmortem.
func TestCanceledRunOutcomeAndPostmortem(t *testing.T) {
	pmPath := filepath.Join(t.TempDir(), "run.postmortem.json")
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	rec := obs.NewRecorder(64)
	status := obs.NewStatus()
	r, err := New(tinyCircuit(), Config{
		Weights:   Weights{Alpha: 0.4, Beta: 0.2, Gamma: 0.4},
		Estimator: core.Model{Pitch: 30},
		Pitch:     30, AllowRotate: true, Anneal: quickAnneal(13),
		Trace: tr, Recorder: rec, Status: status, PostmortemPath: pmPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, _, runErr := r.Run(ctx, nil)
	if runErr == nil {
		t.Fatal("canceled run returned no error")
	}
	if sol == nil {
		t.Fatal("canceled run returned no best-so-far solution")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var end *obs.TraceRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rcd obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rcd); err != nil {
			t.Fatal(err)
		}
		if rcd.Ev == obs.EvRunEnd {
			cp := rcd
			end = &cp
		}
	}
	if end == nil || end.Outcome != obs.OutcomeCanceled {
		t.Fatalf("run_end outcome %+v, want canceled", end)
	}
	if s := status.Snapshot(); s.Outcome != obs.OutcomeCanceled {
		t.Errorf("status outcome %q, want canceled", s.Outcome)
	}

	pm, err := obs.LoadPostmortem(pmPath)
	if err != nil {
		t.Fatalf("canceled run left no postmortem: %v", err)
	}
	if pm.Reason != obs.OutcomeCanceled {
		t.Errorf("postmortem reason %q, want canceled", pm.Reason)
	}
	if pm.Info.Circuit == "" || pm.Info.ConfigDigest == "" {
		t.Errorf("postmortem info incomplete: %+v", pm.Info)
	}
	if pm.Status == nil || pm.Status.Outcome != obs.OutcomeCanceled {
		t.Errorf("postmortem status %+v", pm.Status)
	}
}
